// Package hawkeye's top-level benchmark harness regenerates every table
// and figure of the paper's evaluation (§4). Run with:
//
//	go test -bench=. -benchmem
//
// Each benchmark prints the corresponding table once. Absolute numbers
// come from the simulation substrate (see DESIGN.md); the reproduction
// target is the SHAPE of each result — who wins, by what order of
// magnitude, and where the parameter sensitivities lie.
//
// The drivers default to reduced trial counts so the full suite stays
// laptop-sized; raise them with -hawkeye.trials for tighter confidence.
package hawkeye

import (
	"flag"
	"fmt"
	"sync"
	"testing"

	"hawkeye/internal/experiments"
	"hawkeye/internal/resources"
)

var trialsFlag = flag.Int("hawkeye.trials", 3, "trials per scenario in evaluation benches")

// sharedEval memoizes the evaluation pass: Figs 8, 9, 10, 11 and 14 all
// read the same trial set, exactly as the paper derives them from the
// same traces.
var (
	evalOnce sync.Once
	evalRun  *experiments.EvalRun
	evalErr  error
)

func getEval(b *testing.B) *experiments.EvalRun {
	evalOnce.Do(func() {
		evalRun, evalErr = experiments.RunEval(*trialsFlag)
	})
	if evalErr != nil {
		b.Fatal(evalErr)
	}
	return evalRun
}

var printOnce sync.Map

func printTable(name, s string) {
	if _, loaded := printOnce.LoadOrStore(name, true); !loaded {
		fmt.Println(s)
	}
}

func BenchmarkFig7_EpochThresholdSweep(b *testing.B) {
	cfg := experiments.QuickFig7()
	cfg.Trials = *trialsFlag
	for i := 0; i < b.N; i++ {
		_, table, err := experiments.Fig7(cfg)
		if err != nil {
			b.Fatal(err)
		}
		printTable("fig7", table.String())
	}
}

func BenchmarkFig8_AccuracyVsBaselines(b *testing.B) {
	run := getEval(b)
	for i := 0; i < b.N; i++ {
		printTable("fig8", run.Fig8().String())
	}
}

func BenchmarkFig9a_ProcessingOverhead(b *testing.B) {
	run := getEval(b)
	for i := 0; i < b.N; i++ {
		printTable("fig9", run.Fig9().String())
	}
}

func BenchmarkFig9b_BandwidthOverhead(b *testing.B) {
	// Fig 9b shares the Fig 9 table (monitor-wire column).
	run := getEval(b)
	for i := 0; i < b.N; i++ {
		_ = run.Fig9()
	}
}

func BenchmarkFig10_TelemetryGranularity(b *testing.B) {
	run := getEval(b)
	for i := 0; i < b.N; i++ {
		printTable("fig10", run.Fig10().String())
	}
}

func BenchmarkFig11_SwitchCoverage(b *testing.B) {
	run := getEval(b)
	for i := 0; i < b.N; i++ {
		printTable("fig11", run.Fig11().String())
	}
}

func BenchmarkFig12_CaseStudies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := experiments.Fig12()
		if err != nil {
			b.Fatal(err)
		}
		printTable("fig12", out)
	}
}

func BenchmarkFig13a_ResourceUsage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		printTable("fig13a", resources.Fig13a().String())
	}
}

func BenchmarkFig13b_MemoryScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		printTable("fig13b", resources.Fig13b().String())
	}
}

func BenchmarkFig14a_TelemetryReduction(b *testing.B) {
	run := getEval(b)
	for i := 0; i < b.N; i++ {
		printTable("fig14", run.Fig14().String())
	}
}

func BenchmarkFig14b_PacketReduction(b *testing.B) {
	run := getEval(b)
	for i := 0; i < b.N; i++ {
		_ = run.Fig14()
	}
}

func BenchmarkPollerLatencyModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		printTable("poller", experiments.PollerLatency().String())
	}
}

func BenchmarkAblation_CausalityMeterBits(b *testing.B) {
	for i := 0; i < b.N; i++ {
		table, err := experiments.AblationMeterBits(*trialsFlag)
		if err != nil {
			b.Fatal(err)
		}
		printTable("abl-meter", table.String())
	}
}

func BenchmarkAblation_EpochCount(b *testing.B) {
	for i := 0; i < b.N; i++ {
		table, err := experiments.AblationEpochCount(*trialsFlag)
		if err != nil {
			b.Fatal(err)
		}
		printTable("abl-epochs", table.String())
	}
}

func BenchmarkAblation_DedupWindow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		table, err := experiments.AblationDedup(*trialsFlag)
		if err != nil {
			b.Fatal(err)
		}
		printTable("abl-dedup", table.String())
	}
}

func BenchmarkDiscussion_PartialDeployment(b *testing.B) {
	for i := 0; i < b.N; i++ {
		table, err := experiments.PartialDeployment(*trialsFlag)
		if err != nil {
			b.Fatal(err)
		}
		printTable("partial-deploy", table.String())
	}
}

func BenchmarkTestbed_LeafSpine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		table, err := experiments.TestbedTable(*trialsFlag)
		if err != nil {
			b.Fatal(err)
		}
		printTable("testbed", table.String())
	}
}

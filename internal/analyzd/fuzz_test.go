package analyzd

import (
	"encoding/json"
	"testing"

	"hawkeye/internal/fleetstore"
	"hawkeye/internal/wire"
)

// FuzzIncidentQuery runs arbitrary operator query payloads through the
// same path the server uses: JSON decode, wire→store conversion, then
// the query itself against a store. Malformed payloads must come back
// as errors, never as panics or as queries the store chokes on.
func FuzzIncidentQuery(f *testing.F) {
	f.Add([]byte(`{"fabric":"prod","type":"pfc-storm","node":3,"limit":10}`))
	f.Add([]byte(`{"node":-1}`))
	f.Add([]byte(`{"type":"no-such-type"}`))
	f.Add([]byte(`{"fromNs":-9223372036854775808,"toNs":9223372036854775807}`))
	f.Add([]byte(`{"limit":-40,"node":2147483647}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`not json`))

	st := fleetstore.New(fleetstore.Config{})
	f.Fuzz(func(t *testing.T, data []byte) {
		var wq wire.IncidentQuery
		if err := json.Unmarshal(data, &wq); err != nil {
			return
		}
		q, err := queryFromWire(wq)
		if err != nil {
			return
		}
		// A query that passed conversion must be safe to execute.
		_ = st.Incidents(q)
	})
}

package analyzd

import "sync/atomic"

// Admission control: the analyzer degrades in tiers keyed off the
// ingest queue's fill fraction, mirroring the paper's
// controller-assisted collection principle — under overload the control
// plane protects the diagnosis pipeline first. Live subscriptions are
// the cheapest to refuse (the client retries with backoff and misses
// nothing durable), fleet queries next; diagnosis ingest is NEVER shed
// by admission control — losing the complaint loses the provenance
// evidence, while a late query is merely late.

// State is the server lifecycle phase.
type State int32

const (
	// StateStarting: listener not yet serving.
	StateStarting State = iota
	// StateReplaying: recovering the fleet store from snapshot + WAL.
	StateReplaying
	// StateServing: normal operation.
	StateServing
	// StateDraining: Close in progress — no new sessions, WAL flushing,
	// subscribers being told goodbye.
	StateDraining
	// StateStopped: fully shut down.
	StateStopped
)

func (st State) String() string {
	switch st {
	case StateStarting:
		return "starting"
	case StateReplaying:
		return "replaying"
	case StateServing:
		return "serving"
	case StateDraining:
		return "draining"
	case StateStopped:
		return "stopped"
	}
	return "unknown"
}

// Shed tier defaults: subscriptions go first at half-full, queries only
// when the queue is nearly saturated.
const (
	defaultShedSubscriptionsAt = 0.5
	defaultShedQueriesAt       = 0.9
	defaultRetryAfterMs        = 50
)

// Tier names carried in Throttle replies.
const (
	TierSubscriptions = "subscriptions"
	TierQueries       = "queries"
	TierRollups       = "rollups"
)

// admission holds the shed thresholds and per-tier counters.
type admission struct {
	subscriptionsAt float64
	queriesAt       float64
	retryAfterMs    int64

	shedSubscriptions atomic.Uint64
	shedQueries       atomic.Uint64
	shedRollups       atomic.Uint64
}

func newAdmission(subsAt, queriesAt float64, retryMs int64) *admission {
	if subsAt <= 0 {
		subsAt = defaultShedSubscriptionsAt
	}
	if queriesAt <= 0 {
		queriesAt = defaultShedQueriesAt
	}
	if retryMs <= 0 {
		retryMs = defaultRetryAfterMs
	}
	return &admission{subscriptionsAt: subsAt, queriesAt: queriesAt, retryAfterMs: retryMs}
}

// admitSubscription reports whether a new live subscription may start
// at the given queue load, counting the shed when not.
func (a *admission) admitSubscription(load float64) bool {
	if load >= a.subscriptionsAt {
		a.shedSubscriptions.Add(1)
		return false
	}
	return true
}

// admitQuery is admitSubscription for fleet incident queries: a higher
// threshold, because operators debugging an overload need reads longer
// than they need tails.
func (a *admission) admitQuery(load float64) bool {
	if load >= a.queriesAt {
		a.shedQueries.Add(1)
		return false
	}
	return true
}

// admitRollup gates live rollup subscriptions: same threshold as
// incident subscriptions (both are tails a client can retry), but
// counted separately so an operator can see which stream was refused.
func (a *admission) admitRollup(load float64) bool {
	if load >= a.subscriptionsAt {
		a.shedRollups.Add(1)
		return false
	}
	return true
}

package analyzd

import (
	"encoding/json"
	"errors"
	"fmt"

	"hawkeye/internal/wire"
)

// Client side of the fleet routing protocol: writer-routed record
// admission, epoch announces/probes, reshard record dumps and cutover
// commands. Fencing refusals surface as *FenceError (errors.Is
// ErrFenced) so routers can tell "re-resolve the route" apart from
// "back off and retry".

// ErrFenced matches any fencing refusal via errors.Is.
var ErrFenced = errors.New("analyzd: shard fenced")

// FenceError is the typed refusal a fenced or wrong-owner shard
// returns: the shard has been superseded by a higher epoch (Fenced),
// or the fabric has been resharded away from it (Moved).
type FenceError struct {
	Info wire.FenceInfo
}

func (e *FenceError) Error() string {
	if e.Info.Moved {
		return fmt.Sprintf("analyzd: shard %q no longer owns fabric %q (epoch %d)",
			e.Info.Shard, e.Info.Fabric, e.Info.Epoch)
	}
	return fmt.Sprintf("analyzd: shard %q fenced at epoch %d by epoch %d",
		e.Info.Shard, e.Info.Epoch, e.Info.Observed)
}

// Is makes errors.Is(err, ErrFenced) match.
func (e *FenceError) Is(target error) bool { return target == ErrFenced }

// WriteRecord routes one record to this shard with an idempotency
// sequence: the server admits it exactly once per fabric+OriginSeq and
// acks (Duplicate set when a resend hit the dedup watermark). The
// request machinery redials and resends on transport failure — safe,
// because the resend carries the same OriginSeq. A fencing or
// moved-fabric refusal returns *FenceError.
func (c *Client) WriteRecord(req wire.WriteRequest) (*wire.WriteAck, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("analyzd: encode write: %w", err)
	}
	mt, payload, err := c.request(wire.MsgWriteRecord, body)
	if err != nil {
		return nil, fmt.Errorf("analyzd: write record: %w", err)
	}
	switch mt {
	case wire.MsgWriteAck:
		var ack wire.WriteAck
		if err := json.Unmarshal(payload, &ack); err != nil {
			return nil, fmt.Errorf("analyzd: decode write ack: %w", err)
		}
		return &ack, nil
	case wire.MsgFence:
		return nil, fenceErrorFrom(payload)
	case wire.MsgError:
		return nil, fmt.Errorf("analyzd: server error: %s", payload)
	default:
		return nil, fmt.Errorf("analyzd: unexpected reply type %d", mt)
	}
}

// AnnounceEpoch tells the shard a (possibly higher) epoch exists for
// it and returns the shard's resulting fence view. It doubles as the
// fencing probe: announce the promoted epoch to a revived stale
// primary and the reply proves it demoted itself.
func (c *Client) AnnounceEpoch(shard string, epoch uint64) (*wire.FenceInfo, error) {
	body, err := json.Marshal(wire.EpochAnnounce{Shard: shard, Epoch: epoch})
	if err != nil {
		return nil, fmt.Errorf("analyzd: encode epoch announce: %w", err)
	}
	mt, payload, err := c.request(wire.MsgEpoch, body)
	if err != nil {
		return nil, fmt.Errorf("analyzd: announce epoch: %w", err)
	}
	switch mt {
	case wire.MsgFence:
		var info wire.FenceInfo
		if err := json.Unmarshal(payload, &info); err != nil {
			return nil, fmt.Errorf("analyzd: decode fence info: %w", err)
		}
		return &info, nil
	case wire.MsgError:
		return nil, fmt.Errorf("analyzd: server error: %s", payload)
	default:
		return nil, fmt.Errorf("analyzd: unexpected reply type %d", mt)
	}
}

// QueryRecords dumps the shard's retained records for one fabric
// (trigger-time order, writer-idempotency sequences intact) — the
// reshard executor's copy source. limit <= 0 means all.
func (c *Client) QueryRecords(fabric string, limit int) ([]json.RawMessage, error) {
	body, err := json.Marshal(wire.RecordQuery{Fabric: fabric, Limit: limit})
	if err != nil {
		return nil, fmt.Errorf("analyzd: encode record query: %w", err)
	}
	mt, payload, err := c.request(wire.MsgQueryRecords, body)
	if err != nil {
		return nil, fmt.Errorf("analyzd: query records: %w", err)
	}
	switch mt {
	case wire.MsgRecordList:
		var dump wire.RecordDump
		if err := json.Unmarshal(payload, &dump); err != nil {
			return nil, fmt.Errorf("analyzd: decode record dump: %w", err)
		}
		return dump.Records, nil
	case wire.MsgError:
		return nil, fmt.Errorf("analyzd: server error: %s", payload)
	default:
		return nil, fmt.Errorf("analyzd: unexpected reply type %d", mt)
	}
}

// Cutover executes one half of a reshard move on this shard:
// wire.CutoverRelease purges the fabric behind a durable tombstone,
// wire.CutoverAdopt activates it on the new owner. Both bump and
// announce the shard's epoch and checkpoint before replying. A fenced
// shard refuses with *FenceError.
func (c *Client) Cutover(fabric, op string) (*wire.CutoverReply, error) {
	body, err := json.Marshal(wire.CutoverRequest{Fabric: fabric, Op: op})
	if err != nil {
		return nil, fmt.Errorf("analyzd: encode cutover: %w", err)
	}
	mt, payload, err := c.request(wire.MsgCutover, body)
	if err != nil {
		return nil, fmt.Errorf("analyzd: cutover: %w", err)
	}
	switch mt {
	case wire.MsgCutoverOK:
		var reply wire.CutoverReply
		if err := json.Unmarshal(payload, &reply); err != nil {
			return nil, fmt.Errorf("analyzd: decode cutover reply: %w", err)
		}
		return &reply, nil
	case wire.MsgFence:
		return nil, fenceErrorFrom(payload)
	case wire.MsgError:
		return nil, fmt.Errorf("analyzd: server error: %s", payload)
	default:
		return nil, fmt.Errorf("analyzd: unexpected reply type %d", mt)
	}
}

func fenceErrorFrom(payload []byte) error {
	var info wire.FenceInfo
	if err := json.Unmarshal(payload, &info); err != nil {
		return fmt.Errorf("analyzd: decode fence refusal: %w", err)
	}
	return &FenceError{Info: info}
}

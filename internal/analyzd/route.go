package analyzd

import (
	"encoding/json"
	"fmt"
	"time"

	"hawkeye/internal/fleetstore"
	"hawkeye/internal/wire"
)

// Writer-routed ingest, fencing and reshard cutovers — the server side
// of the fleet tier's failover protocol. The invariant everything here
// serves: once a shard has observed a higher epoch for itself (from a
// follower, a writer, a front door or a reshard executor) it never
// acks another write, durably, even across a restart.

// fenceInfo builds the typed refusal for the current fence state.
func (s *Server) fenceInfo() wire.FenceInfo {
	return wire.FenceInfo{
		Shard:    s.shard,
		Epoch:    s.fleet.Epoch(),
		Observed: s.fleet.FencedBy(),
		Fenced:   true,
	}
}

// fenced reports whether this shard has been superseded; fenced shards
// refuse all ingest with wire.MsgFence.
func (s *Server) fenced() bool { return s.fleet.FencedBy() != 0 }

// serveWrite handles one writer-routed record (MsgWriteRecord):
// fencing and moved-out checks, idempotent admission keyed by
// fabric+OriginSeq, then a semi-sync follower wait before the ack.
func (s *Server) serveWrite(sess *session, payload []byte, sendErr func(string)) bool {
	wr, err := wire.ParseWriteRequest(payload)
	if err != nil {
		s.decodeErrors.Add(1)
		return s.strike(sess)
	}
	// A writer carrying a higher epoch than ours proves a promotion we
	// missed: demote durably before refusing.
	if wr.Epoch > s.fleet.Epoch() {
		_ = s.fleet.NoteFence(wr.Epoch)
	}
	if s.fenced() {
		_ = sess.writeJSON(wire.MsgFence, s.fenceInfo())
		return false
	}
	if s.handoff.Load() {
		sendErr("shard draining: ingest refused")
		return false
	}
	if s.fleet.MovedOut(wr.Fabric) {
		_ = sess.writeJSON(wire.MsgFence, wire.FenceInfo{
			Shard: s.shard, Epoch: s.fleet.Epoch(), Moved: true, Fabric: wr.Fabric,
		})
		return true
	}
	var rec fleetstore.Record
	if err := json.Unmarshal(wr.Record, &rec); err != nil {
		s.decodeErrors.Add(1)
		return s.strike(sess)
	}
	rec.Fabric = wr.Fabric
	rec.OriginSeq = wr.OriginSeq
	rec.Ctrl = ""
	admitted, outcome := s.fleet.AddUnique(rec)
	switch outcome {
	case fleetstore.AdmitFrozen:
		// Sealed mid-cutover: the same refusal as moved-out — the writer
		// holds on its reshard state and re-resolves the owner.
		_ = sess.writeJSON(wire.MsgFence, wire.FenceInfo{
			Shard: s.shard, Epoch: s.fleet.Epoch(), Moved: true, Fabric: wr.Fabric,
		})
		return true
	case fleetstore.AdmitDuplicate:
		// Duplicate resend: the record is already admitted. The ack is
		// positive, but still waits for the follower to cover the store's
		// current watermark — a duplicate ack must be as durable a promise
		// as the original would have been.
		if !s.waitSemiSync(s.fleet.Seq()) {
			sendErr("semi-sync: follower lagging, write not acknowledged")
			return true
		}
		return sess.writeJSON(wire.MsgWriteAck, wire.WriteAck{
			OriginSeq: wr.OriginSeq, Epoch: s.fleet.Epoch(), Duplicate: true,
		}) == nil
	}
	if !s.waitSemiSync(admitted.Seq) {
		// Admitted but not replicated in time: no ack. The writer resends
		// the same OriginSeq and dedup keeps the store exactly-once.
		sendErr("semi-sync: follower lagging, write not acknowledged")
		return true
	}
	// Re-check the fence after the wait: a write that raced a promotion
	// must not be acked by the loser.
	if s.fenced() {
		_ = sess.writeJSON(wire.MsgFence, s.fenceInfo())
		return false
	}
	return sess.writeJSON(wire.MsgWriteAck, wire.WriteAck{
		Seq: admitted.Seq, OriginSeq: wr.OriginSeq, Epoch: s.fleet.Epoch(),
	}) == nil
}

// waitSemiSync blocks until a follower has acked seq, bounded by
// Options.SemiSync. Vacuously true with semi-sync off or no follower
// attached (degraded: acks then promise local durability only).
func (s *Server) waitSemiSync(seq uint64) bool {
	if s.semiSync <= 0 {
		return true
	}
	deadline := time.Now().Add(s.semiSync)
	for s.followerSeq.Load() < seq {
		if s.fleet.Replicas() == 0 {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(200 * time.Microsecond)
	}
	return true
}

// serveEpochAnnounce handles MsgEpoch from a peer (front door, writer
// probe, reshard executor): a higher epoch for our shard demotes us
// durably. The reply is always MsgFence carrying our current view, so
// the announce doubles as a fencing probe.
func (s *Server) serveEpochAnnounce(sess *session, payload []byte) bool {
	ea, err := wire.ParseEpochAnnounce(payload)
	if err != nil {
		s.decodeErrors.Add(1)
		return s.strike(sess)
	}
	if (ea.Shard == s.shard || s.shard == "") && ea.Epoch > s.fleet.Epoch() {
		_ = s.fleet.NoteFence(ea.Epoch)
	}
	return sess.writeJSON(wire.MsgFence, wire.FenceInfo{
		Shard:    s.shard,
		Epoch:    s.fleet.Epoch(),
		Observed: s.fleet.FencedBy(),
		Fenced:   s.fenced(),
	}) == nil
}

// serveRecordQuery handles MsgQueryRecords: the reshard executor's
// full-fabric dump. Records are returned in trigger-time order with
// their writer-idempotency sequences intact, so the copy to the new
// owner preserves dedup across the move.
func (s *Server) serveRecordQuery(sess *session, payload []byte, sendErr func(string)) bool {
	rq, err := wire.ParseRecordQuery(payload)
	if err != nil {
		sendErr(fmt.Sprintf("bad record query: %v", err))
		return false
	}
	s.pipe.Drain()
	recs := s.fleet.Records(fleetstore.Query{
		Fabric: rq.Fabric,
		Node:   fleetstore.AnyNode,
		Limit:  rq.Limit,
	})
	dump := wire.RecordDump{Fabric: rq.Fabric, Records: make([]json.RawMessage, 0, len(recs))}
	for i := range recs {
		data, err := json.Marshal(&recs[i])
		if err != nil {
			sendErr(fmt.Sprintf("encode record: %v", err))
			return false
		}
		dump.Records = append(dump.Records, data)
	}
	return sess.writeJSON(wire.MsgRecordList, dump) == nil
}

// serveCutover handles MsgCutover, the three steps of a reshard move.
// Freeze (on the old owner, before the copy): seal the fabric against
// admission so the dump is final. Release (on the old owner): purge
// the fabric behind a durable tombstone, bump + announce the epoch,
// checkpoint. Adopt (on the new
// owner): clear any moved-out marker behind a tombstone, rebuild the
// observer so copied records land in proper panes, bump + announce +
// checkpoint. Fenced shards refuse; a cutover must never be executed
// by a superseded primary.
func (s *Server) serveCutover(sess *session, payload []byte, sendErr func(string)) bool {
	cr, err := wire.ParseCutover(payload)
	if err != nil {
		sendErr(fmt.Sprintf("bad cutover request: %v", err))
		return false
	}
	if s.fenced() {
		_ = sess.writeJSON(wire.MsgFence, s.fenceInfo())
		return false
	}
	s.pipe.Drain()
	reply := wire.CutoverReply{}
	switch cr.Op {
	case wire.CutoverFreeze:
		// Seal only: no tombstone, no epoch bump. From here the record
		// set the executor dumps is final — racing writes are refused and
		// re-routed.
		s.fleet.FreezeFabric(cr.Fabric)
		reply.Epoch = s.fleet.Epoch()
		return sess.writeJSON(wire.MsgCutoverOK, reply) == nil
	case wire.CutoverRelease:
		n, err := s.fleet.PurgeFabric(cr.Fabric)
		if err != nil {
			sendErr(fmt.Sprintf("cutover release: %v", err))
			return false
		}
		reply.Purged = n
	case wire.CutoverAdopt:
		if err := s.fleet.AdoptFabric(cr.Fabric); err != nil {
			sendErr(fmt.Sprintf("cutover adopt: %v", err))
			return false
		}
	}
	epoch, err := s.fleet.BumpEpoch()
	if err != nil {
		sendErr(fmt.Sprintf("cutover epoch: %v", err))
		return false
	}
	s.fleet.AnnounceEpoch(epoch)
	if err := s.fleet.Checkpoint(); err != nil {
		sendErr(fmt.Sprintf("cutover checkpoint: %v", err))
		return false
	}
	reply.Epoch = epoch
	return sess.writeJSON(wire.MsgCutoverOK, reply) == nil
}

// BeginHandoff starts a graceful drain: ingest (writer-routed and
// fabric sessions) is refused from now on, while queries, health and
// the replication stream keep serving so the follower can catch up.
// Used by the SIGTERM path before WaitFollower.
func (s *Server) BeginHandoff() {
	s.handoff.Store(true)
}

// WaitFollower settles the ingest queue, then blocks until a follower
// has acked the store's full admission sequence, bounded by timeout.
// Returns the follower watermark and whether catch-up completed; a
// server with no follower attached returns immediately (vacuously
// caught up — there is nobody to hand off to).
func (s *Server) WaitFollower(timeout time.Duration) (uint64, bool) {
	s.pipe.Drain()
	target := s.fleet.Seq()
	deadline := time.Now().Add(timeout)
	for {
		f := s.followerSeq.Load()
		if f >= target || s.fleet.Replicas() == 0 {
			return f, true
		}
		if time.Now().After(deadline) {
			return f, false
		}
		time.Sleep(2 * time.Millisecond)
	}
}

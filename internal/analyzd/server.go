// Package analyzd is the Hawkeye analyzer as a network service: switches'
// CPU pollers (or, here, the simulation harness standing in for them)
// push binary telemetry reports over TCP; operators ask for a diagnosis
// of a victim flow and get the provenance verdict back. The simulator
// runs the same provenance/diagnosis code in-process for the evaluation;
// this service is the deployment face of the analyzer — one process per
// fleet, fabric sessions carry their topology in the handshake, and
// every completed diagnosis also flows into the shared fleet store
// (internal/fleetstore), where operator sessions query and tail the
// clustered incident view.
//
// The server is supervised: it moves through a lifecycle state machine
// (starting → replaying → serving → draining → stopped), recovers its
// fleet store from snapshot + WAL when given a data directory, sheds
// load in tiers under ingest pressure (subscriptions first, then
// queries, never diagnosis ingest), and drains gracefully on Close —
// flushing the WAL and pushing a terminal frame to live subscribers.
package analyzd

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hawkeye/internal/core"
	"hawkeye/internal/diagnosis"
	"hawkeye/internal/fleetstore"
	"hawkeye/internal/host"
	"hawkeye/internal/provenance"
	"hawkeye/internal/rollup"
	"hawkeye/internal/sim"
	"hawkeye/internal/telemetry"
	"hawkeye/internal/topo"
	"hawkeye/internal/wire"
)

// Options configures ListenOpts. The zero value is a sensible
// in-memory server.
type Options struct {
	// Fleet sizes the fleet store (zero value = DefaultConfig).
	Fleet fleetstore.Config
	// Rollup sizes the live rollup summarizer riding the fleet store's
	// admission stream (zero value = rollup.DefaultConfig).
	Rollup rollup.Config
	// DataDir, when non-empty, makes the fleet store durable: Open
	// replays the snapshot + WAL under this directory before the server
	// starts serving, and every admitted diagnosis is logged.
	DataDir string
	// PipeDepth/PipeWorkers size the ingest pipeline (0 = defaults:
	// 1024 / 4).
	PipeDepth   int
	PipeWorkers int
	// ManualPipeline builds a worker-less pipeline whose queue only
	// drains at query time — tests use it to hold the load at an exact
	// fill fraction.
	ManualPipeline bool
	// ShedSubscriptionsAt / ShedQueriesAt are ingest-queue fill
	// fractions beyond which the tier is refused (0 = defaults 0.5 /
	// 0.9). Diagnosis ingest is never shed by admission control.
	ShedSubscriptionsAt float64
	ShedQueriesAt       float64
	// RetryAfterMs is the delay hint in throttle replies (0 = 50).
	RetryAfterMs int64
	// ReadTimeout / WriteTimeout bound each frame read and write on a
	// session; zero disables (operator sessions legitimately idle between
	// queries, so the default is off and the daemon flag opts in).
	ReadTimeout  time.Duration
	WriteTimeout time.Duration
	// MaxStrikes is the per-session decode-error budget: a session whose
	// frames keep failing decode or admission validation is quarantined —
	// told why with a MsgError and dropped (0 = default 8, <0 = never).
	MaxStrikes int
	// Shard names this instance on a cluster's consistent-hash ring
	// (reported in MsgShardInfoReply). Empty for unclustered servers.
	Shard string
	// ReplBuffer bounds each replication tap's live channel (0 = 1024):
	// a follower that falls this many records behind is dropped and must
	// re-sync from its own durable watermark.
	ReplBuffer int
	// BumpEpoch increments the shard's persisted fencing epoch during
	// Open, past any fence marker — the promotion path. A promoted
	// follower opened with this set always supersedes the primary whose
	// epoch it mirrored.
	BumpEpoch bool
	// SemiSync, when positive, makes writer-routed admissions
	// (MsgWriteRecord) wait up to this long for a follower to ack the
	// record's sequence before the WriteAck goes out — so an acked
	// record survives losing the primary. On timeout the write is
	// answered with an error (admitted but unacked); the writer resends
	// and per-fabric dedup makes the resend idempotent. Zero acks on
	// local durability alone.
	SemiSync time.Duration
}

// DefaultMaxStrikes is the per-session decode-error budget when Options
// leaves MaxStrikes zero.
const DefaultMaxStrikes = 8

// Server accepts analyzer sessions.
type Server struct {
	lis net.Listener

	// DiagnosisConfig tunes signature matching (defaults if zero).
	DiagnosisConfig diagnosis.Config

	// fleet is the shared diagnosis history; pipe is its ingest front;
	// adm is the tiered load shedder in front of the sheddable verbs;
	// roll summarizes the admission stream into windowed rollups.
	fleet *fleetstore.Store
	pipe  *fleetstore.Pipeline
	adm   *admission
	roll  *rollup.Summarizer

	// state is the lifecycle phase (State values).
	state atomic.Int32

	// mu guards the connection map only; the counters below are
	// atomics so hot-path accounting never contends with accept/close.
	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	// acceptWG tracks the accept loop, wg the session handlers, fwdWG
	// the subscription forwarders — Close drains them in that order so
	// no goroutine touches a structure torn down before it exits.
	acceptWG sync.WaitGroup
	wg       sync.WaitGroup
	fwdWG    sync.WaitGroup

	closeOnce sync.Once
	closeErr  error

	readTimeout  time.Duration
	writeTimeout time.Duration
	maxStrikes   int

	// Cluster identity and replication health: shard names this instance
	// on the ring; repls tracks live replication streams (guarded by mu)
	// so drain can detach them; followerSeq is the highest watermark any
	// follower has acked.
	shard       string
	replBuffer  int
	repls       map[*fleetstore.ReplicaSync]struct{}
	followerSeq atomic.Uint64
	// followerEpoch is the fencing epoch the follower last acked having
	// mirrored durably; semiSync bounds the per-write follower wait;
	// handoff marks a graceful drain (ingest refused, reads and
	// replication still served while the follower catches up).
	followerEpoch atomic.Uint64
	semiSync      time.Duration
	handoff       atomic.Bool

	sessions    atomic.Uint64
	reports     atomic.Uint64
	hostReports atomic.Uint64
	diagnoses   atomic.Uint64
	// Hostile-input accounting: frames that failed decode, reports that
	// failed admission validation, values sanitization clamped, and
	// sessions dropped for exhausting their strike budget.
	decodeErrors        atomic.Uint64
	rejectedReports     atomic.Uint64
	rejectedHostReports atomic.Uint64
	clampedValues       atomic.Uint64
	quarantined         atomic.Uint64
}

// Stats is a snapshot of server activity.
type Stats struct {
	Sessions int
	Reports  int
	// HostReports counts admitted host-agent counter snapshots.
	HostReports int
	Diagnoses   int
	// Fleet store counters: records admitted, records shed at the
	// ingest queue, retention-ring evictions, incidents ever opened,
	// incidents currently open, and subscription events lost to slow
	// subscribers.
	Ingested      uint64
	Dropped       uint64
	Evicted       uint64
	Incidents     uint64
	OpenIncidents int
	EventsDropped uint64
	// Shed tier counters: requests refused with a throttle reply.
	// Subscriptions shed first, queries only near saturation; there is
	// deliberately no ShedIngest — diagnosis ingest is never refused.
	ShedSubscriptions uint64
	ShedQueries       uint64
	// WALErrors counts records that failed to reach the log (kept in
	// memory regardless); zero on in-memory servers.
	WALErrors uint64
	// Replayed counts records recovered from the WAL at startup.
	Replayed int
	// Hostile-input counters. DecodeErrors are frames that failed binary
	// decode; RejectedReports failed semantic admission against the
	// session's own handshake topology; ClampedValues are implausible
	// magnitudes sanitization pulled back; QuarantinedSessions exhausted
	// their strike budget and were dropped.
	DecodeErrors        uint64
	RejectedReports     uint64
	RejectedHostReports uint64
	ClampedValues       uint64
	QuarantinedSessions uint64
	// Rollup summarizer counters: windows currently open / already
	// closed, accuracy-losing sketch evictions, accounted bytes in use,
	// rollup events lost to slow subscribers, and rollup subscriptions
	// refused under load.
	RollupWindowsOpen   int
	RollupWindowsClosed uint64
	RollupEvictions     uint64
	RollupBytes         int
	RollupEventsDropped uint64
	ShedRollups         uint64
}

// Listen starts a server on addr (e.g. "127.0.0.1:0") with a default
// in-memory fleet store.
func Listen(addr string) (*Server, error) {
	return ListenOpts(addr, Options{})
}

// ListenFleet starts a server with an explicitly sized fleet store.
func ListenFleet(addr string, fleetCfg fleetstore.Config) (*Server, error) {
	return ListenOpts(addr, Options{Fleet: fleetCfg})
}

// ListenOpts starts a fully configured server. With a DataDir it
// recovers the fleet store (state "replaying") before accepting
// sessions, so a client never observes a partially recovered store.
func ListenOpts(addr string, o Options) (*Server, error) {
	s := &Server{
		DiagnosisConfig: diagnosis.DefaultConfig(),
		adm:             newAdmission(o.ShedSubscriptionsAt, o.ShedQueriesAt, o.RetryAfterMs),
		conns:           make(map[net.Conn]struct{}),
		readTimeout:     o.ReadTimeout,
		writeTimeout:    o.WriteTimeout,
		maxStrikes:      o.MaxStrikes,
		shard:           o.Shard,
		replBuffer:      o.ReplBuffer,
		repls:           make(map[*fleetstore.ReplicaSync]struct{}),
		semiSync:        o.SemiSync,
	}
	if s.maxStrikes == 0 {
		s.maxStrikes = DefaultMaxStrikes
	}
	s.state.Store(int32(StateStarting))

	cfg := o.Fleet
	if cfg == (fleetstore.Config{}) {
		cfg = fleetstore.DefaultConfig()
	}
	// The summarizer observes the store's admission stream, so WAL
	// replay rebuilds the rollup windows alongside the incidents.
	s.roll = rollup.New(o.Rollup)
	cfg.Observer = s.roll
	cfg.BumpEpoch = o.BumpEpoch
	var st *fleetstore.Store
	if o.DataDir != "" {
		s.state.Store(int32(StateReplaying))
		var err error
		st, err = fleetstore.Open(o.DataDir, cfg)
		if err != nil {
			return nil, err
		}
	} else {
		st = fleetstore.New(cfg)
	}

	lis, err := net.Listen("tcp", addr)
	if err != nil {
		st.Close()
		return nil, fmt.Errorf("analyzd: listen: %w", err)
	}
	s.lis = lis
	s.fleet = st
	if o.ManualPipeline {
		s.pipe = fleetstore.NewPipelineManual(st, o.PipeDepth)
	} else {
		s.pipe = fleetstore.NewPipeline(st, o.PipeDepth, o.PipeWorkers)
	}
	s.state.Store(int32(StateServing))
	s.acceptWG.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.lis.Addr().String() }

// Fleet exposes the server's fleet store (in-process consumers).
func (s *Server) Fleet() *fleetstore.Store { return s.fleet }

// State returns the lifecycle phase.
func (s *Server) State() State { return State(s.state.Load()) }

// Rollups exposes the server's summarizer (in-process consumers).
func (s *Server) Rollups() *rollup.Summarizer { return s.roll }

// Stats returns activity counters.
func (s *Server) Stats() Stats {
	fc := s.fleet.CountersSnapshot()
	rs := s.roll.Stats()
	return Stats{
		Sessions:          int(s.sessions.Load()),
		Reports:           int(s.reports.Load()),
		HostReports:       int(s.hostReports.Load()),
		Diagnoses:         int(s.diagnoses.Load()),
		Ingested:          fc.Ingested,
		Dropped:           s.pipe.Dropped(),
		Evicted:           fc.Evicted,
		Incidents:         fc.Incidents,
		OpenIncidents:     fc.OpenIncidents,
		EventsDropped:     fc.EventsDropped,
		ShedSubscriptions: s.adm.shedSubscriptions.Load(),
		ShedQueries:       s.adm.shedQueries.Load(),
		WALErrors:         fc.WALErrors,
		Replayed:          s.fleet.ReplayedRecords(),

		DecodeErrors:        s.decodeErrors.Load(),
		RejectedReports:     s.rejectedReports.Load(),
		RejectedHostReports: s.rejectedHostReports.Load(),
		ClampedValues:       s.clampedValues.Load(),
		QuarantinedSessions: s.quarantined.Load(),

		RollupWindowsOpen:   rs.WindowsOpen,
		RollupWindowsClosed: rs.WindowsClosed,
		RollupEvictions:     rs.Evictions,
		RollupBytes:         rs.BytesInUse,
		RollupEventsDropped: rs.EventsDropped,
		ShedRollups:         s.adm.shedRollups.Load(),
	}
}

// health is the wire view of Stats plus the lifecycle state.
func (s *Server) health() wire.Health {
	st := s.Stats()
	return wire.Health{
		State:             s.State().String(),
		Durable:           s.fleet.Durable(),
		Load:              s.pipe.Load(),
		Sessions:          st.Sessions,
		Diagnoses:         st.Diagnoses,
		Ingested:          st.Ingested,
		Dropped:           st.Dropped,
		OpenIncidents:     st.OpenIncidents,
		ShedSubscriptions: st.ShedSubscriptions,
		ShedQueries:       st.ShedQueries,
		WALErrors:         st.WALErrors,

		RollupWindowsOpen:   st.RollupWindowsOpen,
		RollupWindowsClosed: st.RollupWindowsClosed,
		RollupEvictions:     st.RollupEvictions,
		RollupBytes:         st.RollupBytes,
		ShedRollups:         st.ShedRollups,
	}
}

// drainDeadline bounds the terminal-frame write to a stuck subscriber
// so one dead client cannot stall the whole drain.
const drainDeadline = 2 * time.Second

// Close drains the server: stop accepting, tell live subscribers
// goodbye with a terminal frame, close every session, wait for the
// handlers, then flush and close the ingest pipeline and the fleet
// store (checkpointing a durable one). Safe to call from any number of
// goroutines; every call returns the first call's error.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		s.state.Store(int32(StateDraining))
		// 1. Stop accepting and wait for the accept goroutine: after
		// this, the connection map only shrinks.
		err := s.lis.Close()
		s.acceptWG.Wait()
		// 2. Close the hub (and the rollup subscriber streams):
		// forwarders see their event channel end, push the terminal
		// shutdown frame and exit. Every live connection gets a write
		// deadline first, so a subscriber that stopped reading cannot
		// wedge a forwarder mid-event and stall the drain. The
		// summarizer itself keeps folding until the ingest flush below.
		s.fleet.Hub().Close()
		s.roll.CloseSubscribers()
		// Detach replication taps: their forwarders see Done close, tell
		// the follower goodbye and exit — the follower re-syncs from its
		// durable watermark against whichever shard is promoted.
		s.mu.Lock()
		for r := range s.repls {
			r.Close()
		}
		s.mu.Unlock()
		deadline := time.Now().Add(drainDeadline)
		s.mu.Lock()
		for c := range s.conns {
			_ = c.SetWriteDeadline(deadline)
		}
		s.mu.Unlock()
		s.fwdWG.Wait()
		// 3. Tear down the sessions and wait for their handlers.
		s.mu.Lock()
		s.closed = true
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		s.wg.Wait()
		// 4. Flush: drain the ingest queue into the store, then close
		// the store (fsyncs the WAL and writes a final snapshot) and
		// finalize the rollup windows so exit-summary counters cover
		// the flushed tail.
		s.pipe.Close()
		s.roll.Close()
		if cerr := s.fleet.Close(); err == nil {
			err = cerr
		}
		s.state.Store(int32(StateStopped))
		s.closeErr = err
	})
	return s.closeErr
}

func (s *Server) acceptLoop() {
	defer s.acceptWG.Done()
	for {
		conn, err := s.lis.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.sessions.Add(1)
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
			conn.Close()
		}()
	}
}

// session is one connection's analyzer state.
type session struct {
	conn net.Conn
	// writeMu serializes frames from the request/reply loop with
	// asynchronously pushed incident events.
	writeMu sync.Mutex
	// writeTimeout bounds each frame write (zero = none).
	writeTimeout time.Duration

	// fabric names this session in the fleet store.
	fabric string
	// topo is nil for operator sessions (query/subscribe only).
	topo    *topo.Topology
	epochNS int64
	// validator admits reports against the handshake-declared topology;
	// lim bounds plausible magnitudes for sanitization. Both nil/zero on
	// operator sessions.
	validator *wire.Validator
	lim       telemetry.Limits
	// strikes counts decode/admission failures toward quarantine.
	// rejected/rejectedUnknown and clamped carry the per-session hostile
	// accounting into Coverage at diagnosis time, so a verdict says
	// "switch 3 was heard from and disbelieved" instead of "switch 3 was
	// silent".
	strikes         int
	rejected        map[topo.NodeID]int
	rejectedUnknown int
	clamped         int
	// reports keeps the freshest report per switch; hostReports the
	// freshest host-agent counter snapshot per host. hostRejected counts
	// host snapshots that failed admission — folded into Coverage at
	// diagnosis time so the verdict knows host evidence was offered and
	// disbelieved.
	reports             map[topo.NodeID]*telemetry.Report
	hostReports         map[topo.NodeID]*telemetry.HostReport
	hostRejected        map[topo.NodeID]int
	hostRejectedUnknown int
	// history records completed diagnoses for incident grouping (trigger
	// order, the order requests arrive).
	history []*core.Result
	// sub is the live incident subscription, once MsgSubscribe arrived;
	// rsub the live rollup subscription (MsgSubscribeRollups).
	sub  *fleetstore.Sub
	rsub *rollup.Sub
	// repl is the replication stream, once MsgReplicate turned this
	// session into a follower feed.
	repl *fleetstore.ReplicaSync
}

func (sess *session) write(t wire.MsgType, payload []byte) error {
	sess.writeMu.Lock()
	defer sess.writeMu.Unlock()
	if sess.writeTimeout > 0 {
		_ = sess.conn.SetWriteDeadline(time.Now().Add(sess.writeTimeout))
		defer sess.conn.SetWriteDeadline(time.Time{})
	}
	return wire.WriteFrame(sess.conn, t, payload)
}

func (sess *session) writeJSON(t wire.MsgType, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("analyzd: encode %T: %w", v, err)
	}
	return sess.write(t, data)
}

func (s *Server) handle(conn net.Conn) {
	sess := &session{conn: conn, writeTimeout: s.writeTimeout}
	sendErr := func(msg string) { _ = sess.write(wire.MsgError, []byte(msg)) }
	// readFrame applies the per-frame read deadline: a peer that stops
	// mid-frame (or never sends one) is cut loose instead of pinning a
	// handler goroutine forever.
	readFrame := func() (wire.MsgType, []byte, error) {
		// Subscribed (and replicating) sessions idle by design — their
		// traffic flows the other way — so the per-frame deadline only
		// polices sessions that owe us frames.
		if s.readTimeout > 0 && sess.sub == nil && sess.rsub == nil && sess.repl == nil {
			_ = conn.SetReadDeadline(time.Now().Add(s.readTimeout))
		}
		return wire.ReadFrame(conn)
	}

	// Handshake first: nothing else is meaningful without it.
	t, payload, err := readFrame()
	if err != nil {
		return
	}
	if t != wire.MsgHello {
		sendErr("expected hello")
		return
	}
	hello, err := wire.ParseHello(payload)
	if err != nil {
		sendErr(err.Error())
		return
	}
	sess.fabric = hello.Fabric
	if sess.fabric == "" {
		sess.fabric = "default"
	}
	// An empty topology marks an operator session: it may query and
	// subscribe but carries no fabric of its own.
	if len(hello.Topo) > 0 && string(hello.Topo) != "null" {
		if hello.EpochNS <= 0 {
			sendErr("non-positive telemetry epoch")
			return
		}
		tp, err := topo.ParseSpecJSON(hello.Topo)
		if err != nil {
			sendErr(fmt.Sprintf("bad topology: %v", err))
			return
		}
		sess.topo = tp
		sess.epochNS = hello.EpochNS
		sess.reports = make(map[topo.NodeID]*telemetry.Report)
		sess.hostReports = make(map[topo.NodeID]*telemetry.HostReport)
		sess.hostRejected = make(map[topo.NodeID]int)
		sess.validator = wire.NewValidator(tp)
		sess.lim = telemetry.LimitsFor(tp.LinkBandwidth, hello.EpochNS)
		sess.rejected = make(map[topo.NodeID]int)
	}
	if err := sess.write(wire.MsgHelloOK, nil); err != nil {
		return
	}
	defer func() {
		if sess.sub != nil {
			s.fleet.Hub().Unsubscribe(sess.sub)
		}
		if sess.rsub != nil {
			s.roll.Unsubscribe(sess.rsub)
		}
		if sess.repl != nil {
			sess.repl.Close()
			s.mu.Lock()
			delete(s.repls, sess.repl)
			s.mu.Unlock()
		}
	}()

	for {
		t, payload, err := readFrame()
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				sendErr(err.Error())
			}
			return
		}
		if !s.serve(sess, t, payload, sendErr) {
			return
		}
	}
}

// strike charges one decode/admission failure against the session's
// budget. Within budget the session survives — and, crucially, gets no
// MsgError: report pushes have no reply slot, so an unsolicited error
// frame would be misread as the answer to the session's next request.
// Budget exhausted, the session is quarantined: told why, counted, and
// dropped.
func (s *Server) strike(sess *session) bool {
	sess.strikes++
	if s.maxStrikes > 0 && sess.strikes >= s.maxStrikes {
		s.quarantined.Add(1)
		_ = sess.write(wire.MsgError, []byte(fmt.Sprintf(
			"session quarantined: %d malformed or rejected frames", sess.strikes)))
		return false
	}
	return true
}

// throttle refuses a sheddable request with a backpressure reply; the
// session stays alive — the client backs off and retries.
func (s *Server) throttle(sess *session, tier string) bool {
	err := sess.writeJSON(wire.MsgThrottle, wire.Throttle{
		Tier:         tier,
		RetryAfterMs: s.adm.retryAfterMs,
	})
	return err == nil
}

// serve dispatches one request frame; false ends the session.
func (s *Server) serve(sess *session, t wire.MsgType, payload []byte, sendErr func(string)) bool {
	switch t {
	case wire.MsgReport:
		if sess.topo == nil {
			sendErr("operator session cannot push reports")
			return false
		}
		rep := &telemetry.Report{}
		if err := rep.UnmarshalBinary(payload); err != nil {
			s.decodeErrors.Add(1)
			return s.strike(sess)
		}
		if err := sess.validator.CheckReport(rep); err != nil {
			s.rejectedReports.Add(1)
			var re *wire.ReportError
			if errors.As(err, &re) && re.SwitchKnown {
				sess.rejected[re.Switch]++
			} else {
				sess.rejectedUnknown++
			}
			return s.strike(sess)
		}
		if n := telemetry.SanitizeReport(rep, sess.lim); n > 0 {
			s.clampedValues.Add(uint64(n))
			sess.clamped += n
		}
		sess.reports[rep.Switch] = rep
		s.reports.Add(1)
	case wire.MsgHostReport:
		if sess.topo == nil {
			sendErr("operator session cannot push host reports")
			return false
		}
		hr := &telemetry.HostReport{}
		if err := hr.UnmarshalBinary(payload); err != nil {
			s.decodeErrors.Add(1)
			return s.strike(sess)
		}
		if err := sess.validator.CheckHostReport(hr); err != nil {
			s.rejectedHostReports.Add(1)
			var re *wire.ReportError
			if errors.As(err, &re) && re.SwitchKnown {
				sess.hostRejected[re.Switch]++
			} else {
				sess.hostRejectedUnknown++
			}
			return s.strike(sess)
		}
		if n := telemetry.SanitizeHostReport(hr, telemetry.HostLimitsFor(sess.topo.LinkBandwidth)); n > 0 {
			s.clampedValues.Add(uint64(n))
			sess.clamped += n
		}
		sess.hostReports[hr.Host] = hr
		s.hostReports.Add(1)
	case wire.MsgDiagnose:
		// Never shed: a refused diagnosis loses the complaint and its
		// provenance evidence; the tiers above it absorb overload first.
		if sess.topo == nil {
			sendErr("operator session cannot diagnose")
			return false
		}
		// A fenced shard stops acking ingest on every path, not just the
		// writer-routed one.
		if s.fenced() {
			_ = sess.writeJSON(wire.MsgFence, s.fenceInfo())
			return false
		}
		victim, atNS, err := wire.DecodeDiagnoseRequest(payload)
		if err != nil {
			sendErr(fmt.Sprintf("bad diagnose request: %v", err))
			return false
		}
		reply := s.diagnose(sess, victim, atNS)
		if err := sess.writeJSON(wire.MsgDiagnosis, reply); err != nil {
			return false
		}
		s.diagnoses.Add(1)
	case wire.MsgIncidents:
		incs := core.GroupIncidents(sess.history, incidentWindow)
		out := make([]wire.IncidentSummary, 0, len(incs))
		for _, inc := range incs {
			out = append(out, wire.IncidentSummary{
				Type:       inc.Type.String(),
				Complaints: len(inc.Results),
				Victims:    inc.Victims(),
				FirstNS:    int64(inc.First),
				LastNS:     int64(inc.Last),
				Rendered:   inc.Primary().Diagnosis.String(),
			})
		}
		if err := sess.writeJSON(wire.MsgIncidentList, out); err != nil {
			return false
		}
	case wire.MsgQueryIncidents:
		if !s.adm.admitQuery(s.pipe.Load()) {
			return s.throttle(sess, TierQueries)
		}
		var wq wire.IncidentQuery
		if err := json.Unmarshal(payload, &wq); err != nil {
			sendErr(fmt.Sprintf("bad incident query: %v", err))
			return false
		}
		q, err := queryFromWire(wq)
		if err != nil {
			sendErr(err.Error())
			return false
		}
		// Read-your-writes: settle the ingest queue before answering.
		s.pipe.Drain()
		incs := s.fleet.Incidents(q)
		out := make([]wire.FleetIncident, 0, len(incs))
		for i := range incs {
			out = append(out, incidentToWire(&incs[i]))
		}
		if err := sess.writeJSON(wire.MsgIncidentMatches, out); err != nil {
			return false
		}
	case wire.MsgSubscribe:
		if !s.adm.admitSubscription(s.pipe.Load()) {
			return s.throttle(sess, TierSubscriptions)
		}
		var req wire.SubscribeRequest
		if err := json.Unmarshal(payload, &req); err != nil {
			sendErr(fmt.Sprintf("bad subscribe request: %v", err))
			return false
		}
		f, err := filterFromWire(req)
		if err != nil {
			sendErr(err.Error())
			return false
		}
		if sess.sub != nil {
			sendErr("already subscribed")
			return false
		}
		sess.sub = s.fleet.Hub().Subscribe(f, 0)
		if err := sess.write(wire.MsgSubscribeOK, nil); err != nil {
			return false
		}
		s.fwdWG.Add(1)
		go s.forwardEvents(sess)
	case wire.MsgQueryRollups:
		// Rollup queries shed with the incident-query tier: both are
		// operator reads against settled state.
		if !s.adm.admitQuery(s.pipe.Load()) {
			return s.throttle(sess, TierQueries)
		}
		var wq wire.RollupQuery
		if err := json.Unmarshal(payload, &wq); err != nil {
			sendErr(fmt.Sprintf("bad rollup query: %v", err))
			return false
		}
		q, err := rollupQueryFromWire(wq)
		if err != nil {
			sendErr(err.Error())
			return false
		}
		// Read-your-writes: settle the ingest queue before answering.
		s.pipe.Drain()
		res := s.roll.Query(q)
		if err := sess.writeJSON(wire.MsgRollupList, rollupResultToWire(res)); err != nil {
			return false
		}
	case wire.MsgSubscribeRollups:
		if !s.adm.admitRollup(s.pipe.Load()) {
			return s.throttle(sess, TierRollups)
		}
		var req wire.RollupSubscribeRequest
		if err := json.Unmarshal(payload, &req); err != nil {
			sendErr(fmt.Sprintf("bad rollup subscribe request: %v", err))
			return false
		}
		if sess.rsub != nil {
			sendErr("already subscribed to rollups")
			return false
		}
		sess.rsub = s.roll.Subscribe(req.ClosedOnly, 0)
		if err := sess.write(wire.MsgSubscribeOK, nil); err != nil {
			return false
		}
		s.fwdWG.Add(1)
		go s.forwardRollups(sess)
	case wire.MsgHealth:
		// Health is answered in every lifecycle state and on every
		// session kind: it is how supervisors watch the drain.
		if err := sess.writeJSON(wire.MsgHealthReply, s.health()); err != nil {
			return false
		}
	case wire.MsgReplicate:
		var req wire.ReplicateRequest
		if err := json.Unmarshal(payload, &req); err != nil {
			sendErr(fmt.Sprintf("bad replicate request: %v", err))
			return false
		}
		if sess.repl != nil {
			sendErr("already replicating")
			return false
		}
		// A follower carrying a higher mirrored epoch means a promotion
		// happened while this primary was away: demote durably and refuse
		// with the typed fence so the follower looks elsewhere.
		if req.Epoch > s.fleet.Epoch() {
			_ = s.fleet.NoteFence(req.Epoch)
			_ = sess.writeJSON(wire.MsgFence, wire.FenceInfo{
				Shard: s.shard, Epoch: s.fleet.Epoch(), Observed: req.Epoch, Fenced: true,
			})
			return false
		}
		r, err := s.fleet.SyncReplica(req.FromSeq, s.replBuffer)
		if err != nil {
			sendErr(fmt.Sprintf("replicate: %v", err))
			return false
		}
		// Announce our epoch ahead of the catch-up so the follower
		// mirrors it durably before acking anything on this stream.
		if err := sess.writeJSON(wire.MsgEpoch, wire.EpochAnnounce{Shard: s.shard, Epoch: s.fleet.Epoch()}); err != nil {
			r.Close()
			return false
		}
		// Catch-up inline, in order, before the live forwarder starts:
		// the tap was registered under the same cut, so the follower
		// sees exactly the admission sequence.
		if r.Snapshot != nil {
			if err := sess.write(wire.MsgReplSnapshot, wire.EncodeReplSnapshot(r.SnapshotSeq, r.Snapshot)); err != nil {
				r.Close()
				return false
			}
		}
		for _, e := range r.Backlog {
			if err := sess.write(wire.MsgReplRecord, wire.EncodeReplRecord(e.Seq, e.Payload)); err != nil {
				r.Close()
				return false
			}
		}
		sess.repl = r
		s.mu.Lock()
		s.repls[r] = struct{}{}
		s.mu.Unlock()
		s.fwdWG.Add(1)
		go s.forwardRepl(sess)
	case wire.MsgReplAck:
		var ack wire.ReplAck
		if err := json.Unmarshal(payload, &ack); err != nil {
			s.decodeErrors.Add(1)
			return s.strike(sess)
		}
		for {
			cur := s.followerSeq.Load()
			if ack.Seq <= cur || s.followerSeq.CompareAndSwap(cur, ack.Seq) {
				break
			}
		}
		for ack.Epoch != 0 {
			cur := s.followerEpoch.Load()
			if ack.Epoch <= cur || s.followerEpoch.CompareAndSwap(cur, ack.Epoch) {
				break
			}
		}
	case wire.MsgShardInfo:
		if err := sess.writeJSON(wire.MsgShardInfoReply, s.shardInfo()); err != nil {
			return false
		}
	case wire.MsgWriteRecord:
		return s.serveWrite(sess, payload, sendErr)
	case wire.MsgEpoch:
		return s.serveEpochAnnounce(sess, payload)
	case wire.MsgQueryRecords:
		return s.serveRecordQuery(sess, payload, sendErr)
	case wire.MsgCutover:
		return s.serveCutover(sess, payload, sendErr)
	default:
		sendErr(fmt.Sprintf("unexpected message type %d", t))
		return false
	}
	return true
}

// forwardEvents streams the session's subscription to its connection.
// It exits when the hub closes the subscription (session teardown or
// server drain) or the connection dies; on a drain it pushes the
// terminal shutdown frame so the tail learns the difference between
// "server going away" and "connection lost".
func (s *Server) forwardEvents(sess *session) {
	defer s.fwdWG.Done()
	for ev := range sess.sub.Events() {
		if err := sess.writeJSON(wire.MsgIncidentEvent, eventToWire(&ev)); err != nil {
			sess.conn.Close() // unblock the read loop; it unsubscribes
			return
		}
	}
	if s.State() == StateDraining {
		// Bound the goodbye: a wedged subscriber must not stall Close.
		_ = sess.conn.SetWriteDeadline(time.Now().Add(drainDeadline))
		_ = sess.write(wire.MsgShutdown, nil)
		_ = sess.conn.SetWriteDeadline(time.Time{})
	}
}

// forwardRollups is forwardEvents for the rollup stream: it pushes
// window summaries until the subscription closes (session teardown or
// server drain), then tells a draining tail goodbye.
func (s *Server) forwardRollups(sess *session) {
	defer s.fwdWG.Done()
	for ev := range sess.rsub.Events() {
		if err := sess.writeJSON(wire.MsgRollupEvent, rollupEventToWire(&ev)); err != nil {
			sess.conn.Close() // unblock the read loop; it unsubscribes
			return
		}
	}
	if s.State() == StateDraining {
		_ = sess.conn.SetWriteDeadline(time.Now().Add(drainDeadline))
		_ = sess.write(wire.MsgShutdown, nil)
		_ = sess.conn.SetWriteDeadline(time.Time{})
	}
}

// forwardRepl streams the replication tap to the follower. It exits
// when the tap dies (slow follower, or drain detaching it) or the
// connection does; either way the follower reconnects and re-syncs
// from its own durable watermark, so nothing is lost — only re-sent.
func (s *Server) forwardRepl(sess *session) {
	defer s.fwdWG.Done()
	r := sess.repl
	for {
		select {
		case e := <-r.Live:
			if e.Epoch != 0 {
				// Cutover epoch bump: announce so the follower mirrors it
				// durably and future acks carry it.
				if err := sess.writeJSON(wire.MsgEpoch, wire.EpochAnnounce{Shard: s.shard, Epoch: e.Epoch}); err != nil {
					r.Close()
					sess.conn.Close()
					return
				}
				continue
			}
			mt := wire.MsgReplRecord
			if e.Snapshot {
				mt = wire.MsgReplSnapshot
			}
			if err := sess.write(mt, wire.EncodeReplRecord(e.Seq, e.Payload)); err != nil {
				r.Close()
				sess.conn.Close() // unblock the read loop; it detaches
				return
			}
		case <-r.Done:
			if s.State() == StateDraining {
				_ = sess.conn.SetWriteDeadline(time.Now().Add(drainDeadline))
				_ = sess.write(wire.MsgShutdown, nil)
				_ = sess.conn.SetWriteDeadline(time.Time{})
			}
			sess.conn.Close()
			return
		}
	}
}

// shardInfo is the wire view of this instance's cluster identity.
func (s *Server) shardInfo() wire.ShardInfo {
	seq := s.fleet.Seq()
	fseq := s.followerSeq.Load()
	info := wire.ShardInfo{
		Shard:           s.shard,
		Role:            "primary",
		Seq:             seq,
		FollowerSeq:     fseq,
		LastSnapshotSeq: s.fleet.LastSnapshotSeq(),
		Replicas:        s.fleet.Replicas(),
		Epoch:           s.fleet.Epoch(),
		FollowerEpoch:   s.followerEpoch.Load(),
		Fenced:          s.fleet.FencedBy() != 0,
	}
	if info.Replicas > 0 && seq > fseq {
		info.Lag = seq - fseq
	}
	return info
}

// incidentWindow groups diagnoses whose triggers fall within this span
// of each other (matches the trial default correlation horizon).
const incidentWindow = 2 * sim.Millisecond

// victimEndpoints resolves the victim flow's source and destination to
// host nodes in the session topology (deduplicated; unknown IPs are
// skipped rather than guessed).
func victimEndpoints(t *topo.Topology, victim packetFiveTuple) []topo.NodeID {
	var out []topo.NodeID
	add := func(ip uint32) {
		id, ok := t.HostByIP(ip)
		if !ok {
			return
		}
		for _, o := range out {
			if o == id {
				return
			}
		}
		out = append(out, id)
	}
	add(victim.SrcIP)
	add(victim.DstIP)
	return out
}

func (s *Server) diagnose(sess *session, victim packetFiveTuple, atNS int64) wire.Diagnosis {
	reports := make([]*telemetry.Report, 0, len(sess.reports))
	for _, rep := range sess.reports {
		reports = append(reports, rep)
	}
	sortReports(reports)
	cfg := provenance.DefaultConfig(sess.topo.LinkBandwidth, sess.epochNS)
	g := provenance.Build(cfg, reports, sess.topo)
	// Fold this session's hostile-input history into Coverage before the
	// verdict: a rejected switch was heard from and disbelieved, which
	// reads very differently from a switch that never reported.
	for sw, n := range sess.rejected {
		for i := 0; i < n; i++ {
			g.Coverage.NoteRejected(sw)
		}
	}
	for i := 0; i < sess.rejectedUnknown; i++ {
		g.Coverage.NoteRejected(-1)
	}
	g.Coverage.Clamped += sess.clamped
	// Host-agent evidence joins the graph the same way. The expectation
	// is declared only when the session actually ran host agents (an
	// admitted or rejected snapshot proves it), so a switch-only fleet is
	// never penalized for a channel it does not have — but a fleet WITH
	// host agents that goes silent on the victim's endpoints loses
	// confidence instead of getting a confident network verdict.
	hostActive := len(sess.hostReports) > 0
	hosts := make([]topo.NodeID, 0, len(sess.hostReports))
	for id := range sess.hostReports {
		hosts = append(hosts, id)
	}
	sort.Slice(hosts, func(i, j int) bool { return hosts[i] < hosts[j] })
	for _, id := range hosts {
		g.AddHostReport(sess.hostReports[id], sess.topo)
	}
	for id, n := range sess.hostRejected {
		hostActive = true
		for i := 0; i < n; i++ {
			g.Coverage.NoteHostRejected(id)
		}
	}
	for i := 0; i < sess.hostRejectedUnknown; i++ {
		hostActive = true
		g.Coverage.NoteHostRejected(-1)
	}
	if hostActive {
		g.Coverage.SetExpectedHosts(victimEndpoints(sess.topo, victim))
	}
	d := diagnosis.Diagnose(s.DiagnosisConfig, g, sess.topo, victim)
	res := &core.Result{
		Trigger:   host.Trigger{Victim: victim, At: sim.Time(atNS)},
		Diagnosis: d,
	}
	sess.history = append(sess.history, res)
	// Feed the fleet store; a full queue sheds the record (counted)
	// rather than stalling this session. The pod label rides along so
	// rollups can key their hierarchy without re-deriving topology.
	rec := fleetstore.NewRecord(sess.fabric, res)
	if n := int(rec.Node); n >= 0 && n < len(sess.topo.Nodes) {
		rec.Pod = topo.PodLabel(sess.topo.Nodes[n].Name)
	}
	s.pipe.Offer(rec)
	cause := d.PrimaryCause()
	reply := wire.Diagnosis{
		Type:        d.Type.String(),
		CauseKind:   cause.Kind.String(),
		InitialNode: int(cause.Port.Node),
		InitialPort: cause.Port.Port,
		Rendered:    d.String() + g.String(),
		Switches:    len(reports),
		Confidence:  d.Confidence.String(),
		Score:       d.ConfidenceScore,
		Missing:     d.Missing,
	}
	for _, f := range cause.Flows {
		reply.Culprits = append(reply.Culprits, f.String())
	}
	return reply
}

// Package analyzd is the Hawkeye analyzer as a network service: switches'
// CPU pollers (or, here, the simulation harness standing in for them)
// push binary telemetry reports over TCP; operators ask for a diagnosis
// of a victim flow and get the provenance verdict back. The simulator
// runs the same provenance/diagnosis code in-process for the evaluation;
// this service is the deployment face of the analyzer — one process per
// fabric, sessions carry the topology in the handshake.
package analyzd

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"hawkeye/internal/core"
	"hawkeye/internal/diagnosis"
	"hawkeye/internal/host"
	"hawkeye/internal/provenance"
	"hawkeye/internal/sim"
	"hawkeye/internal/telemetry"
	"hawkeye/internal/topo"
	"hawkeye/internal/wire"
)

// Server accepts analyzer sessions.
type Server struct {
	lis net.Listener

	// DiagnosisConfig tunes signature matching (defaults if zero).
	DiagnosisConfig diagnosis.Config

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	// Stats (updated under mu).
	sessions  int
	reports   int
	diagnoses int
}

// Stats is a snapshot of server activity.
type Stats struct {
	Sessions  int
	Reports   int
	Diagnoses int
}

// Listen starts a server on addr (e.g. "127.0.0.1:0").
func Listen(addr string) (*Server, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("analyzd: listen: %w", err)
	}
	s := &Server{
		lis:             lis,
		DiagnosisConfig: diagnosis.DefaultConfig(),
		conns:           make(map[net.Conn]struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.lis.Addr().String() }

// Stats returns activity counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{Sessions: s.sessions, Reports: s.reports, Diagnoses: s.diagnoses}
}

// Close stops accepting, closes every live session and waits for the
// handlers to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.lis.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.lis.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.sessions++
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
			conn.Close()
		}()
	}
}

// session is one connection's analyzer state.
type session struct {
	topo    *topo.Topology
	epochNS int64
	// reports keeps the freshest report per switch.
	reports map[topo.NodeID]*telemetry.Report
	// history records completed diagnoses for incident grouping (trigger
	// order, the order requests arrive).
	history []*core.Result
}

func (s *Server) handle(conn net.Conn) {
	sendErr := func(msg string) { _ = wire.WriteFrame(conn, wire.MsgError, []byte(msg)) }

	// Handshake first: nothing else is meaningful without a topology.
	t, payload, err := wire.ReadFrame(conn)
	if err != nil {
		return
	}
	if t != wire.MsgHello {
		sendErr("expected hello")
		return
	}
	var hello wire.Hello
	if err := json.Unmarshal(payload, &hello); err != nil {
		sendErr(fmt.Sprintf("bad hello: %v", err))
		return
	}
	if hello.Version != wire.ProtocolVersion {
		sendErr(fmt.Sprintf("protocol version %d, want %d", hello.Version, wire.ProtocolVersion))
		return
	}
	if hello.EpochNS <= 0 {
		sendErr("non-positive telemetry epoch")
		return
	}
	tp, err := topo.ParseSpecJSON(hello.Topo)
	if err != nil {
		sendErr(fmt.Sprintf("bad topology: %v", err))
		return
	}
	if err := wire.WriteFrame(conn, wire.MsgHelloOK, nil); err != nil {
		return
	}
	sess := &session{
		topo:    tp,
		epochNS: hello.EpochNS,
		reports: make(map[topo.NodeID]*telemetry.Report),
	}

	for {
		t, payload, err := wire.ReadFrame(conn)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				sendErr(err.Error())
			}
			return
		}
		switch t {
		case wire.MsgReport:
			rep := &telemetry.Report{}
			if err := rep.UnmarshalBinary(payload); err != nil {
				sendErr(fmt.Sprintf("bad report: %v", err))
				return
			}
			if int(rep.Switch) >= len(sess.topo.Nodes) {
				sendErr(fmt.Sprintf("report for unknown switch %d", rep.Switch))
				return
			}
			sess.reports[rep.Switch] = rep
			s.mu.Lock()
			s.reports++
			s.mu.Unlock()
		case wire.MsgDiagnose:
			victim, atNS, err := wire.DecodeDiagnoseRequest(payload)
			if err != nil {
				sendErr(fmt.Sprintf("bad diagnose request: %v", err))
				return
			}
			reply := s.diagnose(sess, victim, atNS)
			if err := wire.WriteJSON(conn, wire.MsgDiagnosis, reply); err != nil {
				return
			}
			s.mu.Lock()
			s.diagnoses++
			s.mu.Unlock()
		case wire.MsgIncidents:
			incs := core.GroupIncidents(sess.history, incidentWindow)
			out := make([]wire.IncidentSummary, 0, len(incs))
			for _, inc := range incs {
				out = append(out, wire.IncidentSummary{
					Type:       inc.Type.String(),
					Complaints: len(inc.Results),
					Victims:    inc.Victims(),
					FirstNS:    int64(inc.First),
					LastNS:     int64(inc.Last),
					Rendered:   inc.Primary().Diagnosis.String(),
				})
			}
			if err := wire.WriteJSON(conn, wire.MsgIncidentList, out); err != nil {
				return
			}
		default:
			sendErr(fmt.Sprintf("unexpected message type %d", t))
			return
		}
	}
}

// incidentWindow groups diagnoses whose triggers fall within this span
// of each other (matches the trial default correlation horizon).
const incidentWindow = 2 * sim.Millisecond

func (s *Server) diagnose(sess *session, victim packetFiveTuple, atNS int64) wire.Diagnosis {
	reports := make([]*telemetry.Report, 0, len(sess.reports))
	for _, rep := range sess.reports {
		reports = append(reports, rep)
	}
	sortReports(reports)
	cfg := provenance.DefaultConfig(sess.topo.LinkBandwidth, sess.epochNS)
	g := provenance.Build(cfg, reports, sess.topo)
	d := diagnosis.Diagnose(s.DiagnosisConfig, g, sess.topo, victim)
	sess.history = append(sess.history, &core.Result{
		Trigger:   host.Trigger{Victim: victim, At: sim.Time(atNS)},
		Diagnosis: d,
	})
	cause := d.PrimaryCause()
	reply := wire.Diagnosis{
		Type:        d.Type.String(),
		CauseKind:   cause.Kind.String(),
		InitialNode: int(cause.Port.Node),
		InitialPort: cause.Port.Port,
		Rendered:    d.String() + g.String(),
		Switches:    len(reports),
	}
	for _, f := range cause.Flows {
		reply.Culprits = append(reply.Culprits, f.String())
	}
	return reply
}

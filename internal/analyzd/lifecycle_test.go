package analyzd

import (
	"errors"
	"sync"
	"testing"

	"hawkeye/internal/fleetstore"
	"hawkeye/internal/wire"
)

// TestCloseIdempotentConcurrent: any number of goroutines may race
// Close; every call returns the same result and the server lands in
// the stopped state exactly once.
func TestCloseIdempotentConcurrent(t *testing.T) {
	s, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(s.Addr(), smallTopo(t), 131072)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 8
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = s.Close()
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != errs[0] {
			t.Fatalf("Close %d returned %v, Close 0 returned %v", i, err, errs[0])
		}
	}
	if got := s.State(); got != StateStopped {
		t.Fatalf("state after close = %v, want stopped", got)
	}
	// And again, after the dust settled.
	if err := s.Close(); err != errs[0] {
		t.Fatalf("late Close returned %v", err)
	}
}

// TestHealthOverTheWire: any session kind can probe the lifecycle
// state and the load counters.
func TestHealthOverTheWire(t *testing.T) {
	dir := t.TempDir()
	s, err := ListenOpts("127.0.0.1:0", Options{
		DataDir: dir,
		Fleet:   fleetstore.Config{GroupWindow: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := s.State(); got != StateServing {
		t.Fatalf("state = %v, want serving", got)
	}

	op, err := DialOperator(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer op.Close()
	h, err := op.Health()
	if err != nil {
		t.Fatal(err)
	}
	if h.State != "serving" || !h.Durable {
		t.Fatalf("health = %+v, want serving+durable", h)
	}
	if h.Sessions != 1 {
		t.Fatalf("health sessions = %d, want 1", h.Sessions)
	}

	// Fabric sessions can probe too.
	fab, err := Dial(s.Addr(), smallTopo(t), 131072)
	if err != nil {
		t.Fatal(err)
	}
	defer fab.Close()
	if _, err := fab.Diagnose(packetFiveTuple{SrcIP: 1, DstIP: 2, Proto: 17}); err != nil {
		t.Fatal(err)
	}
	if _, err := fab.Health(); err != nil {
		t.Fatal(err)
	}
}

// TestServerRestartRecoversFleetStore drives diagnoses into a durable
// server, closes it (flushing the queue and the WAL), and checks a
// fresh server over the same data directory serves the same incidents.
func TestServerRestartRecoversFleetStore(t *testing.T) {
	dir := t.TempDir()
	opts := Options{DataDir: dir, Fleet: fleetstore.Config{GroupWindow: -1}}
	s, err := ListenOpts("127.0.0.1:0", opts)
	if err != nil {
		t.Fatal(err)
	}
	fab, err := Dial(s.Addr(), smallTopo(t), 131072)
	if err != nil {
		t.Fatal(err)
	}
	const n = 3
	for i := 0; i < n; i++ {
		if _, err := fab.DiagnoseAt(packetFiveTuple{SrcIP: 1, DstIP: 2, Proto: 17}, int64(1000+i)); err != nil {
			t.Fatal(err)
		}
	}
	fab.Close()
	before := s.Stats()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if before.Ingested+before.Dropped != n {
		t.Fatalf("pre-restart ingested=%d dropped=%d, want %d total", before.Ingested, before.Dropped, n)
	}

	s2, err := ListenOpts("127.0.0.1:0", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	after := s2.Fleet().CountersSnapshot()
	if after.Ingested != before.Ingested {
		t.Fatalf("recovered ingested = %d, want %d", after.Ingested, before.Ingested)
	}
	op, err := DialOperator(s2.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer op.Close()
	h, err := op.Health()
	if err != nil {
		t.Fatal(err)
	}
	if h.State != "serving" || !h.Durable {
		t.Fatalf("restarted health = %+v", h)
	}
}

// TestDrainNotifiesSubscriber: a live tail learns the server is going
// away via the terminal shutdown frame, not a bare connection error.
func TestDrainNotifiesSubscriber(t *testing.T) {
	s, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	tail, err := DialOperator(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer tail.Close()
	if err := tail.Subscribe(wire.SubscribeRequest{Node: -1}); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Close() }()
	if _, err := tail.NextEvent(); !errors.Is(err, ErrServerDraining) {
		t.Fatalf("NextEvent during drain: err = %v, want ErrServerDraining", err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got := s.State(); got != StateStopped {
		t.Fatalf("state after drain = %v, want stopped", got)
	}
}

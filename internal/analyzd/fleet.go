package analyzd

import (
	"encoding/json"
	"fmt"

	"hawkeye/internal/diagnosis"
	"hawkeye/internal/fleetstore"
	"hawkeye/internal/rollup"
	"hawkeye/internal/sim"
	"hawkeye/internal/topo"
	"hawkeye/internal/wire"
)

// parseType maps an optional wire anomaly-type string to a type list
// (nil = any).
func parseType(s string) ([]diagnosis.AnomalyType, error) {
	if s == "" {
		return nil, nil
	}
	t, ok := diagnosis.ParseAnomalyType(s)
	if !ok {
		return nil, fmt.Errorf("unknown anomaly type %q", s)
	}
	return []diagnosis.AnomalyType{t}, nil
}

// wireNode maps the wire node filter (-1 or any negative = wildcard) to
// the store's.
func wireNode(n int) topo.NodeID {
	if n < 0 {
		return fleetstore.AnyNode
	}
	return topo.NodeID(n)
}

func queryFromWire(wq wire.IncidentQuery) (fleetstore.Query, error) {
	types, err := parseType(wq.Type)
	if err != nil {
		return fleetstore.Query{}, err
	}
	return fleetstore.Query{
		Fabric: wq.Fabric,
		Types:  types,
		Node:   wireNode(wq.Node),
		From:   sim.Time(wq.FromNS),
		To:     sim.Time(wq.ToNS),
		Limit:  wq.Limit,
	}, nil
}

func filterFromWire(req wire.SubscribeRequest) (fleetstore.Filter, error) {
	types, err := parseType(req.Type)
	if err != nil {
		return fleetstore.Filter{}, err
	}
	return fleetstore.Filter{
		Fabric: req.Fabric,
		Types:  types,
		Node:   wireNode(req.Node),
	}, nil
}

func incidentToWire(inc *fleetstore.Incident) wire.FleetIncident {
	return wire.FleetIncident{
		ID:         inc.ID,
		Type:       inc.Type.String(),
		Node:       int(inc.Node),
		FirstNS:    int64(inc.First),
		LastNS:     int64(inc.Last),
		Complaints: inc.Complaints,
		Victims:    inc.Victims,
		Fabrics:    inc.Fabrics,
		Culprits:   inc.Culprits,
		Resolved:   inc.Resolved,
		Summary:    inc.Summary(),
		Constant:   inc.Constant,
		Varying:    inc.Varying,
	}
}

func eventToWire(ev *fleetstore.Event) wire.IncidentEvent {
	return wire.IncidentEvent{
		Kind:     ev.Kind.String(),
		Incident: incidentToWire(&ev.Incident),
	}
}

// rollupQueryFromWire validates and maps a wire rollup query. Level is
// checked against the known hierarchy so a typo returns an error
// instead of a silently empty reply.
func rollupQueryFromWire(wq wire.RollupQuery) (rollup.QueryOpts, error) {
	if wq.Level != "" {
		ok := false
		for _, l := range rollup.Levels {
			if l == wq.Level {
				ok = true
				break
			}
		}
		if !ok {
			return rollup.QueryOpts{}, fmt.Errorf("unknown rollup level %q (want fabric, pod, switch or port)", wq.Level)
		}
	}
	return rollup.QueryOpts{
		Windows:         wq.Windows,
		Sliding:         wq.Sliding,
		Level:           wq.Level,
		Prefix:          wq.Prefix,
		ClosedOnly:      wq.ClosedOnly,
		IncludeSketches: wq.IncludeSketches,
	}, nil
}

func quantilesToWire(q rollup.Quantiles) wire.RollupQuantiles {
	return wire.RollupQuantiles{Count: q.Count, P50: q.P50, P90: q.P90, P99: q.P99, Max: q.Max}
}

func summaryToWire(sum *rollup.Summary) wire.RollupSummary {
	out := wire.RollupSummary{
		StartNS:      int64(sum.Start),
		EndNS:        int64(sum.End),
		Closed:       sum.Closed,
		Records:      sum.Records,
		ByType:       sum.ByType,
		ByCause:      sum.ByCause,
		ByConfidence: sum.ByConfidence,
		StallNS:      quantilesToWire(sum.StallNS),
		Score:        quantilesToWire(sum.Score),
		Bytes:        sum.Bytes,
		Evictions:    sum.Evictions,
		Headline:     sum.Headline,
	}
	if len(sum.TopLevels) > 0 {
		out.Top = make(map[string][]wire.RollupHitter, len(sum.TopLevels))
		for level, hitters := range sum.TopLevels {
			hs := make([]wire.RollupHitter, len(hitters))
			for i, h := range hitters {
				hs[i] = wire.RollupHitter{Key: h.Key, Count: h.Count, Err: h.Err}
			}
			out.Top[level] = hs
		}
	}
	if sum.Sketches != nil {
		// Marshaling our own in-memory state cannot fail; an error here
		// would mean a corrupted sketch, which merging would catch anyway.
		if b, err := json.Marshal(sum.Sketches); err == nil {
			out.Sketches = b
		}
	}
	return out
}

func rollupResultToWire(res rollup.Result) wire.RollupResult {
	out := wire.RollupResult{}
	for i := range res.Panes {
		out.Windows = append(out.Windows, summaryToWire(&res.Panes[i]))
	}
	if res.Sliding != nil {
		sl := summaryToWire(res.Sliding)
		out.Sliding = &sl
	}
	return out
}

func rollupEventToWire(ev *rollup.Event) wire.RollupEvent {
	return wire.RollupEvent{
		Kind:    ev.Kind.String(),
		Summary: summaryToWire(&ev.Summary),
	}
}

package analyzd

import (
	"fmt"

	"hawkeye/internal/diagnosis"
	"hawkeye/internal/fleetstore"
	"hawkeye/internal/sim"
	"hawkeye/internal/topo"
	"hawkeye/internal/wire"
)

// parseType maps an optional wire anomaly-type string to a type list
// (nil = any).
func parseType(s string) ([]diagnosis.AnomalyType, error) {
	if s == "" {
		return nil, nil
	}
	t, ok := diagnosis.ParseAnomalyType(s)
	if !ok {
		return nil, fmt.Errorf("unknown anomaly type %q", s)
	}
	return []diagnosis.AnomalyType{t}, nil
}

// wireNode maps the wire node filter (-1 or any negative = wildcard) to
// the store's.
func wireNode(n int) topo.NodeID {
	if n < 0 {
		return fleetstore.AnyNode
	}
	return topo.NodeID(n)
}

func queryFromWire(wq wire.IncidentQuery) (fleetstore.Query, error) {
	types, err := parseType(wq.Type)
	if err != nil {
		return fleetstore.Query{}, err
	}
	return fleetstore.Query{
		Fabric: wq.Fabric,
		Types:  types,
		Node:   wireNode(wq.Node),
		From:   sim.Time(wq.FromNS),
		To:     sim.Time(wq.ToNS),
		Limit:  wq.Limit,
	}, nil
}

func filterFromWire(req wire.SubscribeRequest) (fleetstore.Filter, error) {
	types, err := parseType(req.Type)
	if err != nil {
		return fleetstore.Filter{}, err
	}
	return fleetstore.Filter{
		Fabric: req.Fabric,
		Types:  types,
		Node:   wireNode(req.Node),
	}, nil
}

func incidentToWire(inc *fleetstore.Incident) wire.FleetIncident {
	return wire.FleetIncident{
		ID:         inc.ID,
		Type:       inc.Type.String(),
		Node:       int(inc.Node),
		FirstNS:    int64(inc.First),
		LastNS:     int64(inc.Last),
		Complaints: inc.Complaints,
		Victims:    inc.Victims,
		Fabrics:    inc.Fabrics,
		Culprits:   inc.Culprits,
		Resolved:   inc.Resolved,
		Summary:    inc.Summary(),
		Constant:   inc.Constant,
		Varying:    inc.Varying,
	}
}

func eventToWire(ev *fleetstore.Event) wire.IncidentEvent {
	return wire.IncidentEvent{
		Kind:     ev.Kind.String(),
		Incident: incidentToWire(&ev.Incident),
	}
}

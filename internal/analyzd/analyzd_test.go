package analyzd

import (
	"encoding/json"
	"net"
	"strings"
	"sync"
	"testing"

	"hawkeye/internal/experiments"
	"hawkeye/internal/topo"
	"hawkeye/internal/wire"
	"hawkeye/internal/workload"
)

func newServer(t *testing.T) *Server {
	t.Helper()
	s, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestEndToEndDiagnosis replays a simulated incast's traced telemetry
// through the TCP service and checks the remote verdict matches the
// in-process one.
func TestEndToEndDiagnosis(t *testing.T) {
	tr, err := experiments.RunTrial(experiments.DefaultTrialConfig(workload.NameIncast, 1))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Score.Result == nil {
		t.Fatal("trial produced no diagnosis")
	}
	local := tr.Score.Result.Diagnosis

	s := newServer(t)
	c, err := Dial(s.Addr(), tr.Cl.Topo, int64(tr.Sys.Cfg.Telemetry.EpochSize()))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, rep := range tr.View.Traced {
		if err := c.SendReport(rep); err != nil {
			t.Fatal(err)
		}
	}
	remote, err := c.Diagnose(tr.Score.Result.Trigger.Victim)
	if err != nil {
		t.Fatal(err)
	}
	if remote.Type != local.Type.String() {
		t.Fatalf("remote type %q, local %q", remote.Type, local.Type)
	}
	lc := local.PrimaryCause()
	if remote.InitialNode != int(lc.Port.Node) || remote.InitialPort != lc.Port.Port {
		t.Fatalf("remote initial point N%d.P%d, local %v", remote.InitialNode, remote.InitialPort, lc.Port)
	}
	if len(remote.Culprits) != len(lc.Flows) {
		t.Fatalf("remote culprits %d, local %d", len(remote.Culprits), len(lc.Flows))
	}
	if remote.Switches != len(tr.View.Traced) {
		t.Fatalf("remote used %d reports, sent %d", remote.Switches, len(tr.View.Traced))
	}
	if !strings.Contains(remote.Rendered, remote.Type) {
		t.Fatal("rendered report missing the verdict")
	}
	st := s.Stats()
	if st.Sessions != 1 || st.Reports != len(tr.View.Traced) || st.Diagnoses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func helloFor(t *testing.T, tp *topo.Topology) wire.Hello {
	t.Helper()
	spec, err := json.Marshal(tp.ToSpec())
	if err != nil {
		t.Fatal(err)
	}
	return wire.Hello{Version: wire.ProtocolVersion, Topo: spec, EpochNS: 131072}
}

func rawDial(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

func smallTopo(t *testing.T) *topo.Topology {
	t.Helper()
	d, err := topo.NewChain(2, 1, topo.DefaultBandwidth, topo.DefaultDelay)
	if err != nil {
		t.Fatal(err)
	}
	return d.Topology
}

func TestHandshakeRejectsBadVersion(t *testing.T) {
	s := newServer(t)
	conn := rawDial(t, s.Addr())
	h := helloFor(t, smallTopo(t))
	h.Version = 99
	if err := wire.WriteJSON(conn, wire.MsgHello, h); err != nil {
		t.Fatal(err)
	}
	mt, payload, err := wire.ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if mt != wire.MsgError || !strings.Contains(string(payload), "version") {
		t.Fatalf("reply %d %q", mt, payload)
	}
}

func TestHandshakeRejectsNonHello(t *testing.T) {
	s := newServer(t)
	conn := rawDial(t, s.Addr())
	if err := wire.WriteFrame(conn, wire.MsgReport, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	mt, _, err := wire.ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if mt != wire.MsgError {
		t.Fatalf("reply type %d, want error", mt)
	}
}

func TestHandshakeRejectsBadTopology(t *testing.T) {
	s := newServer(t)
	conn := rawDial(t, s.Addr())
	h := helloFor(t, smallTopo(t))
	h.Topo = json.RawMessage(`{"bandwidthBps":0}`)
	if err := wire.WriteJSON(conn, wire.MsgHello, h); err != nil {
		t.Fatal(err)
	}
	mt, payload, err := wire.ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if mt != wire.MsgError || !strings.Contains(string(payload), "topology") {
		t.Fatalf("reply %d %q", mt, payload)
	}
}

func TestReportForUnknownSwitchRejected(t *testing.T) {
	s := newServer(t)
	tp := smallTopo(t)
	c, err := Dial(s.Addr(), tp, 131072)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Reports claiming a switch ID beyond the handshaken topology are
	// rejected silently — a push has no reply slot — and charged against
	// the strike budget. The session survives within the budget...
	garbage := garbageReport(t)
	for i := 0; i < DefaultMaxStrikes-1; i++ {
		if err := wire.WriteFrame(c.conn, wire.MsgReport, garbage); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Health(); err != nil {
		t.Fatalf("session dead before budget exhausted: %v", err)
	}
	if st := s.Stats(); st.RejectedReports != DefaultMaxStrikes-1 || st.QuarantinedSessions != 0 {
		t.Fatalf("rejected=%d quarantined=%d before budget", st.RejectedReports, st.QuarantinedSessions)
	}
	// ...and the strike that exhausts it draws the quarantine MsgError
	// and a dropped connection.
	if err := wire.WriteFrame(c.conn, wire.MsgReport, garbage); err != nil {
		t.Fatal(err)
	}
	mt, payload, err := wire.ReadFrame(c.conn)
	if err != nil {
		t.Fatal(err)
	}
	if mt != wire.MsgError || !strings.Contains(string(payload), "quarantined") {
		t.Fatalf("reply type %d payload %q, want quarantine error", mt, payload)
	}
	if _, _, err := wire.ReadFrame(c.conn); err == nil {
		t.Fatal("quarantined session still open")
	}
	if st := s.Stats(); st.QuarantinedSessions != 1 {
		t.Fatalf("QuarantinedSessions = %d, want 1", st.QuarantinedSessions)
	}
}

// garbageReport builds a syntactically valid report for switch 200.
func garbageReport(t *testing.T) []byte {
	t.Helper()
	tr, err := experiments.RunTrial(experiments.DefaultTrialConfig(workload.NameIncast, 1))
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range tr.View.Traced {
		cp := *rep
		cp.Switch = 200
		data, err := cp.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	t.Fatal("no traced reports")
	return nil
}

func TestConcurrentSessions(t *testing.T) {
	s := newServer(t)
	tp := smallTopo(t)
	const n = 8
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(s.Addr(), tp, 131072)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			if _, err := c.Diagnose(packetFiveTuple{SrcIP: 1, DstIP: 2, Proto: 17}); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if st := s.Stats(); st.Sessions != n || st.Diagnoses != n {
		t.Fatalf("stats = %+v, want %d sessions/diagnoses", s.Stats(), n)
	}
}

func TestCloseUnblocksSessions(t *testing.T) {
	s := newServer(t)
	c, err := Dial(s.Addr(), smallTopo(t), 131072)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// The session socket is closed server-side; the next request fails
	// rather than hanging.
	if _, err := c.Diagnose(packetFiveTuple{SrcIP: 1, DstIP: 2, Proto: 17}); err == nil {
		t.Fatal("diagnose succeeded on a closed server")
	}
}

// TestIncidentsOverTheWire drives several diagnoses through one session
// and asks the server to group them.
func TestIncidentsOverTheWire(t *testing.T) {
	tr, err := experiments.RunTrial(experiments.DefaultTrialConfig(workload.NameIncast, 1))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Score.Result == nil {
		t.Fatal("no scored diagnosis")
	}
	s := newServer(t)
	c, err := Dial(s.Addr(), tr.Cl.Topo, int64(tr.Sys.Cfg.Telemetry.EpochSize()))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, rep := range tr.View.Traced {
		if err := c.SendReport(rep); err != nil {
			t.Fatal(err)
		}
	}
	// Replay the trial's ground-truth-victim complaints against the same
	// telemetry: same anchor, close together -> one incident.
	n := 0
	for _, r := range tr.Results {
		if !tr.GT.Victims[r.Trigger.Victim] || r.Trigger.At < tr.GT.AnomalyAt {
			continue
		}
		if r.Trigger.At > tr.GT.AnomalyAt+time2ms {
			break
		}
		if _, err := c.DiagnoseAt(r.Trigger.Victim, int64(r.Trigger.At)); err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n < 2 {
		t.Skipf("only %d live-window complaints; nothing to group", n)
	}
	incs, err := c.Incidents()
	if err != nil {
		t.Fatal(err)
	}
	if len(incs) != 1 {
		t.Fatalf("incidents = %d, want 1 (same anchor, same window)", len(incs))
	}
	if incs[0].Complaints != n {
		t.Fatalf("incident has %d complaints, sent %d", incs[0].Complaints, n)
	}
	if incs[0].Type != tr.Score.Result.Diagnosis.Type.String() {
		t.Fatalf("incident type %q", incs[0].Type)
	}
}

const time2ms = 2_000_000 // 2 ms in sim.Time ns

// TestFleetStoreEndToEnd drives two concurrent fabric sessions through
// one analyzer into the shared fleet store, tails it over a live
// subscription, and queries the clustered incidents by type and time
// range over the wire.
func TestFleetStoreEndToEnd(t *testing.T) {
	tr, err := experiments.RunTrial(experiments.DefaultTrialConfig(workload.NameIncast, 1))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Score.Result == nil {
		t.Fatal("trial produced no diagnosis")
	}
	victim := tr.Score.Result.Trigger.Victim
	at := int64(tr.Score.Result.Trigger.At)
	epoch := int64(tr.Sys.Cfg.Telemetry.EpochSize())
	s := newServer(t)

	// Operator 1 subscribes before any complaint arrives.
	tail, err := DialOperator(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer tail.Close()
	if err := tail.Subscribe(wire.SubscribeRequest{Node: -1}); err != nil {
		t.Fatal(err)
	}

	// Two fabrics report the same anomaly concurrently (same simulated
	// telemetry standing in for two pods seeing one spine-level event).
	fabrics := []string{"pod-a", "pod-b"}
	var wg sync.WaitGroup
	errs := make(chan error, len(fabrics))
	for _, fabric := range fabrics {
		fabric := fabric
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := DialFabric(s.Addr(), fabric, tr.Cl.Topo, epoch)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for _, rep := range tr.View.Traced {
				if err := c.SendReport(rep); err != nil {
					errs <- err
					return
				}
			}
			if _, err := c.DiagnoseAt(victim, at); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// The live tail saw the incident open (and, fabrics racing, grow).
	ev, err := tail.NextEvent()
	if err != nil {
		t.Fatal(err)
	}
	if ev.Kind != "opened" {
		t.Fatalf("first event kind %q, want opened", ev.Kind)
	}
	wantType := tr.Score.Result.Diagnosis.Type.String()
	if ev.Incident.Type != wantType {
		t.Fatalf("event type %q, want %q", ev.Incident.Type, wantType)
	}
	ev2, err := tail.NextEvent()
	if err != nil {
		t.Fatal(err)
	}
	if ev2.Kind != "grew" && ev2.Kind != "opened" {
		t.Fatalf("second event kind %q", ev2.Kind)
	}

	// Operator 2 queries: by type, then by a time range excluding it.
	q, err := DialOperator(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	incs, err := q.QueryIncidents(wire.IncidentQuery{Type: wantType, Node: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(incs) != 1 {
		t.Fatalf("type query returned %d incidents, want 1 (both fabrics merged)", len(incs))
	}
	inc := incs[0]
	if inc.Complaints != 2 || len(inc.Fabrics) != 2 {
		t.Fatalf("incident complaints=%d fabrics=%v, want 2 complaints across 2 fabrics", inc.Complaints, inc.Fabrics)
	}
	if inc.Summary == "" || inc.FirstNS != at || inc.LastNS != at {
		t.Fatalf("incident summary/span: %+v", inc)
	}
	// The varying dimension is the fabric; the anchor attributes are
	// constant.
	if len(inc.Varying["fabric"]) != 2 {
		t.Fatalf("varying = %v, want 2 fabrics", inc.Varying)
	}
	in, err := q.QueryIncidents(wire.IncidentQuery{Node: -1, FromNS: at - 1000, ToNS: at + 1000})
	if err != nil {
		t.Fatal(err)
	}
	if len(in) != 1 {
		t.Fatalf("covering time-range query returned %d, want 1", len(in))
	}
	out, err := q.QueryIncidents(wire.IncidentQuery{Node: -1, FromNS: at + time2ms})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("disjoint time-range query returned %d, want 0", len(out))
	}
	if _, err := q.QueryIncidents(wire.IncidentQuery{Type: "no-such-type", Node: -1}); err == nil {
		t.Fatal("unknown type accepted")
	}

	st := s.Stats()
	if st.Ingested != 2 || st.Dropped != 0 || st.Incidents != 1 || st.OpenIncidents != 1 {
		t.Fatalf("fleet stats = %+v", st)
	}
	if st.Sessions != 4 {
		t.Fatalf("sessions = %d, want 4 (2 fabrics + 2 operators)", st.Sessions)
	}
}

// TestOperatorSessionCannotDiagnose pins the operator-session contract:
// no topology means no reports and no diagnoses.
func TestOperatorSessionCannotDiagnose(t *testing.T) {
	s := newServer(t)
	c, err := DialOperator(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Diagnose(packetFiveTuple{SrcIP: 1, DstIP: 2, Proto: 17}); err == nil {
		t.Fatal("operator session diagnosed")
	}
}

// TestSubscriberOutlivesProducers: events keep flowing as fabrics come
// and go; closing the server closes the tail cleanly.
func TestSubscriberClosedOnServerClose(t *testing.T) {
	s := newServer(t)
	tail, err := DialOperator(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer tail.Close()
	if err := tail.Subscribe(wire.SubscribeRequest{Node: -1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := tail.NextEvent(); err == nil {
		t.Fatal("NextEvent succeeded on a closed server")
	}
}

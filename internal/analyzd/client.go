package analyzd

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sort"
	"time"

	"hawkeye/internal/chaos"
	"hawkeye/internal/packet"
	"hawkeye/internal/sim"
	"hawkeye/internal/telemetry"
	"hawkeye/internal/topo"
	"hawkeye/internal/wire"
)

// packetFiveTuple keeps the server file free of a direct packet import
// cycle concern; it is just the packet type.
type packetFiveTuple = packet.FiveTuple

// sortReports orders reports by switch ID for deterministic graphs.
func sortReports(reports []*telemetry.Report) {
	sort.Slice(reports, func(i, j int) bool { return reports[i].Switch < reports[j].Switch })
}

// RetryConfig shapes the client's reconnect behaviour: capped
// exponential backoff with symmetric jitter. A switch CPU pushing
// reports must survive analyzer restarts and flaky management networks
// without turning one reset into a lost diagnosis session.
type RetryConfig struct {
	// MaxAttempts bounds tries per operation, first attempt included
	// (<1 behaves as 1: no retry).
	MaxAttempts int
	// BaseBackoff doubles per retry up to MaxBackoff.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// JitterFrac spreads each delay by ±frac so a fleet of reconnecting
	// clients does not stampede the analyzer in lockstep.
	JitterFrac float64
	// Seed makes the jitter sequence reproducible.
	Seed uint64
	// Sleep is the delay function (nil = time.Sleep; tests inject a
	// recorder).
	Sleep func(time.Duration)
}

// DefaultRetryConfig returns the production defaults: 5 attempts,
// 10 ms -> 500 ms backoff, 20% jitter.
func DefaultRetryConfig() RetryConfig {
	return RetryConfig{
		MaxAttempts: 5,
		BaseBackoff: 10 * time.Millisecond,
		MaxBackoff:  500 * time.Millisecond,
		JitterFrac:  0.2,
		Seed:        1,
	}
}

// Client is one analyzer session. Request/reply operations transparently
// redial and re-handshake on transport failure (connection reset, broken
// pipe) with capped exponential backoff. Reports pushed before a
// reconnect are gone with the old session — the analyzer answers later
// diagnoses from whatever survives, with the confidence machinery
// reporting the gap — so callers that must have full telemetry should
// re-send reports after an operation error.
type Client struct {
	conn  net.Conn
	addr  string
	hello wire.Hello
	retry RetryConfig
	rng   *sim.Rand

	// Redials counts successful reconnects after transport failures.
	Redials int

	// lastSub remembers the most recent successful subscription request
	// (incident or rollup) so Resubscribe can restore the tail on a
	// fresh session after the analyzer restarts.
	lastSubType wire.MsgType
	lastSubBody []byte
}

// Dial connects and performs the handshake: the fabric topology and the
// telemetry epoch are session state on the server. The session reports
// into the server's default fabric; use DialFabric to name one.
func Dial(addr string, t *topo.Topology, epochNS int64) (*Client, error) {
	return DialFabric(addr, "", t, epochNS)
}

// DialFabric is Dial with an explicit fabric name: every diagnosis this
// session completes is filed under that name in the fleet store.
func DialFabric(addr, fabric string, t *topo.Topology, epochNS int64) (*Client, error) {
	return DialFabricRetry(addr, fabric, t, epochNS, DefaultRetryConfig())
}

// DialFabricRetry is DialFabric with explicit retry behaviour.
func DialFabricRetry(addr, fabric string, t *topo.Topology, epochNS int64, rc RetryConfig) (*Client, error) {
	spec, err := json.Marshal(t.ToSpec())
	if err != nil {
		return nil, fmt.Errorf("analyzd: topology: %w", err)
	}
	hello := wire.Hello{Version: wire.ProtocolVersion, Topo: spec, EpochNS: epochNS, Fabric: fabric}
	return dialHello(addr, hello, rc)
}

// DialOperator opens an operator session: no topology, no reports or
// diagnoses — only fleet incident queries and live subscriptions.
func DialOperator(addr string) (*Client, error) {
	return DialOperatorRetry(addr, DefaultRetryConfig())
}

// DialOperatorRetry is DialOperator with explicit retry behaviour —
// supervisors polling health across analyzer restarts want a tighter
// (or much looser) schedule than the reporting default.
func DialOperatorRetry(addr string, rc RetryConfig) (*Client, error) {
	return dialHello(addr, wire.Hello{Version: wire.ProtocolVersion}, rc)
}

// ErrThrottled reports that the server shed the request after every
// backoff retry; the payload tier is in the wrapping message. The
// session is still healthy — the caller may retry later.
var ErrThrottled = errors.New("analyzd: throttled")

// ErrServerDraining reports the server's terminal shutdown frame: the
// subscription ended because the analyzer is draining, not because the
// connection failed.
var ErrServerDraining = errors.New("analyzd: server draining")

func dialHello(addr string, hello wire.Hello, rc RetryConfig) (*Client, error) {
	c := &Client{
		addr:  addr,
		hello: hello,
		retry: rc,
		rng:   sim.NewRand(rc.Seed ^ 0xA11A),
	}
	var err error
	for attempt := 0; attempt < c.attempts(); attempt++ {
		if attempt > 0 {
			c.backoff(attempt - 1)
		}
		var perm bool
		if perm, err = c.connect(); err == nil || perm {
			break
		}
	}
	if err != nil {
		return nil, err
	}
	return c, nil
}

func (c *Client) attempts() int {
	if c.retry.MaxAttempts < 1 {
		return 1
	}
	return c.retry.MaxAttempts
}

// backoff sleeps the capped-exponential delay for the given retry index.
func (c *Client) backoff(attempt int) {
	c.sleepFor(chaos.Jitter(c.rng, c.retry.BaseBackoff, c.retry.MaxBackoff, attempt, c.retry.JitterFrac))
}

func (c *Client) sleepFor(d time.Duration) {
	sleep := c.retry.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	sleep(d)
}

// connect dials and re-handshakes. The second kind of failure — the
// server actively rejecting the hello — is permanent: retrying an
// incompatible handshake only hammers the analyzer.
func (c *Client) connect() (permanent bool, err error) {
	conn, err := net.Dial("tcp", c.addr)
	if err != nil {
		return false, fmt.Errorf("analyzd: dial: %w", err)
	}
	if err := wire.WriteJSON(conn, wire.MsgHello, c.hello); err != nil {
		conn.Close()
		return false, err
	}
	mt, payload, err := wire.ReadFrame(conn)
	if err != nil {
		conn.Close()
		return false, fmt.Errorf("analyzd: handshake: %w", err)
	}
	if mt == wire.MsgError {
		conn.Close()
		return true, fmt.Errorf("analyzd: server rejected hello: %s", payload)
	}
	if mt != wire.MsgHelloOK {
		conn.Close()
		return true, fmt.Errorf("analyzd: unexpected handshake reply type %d", mt)
	}
	if c.conn != nil {
		c.conn.Close()
	}
	c.conn = conn
	return false, nil
}

// reconnect re-establishes the session after a transport failure.
func (c *Client) reconnect() error {
	perm, err := c.connect()
	if err != nil && !perm {
		return err
	}
	if err == nil {
		c.Redials++
	}
	return err
}

// request performs one frame round trip, redialing with backoff when the
// transport fails. Server-level error replies (MsgError) come back as a
// reply, not an error — they are answers, not failures. A MsgThrottle
// reply means the server shed the request under load: the session is
// still healthy, so the client honors the retry-after hint (no redial)
// and tries again; attempts exhausted, the error wraps ErrThrottled.
func (c *Client) request(mt wire.MsgType, payload []byte) (wire.MsgType, []byte, error) {
	var lastErr error
	throttled := false
	for attempt := 0; attempt < c.attempts(); attempt++ {
		if attempt > 0 && !throttled {
			c.backoff(attempt - 1)
			if err := c.reconnect(); err != nil {
				lastErr = err
				continue
			}
		}
		throttled = false
		if err := wire.WriteFrame(c.conn, mt, payload); err != nil {
			lastErr = err
			continue
		}
	read:
		rt, rp, err := wire.ReadFrame(c.conn)
		if err != nil {
			lastErr = err
			continue
		}
		switch {
		case rt == wire.MsgThrottle:
			var th wire.Throttle
			_ = json.Unmarshal(rp, &th)
			lastErr = fmt.Errorf("analyzd: %s tier shed the request: %w", th.Tier, ErrThrottled)
			if th.RetryAfterMs > 0 {
				c.sleepFor(time.Duration(th.RetryAfterMs) * time.Millisecond)
			}
			throttled = true
			continue
		case rt == wire.MsgShutdown:
			// The server is draining: the session is over and a redial
			// would only hit the same refusal. Surface the typed error so
			// callers do not mistake the goodbye for their reply.
			return 0, nil, ErrServerDraining
		case !wire.Known(rt):
			// A newer server may interleave frames we do not speak; our
			// reply is still coming. Skipping keeps the reply attributed to
			// the right request instead of failing on the stranger.
			goto read
		}
		return rt, rp, nil
	}
	return 0, nil, lastErr
}

// push writes one frame with no reply expected, with the same
// redial-and-backoff policy as request.
func (c *Client) push(mt wire.MsgType, payload []byte) error {
	var lastErr error
	for attempt := 0; attempt < c.attempts(); attempt++ {
		if attempt > 0 {
			c.backoff(attempt - 1)
			if err := c.reconnect(); err != nil {
				lastErr = err
				continue
			}
		}
		if err := wire.WriteFrame(c.conn, mt, payload); err != nil {
			lastErr = err
			continue
		}
		return nil
	}
	return lastErr
}

// Close ends the session.
func (c *Client) Close() error { return c.conn.Close() }

// SendReport pushes one switch telemetry report. On transport failure it
// reconnects and re-sends this report; reports sent before the reconnect
// belong to the dead session and must be re-sent by the caller if the
// next diagnosis needs them.
func (c *Client) SendReport(rep *telemetry.Report) error {
	data, err := rep.MarshalBinary()
	if err != nil {
		return fmt.Errorf("analyzd: encode report: %w", err)
	}
	return c.push(wire.MsgReport, data)
}

// SendHostReport pushes one host-agent counter snapshot. Same transport
// contract as SendReport: a reconnect re-sends only this snapshot.
func (c *Client) SendHostReport(hr *telemetry.HostReport) error {
	data, err := hr.MarshalBinary()
	if err != nil {
		return fmt.Errorf("analyzd: encode host report: %w", err)
	}
	return c.push(wire.MsgHostReport, data)
}

// Diagnose asks the analyzer for the verdict on a victim flow.
func (c *Client) Diagnose(victim packet.FiveTuple) (*wire.Diagnosis, error) {
	return c.DiagnoseAt(victim, 0)
}

// DiagnoseAt is Diagnose with the complaint's trigger time attached, so
// the server can group diagnoses into incidents.
func (c *Client) DiagnoseAt(victim packet.FiveTuple, atNS int64) (*wire.Diagnosis, error) {
	mt, payload, err := c.request(wire.MsgDiagnose, wire.EncodeDiagnoseRequest(victim, atNS))
	if err != nil {
		return nil, fmt.Errorf("analyzd: diagnose: %w", err)
	}
	if mt == wire.MsgError {
		return nil, fmt.Errorf("analyzd: server error: %s", payload)
	}
	if mt != wire.MsgDiagnosis {
		return nil, fmt.Errorf("analyzd: unexpected reply type %d", mt)
	}
	var d wire.Diagnosis
	if err := json.Unmarshal(payload, &d); err != nil {
		return nil, fmt.Errorf("analyzd: decode diagnosis: %w", err)
	}
	return &d, nil
}

// Incidents asks the analyzer to group this session's diagnoses into
// incidents.
func (c *Client) Incidents() ([]wire.IncidentSummary, error) {
	mt, payload, err := c.request(wire.MsgIncidents, nil)
	if err != nil {
		return nil, fmt.Errorf("analyzd: incidents: %w", err)
	}
	if mt == wire.MsgError {
		return nil, fmt.Errorf("analyzd: server error: %s", payload)
	}
	if mt != wire.MsgIncidentList {
		return nil, fmt.Errorf("analyzd: unexpected reply type %d", mt)
	}
	var out []wire.IncidentSummary
	if err := json.Unmarshal(payload, &out); err != nil {
		return nil, fmt.Errorf("analyzd: decode incidents: %w", err)
	}
	return out, nil
}

// QueryIncidents asks the fleet store for clustered incidents matching
// q. Remember q.Node: 0 is a real node, -1 is the wildcard.
func (c *Client) QueryIncidents(q wire.IncidentQuery) ([]wire.FleetIncident, error) {
	body, err := json.Marshal(q)
	if err != nil {
		return nil, fmt.Errorf("analyzd: encode query: %w", err)
	}
	mt, payload, err := c.request(wire.MsgQueryIncidents, body)
	if err != nil {
		return nil, fmt.Errorf("analyzd: query incidents: %w", err)
	}
	if mt == wire.MsgError {
		return nil, fmt.Errorf("analyzd: server error: %s", payload)
	}
	if mt != wire.MsgIncidentMatches {
		return nil, fmt.Errorf("analyzd: unexpected reply type %d", mt)
	}
	var out []wire.FleetIncident
	if err := json.Unmarshal(payload, &out); err != nil {
		return nil, fmt.Errorf("analyzd: decode fleet incidents: %w", err)
	}
	return out, nil
}

// Subscribe turns this session into a live incident tail: the server
// acknowledges, then pushes MsgIncidentEvent frames as incidents open,
// grow and resolve. After Subscribe, NextEvent is the only valid call —
// use a second connection for queries. An overloaded server throttles
// subscriptions first; the request machinery backs off and retries, and
// the returned error wraps ErrThrottled when every attempt was shed.
func (c *Client) Subscribe(req wire.SubscribeRequest) error {
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("analyzd: encode subscribe: %w", err)
	}
	mt, payload, err := c.request(wire.MsgSubscribe, body)
	if err != nil {
		return fmt.Errorf("analyzd: subscribe: %w", err)
	}
	if mt == wire.MsgError {
		return fmt.Errorf("analyzd: server error: %s", payload)
	}
	if mt != wire.MsgSubscribeOK {
		return fmt.Errorf("analyzd: unexpected reply type %d", mt)
	}
	c.lastSubType, c.lastSubBody = wire.MsgSubscribe, body
	return nil
}

// SubscribeRollups turns this session into a live rollup tail: the
// server acknowledges, then pushes MsgRollupEvent frames as windows
// open, update and close. After SubscribeRollups, NextRollup is the
// only valid call. Same throttling contract as Subscribe.
func (c *Client) SubscribeRollups(req wire.RollupSubscribeRequest) error {
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("analyzd: encode rollup subscribe: %w", err)
	}
	mt, payload, err := c.request(wire.MsgSubscribeRollups, body)
	if err != nil {
		return fmt.Errorf("analyzd: subscribe rollups: %w", err)
	}
	if mt == wire.MsgError {
		return fmt.Errorf("analyzd: server error: %s", payload)
	}
	if mt != wire.MsgSubscribeOK {
		return fmt.Errorf("analyzd: unexpected reply type %d", mt)
	}
	c.lastSubType, c.lastSubBody = wire.MsgSubscribeRollups, body
	return nil
}

// ErrNoSubscription reports a Resubscribe with nothing to restore.
var ErrNoSubscription = errors.New("analyzd: no subscription to restore")

// Resubscribe re-establishes the session's last successful
// subscription (incident or rollup) on a fresh connection, with the
// client's capped exponential backoff between attempts. It is how a
// tail survives an analyzer restart: on ErrServerDraining or a
// connection error from NextEvent/NextRollup, call Resubscribe and
// resume the event loop. Events emitted while disconnected are gone —
// the rollup/incident stores retain the summaries, so a tail that
// cares can query the gap.
func (c *Client) Resubscribe() error {
	if c.lastSubType == 0 {
		return ErrNoSubscription
	}
	var lastErr error
	for attempt := 0; attempt < c.attempts(); attempt++ {
		if attempt > 0 {
			c.backoff(attempt - 1)
		}
		if err := c.reconnect(); err != nil {
			lastErr = err
			continue
		}
		if err := wire.WriteFrame(c.conn, c.lastSubType, c.lastSubBody); err != nil {
			lastErr = err
			continue
		}
	read:
		mt, payload, err := wire.ReadFrame(c.conn)
		if err != nil {
			lastErr = err
			continue
		}
		switch {
		case mt == wire.MsgSubscribeOK:
			return nil
		case mt == wire.MsgThrottle:
			var th wire.Throttle
			_ = json.Unmarshal(payload, &th)
			lastErr = fmt.Errorf("analyzd: %s tier shed the subscription: %w", th.Tier, ErrThrottled)
			if th.RetryAfterMs > 0 {
				c.sleepFor(time.Duration(th.RetryAfterMs) * time.Millisecond)
			}
			continue
		case mt == wire.MsgShutdown:
			// Mid-drain: keep backing off, the next attempt may land on
			// the restarted server.
			lastErr = ErrServerDraining
			continue
		case mt == wire.MsgError:
			return fmt.Errorf("analyzd: server error: %s", payload)
		case !wire.Known(mt):
			goto read
		default:
			lastErr = fmt.Errorf("analyzd: unexpected reply type %d", mt)
			continue
		}
	}
	return lastErr
}

// Health asks the server for its lifecycle state and load counters.
// It works on every session kind and in every lifecycle state short of
// stopped — it is the probe a supervisor polls during drain.
func (c *Client) Health() (*wire.Health, error) {
	mt, payload, err := c.request(wire.MsgHealth, nil)
	if err != nil {
		return nil, fmt.Errorf("analyzd: health: %w", err)
	}
	if mt == wire.MsgError {
		return nil, fmt.Errorf("analyzd: server error: %s", payload)
	}
	if mt != wire.MsgHealthReply {
		return nil, fmt.Errorf("analyzd: unexpected reply type %d", mt)
	}
	var h wire.Health
	if err := json.Unmarshal(payload, &h); err != nil {
		return nil, fmt.Errorf("analyzd: decode health: %w", err)
	}
	return &h, nil
}

// ShardInfo asks the server for its cluster identity: shard name, role
// and replication watermarks. Unclustered servers answer with an empty
// shard name and zero replicas.
func (c *Client) ShardInfo() (*wire.ShardInfo, error) {
	mt, payload, err := c.request(wire.MsgShardInfo, nil)
	if err != nil {
		return nil, fmt.Errorf("analyzd: shard info: %w", err)
	}
	if mt == wire.MsgError {
		return nil, fmt.Errorf("analyzd: server error: %s", payload)
	}
	if mt != wire.MsgShardInfoReply {
		return nil, fmt.Errorf("analyzd: unexpected reply type %d", mt)
	}
	var info wire.ShardInfo
	if err := json.Unmarshal(payload, &info); err != nil {
		return nil, fmt.Errorf("analyzd: decode shard info: %w", err)
	}
	return &info, nil
}

// QueryRollups asks the analyzer's summarizer for windowed rollup
// summaries.
func (c *Client) QueryRollups(q wire.RollupQuery) (*wire.RollupResult, error) {
	body, err := json.Marshal(q)
	if err != nil {
		return nil, fmt.Errorf("analyzd: encode rollup query: %w", err)
	}
	mt, payload, err := c.request(wire.MsgQueryRollups, body)
	if err != nil {
		return nil, fmt.Errorf("analyzd: query rollups: %w", err)
	}
	if mt == wire.MsgError {
		return nil, fmt.Errorf("analyzd: server error: %s", payload)
	}
	if mt != wire.MsgRollupList {
		return nil, fmt.Errorf("analyzd: unexpected reply type %d", mt)
	}
	var out wire.RollupResult
	if err := json.Unmarshal(payload, &out); err != nil {
		return nil, fmt.Errorf("analyzd: decode rollups: %w", err)
	}
	return &out, nil
}

// NextRollup blocks for the next pushed rollup event; the NextEvent
// contract (unknown frames skipped, MsgShutdown -> ErrServerDraining)
// applies.
func (c *Client) NextRollup() (*wire.RollupEvent, error) {
	for {
		mt, payload, err := wire.ReadFrame(c.conn)
		if err != nil {
			return nil, fmt.Errorf("analyzd: next rollup: %w", err)
		}
		switch {
		case mt == wire.MsgRollupEvent:
			var ev wire.RollupEvent
			if err := json.Unmarshal(payload, &ev); err != nil {
				return nil, fmt.Errorf("analyzd: decode rollup event: %w", err)
			}
			return &ev, nil
		case mt == wire.MsgShutdown:
			return nil, ErrServerDraining
		case mt == wire.MsgError:
			return nil, fmt.Errorf("analyzd: server error: %s", payload)
		case !wire.Known(mt):
			continue
		default:
			return nil, fmt.Errorf("analyzd: unexpected frame type %d while tailing", mt)
		}
	}
}

// NextEvent blocks for the next pushed incident event. Unknown frame
// types from a newer server are skipped, per the wire package contract.
func (c *Client) NextEvent() (*wire.IncidentEvent, error) {
	for {
		mt, payload, err := wire.ReadFrame(c.conn)
		if err != nil {
			return nil, fmt.Errorf("analyzd: next event: %w", err)
		}
		switch {
		case mt == wire.MsgIncidentEvent:
			var ev wire.IncidentEvent
			if err := json.Unmarshal(payload, &ev); err != nil {
				return nil, fmt.Errorf("analyzd: decode event: %w", err)
			}
			return &ev, nil
		case mt == wire.MsgShutdown:
			// Terminal event: the server is draining, the tail is over.
			return nil, ErrServerDraining
		case mt == wire.MsgError:
			return nil, fmt.Errorf("analyzd: server error: %s", payload)
		case !wire.Known(mt):
			continue // forward compatibility: skip unknown frames
		default:
			return nil, fmt.Errorf("analyzd: unexpected frame type %d while tailing", mt)
		}
	}
}

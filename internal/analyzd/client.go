package analyzd

import (
	"encoding/json"
	"fmt"
	"net"
	"sort"

	"hawkeye/internal/packet"
	"hawkeye/internal/telemetry"
	"hawkeye/internal/topo"
	"hawkeye/internal/wire"
)

// packetFiveTuple keeps the server file free of a direct packet import
// cycle concern; it is just the packet type.
type packetFiveTuple = packet.FiveTuple

// sortReports orders reports by switch ID for deterministic graphs.
func sortReports(reports []*telemetry.Report) {
	sort.Slice(reports, func(i, j int) bool { return reports[i].Switch < reports[j].Switch })
}

// Client is one analyzer session.
type Client struct {
	conn net.Conn
}

// Dial connects and performs the handshake: the fabric topology and the
// telemetry epoch are session state on the server. The session reports
// into the server's default fabric; use DialFabric to name one.
func Dial(addr string, t *topo.Topology, epochNS int64) (*Client, error) {
	return DialFabric(addr, "", t, epochNS)
}

// DialFabric is Dial with an explicit fabric name: every diagnosis this
// session completes is filed under that name in the fleet store.
func DialFabric(addr, fabric string, t *topo.Topology, epochNS int64) (*Client, error) {
	spec, err := json.Marshal(t.ToSpec())
	if err != nil {
		return nil, fmt.Errorf("analyzd: topology: %w", err)
	}
	hello := wire.Hello{Version: wire.ProtocolVersion, Topo: spec, EpochNS: epochNS, Fabric: fabric}
	return dialHello(addr, hello)
}

// DialOperator opens an operator session: no topology, no reports or
// diagnoses — only fleet incident queries and live subscriptions.
func DialOperator(addr string) (*Client, error) {
	return dialHello(addr, wire.Hello{Version: wire.ProtocolVersion})
}

func dialHello(addr string, hello wire.Hello) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("analyzd: dial: %w", err)
	}
	c := &Client{conn: conn}
	if err := wire.WriteJSON(conn, wire.MsgHello, hello); err != nil {
		conn.Close()
		return nil, err
	}
	mt, payload, err := wire.ReadFrame(conn)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("analyzd: handshake: %w", err)
	}
	if mt == wire.MsgError {
		conn.Close()
		return nil, fmt.Errorf("analyzd: server rejected hello: %s", payload)
	}
	if mt != wire.MsgHelloOK {
		conn.Close()
		return nil, fmt.Errorf("analyzd: unexpected handshake reply type %d", mt)
	}
	return c, nil
}

// Close ends the session.
func (c *Client) Close() error { return c.conn.Close() }

// SendReport pushes one switch telemetry report.
func (c *Client) SendReport(rep *telemetry.Report) error {
	data, err := rep.MarshalBinary()
	if err != nil {
		return fmt.Errorf("analyzd: encode report: %w", err)
	}
	return wire.WriteFrame(c.conn, wire.MsgReport, data)
}

// Diagnose asks the analyzer for the verdict on a victim flow.
func (c *Client) Diagnose(victim packet.FiveTuple) (*wire.Diagnosis, error) {
	return c.DiagnoseAt(victim, 0)
}

// DiagnoseAt is Diagnose with the complaint's trigger time attached, so
// the server can group diagnoses into incidents.
func (c *Client) DiagnoseAt(victim packet.FiveTuple, atNS int64) (*wire.Diagnosis, error) {
	if err := wire.WriteFrame(c.conn, wire.MsgDiagnose, wire.EncodeDiagnoseRequest(victim, atNS)); err != nil {
		return nil, err
	}
	mt, payload, err := wire.ReadFrame(c.conn)
	if err != nil {
		return nil, fmt.Errorf("analyzd: diagnose: %w", err)
	}
	if mt == wire.MsgError {
		return nil, fmt.Errorf("analyzd: server error: %s", payload)
	}
	if mt != wire.MsgDiagnosis {
		return nil, fmt.Errorf("analyzd: unexpected reply type %d", mt)
	}
	var d wire.Diagnosis
	if err := json.Unmarshal(payload, &d); err != nil {
		return nil, fmt.Errorf("analyzd: decode diagnosis: %w", err)
	}
	return &d, nil
}

// Incidents asks the analyzer to group this session's diagnoses into
// incidents.
func (c *Client) Incidents() ([]wire.IncidentSummary, error) {
	if err := wire.WriteFrame(c.conn, wire.MsgIncidents, nil); err != nil {
		return nil, err
	}
	mt, payload, err := wire.ReadFrame(c.conn)
	if err != nil {
		return nil, fmt.Errorf("analyzd: incidents: %w", err)
	}
	if mt == wire.MsgError {
		return nil, fmt.Errorf("analyzd: server error: %s", payload)
	}
	if mt != wire.MsgIncidentList {
		return nil, fmt.Errorf("analyzd: unexpected reply type %d", mt)
	}
	var out []wire.IncidentSummary
	if err := json.Unmarshal(payload, &out); err != nil {
		return nil, fmt.Errorf("analyzd: decode incidents: %w", err)
	}
	return out, nil
}

// QueryIncidents asks the fleet store for clustered incidents matching
// q. Remember q.Node: 0 is a real node, -1 is the wildcard.
func (c *Client) QueryIncidents(q wire.IncidentQuery) ([]wire.FleetIncident, error) {
	if err := wire.WriteJSON(c.conn, wire.MsgQueryIncidents, q); err != nil {
		return nil, err
	}
	mt, payload, err := wire.ReadFrame(c.conn)
	if err != nil {
		return nil, fmt.Errorf("analyzd: query incidents: %w", err)
	}
	if mt == wire.MsgError {
		return nil, fmt.Errorf("analyzd: server error: %s", payload)
	}
	if mt != wire.MsgIncidentMatches {
		return nil, fmt.Errorf("analyzd: unexpected reply type %d", mt)
	}
	var out []wire.FleetIncident
	if err := json.Unmarshal(payload, &out); err != nil {
		return nil, fmt.Errorf("analyzd: decode fleet incidents: %w", err)
	}
	return out, nil
}

// Subscribe turns this session into a live incident tail: the server
// acknowledges, then pushes MsgIncidentEvent frames as incidents open,
// grow and resolve. After Subscribe, NextEvent is the only valid call —
// use a second connection for queries.
func (c *Client) Subscribe(req wire.SubscribeRequest) error {
	if err := wire.WriteJSON(c.conn, wire.MsgSubscribe, req); err != nil {
		return err
	}
	mt, payload, err := wire.ReadFrame(c.conn)
	if err != nil {
		return fmt.Errorf("analyzd: subscribe: %w", err)
	}
	if mt == wire.MsgError {
		return fmt.Errorf("analyzd: server error: %s", payload)
	}
	if mt != wire.MsgSubscribeOK {
		return fmt.Errorf("analyzd: unexpected reply type %d", mt)
	}
	return nil
}

// NextEvent blocks for the next pushed incident event. Unknown frame
// types from a newer server are skipped, per the wire package contract.
func (c *Client) NextEvent() (*wire.IncidentEvent, error) {
	for {
		mt, payload, err := wire.ReadFrame(c.conn)
		if err != nil {
			return nil, fmt.Errorf("analyzd: next event: %w", err)
		}
		switch {
		case mt == wire.MsgIncidentEvent:
			var ev wire.IncidentEvent
			if err := json.Unmarshal(payload, &ev); err != nil {
				return nil, fmt.Errorf("analyzd: decode event: %w", err)
			}
			return &ev, nil
		case mt == wire.MsgError:
			return nil, fmt.Errorf("analyzd: server error: %s", payload)
		case !wire.Known(mt):
			continue // forward compatibility: skip unknown frames
		default:
			return nil, fmt.Errorf("analyzd: unexpected frame type %d while tailing", mt)
		}
	}
}

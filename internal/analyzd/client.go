package analyzd

import (
	"encoding/json"
	"fmt"
	"net"
	"sort"

	"hawkeye/internal/packet"
	"hawkeye/internal/telemetry"
	"hawkeye/internal/topo"
	"hawkeye/internal/wire"
)

// packetFiveTuple keeps the server file free of a direct packet import
// cycle concern; it is just the packet type.
type packetFiveTuple = packet.FiveTuple

// sortReports orders reports by switch ID for deterministic graphs.
func sortReports(reports []*telemetry.Report) {
	sort.Slice(reports, func(i, j int) bool { return reports[i].Switch < reports[j].Switch })
}

// Client is one analyzer session.
type Client struct {
	conn net.Conn
}

// Dial connects and performs the handshake: the fabric topology and the
// telemetry epoch are session state on the server.
func Dial(addr string, t *topo.Topology, epochNS int64) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("analyzd: dial: %w", err)
	}
	c := &Client{conn: conn}
	spec, err := json.Marshal(t.ToSpec())
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("analyzd: topology: %w", err)
	}
	hello := wire.Hello{Version: wire.ProtocolVersion, Topo: spec, EpochNS: epochNS}
	if err := wire.WriteJSON(conn, wire.MsgHello, hello); err != nil {
		conn.Close()
		return nil, err
	}
	mt, payload, err := wire.ReadFrame(conn)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("analyzd: handshake: %w", err)
	}
	if mt == wire.MsgError {
		conn.Close()
		return nil, fmt.Errorf("analyzd: server rejected hello: %s", payload)
	}
	if mt != wire.MsgHelloOK {
		conn.Close()
		return nil, fmt.Errorf("analyzd: unexpected handshake reply type %d", mt)
	}
	return c, nil
}

// Close ends the session.
func (c *Client) Close() error { return c.conn.Close() }

// SendReport pushes one switch telemetry report.
func (c *Client) SendReport(rep *telemetry.Report) error {
	data, err := rep.MarshalBinary()
	if err != nil {
		return fmt.Errorf("analyzd: encode report: %w", err)
	}
	return wire.WriteFrame(c.conn, wire.MsgReport, data)
}

// Diagnose asks the analyzer for the verdict on a victim flow.
func (c *Client) Diagnose(victim packet.FiveTuple) (*wire.Diagnosis, error) {
	return c.DiagnoseAt(victim, 0)
}

// DiagnoseAt is Diagnose with the complaint's trigger time attached, so
// the server can group diagnoses into incidents.
func (c *Client) DiagnoseAt(victim packet.FiveTuple, atNS int64) (*wire.Diagnosis, error) {
	if err := wire.WriteFrame(c.conn, wire.MsgDiagnose, wire.EncodeDiagnoseRequest(victim, atNS)); err != nil {
		return nil, err
	}
	mt, payload, err := wire.ReadFrame(c.conn)
	if err != nil {
		return nil, fmt.Errorf("analyzd: diagnose: %w", err)
	}
	if mt == wire.MsgError {
		return nil, fmt.Errorf("analyzd: server error: %s", payload)
	}
	if mt != wire.MsgDiagnosis {
		return nil, fmt.Errorf("analyzd: unexpected reply type %d", mt)
	}
	var d wire.Diagnosis
	if err := json.Unmarshal(payload, &d); err != nil {
		return nil, fmt.Errorf("analyzd: decode diagnosis: %w", err)
	}
	return &d, nil
}

// Incidents asks the analyzer to group this session's diagnoses into
// incidents.
func (c *Client) Incidents() ([]wire.IncidentSummary, error) {
	if err := wire.WriteFrame(c.conn, wire.MsgIncidents, nil); err != nil {
		return nil, err
	}
	mt, payload, err := wire.ReadFrame(c.conn)
	if err != nil {
		return nil, fmt.Errorf("analyzd: incidents: %w", err)
	}
	if mt == wire.MsgError {
		return nil, fmt.Errorf("analyzd: server error: %s", payload)
	}
	if mt != wire.MsgIncidentList {
		return nil, fmt.Errorf("analyzd: unexpected reply type %d", mt)
	}
	var out []wire.IncidentSummary
	if err := json.Unmarshal(payload, &out); err != nil {
		return nil, fmt.Errorf("analyzd: decode incidents: %w", err)
	}
	return out, nil
}

package analyzd

import (
	"sync"
	"testing"
	"time"

	"hawkeye/internal/chaos"
	"hawkeye/internal/packet"
)

// sleepRecorder collects the backoff delays instead of waiting them out.
type sleepRecorder struct {
	mu     sync.Mutex
	delays []time.Duration
}

func (r *sleepRecorder) sleep(d time.Duration) {
	r.mu.Lock()
	r.delays = append(r.delays, d)
	r.mu.Unlock()
}

func (r *sleepRecorder) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.delays)
}

func retryCfgFor(rec *sleepRecorder) RetryConfig {
	rc := DefaultRetryConfig()
	rc.Sleep = rec.sleep
	return rc
}

// TestDialRetriesThroughResets: the analyzer's network resets the first
// two connections; the client must back off and land the third.
func TestDialRetriesThroughResets(t *testing.T) {
	s := newServer(t)
	p, err := chaos.NewFlakyProxy("127.0.0.1:0", s.Addr(), chaos.FlakyConfig{ResetFirst: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	rec := &sleepRecorder{}
	c, err := DialFabricRetry(p.Addr(), "", smallTopo(t), 131072, retryCfgFor(rec))
	if err != nil {
		t.Fatalf("dial through flaky proxy: %v", err)
	}
	defer c.Close()
	if got := rec.count(); got != 2 {
		t.Errorf("backoffs = %d, want 2", got)
	}
	// Backoffs must grow exponentially (jitter is only ±20%).
	rec.mu.Lock()
	if len(rec.delays) == 2 && rec.delays[1] < rec.delays[0] {
		t.Errorf("backoff shrank: %v", rec.delays)
	}
	rec.mu.Unlock()
	// The surviving session must actually work.
	if _, err := c.Diagnose(packet.FiveTuple{SrcIP: 1, DstIP: 2}); err != nil {
		t.Fatalf("diagnose on retried session: %v", err)
	}
}

// TestDiagnoseSurvivesMidSessionReset: the connection dies after the
// handshake; the next request must redial, re-handshake and complete.
func TestDiagnoseSurvivesMidSessionReset(t *testing.T) {
	s := newServer(t)
	p, err := chaos.NewFlakyProxy("127.0.0.1:0", s.Addr(), chaos.FlakyConfig{ResetEveryNth: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	rec := &sleepRecorder{}
	// Connection 1 survives the handshake. Kill it out from under the
	// client, so the next request hits a dead socket; the retry dials
	// connection 2, which the proxy resets, then connection 3 works.
	c, err := DialFabricRetry(p.Addr(), "", smallTopo(t), 131072, retryCfgFor(rec))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.conn.Close()

	d, err := c.Diagnose(packet.FiveTuple{SrcIP: 1, DstIP: 2})
	if err != nil {
		t.Fatalf("diagnose after reset: %v", err)
	}
	if d.Confidence == "" {
		t.Error("diagnosis reply missing confidence grade")
	}
	if c.Redials == 0 {
		t.Error("client never recorded a redial")
	}
}

// TestRetryGivesUpAfterMaxAttempts: with every connection reset, the
// client must fail after its budget, not hang forever.
func TestRetryGivesUpAfterMaxAttempts(t *testing.T) {
	s := newServer(t)
	p, err := chaos.NewFlakyProxy("127.0.0.1:0", s.Addr(), chaos.FlakyConfig{ResetFirst: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	rec := &sleepRecorder{}
	rc := retryCfgFor(rec)
	rc.MaxAttempts = 3
	if _, err := DialFabricRetry(p.Addr(), "", smallTopo(t), 131072, rc); err == nil {
		t.Fatal("dial succeeded against always-reset proxy")
	}
	if got := rec.count(); got != 2 {
		t.Errorf("backoffs = %d, want 2 (3 attempts)", got)
	}
}

// TestHandshakeRejectionIsNotRetried: a server that rejects the hello is
// a permanent failure — retrying would hammer it for nothing.
func TestHandshakeRejectionIsNotRetried(t *testing.T) {
	s := newServer(t)
	rec := &sleepRecorder{}
	rc := retryCfgFor(rec)
	c := &Client{addr: s.Addr(), hello: helloFor(t, smallTopo(t)), retry: rc}
	c.hello.Version = 999
	if _, err := dialHello(s.Addr(), c.hello, rc); err == nil {
		t.Fatal("bad version accepted")
	}
	if got := rec.count(); got != 0 {
		t.Errorf("rejected handshake was retried %d times", got)
	}
}

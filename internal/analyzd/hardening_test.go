package analyzd

import (
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"hawkeye/internal/chaos"
	"hawkeye/internal/experiments"
	"hawkeye/internal/wire"
	"hawkeye/internal/workload"
)

// fakeServer accepts one connection, answers the handshake, then hands
// the session to script. It stands in for a server whose mid-query
// behavior the client must survive.
func fakeServer(t *testing.T, script func(conn net.Conn)) string {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lis.Close() })
	go func() {
		conn, err := lis.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		if _, _, err := wire.ReadFrame(conn); err != nil {
			return
		}
		if err := wire.WriteFrame(conn, wire.MsgHelloOK, nil); err != nil {
			return
		}
		script(conn)
	}()
	return lis.Addr().String()
}

// noRetry keeps these tests single-shot: a redial against the one-shot
// fake server would just hang the test.
func noRetry() RetryConfig {
	rc := DefaultRetryConfig()
	rc.MaxAttempts = 1
	return rc
}

// TestClientShutdownMidQuery: a MsgShutdown frame arriving where the
// reply should be is the server draining — the client must surface the
// typed error, not hang and not parse the goodbye as a health reply.
func TestClientShutdownMidQuery(t *testing.T) {
	addr := fakeServer(t, func(conn net.Conn) {
		if _, _, err := wire.ReadFrame(conn); err != nil {
			return
		}
		_ = wire.WriteFrame(conn, wire.MsgShutdown, nil)
	})
	c, err := DialOperatorRetry(addr, noRetry())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Health()
	if !errors.Is(err, ErrServerDraining) {
		t.Fatalf("health during drain: %v, want ErrServerDraining", err)
	}
}

// TestClientErrorMidQuery: a MsgError reply must come back as a clean
// error naming the server's complaint.
func TestClientErrorMidQuery(t *testing.T) {
	addr := fakeServer(t, func(conn net.Conn) {
		if _, _, err := wire.ReadFrame(conn); err != nil {
			return
		}
		_ = wire.WriteFrame(conn, wire.MsgError, []byte("deliberate refusal"))
	})
	c, err := DialOperatorRetry(addr, noRetry())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Health()
	if err == nil || !strings.Contains(err.Error(), "deliberate refusal") {
		t.Fatalf("error reply mangled: %v", err)
	}
}

// TestClientSkipsUnknownFrameBeforeReply: a frame type from a newer
// server interleaved before the reply must be skipped, with the real
// reply still attributed to the request.
func TestClientSkipsUnknownFrameBeforeReply(t *testing.T) {
	addr := fakeServer(t, func(conn net.Conn) {
		if _, _, err := wire.ReadFrame(conn); err != nil {
			return
		}
		_ = wire.WriteFrame(conn, wire.MsgType(200), []byte("from the future"))
		_ = wire.WriteFrame(conn, wire.MsgHealthReply, []byte(`{"state":"serving"}`))
	})
	c, err := DialOperatorRetry(addr, noRetry())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	h, err := c.Health()
	if err != nil {
		t.Fatal(err)
	}
	if h.State != "serving" {
		t.Fatalf("reply misattributed: %+v", h)
	}
}

// TestReadTimeoutDropsStalledSession: with a read deadline configured, a
// peer that never sends its next frame is cut loose instead of pinning a
// handler goroutine.
func TestReadTimeoutDropsStalledSession(t *testing.T) {
	s, err := ListenOpts("127.0.0.1:0", Options{ReadTimeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	conn := rawDial(t, s.Addr())
	h := helloFor(t, smallTopo(t))
	if err := wire.WriteJSON(conn, wire.MsgHello, h); err != nil {
		t.Fatal(err)
	}
	if mt, _, err := wire.ReadFrame(conn); err != nil || mt != wire.MsgHelloOK {
		t.Fatalf("handshake: type=%d err=%v", mt, err)
	}
	// Send nothing. The server must hang up on its own.
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	for {
		if _, _, err := wire.ReadFrame(conn); err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				t.Fatal("server kept the stalled session open")
			}
			return // closed by the server: the deadline fired
		}
	}
}

// TestCorruptedStreamDoesNotKillServer drives real telemetry through a
// bit-flipping proxy. Wherever the flips land — length prefixes, type
// bytes, payloads — the affected session may die, but the server must
// absorb it and keep answering clean sessions.
func TestCorruptedStreamDoesNotKillServer(t *testing.T) {
	tr, err := experiments.RunTrial(experiments.DefaultTrialConfig(workload.NameIncast, 1))
	if err != nil {
		t.Fatal(err)
	}
	s := newServer(t)
	epochNS := int64(tr.Sys.Cfg.Telemetry.EpochSize())

	for seed := uint64(1); seed <= 4; seed++ {
		p, err := chaos.NewFlakyProxy("127.0.0.1:0", s.Addr(),
			chaos.FlakyConfig{CorruptEveryNth: 2, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		// Errors anywhere here are expected — a flipped bit in the hello
		// or a length prefix legitimately kills that session. What is
		// never acceptable is the server going down with it.
		if c, err := Dial(p.Addr(), tr.Cl.Topo, epochNS); err == nil {
			for _, rep := range tr.View.Traced {
				if err := c.SendReport(rep); err != nil {
					break
				}
			}
			c.Close()
		}
		p.Close()
	}

	c, err := Dial(s.Addr(), tr.Cl.Topo, epochNS)
	if err != nil {
		t.Fatalf("clean dial after corrupted sessions: %v", err)
	}
	defer c.Close()
	h, err := c.Health()
	if err != nil || h.State != "serving" {
		t.Fatalf("server unhealthy after corrupted streams: %+v err=%v", h, err)
	}
}

// TestRejectedReportDegradesDiagnosis wires the accounting end to end:
// after honest telemetry plus one garbage report, the verdict still
// stands but names the rejection and cannot be high-confidence.
func TestRejectedReportDegradesDiagnosis(t *testing.T) {
	tr, err := experiments.RunTrial(experiments.DefaultTrialConfig(workload.NameIncast, 1))
	if err != nil {
		t.Fatal(err)
	}
	s := newServer(t)
	c, err := Dial(s.Addr(), tr.Cl.Topo, int64(tr.Sys.Cfg.Telemetry.EpochSize()))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, rep := range tr.View.Traced {
		if err := c.SendReport(rep); err != nil {
			t.Fatal(err)
		}
	}
	if err := wire.WriteFrame(c.conn, wire.MsgReport, garbageReport(t)); err != nil {
		t.Fatal(err)
	}
	d, err := c.Diagnose(tr.Score.Result.Trigger.Victim)
	if err != nil {
		t.Fatal(err)
	}
	if d.Type != tr.Score.Result.Diagnosis.Type.String() {
		t.Fatalf("verdict changed under rejection: %s", d.Type)
	}
	if d.Confidence == "high" {
		t.Fatalf("rejected report left confidence high (%.2f)", d.Score)
	}
	found := false
	for _, m := range d.Missing {
		if strings.Contains(m, "rejected") {
			found = true
		}
	}
	if !found {
		t.Fatalf("rejection invisible in diagnosis: %v", d.Missing)
	}
	if st := s.Stats(); st.RejectedReports != 1 {
		t.Fatalf("RejectedReports = %d, want 1", st.RejectedReports)
	}
}

package analyzd

import (
	"errors"
	"testing"
	"time"

	"hawkeye/internal/wire"
)

// shedServer builds a server whose ingest queue only drains at query
// time (manual pipeline), so a test can park the load at an exact fill
// fraction and watch each shed tier trip.
func shedServer(t *testing.T, depth int) *Server {
	t.Helper()
	s, err := ListenOpts("127.0.0.1:0", Options{
		ManualPipeline: true,
		PipeDepth:      depth,
		RetryAfterMs:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// oneShot is a client retry policy that surfaces the first throttle
// instead of backing off, so the test observes each shed directly.
func oneShot() RetryConfig {
	return RetryConfig{MaxAttempts: 1, Seed: 1, Sleep: func(time.Duration) {}}
}

// TestShedTierOrdering floods the ingest queue with a fabric client and
// checks the degradation order the issue pins down: subscriptions shed
// at half-full, queries only near saturation, diagnosis ingest never —
// and the per-tier counters account for every refusal.
func TestShedTierOrdering(t *testing.T) {
	const depth = 10
	s := shedServer(t, depth)
	fab, err := Dial(s.Addr(), smallTopo(t), 131072)
	if err != nil {
		t.Fatal(err)
	}
	defer fab.Close()
	op, err := DialOperatorRetry(s.Addr(), oneShot())
	if err != nil {
		t.Fatal(err)
	}
	defer op.Close()

	fill := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			if _, err := fab.Diagnose(packetFiveTuple{SrcIP: 1, DstIP: 2, Proto: 17}); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Half-full: subscriptions shed, queries still served.
	fill(depth / 2)
	if got := s.pipe.Load(); got < 0.5 {
		t.Fatalf("load = %v, want >= 0.5", got)
	}
	if err := op.Subscribe(wire.SubscribeRequest{Node: -1}); !errors.Is(err, ErrThrottled) {
		t.Fatalf("subscribe at half-full: err = %v, want ErrThrottled", err)
	}
	if _, err := op.QueryIncidents(wire.IncidentQuery{Node: -1}); err != nil {
		t.Fatalf("query at half-full shed: %v", err)
	}

	// The admitted query drained the queue; the subscription tier
	// reopens.
	if got := s.pipe.Pending(); got != 0 {
		t.Fatalf("pending after query = %d, want 0 (query drains)", got)
	}
	tail, err := DialOperatorRetry(s.Addr(), oneShot())
	if err != nil {
		t.Fatal(err)
	}
	defer tail.Close()
	if err := tail.Subscribe(wire.SubscribeRequest{Node: -1}); err != nil {
		t.Fatalf("subscribe at idle: %v", err)
	}

	// Near saturation: queries shed too; diagnosis ingest still served.
	fill(depth - 1)
	if err := op.Subscribe(wire.SubscribeRequest{Node: -1}); !errors.Is(err, ErrThrottled) {
		t.Fatalf("subscribe near saturation: err = %v, want ErrThrottled", err)
	}
	if _, err := op.QueryIncidents(wire.IncidentQuery{Node: -1}); !errors.Is(err, ErrThrottled) {
		t.Fatalf("query near saturation: err = %v, want ErrThrottled", err)
	}
	// The last queue slot plus an overflow: the diagnosis RPC is still
	// answered both times — the queue sheds the overflow record with
	// accounting instead of refusing the verb.
	fill(2)

	st := s.Stats()
	if st.ShedSubscriptions != 2 {
		t.Fatalf("ShedSubscriptions = %d, want 2", st.ShedSubscriptions)
	}
	if st.ShedQueries != 1 {
		t.Fatalf("ShedQueries = %d, want 1", st.ShedQueries)
	}
	if st.Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1 (one record past the full queue)", st.Dropped)
	}
	if want := depth/2 + depth - 1 + 2; st.Diagnoses != want {
		t.Fatalf("Diagnoses = %d, want %d: the ingest tier must never refuse", st.Diagnoses, want)
	}
}

// TestThrottleRetrySucceeds checks the client side of the contract: a
// throttled request is retried after the server's hint and succeeds
// once the load falls, without tearing the session down.
func TestThrottleRetrySucceeds(t *testing.T) {
	const depth = 10
	s := shedServer(t, depth)
	fab, err := Dial(s.Addr(), smallTopo(t), 131072)
	if err != nil {
		t.Fatal(err)
	}
	defer fab.Close()
	for i := 0; i < depth-1; i++ {
		if _, err := fab.Diagnose(packetFiveTuple{SrcIP: 1, DstIP: 2, Proto: 17}); err != nil {
			t.Fatal(err)
		}
	}

	// Between the first (shed) attempt and the retry, relieve the load.
	slept := 0
	rc := RetryConfig{MaxAttempts: 3, Seed: 1}
	rc.Sleep = func(time.Duration) {
		slept++
		s.pipe.Drain()
	}
	op, err := DialOperatorRetry(s.Addr(), rc)
	if err != nil {
		t.Fatal(err)
	}
	defer op.Close()
	if _, err := op.QueryIncidents(wire.IncidentQuery{Node: -1}); err != nil {
		t.Fatalf("query after relief: %v", err)
	}
	if slept == 0 {
		t.Fatal("client never honored the throttle hint")
	}
	if s.Stats().ShedQueries != 1 {
		t.Fatalf("ShedQueries = %d, want 1", s.Stats().ShedQueries)
	}
	if op.Redials != 0 {
		t.Fatalf("client redialed %d times on a healthy session", op.Redials)
	}
}

package analyzd

import (
	"errors"
	"testing"
	"time"

	"hawkeye/internal/rollup"
	"hawkeye/internal/sim"
	"hawkeye/internal/wire"
)

// TestRollupsOverTheWire drives diagnoses through a fabric session and
// checks the full rollup surface: live subscription events, windowed
// queries with sliding merges and drill-down, and the health fields.
func TestRollupsOverTheWire(t *testing.T) {
	s := newServer(t)

	tail, err := DialOperator(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer tail.Close()
	if err := tail.SubscribeRollups(wire.RollupSubscribeRequest{}); err != nil {
		t.Fatal(err)
	}

	fab, err := Dial(s.Addr(), smallTopo(t), 131072)
	if err != nil {
		t.Fatal(err)
	}
	defer fab.Close()
	const n = 8
	for i := 0; i < n; i++ {
		if _, err := fab.DiagnoseAt(packetFiveTuple{SrcIP: 1, DstIP: 2, Proto: 17}, int64(1000+i)); err != nil {
			t.Fatal(err)
		}
	}

	// The subscription sees the window open.
	ev, err := tail.NextRollup()
	if err != nil {
		t.Fatal(err)
	}
	if ev.Kind != "opened" {
		t.Fatalf("first rollup event %q, want opened", ev.Kind)
	}

	// Query: read-your-writes (the server drains the pipeline first).
	q, err := DialOperator(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	res, err := q.QueryRollups(wire.RollupQuery{Sliding: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Windows) != 1 || res.Sliding == nil {
		t.Fatalf("windows = %d, sliding = %v", len(res.Windows), res.Sliding)
	}
	w := res.Windows[0]
	if w.Records != n || w.Closed {
		t.Fatalf("window: %+v", w)
	}
	if w.ByType == nil || w.Headline == "" || w.Bytes == 0 {
		t.Fatalf("window missing rendered fields: %+v", w)
	}
	if len(w.Top["fabric"]) == 0 {
		t.Fatalf("no fabric heavy hitters: %+v", w.Top)
	}

	// Drill-down narrows the rendered levels.
	res, err = q.QueryRollups(wire.RollupQuery{Level: "switch"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Windows[0].Top) != 1 {
		t.Fatalf("level filter rendered %v", res.Windows[0].Top)
	}

	// Unknown levels are rejected with a decode-class error, not served.
	if _, err := q.QueryRollups(wire.RollupQuery{Level: "rack"}); err == nil {
		t.Fatal("unknown rollup level accepted")
	}

	h, err := q.Health()
	if err != nil {
		t.Fatal(err)
	}
	if h.RollupWindowsOpen != 1 || h.RollupBytes == 0 {
		t.Fatalf("health rollup fields: %+v", h)
	}

	st := s.Stats()
	if st.RollupWindowsOpen != 1 || st.RollupBytes == 0 {
		t.Fatalf("server rollup stats: %+v", st)
	}
}

// TestRollupSubscriptionShedding pins the admission tier: rollup
// subscriptions shed at the same half-full threshold as incident
// subscriptions, with their own counter, while rollup queries ride the
// query tier.
func TestRollupSubscriptionShedding(t *testing.T) {
	const depth = 10
	s := shedServer(t, depth)
	fab, err := Dial(s.Addr(), smallTopo(t), 131072)
	if err != nil {
		t.Fatal(err)
	}
	defer fab.Close()
	op, err := DialOperatorRetry(s.Addr(), oneShot())
	if err != nil {
		t.Fatal(err)
	}
	defer op.Close()

	for i := 0; i < depth/2; i++ {
		if _, err := fab.Diagnose(packetFiveTuple{SrcIP: 1, DstIP: 2, Proto: 17}); err != nil {
			t.Fatal(err)
		}
	}
	if err := op.SubscribeRollups(wire.RollupSubscribeRequest{}); !errors.Is(err, ErrThrottled) {
		t.Fatalf("rollup subscribe at half-full: %v, want ErrThrottled", err)
	}
	// Queries still served at half-full — and they drain the queue.
	if _, err := op.QueryRollups(wire.RollupQuery{}); err != nil {
		t.Fatalf("rollup query at half-full: %v", err)
	}

	st := s.Stats()
	if st.ShedRollups != 1 {
		t.Fatalf("ShedRollups = %d, want 1", st.ShedRollups)
	}
	if st.ShedSubscriptions != 0 {
		t.Fatalf("ShedSubscriptions = %d, want 0 (rollups count separately)", st.ShedSubscriptions)
	}
	h, err := op.Health()
	if err != nil {
		t.Fatal(err)
	}
	if h.ShedRollups != 1 {
		t.Fatalf("health ShedRollups = %d, want 1", h.ShedRollups)
	}

	// Idle again: the tier reopens.
	if err := op.SubscribeRollups(wire.RollupSubscribeRequest{}); err != nil {
		t.Fatalf("rollup subscribe at idle: %v", err)
	}
}

// TestResubscribeSurvivesServerRestart is the reconnect contract the
// fleet CLI's tail rides: a subscribed operator loses the server, a new
// one comes up on the same address, and Resubscribe restores the stream
// with the client's capped backoff — no new client, no lost session
// state.
func TestResubscribeSurvivesServerRestart(t *testing.T) {
	a, err := ListenOpts("127.0.0.1:0", Options{})
	if err != nil {
		t.Fatal(err)
	}
	addr := a.Addr()

	rc := DefaultRetryConfig()
	rc.MaxAttempts = 40
	rc.Seed = 1
	rc.Sleep = func(time.Duration) {}
	op, err := DialOperatorRetry(addr, rc)
	if err != nil {
		t.Fatal(err)
	}
	defer op.Close()
	if err := op.SubscribeRollups(wire.RollupSubscribeRequest{}); err != nil {
		t.Fatal(err)
	}

	// The server goes away; the next read surfaces the drain/loss.
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := op.NextRollup(); err == nil {
		t.Fatal("read from closed server succeeded")
	}

	// A replacement comes up on the same address (retry rides the gap).
	var b *Server
	for i := 0; i < 100; i++ {
		b, err = ListenOpts(addr, Options{})
		if err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	defer b.Close()

	if err := op.Resubscribe(); err != nil {
		t.Fatalf("resubscribe after restart: %v", err)
	}

	// New activity on the new server reaches the restored subscription.
	fab, err := Dial(addr, smallTopo(t), 131072)
	if err != nil {
		t.Fatal(err)
	}
	defer fab.Close()
	if _, err := fab.DiagnoseAt(packetFiveTuple{SrcIP: 1, DstIP: 2, Proto: 17}, 5000); err != nil {
		t.Fatal(err)
	}
	ev, err := op.NextRollup()
	if err != nil {
		t.Fatalf("next rollup after resubscribe: %v", err)
	}
	if ev.Kind != "opened" {
		t.Fatalf("restored stream first event %q, want opened", ev.Kind)
	}

	// An incident subscription restores the same way.
	if err := op.Subscribe(wire.SubscribeRequest{Node: -1}); err != nil {
		t.Fatal(err)
	}
	// (Resubscribe now tracks the most recent subscription frame.)
	if err := op.Resubscribe(); err != nil {
		t.Fatalf("resubscribe incident stream: %v", err)
	}
}

// TestResubscribeWithoutSubscription: nothing to restore is an explicit
// error, not a silent no-op.
func TestResubscribeWithoutSubscription(t *testing.T) {
	s := newServer(t)
	op, err := DialOperator(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer op.Close()
	if err := op.Resubscribe(); !errors.Is(err, ErrNoSubscription) {
		t.Fatalf("err = %v, want ErrNoSubscription", err)
	}
}

// TestRollupObserverSurvivesRestart: with a durable store, WAL replay
// rebuilds the rollup windows on the new server — the summarizer rides
// the same record feed the store replays.
func TestRollupObserverSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	a, err := ListenOpts("127.0.0.1:0", Options{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	fab, err := Dial(a.Addr(), smallTopo(t), 131072)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := fab.DiagnoseAt(packetFiveTuple{SrcIP: 1, DstIP: 2, Proto: 17}, int64(2000+i)); err != nil {
			t.Fatal(err)
		}
	}
	// Drain the pipeline into the store before the restart.
	op, err := DialOperator(a.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := op.QueryRollups(wire.RollupQuery{}); err != nil {
		t.Fatal(err)
	}
	op.Close()
	fab.Close()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	b, err := ListenOpts("127.0.0.1:0", Options{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	res := b.Rollups().Query(rollup.QueryOpts{})
	var replayed uint64
	for _, w := range res.Panes {
		replayed += w.Records
	}
	if replayed != 5 {
		t.Fatalf("replayed rollup records = %d, want 5", replayed)
	}
	if res.Panes[0].Start > sim.Time(2000) {
		t.Fatalf("replayed pane start %v, want <= trigger time", res.Panes[0].Start)
	}
}

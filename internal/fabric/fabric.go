// Package fabric is the glue between the event engine and the node models:
// it owns the wire (serialization + propagation of packets between node
// ports) and the shared egress-port machinery (per-class FIFO queues,
// strict-priority scheduling, PFC pause state) that both switches and host
// NICs build on.
package fabric

import (
	"fmt"

	"hawkeye/internal/packet"
	"hawkeye/internal/sim"
	"hawkeye/internal/topo"
)

// Receiver is anything attached to the network that can accept a packet
// arriving on one of its ports.
type Receiver interface {
	Receive(pkt *packet.Packet, port int)
}

// Network delivers packets between node ports with serialization and
// propagation delay. It also keeps fabric-wide counters used by the
// overhead experiments.
type Network struct {
	Eng  *sim.Engine
	Topo *topo.Topology

	nodes map[topo.NodeID]Receiver

	// Counters (bytes on the wire, by broad category). These feed the
	// monitoring-bandwidth overhead comparison (paper Fig. 9b).
	DataBytes    uint64
	ControlBytes uint64
	PFCBytes     uint64
	PollingBytes uint64
	ReportBytes  uint64
	Delivered    uint64

	// OnWire, if set, observes every packet as it is put on a link —
	// a passive tap (pcap capture, debugging). It must not mutate pkt.
	OnWire func(from topo.NodeID, port int, pkt *packet.Packet, now sim.Time)
}

// NewNetwork creates a network over the topology.
func NewNetwork(eng *sim.Engine, t *topo.Topology) *Network {
	return &Network{Eng: eng, Topo: t, nodes: make(map[topo.NodeID]Receiver)}
}

// Register attaches a node model to a topology node.
func (n *Network) Register(id topo.NodeID, r Receiver) { n.nodes[id] = r }

// NodeModel returns the model registered for id, or nil.
func (n *Network) NodeModel(id topo.NodeID) Receiver { return n.nodes[id] }

// Deliver puts pkt on the wire from (from, port) with the given extra
// sender-side delay already elapsed (0 for out-of-band control frames).
// The peer's Receive fires after serialization + propagation.
func (n *Network) Deliver(from topo.NodeID, port int, pkt *packet.Packet) {
	peer, peerPort := n.Topo.PeerOf(from, port)
	rx, ok := n.nodes[peer]
	if !ok {
		panic(fmt.Sprintf("fabric: no model registered for node %d", peer))
	}
	n.account(pkt)
	if n.OnWire != nil {
		n.OnWire(from, port, pkt, n.Eng.Now())
	}
	tx := n.Topo.TransmitTime(pkt.Size)
	n.Eng.After(tx+n.Topo.LinkDelay, func() {
		n.Delivered++
		rx.Receive(pkt, peerPort)
	})
}

func (n *Network) account(pkt *packet.Packet) {
	sz := uint64(pkt.Size)
	switch pkt.Type {
	case packet.TypeData:
		n.DataBytes += sz
	case packet.TypePFC:
		n.PFCBytes += sz
	case packet.TypePolling:
		n.PollingBytes += sz
	case packet.TypeReport:
		n.ReportBytes += sz
	default:
		n.ControlBytes += sz
	}
}

// SendPFC transmits a PFC frame out of (from, port) out-of-band: real MACs
// inject pause frames at the next frame boundary without queuing behind
// data. The worst-case extra latency this ignores is one MTU
// serialization (~80 ns at 100 Gbps), far below the 2 µs link delay.
func (n *Network) SendPFC(from topo.NodeID, port int, frame *packet.PFCFrame) {
	pkt := &packet.Packet{
		Type:  packet.TypePFC,
		Class: packet.ClassControl,
		Size:  packet.PFCFrameSize,
		PFC:   frame,
	}
	n.Deliver(from, port, pkt)
}

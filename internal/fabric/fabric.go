// Package fabric is the glue between the event engine and the node models:
// it owns the wire (serialization + propagation of packets between node
// ports) and the shared egress-port machinery (per-class FIFO queues,
// strict-priority scheduling, PFC pause state) that both switches and host
// NICs build on.
package fabric

import (
	"fmt"

	"hawkeye/internal/packet"
	"hawkeye/internal/sim"
	"hawkeye/internal/topo"
)

// Receiver is anything attached to the network that can accept a packet
// arriving on one of its ports.
type Receiver interface {
	Receive(pkt *packet.Packet, port int)
}

// Network delivers packets between node ports with serialization and
// propagation delay. It also keeps fabric-wide counters used by the
// overhead experiments.
type Network struct {
	Eng  *sim.Engine
	Topo *topo.Topology

	nodes map[topo.NodeID]Receiver

	// Counters (bytes on the wire, by broad category). These feed the
	// monitoring-bandwidth overhead comparison (paper Fig. 9b).
	DataBytes    uint64
	ControlBytes uint64
	PFCBytes     uint64
	PollingBytes uint64
	ReportBytes  uint64
	Delivered    uint64

	// OnWire, if set, observes every packet as it is put on a link —
	// a passive tap (pcap capture, debugging). It must not mutate pkt.
	OnWire func(from topo.NodeID, port int, pkt *packet.Packet, now sim.Time)

	// faults holds per-(node, port) link fault state installed by the
	// chaos engine. Nil (the common case) costs one map lookup only when
	// entries exist.
	faults map[portKey]*linkFault

	// FaultDrops counts packets discarded because their egress link was
	// administratively down (fault injection).
	FaultDrops uint64
}

// portKey addresses one directed link endpoint.
type portKey struct {
	node topo.NodeID
	port int
}

// linkFault is the injected state of one link endpoint: an outage window
// and/or a bandwidth derating factor.
type linkFault struct {
	downUntil sim.Time
	bwFactor  float64 // 0 or 1 = nominal rate
}

// NewNetwork creates a network over the topology.
func NewNetwork(eng *sim.Engine, t *topo.Topology) *Network {
	return &Network{Eng: eng, Topo: t, nodes: make(map[topo.NodeID]Receiver)}
}

func (n *Network) faultAt(node topo.NodeID, port int) *linkFault {
	if n.faults == nil {
		n.faults = make(map[portKey]*linkFault)
	}
	k := portKey{node, port}
	f := n.faults[k]
	if f == nil {
		f = &linkFault{}
		n.faults[k] = f
	}
	return f
}

// SetLinkDown marks the directed link endpoint (node, port) down until
// the given virtual time: packets sent out of it before then vanish on
// the wire. Chaos link flaps call this on both endpoints of a link.
func (n *Network) SetLinkDown(node topo.NodeID, port int, until sim.Time) {
	n.faultAt(node, port).downUntil = until
}

// SetLinkBandwidthFactor derates (factor < 1) or restores (factor 0 or 1)
// the serialization rate of the directed link endpoint (node, port).
func (n *Network) SetLinkBandwidthFactor(node topo.NodeID, port int, factor float64) {
	n.faultAt(node, port).bwFactor = factor
}

// LinkUp reports whether the directed link endpoint can currently carry
// traffic.
func (n *Network) LinkUp(node topo.NodeID, port int) bool {
	if n.faults == nil {
		return true
	}
	f := n.faults[portKey{node, port}]
	return f == nil || f.downUntil <= n.Eng.Now()
}

// TransmitTimeOn returns the serialization time of size bytes on the
// directed link endpoint (node, port), including any injected bandwidth
// derating. Without faults it equals Topo.TransmitTime.
func (n *Network) TransmitTimeOn(node topo.NodeID, port int, size int) sim.Time {
	tx := n.Topo.TransmitTime(size)
	if n.faults != nil {
		if f := n.faults[portKey{node, port}]; f != nil && f.bwFactor > 0 && f.bwFactor < 1 {
			tx = sim.Time(float64(tx) / f.bwFactor)
		}
	}
	return tx
}

// Register attaches a node model to a topology node.
func (n *Network) Register(id topo.NodeID, r Receiver) { n.nodes[id] = r }

// NodeModel returns the model registered for id, or nil.
func (n *Network) NodeModel(id topo.NodeID) Receiver { return n.nodes[id] }

// Deliver puts pkt on the wire from (from, port) with the given extra
// sender-side delay already elapsed (0 for out-of-band control frames).
// The peer's Receive fires after serialization + propagation.
func (n *Network) Deliver(from topo.NodeID, port int, pkt *packet.Packet) {
	peer, peerPort := n.Topo.PeerOf(from, port)
	rx, ok := n.nodes[peer]
	if !ok {
		panic(fmt.Sprintf("fabric: no model registered for node %d", peer))
	}
	if !n.LinkUp(from, port) {
		n.FaultDrops++
		return
	}
	n.account(pkt)
	if n.OnWire != nil {
		n.OnWire(from, port, pkt, n.Eng.Now())
	}
	tx := n.TransmitTimeOn(from, port, pkt.Size)
	n.Eng.After(tx+n.Topo.LinkDelay, func() {
		n.Delivered++
		rx.Receive(pkt, peerPort)
	})
}

func (n *Network) account(pkt *packet.Packet) {
	sz := uint64(pkt.Size)
	switch pkt.Type {
	case packet.TypeData:
		n.DataBytes += sz
	case packet.TypePFC:
		n.PFCBytes += sz
	case packet.TypePolling:
		n.PollingBytes += sz
	case packet.TypeReport:
		n.ReportBytes += sz
	default:
		n.ControlBytes += sz
	}
}

// SendPFC transmits a PFC frame out of (from, port) out-of-band: real MACs
// inject pause frames at the next frame boundary without queuing behind
// data. The worst-case extra latency this ignores is one MTU
// serialization (~80 ns at 100 Gbps), far below the 2 µs link delay.
func (n *Network) SendPFC(from topo.NodeID, port int, frame *packet.PFCFrame) {
	pkt := &packet.Packet{
		Type:  packet.TypePFC,
		Class: packet.ClassControl,
		Size:  packet.PFCFrameSize,
		PFC:   frame,
	}
	n.Deliver(from, port, pkt)
}

package fabric

import (
	"testing"

	"hawkeye/internal/packet"
	"hawkeye/internal/sim"
	"hawkeye/internal/topo"
)

// collector is a Receiver that records arrivals.
type collector struct {
	got []arrival
}

type arrival struct {
	pkt  *packet.Packet
	port int
	at   sim.Time
}

func (c *collector) Receive(p *packet.Packet, port int) {
	c.got = append(c.got, arrival{p, port, 0})
}

func twoNodeNet(t *testing.T) (*Network, topo.NodeID, topo.NodeID, *collector) {
	t.Helper()
	tp := topo.New(100e9, 2*sim.Microsecond)
	a := tp.AddSwitch("a")
	b := tp.AddSwitch("b")
	tp.Connect(a, b)
	eng := sim.NewEngine()
	net := NewNetwork(eng, tp)
	rx := &collector{}
	net.Register(b, rx)
	net.Register(a, &collector{})
	return net, a, b, rx
}

func dataPkt(size int) *packet.Packet {
	return &packet.Packet{Type: packet.TypeData, Class: packet.ClassLossless, Size: size}
}

func TestDeliverTiming(t *testing.T) {
	net, a, _, rx := twoNodeNet(t)
	net.Deliver(a, 0, dataPkt(1250)) // 100 ns serialization
	net.Eng.RunAll()
	if len(rx.got) != 1 {
		t.Fatalf("arrivals = %d", len(rx.got))
	}
	// tx (100ns) + propagation (2us).
	if now := net.Eng.Now(); now != 2100 {
		t.Fatalf("delivery at %v, want 2.1us", now)
	}
	if net.DataBytes != 1250 || net.Delivered != 1 {
		t.Fatalf("accounting: %d bytes, %d delivered", net.DataBytes, net.Delivered)
	}
}

func TestAccountingByType(t *testing.T) {
	net, a, _, _ := twoNodeNet(t)
	net.Deliver(a, 0, dataPkt(1000))
	net.Deliver(a, 0, &packet.Packet{Type: packet.TypePolling, Size: 97, Class: packet.ClassControl})
	net.SendPFC(a, 0, packet.NewPause(3, 5))
	net.Deliver(a, 0, &packet.Packet{Type: packet.TypeACK, Size: 84, Class: packet.ClassControl})
	net.Eng.RunAll()
	if net.DataBytes != 1000 || net.PollingBytes != 97 ||
		net.PFCBytes != packet.PFCFrameSize || net.ControlBytes != 84 {
		t.Fatalf("accounting: %+v", *net)
	}
}

func TestEgressFIFOAndSerialization(t *testing.T) {
	net, a, _, rx := twoNodeNet(t)
	eg := NewEgress(net, a, 0)
	for i := 0; i < 3; i++ {
		p := dataPkt(1250)
		p.Seq = uint32(i)
		eg.Enqueue(Queued{Pkt: p, InPort: -1})
	}
	net.Eng.RunAll()
	if len(rx.got) != 3 {
		t.Fatalf("arrivals = %d", len(rx.got))
	}
	for i, ar := range rx.got {
		if ar.pkt.Seq != uint32(i) {
			t.Fatalf("reordered: %d at position %d", ar.pkt.Seq, i)
		}
	}
	// Three back-to-back packets: last arrives at 3*tx + prop.
	if now := net.Eng.Now(); now != 3*100+2000 {
		t.Fatalf("last delivery at %v, want 2.3us", now)
	}
	if eg.TxPackets != 3 || eg.TxBytes != 3750 {
		t.Fatalf("tx counters: %d pkts %d bytes", eg.TxPackets, eg.TxBytes)
	}
}

func TestStrictPriorityControlFirst(t *testing.T) {
	net, a, _, rx := twoNodeNet(t)
	eg := NewEgress(net, a, 0)
	// Fill lossless first, then a control packet; control must overtake
	// everything that hasn't started transmitting.
	for i := 0; i < 3; i++ {
		p := dataPkt(1250)
		p.Seq = uint32(i)
		eg.Enqueue(Queued{Pkt: p, InPort: -1})
	}
	ctrl := &packet.Packet{Type: packet.TypeACK, Class: packet.ClassControl, Size: 84, Seq: 99}
	eg.Enqueue(Queued{Pkt: ctrl, InPort: -1})
	net.Eng.RunAll()
	if rx.got[0].pkt.Seq != 0 {
		t.Fatalf("in-flight packet preempted")
	}
	if rx.got[1].pkt.Seq != 99 {
		t.Fatalf("control packet did not overtake: order %v, %v", rx.got[1].pkt.Seq, rx.got[2].pkt.Seq)
	}
}

func TestPauseBlocksOnlyItsClass(t *testing.T) {
	net, a, _, rx := twoNodeNet(t)
	eg := NewEgress(net, a, 0)
	eg.Pause(packet.ClassLossless, 1000) // 5.12 us
	eg.Enqueue(Queued{Pkt: dataPkt(1000), InPort: -1})
	eg.Enqueue(Queued{Pkt: &packet.Packet{Type: packet.TypeACK, Class: packet.ClassControl, Size: 84}, InPort: -1})
	net.Eng.Run(3 * sim.Microsecond)
	if len(rx.got) != 1 || rx.got[0].pkt.Type != packet.TypeACK {
		t.Fatalf("control class blocked by lossless pause: %d arrivals", len(rx.got))
	}
	if !eg.Paused(packet.ClassLossless) {
		t.Fatal("pause not active")
	}
	net.Eng.RunAll()
	if len(rx.got) != 2 {
		t.Fatal("paused packet never released after quanta expiry")
	}
}

func TestResumeReleasesImmediately(t *testing.T) {
	net, a, _, rx := twoNodeNet(t)
	eg := NewEgress(net, a, 0)
	eg.Pause(packet.ClassLossless, packet.MaxPauseQuanta)
	eg.Enqueue(Queued{Pkt: dataPkt(1000), InPort: -1})
	net.Eng.Run(sim.Microsecond)
	if len(rx.got) != 0 {
		t.Fatal("packet escaped pause")
	}
	eg.Resume(packet.ClassLossless)
	net.Eng.RunAll()
	if len(rx.got) != 1 {
		t.Fatal("resume did not release the queue")
	}
	if net.Eng.Now() > 5*sim.Microsecond {
		t.Fatalf("release too late: %v", net.Eng.Now())
	}
}

func TestOnDequeueAndDrainCallbacks(t *testing.T) {
	net, a, _, _ := twoNodeNet(t)
	eg := NewEgress(net, a, 0)
	var deq, drain int
	eg.OnDequeue = func(q Queued) { deq++ }
	eg.OnDrain = func() { drain++ }
	eg.Enqueue(Queued{Pkt: dataPkt(1000), InPort: 5})
	eg.Enqueue(Queued{Pkt: dataPkt(1000), InPort: 5})
	net.Eng.RunAll()
	if deq != 2 || drain != 2 {
		t.Fatalf("callbacks: dequeue=%d drain=%d", deq, drain)
	}
}

func TestQueueAccounting(t *testing.T) {
	net, a, _, _ := twoNodeNet(t)
	eg := NewEgress(net, a, 0)
	eg.Pause(packet.ClassLossless, packet.MaxPauseQuanta)
	eg.Enqueue(Queued{Pkt: dataPkt(1000), InPort: -1})
	eg.Enqueue(Queued{Pkt: dataPkt(500), InPort: -1})
	if eg.QueueBytes(packet.ClassLossless) != 1500 || eg.QueuePackets(packet.ClassLossless) != 2 {
		t.Fatalf("backlog: %dB %dpkts", eg.QueueBytes(packet.ClassLossless), eg.QueuePackets(packet.ClassLossless))
	}
	if eg.TotalBytes() != 1500 {
		t.Fatalf("total: %d", eg.TotalBytes())
	}
}

func TestDropClassEmptiesOneClassOnly(t *testing.T) {
	net, a, _, _ := twoNodeNet(t)
	e := NewEgress(net, a, 0)
	// Pause both classes so nothing transmits, then queue two packets per
	// class.
	e.Pause(packet.ClassLossless, packet.MaxPauseQuanta)
	e.Pause(packet.ClassControl, packet.MaxPauseQuanta)
	for i := 0; i < 2; i++ {
		e.Enqueue(Queued{Pkt: &packet.Packet{Type: packet.TypeData, Class: packet.ClassLossless, Size: 1000}})
		e.Enqueue(Queued{Pkt: &packet.Packet{Type: packet.TypeACK, Class: packet.ClassControl, Size: 84}})
	}
	dropped := e.DropClass(packet.ClassLossless)
	if len(dropped) != 2 {
		t.Fatalf("dropped %d, want 2", len(dropped))
	}
	if e.QueueBytes(packet.ClassLossless) != 0 || e.QueuePackets(packet.ClassLossless) != 0 {
		t.Fatal("lossless accounting not zeroed")
	}
	if e.QueuePackets(packet.ClassControl) != 2 {
		t.Fatalf("control class disturbed: %d packets", e.QueuePackets(packet.ClassControl))
	}
	// Idempotent on an empty class.
	if again := e.DropClass(packet.ClassLossless); len(again) != 0 {
		t.Fatalf("second drop returned %d packets", len(again))
	}
}

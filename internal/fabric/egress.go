package fabric

import (
	"hawkeye/internal/packet"
	"hawkeye/internal/sim"
	"hawkeye/internal/topo"
)

// Queued is one packet waiting in an egress queue, together with the
// ingress port it arrived on (needed to release PFC ingress accounting
// when it leaves) and its enqueue time.
type Queued struct {
	Pkt        *packet.Packet
	InPort     int // -1 for locally generated packets
	EnqueuedAt sim.Time
}

// Egress models one output port: per-class FIFO queues, strict-priority
// scheduling (higher class number first), link serialization, and
// per-class PFC pause state. Both switch ports and host NICs use it.
type Egress struct {
	net  *Network
	node topo.NodeID
	port int

	queues   [packet.NumClasses][]Queued
	bytes    [packet.NumClasses]int
	pktCount [packet.NumClasses]int

	pausedUntil [packet.NumClasses]sim.Time
	resumeKick  [packet.NumClasses]sim.EventRef

	busy bool

	// OnDequeue, if set, fires when a packet starts transmission
	// (ingress-accounting release and telemetry hooks).
	OnDequeue func(q Queued)
	// OnDrain, if set, fires after every dequeue with the remaining
	// lossless backlog; host NICs use it to unblock paced flows.
	OnDrain func()

	// TxPackets and TxBytes count transmitted traffic.
	TxPackets uint64
	TxBytes   uint64
}

// NewEgress creates the egress machinery for (node, port).
func NewEgress(net *Network, node topo.NodeID, port int) *Egress {
	return &Egress{net: net, node: node, port: port}
}

// Node returns the owning node ID.
func (e *Egress) Node() topo.NodeID { return e.node }

// Port returns the port index on the owning node.
func (e *Egress) Port() int { return e.port }

// QueueBytes returns the backlog of one class in bytes.
func (e *Egress) QueueBytes(class uint8) int { return e.bytes[class] }

// QueuePackets returns the backlog of one class in packets.
func (e *Egress) QueuePackets(class uint8) int { return e.pktCount[class] }

// TotalBytes returns the backlog across all classes.
func (e *Egress) TotalBytes() int {
	total := 0
	for _, b := range e.bytes {
		total += b
	}
	return total
}

// Paused reports whether transmission of class is currently paused.
func (e *Egress) Paused(class uint8) bool {
	return e.pausedUntil[class] > e.net.Eng.Now()
}

// PausedUntil returns the virtual time the current pause of class expires
// (zero value if never paused).
func (e *Egress) PausedUntil(class uint8) sim.Time { return e.pausedUntil[class] }

// Pause stops transmission of class for the duration encoded in quanta,
// as dictated by a received PFC PAUSE frame.
func (e *Egress) Pause(class uint8, quanta uint16) {
	until := e.net.Eng.Now() + packet.PauseDuration(quanta, e.net.Topo.LinkBandwidth)
	e.setPause(class, until)
}

// Resume lifts the pause of class (a zero-quanta PFC frame).
func (e *Egress) Resume(class uint8) { e.setPause(class, e.net.Eng.Now()) }

func (e *Egress) setPause(class uint8, until sim.Time) {
	e.pausedUntil[class] = until
	e.resumeKick[class].Cancel()
	now := e.net.Eng.Now()
	if until > now {
		// Wake the scheduler when the pause lapses on its own.
		e.resumeKick[class] = e.net.Eng.At(until, e.kick)
	} else {
		e.kick()
	}
}

// Enqueue appends the packet to its class queue and starts transmission
// if the port is idle. It returns the class backlog in bytes after the
// packet was added (the "queue depth seen by the packet", which telemetry
// records).
func (e *Egress) Enqueue(q Queued) int {
	class := q.Pkt.Class
	q.EnqueuedAt = e.net.Eng.Now()
	e.queues[class] = append(e.queues[class], q)
	e.bytes[class] += q.Pkt.Size
	e.pktCount[class]++
	e.kick()
	return e.bytes[class]
}

// DropClass removes every queued packet of class without transmitting
// them, returning the removed entries so the owner can release buffer and
// PFC ingress accounting. PFC watchdogs use this to break pause storms.
func (e *Egress) DropClass(class uint8) []Queued {
	dropped := e.queues[class]
	e.queues[class] = nil
	e.bytes[class] = 0
	e.pktCount[class] = 0
	return dropped
}

// kick starts transmitting the next eligible packet if the port is idle.
// Strict priority: the highest class with backlog and no active pause
// wins; a paused class never blocks other classes (that is precisely how
// PFC isolates priorities).
func (e *Egress) kick() {
	if e.busy {
		return
	}
	now := e.net.Eng.Now()
	for class := packet.NumClasses - 1; class >= 0; class-- {
		c := uint8(class)
		if len(e.queues[class]) == 0 || e.pausedUntil[c] > now {
			continue
		}
		q := e.queues[class][0]
		e.queues[class] = e.queues[class][1:]
		e.bytes[class] -= q.Pkt.Size
		e.pktCount[class]--
		e.busy = true
		e.TxPackets++
		e.TxBytes += uint64(q.Pkt.Size)
		if e.OnDequeue != nil {
			e.OnDequeue(q)
		}
		tx := e.net.TransmitTimeOn(e.node, e.port, q.Pkt.Size)
		e.net.Deliver(e.node, e.port, q.Pkt)
		e.net.Eng.After(tx, func() {
			e.busy = false
			if e.OnDrain != nil {
				e.OnDrain()
			}
			e.kick()
		})
		return
	}
}

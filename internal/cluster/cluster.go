// Package cluster assembles a runnable RDMA network: it instantiates
// switch and host models over a topology, wires them to one event engine,
// and offers flow-level helpers. Hawkeye itself (internal/core) and every
// baseline install their instrumentation on top of a Cluster.
package cluster

import (
	"hawkeye/internal/device"
	"hawkeye/internal/fabric"
	"hawkeye/internal/host"
	"hawkeye/internal/sim"
	"hawkeye/internal/topo"
)

// Config bundles the per-device configurations.
type Config struct {
	Switch device.Config
	Host   host.Config
	Seed   uint64
}

// DefaultConfig returns the evaluation defaults for the topology's line
// rate.
func DefaultConfig(t *topo.Topology) Config {
	return Config{
		Switch: device.DefaultConfig(),
		Host:   host.DefaultConfig(t.LinkBandwidth),
		Seed:   1,
	}
}

// Cluster is a fully wired simulated network.
type Cluster struct {
	Eng      *sim.Engine
	Topo     *topo.Topology
	Routing  *topo.Routing
	Net      *fabric.Network
	Switches map[topo.NodeID]*device.Switch
	Hosts    map[topo.NodeID]*host.Host
	Cfg      Config

	rng        *sim.Rand
	nextFlowID uint64
}

// New builds all device models over the topology.
func New(t *topo.Topology, r *topo.Routing, cfg Config) *Cluster {
	eng := sim.NewEngine()
	net := fabric.NewNetwork(eng, t)
	c := &Cluster{
		Eng:      eng,
		Topo:     t,
		Routing:  r,
		Net:      net,
		Switches: make(map[topo.NodeID]*device.Switch),
		Hosts:    make(map[topo.NodeID]*host.Host),
		Cfg:      cfg,
		rng:      sim.NewRand(cfg.Seed),
	}
	for _, id := range t.Switches() {
		c.Switches[id] = device.NewSwitch(net, r, id, cfg.Switch, c.rng.Fork())
	}
	for _, id := range t.Hosts() {
		c.Hosts[id] = host.NewHost(net, id, cfg.Host)
	}
	return c
}

// Rand returns a derived generator for scenario randomness.
func (c *Cluster) Rand() *sim.Rand { return c.rng.Fork() }

// StartFlow starts a flow of totalBytes from src to dst at the given
// time and returns it.
func (c *Cluster) StartFlow(src, dst topo.NodeID, totalBytes int64, at sim.Time) *host.Flow {
	c.nextFlowID++
	return c.Hosts[src].StartFlow(c.nextFlowID, c.Topo.Node(dst).IP, totalBytes, at)
}

// Run executes the simulation until the horizon.
func (c *Cluster) Run(horizon sim.Time) { c.Eng.Run(horizon) }

// BaseRTT estimates the unloaded RTT between two hosts: per-hop
// serialization of an MTU packet plus propagation, both ways (the ACK is
// small but shares the propagation cost).
func (c *Cluster) BaseRTT(src, dst topo.NodeID) sim.Time {
	path, err := c.Routing.Path(src, dst, 0)
	if err != nil {
		return 0
	}
	hops := sim.Time(len(path) - 1)
	mtuTx := c.Topo.TransmitTime(c.Cfg.Host.MTU + 78)
	ackTx := c.Topo.TransmitTime(84)
	return hops * (2*c.Topo.LinkDelay + mtuTx + ackTx)
}

// TotalDrops sums packet drops across all switches (a lossless fabric
// should report zero).
func (c *Cluster) TotalDrops() uint64 {
	var total uint64
	for _, sw := range c.Switches {
		total += sw.Drops
	}
	return total
}

// TotalPFCFrames sums PFC frames sent by all switches.
func (c *Cluster) TotalPFCFrames() uint64 {
	var total uint64
	for _, sw := range c.Switches {
		total += sw.TxPFCFrames
	}
	return total
}

// StartFlowRate starts a flow with a per-flow rate cap in bps (0 = line
// rate).
func (c *Cluster) StartFlowRate(src, dst topo.NodeID, totalBytes int64, at sim.Time, maxRate float64) *host.Flow {
	c.nextFlowID++
	return c.Hosts[src].StartFlowRate(c.nextFlowID, c.Topo.Node(dst).IP, totalBytes, at, maxRate)
}

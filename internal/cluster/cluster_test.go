package cluster

import (
	"testing"
	"testing/quick"

	"hawkeye/internal/host"
	"hawkeye/internal/packet"
	"hawkeye/internal/sim"
	"hawkeye/internal/topo"
)

// chainCluster builds N switches in a line with hostsPer hosts each.
func chainCluster(t *testing.T, n, hostsPer int) (*Cluster, *topo.Dumbbell) {
	t.Helper()
	d, err := topo.NewChain(n, hostsPer, topo.DefaultBandwidth, topo.DefaultDelay)
	if err != nil {
		t.Fatal(err)
	}
	r := topo.ComputeRouting(d.Topology)
	return New(d.Topology, r, DefaultConfig(d.Topology)), d
}

func TestSingleFlowCompletes(t *testing.T) {
	c, d := chainCluster(t, 2, 1)
	src, dst := d.HostsAt[0][0], d.HostsAt[1][0]
	f := c.StartFlow(src, dst, 100_000, 0)
	c.Run(10 * sim.Millisecond)
	if !f.Completed() {
		t.Fatalf("flow did not complete; remaining=%d acked=%d", f.TotalBytes(), f.MinRTT())
	}
	// 100 KB at 100 Gbps is ~8.6 µs of serialization (incl. headers);
	// with 3 links of 2 µs propagation the FCT must be well under 100 µs.
	if f.FCT() > 100*sim.Microsecond {
		t.Fatalf("FCT %v unreasonably slow for uncongested path", f.FCT())
	}
	if c.TotalDrops() != 0 {
		t.Fatalf("%d drops on an idle fabric", c.TotalDrops())
	}
}

func TestRTTNearBaseline(t *testing.T) {
	c, d := chainCluster(t, 2, 1)
	src, dst := d.HostsAt[0][0], d.HostsAt[1][0]
	f := c.StartFlow(src, dst, 50_000, 0)
	c.Run(5 * sim.Millisecond)
	base := c.BaseRTT(src, dst)
	if f.MinRTT() == 0 {
		t.Fatal("no RTT samples")
	}
	if f.MinRTT() > 3*base {
		t.Fatalf("min RTT %v far above baseline estimate %v", f.MinRTT(), base)
	}
}

func TestIncastTriggersPFCWithoutLoss(t *testing.T) {
	// 4 senders on sw0 blast one receiver on sw1: the shared egress
	// congests, ingress accounting crosses Xoff, and PAUSE frames flow.
	c, d := chainCluster(t, 2, 5)
	dst := d.HostsAt[1][0]
	for i := 0; i < 4; i++ {
		c.StartFlow(d.HostsAt[0][i], dst, 400_000, 0)
	}
	c.Run(10 * sim.Millisecond)
	if c.TotalPFCFrames() == 0 {
		t.Fatal("incast produced no PFC frames")
	}
	if c.TotalDrops() != 0 {
		t.Fatalf("lossless fabric dropped %d packets", c.TotalDrops())
	}
	for _, h := range []topo.NodeID{d.HostsAt[0][0], d.HostsAt[0][1]} {
		for _, f := range c.Hosts[h].Flows() {
			if !f.Completed() {
				t.Fatalf("incast flow from %v never completed", h)
			}
		}
	}
}

func TestPFCBackpressureSpreadsUpstream(t *testing.T) {
	// Chain of 3 switches. Receiver-side congestion at sw2's host port
	// must propagate pause frames back to sw1 and eventually sw0
	// (cascading backpressure, paper §2).
	c, d := chainCluster(t, 3, 4)
	dst := d.HostsAt[2][0]
	// Overload the 100G host link with 6 senders spread over sw0/sw1.
	for i := 0; i < 3; i++ {
		c.StartFlow(d.HostsAt[0][i], dst, 600_000, 0)
		c.StartFlow(d.HostsAt[1][i+1], dst, 600_000, 0)
	}
	c.Run(4 * sim.Millisecond)
	// The bottleneck is sw1's egress toward sw2 (up to 4 sources compete
	// for one 100G link): sw1 must pause its ingresses, and the paused
	// sw0->sw1 link must in turn make sw0 pause its own hosts.
	sw1 := c.Switches[d.Switches[1]]
	sw0 := c.Switches[d.Switches[0]]
	if sw1.TxPFCFrames == 0 {
		t.Fatal("congested switch sent no PFC")
	}
	if sw0.TxPFCFrames == 0 {
		t.Fatal("backpressure did not spread one hop upstream")
	}
	if c.TotalDrops() != 0 {
		t.Fatalf("drops in lossless fabric: %d", c.TotalDrops())
	}
}

func TestHostRespectsPause(t *testing.T) {
	c, d := chainCluster(t, 2, 2)
	src := d.HostsAt[0][0]
	dst := d.HostsAt[1][0]
	f := c.StartFlow(src, dst, 1_000_000, 0)
	// Pause the host NIC directly partway through.
	h := c.Hosts[src]
	c.Eng.At(20*sim.Microsecond, func() {
		h.Egress().Pause(packet.ClassLossless, packet.MaxPauseQuanta)
	})
	c.Run(200 * sim.Microsecond)
	// ~335 µs max pause at 100G: flow must still be unfinished at 200 µs,
	// far past its ~90 µs uncongested FCT.
	if f.Completed() {
		t.Fatal("flow completed although its NIC was paused")
	}
	c.Run(2 * sim.Millisecond)
	if !f.Completed() {
		t.Fatal("flow never resumed after pause lapsed")
	}
}

func TestHostPFCInjectionBlocksDownlink(t *testing.T) {
	// Fig 1(b): a host injecting PFC pauses its ToR downlink; traffic to
	// that host stalls even with zero contention.
	c, d := chainCluster(t, 2, 2)
	rogue := d.HostsAt[1][0]
	src := d.HostsAt[0][0]
	c.Hosts[rogue].InjectPFC(0, 3*sim.Millisecond, packet.MaxPauseQuanta)
	f := c.StartFlow(src, rogue, 200_000, 10*sim.Microsecond)
	c.Run(2 * sim.Millisecond)
	if f.Completed() {
		t.Fatal("flow completed despite receiver PFC injection")
	}
	sw1 := c.Switches[d.Switches[1]]
	if sw1.RxPFCFrames == 0 {
		t.Fatal("ToR saw no injected PFC frames")
	}
	// The stall must also have spread upstream: sw1 pauses sw0.
	if sw1.TxPFCFrames == 0 {
		t.Fatal("injected PFC did not cascade upstream")
	}
	c.Run(6 * sim.Millisecond)
	if !f.Completed() {
		t.Fatal("flow never completed after the storm ended")
	}
}

func TestRingDeadlockForms(t *testing.T) {
	// Forced clockwise routing on a 4-ring plus cross traffic creates a
	// cyclic buffer dependency; saturating it deadlocks the loop:
	// pause assertions on every ring link that never clear.
	ring, err := topo.NewRing(4, 2, topo.DefaultBandwidth, topo.DefaultDelay)
	if err != nil {
		t.Fatal(err)
	}
	r := topo.ComputeRouting(ring.Topology)
	ring.ForceClockwise(r, nil)
	cfg := DefaultConfig(ring.Topology)
	c := New(ring.Topology, r, cfg)
	// Each switch's hosts send two hops clockwise; every ring link is a
	// transit link for two source switches, so queues build everywhere.
	for i := 0; i < 4; i++ {
		for h := 0; h < 2; h++ {
			dst := ring.HostsAt[(i+2)%4][h]
			c.StartFlow(ring.HostsAt[i][h], dst, 2_000_000, 0)
		}
	}
	c.Run(20 * sim.Millisecond)
	// Count ring links whose downstream switch is still asserting pause
	// against ring ingress at the horizon.
	stuck := 0
	for i := 0; i < 4; i++ {
		sw := c.Switches[ring.Switches[i]]
		for p := 0; p < sw.NumPorts(); p++ {
			if !ring.Topology.IsHostFacing(sw.ID, p) && sw.PauseAsserted(p, packet.ClassLossless) {
				stuck++
			}
		}
	}
	if stuck < 4 {
		t.Fatalf("expected a full deadlock cycle, found %d paused ring ingresses", stuck)
	}
	// And flows through the loop must be stalled.
	done := 0
	for _, hs := range ring.HostsAt {
		for _, h := range hs {
			for _, f := range c.Hosts[h].Flows() {
				if f.Completed() {
					done++
				}
			}
		}
	}
	if done != 0 {
		t.Fatalf("%d flows completed through a deadlocked loop", done)
	}
}

func TestECNKeepsQueuesBounded(t *testing.T) {
	// Two long flows into one receiver: DCQCN should keep steady-state
	// queues near the ECN ramp rather than slamming into Xoff forever.
	c, d := chainCluster(t, 2, 3)
	dst := d.HostsAt[1][0]
	c.StartFlow(d.HostsAt[0][0], dst, 3_000_000, 0)
	c.StartFlow(d.HostsAt[0][1], dst, 3_000_000, 0)
	c.Run(10 * sim.Millisecond)
	// After warm-up, PFC may fire during the initial line-rate burst but
	// must stop once DCQCN settles; compare early vs late frame counts.
	early := c.TotalPFCFrames()
	c.Run(30 * sim.Millisecond)
	late := c.TotalPFCFrames() - early
	if late > early {
		t.Fatalf("PFC still accelerating after DCQCN settled: early=%d late=%d", early, late)
	}
	if c.TotalDrops() != 0 {
		t.Fatalf("drops: %d", c.TotalDrops())
	}
}

func TestDetectionAgentFiresOnCongestion(t *testing.T) {
	c, d := chainCluster(t, 2, 5)
	dst := d.HostsAt[1][0]
	victimSrc := d.HostsAt[0][0]
	var triggers []host.Trigger
	c.Hosts[victimSrc].Agent().OnTrigger = func(tr host.Trigger) { triggers = append(triggers, tr) }
	// Victim starts alone, then an incast slams the shared egress.
	vf := c.StartFlow(victimSrc, dst, 1_500_000, 0)
	for i := 1; i < 5; i++ {
		c.StartFlow(d.HostsAt[0][i], dst, 400_000, 100*sim.Microsecond)
	}
	c.Run(10 * sim.Millisecond)
	if len(triggers) == 0 {
		t.Fatal("agent never triggered under heavy congestion")
	}
	if triggers[0].Victim != vf.Tuple {
		t.Fatalf("trigger victim %v, want %v", triggers[0].Victim, vf.Tuple)
	}
	// Dedup: triggers for one flow must be spaced by at least the dedup
	// interval.
	dedup := c.Cfg.Host.Agent.Dedup
	for i := 1; i < len(triggers); i++ {
		if triggers[i].Victim == triggers[0].Victim && triggers[i].At-triggers[i-1].At < dedup {
			t.Fatalf("dedup violated: triggers %v and %v", triggers[i-1].At, triggers[i].At)
		}
	}
}

func TestAgentTimeoutDetectsFullStall(t *testing.T) {
	// Receiver injects PFC forever: the victim gets no ACKs at all, so
	// only the timeout path can detect it (the deadlock-relevant case).
	c, d := chainCluster(t, 2, 2)
	rogue := d.HostsAt[1][0]
	src := d.HostsAt[0][0]
	c.Hosts[rogue].InjectPFC(0, 50*sim.Millisecond, packet.MaxPauseQuanta)
	var reasons []string
	c.Hosts[src].Agent().OnTrigger = func(tr host.Trigger) { reasons = append(reasons, tr.Reason) }
	c.StartFlow(src, rogue, 500_000, 10*sim.Microsecond)
	c.Run(5 * sim.Millisecond)
	found := false
	for _, r := range reasons {
		if r == "timeout" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no timeout trigger for fully stalled flow; reasons=%v", reasons)
	}
}

// TestLosslessDeliveryProperty is the PFC safety property: on an
// uncapped-buffer fabric with no routing loops, every data byte handed
// to the NIC is eventually delivered and acknowledged — PFC converts
// overload into waiting, never into loss — across randomized flow
// layouts.
func TestLosslessDeliveryProperty(t *testing.T) {
	prop := func(seed uint64, n uint8, sizeSel uint16) bool {
		d, err := topo.NewChain(3, 3, topo.DefaultBandwidth, topo.DefaultDelay)
		if err != nil {
			return false
		}
		r := topo.ComputeRouting(d.Topology)
		cfg := DefaultConfig(d.Topology)
		cfg.Seed = seed | 1
		c := New(d.Topology, r, cfg)
		rng := sim.NewRand(seed | 1)
		flows := 2 + int(n%6)
		var started []*host.Flow
		hosts := d.Topology.Hosts()
		for i := 0; i < flows; i++ {
			src := hosts[rng.Uint64()%uint64(len(hosts))]
			dst := hosts[rng.Uint64()%uint64(len(hosts))]
			if src == dst {
				continue
			}
			size := int64(10_000 + int(sizeSel)%90_000)
			started = append(started, c.StartFlow(src, dst, size, sim.Time(rng.Uint64()%uint64(100*sim.Microsecond))))
		}
		c.Run(80 * sim.Millisecond)
		if c.TotalDrops() != 0 {
			return false
		}
		for _, f := range started {
			if !f.Completed() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

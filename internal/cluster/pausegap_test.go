package cluster

import (
	"testing"

	"hawkeye/internal/device"
	"hawkeye/internal/packet"
	"hawkeye/internal/sim"
)

type gapCounter struct {
	port            int
	paused, unpause int
}

func (g *gapCounter) OnEnqueue(ev device.EnqueueEvent) {
	if ev.OutPort != g.port || ev.Pkt.Type != packet.TypeData {
		return
	}
	if ev.Paused {
		g.paused++
	} else {
		g.unpause++
	}
}
func (g *gapCounter) OnDequeue(device.DequeueEvent)         {}
func (g *gapCounter) OnPFC(int, *packet.PFCFrame, sim.Time) {}

func TestPauseGapUnderInjection(t *testing.T) {
	c, d := chainCluster(t, 2, 2)
	rogue := d.HostsAt[1][0]
	src1, src2 := d.HostsAt[0][0], d.HostsAt[0][1]
	tor := c.Switches[d.Switches[1]]
	// rogue port on tor:
	roguePort := -1
	for pi := range c.Topo.Node(tor.ID).Ports {
		peer, _ := c.Topo.PeerOf(tor.ID, pi)
		if peer == rogue {
			roguePort = pi
		}
	}
	g := &gapCounter{port: roguePort}
	tor.AddInstrument(g)
	c.Hosts[rogue].InjectPFC(300*sim.Microsecond, 10*sim.Millisecond, packet.MaxPauseQuanta)
	c.StartFlowRate(src1, rogue, 40_000_000, 0, 25e9)
	c.StartFlowRate(src2, rogue, 40_000_000, 0, 25e9)
	c.Run(302 * sim.Microsecond)
	g.paused, g.unpause = 0, 0
	c.Run(2 * sim.Millisecond)
	t.Logf("after onset: paused=%d unpaused=%d; egress paused now=%v until=%v buffer=%d",
		g.paused, g.unpause, tor.EgressAt(roguePort).Paused(packet.ClassLossless),
		tor.EgressAt(roguePort).PausedUntil(packet.ClassLossless), tor.BufferUsed())
	if g.unpause > g.paused/10 {
		t.Fatalf("pause has gaps: %d unpaused vs %d paused", g.unpause, g.paused)
	}
}

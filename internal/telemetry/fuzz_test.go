package telemetry

import (
	"bytes"
	"testing"
)

// FuzzDecodeReport exercises the strict report decoder. Invariants: no
// panic, no allocation beyond what the payload paid for (enforced by
// the count-vs-length checks), any accepted report re-encodes to the
// identical bytes (the format has exactly one encoding per report), and
// sanitization never panics on anything the decoder admits.
func FuzzDecodeReport(f *testing.F) {
	good, err := sanitizeFixture().MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add(good[:len(good)/2])
	f.Add(append(append([]byte{}, good...), 0xEE)) // trailing byte

	// Header surgery: counts claiming far more records than the payload
	// carries (the allocation-bomb shape the length checks exist for).
	overMeter := append([]byte(nil), good...)
	overMeter[24], overMeter[25] = 0xFF, 0xFF
	f.Add(overMeter)
	overFlow := append([]byte(nil), good...)
	overFlow[43], overFlow[44], overFlow[45] = 0xFF, 0xFF, 0xFF
	f.Add(overFlow)
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		var r Report
		if err := r.UnmarshalBinary(data); err != nil {
			return
		}
		out, err := r.MarshalBinary()
		if err != nil {
			t.Fatalf("accepted report refused re-encoding: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("non-canonical encoding accepted: %d bytes in, %d out", len(data), len(out))
		}
		lim := LimitsFor(100e9, 131072)
		n := SanitizeReport(&r, lim)
		if SanitizeReport(&r, lim) != 0 {
			t.Fatalf("sanitize not idempotent (first pass clamped %d)", n)
		}
	})
}

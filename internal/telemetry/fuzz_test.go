package telemetry

import (
	"bytes"
	"testing"
)

// FuzzDecodeReport exercises the strict report decoder. Invariants: no
// panic, no allocation beyond what the payload paid for (enforced by
// the count-vs-length checks), any accepted report re-encodes to the
// identical bytes (the format has exactly one encoding per report), and
// sanitization never panics on anything the decoder admits.
func FuzzDecodeReport(f *testing.F) {
	good, err := sanitizeFixture().MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add(good[:len(good)/2])
	f.Add(append(append([]byte{}, good...), 0xEE)) // trailing byte

	// Header surgery: counts claiming far more records than the payload
	// carries (the allocation-bomb shape the length checks exist for).
	overMeter := append([]byte(nil), good...)
	overMeter[24], overMeter[25] = 0xFF, 0xFF
	f.Add(overMeter)
	overFlow := append([]byte(nil), good...)
	overFlow[43], overFlow[44], overFlow[45] = 0xFF, 0xFF, 0xFF
	f.Add(overFlow)
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		var r Report
		if err := r.UnmarshalBinary(data); err != nil {
			return
		}
		out, err := r.MarshalBinary()
		if err != nil {
			t.Fatalf("accepted report refused re-encoding: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("non-canonical encoding accepted: %d bytes in, %d out", len(data), len(out))
		}
		lim := LimitsFor(100e9, 131072)
		n := SanitizeReport(&r, lim)
		if SanitizeReport(&r, lim) != 0 {
			t.Fatalf("sanitize not idempotent (first pass clamped %d)", n)
		}
	})
}

// FuzzHostReport exercises the host-agent counter decoder. The frame is
// fixed-width, so the invariants are sharper than the switch report's:
// exactly HostReportWire bytes are accepted, every accepted frame
// re-encodes byte-identically, sanitization is idempotent, and a frame
// that survives sanitization then passes Validate (clamps restore
// internal consistency, they never create new contradictions).
func FuzzHostReport(f *testing.F) {
	good, err := (&HostReport{
		Host: 3, Taken: 1 << 20,
		RxBufferBytes: 200 << 10, RxBufferCap: 512 << 10,
		DrainBps: 20e9, PauseTx: 41, PauseRx: 2,
		ProcLatencyNS: 415, ActiveQPs: 3,
	}).MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add(good[:len(good)/2])                      // truncated
	f.Add(append(append([]byte{}, good...), 0xEE)) // trailing byte
	f.Add([]byte{})
	// Occupancy above capacity: decodes, but Validate must refuse it.
	inconsistent := append([]byte(nil), good...)
	inconsistent[12] = 0xFF
	f.Add(inconsistent)

	f.Fuzz(func(t *testing.T, data []byte) {
		var r HostReport
		if err := r.UnmarshalBinary(data); err != nil {
			return
		}
		if len(data) != HostReportWire {
			t.Fatalf("accepted %d bytes, want exactly %d", len(data), HostReportWire)
		}
		out, err := r.MarshalBinary()
		if err != nil {
			t.Fatalf("accepted host report refused re-encoding: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("non-canonical host encoding accepted")
		}
		lim := HostLimitsFor(100e9)
		n := SanitizeHostReport(&r, lim)
		if SanitizeHostReport(&r, lim) != 0 {
			t.Fatalf("host sanitize not idempotent (first pass clamped %d)", n)
		}
		if r.Taken >= 0 {
			if err := r.Validate(); err != nil {
				t.Fatalf("sanitized host report still inconsistent: %v", err)
			}
		}
	})
}

package telemetry

import (
	"testing"

	"hawkeye/internal/device"
	"hawkeye/internal/packet"
	"hawkeye/internal/sim"
)

// Hot-path microbenchmarks: OnEnqueue runs once per forwarded packet —
// on a P4 target it is a pipeline stage; in the simulator it must stay
// cheap enough that telemetry does not dominate the trace cost.

func benchState(b *testing.B) *State {
	b.Helper()
	var now sim.Time
	s, err := New(DefaultConfig(), 1, "sw", 8, 100e9,
		func() sim.Time { return now }, func(int) int { return 0 })
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func BenchmarkTelemetryOnEnqueue(b *testing.B) {
	s := benchState(b)
	pkt := &packet.Packet{Type: packet.TypeData, Class: packet.ClassLossless, Size: 1078,
		Flow: packet.FiveTuple{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: 17}}
	ev := device.EnqueueEvent{Pkt: pkt, InPort: 0, OutPort: 1, QueueBytes: 20000}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.Now = sim.Time(i) * 100
		ev.Pkt.Flow.SrcPort = uint16(i) // rotate slots
		s.OnEnqueue(ev)
	}
}

// BenchmarkTelemetrySnapshot measures the poller's per-sync register
// read-out on the buffer-reusing path (SnapshotInto): after the first
// sync warms the report's buffers, extraction must not allocate.
func BenchmarkTelemetrySnapshot(b *testing.B) {
	s := benchState(b)
	for i := 0; i < 512; i++ {
		s.OnEnqueue(device.EnqueueEvent{
			Pkt: &packet.Packet{Type: packet.TypeData, Class: packet.ClassLossless, Size: 1078,
				Flow: packet.FiveTuple{SrcIP: uint32(i), DstIP: 2, SrcPort: 3, DstPort: 4, Proto: 17}},
			InPort: 0, OutPort: 1, QueueBytes: 20000, Now: sim.Time(i) * 100,
		})
	}
	var rep Report
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SnapshotInto(&rep, 4)
	}
}

// BenchmarkTelemetrySnapshotFresh is the allocating variant: one new
// report per sync, the cost callers pay when the report is retained.
func BenchmarkTelemetrySnapshotFresh(b *testing.B) {
	s := benchState(b)
	for i := 0; i < 512; i++ {
		s.OnEnqueue(device.EnqueueEvent{
			Pkt: &packet.Packet{Type: packet.TypeData, Class: packet.ClassLossless, Size: 1078,
				Flow: packet.FiveTuple{SrcIP: uint32(i), DstIP: 2, SrcPort: 3, DstPort: 4, Proto: 17}},
			InPort: 0, OutPort: 1, QueueBytes: 20000, Now: sim.Time(i) * 100,
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Snapshot(4)
	}
}

func BenchmarkReportMarshal(b *testing.B) {
	s := benchState(b)
	for i := 0; i < 512; i++ {
		s.OnEnqueue(device.EnqueueEvent{
			Pkt: &packet.Packet{Type: packet.TypeData, Class: packet.ClassLossless, Size: 1078,
				Flow: packet.FiveTuple{SrcIP: uint32(i), DstIP: 2, SrcPort: 3, DstPort: 4, Proto: 17}},
			InPort: 0, OutPort: 1, QueueBytes: 20000, Now: sim.Time(i) * 100,
		})
	}
	rep := s.Snapshot(4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rep.MarshalBinary(); err != nil {
			b.Fatal(err)
		}
	}
}

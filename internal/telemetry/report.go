package telemetry

import (
	"encoding/binary"
	"errors"
	"fmt"

	"hawkeye/internal/sim"
	"hawkeye/internal/topo"
)

// MeterRecord is one non-zero cell of the PFC-causality traffic meter.
type MeterRecord struct {
	InPort  int
	OutPort int
	Bytes   uint64
}

// EpochData is the collected content of one epoch, zero-filtered.
type EpochData struct {
	Ring  int      // ring index
	ID    uint32   // epoch-ID bits
	Start sim.Time // reconstructed epoch start
	Flows []FlowRecord
	Ports []PortRecord
}

// Report is the telemetry a switch CPU ships to the analyzer for one
// diagnosis: zero-filtered epochs, the PFC causality meter, and the live
// PFC status + queue-depth registers.
type Report struct {
	Switch    topo.NodeID
	Name      string
	Taken     sim.Time
	NumPorts  int
	NumEpochs int
	FlowSlots int
	Epochs    []EpochData // newest first
	Meter     []MeterRecord
	Status    []PortStatus
}

// Snapshot extracts up to epochsWanted recent epochs, filtering zero
// slots exactly as the controller poller does (§3.4, Fig. 14). The
// returned report is freshly allocated and owned by the caller; hot
// loops that discard each report should use SnapshotInto instead.
func (s *State) Snapshot(epochsWanted int) *Report {
	r := &Report{}
	s.SnapshotInto(r, epochsWanted)
	return r
}

// SnapshotInto extracts the same report as Snapshot but reuses r's
// epoch/flow/port/meter/status buffers across calls instead of
// re-making them, so a poller draining one switch every epoch settles
// at zero allocations per sync. The caller owns r and must not retain
// views into it across calls.
func (s *State) SnapshotInto(r *Report, epochsWanted int) {
	if epochsWanted <= 0 || epochsWanted > s.Cfg.NumEpochs {
		epochsWanted = s.Cfg.NumEpochs
	}
	// Previous epoch buffers stay reachable through the capacity of
	// r.Epochs; hand their flow/port arrays to the entries of this sync.
	prev := r.Epochs[:cap(r.Epochs)]
	r.Switch = s.Switch
	r.Name = s.Name
	r.Taken = s.now()
	r.NumPorts = s.numPorts
	r.NumEpochs = s.Cfg.NumEpochs
	r.FlowSlots = s.Cfg.FlowSlots
	r.Epochs = r.Epochs[:0]
	r.Meter = r.Meter[:0]
	r.Status = r.Status[:0]
	reused := 0
	for _, ve := range s.validEpochs(epochsWanted) {
		if s.faults != nil && s.faults.DropEpoch(s.Switch, ve.idx) {
			// Epoch-ring read failure: the slot's data never reaches the
			// CPU poller. The registers themselves are untouched.
			continue
		}
		ep := &s.epochs[ve.idx]
		data := EpochData{Ring: ve.idx, ID: ep.id, Start: ve.start}
		if reused < len(prev) {
			data.Flows = prev[reused].Flows[:0]
			data.Ports = prev[reused].Ports[:0]
			reused++
		}
		for i := range ep.flows {
			if ep.flows[i].PktCount > 0 {
				data.Flows = append(data.Flows, ep.flows[i])
			}
		}
		data.Flows = append(data.Flows, ep.evicted...)
		for i := range ep.ports {
			if ep.ports[i].PktCount > 0 {
				data.Ports = append(data.Ports, ep.ports[i])
			}
		}
		r.Epochs = append(r.Epochs, data)
	}
	for in := 0; in < s.numPorts; in++ {
		for out := 0; out < s.numPorts; out++ {
			i := in*s.numPorts + out
			if b := s.meterCur[i] + s.meterPrev[i]; b > 0 {
				rec := MeterRecord{InPort: in, OutPort: out, Bytes: b}
				if s.faults != nil {
					// Out-of-line so &rec escapes only on fault-injected
					// runs; inline it and every record heap-allocates.
					rec = s.corruptMeter(rec)
				}
				if rec.Bytes > 0 {
					r.Meter = append(r.Meter, rec)
				}
			}
		}
	}
	r.Status = append(r.Status, s.status...)
	if s.queueOf != nil {
		for i := range r.Status {
			r.Status[i].QdepthBytes = s.queueOf(r.Status[i].Port)
		}
	}
	if s.faults != nil {
		for i := range r.Status {
			s.faults.CorruptStatus(s.Switch, &r.Status[i])
		}
	}
}

//go:noinline
func (s *State) corruptMeter(rec MeterRecord) MeterRecord {
	s.faults.CorruptMeter(s.Switch, &rec)
	return rec
}

// Wire sizes of each record kind (bytes), used both by the codec and by
// the overhead accounting.
const (
	FlowRecordWire   = 13 + 2 + 4 + 4 + 4 + 8 + 8 // tuple, port, counts, qdepth, bytes
	PortRecordWire   = 2 + 4 + 4 + 8 + 8
	MeterRecordWire  = 2 + 2 + 8
	StatusRecordWire = 2 + 8 + 8 + 8 + 4
	epochHeaderWire  = 2 + 4 + 8 + 4 + 4
	reportHeaderWire = 4 + 8 + 2 + 2 + 4 + 2 + 4 + 2
)

// WireSize returns the encoded size of the report in bytes.
func (r *Report) WireSize() int {
	n := reportHeaderWire + len(r.Status)*StatusRecordWire + len(r.Meter)*MeterRecordWire
	for i := range r.Epochs {
		ep := &r.Epochs[i]
		n += epochHeaderWire + len(ep.Flows)*FlowRecordWire + len(ep.Ports)*PortRecordWire
	}
	return n
}

// FullDumpSize returns what a data-plane full dump of the same epochs
// would cost: every slot, zero or not (the Fig. 14a comparison).
func (r *Report) FullDumpSize() int {
	perEpoch := r.FlowSlots*FlowRecordWire + r.NumPorts*PortRecordWire
	return reportHeaderWire + len(r.Epochs)*(epochHeaderWire+perEpoch) +
		r.NumPorts*r.NumPorts*MeterRecordWire +
		len(r.Status)*StatusRecordWire
}

// FlowCount returns the total collected flow records across epochs.
func (r *Report) FlowCount() int {
	n := 0
	for i := range r.Epochs {
		n += len(r.Epochs[i].Flows)
	}
	return n
}

// ErrBadReport reports a malformed encoded report.
var ErrBadReport = errors.New("telemetry: malformed report")

// MarshalBinary encodes the report (fixed-width big-endian records).
// The name is carried out-of-band: switch IDs resolve names topology-side.
func (r *Report) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 0, r.WireSize())
	var scratch [8]byte
	putU := func(v uint64, n int) {
		binary.BigEndian.PutUint64(scratch[:], v)
		buf = append(buf, scratch[8-n:]...)
	}
	putU(uint64(uint32(r.Switch)), 4)
	putU(uint64(r.Taken), 8)
	putU(uint64(r.NumPorts), 2)
	putU(uint64(r.NumEpochs), 2)
	putU(uint64(r.FlowSlots), 4)
	putU(uint64(len(r.Epochs)), 2)
	putU(uint64(len(r.Meter)), 4)
	putU(uint64(len(r.Status)), 2)
	for i := range r.Epochs {
		ep := &r.Epochs[i]
		putU(uint64(ep.Ring), 2)
		putU(uint64(ep.ID), 4)
		putU(uint64(ep.Start), 8)
		putU(uint64(len(ep.Flows)), 4)
		putU(uint64(len(ep.Ports)), 4)
		for _, f := range ep.Flows {
			putU(uint64(f.Tuple.SrcIP), 4)
			putU(uint64(f.Tuple.DstIP), 4)
			putU(uint64(f.Tuple.SrcPort), 2)
			putU(uint64(f.Tuple.DstPort), 2)
			putU(uint64(f.Tuple.Proto), 1)
			putU(uint64(f.OutPort), 2)
			putU(uint64(f.PktCount), 4)
			putU(uint64(f.PausedCount), 4)
			putU(uint64(f.DeepCount), 4)
			putU(f.QdepthSum, 8)
			putU(f.Bytes, 8)
		}
		for _, p := range ep.Ports {
			putU(uint64(p.Port), 2)
			putU(uint64(p.PktCount), 4)
			putU(uint64(p.PausedCount), 4)
			putU(p.QdepthSum, 8)
			putU(p.Bytes, 8)
		}
	}
	for _, m := range r.Meter {
		putU(uint64(m.InPort), 2)
		putU(uint64(m.OutPort), 2)
		putU(m.Bytes, 8)
	}
	for _, st := range r.Status {
		putU(uint64(st.Port), 2)
		putU(uint64(st.PausedUntil), 8)
		putU(st.RxPause, 8)
		putU(st.RxResume, 8)
		putU(uint64(uint32(st.QdepthBytes)), 4)
	}
	return buf, nil
}

// UnmarshalBinary decodes a report produced by MarshalBinary.
func (r *Report) UnmarshalBinary(b []byte) error {
	off := 0
	getU := func(n int) (uint64, error) {
		if off+n > len(b) {
			return 0, fmt.Errorf("%w: truncated at offset %d", ErrBadReport, off)
		}
		var v uint64
		for i := 0; i < n; i++ {
			v = v<<8 | uint64(b[off+i])
		}
		off += n
		return v, nil
	}
	var err error
	read := func(n int) uint64 {
		if err != nil {
			return 0
		}
		var v uint64
		v, err = getU(n)
		return v
	}
	r.Switch = topo.NodeID(int32(read(4)))
	r.Taken = sim.Time(read(8))
	r.NumPorts = int(read(2))
	r.NumEpochs = int(read(2))
	r.FlowSlots = int(read(4))
	numEpochs := int(read(2))
	numMeter := int(read(4))
	numStatus := int(read(2))
	if err != nil {
		return err
	}
	const maxRecords = 1 << 24
	if numEpochs > 1024 || numStatus > 65535 || numMeter > maxRecords {
		return fmt.Errorf("%w: implausible counts", ErrBadReport)
	}
	// Claimed counts must fit the bytes actually present, so a hostile
	// header cannot make the decoder allocate far beyond the payload it
	// paid to send.
	if numMeter*MeterRecordWire+numStatus*StatusRecordWire > len(b) {
		return fmt.Errorf("%w: record counts exceed payload", ErrBadReport)
	}
	r.Epochs = make([]EpochData, 0, numEpochs)
	r.Meter = r.Meter[:0]
	r.Status = r.Status[:0]
	for e := 0; e < numEpochs; e++ {
		var ep EpochData
		ep.Ring = int(read(2))
		ep.ID = uint32(read(4))
		ep.Start = sim.Time(read(8))
		nf := int(read(4))
		np := int(read(4))
		if err != nil {
			return err
		}
		if nf > maxRecords || np > maxRecords {
			return fmt.Errorf("%w: implausible record counts", ErrBadReport)
		}
		if nf*FlowRecordWire+np*PortRecordWire > len(b)-off {
			return fmt.Errorf("%w: epoch record counts exceed payload", ErrBadReport)
		}
		for i := 0; i < nf; i++ {
			var f FlowRecord
			f.Tuple.SrcIP = uint32(read(4))
			f.Tuple.DstIP = uint32(read(4))
			f.Tuple.SrcPort = uint16(read(2))
			f.Tuple.DstPort = uint16(read(2))
			f.Tuple.Proto = uint8(read(1))
			f.OutPort = int(read(2))
			f.PktCount = uint32(read(4))
			f.PausedCount = uint32(read(4))
			f.DeepCount = uint32(read(4))
			f.QdepthSum = read(8)
			f.Bytes = read(8)
			ep.Flows = append(ep.Flows, f)
		}
		for i := 0; i < np; i++ {
			var p PortRecord
			p.Port = int(read(2))
			p.PktCount = uint32(read(4))
			p.PausedCount = uint32(read(4))
			p.QdepthSum = read(8)
			p.Bytes = read(8)
			ep.Ports = append(ep.Ports, p)
		}
		if err != nil {
			return err
		}
		r.Epochs = append(r.Epochs, ep)
	}
	for i := 0; i < numMeter; i++ {
		var m MeterRecord
		m.InPort = int(read(2))
		m.OutPort = int(read(2))
		m.Bytes = read(8)
		r.Meter = append(r.Meter, m)
	}
	for i := 0; i < numStatus; i++ {
		var st PortStatus
		st.Port = int(read(2))
		st.PausedUntil = sim.Time(read(8))
		st.RxPause = read(8)
		st.RxResume = read(8)
		st.QdepthBytes = int(int32(read(4)))
		r.Status = append(r.Status, st)
	}
	if err != nil {
		return err
	}
	// A well-formed encoding is consumed exactly; trailing bytes mean the
	// sender and receiver disagree about the format, and silently ignoring
	// them would let smuggled data ride along inside accepted frames.
	if off != len(b) {
		return fmt.Errorf("%w: %d trailing bytes", ErrBadReport, len(b)-off)
	}
	return nil
}

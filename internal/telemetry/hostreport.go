package telemetry

import (
	"fmt"

	"hawkeye/internal/sim"
	"hawkeye/internal/topo"
)

// HostReport is the host-agent counter channel: the NIC-local registers a
// host agent ships to the analyzer alongside the switch reports. Where a
// switch report carries queue provenance, this carries the *endpoint*
// evidence Hawkeye's Table 2 cannot see — whether pause frames leaving a
// host were forced by a full RX buffer (slow receiver, processing-bound
// NIC) or fabricated with the buffer empty (pause storm). The record is
// deliberately flat and fixed-width: host NICs expose these as plain
// registers, and a fixed frame keeps the strict decoder trivial.
type HostReport struct {
	Host  topo.NodeID
	Taken sim.Time
	// RxBufferBytes is the RX-buffer occupancy at snapshot time and
	// RxBufferCap its capacity. Cap zero means the NIC ran no bounded
	// RX-buffer model (drain keeps up at line rate) — occupancy must be
	// zero with it.
	RxBufferBytes uint64
	RxBufferCap   uint64
	// DrainBps is the observed effective RX drain bandwidth while the
	// buffer was busy (0 = never measured: nothing ever queued).
	DrainBps uint64
	// PauseTx / PauseRx count PFC frames the NIC emitted / received.
	PauseTx uint64
	PauseRx uint64
	// ProcLatencyNS is the processing-latency proxy: mean per-packet RX
	// service latency in nanoseconds (queueing wait excluded, so a slow
	// drain and a slow *processor* stay distinguishable).
	ProcLatencyNS uint64
	// ActiveQPs is the inbound flow fan-in the NIC has served — the load
	// axis cache-thrash degradation correlates with.
	ActiveQPs uint32
}

// HostReportWire is the exact encoded size of a host report.
const HostReportWire = 4 + 8 + 8 + 8 + 8 + 8 + 8 + 8 + 4

// WireSize returns the encoded size in bytes (fixed for this record).
func (r *HostReport) WireSize() int { return HostReportWire }

// MarshalBinary encodes the report (fixed-width big-endian fields).
func (r *HostReport) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 0, HostReportWire)
	put := func(v uint64, n int) {
		for i := n - 1; i >= 0; i-- {
			buf = append(buf, byte(v>>(8*i)))
		}
	}
	put(uint64(uint32(r.Host)), 4)
	put(uint64(r.Taken), 8)
	put(r.RxBufferBytes, 8)
	put(r.RxBufferCap, 8)
	put(r.DrainBps, 8)
	put(r.PauseTx, 8)
	put(r.PauseRx, 8)
	put(r.ProcLatencyNS, 8)
	put(uint64(r.ActiveQPs), 4)
	return buf, nil
}

// UnmarshalBinary decodes a report produced by MarshalBinary. The frame
// is fixed-width, so the strict-decode contract collapses to an exact
// length check: anything shorter is truncated, anything longer is
// smuggling trailing bytes.
func (r *HostReport) UnmarshalBinary(b []byte) error {
	if len(b) != HostReportWire {
		return fmt.Errorf("%w: host report is %d bytes, want %d", ErrBadReport, len(b), HostReportWire)
	}
	off := 0
	get := func(n int) uint64 {
		var v uint64
		for i := 0; i < n; i++ {
			v = v<<8 | uint64(b[off+i])
		}
		off += n
		return v
	}
	r.Host = topo.NodeID(int32(get(4)))
	r.Taken = sim.Time(get(8))
	r.RxBufferBytes = get(8)
	r.RxBufferCap = get(8)
	r.DrainBps = get(8)
	r.PauseTx = get(8)
	r.PauseRx = get(8)
	r.ProcLatencyNS = get(8)
	r.ActiveQPs = uint32(get(4))
	return nil
}

// Validate checks the internal consistency a NIC cannot physically
// violate. Reports failing it are rejected outright (they contradict
// themselves); magnitude excesses are left to SanitizeHostReport, which
// clamps instead.
func (r *HostReport) Validate() error {
	if r.Taken < 0 {
		return fmt.Errorf("%w: negative snapshot time %d", ErrBadReport, r.Taken)
	}
	if r.RxBufferCap > 0 && r.RxBufferBytes > r.RxBufferCap {
		return fmt.Errorf("%w: RX occupancy %d exceeds capacity %d", ErrBadReport, r.RxBufferBytes, r.RxBufferCap)
	}
	if r.RxBufferCap == 0 && r.RxBufferBytes > 0 {
		return fmt.Errorf("%w: RX occupancy %d with no buffer", ErrBadReport, r.RxBufferBytes)
	}
	return nil
}

// HostLimits bounds physically plausible magnitudes for one host report.
type HostLimits struct {
	// MaxBufferBytes caps RX-buffer capacity and occupancy: no host NIC
	// stages more than this.
	MaxBufferBytes uint64
	// MaxDrainBps caps the observed drain rate (with the same 4x
	// epoch-smear slack the switch limits use).
	MaxDrainBps uint64
	// MaxProcNS caps the per-packet processing-latency proxy.
	MaxProcNS uint64
	// MaxQPs caps the reported fan-in.
	MaxQPs uint32
}

// HostLimitsFor derives host limits from the fabric's link speed.
func HostLimitsFor(linkBps float64) HostLimits {
	drain := uint64(4 * linkBps)
	if drain == 0 {
		drain = 1
	}
	return HostLimits{
		MaxBufferBytes: 64 << 20, // deepest plausible host RX staging buffer
		MaxDrainBps:    drain,
		MaxProcNS:      1e9, // a NIC "processing" one packet for >1s is corruption
		MaxQPs:         1 << 20,
	}
}

// SanitizeHostReport clamps implausible magnitudes in place and returns
// how many fields were touched. Mirrors SanitizeReport: one flipped bit
// degrades the report instead of discarding its evidence, and the clamp
// count flows into provenance Coverage.
func SanitizeHostReport(r *HostReport, lim HostLimits) int {
	clamped := 0
	clampU := func(v *uint64, max uint64) {
		if *v > max {
			*v = max
			clamped++
		}
	}
	clampU(&r.RxBufferCap, lim.MaxBufferBytes)
	// Occupancy clamps to capacity (zero capacity means no buffer, so
	// nothing can occupy it) — after sanitization the report is always
	// internally consistent again.
	clampU(&r.RxBufferBytes, r.RxBufferCap)
	clampU(&r.DrainBps, lim.MaxDrainBps)
	clampU(&r.ProcLatencyNS, lim.MaxProcNS)
	if r.ActiveQPs > lim.MaxQPs {
		r.ActiveQPs = lim.MaxQPs
		clamped++
	}
	return clamped
}

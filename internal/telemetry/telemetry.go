// Package telemetry implements Hawkeye's switch-side state (§3.3):
//
//   - per-egress-port PFC status registers updated by PAUSE frames
//     (pause deadline and frame counts),
//   - an epoch ring buffer indexed by timestamp bits, holding per-epoch
//     flow tables (hash-indexed, XOR-matched, evict-on-collision),
//     per-egress-port counters, and the port-pair PFC-causality meter
//     (paper Fig. 3),
//   - snapshot extraction for the controller poller.
//
// The structures deliberately mirror Tofino register semantics: fixed
// slot counts, lazy reset on epoch-ID wraparound, one-touch updates per
// packet.
package telemetry

import (
	"fmt"
	"math/bits"

	"hawkeye/internal/device"
	"hawkeye/internal/packet"
	"hawkeye/internal/sim"
	"hawkeye/internal/topo"
)

// Config sizes the telemetry state.
type Config struct {
	// EpochBits is log2 of the epoch length in nanoseconds: epochs are
	// demarcated by timestamp[EpochBits .. EpochBits+log2(NumEpochs)-1]
	// exactly as §3.3 describes (e.g. 20 -> ~1.05 ms epochs).
	EpochBits uint
	// NumEpochs is the ring size; must be a power of two (2 or 4 in the
	// paper's testbed runs).
	NumEpochs int
	// FlowSlots is the per-epoch flow table size (4096 on the testbed).
	FlowSlots int
	// Lookback is how many recent epochs causality checks consult.
	Lookback int
	// FlowTelemetry enables the per-epoch flow tables. §5's partial
	// deployment keeps PFC causality analysis (port tables, meter,
	// status) on every switch but provisions the flow tables only on
	// hot-spot switches such as ToRs.
	FlowTelemetry bool
	// DeepQdepthBytes: a (unpaused) enqueue only counts as contention
	// evidence when the backlog it sees reaches this bound. One extra
	// comparator in the pipeline; it keeps idle-era traffic from diluting
	// the contention statistics of the epoch the anomaly starts in.
	DeepQdepthBytes int
	// MeterWindow is the rotation period of the PFC-causality traffic
	// meter (Fig. 3). The meter lives outside the epoch ring — unlike
	// flow telemetry it must survive a full traffic freeze (deadlock) —
	// and keeps two buckets, so reads cover 1-2 windows of history.
	// Zero means NumEpochs * EpochSize.
	MeterWindow sim.Time
}

// DefaultConfig matches the paper's testbed defaults scaled to the
// simulation: ~105 µs epochs, 4-epoch ring, 4096 flow slots.
func DefaultConfig() Config {
	return Config{EpochBits: 17, NumEpochs: 4, FlowSlots: 4096, Lookback: 2,
		FlowTelemetry: true, DeepQdepthBytes: 8192}
}

// EpochSize returns the epoch duration.
func (c Config) EpochSize() sim.Time { return sim.Time(1) << c.EpochBits }

// Validate checks structural requirements.
func (c Config) Validate() error {
	if c.NumEpochs <= 0 || c.NumEpochs&(c.NumEpochs-1) != 0 {
		return fmt.Errorf("telemetry: NumEpochs %d not a power of two", c.NumEpochs)
	}
	if c.EpochBits < 10 || c.EpochBits > 30 {
		return fmt.Errorf("telemetry: EpochBits %d out of range [10,30]", c.EpochBits)
	}
	if c.FlowSlots <= 0 {
		return fmt.Errorf("telemetry: FlowSlots %d", c.FlowSlots)
	}
	if c.Lookback <= 0 || c.Lookback > c.NumEpochs {
		return fmt.Errorf("telemetry: Lookback %d vs NumEpochs %d", c.Lookback, c.NumEpochs)
	}
	return nil
}

// FlowRecord is one flow-table slot: 5-tuple identity plus the PFC-aware
// counters Hawkeye adds over conventional flow telemetry.
//
// DeepCount/QdepthSum accumulate only over *contention* enqueues: packets
// that entered while the egress was NOT paused (a backlog seen during a
// pause is PFC-built, not contention-built — §3.5.1 "excludes the paused
// packets") and that found a substantial backlog (shallow enqueues carry
// no contention information and would otherwise dilute the statistics of
// the epoch an anomaly starts in).
type FlowRecord struct {
	Tuple       packet.FiveTuple
	OutPort     int
	PktCount    uint32
	PausedCount uint32 // packets that enqueued while the egress was paused
	DeepCount   uint32 // unpaused enqueues that saw a deep backlog
	QdepthSum   uint64 // bytes; backlog seen, summed over DeepCount enqueues
	Bytes       uint64
}

// ContentionPkts returns the packets carrying contention evidence.
func (f *FlowRecord) ContentionPkts() uint32 { return f.DeepCount }

// AvgQdepth returns the mean queue depth (bytes) the flow's contention
// packets saw.
func (f *FlowRecord) AvgQdepth() float64 {
	if f.DeepCount == 0 {
		return 0
	}
	return float64(f.QdepthSum) / float64(f.DeepCount)
}

// PortRecord aggregates the same counters per egress port, maintained in
// the data plane so diagnosis does not have to fold thousands of flow
// records hop-by-hop (§3.3).
type PortRecord struct {
	Port        int
	PktCount    uint32
	PausedCount uint32
	QdepthSum   uint64
	Bytes       uint64
}

// AvgQdepth returns the mean queue depth (bytes) seen at this port.
func (p *PortRecord) AvgQdepth() float64 {
	if p.PktCount == 0 {
		return 0
	}
	return float64(p.QdepthSum) / float64(p.PktCount)
}

// epoch is one ring entry.
type epoch struct {
	id    uint32 // epoch-ID bits; epochIDInvalid when never written
	flows []FlowRecord
	// evicted collects slots displaced by hash collisions; the paper
	// stores these at the controller.
	evicted []FlowRecord
	ports   []PortRecord
}

const epochIDInvalid = ^uint32(0)

// PortStatus is the PFC status register block for one egress port, plus
// the live egress queue-depth register sampled at snapshot time. The two
// registers are what keep diagnosis possible through a deadlock, where
// per-packet telemetry freezes with the traffic.
type PortStatus struct {
	Port        int
	PausedUntil sim.Time
	RxPause     uint64 // PAUSE frames received on this port
	RxResume    uint64
	QdepthBytes int // live egress backlog at snapshot
}

// State is the full telemetry block of one switch. It implements
// device.Instrument.
type State struct {
	Cfg      Config
	Switch   topo.NodeID
	Name     string
	numPorts int

	now       func() sim.Time
	queueOf   func(port int) int // live egress backlog register
	bwBps     float64
	epochs    []epoch
	status    []PortStatus
	meterCur  []uint64 // [inPort*numPorts + outPort] bytes
	meterPrev []uint64
	meterAt   sim.Time // last rotation
	meterWin  sim.Time

	idxShift  uint
	idShift   uint
	idxMask   uint64
	Evictions uint64

	// veScratch backs validEpochs so the per-poll recency checks and
	// snapshot extraction do not allocate; the returned slices alias it
	// and are only valid until the next call.
	veScratch []validEpoch

	// faults, when set, degrades snapshot extraction (chaos engine).
	faults Faults
}

// Faults lets a fault-injection engine degrade snapshot extraction,
// modelling a lossy or corrupting register DMA sync between the data
// plane and the switch CPU. The chaos engine (internal/chaos)
// implements it; all methods must be deterministic given the engine's
// seed.
type Faults interface {
	// DropEpoch reports whether the given ring slot is lost from this
	// snapshot (epoch-ring read failure).
	DropEpoch(sw topo.NodeID, ring int) bool
	// CorruptMeter may mutate one causality-meter record in the
	// snapshot, returning true when it did (register corruption).
	CorruptMeter(sw topo.NodeID, rec *MeterRecord) bool
	// CorruptStatus may mutate one PFC status register block in the
	// snapshot, returning true when it did.
	CorruptStatus(sw topo.NodeID, st *PortStatus) bool
}

// SetFaults installs (or, with nil, removes) the snapshot fault
// injector. The live data-plane registers are never touched — only what
// the CPU poller reads out.
func (s *State) SetFaults(f Faults) { s.faults = f }

// New builds telemetry state for a switch with numPorts ports.
// now supplies the data-plane timestamp (the engine clock); queueOf reads
// the live egress backlog register of a port (may be nil in tests).
func New(cfg Config, swID topo.NodeID, name string, numPorts int, linkBps float64,
	now func() sim.Time, queueOf func(port int) int) (*State, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	win := cfg.MeterWindow
	if win == 0 {
		// The paper leaves meter aging unspecified; default to twice the
		// epoch-ring span so PFC causality outlives the flow telemetry.
		win = 2 * sim.Time(cfg.NumEpochs) * cfg.EpochSize()
	}
	s := &State{
		Cfg:       cfg,
		Switch:    swID,
		Name:      name,
		numPorts:  numPorts,
		now:       now,
		queueOf:   queueOf,
		bwBps:     linkBps,
		epochs:    make([]epoch, cfg.NumEpochs),
		status:    make([]PortStatus, numPorts),
		meterCur:  make([]uint64, numPorts*numPorts),
		meterPrev: make([]uint64, numPorts*numPorts),
		meterWin:  win,
		idxShift:  cfg.EpochBits,
		idShift:   cfg.EpochBits + uint(bits.TrailingZeros(uint(cfg.NumEpochs))),
		idxMask:   uint64(cfg.NumEpochs - 1),
	}
	for i := range s.epochs {
		s.epochs[i] = epoch{
			id:    epochIDInvalid,
			flows: make([]FlowRecord, cfg.FlowSlots),
			ports: make([]PortRecord, numPorts),
		}
	}
	for p := range s.status {
		s.status[p].Port = p
	}
	return s, nil
}

// rotateMeter ages the causality meter: after a full window the current
// bucket becomes the previous one. Reads always sum both buckets.
// Rotation happens only on writes: when traffic freezes (deadlock), the
// registers retain their last values — which is exactly what makes the
// frozen cycle traceable later.
func (s *State) rotateMeter() {
	now := s.now()
	elapsed := now - s.meterAt
	switch {
	case elapsed < s.meterWin:
		return
	case elapsed < 2*s.meterWin:
		s.meterPrev, s.meterCur = s.meterCur, s.meterPrev
		for i := range s.meterCur {
			s.meterCur[i] = 0
		}
		s.meterAt += s.meterWin
	default:
		for i := range s.meterCur {
			s.meterCur[i] = 0
			s.meterPrev[i] = 0
		}
		s.meterAt = now - (now % s.meterWin)
	}
}

// epochAt returns the ring entry for timestamp t, lazily resetting it on
// epoch-ID wraparound (the register-reset-on-newer-ID rule of §3.3).
func (s *State) epochAt(t sim.Time) *epoch {
	idx := (uint64(t) >> s.idxShift) & s.idxMask
	id := uint32((uint64(t) >> s.idShift) & 0xFF)
	ep := &s.epochs[idx]
	if ep.id != id {
		s.resetEpoch(ep, id)
	}
	return ep
}

func (s *State) resetEpoch(ep *epoch, id uint32) {
	ep.id = id
	for i := range ep.flows {
		ep.flows[i] = FlowRecord{}
	}
	ep.evicted = ep.evicted[:0]
	for i := range ep.ports {
		ep.ports[i] = PortRecord{Port: i}
	}
}

// OnEnqueue implements device.Instrument: the egress-pipeline update.
func (s *State) OnEnqueue(ev device.EnqueueEvent) {
	if ev.Pkt.Class != packet.ClassLossless {
		// Control traffic rides the unpausable queue and is not part of
		// congestion telemetry.
		return
	}
	ep := s.epochAt(ev.Now)
	size := uint64(ev.Pkt.Size)
	q := uint64(ev.QueueBytes)

	pr := &ep.ports[ev.OutPort]
	pr.PktCount++
	pr.Bytes += size
	pr.QdepthSum += q
	if ev.Paused {
		pr.PausedCount++
	}
	if ev.InPort >= 0 {
		s.rotateMeter()
		s.meterCur[ev.InPort*s.numPorts+ev.OutPort] += size
	}
	if ev.Pkt.Type != packet.TypeData || !s.Cfg.FlowTelemetry {
		return
	}
	slot := &ep.flows[ev.Pkt.Flow.Hash()%uint32(s.Cfg.FlowSlots)]
	if !slot.Tuple.IsZero() && !slot.Tuple.XOREquals(ev.Pkt.Flow) {
		// Collision: evict the incumbent to the controller store.
		ep.evicted = append(ep.evicted, *slot)
		s.Evictions++
		*slot = FlowRecord{}
	}
	slot.Tuple = ev.Pkt.Flow
	slot.OutPort = ev.OutPort
	slot.PktCount++
	slot.Bytes += size
	switch {
	case ev.Paused:
		slot.PausedCount++
	case ev.QueueBytes >= s.Cfg.DeepQdepthBytes:
		slot.DeepCount++
		slot.QdepthSum += q
	}
}

// OnDequeue implements device.Instrument (unused by Hawkeye).
func (s *State) OnDequeue(device.DequeueEvent) {}

// OnPFC implements device.Instrument: the PFC frame is passed into the
// egress pipeline and the port status register updated with the remaining
// pause time (paper Fig. 6, red line).
func (s *State) OnPFC(port int, frame *packet.PFCFrame, now sim.Time) {
	st := &s.status[port]
	for c := uint8(0); c < packet.NumClasses; c++ {
		switch {
		case frame.Paused(c):
			st.RxPause++
			st.PausedUntil = now + packet.PauseDuration(frame.Quanta[c], s.bwBps)
		case frame.Resumes(c):
			st.RxResume++
			st.PausedUntil = now
		}
	}
}

// PortPausedNow reports whether the port status register currently says
// "paused".
func (s *State) PortPausedNow(port int) bool {
	return s.status[port].PausedUntil > s.now()
}

// validEpoch pairs a ring index with the epoch's start time.
type validEpoch struct {
	idx   int
	start sim.Time
}

// validEpochs returns the ring slots holding self-consistent data,
// newest first, up to maxN entries. The result aliases a scratch buffer
// owned by the State and is valid only until the next call — this runs
// once per polling packet, so it must not allocate.
// A slot's (index, epoch-ID) pair
// reconstructs the epoch's start time, so stale slots are recognized
// without any extra state — and, like real registers, a slot written
// before a traffic freeze keeps its evidence until something overwrites
// it (which is what keeps a frozen deadlock diagnosable well after its
// formation). The 8-bit epoch ID makes the reconstruction ambiguous
// beyond 256*NumEpochs epochs (~134 ms at the defaults), the same
// wraparound bound the paper's encoding has.
func (s *State) validEpochs(maxN int) []validEpoch {
	now := uint64(s.now())
	idxBits := s.idShift - s.idxShift
	out := s.veScratch[:0]
	for idx := 0; idx < s.Cfg.NumEpochs; idx++ {
		id := s.epochs[idx].id
		if id == epochIDInvalid {
			continue
		}
		start := (uint64(id)<<idxBits | uint64(idx)) << s.idxShift
		if start > now {
			continue
		}
		out = append(out, validEpoch{idx: idx, start: sim.Time(start)})
	}
	// Insertion sort, newest first: the ring holds at most NumEpochs
	// entries (typically 4) and sort.Slice's closure would allocate.
	for i := 1; i < len(out); i++ {
		v := out[i]
		j := i - 1
		for j >= 0 && out[j].start < v.start {
			out[j+1] = out[j]
			j--
		}
		out[j+1] = v
	}
	s.veScratch = out[:0]
	if maxN > 0 && len(out) > maxN {
		out = out[:maxN]
	}
	return out
}

// recentEpochs returns the valid epochs overlapping the last `lookback`
// epoch lengths — the in-data-plane recency window for causality checks.
func (s *State) recentEpochs(lookback int) []validEpoch {
	cutoff := s.now() - sim.Time(lookback)*s.Cfg.EpochSize()
	all := s.validEpochs(lookback + 1)
	out := all[:0]
	for _, ve := range all {
		if ve.start+s.Cfg.EpochSize() > cutoff {
			out = append(out, ve)
		}
	}
	return out
}

// FlowPausedRecently reports whether the flow saw paused enqueues within
// the lookback window — the "is the victim flow PFC paused" check the
// polling pipeline performs (Fig. 6).
func (s *State) FlowPausedRecently(ft packet.FiveTuple) (outPort int, paused bool, found bool) {
	slotIdx := ft.Hash() % uint32(s.Cfg.FlowSlots)
	for _, ve := range s.recentEpochs(s.Cfg.Lookback) {
		slot := &s.epochs[ve.idx].flows[slotIdx]
		if slot.Tuple.XOREquals(ft) && slot.PktCount > 0 {
			if !found {
				outPort, found = slot.OutPort, true
			}
			if slot.PausedCount > 0 {
				return slot.OutPort, true, true
			}
		}
	}
	return outPort, false, found
}

// PortPausedRecently reports whether an egress port had paused enqueues
// within the lookback window or is paused right now.
func (s *State) PortPausedRecently(port int) bool {
	if s.PortPausedNow(port) {
		return true
	}
	for _, ve := range s.recentEpochs(s.Cfg.Lookback) {
		if s.epochs[ve.idx].ports[port].PausedCount > 0 {
			return true
		}
	}
	return false
}

// MeterRecent returns the bytes metered from inPort to outPort within the
// last one-to-two meter windows — the causality-relevance test for
// polling multicast. Unlike the epoch telemetry this survives a traffic
// freeze, which is what makes deadlocks traceable.
func (s *State) MeterRecent(inPort, outPort int) uint64 {
	i := inPort*s.numPorts + outPort
	return s.meterCur[i] + s.meterPrev[i]
}

// NumPorts returns the port count covered by this state.
func (s *State) NumPorts() int { return s.numPorts }

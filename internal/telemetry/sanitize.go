package telemetry

// Admission-time sanitization: the last line of defense between a decoded
// report and provenance-graph construction. The wire validator rejects
// reports that contradict the handshake topology outright; what remains
// here are magnitudes — counters that decoded fine and reference real
// ports but claim physically impossible values. Those are clamped rather
// than rejected so one flipped bit in a byte counter degrades a report
// instead of discarding the rest of its evidence; the clamp count flows
// into provenance Coverage so diagnosis can discount the conclusion.

// Limits bounds physically plausible magnitudes for a single report.
type Limits struct {
	// MaxEpochBytes caps the byte counter of one flow/port record: no
	// record can carry more than the link could move in one epoch (with
	// generous slack for epoch-boundary smear).
	MaxEpochBytes uint64
	// MaxMeterBytes caps one causality-meter cell, which aggregates the
	// current and previous epoch windows.
	MaxMeterBytes uint64
	// MaxQdepthBytes caps queue-depth registers and per-packet averages:
	// no real switch buffers more than this per port.
	MaxQdepthBytes uint64
}

// LimitsFor derives limits from the fabric's link speed and epoch length.
// The 4x slack absorbs epoch-boundary smear and burst drain; anything
// beyond it is corruption, not traffic.
func LimitsFor(linkBps float64, epochNS int64) Limits {
	perEpoch := uint64(linkBps / 8 * float64(epochNS) / 1e9)
	if perEpoch == 0 {
		perEpoch = 1
	}
	return Limits{
		MaxEpochBytes:  4 * perEpoch,
		MaxMeterBytes:  8 * perEpoch,
		MaxQdepthBytes: 64 << 20, // deep-buffer switches top out around 64 MB/port
	}
}

// SanitizeReport clamps implausible magnitudes in place and returns how
// many fields were touched. A zero return means the report was plausible
// as received.
func SanitizeReport(r *Report, lim Limits) int {
	clamped := 0
	clampU := func(v *uint64, max uint64) {
		if *v > max {
			*v = max
			clamped++
		}
	}
	for ei := range r.Epochs {
		ep := &r.Epochs[ei]
		for i := range ep.Flows {
			f := &ep.Flows[i]
			clampU(&f.Bytes, lim.MaxEpochBytes)
			if f.PausedCount > f.PktCount {
				f.PausedCount = f.PktCount
				clamped++
			}
			if f.DeepCount > f.PktCount {
				f.DeepCount = f.PktCount
				clamped++
			}
			// QdepthSum is a per-packet accumulator: its average must stay
			// within a real buffer.
			if max := uint64(f.PktCount) * lim.MaxQdepthBytes; f.QdepthSum > max {
				f.QdepthSum = max
				clamped++
			}
		}
		for i := range ep.Ports {
			p := &ep.Ports[i]
			clampU(&p.Bytes, lim.MaxEpochBytes)
			if p.PausedCount > p.PktCount {
				p.PausedCount = p.PktCount
				clamped++
			}
			if max := uint64(p.PktCount) * lim.MaxQdepthBytes; p.QdepthSum > max {
				p.QdepthSum = max
				clamped++
			}
		}
	}
	for i := range r.Meter {
		clampU(&r.Meter[i].Bytes, lim.MaxMeterBytes)
	}
	for i := range r.Status {
		st := &r.Status[i]
		if st.QdepthBytes < 0 {
			st.QdepthBytes = 0
			clamped++
		}
		if uint64(st.QdepthBytes) > lim.MaxQdepthBytes {
			st.QdepthBytes = int(lim.MaxQdepthBytes)
			clamped++
		}
		if st.PausedUntil < 0 {
			st.PausedUntil = 0
			clamped++
		}
	}
	return clamped
}

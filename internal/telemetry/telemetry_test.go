package telemetry

import (
	"testing"
	"testing/quick"

	"hawkeye/internal/device"
	"hawkeye/internal/packet"
	"hawkeye/internal/sim"
)

const testBW = 100e9

func testState(t *testing.T, cfg Config) (*State, *sim.Time) {
	t.Helper()
	now := new(sim.Time)
	s, err := New(cfg, 1, "sw1", 8, testBW, func() sim.Time { return *now }, nil)
	if err != nil {
		t.Fatal(err)
	}
	return s, now
}

func smallCfg() Config {
	return Config{EpochBits: 14, NumEpochs: 4, FlowSlots: 64, Lookback: 2, FlowTelemetry: true}
}

func dataEvent(ft packet.FiveTuple, in, out, size, qBytes int, paused bool, now sim.Time) device.EnqueueEvent {
	return device.EnqueueEvent{
		Pkt:        &packet.Packet{Type: packet.TypeData, Flow: ft, Class: packet.ClassLossless, Size: size},
		InPort:     in,
		OutPort:    out,
		QueueBytes: qBytes,
		Paused:     paused,
		Now:        now,
	}
}

func ft(n uint32) packet.FiveTuple {
	return packet.FiveTuple{SrcIP: 0x0A000000 + n, DstIP: 0x0A0000FF, SrcPort: 4791, DstPort: 4791, Proto: 17}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{EpochBits: 20, NumEpochs: 3, FlowSlots: 64, Lookback: 1},
		{EpochBits: 5, NumEpochs: 4, FlowSlots: 64, Lookback: 1},
		{EpochBits: 20, NumEpochs: 4, FlowSlots: 0, Lookback: 1},
		{EpochBits: 20, NumEpochs: 4, FlowSlots: 64, Lookback: 9},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: bad config validated", i)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestFlowAccumulation(t *testing.T) {
	s, now := testState(t, smallCfg())
	f := ft(1)
	for i := 0; i < 5; i++ {
		s.OnEnqueue(dataEvent(f, 2, 3, 1000, 4000, i%2 == 0, *now))
	}
	rep := s.Snapshot(1)
	if len(rep.Epochs) != 1 || len(rep.Epochs[0].Flows) != 1 {
		t.Fatalf("snapshot: %+v", rep.Epochs)
	}
	fr := rep.Epochs[0].Flows[0]
	if fr.PktCount != 5 || fr.PausedCount != 3 || fr.Bytes != 5000 || fr.OutPort != 3 {
		t.Fatalf("flow record %+v", fr)
	}
	if fr.AvgQdepth() != 4000 {
		t.Fatalf("avg qdepth %v, want 4000", fr.AvgQdepth())
	}
}

func TestPortAndMeterAccumulation(t *testing.T) {
	s, now := testState(t, smallCfg())
	s.OnEnqueue(dataEvent(ft(1), 0, 5, 1000, 100, true, *now))
	s.OnEnqueue(dataEvent(ft(2), 1, 5, 500, 200, false, *now))
	rep := s.Snapshot(1)
	if len(rep.Epochs[0].Ports) != 1 {
		t.Fatalf("ports: %+v", rep.Epochs[0].Ports)
	}
	pr := rep.Epochs[0].Ports[0]
	if pr.Port != 5 || pr.PktCount != 2 || pr.PausedCount != 1 || pr.Bytes != 1500 {
		t.Fatalf("port record %+v", pr)
	}
	if got := s.MeterRecent(0, 5); got != 1000 {
		t.Fatalf("meter[0][5] = %d, want 1000", got)
	}
	if got := s.MeterRecent(1, 5); got != 500 {
		t.Fatalf("meter[1][5] = %d, want 500", got)
	}
	if got := s.MeterRecent(2, 5); got != 0 {
		t.Fatalf("meter[2][5] = %d, want 0", got)
	}
}

func TestLocallyGeneratedSkipsMeter(t *testing.T) {
	s, now := testState(t, smallCfg())
	s.OnEnqueue(dataEvent(ft(1), -1, 2, 800, 0, false, *now))
	rep := s.Snapshot(1)
	if len(rep.Meter) != 0 {
		t.Fatalf("meter recorded for CPU-originated packet: %+v", rep.Meter)
	}
}

func TestControlClassIgnored(t *testing.T) {
	s, now := testState(t, smallCfg())
	ev := dataEvent(ft(1), 0, 1, 84, 0, false, *now)
	ev.Pkt.Class = packet.ClassControl
	s.OnEnqueue(ev)
	rep := s.Snapshot(1)
	if len(rep.Epochs) != 0 {
		t.Fatalf("control packet created telemetry: %+v", rep.Epochs)
	}
}

func TestCollisionEviction(t *testing.T) {
	cfg := smallCfg()
	cfg.FlowSlots = 1 // force collisions
	s, now := testState(t, cfg)
	s.OnEnqueue(dataEvent(ft(1), 0, 1, 1000, 0, false, *now))
	s.OnEnqueue(dataEvent(ft(2), 0, 1, 1000, 0, false, *now))
	if s.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", s.Evictions)
	}
	rep := s.Snapshot(1)
	// Both flows visible: one live slot + one evicted record.
	if got := len(rep.Epochs[0].Flows); got != 2 {
		t.Fatalf("flows in snapshot = %d, want 2 (live + evicted)", got)
	}
}

func TestEpochRolloverAndWraparound(t *testing.T) {
	cfg := smallCfg()
	s, now := testState(t, cfg)
	epoch := cfg.EpochSize()
	f := ft(1)
	s.OnEnqueue(dataEvent(f, 0, 1, 1000, 0, false, *now))
	// Advance one epoch: new epoch entry, old one still valid.
	*now += epoch
	s.OnEnqueue(dataEvent(f, 0, 1, 1000, 0, false, *now))
	rep := s.Snapshot(4)
	if len(rep.Epochs) != 2 {
		t.Fatalf("expected 2 valid epochs, got %d", len(rep.Epochs))
	}
	// Jump a full ring cycle and write into the slot that held the first
	// epoch: the wraparound rule resets it lazily on first touch. The
	// other old slot is retained (registers keep their values until
	// overwritten) but must carry its ORIGINAL start label.
	*now += epoch * sim.Time(cfg.NumEpochs)
	s.OnEnqueue(dataEvent(f, 0, 1, 500, 0, false, *now))
	rep = s.Snapshot(4)
	if len(rep.Epochs) != 2 {
		t.Fatalf("epochs after wraparound: %d, want 2 (fresh + retained)", len(rep.Epochs))
	}
	fresh, retained := rep.Epochs[0], rep.Epochs[1]
	if fresh.Start != epoch*sim.Time(cfg.NumEpochs+1) {
		t.Fatalf("fresh epoch start %v, want %v", fresh.Start, epoch*sim.Time(cfg.NumEpochs+1))
	}
	if fresh.Flows[0].Bytes != 500 {
		t.Fatalf("stale counters survived reset: %+v", fresh.Flows[0])
	}
	if retained.Start != 0 {
		t.Fatalf("retained epoch start %v, want 0", retained.Start)
	}
	if retained.Flows[0].Bytes != 1000 {
		t.Fatalf("retained counters corrupted: %+v", retained.Flows[0])
	}
}

func TestValidEpochExpiry(t *testing.T) {
	cfg := smallCfg()
	s, now := testState(t, cfg)
	s.OnEnqueue(dataEvent(ft(1), 0, 1, 1000, 0, true, *now))
	if !s.PortPausedRecently(1) {
		t.Fatal("fresh paused enqueue not visible")
	}
	// After the ring wraps past the write, the data must no longer count
	// as recent.
	*now += cfg.EpochSize() * sim.Time(cfg.NumEpochs+1)
	if s.PortPausedRecently(1) {
		t.Fatal("expired epoch still considered recent")
	}
}

func TestFlowPausedRecently(t *testing.T) {
	s, now := testState(t, smallCfg())
	f := ft(7)
	s.OnEnqueue(dataEvent(f, 0, 4, 1000, 0, false, *now))
	out, paused, found := s.FlowPausedRecently(f)
	if !found || paused || out != 4 {
		t.Fatalf("unpaused flow: out=%d paused=%v found=%v", out, paused, found)
	}
	s.OnEnqueue(dataEvent(f, 0, 4, 1000, 0, true, *now))
	if _, paused, _ := s.FlowPausedRecently(f); !paused {
		t.Fatal("paused enqueue not detected")
	}
	if _, _, found := s.FlowPausedRecently(ft(9)); found {
		t.Fatal("unknown flow reported found")
	}
}

func TestLookbackSpansPreviousEpoch(t *testing.T) {
	cfg := smallCfg()
	s, now := testState(t, cfg)
	f := ft(3)
	s.OnEnqueue(dataEvent(f, 2, 6, 1000, 0, true, *now))
	*now += cfg.EpochSize() // move into the next epoch
	if _, paused, found := s.FlowPausedRecently(f); !found || !paused {
		t.Fatal("lookback missed previous epoch")
	}
	if s.MeterRecent(2, 6) != 1000 {
		t.Fatal("meter lookback missed previous epoch")
	}
}

func TestOnPFCUpdatesStatus(t *testing.T) {
	s, now := testState(t, smallCfg())
	if s.PortPausedNow(3) {
		t.Fatal("port paused before any PFC")
	}
	s.OnPFC(3, packet.NewPause(packet.ClassLossless, 1000), *now)
	if !s.PortPausedNow(3) {
		t.Fatal("port not paused after PAUSE frame")
	}
	s.OnPFC(3, packet.NewResume(packet.ClassLossless), *now)
	if s.PortPausedNow(3) {
		t.Fatal("port still paused after RESUME")
	}
	rep := s.Snapshot(1)
	if rep.Status[3].RxPause != 1 || rep.Status[3].RxResume != 1 {
		t.Fatalf("status counters %+v", rep.Status[3])
	}
}

func TestSnapshotZeroFiltering(t *testing.T) {
	s, now := testState(t, smallCfg())
	s.OnEnqueue(dataEvent(ft(1), 0, 1, 1000, 0, false, *now))
	rep := s.Snapshot(4)
	if rep.WireSize() >= rep.FullDumpSize() {
		t.Fatalf("zero-filtered size %d not below full dump %d", rep.WireSize(), rep.FullDumpSize())
	}
	// One flow in a 64-slot table: reduction must exceed 80% (Fig. 14a).
	if ratio := float64(rep.WireSize()) / float64(rep.FullDumpSize()); ratio > 0.2 {
		t.Fatalf("reduction ratio %.2f, want < 0.2", ratio)
	}
}

func TestReportRoundTrip(t *testing.T) {
	s, now := testState(t, smallCfg())
	for i := uint32(0); i < 10; i++ {
		s.OnEnqueue(dataEvent(ft(i), int(i%4), int(i%8), 1000+int(i), int(i)*100, i%3 == 0, *now))
	}
	s.OnPFC(2, packet.NewPause(packet.ClassLossless, 500), *now)
	in := s.Snapshot(4)
	b, err := in.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != in.WireSize() {
		t.Fatalf("encoded %d bytes, WireSize says %d", len(b), in.WireSize())
	}
	var out Report
	if err := out.UnmarshalBinary(b); err != nil {
		t.Fatal(err)
	}
	if out.Switch != in.Switch || out.Taken != in.Taken || len(out.Epochs) != len(in.Epochs) {
		t.Fatalf("header mismatch: %+v vs %+v", out, in)
	}
	for e := range in.Epochs {
		ie, oe := in.Epochs[e], out.Epochs[e]
		if len(ie.Flows) != len(oe.Flows) || len(ie.Ports) != len(oe.Ports) {
			t.Fatalf("epoch %d shape mismatch", e)
		}
		for i := range ie.Flows {
			if ie.Flows[i] != oe.Flows[i] {
				t.Fatalf("flow %d mismatch: %+v vs %+v", i, ie.Flows[i], oe.Flows[i])
			}
		}
	}
	if len(in.Meter) == 0 || len(in.Meter) != len(out.Meter) {
		t.Fatalf("meter shape mismatch: %d vs %d", len(in.Meter), len(out.Meter))
	}
	for i := range in.Meter {
		if in.Meter[i] != out.Meter[i] {
			t.Fatalf("meter %d mismatch", i)
		}
	}
	for i := range in.Status {
		if in.Status[i] != out.Status[i] {
			t.Fatalf("status %d mismatch", i)
		}
	}
}

func TestReportRejectsTruncation(t *testing.T) {
	s, now := testState(t, smallCfg())
	s.OnEnqueue(dataEvent(ft(1), 0, 1, 1000, 0, false, *now))
	b, _ := s.Snapshot(1).MarshalBinary()
	for _, cut := range []int{1, 5, len(b) / 2, len(b) - 1} {
		var out Report
		if err := out.UnmarshalBinary(b[:cut]); err == nil {
			t.Fatalf("truncated report (%d bytes) accepted", cut)
		}
	}
}

func TestEpochIndexBitsProperty(t *testing.T) {
	// The (index, id) pair derived from a timestamp must be consistent:
	// timestamps within the same epoch agree, adjacent epochs differ in
	// index, and id increments every NumEpochs epochs.
	cfg := smallCfg()
	s, now := testState(t, cfg)
	f := func(raw uint32) bool {
		base := sim.Time(raw) * 7 // arbitrary spread
		*now = base
		ep1 := s.epochAt(base)
		ep2 := s.epochAt(base + 1)
		return ep1 == ep2 || (uint64(base)>>cfg.EpochBits) != (uint64(base+1)>>cfg.EpochBits)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestReportUnmarshalNeverPanics feeds random garbage to the report
// decoder: every input must produce a clean error or a valid report,
// never a panic or an over-allocation (the analyzer parses bytes from
// the network).
func TestReportUnmarshalNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		var rep Report
		_ = rep.UnmarshalBinary(data) // error or not — just no panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
	// Truncations of a VALID report must all error, not mis-parse.
	s, now := testState(t, smallCfg())
	for i := 0; i < 10; i++ {
		*now = sim.Time(i) * 100
		s.OnEnqueue(dataEvent(ft(uint32(i)), 0, 1, 1000, 9000, false, *now))
	}
	rep := s.Snapshot(4)
	data, err := rep.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(data); cut += 7 {
		var out Report
		if err := out.UnmarshalBinary(data[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

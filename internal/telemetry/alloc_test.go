package telemetry

import (
	"reflect"
	"testing"

	"hawkeye/internal/device"
	"hawkeye/internal/packet"
	"hawkeye/internal/sim"
)

func allocTestState(t *testing.T) (*State, *sim.Time) {
	t.Helper()
	var now sim.Time
	s, err := New(DefaultConfig(), 1, "sw", 8, 100e9,
		func() sim.Time { return now }, func(int) int { return 4096 })
	if err != nil {
		t.Fatal(err)
	}
	return s, &now
}

func feed(s *State, now *sim.Time, n int) {
	for i := 0; i < n; i++ {
		*now += 100
		s.OnEnqueue(device.EnqueueEvent{
			Pkt: &packet.Packet{Type: packet.TypeData, Class: packet.ClassLossless, Size: 1078,
				Flow: packet.FiveTuple{SrcIP: uint32(i%64 + 1), DstIP: 2, SrcPort: 3, DstPort: 4, Proto: 17}},
			InPort: i % 7, OutPort: 1 + i%3, QueueBytes: 20000, Now: *now,
		})
	}
}

// TestSnapshotIntoMatchesSnapshot pins that the buffer-reusing path is
// observationally identical to the allocating one, including across
// epoch-ring churn between syncs (stale buffers must be fully reset).
func TestSnapshotIntoMatchesSnapshot(t *testing.T) {
	s, now := allocTestState(t)
	var reused Report
	for round := 0; round < 5; round++ {
		feed(s, now, 300+97*round)
		fresh := s.Snapshot(4)
		s.SnapshotInto(&reused, 4)
		// Normalize empty-vs-nil slices before the deep comparison: the
		// reused report keeps zero-length buffers where the fresh one has
		// nil, and both mean "no records".
		got := reused
		if len(got.Meter) == 0 {
			got.Meter = nil
		}
		if len(got.Epochs) == 0 {
			got.Epochs = nil
		}
		for i := range got.Epochs {
			if len(got.Epochs[i].Flows) == 0 {
				got.Epochs[i].Flows = nil
			}
			if len(got.Epochs[i].Ports) == 0 {
				got.Epochs[i].Ports = nil
			}
		}
		if !reflect.DeepEqual(&got, fresh) {
			t.Fatalf("round %d: SnapshotInto diverged from Snapshot:\n got %+v\nwant %+v", round, got, fresh)
		}
	}
}

// TestSnapshotIntoZeroAlloc pins the telemetry buffer-reuse contract:
// once the report's buffers are warm, a per-epoch snapshot allocates
// nothing. This backs BenchmarkTelemetrySnapshot's allocs/op gate.
func TestSnapshotIntoZeroAlloc(t *testing.T) {
	s, now := allocTestState(t)
	feed(s, now, 512)
	var rep Report
	s.SnapshotInto(&rep, 4) // warm the buffers
	avg := testing.AllocsPerRun(200, func() {
		s.SnapshotInto(&rep, 4)
	})
	if avg != 0 {
		t.Fatalf("SnapshotInto allocates %.2f objects/op with warm buffers, want 0", avg)
	}
}

// TestRecencyChecksZeroAlloc guards the per-polling-packet hot path:
// FlowPausedRecently and PortPausedRecently run on every poll multicast
// and must not allocate (the validEpochs scratch buffer).
func TestRecencyChecksZeroAlloc(t *testing.T) {
	s, now := allocTestState(t)
	feed(s, now, 512)
	ft := packet.FiveTuple{SrcIP: 5, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: 17}
	avg := testing.AllocsPerRun(200, func() {
		s.FlowPausedRecently(ft)
		s.PortPausedRecently(1)
	})
	if avg != 0 {
		t.Fatalf("recency checks allocate %.2f objects/op, want 0", avg)
	}
}

package telemetry

import (
	"errors"
	"testing"

	"hawkeye/internal/packet"
)

func sanitizeFixture() *Report {
	return &Report{
		Switch: 1, Taken: 5000, NumPorts: 4, NumEpochs: 4, FlowSlots: 64,
		Epochs: []EpochData{{
			Ring: 0, ID: 1, Start: 4000,
			Flows: []FlowRecord{{
				Tuple:    packet.FiveTuple{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: 17},
				OutPort:  1,
				PktCount: 10, PausedCount: 2, DeepCount: 1, QdepthSum: 1000, Bytes: 10000,
			}},
			Ports: []PortRecord{{Port: 1, PktCount: 10, PausedCount: 2, QdepthSum: 1000, Bytes: 10000}},
		}},
		Meter:  []MeterRecord{{InPort: 0, OutPort: 1, Bytes: 10000}},
		Status: []PortStatus{{Port: 1, PausedUntil: 5500, QdepthBytes: 4096}},
	}
}

func TestSanitizeNoopOnHonestReport(t *testing.T) {
	lim := LimitsFor(100e9, 1e6) // 100 Gbps, 1 ms epochs
	r := sanitizeFixture()
	if n := SanitizeReport(r, lim); n != 0 {
		t.Fatalf("honest report clamped %d values", n)
	}
}

func TestSanitizeClampsImplausibleMagnitudes(t *testing.T) {
	lim := LimitsFor(100e9, 1e6)
	r := sanitizeFixture()
	// A 100 Gbps link moves 12.5 MB per 1 ms epoch; claim exabytes.
	r.Epochs[0].Flows[0].Bytes = 1 << 62
	r.Epochs[0].Flows[0].PausedCount = 999 // > PktCount
	r.Epochs[0].Flows[0].QdepthSum = 1 << 62
	r.Epochs[0].Ports[0].Bytes = 1 << 62
	r.Meter[0].Bytes = 1 << 62
	r.Status[0].QdepthBytes = 1 << 40
	n := SanitizeReport(r, lim)
	if n != 6 {
		t.Fatalf("clamped %d values, want 6", n)
	}
	f := &r.Epochs[0].Flows[0]
	if f.Bytes > lim.MaxEpochBytes || f.PausedCount > f.PktCount {
		t.Fatalf("flow record not clamped: %+v", f)
	}
	if f.QdepthSum > uint64(f.PktCount)*lim.MaxQdepthBytes {
		t.Fatalf("qdepth sum not clamped: %d", f.QdepthSum)
	}
	if r.Meter[0].Bytes > lim.MaxMeterBytes {
		t.Fatalf("meter not clamped: %d", r.Meter[0].Bytes)
	}
	if uint64(r.Status[0].QdepthBytes) > lim.MaxQdepthBytes {
		t.Fatalf("status qdepth not clamped: %d", r.Status[0].QdepthBytes)
	}
	// Idempotent: a second pass finds nothing left to fix.
	if n := SanitizeReport(r, lim); n != 0 {
		t.Fatalf("second pass clamped %d more values", n)
	}
}

func TestSanitizeClampsNegativeRegisters(t *testing.T) {
	lim := LimitsFor(100e9, 1e6)
	r := sanitizeFixture()
	r.Status[0].QdepthBytes = -5
	r.Status[0].PausedUntil = -1
	if n := SanitizeReport(r, lim); n != 2 {
		t.Fatalf("clamped %d values, want 2", n)
	}
	if r.Status[0].QdepthBytes != 0 || r.Status[0].PausedUntil != 0 {
		t.Fatalf("negative registers survived: %+v", r.Status[0])
	}
}

// TestUnmarshalRejectsTrailingBytes: extra bytes after a well-formed
// encoding mean a format disagreement, not padding.
func TestUnmarshalRejectsTrailingBytes(t *testing.T) {
	b, err := sanitizeFixture().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var r Report
	if err := r.UnmarshalBinary(b); err != nil {
		t.Fatalf("clean round-trip failed: %v", err)
	}
	var r2 Report
	if err := r2.UnmarshalBinary(append(b, 0xEE)); !errors.Is(err, ErrBadReport) {
		t.Fatalf("trailing byte accepted: %v", err)
	}
}

// TestUnmarshalRejectsOverclaimedCounts: headers that promise more
// records than the payload could physically hold are refused before the
// decoder allocates for them.
func TestUnmarshalRejectsOverclaimedCounts(t *testing.T) {
	b, err := sanitizeFixture().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// Offset 24-27 is the meter count (header: switch 4, taken 8,
	// numPorts 2, numEpochs 2, flowSlots 4, epochs 2 = 22).
	hostile := append([]byte(nil), b...)
	hostile[22+2], hostile[22+3] = 0xFF, 0xFF // claim 65535 meter records
	var r Report
	if err := r.UnmarshalBinary(hostile); !errors.Is(err, ErrBadReport) {
		t.Fatalf("overclaimed meter count accepted: %v", err)
	}
	// Same for the per-epoch flow count: find it by re-encoding a report
	// whose only epoch claims 2^24-1 flows.
	hostile2 := append([]byte(nil), b...)
	// Epoch header starts at 28; flow count is at +14 (ring 2, id 4, start 8).
	off := 28 + 14
	hostile2[off], hostile2[off+1], hostile2[off+2], hostile2[off+3] = 0x00, 0xFF, 0xFF, 0xFF
	var r2 Report
	if err := r2.UnmarshalBinary(hostile2); !errors.Is(err, ErrBadReport) {
		t.Fatalf("overclaimed flow count accepted: %v", err)
	}
}

// TestUnmarshalResetsReceiver: decoding into a reused Report must not
// leak records from the previous decode.
func TestUnmarshalResetsReceiver(t *testing.T) {
	b, err := sanitizeFixture().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var r Report
	if err := r.UnmarshalBinary(b); err != nil {
		t.Fatal(err)
	}
	if err := r.UnmarshalBinary(b); err != nil {
		t.Fatal(err)
	}
	if len(r.Meter) != 1 || len(r.Status) != 1 || len(r.Epochs) != 1 {
		t.Fatalf("reused receiver accumulated records: meter=%d status=%d epochs=%d",
			len(r.Meter), len(r.Status), len(r.Epochs))
	}
}

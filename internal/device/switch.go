// Package device models the RDMA switch: per-port per-class egress queues
// over a shared buffer, ingress-side PFC accounting with Xoff/Xon
// thresholds and quanta-based pause frames, RED/ECN marking for DCQCN, and
// ECMP forwarding. Instrumentation hooks expose every enqueue, dequeue and
// PFC event so Hawkeye telemetry and the baselines observe the pipeline
// exactly the way a P4 program would.
package device

import (
	"fmt"

	"hawkeye/internal/fabric"
	"hawkeye/internal/packet"
	"hawkeye/internal/sim"
	"hawkeye/internal/topo"
)

// Config controls buffer management, PFC and ECN behaviour.
type Config struct {
	// EnablePFC turns priority flow control on for lossless classes.
	EnablePFC bool
	// LosslessClasses marks which 802.1p classes are PFC-protected.
	LosslessClasses [packet.NumClasses]bool
	// XoffBytes: ingress (port, class) usage above this asserts PAUSE.
	XoffBytes int
	// XonBytes: usage below this deasserts (sends RESUME).
	XonBytes int
	// PauseQuanta is the pause duration carried in each PAUSE frame.
	PauseQuanta uint16
	// PauseRefresh is the fraction of the pause duration after which an
	// still-asserted pause is re-sent (hardware refreshes similarly).
	PauseRefresh float64
	// TotalBufferBytes bounds the shared packet buffer. Zero = unlimited.
	TotalBufferBytes int

	// EnableECN turns RED/ECN marking on for lossless classes.
	EnableECN bool
	// KminBytes..KmaxBytes is the RED ramp; Pmax the top mark probability.
	KminBytes int
	KmaxBytes int
	Pmax      float64
}

// DefaultConfig returns thresholds sized for 100 Gbps links with 2 µs
// delay (per-hop BDP ≈ 50 KB): ECN keeps steady-state queues below Xoff
// so PFC fires only on bursts, the regime the paper studies.
func DefaultConfig() Config {
	var lossless [packet.NumClasses]bool
	lossless[packet.ClassLossless] = true
	return Config{
		EnablePFC:       true,
		LosslessClasses: lossless,
		XoffBytes:       48 * 1024,
		XonBytes:        24 * 1024,
		// Real deployments pause with large quanta and rely on the
		// explicit Xon RESUME; expiry is only a failure backstop.
		PauseQuanta:  packet.MaxPauseQuanta, // ≈335 µs at 100 Gbps
		PauseRefresh: 0.5,
		EnableECN:    true,
		KminBytes:    16 * 1024,
		KmaxBytes:    64 * 1024,
		Pmax:         0.2,
	}
}

// EnqueueEvent is handed to instruments for every packet entering an
// egress queue — the egress-pipeline view a P4 program sees.
type EnqueueEvent struct {
	Pkt        *packet.Packet
	InPort     int // -1 if locally generated (CPU port)
	OutPort    int
	QueueBytes int  // class backlog after the enqueue
	QueuePkts  int  // class backlog in packets after the enqueue
	Paused     bool // egress (OutPort, class) was paused at enqueue time
	Now        sim.Time
}

// DequeueEvent is handed to instruments when a packet starts transmission.
type DequeueEvent struct {
	Pkt        *packet.Packet
	OutPort    int
	EnqueuedAt sim.Time
	Now        sim.Time
}

// Instrument observes the switch pipeline. Hawkeye telemetry and every
// telemetry baseline implement this.
type Instrument interface {
	OnEnqueue(ev EnqueueEvent)
	OnDequeue(ev DequeueEvent)
	// OnPFC fires when a PFC frame arrives on port (paper: the frame is
	// passed into the egress pipeline to update the port status register).
	OnPFC(port int, frame *packet.PFCFrame, now sim.Time)
}

// PollHandler processes Hawkeye polling packets in the "data plane".
type PollHandler interface {
	HandlePolling(sw *Switch, pkt *packet.Packet, inPort int)
}

// Switch is one modelled switch.
type Switch struct {
	ID   topo.NodeID
	Name string
	Cfg  Config

	net     *fabric.Network
	routing *topo.Routing
	rng     *sim.Rand

	egress []*fabric.Egress

	ingressBytes  [][packet.NumClasses]int
	pauseAsserted [][packet.NumClasses]bool
	refreshRef    [][packet.NumClasses]sim.EventRef

	bufferUsed int

	instruments []Instrument
	pollHandler PollHandler

	// watchdogDrop marks (port, class) pairs whose arriving traffic a PFC
	// watchdog is currently discarding (storm mitigation).
	watchdogDrop [][packet.NumClasses]bool

	// Counters.
	Drops         uint64
	WatchdogDrops uint64
	RxPFCFrames   uint64
	TxPFCFrames   uint64
	MaxBufferUse  int
}

// NewSwitch builds the model for topology node id and registers it on the
// network.
func NewSwitch(net *fabric.Network, routing *topo.Routing, id topo.NodeID, cfg Config, rng *sim.Rand) *Switch {
	node := net.Topo.Node(id)
	if node.Kind != topo.KindSwitch {
		panic(fmt.Sprintf("device: node %s is not a switch", node.Name))
	}
	sw := &Switch{
		ID:      id,
		Name:    node.Name,
		Cfg:     cfg,
		net:     net,
		routing: routing,
		rng:     rng,
	}
	n := len(node.Ports)
	sw.egress = make([]*fabric.Egress, n)
	sw.ingressBytes = make([][packet.NumClasses]int, n)
	sw.pauseAsserted = make([][packet.NumClasses]bool, n)
	sw.refreshRef = make([][packet.NumClasses]sim.EventRef, n)
	sw.watchdogDrop = make([][packet.NumClasses]bool, n)
	for p := 0; p < n; p++ {
		p := p
		sw.egress[p] = fabric.NewEgress(net, id, p)
		sw.egress[p].OnDequeue = func(q fabric.Queued) { sw.onDequeue(p, q) }
	}
	net.Register(id, sw)
	return sw
}

// AddInstrument attaches a pipeline observer.
func (sw *Switch) AddInstrument(in Instrument) { sw.instruments = append(sw.instruments, in) }

// SetPollHandler installs the polling-packet logic (Hawkeye switches).
func (sw *Switch) SetPollHandler(h PollHandler) { sw.pollHandler = h }

// NumPorts returns the port count.
func (sw *Switch) NumPorts() int { return len(sw.egress) }

// EgressAt exposes a port's egress machinery (polling logic and tests).
func (sw *Switch) EgressAt(port int) *fabric.Egress { return sw.egress[port] }

// Network returns the fabric the switch is attached to.
func (sw *Switch) Network() *fabric.Network { return sw.net }

// Routing returns the routing tables the switch forwards with.
func (sw *Switch) Routing() *topo.Routing { return sw.routing }

// IsHostFacing reports whether an egress port connects to a host.
func (sw *Switch) IsHostFacing(port int) bool { return sw.net.Topo.IsHostFacing(sw.ID, port) }

// RouteFor returns the egress port a packet of flow ft would take,
// using the same ECMP hash function as the data path. This is how the
// polling pipeline follows the victim flow (paper Fig. 6).
func (sw *Switch) RouteFor(ft packet.FiveTuple) (int, bool) {
	dst, ok := sw.net.Topo.HostByIP(ft.DstIP)
	if !ok {
		return 0, false
	}
	return sw.routing.SelectPort(sw.ID, dst, ft.Hash())
}

// Receive implements fabric.Receiver.
func (sw *Switch) Receive(pkt *packet.Packet, port int) {
	switch pkt.Type {
	case packet.TypePFC:
		sw.receivePFC(pkt, port)
	case packet.TypePolling:
		if sw.pollHandler != nil {
			sw.pollHandler.HandlePolling(sw, pkt, port)
			return
		}
		// Without Hawkeye logic, polling packets just follow the victim
		// flow path (the victim-only and full-polling baselines reuse this).
		out, ok := sw.RouteFor(pkt.Poll.Victim)
		if !ok {
			sw.Drops++
			return
		}
		sw.EnqueueAt(pkt, port, out)
	default:
		out, ok := sw.RouteFor(pkt.Flow)
		if !ok {
			sw.Drops++
			return
		}
		sw.EnqueueAt(pkt, port, out)
	}
}

func (sw *Switch) receivePFC(pkt *packet.Packet, port int) {
	sw.RxPFCFrames++
	frame := pkt.PFC
	for c := uint8(0); c < packet.NumClasses; c++ {
		switch {
		case frame.Paused(c):
			sw.egress[port].Pause(c, frame.Quanta[c])
		case frame.Resumes(c):
			sw.egress[port].Resume(c)
		}
	}
	for _, in := range sw.instruments {
		in.OnPFC(port, frame, sw.net.Eng.Now())
	}
}

// EnqueueAt places pkt on egress port out, running the full egress
// pipeline: buffer admission, ingress PFC accounting, ECN marking,
// telemetry hooks. inPort is -1 for locally generated packets.
func (sw *Switch) EnqueueAt(pkt *packet.Packet, inPort, out int) {
	if sw.watchdogDrop[out][pkt.Class] {
		sw.WatchdogDrops++
		return
	}
	if sw.Cfg.TotalBufferBytes > 0 && sw.bufferUsed+pkt.Size > sw.Cfg.TotalBufferBytes {
		sw.Drops++
		return
	}
	class := pkt.Class
	eg := sw.egress[out]
	paused := eg.Paused(class)

	sw.bufferUsed += pkt.Size
	if sw.bufferUsed > sw.MaxBufferUse {
		sw.MaxBufferUse = sw.bufferUsed
	}
	if inPort >= 0 && sw.lossless(class) {
		sw.ingressBytes[inPort][class] += pkt.Size
		sw.checkXoff(inPort, class)
	}
	if sw.Cfg.EnableECN && sw.lossless(class) && pkt.Type == packet.TypeData {
		sw.maybeMark(pkt, eg.QueueBytes(class))
	}
	qBytes := eg.Enqueue(fabric.Queued{Pkt: pkt, InPort: inPort})
	ev := EnqueueEvent{
		Pkt:        pkt,
		InPort:     inPort,
		OutPort:    out,
		QueueBytes: qBytes,
		QueuePkts:  eg.QueuePackets(class),
		Paused:     paused,
		Now:        sw.net.Eng.Now(),
	}
	for _, in := range sw.instruments {
		in.OnEnqueue(ev)
	}
}

func (sw *Switch) lossless(class uint8) bool {
	return sw.Cfg.EnablePFC && sw.Cfg.LosslessClasses[class]
}

// maybeMark applies the RED/ECN ramp on the pre-enqueue backlog.
func (sw *Switch) maybeMark(pkt *packet.Packet, qBytes int) {
	if qBytes <= sw.Cfg.KminBytes {
		return
	}
	if qBytes >= sw.Cfg.KmaxBytes {
		pkt.ECN = true
		return
	}
	p := sw.Cfg.Pmax * float64(qBytes-sw.Cfg.KminBytes) / float64(sw.Cfg.KmaxBytes-sw.Cfg.KminBytes)
	if sw.rng.Float64() < p {
		pkt.ECN = true
	}
}

func (sw *Switch) onDequeue(out int, q fabric.Queued) {
	pkt := q.Pkt
	sw.bufferUsed -= pkt.Size
	if q.InPort >= 0 && sw.lossless(pkt.Class) {
		sw.ingressBytes[q.InPort][pkt.Class] -= pkt.Size
		sw.checkXon(q.InPort, pkt.Class)
	}
	ev := DequeueEvent{Pkt: pkt, OutPort: out, EnqueuedAt: q.EnqueuedAt, Now: sw.net.Eng.Now()}
	for _, in := range sw.instruments {
		in.OnDequeue(ev)
	}
}

// checkXoff asserts PAUSE toward the upstream on (inPort, class) when
// ingress usage crosses Xoff.
func (sw *Switch) checkXoff(inPort int, class uint8) {
	if sw.pauseAsserted[inPort][class] || sw.ingressBytes[inPort][class] <= sw.Cfg.XoffBytes {
		return
	}
	sw.pauseAsserted[inPort][class] = true
	sw.sendPause(inPort, class)
}

func (sw *Switch) sendPause(inPort int, class uint8) {
	sw.TxPFCFrames++
	sw.net.SendPFC(sw.ID, inPort, packet.NewPause(class, sw.Cfg.PauseQuanta))
	dur := packet.PauseDuration(sw.Cfg.PauseQuanta, sw.net.Topo.LinkBandwidth)
	refresh := sim.Time(float64(dur) * sw.Cfg.PauseRefresh)
	if refresh < sim.Microsecond {
		refresh = sim.Microsecond
	}
	sw.refreshRef[inPort][class].Cancel()
	sw.refreshRef[inPort][class] = sw.net.Eng.After(refresh, func() {
		if sw.pauseAsserted[inPort][class] {
			sw.sendPause(inPort, class)
		}
	})
}

// checkXon deasserts the pause (sends RESUME) when usage drops below Xon.
func (sw *Switch) checkXon(inPort int, class uint8) {
	if !sw.pauseAsserted[inPort][class] || sw.ingressBytes[inPort][class] >= sw.Cfg.XonBytes {
		return
	}
	sw.pauseAsserted[inPort][class] = false
	sw.refreshRef[inPort][class].Cancel()
	sw.TxPFCFrames++
	sw.net.SendPFC(sw.ID, inPort, packet.NewResume(class))
}

// SetWatchdogDrop turns discard-on-arrival for (port, class) on or off.
// PFC watchdogs use it during a detected pause storm.
func (sw *Switch) SetWatchdogDrop(port int, class uint8, on bool) {
	sw.watchdogDrop[port][class] = on
}

// DropQueued discards every packet queued on (port, class), releasing the
// shared buffer and PFC ingress accounting as if they had departed; a
// drained ingress sends RESUME upstream, which is precisely how a PFC
// watchdog unwinds a pause storm or deadlock. Returns the packet count.
func (sw *Switch) DropQueued(port int, class uint8) int {
	dropped := sw.egress[port].DropClass(class)
	for _, q := range dropped {
		sw.bufferUsed -= q.Pkt.Size
		if q.InPort >= 0 && sw.lossless(q.Pkt.Class) {
			sw.ingressBytes[q.InPort][q.Pkt.Class] -= q.Pkt.Size
			sw.checkXon(q.InPort, q.Pkt.Class)
		}
	}
	sw.WatchdogDrops += uint64(len(dropped))
	return len(dropped)
}

// PauseAsserted reports whether the switch is currently pausing the
// upstream on (inPort, class) — the PFC-watchdog-style view.
func (sw *Switch) PauseAsserted(inPort int, class uint8) bool {
	return sw.pauseAsserted[inPort][class]
}

// IngressBytes exposes the PFC ingress accounting (tests).
func (sw *Switch) IngressBytes(inPort int, class uint8) int {
	return sw.ingressBytes[inPort][class]
}

// BufferUsed returns the current shared-buffer occupancy in bytes.
func (sw *Switch) BufferUsed() int { return sw.bufferUsed }

package device

import (
	"testing"

	"hawkeye/internal/fabric"
	"hawkeye/internal/packet"
	"hawkeye/internal/sim"
	"hawkeye/internal/topo"
)

// rig builds host -- sw -- host with a real switch model and stub hosts.
type stubHost struct{ got []*packet.Packet }

func (s *stubHost) Receive(p *packet.Packet, port int) { s.got = append(s.got, p) }

type rig struct {
	eng  *sim.Engine
	net  *fabric.Network
	tp   *topo.Topology
	sw   *Switch
	h1   topo.NodeID
	h2   topo.NodeID
	rx1  *stubHost
	rx2  *stubHost
	swID topo.NodeID
}

func newRig(t *testing.T, cfg Config) *rig {
	t.Helper()
	tp := topo.New(100e9, sim.Microsecond)
	h1 := tp.AddHost("h1")
	h2 := tp.AddHost("h2")
	sw := tp.AddSwitch("sw")
	tp.Connect(h1, sw) // sw port 0
	tp.Connect(h2, sw) // sw port 1
	eng := sim.NewEngine()
	net := fabric.NewNetwork(eng, tp)
	r := &rig{eng: eng, net: net, tp: tp, h1: h1, h2: h2, swID: sw}
	r.rx1, r.rx2 = &stubHost{}, &stubHost{}
	net.Register(h1, r.rx1)
	net.Register(h2, r.rx2)
	r.sw = NewSwitch(net, topo.ComputeRouting(tp), sw, cfg, sim.NewRand(1))
	return r
}

func (r *rig) dataTo(dstIP uint32, size int) *packet.Packet {
	return &packet.Packet{
		Type:  packet.TypeData,
		Flow:  packet.FiveTuple{SrcIP: r.tp.Node(r.h1).IP, DstIP: dstIP, SrcPort: 9, DstPort: 4791, Proto: 17},
		Class: packet.ClassLossless,
		Size:  size,
	}
}

func TestForwardingByDestination(t *testing.T) {
	r := newRig(t, DefaultConfig())
	pkt := r.dataTo(r.tp.Node(r.h2).IP, 1000)
	r.sw.Receive(pkt, 0)
	r.eng.RunAll()
	if len(r.rx2.got) != 1 || len(r.rx1.got) != 0 {
		t.Fatalf("misrouted: h1=%d h2=%d", len(r.rx1.got), len(r.rx2.got))
	}
}

func TestUnroutableDropsAndCounts(t *testing.T) {
	r := newRig(t, DefaultConfig())
	r.sw.Receive(r.dataTo(0xDEAD, 1000), 0)
	r.eng.RunAll()
	if r.sw.Drops != 1 {
		t.Fatalf("drops = %d", r.sw.Drops)
	}
}

func TestXoffPauseAndXonResume(t *testing.T) {
	cfg := DefaultConfig()
	cfg.XoffBytes = 4000
	cfg.XonBytes = 2000
	r := newRig(t, cfg)
	// Pause the egress toward h2 so the queue builds, then feed packets
	// from port 0 until ingress accounting crosses Xoff.
	r.sw.EgressAt(1).Pause(packet.ClassLossless, packet.MaxPauseQuanta)
	for i := 0; i < 5; i++ {
		r.sw.Receive(r.dataTo(r.tp.Node(r.h2).IP, 1000), 0)
	}
	if !r.sw.PauseAsserted(0, packet.ClassLossless) {
		t.Fatalf("Xoff crossing did not assert pause (ingress=%d)", r.sw.IngressBytes(0, packet.ClassLossless))
	}
	// The PAUSE frame must reach h1.
	r.eng.Run(10 * sim.Microsecond)
	foundPause := false
	for _, p := range r.rx1.got {
		if p.Type == packet.TypePFC && p.PFC.Paused(packet.ClassLossless) {
			foundPause = true
		}
	}
	if !foundPause {
		t.Fatal("no PAUSE frame delivered upstream")
	}
	// Resume the egress: the queue drains, ingress drops below Xon, and
	// a RESUME goes upstream.
	r.sw.EgressAt(1).Resume(packet.ClassLossless)
	r.eng.RunAll()
	if r.sw.PauseAsserted(0, packet.ClassLossless) {
		t.Fatal("pause never deasserted after drain")
	}
	foundResume := false
	for _, p := range r.rx1.got {
		if p.Type == packet.TypePFC && p.PFC.Resumes(packet.ClassLossless) {
			foundResume = true
		}
	}
	if !foundResume {
		t.Fatal("no RESUME frame delivered upstream")
	}
}

func TestReceivedPFCControlsEgress(t *testing.T) {
	r := newRig(t, DefaultConfig())
	pfc := &packet.Packet{Type: packet.TypePFC, Size: packet.PFCFrameSize, PFC: packet.NewPause(packet.ClassLossless, 1000)}
	r.sw.Receive(pfc, 1)
	if !r.sw.EgressAt(1).Paused(packet.ClassLossless) {
		t.Fatal("received PAUSE did not pause the egress")
	}
	res := &packet.Packet{Type: packet.TypePFC, Size: packet.PFCFrameSize, PFC: packet.NewResume(packet.ClassLossless)}
	r.sw.Receive(res, 1)
	if r.sw.EgressAt(1).Paused(packet.ClassLossless) {
		t.Fatal("received RESUME did not lift the pause")
	}
	if r.sw.RxPFCFrames != 2 {
		t.Fatalf("RxPFCFrames = %d", r.sw.RxPFCFrames)
	}
}

func TestECNMarkingAboveKmax(t *testing.T) {
	cfg := DefaultConfig()
	cfg.KminBytes = 1000
	cfg.KmaxBytes = 3000
	r := newRig(t, cfg)
	r.sw.EgressAt(1).Pause(packet.ClassLossless, packet.MaxPauseQuanta)
	marked := 0
	for i := 0; i < 8; i++ {
		p := r.dataTo(r.tp.Node(r.h2).IP, 1000)
		r.sw.Receive(p, 0)
		if p.ECN {
			marked++
		}
	}
	// Everything enqueued past 3 KB backlog must be marked.
	if marked < 5 {
		t.Fatalf("marked %d of 8, want >= 5 (deterministic above Kmax)", marked)
	}
}

func TestBufferLimitDrops(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TotalBufferBytes = 2500
	r := newRig(t, cfg)
	r.sw.EgressAt(1).Pause(packet.ClassLossless, packet.MaxPauseQuanta)
	for i := 0; i < 5; i++ {
		r.sw.Receive(r.dataTo(r.tp.Node(r.h2).IP, 1000), 0)
	}
	if r.sw.Drops != 3 {
		t.Fatalf("drops = %d, want 3 with a 2.5 KB buffer", r.sw.Drops)
	}
	if r.sw.MaxBufferUse > 2500 {
		t.Fatalf("buffer exceeded limit: %d", r.sw.MaxBufferUse)
	}
}

// instrSpy records instrumentation callbacks.
type instrSpy struct {
	enq []EnqueueEvent
	deq []DequeueEvent
	pfc int
}

func (s *instrSpy) OnEnqueue(ev EnqueueEvent)             { s.enq = append(s.enq, ev) }
func (s *instrSpy) OnDequeue(ev DequeueEvent)             { s.deq = append(s.deq, ev) }
func (s *instrSpy) OnPFC(int, *packet.PFCFrame, sim.Time) { s.pfc++ }

func TestInstrumentationEvents(t *testing.T) {
	r := newRig(t, DefaultConfig())
	spy := &instrSpy{}
	r.sw.AddInstrument(spy)
	r.sw.EgressAt(1).Pause(packet.ClassLossless, 1000)
	r.sw.Receive(r.dataTo(r.tp.Node(r.h2).IP, 1000), 0)
	if len(spy.enq) != 1 || !spy.enq[0].Paused {
		t.Fatalf("enqueue events: %+v", spy.enq)
	}
	if spy.enq[0].QueueBytes != 1000 || spy.enq[0].InPort != 0 || spy.enq[0].OutPort != 1 {
		t.Fatalf("enqueue metadata: %+v", spy.enq[0])
	}
	r.eng.RunAll()
	if len(spy.deq) != 1 {
		t.Fatalf("dequeue events: %d", len(spy.deq))
	}
	pfc := &packet.Packet{Type: packet.TypePFC, Size: packet.PFCFrameSize, PFC: packet.NewPause(packet.ClassLossless, 10)}
	r.sw.Receive(pfc, 1)
	if spy.pfc != 1 {
		t.Fatalf("pfc events: %d", spy.pfc)
	}
}

func TestRouteForMatchesDataPath(t *testing.T) {
	r := newRig(t, DefaultConfig())
	ft := packet.FiveTuple{SrcIP: r.tp.Node(r.h1).IP, DstIP: r.tp.Node(r.h2).IP, SrcPort: 1, DstPort: 2, Proto: 17}
	out, ok := r.sw.RouteFor(ft)
	if !ok || out != 1 {
		t.Fatalf("RouteFor = %d,%v", out, ok)
	}
	if _, ok := r.sw.RouteFor(packet.FiveTuple{DstIP: 0xBAD}); ok {
		t.Fatal("bogus destination routed")
	}
}

func TestPollingDefaultFollowsVictimRoute(t *testing.T) {
	// Without a PollHandler (baseline switches), polling packets follow
	// the victim's route.
	r := newRig(t, DefaultConfig())
	victim := packet.FiveTuple{SrcIP: r.tp.Node(r.h1).IP, DstIP: r.tp.Node(r.h2).IP, SrcPort: 1, DstPort: 2, Proto: 17}
	poll := &packet.Packet{
		Type: packet.TypePolling, Class: packet.ClassControl, Size: packet.PollingPacketSize,
		Poll: &packet.PollingHeader{Flag: packet.FlagVictimPath, Victim: victim, HopsLow: 4},
	}
	r.sw.Receive(poll, 0)
	r.eng.RunAll()
	if len(r.rx2.got) != 1 || r.rx2.got[0].Type != packet.TypePolling {
		t.Fatalf("polling not forwarded: %d", len(r.rx2.got))
	}
}

func TestDropQueuedReleasesAccountingAndResumes(t *testing.T) {
	r := newRig(t, DefaultConfig())
	// Pause the egress toward h2, then pump enough ingress from h1 (port 0)
	// to cross Xoff so the switch pauses the upstream.
	r.sw.EgressAt(1).Pause(packet.ClassLossless, packet.MaxPauseQuanta)
	dst := r.tp.Node(r.h2).IP
	pkts := r.sw.Cfg.XoffBytes/1000 + 2
	for i := 0; i < pkts; i++ {
		r.sw.EnqueueAt(r.dataTo(dst, 1000), 0, 1)
	}
	r.eng.Run(50 * sim.Microsecond)
	if !r.sw.PauseAsserted(0, packet.ClassLossless) {
		t.Fatal("setup: upstream pause not asserted")
	}
	before := r.sw.BufferUsed()
	if before == 0 {
		t.Fatal("setup: nothing buffered")
	}

	dropped := r.sw.DropQueued(1, packet.ClassLossless)
	if dropped != pkts {
		t.Fatalf("dropped %d, want %d", dropped, pkts)
	}
	if r.sw.BufferUsed() != 0 {
		t.Fatalf("shared buffer not released: %d bytes", r.sw.BufferUsed())
	}
	if r.sw.IngressBytes(0, packet.ClassLossless) != 0 {
		t.Fatal("ingress accounting not released")
	}
	if r.sw.PauseAsserted(0, packet.ClassLossless) {
		t.Fatal("upstream still paused after the flush emptied its ingress")
	}
	if r.sw.WatchdogDrops != uint64(pkts) {
		t.Fatalf("WatchdogDrops = %d, want %d", r.sw.WatchdogDrops, pkts)
	}
	if r.sw.EgressAt(1).QueuePackets(packet.ClassLossless) != 0 {
		t.Fatal("queue not emptied")
	}
}

func TestWatchdogDropFilterDiscardsArrivals(t *testing.T) {
	r := newRig(t, DefaultConfig())
	dst := r.tp.Node(r.h2).IP
	r.sw.SetWatchdogDrop(1, packet.ClassLossless, true)
	r.sw.EnqueueAt(r.dataTo(dst, 1000), 0, 1)
	if r.sw.WatchdogDrops != 1 {
		t.Fatalf("WatchdogDrops = %d, want 1", r.sw.WatchdogDrops)
	}
	if r.sw.BufferUsed() != 0 || r.sw.IngressBytes(0, packet.ClassLossless) != 0 {
		t.Fatal("discarded arrival leaked into accounting")
	}
	// Other (port, class) pairs unaffected; lifting the filter restores
	// normal forwarding.
	r.sw.SetWatchdogDrop(1, packet.ClassLossless, false)
	r.sw.EnqueueAt(r.dataTo(dst, 1000), 0, 1)
	r.eng.RunAll()
	if len(r.rx2.got) != 1 {
		t.Fatalf("post-restore delivery count %d, want 1", len(r.rx2.got))
	}
}

package spidermon

import (
	"testing"

	"hawkeye/internal/cluster"
	"hawkeye/internal/packet"
	"hawkeye/internal/sim"
	"hawkeye/internal/topo"
	"hawkeye/internal/workload"
)

func chainWithSpiderMon(t *testing.T, cfg Config) (*cluster.Cluster, *topo.Dumbbell, map[topo.NodeID]*Instrument, *[]Trigger) {
	t.Helper()
	d, err := topo.NewChain(3, 3, topo.DefaultBandwidth, topo.DefaultDelay)
	if err != nil {
		t.Fatal(err)
	}
	r := topo.ComputeRouting(d.Topology)
	cl := cluster.New(d.Topology, r, cluster.DefaultConfig(d.Topology))
	var triggers []Trigger
	ins := InstallAll(cl.Switches, cfg, cl.Eng.Now, func(tr Trigger) { triggers = append(triggers, tr) })
	return cl, d, ins, &triggers
}

func TestCumulativeDelayAccumulates(t *testing.T) {
	cl, d, ins, _ := chainWithSpiderMon(t, DefaultConfig())
	// Two line-rate senders into one receiver build a real queue; the
	// receiver-side packets must carry non-zero cumulative delay.
	dst := d.HostsAt[2][0]
	cl.StartFlow(d.HostsAt[0][0], dst, 500_000, 0)
	cl.StartFlow(d.HostsAt[0][1], dst, 500_000, 0)
	cl.Run(5 * sim.Millisecond)
	var total uint64
	for _, in := range ins {
		total += in.InBandBytes
	}
	if total == 0 {
		t.Fatal("no in-band bytes recorded")
	}
	// 2 B per data packet per hop: 1000 packets x 3 switch hops x 2 flows.
	if total < 2*2*1000 {
		t.Fatalf("in-band bytes = %d, implausibly low", total)
	}
}

func TestTriggerOnCongestedFlow(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Threshold = 10 * sim.Microsecond
	cl, d, _, triggers := chainWithSpiderMon(t, cfg)
	dst := d.HostsAt[2][0]
	victim := cl.StartFlow(d.HostsAt[0][0], dst, 300_000, 0)
	cl.StartFlow(d.HostsAt[0][1], dst, 1_000_000, 0)
	cl.StartFlow(d.HostsAt[1][0], dst, 1_000_000, 0)
	cl.Run(10 * sim.Millisecond)
	found := false
	for _, tr := range *triggers {
		if tr.Victim == victim.Tuple {
			found = true
			if tr.DelayNS < cfg.Threshold {
				t.Fatalf("trigger below threshold: %v", tr.DelayNS)
			}
			// The delivery point is the receiver's ToR.
			if tr.Switch != d.Switches[2] {
				t.Fatalf("trigger at switch %v, want the last hop %v", tr.Switch, d.Switches[2])
			}
		}
	}
	if !found {
		t.Fatal("congested flow never triggered")
	}
}

func TestDedupSuppressesRepeats(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Threshold = 5 * sim.Microsecond
	cfg.Dedup = 100 * sim.Millisecond // effectively once per flow
	cl, d, _, triggers := chainWithSpiderMon(t, cfg)
	dst := d.HostsAt[2][0]
	cl.StartFlow(d.HostsAt[0][0], dst, 2_000_000, 0)
	cl.StartFlow(d.HostsAt[0][1], dst, 2_000_000, 0)
	cl.Run(20 * sim.Millisecond)
	perFlow := map[packet.FiveTuple]int{}
	for _, tr := range *triggers {
		perFlow[tr.Victim]++
	}
	for f, n := range perFlow {
		if n > 1 {
			t.Fatalf("flow %v triggered %d times within one dedup window", f, n)
		}
	}
}

func TestCounterSaturates(t *testing.T) {
	// A packet delayed > 4.2 ms clips at the 16-bit max instead of
	// wrapping to a small (healthy-looking) value.
	cl, d, ins, _ := chainWithSpiderMon(t, DefaultConfig())
	sw := cl.Switches[d.Switches[0]]
	// Find the port toward switch 1 and pause it for a long time.
	var upPort int
	for p := 0; p < sw.NumPorts(); p++ {
		if peer, _ := d.Topology.PeerOf(sw.ID, p); peer == d.Switches[1] {
			upPort = p
		}
	}
	for at := sim.Time(0); at < 6*sim.Millisecond; at += 200 * sim.Microsecond {
		at := at
		cl.Eng.At(at, func() {
			sw.EgressAt(upPort).Pause(packet.ClassLossless, packet.MaxPauseQuanta)
		})
	}
	cl.Eng.At(6100*sim.Microsecond, func() { sw.EgressAt(upPort).Resume(packet.ClassLossless) })
	cl.StartFlow(d.HostsAt[0][0], d.HostsAt[1][0], 2_000, 0)
	cl.Run(20 * sim.Millisecond)
	var saturated uint64
	for _, in := range ins {
		saturated += in.Saturated
	}
	if saturated == 0 {
		t.Fatal("6 ms stall did not saturate the 16-bit counter")
	}
}

// TestStormBlindness demonstrates §2's criticism mechanically: during a
// PFC storm the victim's packets stop being DELIVERED, so the in-band
// counters go quiet exactly while the anomaly is live — and nothing
// SpiderMon collected says "pause" or points at the injector.
func TestStormBlindness(t *testing.T) {
	ft, err := topo.NewFatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	r := topo.ComputeRouting(ft.Topology)
	cl := cluster.New(ft.Topology, r, cluster.DefaultConfig(ft.Topology))
	var triggers []Trigger
	InstallAll(cl.Switches, DefaultConfig(), cl.Eng.Now, func(tr Trigger) { triggers = append(triggers, tr) })

	params := workload.DefaultParams(131072)
	gt := workload.BuildStorm(cl, ft, params)
	cl.Run(gt.AnomalyAt + 10*sim.Millisecond)

	// The stall is pure host PFC with NO queue buildup beforehand: the
	// senders are rate-capped below the rogue's link. SpiderMon's only
	// signal would be a delivered packet with a huge accumulated delay,
	// which exists only if a stalled packet eventually gets through; the
	// injection outlives the horizon, so the victims produce no usable
	// trigger while Hawkeye's agent (RTT/timeout on the SENDER side)
	// catches it — see core's end-to-end storm test.
	for _, tr := range triggers {
		if gt.Victims[tr.Victim] && tr.At >= gt.AnomalyAt {
			t.Fatalf("in-band counters triggered on a victim during the storm at %v — "+
				"the storm should be invisible to delivered-packet telemetry", tr.At)
		}
	}
}

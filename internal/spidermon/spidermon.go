// Package spidermon implements SpiderMon's in-band telemetry mechanism
// for real: every packet carries a 16-bit cumulative queuing-delay
// counter (units of 64 ns) that each switch increments at dequeue; the
// last-hop switch compares the accumulated delay against an expectation
// and raises a trigger when the packet arrives "too late". This is the
// wait-detection half of SpiderMon; the collection half (victim-path
// counters, no PFC visibility) is modelled by baselines.KindSpiderMon's
// report view.
//
// Implementing the mechanism — rather than only its cost model — lets the
// repository demonstrate the paper's §2 criticism mechanically: in-band
// counters only see packets that ARRIVE. A PFC-stalled flow stops
// producing samples exactly when the anomaly starts, and the counters say
// nothing about why the wait happened or where the pause came from.
package spidermon

import (
	"hawkeye/internal/device"
	"hawkeye/internal/packet"
	"hawkeye/internal/sim"
	"hawkeye/internal/topo"
)

// DelayUnit is the granularity of the in-band counter: 64 ns fits a
// 16-bit field for delays up to ~4.2 ms, as the SpiderMon paper sizes it.
const DelayUnit = 64 * sim.Nanosecond

// delayMax saturates the 16-bit counter.
const delayMax = 0xFFFF

// HeaderBytes is the per-packet in-band overhead (2 B at every hop).
const HeaderBytes = 2

// Trigger is one SpiderMon wait-detection event.
type Trigger struct {
	Victim packet.FiveTuple
	// Switch/Port is the delivery point that flagged the packet.
	Switch topo.NodeID
	Port   int
	// DelayNS is the accumulated queuing delay carried by the packet.
	DelayNS sim.Time
	At      sim.Time
}

// Config tunes the detector.
type Config struct {
	// Threshold is the cumulative queuing delay above which a delivered
	// packet counts as anomalous.
	Threshold sim.Time
	// Dedup suppresses repeat triggers for the same flow within the
	// window.
	Dedup sim.Time
}

// DefaultConfig mirrors the detection operating point used for the
// Hawkeye agent: ~2x a quiet fat-tree RTT of queuing is anomalous.
func DefaultConfig() Config {
	return Config{Threshold: 50 * sim.Microsecond, Dedup: 500 * sim.Microsecond}
}

// Instrument is the per-switch SpiderMon logic. It implements
// device.Instrument: attach with sw.AddInstrument.
type Instrument struct {
	sw  *device.Switch
	cfg Config
	now func() sim.Time

	// OnTrigger observes wait-detection events at delivery points.
	OnTrigger func(Trigger)

	lastTrigger map[packet.FiveTuple]sim.Time

	// InBandBytes counts the in-band header bytes this switch added
	// (2 B per forwarded packet) — the measured counterpart of the
	// overhead model.
	InBandBytes uint64
	// Saturated counts packets whose counter clipped at the 16-bit max.
	Saturated uint64
}

// Attach installs SpiderMon logic on a switch.
func Attach(sw *device.Switch, cfg Config, now func() sim.Time) *Instrument {
	in := &Instrument{sw: sw, cfg: cfg, now: now, lastTrigger: make(map[packet.FiveTuple]sim.Time)}
	sw.AddInstrument(in)
	return in
}

// OnEnqueue implements device.Instrument (SpiderMon acts at dequeue).
func (in *Instrument) OnEnqueue(device.EnqueueEvent) {}

// OnPFC implements device.Instrument; SpiderMon has no PFC visibility —
// the frame passes by uninspected. This no-op IS the baseline's gap.
func (in *Instrument) OnPFC(int, *packet.PFCFrame, sim.Time) {}

// OnDequeue adds this hop's queuing delay to the packet's in-band counter
// and, at host-facing ports (the delivery point), applies the wait check.
func (in *Instrument) OnDequeue(ev device.DequeueEvent) {
	if ev.Pkt.Type != packet.TypeData {
		return
	}
	delay := ev.Now - ev.EnqueuedAt
	units := uint32(delay / DelayUnit)
	if sum := uint32(ev.Pkt.CumDelay) + units; sum >= delayMax {
		ev.Pkt.CumDelay = delayMax
		in.Saturated++
	} else {
		ev.Pkt.CumDelay = uint16(sum)
	}
	in.InBandBytes += HeaderBytes

	if !in.sw.IsHostFacing(ev.OutPort) {
		return
	}
	total := sim.Time(ev.Pkt.CumDelay) * DelayUnit
	if total < in.cfg.Threshold {
		return
	}
	now := in.now()
	if last, ok := in.lastTrigger[ev.Pkt.Flow]; ok && now-last < in.cfg.Dedup {
		return
	}
	in.lastTrigger[ev.Pkt.Flow] = now
	if in.OnTrigger != nil {
		in.OnTrigger(Trigger{
			Victim:  ev.Pkt.Flow,
			Switch:  in.sw.ID,
			Port:    ev.OutPort,
			DelayNS: total,
			At:      now,
		})
	}
}

// InstallAll attaches SpiderMon to every switch in the map and funnels
// triggers to one callback. Returns the instruments keyed by switch.
func InstallAll(switches map[topo.NodeID]*device.Switch, cfg Config, now func() sim.Time, onTrigger func(Trigger)) map[topo.NodeID]*Instrument {
	out := make(map[topo.NodeID]*Instrument, len(switches))
	for id, sw := range switches {
		in := Attach(sw, cfg, now)
		in.OnTrigger = onTrigger
		out[id] = in
	}
	return out
}

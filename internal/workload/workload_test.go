package workload

import (
	"testing"
	"testing/quick"

	"hawkeye/internal/cluster"
	"hawkeye/internal/diagnosis"
	"hawkeye/internal/sim"
	"hawkeye/internal/topo"
)

func TestCDFValidation(t *testing.T) {
	if _, err := NewSizeCDF(nil); err == nil {
		t.Fatal("empty CDF accepted")
	}
	if _, err := NewSizeCDF([]CDFPoint{{100, 0.5}, {200, 0.9}}); err == nil {
		t.Fatal("CDF not ending at 1 accepted")
	}
	if _, err := NewSizeCDF([]CDFPoint{{100, 0.5}, {50, 1.0}}); err == nil {
		t.Fatal("non-monotone sizes accepted")
	}
	if _, err := NewSizeCDF([]CDFPoint{{100, 0.5}, {200, 0.4}, {300, 1.0}}); err == nil {
		t.Fatal("non-monotone probabilities accepted")
	}
}

func TestPaperCDFShape(t *testing.T) {
	// Verify the §4.1 quantiles at paper scale: <80% of flows under
	// 10 MB, <90% under 100 MB, ~10% in 100-300 MB.
	cdf := PaperCDF(1)
	rng := sim.NewRand(7)
	const n = 50000
	var under10M, under100M, tail int
	for i := 0; i < n; i++ {
		s := cdf.Sample(rng)
		if s <= 10_000_000 {
			under10M++
		}
		if s <= 100_000_000 {
			under100M++
		}
		if s > 100_000_000 {
			tail++
		}
	}
	if f := float64(under10M) / n; f < 0.75 || f > 0.85 {
		t.Errorf("P(<=10MB) = %.3f, want ~0.80", f)
	}
	if f := float64(under100M) / n; f < 0.85 || f > 0.95 {
		t.Errorf("P(<=100MB) = %.3f, want ~0.90", f)
	}
	if f := float64(tail) / n; f < 0.05 || f > 0.15 {
		t.Errorf("P(>100MB) = %.3f, want ~0.10", f)
	}
}

func TestCDFSampleWithinRangeProperty(t *testing.T) {
	cdf := PaperCDF(DefaultScaleDivisor)
	f := func(seed uint64) bool {
		s := cdf.Sample(sim.NewRand(seed))
		return s >= 1000 && s <= 3_000_000
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCDFMeanPositive(t *testing.T) {
	if m := PaperCDF(DefaultScaleDivisor).Mean(); m <= 0 {
		t.Fatalf("mean = %v", m)
	}
}

func TestBackgroundLoadScaling(t *testing.T) {
	ft, err := topo.NewFatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	r := topo.ComputeRouting(ft.Topology)
	cl := cluster.New(ft.Topology, r, cluster.DefaultConfig(ft.Topology))
	bg := &Background{Load: 0.1, CDF: PaperCDF(DefaultScaleDivisor), Start: 0, Stop: 10 * sim.Millisecond}
	n := bg.Install(cl, sim.NewRand(3))
	if n == 0 {
		t.Fatal("no background flows")
	}
	// Expected count = load * hosts * bw * T / meanBits, within 3x.
	expected := 0.1 * 16 * 100e9 * 0.010 / (bg.CDF.Mean() * 8)
	if float64(n) < expected/3 || float64(n) > expected*3 {
		t.Fatalf("flow count %d, expected ~%.0f", n, expected)
	}
	// Double load, roughly double flows.
	cl2 := cluster.New(ft.Topology, r, cluster.DefaultConfig(ft.Topology))
	bg2 := &Background{Load: 0.2, CDF: bg.CDF, Start: 0, Stop: 10 * sim.Millisecond}
	n2 := bg2.Install(cl2, sim.NewRand(3))
	if float64(n2) < 1.5*float64(n) {
		t.Fatalf("load scaling broken: %d vs %d", n, n2)
	}
}

func TestScenarioRegistry(t *testing.T) {
	for _, name := range AllScenarios() {
		if _, err := ByName(name); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := ByName("nonsense"); err == nil {
		t.Error("unknown scenario resolved")
	}
}

func TestScenarioGroundTruthShape(t *testing.T) {
	// Every builder must produce a well-formed ground truth without
	// running the simulation.
	ft, err := topo.NewFatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range AllScenarios() {
		build, _ := ByName(name)
		r := topo.ComputeRouting(ft.Topology)
		cl := cluster.New(ft.Topology, r, cluster.DefaultConfig(ft.Topology))
		gt := build(cl, ft, DefaultParams(131072))
		if gt.Scenario != name {
			t.Errorf("%s: scenario label %q", name, gt.Scenario)
		}
		if len(gt.Victims) == 0 {
			t.Errorf("%s: no victims", name)
		}
		if len(gt.CausalSwitches) == 0 {
			t.Errorf("%s: no causal switches", name)
		}
		if gt.AnomalyAt <= 0 {
			t.Errorf("%s: anomaly at %v", name, gt.AnomalyAt)
		}
		switch gt.Type {
		case diagnosis.TypePFCStorm, diagnosis.TypeOutLoopDeadlockInjection:
			if gt.Injector == 0 {
				t.Errorf("%s: injection scenario without injector", name)
			}
		default:
			if len(gt.Culprits) == 0 {
				t.Errorf("%s: contention scenario without culprits", name)
			}
		}
	}
}

func TestAnomalyStartEpochAligned(t *testing.T) {
	p := DefaultParams(131072)
	at := p.AnomalyStart()
	if (at-sim.Microsecond)%131072 != 0 {
		t.Fatalf("anomaly start %v not epoch-aligned", at)
	}
	if at <= p.WarmUp {
		t.Fatalf("anomaly start %v before warm-up end %v", at, p.WarmUp)
	}
	if p.warmStart() >= at {
		t.Fatal("warm start after anomaly")
	}
}

func TestCBDMisconfigurationCreatesValley(t *testing.T) {
	// The deadlock builders must install an up-after-down route: verify a
	// cycle flow's path revisits the core layer.
	ft, _ := topo.NewFatTree(4)
	r := topo.ComputeRouting(ft.Topology)
	cl := cluster.New(ft.Topology, r, cluster.DefaultConfig(ft.Topology))
	build, _ := ByName(NameInLoop)
	gt := build(cl, ft, DefaultParams(131072))
	cores := map[topo.NodeID]bool{}
	for _, c := range ft.Core {
		cores[c] = true
	}
	valley := false
	for v := range gt.Victims {
		src, _ := cl.Topo.HostByIP(v.SrcIP)
		dst, _ := cl.Topo.HostByIP(v.DstIP)
		path, err := cl.Routing.Path(src, dst, v.Hash())
		if err != nil {
			continue
		}
		coreHits := 0
		for _, n := range path {
			if cores[n] {
				coreHits++
			}
		}
		if coreHits >= 2 {
			valley = true
		}
	}
	if !valley {
		t.Fatal("no cycle flow crosses the core layer twice (CBD misconfig missing)")
	}
}

func TestAlternateCDFs(t *testing.T) {
	rng := sim.NewRand(3)
	for _, name := range []string{"paper", "websearch", "hadoop"} {
		c, err := CDFByName(name, DefaultScaleDivisor)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if c.Mean() <= 0 {
			t.Fatalf("%s: non-positive mean", name)
		}
		for i := 0; i < 200; i++ {
			if s := c.Sample(rng); s < 1000 {
				t.Fatalf("%s: sample %d below the 1KB floor", name, s)
			}
		}
	}
	if _, err := CDFByName("nope", 1); err == nil {
		t.Fatal("unknown CDF accepted")
	}
	// At divisor 1 the distributions keep their published means apart:
	// hadoop (RPC-heavy) << websearch << paper (industrial RDMA).
	h := HadoopCDF(1).Mean()
	w := WebSearchCDF(1).Mean()
	p := PaperCDF(1).Mean()
	if !(h < w && w < p) {
		t.Fatalf("mean ordering violated: hadoop=%.0f websearch=%.0f paper=%.0f", h, w, p)
	}
}

func TestScaledCDFCollapsesFlooredPoints(t *testing.T) {
	// With an aggressive divisor, hadoop's small points all floor to 1 KB;
	// the CDF must stay strictly monotone (NewSizeCDF would reject
	// duplicates).
	c := HadoopCDF(1000)
	rng := sim.NewRand(1)
	for i := 0; i < 100; i++ {
		if s := c.Sample(rng); s < 1000 {
			t.Fatalf("sample %d below floor", s)
		}
	}
}

// Host-side anomaly scenarios: the pathological endpoint looks, from the
// fabric, exactly like BuildStorm's rogue — a host-facing port under
// sustained PFC with no flow contention behind it. Only the host-agent
// counter channel lets the diagnoser tell a slow receiver from a
// thrashing NIC from spurious pause injection. Senders are deliberately
// symmetric (same rate, same start) so their contention contributions
// cancel and the walk terminates in the injection branch, as in the real
// pathologies: the traffic is innocent, the endpoint is not.
package workload

import (
	"hawkeye/internal/cluster"
	"hawkeye/internal/diagnosis"
	"hawkeye/internal/host"
	"hawkeye/internal/packet"
	"hawkeye/internal/sim"
	"hawkeye/internal/topo"
)

// Host scenario names.
const (
	NameSlowReceiver   = "host-slow-receiver"
	NameCacheThrash    = "host-cache-thrash"
	NameHostPauseStorm = "host-pause-storm"
)

// hostGT builds the common ground truth of the host scenarios: the sick
// host is pod1's first host (as in BuildStorm), the anomaly is a PFC
// storm whose refined cause is the installed pathology.
func hostGT(name string, ft *topo.FatTree, p Params, cause diagnosis.CauseKind) (*GroundTruth, topo.NodeID) {
	sick := ft.PodHosts[1][0]
	gt := &GroundTruth{
		Scenario:        name,
		Type:            diagnosis.TypePFCStorm,
		HostCause:       cause,
		Injector:        sick,
		InitialSwitches: map[topo.NodeID]bool{ft.Edge[1][0]: true},
		CausalSwitches:  make(map[topo.NodeID]bool),
		Victims:         make(map[packet.FiveTuple]bool),
		AnomalyAt:       p.AnomalyStart(),
	}
	// The pathologies ramp: a slow receiver's RX buffer needs tens of
	// microseconds at the drain deficit to cross XOFF, and until it does
	// the fabric sees ordinary transient congestion. A trigger racing
	// that ramp sees a host snapshot with PauseTx=0 and grades the
	// transitional state; score the matured form, as the deadlock
	// scenarios do.
	gt.ScoreAfter = gt.AnomalyAt + 300*sim.Microsecond
	return gt, sick
}

// installPathology arms the pathology on the sick host for the anomaly
// window, deriving the pathology's jitter stream from the cluster seed
// so a trial is reproducible from its seed alone.
func installPathology(cl *cluster.Cluster, sick topo.NodeID, kind host.PathologyKind, gt *GroundTruth, p Params) {
	cfg := host.DefaultPathologyConfig(kind)
	cfg.Seed = cl.Cfg.Seed ^ (0x505AB10C00 + uint64(kind))
	cfg.Start = gt.AnomalyAt
	cfg.Stop = gt.AnomalyAt + p.InjectFor
	cl.Hosts[sick].InstallPathology(cfg)
}

// BuildSlowReceiver models the PCIe/DMA-bottlenecked endpoint: three
// remote senders offer 75G — comfortably under the 100G link, so the
// fabric is anomaly-free — while the sick host drains at 20G. The RX
// buffer fills, the NIC asserts sustained PFC, and the fabric sees a
// storm whose true cause is the receiver.
func BuildSlowReceiver(cl *cluster.Cluster, ft *topo.FatTree, p Params) *GroundTruth {
	gt, sick := hostGT(NameSlowReceiver, ft, p, diagnosis.CauseSlowReceiver)
	installPathology(cl, sick, host.PathologySlowReceiver, gt, p)
	for _, src := range []topo.NodeID{ft.PodHosts[0][0], ft.PodHosts[0][1], ft.PodHosts[3][1]} {
		f := cl.StartFlowRate(src, sick, 40_000_000, p.warmStart(), 25e9)
		gt.Victims[f.Tuple] = true
		pathSwitches(cl, f, sick, gt.CausalSwitches)
	}
	return gt
}

// BuildCacheThrash models the connection-cache-thrashing NIC: six QPs of
// fan-in push per-packet processing latency from 150 ns to ~1 µs, the
// effective drain collapses below the offered 72G, and the buffer-driven
// PFC is indistinguishable on the wire from the slow receiver — the
// discriminant is the latency proxy and QP count in the host report.
func BuildCacheThrash(cl *cluster.Cluster, ft *topo.FatTree, p Params) *GroundTruth {
	gt, sick := hostGT(NameCacheThrash, ft, p, diagnosis.CauseHostProcessingBound)
	installPathology(cl, sick, host.PathologyCacheThrash, gt, p)
	srcs := []topo.NodeID{
		ft.PodHosts[0][0], ft.PodHosts[0][1], ft.PodHosts[0][2],
		ft.PodHosts[3][0], ft.PodHosts[3][1], ft.PodHosts[3][2],
	}
	for _, src := range srcs {
		f := cl.StartFlowRate(src, sick, 30_000_000, p.warmStart(), 12e9)
		gt.Victims[f.Tuple] = true
		pathSwitches(cl, f, sick, gt.CausalSwitches)
	}
	return gt
}

// BuildHostPauseStorm is BuildStorm re-expressed through the pathology
// layer: spurious seed-jittered pause bursts decoupled from buffer state.
// The host report's signature — pauses emitted, RX buffer empty — is what
// separates it from the legitimate backpressure of the other two.
func BuildHostPauseStorm(cl *cluster.Cluster, ft *topo.FatTree, p Params) *GroundTruth {
	gt, sick := hostGT(NameHostPauseStorm, ft, p, diagnosis.CauseHostPauseStorm)
	installPathology(cl, sick, host.PathologyPauseStorm, gt, p)
	for _, src := range []topo.NodeID{ft.PodHosts[0][0], ft.PodHosts[0][1], ft.PodHosts[3][1]} {
		f := cl.StartFlowRate(src, sick, 40_000_000, p.warmStart(), 25e9)
		gt.Victims[f.Tuple] = true
		pathSwitches(cl, f, sick, gt.CausalSwitches)
	}
	return gt
}

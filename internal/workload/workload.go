// Package workload generates the evaluation traffic (§4.1): an empirical
// long-tailed RoCEv2 flow-size distribution, Poisson flow arrivals scaled
// to a target link load, random host pairs, and the five crafted anomaly
// scenarios (incast backpressure, PFC storm, in-/out-of-loop deadlock,
// normal contention) with machine-checkable ground truth.
package workload

import (
	"fmt"
	"sort"

	"hawkeye/internal/cluster"
	"hawkeye/internal/sim"
	"hawkeye/internal/topo"
)

// CDFPoint maps a flow size (bytes) to a cumulative probability.
type CDFPoint struct {
	Bytes int64
	Prob  float64
}

// SizeCDF is a piecewise-linear flow-size distribution sampled by inverse
// transform.
type SizeCDF struct {
	points []CDFPoint
}

// NewSizeCDF validates and builds a CDF. Points must be sorted by
// probability, start above 0 and end at 1.
func NewSizeCDF(points []CDFPoint) (*SizeCDF, error) {
	if len(points) < 2 {
		return nil, fmt.Errorf("workload: CDF needs >= 2 points")
	}
	if points[len(points)-1].Prob != 1 {
		return nil, fmt.Errorf("workload: CDF must end at prob 1")
	}
	for i := 1; i < len(points); i++ {
		if points[i].Prob <= points[i-1].Prob || points[i].Bytes < points[i-1].Bytes {
			return nil, fmt.Errorf("workload: CDF not monotone at %d", i)
		}
	}
	return &SizeCDF{points: points}, nil
}

// Sample draws a flow size.
func (c *SizeCDF) Sample(rng *sim.Rand) int64 {
	u := rng.Float64()
	idx := sort.Search(len(c.points), func(i int) bool { return c.points[i].Prob >= u })
	if idx == 0 {
		return c.points[0].Bytes
	}
	if idx >= len(c.points) {
		return c.points[len(c.points)-1].Bytes
	}
	lo, hi := c.points[idx-1], c.points[idx]
	frac := (u - lo.Prob) / (hi.Prob - lo.Prob)
	return lo.Bytes + int64(frac*float64(hi.Bytes-lo.Bytes))
}

// Mean returns the distribution mean (for arrival-rate scaling).
func (c *SizeCDF) Mean() float64 {
	mean := 0.0
	prev := CDFPoint{Bytes: c.points[0].Bytes, Prob: 0}
	for _, p := range c.points {
		mean += (p.Prob - prev.Prob) * float64(p.Bytes+prev.Bytes) / 2
		prev = p
	}
	return mean
}

// PaperCDF reproduces the §4.1 industrial distribution shape —
// "<80% of flows are smaller than 10 MB, <90% smaller than 100 MB, about
// 10% between 100 MB and 300 MB" — scaled down by the given divisor so a
// trace stays laptop-runnable at packet granularity (the distribution
// SHAPE, which is what the diagnosis results depend on, is preserved).
// The paper's scale corresponds to divisor 1.
func PaperCDF(divisor int64) *SizeCDF {
	if divisor < 1 {
		divisor = 1
	}
	d := func(b int64) int64 {
		v := b / divisor
		if v < 1000 {
			v = 1000
		}
		return v
	}
	c, err := NewSizeCDF([]CDFPoint{
		{d(10_000), 0.15},
		{d(100_000), 0.40},
		{d(1_000_000), 0.60},
		{d(10_000_000), 0.80},
		{d(100_000_000), 0.90},
		{d(300_000_000), 1.00},
	})
	if err != nil {
		panic(err) // static table
	}
	return c
}

// DefaultScaleDivisor keeps the largest flows near 3 MB (~3k packets).
const DefaultScaleDivisor = 100

// WebSearchCDF is the DCTCP web-search distribution widely used in this
// literature (query/response traffic; heavy 1-30 MB tail), scaled by
// divisor like PaperCDF.
func WebSearchCDF(divisor int64) *SizeCDF {
	return scaledCDF(divisor, []CDFPoint{
		{6_000, 0.15},
		{13_000, 0.30},
		{19_000, 0.50},
		{33_000, 0.60},
		{53_000, 0.70},
		{133_000, 0.80},
		{667_000, 0.90},
		{1_333_000, 0.95},
		{30_000_000, 1.00},
	})
}

// HadoopCDF is the Facebook Hadoop-cluster distribution (mostly tiny
// RPCs with a moderate tail), scaled by divisor like PaperCDF.
func HadoopCDF(divisor int64) *SizeCDF {
	return scaledCDF(divisor, []CDFPoint{
		{300, 0.30},
		{1_000, 0.50},
		{2_000, 0.70},
		{10_000, 0.80},
		{100_000, 0.90},
		{1_000_000, 0.95},
		{10_000_000, 1.00},
	})
}

// CDFByName resolves a distribution for the CLI tools.
func CDFByName(name string, divisor int64) (*SizeCDF, error) {
	switch name {
	case "paper", "":
		return PaperCDF(divisor), nil
	case "websearch":
		return WebSearchCDF(divisor), nil
	case "hadoop":
		return HadoopCDF(divisor), nil
	}
	return nil, fmt.Errorf("workload: unknown CDF %q (paper, websearch, hadoop)", name)
}

// scaledCDF applies the divisor with a 1 KB floor and collapses points
// that the floor made equal (small sizes all floor to 1 KB).
func scaledCDF(divisor int64, points []CDFPoint) *SizeCDF {
	if divisor < 1 {
		divisor = 1
	}
	var out []CDFPoint
	for _, p := range points {
		b := p.Bytes / divisor
		if b < 1000 {
			b = 1000
		}
		if n := len(out); n > 0 && out[n-1].Bytes == b {
			out[n-1].Prob = p.Prob // merge: keep the higher probability
			continue
		}
		out = append(out, CDFPoint{Bytes: b, Prob: p.Prob})
	}
	if len(out) == 1 {
		out = append([]CDFPoint{{Bytes: out[0].Bytes - 1, Prob: 0.5}}, out...)
	}
	c, err := NewSizeCDF(out)
	if err != nil {
		panic(err) // static tables
	}
	return c
}

// Background drives Poisson background traffic over a cluster.
type Background struct {
	// Load is the target average utilization of host links (0..1).
	Load float64
	// CDF is the flow size distribution.
	CDF *SizeCDF
	// Hosts restricts sources/destinations (nil = all cluster hosts).
	Hosts []topo.NodeID
	// Start/Stop bound the arrival process.
	Start, Stop sim.Time
}

// Install schedules the arrival process on the cluster and returns the
// number of flows that will be started (deterministic given rng).
func (b *Background) Install(cl *cluster.Cluster, rng *sim.Rand) int {
	hosts := b.Hosts
	if hosts == nil {
		hosts = cl.Topo.Hosts()
	}
	if len(hosts) < 2 || b.Load <= 0 {
		return 0
	}
	// Aggregate arrival rate: load * total host bandwidth / mean size.
	meanBits := b.CDF.Mean() * 8
	ratePerNS := b.Load * cl.Topo.LinkBandwidth * float64(len(hosts)) / meanBits / 1e9
	n := 0
	for t := b.Start; t < b.Stop; {
		gap := sim.Time(rng.ExpFloat64() / ratePerNS)
		if gap < 1 {
			gap = 1
		}
		t += gap
		if t >= b.Stop {
			break
		}
		src := hosts[rng.Intn(len(hosts))]
		dst := hosts[rng.Intn(len(hosts))]
		for dst == src {
			dst = hosts[rng.Intn(len(hosts))]
		}
		size := b.CDF.Sample(rng)
		cl.StartFlow(src, dst, size, t)
		n++
	}
	return n
}

// Anomaly scenario crafting (§4.1): each builder installs one anomaly on
// a fat-tree cluster and returns machine-checkable ground truth. The
// constructions mirror the paper's: synchronized micro-bursts through a
// shared port for PFC backpressure, continuous host PFC injection for
// storms, and routing misconfigurations forming a cyclic buffer
// dependency (CBD) across two pods' aggregation and core switches for
// the deadlock cases.
package workload

import (
	"fmt"

	"hawkeye/internal/cluster"
	"hawkeye/internal/diagnosis"
	"hawkeye/internal/host"
	"hawkeye/internal/packet"
	"hawkeye/internal/sim"
	"hawkeye/internal/topo"
)

// GroundTruth is the oracle the scorer compares diagnoses against.
type GroundTruth struct {
	Scenario string
	Type     diagnosis.AnomalyType
	// AltTypes are additionally accepted diagnosis types: graceful
	// degradations that still carry the correct root cause (the same
	// culprit/initial-point checks apply).
	AltTypes []diagnosis.AnomalyType
	// Culprits are the root-cause flows (contention cases).
	Culprits map[packet.FiveTuple]bool
	// Injector is the PFC-injecting host (injection cases).
	Injector topo.NodeID
	// HostCause is the refined host-side pathology behind the PFC
	// (host scenarios). CauseFlowContention — the zero value — means
	// the anomaly is not host-caused.
	HostCause diagnosis.CauseKind
	// InitialSwitches are the switches that may legitimately host the
	// initial congestion point (funnel effects can move it one hop).
	InitialSwitches map[topo.NodeID]bool
	// CausalSwitches is the full causally-relevant set: victim paths plus
	// the PFC spreading path (Fig. 11's coverage denominator).
	CausalSwitches map[topo.NodeID]bool
	// Victims are the flows entitled to trigger this diagnosis.
	Victims map[packet.FiveTuple]bool
	// AnomalyAt is when the anomaly begins.
	AnomalyAt sim.Time
	// ScoreAfter is when the anomaly has matured into its final form;
	// diagnoses triggered earlier are scored against the transitional
	// state. Deadlocks begin life as ordinary backpressure: the cycle
	// needs a few hundred microseconds to close (§2.1: "short-duration
	// flow contention then leads to a persistent deadlock").
	ScoreAfter sim.Time
}

// Params tunes scenario construction.
type Params struct {
	// EpochSize aligns burst starts to telemetry epoch boundaries
	// (Fig. 7 sweeps this; alignment is part of the epoch-size effect).
	EpochSize sim.Time
	// AnomalyEpoch is the epoch index in which the anomaly fires.
	AnomalyEpoch int
	// BurstBytes is the size of one micro-burst flow.
	BurstBytes int64
	// BurstRounds repeats the synchronized bursts to keep backpressure
	// alive long enough for detection.
	BurstRounds int
	// InjectFor is the PFC injection duration.
	InjectFor sim.Time
	// WarmUp is how long before the anomaly the victim flows start, so
	// their RTT baselines exist when the anomaly hits.
	WarmUp sim.Time
	// Horizon is the trace length (used to size long-lived flows).
	Horizon sim.Time
}

// DefaultParams returns the defaults used across the evaluation.
func DefaultParams(epoch sim.Time) Params {
	return Params{
		EpochSize:    epoch,
		AnomalyEpoch: 2,
		BurstBytes:   512_000,
		BurstRounds:  2,
		InjectFor:    20 * sim.Millisecond,
		WarmUp:       300 * sim.Microsecond,
		Horizon:      20 * sim.Millisecond,
	}
}

// AnomalyStart aligns the anomaly to just past an epoch boundary — the
// first boundary that leaves room for the warm-up. Alignment matters:
// an anomaly starting mid-epoch shares its telemetry epoch with
// pre-anomaly traffic, diluting the recorded queue depths (the epoch-size
// sensitivity Fig. 7 studies).
func (p Params) AnomalyStart() sim.Time {
	epoch := sim.Time(p.AnomalyEpoch)
	for epoch*p.EpochSize < p.WarmUp {
		epoch++
	}
	return epoch*p.EpochSize + sim.Microsecond
}

// warmStart is when victim flows begin: early enough to establish RTT
// baselines, late enough to still be running when the anomaly fires.
func (p Params) warmStart() sim.Time {
	at := p.AnomalyStart()
	if at <= p.WarmUp {
		return 0
	}
	return at - p.WarmUp
}

// Scenario names.
const (
	NameIncast        = "incast-backpressure"
	NameStorm         = "pfc-storm"
	NameInLoop        = "in-loop-deadlock"
	NameOutLoopInject = "out-of-loop-deadlock-injection"
	NameOutLoopBurst  = "out-of-loop-deadlock-contention"
	NameNormal        = "normal-contention"
)

// Builder installs a scenario on a fat-tree cluster.
type Builder func(cl *cluster.Cluster, ft *topo.FatTree, p Params) *GroundTruth

// ByName resolves a scenario builder.
func ByName(name string) (Builder, error) {
	switch name {
	case NameIncast:
		return BuildIncast, nil
	case NameStorm:
		return BuildStorm, nil
	case NameInLoop:
		return BuildInLoopDeadlock, nil
	case NameOutLoopInject:
		return BuildOutLoopInjection, nil
	case NameOutLoopBurst:
		return BuildOutLoopContention, nil
	case NameNormal:
		return BuildNormalContention, nil
	case NameSlowReceiver:
		return BuildSlowReceiver, nil
	case NameCacheThrash:
		return BuildCacheThrash, nil
	case NameHostPauseStorm:
		return BuildHostPauseStorm, nil
	}
	return nil, fmt.Errorf("workload: unknown scenario %q", name)
}

// AllScenarios lists the evaluation scenarios in paper order.
func AllScenarios() []string {
	return []string{NameIncast, NameStorm, NameInLoop, NameOutLoopInject, NameOutLoopBurst, NameNormal,
		NameSlowReceiver, NameCacheThrash, NameHostPauseStorm}
}

// HostScenarios lists the host-pathology scenarios.
func HostScenarios() []string {
	return []string{NameSlowReceiver, NameCacheThrash, NameHostPauseStorm}
}

// MixedScenarios interleaves network- and host-caused anomalies: the
// workload of the host-vs-network attribution evaluation.
func MixedScenarios() []string {
	return []string{NameIncast, NameSlowReceiver, NameStorm, NameCacheThrash, NameNormal, NameHostPauseStorm}
}

// pathSwitches collects the switches on a flow's path.
func pathSwitches(cl *cluster.Cluster, f *host.Flow, dst topo.NodeID, into map[topo.NodeID]bool) {
	src, _ := cl.Topo.HostByIP(f.Tuple.SrcIP)
	refs, err := cl.Routing.PortPath(src, dst, f.Tuple.Hash())
	if err != nil {
		return
	}
	for _, r := range refs {
		if cl.Topo.Node(r.Node).Kind == topo.KindSwitch {
			into[r.Node] = true
		}
	}
}

// BuildIncast reproduces Fig. 1(a): synchronized remote micro-bursts
// incast into one host's edge port; victims are flows that share paused
// links without ever traversing the congested port.
func BuildIncast(cl *cluster.Cluster, ft *topo.FatTree, p Params) *GroundTruth {
	target := ft.PodHosts[2][0]  // burst destination, under edge2-0
	sibling := ft.PodHosts[2][1] // same edge switch, different port

	gt := &GroundTruth{
		Scenario:        NameIncast,
		Type:            diagnosis.TypePFCContention,
		Culprits:        make(map[packet.FiveTuple]bool),
		InitialSwitches: map[topo.NodeID]bool{ft.Edge[2][0]: true, ft.Agg[2][0]: true, ft.Agg[2][1]: true},
		CausalSwitches:  make(map[topo.NodeID]bool),
		Victims:         make(map[packet.FiveTuple]bool),
		AnomalyAt:       p.AnomalyStart(),
	}

	// Victim: pod0 -> sibling; spreader: pod0 -> target. Both rate-capped
	// well below line rate so that, before the bursts, NOTHING in the
	// fabric is congested: clean RTT baselines, and any later degradation
	// is attributable to the anomaly alone. They start before the anomaly
	// so they are mid-flight when it hits.
	at := p.warmStart()
	victim := cl.StartFlowRate(ft.PodHosts[0][0], sibling, 20_000_000, at, 20e9)
	gt.Victims[victim.Tuple] = true
	pathSwitches(cl, victim, sibling, gt.CausalSwitches)
	spreader := cl.StartFlowRate(ft.PodHosts[0][1], target, 20_000_000, at, 20e9)
	gt.Victims[spreader.Tuple] = true
	pathSwitches(cl, spreader, target, gt.CausalSwitches)

	// One synchronized round of line-rate micro-bursts into the target
	// (the paper's A1..A4): the pod's other edge switch plus one host
	// from each remote pod, so the incast converges through both of the
	// target edge's uplinks.
	for _, src := range []topo.NodeID{sibling, ft.PodHosts[2][2], ft.PodHosts[2][3]} {
		b := cl.StartFlow(src, target, 2*p.BurstBytes, gt.AnomalyAt)
		gt.Culprits[b.Tuple] = true
		pathSwitches(cl, b, target, gt.CausalSwitches)
	}
	return gt
}

// BuildStorm reproduces Fig. 1(b): a malfunctioning host continuously
// injects PFC; traffic toward it (and HOL victims behind it) stall with
// no flow contention at the initial point.
func BuildStorm(cl *cluster.Cluster, ft *topo.FatTree, p Params) *GroundTruth {
	rogue := ft.PodHosts[1][0]
	gt := &GroundTruth{
		Scenario:        NameStorm,
		Type:            diagnosis.TypePFCStorm,
		Injector:        rogue,
		InitialSwitches: map[topo.NodeID]bool{ft.Edge[1][0]: true},
		CausalSwitches:  make(map[topo.NodeID]bool),
		Victims:         make(map[packet.FiveTuple]bool),
		AnomalyAt:       p.AnomalyStart(),
	}
	cl.Hosts[rogue].InjectPFC(gt.AnomalyAt, gt.AnomalyAt+p.InjectFor, packet.MaxPauseQuanta)

	// Traffic toward the rogue from two pods, rate-capped so their sum
	// stays below the rogue's link: without the injection there is NO
	// congestion anywhere — the stall is pure host PFC (Fig. 1b).
	for _, src := range []topo.NodeID{ft.PodHosts[0][0], ft.PodHosts[0][1], ft.PodHosts[3][1]} {
		f := cl.StartFlowRate(src, rogue, 40_000_000, p.warmStart(), 25e9)
		gt.Victims[f.Tuple] = true
		pathSwitches(cl, f, rogue, gt.CausalSwitches)
	}
	return gt
}

// cycleFlowBytes keeps the CBD flows alive for the whole trace (they
// stall once the loop closes, so the packet count stays bounded).
const cycleFlowBytes = 50_000_000

// cbd wires the cyclic buffer dependency used by both deadlock scenarios:
// four flows chained around [agg0-0, core0, agg1-0, core1] via ECMP
// pinning plus two up-after-down routing misconfigurations (§2.1: CBD
// "can be caused by problematic routing").
type cbd struct {
	cycle     [4]topo.NodeID
	flows     []*host.Flow
	flowDsts  []topo.NodeID
	cyclePort map[topo.NodeID]int // egress port toward the next cycle node
}

// portToward finds node a's port whose peer is b.
func portToward(t *topo.Topology, a, b topo.NodeID) int {
	for pi, p := range t.Node(a).Ports {
		if p.Peer == b {
			return pi
		}
	}
	panic(fmt.Sprintf("workload: no link %d->%d", a, b))
}

// buildCBD pins routes and starts the four cycle flows at the given rate
// cap. Flow i enters the cycle at node i and exits at node (i+2).
func buildCBD(cl *cluster.Cluster, ft *topo.FatTree, rate float64, flowBytes int64, gt *GroundTruth) *cbd {
	t := cl.Topo
	c := &cbd{
		cycle:     [4]topo.NodeID{ft.Agg[0][0], ft.Core[0], ft.Agg[1][0], ft.Core[1]},
		cyclePort: make(map[topo.NodeID]int),
	}
	for i := 0; i < 4; i++ {
		c.cyclePort[c.cycle[i]] = portToward(t, c.cycle[i], c.cycle[(i+1)%4])
	}

	// srcs/dsts chosen so entries and exits are unambiguous:
	//   F0: pod0 host -> pod1 host  (agg0-0 -> core0 -> agg1-0, normal)
	//   F1: pod2 host -> pod3 host  (core0 -> agg1-0 -> core1, misconfig)
	//   F2: pod1 host -> pod0 host  (agg1-0 -> core1 -> agg0-0, normal)
	//   F3: pod3 host -> pod2 host  (core1 -> agg0-0 -> core0, misconfig)
	srcs := []topo.NodeID{ft.PodHosts[0][0], ft.PodHosts[2][0], ft.PodHosts[1][2], ft.PodHosts[3][0]}
	dsts := []topo.NodeID{ft.PodHosts[1][0], ft.PodHosts[3][2], ft.PodHosts[0][2], ft.PodHosts[2][2]}
	c.flowDsts = dsts

	pin := func(sw topo.NodeID, dst topo.NodeID, port int) {
		cl.Routing.Override(sw, dst, []int{port})
	}
	// F0: pin src edge up to agg0-0, agg0-0 up to core0.
	pin(ft.Edge[0][0], dsts[0], portToward(t, ft.Edge[0][0], ft.Agg[0][0]))
	pin(ft.Agg[0][0], dsts[0], c.cyclePort[ft.Agg[0][0]])
	// F1: pin src edge up to agg2-0, agg2-0 up to core0; MISCONFIG at
	// core0 (down into pod1 instead of pod3) and pin agg1-0 back up to
	// core1.
	pin(ft.Edge[2][0], dsts[1], portToward(t, ft.Edge[2][0], ft.Agg[2][0]))
	pin(ft.Agg[2][0], dsts[1], portToward(t, ft.Agg[2][0], ft.Core[0]))
	pin(ft.Core[0], dsts[1], c.cyclePort[ft.Core[0]])     // misconfig
	pin(ft.Agg[1][0], dsts[1], c.cyclePort[ft.Agg[1][0]]) // up again
	// F2: pin src edge up to agg1-0, agg1-0 up to core1.
	pin(ft.Edge[1][1], dsts[2], portToward(t, ft.Edge[1][1], ft.Agg[1][0]))
	pin(ft.Agg[1][0], dsts[2], c.cyclePort[ft.Agg[1][0]])
	// F3: pin src edge up to agg3-0, agg3-0 up to core1; MISCONFIG at
	// core1 (down into pod0 instead of pod2) and pin agg0-0 back up to
	// core0.
	pin(ft.Edge[3][0], dsts[3], portToward(t, ft.Edge[3][0], ft.Agg[3][0]))
	pin(ft.Agg[3][0], dsts[3], portToward(t, ft.Agg[3][0], ft.Core[1]))
	pin(ft.Core[1], dsts[3], c.cyclePort[ft.Core[1]])     // misconfig
	pin(ft.Agg[0][0], dsts[3], c.cyclePort[ft.Agg[0][0]]) // up again

	for i := range srcs {
		f := cl.StartFlowRate(srcs[i], dsts[i], flowBytes, 0, rate)
		c.flows = append(c.flows, f)
		gt.Victims[f.Tuple] = true
		src := srcs[i]
		// Record the causal switches along the pinned path.
		refs, err := cl.Routing.PortPath(src, dsts[i], f.Tuple.Hash())
		if err == nil {
			for _, r := range refs {
				if t.Node(r.Node).Kind == topo.KindSwitch {
					gt.CausalSwitches[r.Node] = true
				}
			}
		}
	}
	for _, sw := range c.cycle {
		gt.CausalSwitches[sw] = true
	}
	return c
}

// BuildInLoopDeadlock reproduces Fig. 1(c): the CBD flows run rate-capped
// (the cycle is busy but healthy); at the anomaly time, short line-rate
// micro-bursts slam one cycle link (agg1-0 -> core1). The transient
// contention closes the pause cycle and the deadlock persists long after
// the bursts end — the paper's "short-duration flow contention (<1 ms)
// then leads to a persistent deadlock".
func BuildInLoopDeadlock(cl *cluster.Cluster, ft *topo.FatTree, p Params) *GroundTruth {
	gt := &GroundTruth{
		Scenario: NameInLoop,
		Type:     diagnosis.TypeInLoopDeadlock,
		Culprits: make(map[packet.FiveTuple]bool),
		// The initial congestion point lies INSIDE the loop (Table 2);
		// once the circular wait locks, any loop port is an admissible
		// anchor — the paper's own case study reads the root cause off
		// the loop's port-flow edges (Fig. 12c).
		InitialSwitches: map[topo.NodeID]bool{
			ft.Agg[0][0]: true, ft.Core[0]: true, ft.Agg[1][0]: true, ft.Core[1]: true,
		},
		CausalSwitches: make(map[topo.NodeID]bool),
		Victims:        make(map[packet.FiveTuple]bool),
		AnomalyAt:      p.AnomalyStart(),
	}
	gt.ScoreAfter = gt.AnomalyAt + 300*sim.Microsecond
	c := buildCBD(cl, ft, 40e9, cycleFlowBytes, gt)
	// The cycle flows are themselves part of the in-loop contention (the
	// paper's Fig. 12c lists F1-F4 as causing the PFC spreading loop).
	for _, f := range c.flows {
		gt.Culprits[f.Tuple] = true
	}
	// Bursts from pod1 hosts through agg1-0 up to core1, exiting in pod3.
	t := cl.Topo
	upPort := portToward(t, ft.Agg[1][0], ft.Core[1])
	burstSrcs := []topo.NodeID{ft.PodHosts[1][1], ft.PodHosts[1][3]}
	burstDsts := []topo.NodeID{ft.PodHosts[3][1], ft.PodHosts[3][3]}
	for i := range burstSrcs {
		dst := burstDsts[i]
		srcEdge := ft.Edge[1][i] // host 1 under edge1-0, host 3 under edge1-1
		cl.Routing.Override(srcEdge, dst, []int{portToward(t, srcEdge, ft.Agg[1][0])})
		cl.Routing.Override(ft.Agg[1][0], dst, []int{upPort})
	}
	// One sustained round per source: the two clumps share the 100G
	// agg1-0 uplink, so they overload it for several hundred µs — long
	// enough for the pause cycle to close, short enough to be
	// "short-duration flow contention" (§2.1).
	for i, src := range burstSrcs {
		b := cl.StartFlow(src, burstDsts[i], 2*p.BurstBytes, gt.AnomalyAt)
		gt.Culprits[b.Tuple] = true
		pathSwitches(cl, b, burstDsts[i], gt.CausalSwitches)
	}
	return gt
}

// BuildOutLoopInjection reproduces Fig. 1(d): the CBD flows are
// rate-capped below link capacity (the cycle is busy but healthy); a
// host outside the loop injects PFC and drives the cycle into deadlock.
func BuildOutLoopInjection(cl *cluster.Cluster, ft *topo.FatTree, p Params) *GroundTruth {
	rogue := ft.PodHosts[1][0] // destination of cycle flow F0
	gt := &GroundTruth{
		Scenario:        NameOutLoopInject,
		Type:            diagnosis.TypeOutLoopDeadlockInjection,
		Injector:        rogue,
		InitialSwitches: map[topo.NodeID]bool{ft.Edge[1][0]: true},
		CausalSwitches:  make(map[topo.NodeID]bool),
		Victims:         make(map[packet.FiveTuple]bool),
		AnomalyAt:       p.AnomalyStart(),
	}
	gt.ScoreAfter = gt.AnomalyAt + 300*sim.Microsecond
	buildCBD(cl, ft, 40e9, cycleFlowBytes, gt)
	cl.Hosts[rogue].InjectPFC(gt.AnomalyAt, gt.AnomalyAt+p.InjectFor, packet.MaxPauseQuanta)
	return gt
}

// BuildOutLoopContention is the flow-contention variant of the
// out-of-loop initiator: micro-bursts congest the port where cycle flow
// F0 exits, and the backpressure closes the loop.
func BuildOutLoopContention(cl *cluster.Cluster, ft *topo.FatTree, p Params) *GroundTruth {
	target := ft.PodHosts[1][0] // destination of cycle flow F0
	gt := &GroundTruth{
		Scenario:        NameOutLoopBurst,
		Type:            diagnosis.TypeOutLoopDeadlockContention,
		Culprits:        make(map[packet.FiveTuple]bool),
		InitialSwitches: map[topo.NodeID]bool{ft.Edge[1][0]: true, ft.Agg[1][0]: true, ft.Agg[1][1]: true},
		CausalSwitches:  make(map[topo.NodeID]bool),
		Victims:         make(map[packet.FiveTuple]bool),
		AnomalyAt:       p.AnomalyStart(),
	}
	gt.ScoreAfter = gt.AnomalyAt + 700*sim.Microsecond
	// When the cycle's cross-edges age out of the causality meter before
	// the scored complaint, the diagnosis degrades to plain PFC
	// backpressure — with the SAME initial point and culprits. The paper's
	// own deadlock precision is likewise bounded by telemetry retention
	// (Fig. 7); accept the degradation as long as the root cause holds.
	gt.AltTypes = []diagnosis.AnomalyType{diagnosis.TypePFCContention}
	buildCBD(cl, ft, 40e9, cycleFlowBytes, gt)
	// The contention initiator must outlive congestion control and hold
	// the exit port saturated until the circular wait locks: a long-lived
	// full-rate flow (think misbehaving bulk transfer) plus synchronized
	// bursts from two more hosts.
	long := cl.StartFlow(ft.PodHosts[1][1], target, cycleFlowBytes, gt.AnomalyAt)
	gt.Culprits[long.Tuple] = true
	pathSwitches(cl, long, target, gt.CausalSwitches)
	for _, src := range []topo.NodeID{ft.PodHosts[3][1], ft.PodHosts[3][3]} {
		b := cl.StartFlow(src, target, 8*p.BurstBytes, gt.AnomalyAt)
		gt.Culprits[b.Tuple] = true
		pathSwitches(cl, b, target, gt.CausalSwitches)
	}
	return gt
}

// BuildNormalContention crafts transient shallow bursts that inflate
// queueing delay without ever crossing a PFC threshold: the degenerate
// traditional-diagnosis case (Table 2, last row).
func BuildNormalContention(cl *cluster.Cluster, ft *topo.FatTree, p Params) *GroundTruth {
	target := ft.PodHosts[2][0]
	gt := &GroundTruth{
		Scenario:        NameNormal,
		Type:            diagnosis.TypeNormalContention,
		Culprits:        make(map[packet.FiveTuple]bool),
		InitialSwitches: map[topo.NodeID]bool{ft.Edge[2][0]: true},
		CausalSwitches:  make(map[topo.NodeID]bool),
		Victims:         make(map[packet.FiveTuple]bool),
		AnomalyAt:       p.AnomalyStart(),
	}
	// Victim shares only the target's egress queue; it runs across the
	// burst rounds so its RTT samples straddle the contention.
	victim := cl.StartFlowRate(ft.PodHosts[2][2], target, 20_000_000, p.warmStart(), 25e9)
	gt.Victims[victim.Tuple] = true
	pathSwitches(cl, victim, target, gt.CausalSwitches)
	// Shallow bursts from the target's sibling host: local line-rate
	// clumps that build a real queue at the target port yet stay below
	// the (deep-buffer) Xoff — contention without a single PFC frame.
	// Remote senders would be smeared by the fabric before reaching the
	// port, so the sibling is the honest culprit here.
	for round := 0; round < p.BurstRounds+1; round++ {
		at := gt.AnomalyAt + sim.Time(round)*p.EpochSize
		b := cl.StartFlow(ft.PodHosts[2][1], target, 600_000, at)
		gt.Culprits[b.Tuple] = true
		pathSwitches(cl, b, target, gt.CausalSwitches)
	}
	return gt
}

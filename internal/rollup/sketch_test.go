package rollup

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"testing"
)

// lcg is a tiny deterministic generator so the property tests never
// depend on math/rand's seed plumbing.
type lcg uint64

func (r *lcg) next() uint64 {
	*r = *r*6364136223846793005 + 1442695040888963407
	return uint64(*r >> 17)
}

// skewedStream draws n keys from a skewed distribution over universe
// distinct keys (low IDs are hot) and returns the true counts.
func skewedStream(n, universe int, seed uint64) (keys []string, truth map[string]uint64) {
	r := lcg(seed)
	truth = make(map[string]uint64)
	keys = make([]string, 0, n)
	for i := 0; i < n; i++ {
		// Two draws, keep the smaller: a cheap skew toward low IDs.
		a, b := r.next()%uint64(universe), r.next()%uint64(universe)
		if b < a {
			a = b
		}
		k := fmt.Sprintf("key-%03d", a)
		keys = append(keys, k)
		truth[k]++
	}
	return keys, truth
}

// TestTopKSpaceSavingBounds pins the SpaceSaving guarantees the
// HeavyHitter doc promises: for every monitored key the estimate is an
// overestimate by at most Err (Count-Err <= true <= Count), and every
// key whose true frequency exceeds N/capacity is present.
func TestTopKSpaceSavingBounds(t *testing.T) {
	const capacity = 8
	keys, truth := skewedStream(20000, 100, 42)
	tk := NewTopK(capacity)
	for _, k := range keys {
		tk.ObserveString(k)
	}
	if tk.Len() > capacity {
		t.Fatalf("monitored %d keys, capacity %d", tk.Len(), capacity)
	}
	if tk.Observed() != uint64(len(keys)) {
		t.Fatalf("observed = %d, want %d", tk.Observed(), len(keys))
	}
	for _, hh := range tk.Top(0) {
		true_ := truth[hh.Key]
		if hh.Count < true_ {
			t.Fatalf("%s: estimate %d below true count %d", hh.Key, hh.Count, true_)
		}
		if hh.Count-hh.Err > true_ {
			t.Fatalf("%s: estimate-err %d exceeds true count %d", hh.Key, hh.Count-hh.Err, true_)
		}
	}
	// Guaranteed heavy hitters: true frequency > N/capacity.
	threshold := uint64(len(keys) / capacity)
	for k, c := range truth {
		if c <= threshold {
			continue
		}
		if _, _, ok := tk.Estimate(k); !ok {
			t.Fatalf("heavy hitter %s (count %d > %d) missing from sketch", k, c, threshold)
		}
	}
}

// TestTopKExactUnderCapacity: a stream whose key cardinality fits the
// sketch is counted exactly, with zero error and zero evictions.
func TestTopKExactUnderCapacity(t *testing.T) {
	tk := NewTopK(16)
	for i := 0; i < 1000; i++ {
		tk.ObserveString(fmt.Sprintf("k%d", i%10))
	}
	if tk.Evictions() != 0 {
		t.Fatalf("evictions = %d, want 0 under capacity", tk.Evictions())
	}
	for _, hh := range tk.Top(0) {
		if hh.Count != 100 || hh.Err != 0 {
			t.Fatalf("%s: count=%d err=%d, want exact 100/0", hh.Key, hh.Count, hh.Err)
		}
	}
}

// TestTopKDeterministicTieBreaks: equal counts sort key-ascending in
// Top, and eviction picks the lexicographically smallest minimum, so
// identical streams produce identical sketches.
func TestTopKDeterministicTieBreaks(t *testing.T) {
	build := func() []HeavyHitter {
		tk := NewTopK(4)
		for _, k := range []string{"d", "c", "b", "a", "d", "c", "e", "f"} {
			tk.ObserveString(k)
		}
		return tk.Top(0)
	}
	a, b := build(), build()
	if len(a) != len(b) {
		t.Fatalf("len %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("entry %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	for i := 1; i < len(a); i++ {
		if a[i-1].Count < a[i].Count {
			t.Fatalf("Top not count-descending: %+v", a)
		}
		if a[i-1].Count == a[i].Count && a[i-1].Key >= a[i].Key {
			t.Fatalf("tie not key-ascending: %+v", a)
		}
	}
}

// TestTopKMergePreservesBounds: merging pane sketches (the sliding
// window path) keeps the overestimate-within-Err guarantee against the
// combined true counts.
func TestTopKMergePreservesBounds(t *testing.T) {
	keysA, truthA := skewedStream(8000, 60, 7)
	keysB, truthB := skewedStream(8000, 60, 99)
	a, b := NewTopK(8), NewTopK(8)
	for _, k := range keysA {
		a.ObserveString(k)
	}
	for _, k := range keysB {
		b.ObserveString(k)
	}
	a.Merge(b)
	if a.Len() > 8 {
		t.Fatalf("merged sketch holds %d keys, capacity 8", a.Len())
	}
	if a.Observed() != 16000 {
		t.Fatalf("merged observed = %d, want 16000", a.Observed())
	}
	for _, hh := range a.Top(0) {
		true_ := truthA[hh.Key] + truthB[hh.Key]
		if hh.Count < true_ {
			t.Fatalf("%s: merged estimate %d below true %d", hh.Key, hh.Count, true_)
		}
		if hh.Count-hh.Err > true_ {
			t.Fatalf("%s: merged estimate-err %d exceeds true %d", hh.Key, hh.Count-hh.Err, true_)
		}
	}
}

// TestTopKKeyTruncationAndBytes: hostile long keys are truncated to the
// byte budget and the accounted size stays proportional to capacity.
func TestTopKKeyTruncationAndBytes(t *testing.T) {
	tk := NewTopK(4)
	long := strings.Repeat("x", 4*maxKeyBytes)
	tk.ObserveString(long)
	hs := tk.Top(0)
	if len(hs) != 1 || len(hs[0].Key) != maxKeyBytes {
		t.Fatalf("long key stored at %d bytes, want %d", len(hs[0].Key), maxKeyBytes)
	}
	for i := 0; i < 100; i++ {
		tk.ObserveString(strings.Repeat("y", maxKeyBytes) + fmt.Sprint(i))
	}
	if max := 4 * (ssEntryBytes + maxKeyBytes); tk.Bytes() > max {
		t.Fatalf("bytes = %d, want <= %d", tk.Bytes(), max)
	}
}

// TestQuantileRankError feeds a known distribution and checks every
// queried quantile lands within the sketch's relative accuracy
// (gamma-1)/(gamma+1) of the true order statistic.
func TestQuantileRankError(t *testing.T) {
	const gamma = 1.02
	q := NewQuantile(gamma, 1024) // roomy: no collapses, pure gamma error
	n := 10000
	vals := make([]float64, n)
	r := lcg(5)
	for i := range vals {
		// Long-tailed positive values spanning ~5 decades.
		vals[i] = math.Exp(float64(r.next()%12000) / 1000.0)
		q.Observe(vals[i])
	}
	if q.Collapses() != 0 {
		t.Fatalf("collapses = %d, want 0 with a roomy bucket cap", q.Collapses())
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	relBound := (gamma - 1) / (gamma + 1)
	for _, p := range []float64{0, 0.1, 0.25, 0.5, 0.9, 0.99, 1} {
		got := q.Query(p)
		want := sorted[int(p*float64(n-1))]
		if rel := math.Abs(got-want) / want; rel > relBound+1e-9 {
			t.Fatalf("p%v: got %v want %v, relative error %v > %v", p, got, want, rel, relBound)
		}
	}
	if q.Max() != sorted[n-1] {
		t.Fatalf("max = %v, want exact %v", q.Max(), sorted[n-1])
	}
	if q.Count() != uint64(n) {
		t.Fatalf("count = %d, want %d", q.Count(), n)
	}
}

// TestQuantileZeroBucket: zeros and negatives land in the zero bucket
// and low quantiles report 0 exactly.
func TestQuantileZeroBucket(t *testing.T) {
	q := NewQuantile(1.02, 64)
	for i := 0; i < 90; i++ {
		q.Observe(0)
	}
	q.Observe(-5)
	for i := 0; i < 9; i++ {
		q.Observe(1000)
	}
	if got := q.Query(0.5); got != 0 {
		t.Fatalf("p50 over mostly-zero stream = %v, want 0", got)
	}
	if got := q.Query(0.99); got < 900 || got > 1100 {
		t.Fatalf("p99 = %v, want ~1000", got)
	}
}

// TestQuantileCollapseDegradesLowEndOnly: a tiny bucket budget forces
// collapses, which are counted, preserve the total count, and leave the
// upper quantiles accurate (the budget sheds low buckets first).
func TestQuantileCollapseDegradesLowEndOnly(t *testing.T) {
	const gamma = 1.02
	q := NewQuantile(gamma, 8)
	n := 0
	for v := 1e-3; v <= 1e6; v *= 1.5 {
		q.Observe(v)
		n++
	}
	if q.Collapses() == 0 {
		t.Fatal("expected collapses under an 8-bucket budget")
	}
	if q.Count() != uint64(n) {
		t.Fatalf("count = %d, want %d (collapses must not lose mass)", q.Count(), n)
	}
	relBound := (gamma - 1) / (gamma + 1)
	if got, want := q.Query(1), q.Max(); math.Abs(got-want)/want > relBound+1e-9 {
		t.Fatalf("p100 = %v, want ~%v", got, want)
	}
}

// TestQuantileMerge: merged sketches cover both streams within the same
// accuracy, and bucket budgets still hold afterwards.
func TestQuantileMerge(t *testing.T) {
	const gamma = 1.02
	a, b := NewQuantile(gamma, 1024), NewQuantile(gamma, 1024)
	var vals []float64
	for i := 1; i <= 1000; i++ {
		v := float64(i)
		a.Observe(v)
		vals = append(vals, v)
	}
	for i := 1; i <= 1000; i++ {
		v := float64(i * 10)
		b.Observe(v)
		vals = append(vals, v)
	}
	a.Merge(b)
	if a.Count() != 2000 {
		t.Fatalf("merged count = %d, want 2000", a.Count())
	}
	sort.Float64s(vals)
	relBound := (gamma - 1) / (gamma + 1)
	for _, p := range []float64{0.1, 0.5, 0.9} {
		got := a.Query(p)
		want := vals[int(p*float64(len(vals)-1))]
		if rel := math.Abs(got-want) / want; rel > relBound+1e-9 {
			t.Fatalf("merged p%v: got %v want %v (rel %v)", p, got, want, rel)
		}
	}
}

package rollup

import (
	"errors"
	"fmt"
	"sort"
)

// Sketch state export/import: the cross-shard form of the rollup
// layer. A front door merging per-shard windows cannot work from
// rendered quantiles (p50s do not add), so a shard exports its
// sketches' full state — bounded by the same caps the live sketches
// honor — and the front door reconstructs and merges them. Import
// validates everything: these travel over the wire from other
// processes, and the PR 5 discipline is that nothing structural is
// trusted on arrival.

// ErrBadSketchState reports an import that failed validation.
var ErrBadSketchState = errors.New("rollup: bad sketch state")

func badState(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadSketchState, fmt.Sprintf(format, args...))
}

// Import bounds: far above any configuration this codebase produces,
// far below anything that could hurt the importer.
const (
	maxStateCapacity = 1 << 16
	maxStateBuckets  = 1 << 20
	maxStateGamma    = 8.0
)

// TopKState is a TopK sketch's serializable form: the monitored
// counters (count-descending, the same order Top reports) plus the
// capacity and accounting needed to resume merging.
type TopKState struct {
	Capacity  int           `json:"capacity"`
	Observed  uint64        `json:"observed,omitempty"`
	Evictions uint64        `json:"evictions,omitempty"`
	Hitters   []HeavyHitter `json:"hitters,omitempty"`
}

// State exports the sketch. Deterministic: hitters are in Top order.
func (t *TopK) State() TopKState {
	return TopKState{
		Capacity:  t.capacity,
		Observed:  t.observed,
		Evictions: t.evictions,
		Hitters:   t.Top(0),
	}
}

// NewTopKFromState validates and reconstructs a sketch. The SpaceSaving
// invariants are checked, not assumed: capacity and key sizes bounded,
// at most capacity hitters, every error bar at or below its count.
func NewTopKFromState(s TopKState) (*TopK, error) {
	if s.Capacity < 1 || s.Capacity > maxStateCapacity {
		return nil, badState("top-k capacity %d outside [1,%d]", s.Capacity, maxStateCapacity)
	}
	if len(s.Hitters) > s.Capacity {
		return nil, badState("%d hitters in a %d-capacity sketch", len(s.Hitters), s.Capacity)
	}
	t := NewTopK(s.Capacity)
	t.observed = s.Observed
	t.evictions = s.Evictions
	var counted uint64
	for _, h := range s.Hitters {
		if len(h.Key) == 0 || len(h.Key) > maxKeyBytes {
			return nil, badState("hitter key %d bytes outside [1,%d]", len(h.Key), maxKeyBytes)
		}
		if h.Err > h.Count {
			return nil, badState("hitter %q error %d exceeds count %d", h.Key, h.Err, h.Count)
		}
		if _, dup := t.items[h.Key]; dup {
			return nil, badState("duplicate hitter key %q", h.Key)
		}
		t.items[h.Key] = &ssEntry{count: h.Count, err: h.Err}
		t.keyBytes += len(h.Key)
		counted += h.Count
	}
	// SpaceSaving counters sum to at most the observed stream length.
	if s.Observed != 0 && counted > s.Observed {
		return nil, badState("counter mass %d exceeds observed %d", counted, s.Observed)
	}
	return t, nil
}

// QuantileState is a Quantile sketch's serializable form: parallel
// index/count arrays (index-ascending) plus the shape parameters.
type QuantileState struct {
	Gamma      float64  `json:"gamma"`
	MaxBuckets int      `json:"maxBuckets"`
	Zero       uint64   `json:"zero,omitempty"`
	Count      uint64   `json:"count"`
	Max        float64  `json:"max,omitempty"`
	Collapses  uint64   `json:"collapses,omitempty"`
	Indexes    []int    `json:"idx,omitempty"`
	Counts     []uint64 `json:"n,omitempty"`
}

// State exports the sketch. Deterministic: buckets index-ascending.
func (q *Quantile) State() QuantileState {
	s := QuantileState{
		Gamma:      q.gamma,
		MaxBuckets: q.maxBuckets,
		Zero:       q.zero,
		Count:      q.count,
		Max:        q.max,
		Collapses:  q.collapses,
	}
	idxs := make([]int, 0, len(q.buckets))
	for idx := range q.buckets {
		idxs = append(idxs, idx)
	}
	sort.Ints(idxs)
	for _, idx := range idxs {
		s.Indexes = append(s.Indexes, idx)
		s.Counts = append(s.Counts, q.buckets[idx])
	}
	return s
}

// NewQuantileFromState validates and reconstructs a sketch. The
// conservation law is enforced: zero + bucket mass == count, exactly —
// a state that fails it was corrupted or fabricated.
func NewQuantileFromState(s QuantileState) (*Quantile, error) {
	if s.Gamma <= 1 || s.Gamma > maxStateGamma {
		return nil, badState("gamma %g outside (1,%g]", s.Gamma, maxStateGamma)
	}
	if s.MaxBuckets < 8 || s.MaxBuckets > maxStateBuckets {
		return nil, badState("bucket cap %d outside [8,%d]", s.MaxBuckets, maxStateBuckets)
	}
	if len(s.Indexes) != len(s.Counts) {
		return nil, badState("%d indexes, %d counts", len(s.Indexes), len(s.Counts))
	}
	if len(s.Indexes) > s.MaxBuckets {
		return nil, badState("%d buckets in a %d-cap sketch", len(s.Indexes), s.MaxBuckets)
	}
	if s.Max < 0 {
		return nil, badState("negative max %g", s.Max)
	}
	q := NewQuantile(s.Gamma, s.MaxBuckets)
	q.zero = s.Zero
	q.count = s.Count
	q.max = s.Max
	q.collapses = s.Collapses
	mass := s.Zero
	prev := 0
	for i, idx := range s.Indexes {
		if i > 0 && idx <= prev {
			return nil, badState("bucket indexes not strictly ascending (%d after %d)", idx, prev)
		}
		prev = idx
		if s.Counts[i] == 0 {
			return nil, badState("empty bucket %d", idx)
		}
		q.buckets[idx] = s.Counts[i]
		mass += s.Counts[i]
	}
	if mass != s.Count {
		return nil, badState("bucket mass %d disagrees with count %d", mass, s.Count)
	}
	return q, nil
}

// SummarySketches is the mergeable state attached to a Summary when a
// query asks for it (QueryOpts.IncludeSketches): one top-K state per
// hierarchy level plus the two quantile sketches.
type SummarySketches struct {
	Levels map[string]TopKState `json:"levels,omitempty"`
	Stall  QuantileState        `json:"stall"`
	Score  QuantileState        `json:"score"`
}

// MergeWindows merges per-shard summaries of the same window into one,
// via sketch state: counts add, top-K sketches merge (deterministic
// trim), quantile buckets add. Every input must carry sketches and
// agree on the window span. The result carries merged sketches too, so
// merges nest (a region front door can feed a global one).
func MergeWindows(sums []Summary) (Summary, error) {
	if len(sums) == 0 {
		return Summary{}, badState("no summaries to merge")
	}
	for i := range sums {
		if sums[i].Sketches == nil {
			return Summary{}, badState("summary %d carries no sketch state", i)
		}
		if sums[i].Start != sums[0].Start || sums[i].End != sums[0].End {
			return Summary{}, badState("summary %d spans [%v,%v), want [%v,%v)",
				i, sums[i].Start, sums[i].End, sums[0].Start, sums[0].End)
		}
	}
	out := Summary{
		Start:        sums[0].Start,
		End:          sums[0].End,
		Closed:       true,
		ByType:       make(map[string]uint64),
		ByCause:      make(map[string]uint64),
		ByConfidence: make(map[string]uint64),
		TopLevels:    make(map[string][]HeavyHitter, len(Levels)),
	}
	tops := make(map[string]*TopK, len(Levels))
	var stall, score *Quantile
	for i := range sums {
		sm := &sums[i]
		if !sm.Closed {
			out.Closed = false
		}
		out.Records += sm.Records
		out.Bytes += sm.Bytes
		out.Evictions += sm.Evictions
		addCounts(out.ByType, sm.ByType)
		addCounts(out.ByCause, sm.ByCause)
		addCounts(out.ByConfidence, sm.ByConfidence)
		for lvl, st := range sm.Sketches.Levels {
			t, err := NewTopKFromState(st)
			if err != nil {
				return Summary{}, fmt.Errorf("summary %d level %s: %w", i, lvl, err)
			}
			if cur, ok := tops[lvl]; ok {
				// Merge into the larger-capacity sketch so the union trim
				// never tightens below any shard's own bound.
				if t.capacity > cur.capacity {
					t.Merge(cur)
					tops[lvl] = t
				} else {
					cur.Merge(t)
				}
			} else {
				tops[lvl] = t
			}
		}
		st, err := NewQuantileFromState(sm.Sketches.Stall)
		if err != nil {
			return Summary{}, fmt.Errorf("summary %d stall: %w", i, err)
		}
		sc, err := NewQuantileFromState(sm.Sketches.Score)
		if err != nil {
			return Summary{}, fmt.Errorf("summary %d score: %w", i, err)
		}
		if stall == nil {
			stall, score = st, sc
		} else {
			stall.Merge(st)
			score.Merge(sc)
		}
	}
	sk := &SummarySketches{Levels: make(map[string]TopKState, len(tops))}
	for lvl, t := range tops {
		out.TopLevels[lvl] = t.Top(0)
		sk.Levels[lvl] = t.State()
	}
	sk.Stall = stall.State()
	sk.Score = score.State()
	out.Sketches = sk
	out.StallNS = renderQuantiles(stall)
	out.Score = renderQuantiles(score)
	out.Headline = headline(&out)
	return out, nil
}

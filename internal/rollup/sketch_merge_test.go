package rollup

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"
)

// Merge property tests: the front door combines K per-shard sketches,
// so the error guarantees each sketch states must survive a K-way
// merge — overestimate-with-bounded-error for SpaceSaving, relative
// gamma-error for the quantile sketch — and the state export/import
// round trip must be lossless.

// zipfStream deterministically generates a skewed key stream and the
// exact per-key counts.
func zipfStream(seed int64, n, universe int) ([]string, map[string]uint64) {
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, 1.3, 1.0, uint64(universe-1))
	keys := make([]string, n)
	truth := make(map[string]uint64, universe)
	for i := range keys {
		k := fmt.Sprintf("key-%04d", z.Uint64())
		keys[i] = k
		truth[k]++
	}
	return keys, truth
}

// TestTopKMergeErrorBounds shards one stream K ways, merges the K
// sketches, and asserts the SpaceSaving bounds still hold on the
// result: every reported count is an overestimate by at most its error
// bar, and every key heavy enough that no bounded-memory summary may
// miss it is present.
func TestTopKMergeErrorBounds(t *testing.T) {
	const (
		shards   = 5
		capacity = 32
		n        = 20000
	)
	for seed := int64(1); seed <= 8; seed++ {
		keys, truth := zipfStream(seed, n, 400)
		sketches := make([]*TopK, shards)
		for i := range sketches {
			sketches[i] = NewTopK(capacity)
		}
		// Shard assignment mirrors the router: by key hash, so one key's
		// mass lands entirely in one shard sometimes and spread others.
		rng := rand.New(rand.NewSource(seed * 77))
		assign := make(map[string]int)
		for _, k := range keys {
			sh, ok := assign[k]
			if !ok {
				sh = rng.Intn(shards)
				assign[k] = sh
			}
			sketches[sh].ObserveString(k)
		}
		merged := NewTopK(capacity)
		for _, sk := range sketches {
			merged.Merge(sk)
		}
		if merged.Len() > capacity {
			t.Fatalf("seed %d: merged sketch holds %d keys, capacity %d", seed, merged.Len(), capacity)
		}
		if merged.Observed() != uint64(n) {
			t.Fatalf("seed %d: merged observed %d, want %d", seed, merged.Observed(), n)
		}
		for _, hh := range merged.Top(0) {
			tc := truth[hh.Key]
			if hh.Count < tc {
				t.Fatalf("seed %d: key %s count %d underestimates true %d", seed, hh.Key, hh.Count, tc)
			}
			if hh.Count-hh.Err > tc {
				t.Fatalf("seed %d: key %s lower bound %d exceeds true %d", seed, hh.Key, hh.Count-hh.Err, tc)
			}
		}
		// Guaranteed presence: a single sketch never misses keys above
		// N/capacity; the merge trim relaxes that by at most another
		// N/capacity of mass, so 2N/capacity keys must survive.
		threshold := uint64(2 * n / capacity)
		for k, tc := range truth {
			if tc <= threshold {
				continue
			}
			if _, _, ok := merged.Estimate(k); !ok {
				t.Fatalf("seed %d: key %s (true count %d > %d) missing from merged sketch",
					seed, k, tc, threshold)
			}
		}
	}
}

// TestTopKMergeExactWhenUncontended asserts the strongest case: when
// capacity covers the key universe, a K-way merge is exact — identical
// to counting the concatenated stream.
func TestTopKMergeExactWhenUncontended(t *testing.T) {
	keys, truth := zipfStream(42, 5000, 60)
	sketches := make([]*TopK, 3)
	for i := range sketches {
		sketches[i] = NewTopK(64)
	}
	for i, k := range keys {
		sketches[i%3].ObserveString(k)
	}
	merged := NewTopK(64)
	for _, sk := range sketches {
		merged.Merge(sk)
	}
	for k, tc := range truth {
		count, errBar, ok := merged.Estimate(k)
		if !ok || count != tc || errBar != 0 {
			t.Fatalf("key %s: got (%d,%d,%v), want exact %d", k, count, errBar, ok, tc)
		}
	}
}

// TestQuantileMergeErrorBounds merges K shard sketches and asserts
// every reported quantile stays within the sketch's stated relative
// error of the true quantile over the union of all shard values.
func TestQuantileMergeErrorBounds(t *testing.T) {
	const (
		shards = 4
		gamma  = 1.02
	)
	relErr := (gamma - 1) / (gamma + 1)
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		sketches := make([]*Quantile, shards)
		for i := range sketches {
			sketches[i] = NewQuantile(gamma, 4096)
		}
		var all []float64
		for i := 0; i < 12000; i++ {
			// Log-uniform values spanning ns to ms, like stall durations.
			v := math.Exp(rng.Float64()*14) * 10
			all = append(all, v)
			sketches[i%shards].Observe(v)
		}
		merged := NewQuantile(gamma, 4096)
		for _, sk := range sketches {
			merged.Merge(sk)
		}
		if merged.Count() != uint64(len(all)) {
			t.Fatalf("seed %d: merged count %d, want %d", seed, merged.Count(), len(all))
		}
		if merged.Collapses() != 0 {
			t.Fatalf("seed %d: unexpected collapses with a roomy bucket cap", seed)
		}
		sort.Float64s(all)
		for _, p := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
			got := merged.Query(p)
			want := all[int(p*float64(len(all)-1))]
			if re := math.Abs(got-want) / want; re > relErr+1e-9 {
				t.Fatalf("seed %d: p%.2f = %g, true %g, relative error %g > %g",
					seed, p, got, want, re, relErr)
			}
		}
	}
}

// TestQuantileMergeMatchesSingleStream asserts merge determinism: with
// no collapses, merging K shard sketches yields bucket-identical state
// to one sketch that saw the whole stream — the property that makes a
// cross-shard rollup answer match a single-store run.
func TestQuantileMergeMatchesSingleStream(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	single := NewQuantile(1.02, 4096)
	sketches := []*Quantile{NewQuantile(1.02, 4096), NewQuantile(1.02, 4096), NewQuantile(1.02, 4096)}
	for i := 0; i < 9000; i++ {
		v := math.Exp(rng.Float64() * 12)
		single.Observe(v)
		sketches[i%3].Observe(v)
	}
	merged := NewQuantile(1.02, 4096)
	for _, sk := range sketches {
		merged.Merge(sk)
	}
	for _, p := range []float64{0, 0.1, 0.5, 0.9, 0.99, 0.999, 1} {
		if got, want := merged.Query(p), single.Query(p); got != want {
			t.Fatalf("p%g: merged %g != single-stream %g", p, got, want)
		}
	}
	if merged.Max() != single.Max() || merged.Count() != single.Count() {
		t.Fatalf("merged (max=%g,count=%d) != single (max=%g,count=%d)",
			merged.Max(), merged.Count(), single.Max(), single.Count())
	}
}

// TestSketchStateRoundTrip asserts export/import is lossless for both
// sketch kinds, and that import rejects corrupted states.
func TestSketchStateRoundTrip(t *testing.T) {
	keys, _ := zipfStream(3, 4000, 200)
	tk := NewTopK(16)
	for _, k := range keys {
		tk.ObserveString(k)
	}
	tk2, err := NewTopKFromState(tk.State())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fmt.Sprint(tk2.Top(0)), fmt.Sprint(tk.Top(0)); got != want {
		t.Fatalf("top-k round trip changed the sketch:\n got %s\nwant %s", got, want)
	}
	if tk2.Observed() != tk.Observed() || tk2.Evictions() != tk.Evictions() || tk2.Bytes() != tk.Bytes() {
		t.Fatal("top-k round trip changed the accounting")
	}

	rng := rand.New(rand.NewSource(9))
	q := NewQuantile(1.02, 64)
	for i := 0; i < 5000; i++ {
		q.Observe(math.Exp(rng.Float64() * 16))
	}
	q2, err := NewQuantileFromState(q.State())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []float64{0, 0.5, 0.9, 0.99, 1} {
		if q2.Query(p) != q.Query(p) {
			t.Fatalf("quantile round trip changed p%g", p)
		}
	}
	if q2.Count() != q.Count() || q2.Collapses() != q.Collapses() {
		t.Fatal("quantile round trip changed the accounting")
	}

	// Hostile states must be refused, not imported.
	bad := []struct {
		name string
		err  error
	}{}
	_ = bad
	if _, err := NewTopKFromState(TopKState{Capacity: 0}); err == nil {
		t.Fatal("zero-capacity top-k state imported")
	}
	if _, err := NewTopKFromState(TopKState{Capacity: 1 << 30}); err == nil {
		t.Fatal("huge-capacity top-k state imported")
	}
	if _, err := NewTopKFromState(TopKState{Capacity: 1, Hitters: []HeavyHitter{{Key: "a", Count: 1}, {Key: "b", Count: 1}}}); err == nil {
		t.Fatal("over-capacity hitter list imported")
	}
	if _, err := NewTopKFromState(TopKState{Capacity: 4, Hitters: []HeavyHitter{{Key: "a", Count: 1, Err: 2}}}); err == nil {
		t.Fatal("err > count hitter imported")
	}
	qs := q.State()
	qs.Count++ // break conservation
	if _, err := NewQuantileFromState(qs); err == nil {
		t.Fatal("mass-violating quantile state imported")
	}
	if _, err := NewQuantileFromState(QuantileState{Gamma: 0.5, MaxBuckets: 64}); err == nil {
		t.Fatal("gamma <= 1 quantile state imported")
	}
}

// TestMergeWindowsMatchesSingleStore is the front door's contract in
// miniature: recordless here, pure sketch-level — K per-shard windows
// merged via MergeWindows must agree with one window that saw every
// observation, exactly for counts and within error bars for sketches.
func TestMergeWindowsMatchesSingleStore(t *testing.T) {
	cfg := DefaultConfig()
	mk := func() *pane { return newPane(0, &cfg) }
	shardPanes := []*pane{mk(), mk(), mk()}
	ref := mk()

	keys, truth := zipfStream(11, 6000, 50)
	rng := rand.New(rand.NewSource(11))
	for _, k := range keys {
		// Shard by key, as the router does: hierarchy keys are fabric-
		// prefixed and a fabric lives on exactly one shard, so no key's
		// mass is ever split (the overestimate bound needs that).
		sh := shardPanes[int(k[len(k)-1])%3]
		stall := math.Exp(rng.Float64() * 10)
		for _, p := range []*pane{sh, ref} {
			p.records++
			p.bumpEnum(p.byType, "pfc-storm")
			p.levels[0].ObserveString(k)
			p.stall.Observe(stall)
			p.score.Observe(0.5)
		}
	}
	var sums []Summary
	for _, p := range shardPanes {
		p.closed = true
		sums = append(sums, Summary{
			Start: p.start, End: p.start + p.span, Closed: true,
			Records:  p.records,
			ByType:   copyCounts(p.byType),
			Sketches: p.sketchState(),
		})
	}
	merged, err := MergeWindows(sums)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Records != ref.records {
		t.Fatalf("merged records %d, want %d", merged.Records, ref.records)
	}
	if merged.ByType["pfc-storm"] != ref.byType["pfc-storm"] {
		t.Fatalf("merged type count %d, want %d", merged.ByType["pfc-storm"], ref.byType["pfc-storm"])
	}
	refQ := renderQuantiles(ref.stall)
	if merged.StallNS != refQ {
		t.Fatalf("merged stall quantiles %+v, want %+v", merged.StallNS, refQ)
	}
	// Fabric-level heavy hitters: the SpaceSaving bounds must hold on
	// the merged sketch against the exact counts.
	for _, hh := range merged.TopLevels["fabric"] {
		tc := truth[hh.Key]
		if hh.Count < tc || hh.Count-hh.Err > tc {
			t.Fatalf("merged hitter %s (%d±%d) outside true count %d", hh.Key, hh.Count, hh.Err, tc)
		}
	}
	// Window-span mismatches are refused.
	sums[1].Start++
	if _, err := MergeWindows(sums); err == nil {
		t.Fatal("mismatched window spans merged")
	}
}

// Package rollup is the live semantic summarization layer over the
// fleet store: a streaming summarizer that folds every admitted
// diagnosis record into time-windowed hierarchical rollups so an
// operator tailing the fleet sees "pfc-storm concentrated on pod2 ToR
// uplinks, 312 incidents this window" instead of 312 near-duplicate
// verdicts.
//
// Windows are tumbling panes on the fabric clock; sliding views are
// query-time merges of the most recent panes (sketches are mergeable,
// so no second copy of the stream is kept). Per-pane state is bounded
// by construction: counts per diagnosis attribute (enum-capped),
// SpaceSaving top-K sketches per topology level (fabric -> pod ->
// switch -> port), and log-bucketed quantile sketches for stall
// duration and confidence score. A hard per-pane byte cap is honored by
// shrinking sketch capacities at construction, and every accuracy-
// losing event (sketch eviction, bucket collapse, enum overflow) is
// counted rather than hidden.
package rollup

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"hawkeye/internal/fleetstore"
	"hawkeye/internal/sim"
)

// Level names the topology hierarchy levels a rollup drills into.
// Keys at each level are path-prefixed so a pod's entry is greppable
// from its fabric ("fabA", "fabA/pod2", "fabA/pod2/N5", "fabA/pod2/N5.P3").
var Levels = [4]string{"fabric", "pod", "switch", "port"}

// Config sizes the summarizer. Zero values fall back to defaults; the
// sketch capacities are then shrunk as needed so a pane's worst-case
// accounted footprint never exceeds MaxPaneBytes.
type Config struct {
	// Pane is the tumbling window span on the fabric clock.
	Pane sim.Time
	// MaxPanes bounds how many closed panes are retained (with their
	// sketches) for sliding-window merges and queries.
	MaxPanes int
	// MaxOpenPanes bounds concurrently open panes; overflow closes the
	// oldest early. Out-of-order arrival across fabrics keeps a few
	// panes open at once, but unbounded skew must not mean unbounded
	// state.
	MaxOpenPanes int
	// TopK is the heavy-hitter capacity per topology level.
	TopK int
	// Gamma is the quantile sketch's relative accuracy (>1, e.g. 1.02).
	Gamma float64
	// MaxBuckets caps each quantile sketch's bucket count.
	MaxBuckets int
	// MaxPaneBytes is the hard cap on one pane's accounted bytes.
	MaxPaneBytes int
	// UpdateEvery emits a live "updated" event every this many records
	// folded into a pane (1 = every record; default amortizes).
	UpdateEvery int
	// SubBuf is the default subscriber channel depth.
	SubBuf int
}

// DefaultConfig returns sizes suitable for tests and examples.
func DefaultConfig() Config {
	return Config{
		Pane:         2 * sim.Millisecond,
		MaxPanes:     32,
		MaxOpenPanes: 8,
		TopK:         8,
		Gamma:        1.02,
		MaxBuckets:   128,
		MaxPaneBytes: 16 << 10,
		UpdateEvery:  64,
		SubBuf:       64,
	}
}

// maxEnumKeys caps the per-attribute count maps. Diagnosis enums are
// single-digit cardinality; anything past the cap folds into "other"
// so a corrupted record cannot grow a map without bound.
const maxEnumKeys = 16

// enumOther absorbs attribute values past the enum cap.
const enumOther = "other"

// enumEntryBytes approximates one count-map entry beyond its key.
const enumEntryBytes = 24

// paneFixedBytes is the accounted overhead of a pane shell.
const paneFixedBytes = 192

// worstEnumBytes is the accounted worst case of the three enum maps.
const worstEnumBytes = 3 * maxEnumKeys * (enumEntryBytes + 24)

// worstPaneBytes is the accounted worst case of one pane under cfg.
func worstPaneBytes(topK, maxBuckets int) int {
	return paneFixedBytes + worstEnumBytes +
		len(Levels)*topK*(ssEntryBytes+maxKeyBytes) +
		2*maxBuckets*bucketBytes
}

// withDefaults fills zero fields and shrinks sketch capacities until
// the worst-case pane fits MaxPaneBytes (quantile buckets shrink
// first — the top-K culprit list is the rollup's reason to exist).
func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Pane <= 0 {
		c.Pane = d.Pane
	}
	if c.MaxPanes <= 0 {
		c.MaxPanes = d.MaxPanes
	}
	if c.MaxOpenPanes <= 0 {
		c.MaxOpenPanes = d.MaxOpenPanes
	}
	if c.TopK <= 0 {
		c.TopK = d.TopK
	}
	if c.Gamma <= 1 {
		c.Gamma = d.Gamma
	}
	if c.MaxBuckets <= 0 {
		c.MaxBuckets = d.MaxBuckets
	}
	if c.MaxPaneBytes <= 0 {
		c.MaxPaneBytes = d.MaxPaneBytes
	}
	if c.UpdateEvery <= 0 {
		c.UpdateEvery = d.UpdateEvery
	}
	if c.SubBuf <= 0 {
		c.SubBuf = d.SubBuf
	}
	for worstPaneBytes(c.TopK, c.MaxBuckets) > c.MaxPaneBytes {
		if c.MaxBuckets > 16 {
			c.MaxBuckets /= 2
		} else if c.TopK > 2 {
			c.TopK--
		} else {
			// Floor capacities: a cap below the minimum pane is raised to
			// it, so MaxPaneBytes always states a bound that actually holds.
			c.MaxPaneBytes = worstPaneBytes(c.TopK, c.MaxBuckets)
			break
		}
	}
	return c
}

// Quantiles is a rendered quantile-sketch snapshot.
type Quantiles struct {
	Count uint64  `json:"count"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

// Summary is one rendered window: everything an operator line or a
// wire frame needs, detached from the live sketches.
type Summary struct {
	Start   sim.Time `json:"start"`
	End     sim.Time `json:"end"`
	Closed  bool     `json:"closed"`
	Records uint64   `json:"records"`

	// ByType/ByCause/ByConfidence count records per diagnosis attribute
	// (the constant/varying partition's "what kind" axis).
	ByType       map[string]uint64 `json:"by_type,omitempty"`
	ByCause      map[string]uint64 `json:"by_cause,omitempty"`
	ByConfidence map[string]uint64 `json:"by_confidence,omitempty"`

	// TopLevels holds the heavy-hitter list per topology level
	// ("fabric", "pod", "switch", "port"), count-descending.
	TopLevels map[string][]HeavyHitter `json:"top,omitempty"`

	// StallNS summarizes victim stall durations (ns); Score summarizes
	// diagnosis confidence scores.
	StallNS Quantiles `json:"stall_ns"`
	Score   Quantiles `json:"score"`

	// Bytes is the pane's accounted footprint; Evictions counts every
	// accuracy-losing event folded into it.
	Bytes     int    `json:"bytes"`
	Evictions uint64 `json:"evictions"`

	// Headline is the one-line operator rendering.
	Headline string `json:"headline,omitempty"`

	// Sketches is the window's mergeable sketch state, attached when a
	// query asks for it (cross-shard merging needs states, not rendered
	// quantiles). Nil on ordinary renders.
	Sketches *SummarySketches `json:"sketches,omitempty"`
}

// EventKind classifies rollup lifecycle events.
type EventKind uint8

const (
	// PaneOpened announces a new window.
	PaneOpened EventKind = iota
	// PaneUpdated carries a live snapshot of an open window.
	PaneUpdated
	// PaneClosed carries the final summary of a window.
	PaneClosed
)

func (k EventKind) String() string {
	switch k {
	case PaneOpened:
		return "opened"
	case PaneUpdated:
		return "updated"
	case PaneClosed:
		return "closed"
	}
	return "unknown"
}

// Event is one rollup lifecycle notification.
type Event struct {
	Kind    EventKind
	Summary Summary
}

// pane is one tumbling window's live state.
type pane struct {
	start   sim.Time
	span    sim.Time
	records uint64
	folds   int // records since the last "updated" event

	byType, byCause, byConf map[string]uint64
	enumBytes               int
	enumFolds               uint64

	levels [len(Levels)]*TopK
	stall  *Quantile
	score  *Quantile

	closed bool
}

func newPane(start sim.Time, cfg *Config) *pane {
	p := &pane{
		start:   start,
		span:    cfg.Pane,
		byType:  make(map[string]uint64, 4),
		byCause: make(map[string]uint64, 2),
		byConf:  make(map[string]uint64, 3),
		stall:   NewQuantile(cfg.Gamma, cfg.MaxBuckets),
		score:   NewQuantile(cfg.Gamma, cfg.MaxBuckets),
	}
	for i := range p.levels {
		p.levels[i] = NewTopK(cfg.TopK)
	}
	return p
}

// bumpEnum counts one attribute value, folding overflow into "other".
func (p *pane) bumpEnum(m map[string]uint64, key string) {
	if _, ok := m[key]; !ok && len(m) >= maxEnumKeys {
		key = enumOther
		p.enumFolds++
		if _, ok := m[key]; !ok && len(m) >= maxEnumKeys+1 {
			return // full even of "other": drop, still counted as a fold
		}
	}
	if _, ok := m[key]; !ok {
		p.enumBytes += len(key) + enumEntryBytes
	}
	m[key]++
}

// bytes is the pane's accounted footprint.
func (p *pane) bytes() int {
	b := paneFixedBytes + p.enumBytes
	for _, t := range p.levels {
		b += t.Bytes()
	}
	return b + p.stall.Bytes() + p.score.Bytes()
}

// evictions sums the pane's accuracy-losing events.
func (p *pane) evictions() uint64 {
	ev := p.enumFolds
	for _, t := range p.levels {
		ev += t.Evictions()
	}
	return ev + p.stall.Collapses() + p.score.Collapses()
}

// Sub is one live rollup subscription; same non-blocking discipline as
// the fleetstore hub — a slow subscriber loses events, never stalls
// ingest.
type Sub struct {
	closedOnly bool
	ch         chan Event
	dropped    atomic.Uint64
	closed     bool // guarded by the summarizer mutex
}

// Events is the subscription stream; closed by Unsubscribe or
// summarizer Close.
func (s *Sub) Events() <-chan Event { return s.ch }

// Dropped counts events this subscriber lost to a full buffer.
func (s *Sub) Dropped() uint64 { return s.dropped.Load() }

// Stats is a snapshot of summarizer activity.
type Stats struct {
	// WindowsOpen / WindowsClosed count panes currently live / retired.
	WindowsOpen   int
	WindowsClosed uint64
	// Records counts diagnoses folded in; Late counts records dropped
	// because their pane had already closed.
	Records uint64
	Late    uint64
	// Evictions sums accuracy-losing sketch events across retained panes.
	Evictions uint64
	// BytesInUse is the accounted footprint of all retained panes.
	BytesInUse int
	// EventsDropped counts subscription events lost to slow subscribers.
	EventsDropped uint64
	// Subscribers counts live subscriptions.
	Subscribers int
}

// Summarizer consumes the fleet store's record feed and maintains the
// windowed rollups. It implements fleetstore.RecordObserver; wire it
// with fleetstore.Config.Observer. All folds run under one mutex, so
// output is a deterministic function of the record sequence — the
// store already serializes observer calls through admission.
type Summarizer struct {
	cfg Config

	mu        sync.Mutex
	open      map[int64]*pane
	ring      []*pane // closed panes, oldest first
	watermark sim.Time
	// closedThrough is the pane boundary below which arrivals are late.
	closedThrough sim.Time
	subs          map[*Sub]struct{}
	shut          bool
	scratch       []byte

	records       atomic.Uint64
	late          atomic.Uint64
	windowsClosed atomic.Uint64
	// retiredEvict carries eviction counts of panes trimmed off the ring.
	retiredEvict  uint64
	eventsDropped atomic.Uint64
}

// New builds a summarizer.
func New(cfg Config) *Summarizer {
	return &Summarizer{
		cfg:  cfg.withDefaults(),
		open: make(map[int64]*pane),
		subs: make(map[*Sub]struct{}),
	}
}

// Config returns the effective (defaulted, byte-cap-fitted) config.
func (s *Summarizer) Config() Config { return s.cfg }

// ObserveRecord folds one admitted record. Never blocks on subscribers
// and never errors: a record that cannot be placed (late) is counted
// and dropped.
func (s *Summarizer) ObserveRecord(rec *fleetstore.Record) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.shut || rec.At < 0 {
		return
	}
	if rec.At < s.closedThrough {
		s.late.Add(1)
		return
	}
	idx := int64(rec.At / s.cfg.Pane)
	p := s.open[idx]
	if p == nil {
		if len(s.open) >= s.cfg.MaxOpenPanes {
			s.closeOldestLocked()
		}
		p = newPane(sim.Time(idx)*s.cfg.Pane, &s.cfg)
		s.open[idx] = p
		s.publishLocked(Event{Kind: PaneOpened, Summary: s.renderLocked(p, "", "")})
	}
	s.foldLocked(p, rec)
	s.records.Add(1)
	p.folds++
	if p.folds >= s.cfg.UpdateEvery {
		p.folds = 0
		s.publishLocked(Event{Kind: PaneUpdated, Summary: s.renderLocked(p, "", "")})
	}
}

// foldLocked updates one pane's counters and sketches with rec.
func (s *Summarizer) foldLocked(p *pane, rec *fleetstore.Record) {
	p.records++
	p.bumpEnum(p.byType, rec.Type.String())
	p.bumpEnum(p.byCause, rec.Cause.String())
	p.bumpEnum(p.byConf, rec.Confidence.String())

	// Hierarchy keys share one scratch buffer: each level extends the
	// previous one's path, so drill-down is a prefix match.
	b := append(s.scratch[:0], rec.Fabric...)
	p.levels[0].Observe(b)
	b = append(b, '/')
	if rec.Pod != "" {
		b = append(b, rec.Pod...)
	} else {
		b = append(b, '-')
	}
	p.levels[1].Observe(b)
	b = append(b, '/', 'N')
	b = strconv.AppendInt(b, int64(rec.Node), 10)
	p.levels[2].Observe(b)
	b = append(b, '.', 'P')
	b = strconv.AppendInt(b, int64(rec.Port), 10)
	p.levels[3].Observe(b)
	s.scratch = b

	p.stall.Observe(float64(rec.StallNS))
	p.score.Observe(rec.Score)
}

// AdvanceWatermark closes every open pane whose span has fully passed
// the watermark, publishing final summaries.
func (s *Summarizer) AdvanceWatermark(wm sim.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.shut || wm <= s.watermark {
		return
	}
	s.watermark = wm
	for {
		var oldest *pane
		var oldestIdx int64
		for idx, p := range s.open {
			if oldest == nil || p.start < oldest.start {
				oldest, oldestIdx = p, idx
			}
		}
		if oldest == nil || oldest.start+oldest.span > wm {
			return
		}
		s.closeLocked(oldestIdx, oldest)
	}
}

// closeOldestLocked early-closes the oldest open pane (open-pane cap).
func (s *Summarizer) closeOldestLocked() {
	var oldest *pane
	var oldestIdx int64
	for idx, p := range s.open {
		if oldest == nil || p.start < oldest.start {
			oldest, oldestIdx = p, idx
		}
	}
	if oldest != nil {
		s.closeLocked(oldestIdx, oldest)
	}
}

// closeLocked retires one pane into the ring and publishes its final
// summary.
func (s *Summarizer) closeLocked(idx int64, p *pane) {
	delete(s.open, idx)
	p.closed = true
	if end := p.start + p.span; end > s.closedThrough {
		s.closedThrough = end
	}
	s.ring = append(s.ring, p)
	if len(s.ring) > s.cfg.MaxPanes {
		drop := s.ring[0]
		s.retiredEvict += drop.evictions()
		copy(s.ring, s.ring[1:])
		s.ring[len(s.ring)-1] = nil
		s.ring = s.ring[:len(s.ring)-1]
	}
	s.windowsClosed.Add(1)
	s.publishLocked(Event{Kind: PaneClosed, Summary: s.renderLocked(p, "", "")})
}

// Close retires every open pane (publishing final summaries) and
// closes all subscription streams. Idempotent.
func (s *Summarizer) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.shut {
		return
	}
	for len(s.open) > 0 {
		s.closeOldestLocked()
	}
	s.shut = true
	s.closeSubsLocked()
}

// ResetObserver discards every pane, the watermark and the late-drop
// cutoff, and zeroes the fold counters, keeping subscribers attached.
// It implements fleetstore.ResettableObserver: after a reshard cutover
// the store re-feeds its retained record set in trigger-time order, so
// migrated records — whose trigger times predate the live watermark —
// land in proper panes instead of being dropped as late. No-op once
// shut.
func (s *Summarizer) ResetObserver() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.shut {
		return
	}
	s.open = make(map[int64]*pane)
	s.ring = nil
	s.watermark = 0
	s.closedThrough = 0
	s.records.Store(0)
	s.late.Store(0)
	s.windowsClosed.Store(0)
	s.retiredEvict = 0
}

// CloseSubscribers ends every subscription stream but keeps the
// summarizer folding — the server's drain closes subscriber channels
// early (so forwarders exit) while the ingest queue is still flushing
// its tail into the store, then calls Close once the flush is done so
// final counters cover every admitted record.
func (s *Summarizer) CloseSubscribers() {
	s.mu.Lock()
	s.closeSubsLocked()
	s.mu.Unlock()
}

func (s *Summarizer) closeSubsLocked() {
	for sub := range s.subs {
		delete(s.subs, sub)
		if !sub.closed {
			sub.closed = true
			close(sub.ch)
		}
	}
}

// Subscribe registers a rollup event subscriber. closedOnly suppresses
// opened/updated events, delivering only final window summaries.
func (s *Summarizer) Subscribe(closedOnly bool, buf int) *Sub {
	if buf <= 0 {
		buf = s.cfg.SubBuf
	}
	sub := &Sub{closedOnly: closedOnly, ch: make(chan Event, buf)}
	s.mu.Lock()
	if s.shut {
		sub.closed = true
		close(sub.ch)
	} else {
		s.subs[sub] = struct{}{}
	}
	s.mu.Unlock()
	return sub
}

// Unsubscribe removes a subscriber and closes its stream. Safe to call
// more than once.
func (s *Summarizer) Unsubscribe(sub *Sub) {
	s.mu.Lock()
	if _, ok := s.subs[sub]; ok {
		delete(s.subs, sub)
	}
	if !sub.closed {
		sub.closed = true
		close(sub.ch)
	}
	s.mu.Unlock()
}

// publishLocked fans an event out without blocking; a full subscriber
// buffer drops the event for that subscriber (counted).
func (s *Summarizer) publishLocked(ev Event) {
	for sub := range s.subs {
		if sub.closedOnly && ev.Kind != PaneClosed {
			continue
		}
		select {
		case sub.ch <- ev:
		default:
			sub.dropped.Add(1)
			s.eventsDropped.Add(1)
		}
	}
}

// QueryOpts selects rollup windows. Zero values: Windows <= 0 returns
// every retained pane; Sliding <= 0 skips the merged view; Level and
// Prefix empty return all hierarchy levels unfiltered.
type QueryOpts struct {
	// Windows bounds how many of the most recent panes are returned.
	Windows int
	// Sliding merges the last Sliding panes into one summary.
	Sliding int
	// Level restricts TopLevels to one hierarchy level.
	Level string
	// Prefix restricts heavy-hitter keys to a path prefix — the
	// drill-down handle ("fabA/pod2" narrows every level to that pod).
	Prefix string
	// ClosedOnly excludes still-open panes.
	ClosedOnly bool
	// IncludeSketches attaches each summary's mergeable sketch state —
	// the cross-shard query path sets it so a front door can combine
	// per-shard windows.
	IncludeSketches bool
}

// Result is a query reply: individual panes newest-last, plus the
// optional sliding merge.
type Result struct {
	Panes   []Summary
	Sliding *Summary
}

// Query renders the retained windows. It never touches live sketches
// destructively — sliding merges clone into scratch sketches.
func (s *Summarizer) Query(q QueryOpts) Result {
	s.mu.Lock()
	defer s.mu.Unlock()
	panes := make([]*pane, 0, len(s.ring)+len(s.open))
	panes = append(panes, s.ring...)
	if !q.ClosedOnly {
		for _, p := range s.open {
			panes = append(panes, p)
		}
	}
	sort.Slice(panes, func(i, j int) bool { return panes[i].start < panes[j].start })
	if q.Windows > 0 && len(panes) > q.Windows {
		panes = panes[len(panes)-q.Windows:]
	}
	var res Result
	for _, p := range panes {
		sum := s.renderLocked(p, q.Level, q.Prefix)
		if q.IncludeSketches {
			sum.Sketches = p.sketchState()
		}
		res.Panes = append(res.Panes, sum)
	}
	if q.Sliding > 0 && len(panes) > 0 {
		merge := panes
		if len(merge) > q.Sliding {
			merge = merge[len(merge)-q.Sliding:]
		}
		sl := s.mergeLocked(merge, q.Level, q.Prefix, q.IncludeSketches)
		res.Sliding = &sl
	}
	return res
}

// sketchState exports the pane's mergeable sketch state.
func (p *pane) sketchState() *SummarySketches {
	sk := &SummarySketches{Levels: make(map[string]TopKState, len(Levels))}
	for i, name := range Levels {
		sk.Levels[name] = p.levels[i].State()
	}
	sk.Stall = p.stall.State()
	sk.Score = p.score.State()
	return sk
}

// Stats snapshots summarizer activity.
func (s *Summarizer) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		WindowsOpen:   len(s.open),
		WindowsClosed: s.windowsClosed.Load(),
		Records:       s.records.Load(),
		Late:          s.late.Load(),
		Evictions:     s.retiredEvict,
		EventsDropped: s.eventsDropped.Load(),
		Subscribers:   len(s.subs),
	}
	for _, p := range s.open {
		st.BytesInUse += p.bytes()
		st.Evictions += p.evictions()
	}
	for _, p := range s.ring {
		st.BytesInUse += p.bytes()
		st.Evictions += p.evictions()
	}
	return st
}

// renderLocked snapshots one pane into a Summary, applying the
// level/prefix drill-down filters.
func (s *Summarizer) renderLocked(p *pane, level, prefix string) Summary {
	sum := Summary{
		Start:        p.start,
		End:          p.start + p.span,
		Closed:       p.closed,
		Records:      p.records,
		ByType:       copyCounts(p.byType),
		ByCause:      copyCounts(p.byCause),
		ByConfidence: copyCounts(p.byConf),
		TopLevels:    make(map[string][]HeavyHitter, len(Levels)),
		StallNS:      renderQuantiles(p.stall),
		Score:        renderQuantiles(p.score),
		Bytes:        p.bytes(),
		Evictions:    p.evictions(),
	}
	for i, name := range Levels {
		if level != "" && name != level {
			continue
		}
		hitters := p.levels[i].Top(0)
		sum.TopLevels[name] = filterHitters(hitters, prefix)
	}
	sum.Headline = headline(&sum)
	return sum
}

// mergeLocked folds several panes into one Summary via scratch
// sketches (sketch merges are order-independent up to the deterministic
// trim, and panes are iterated oldest-first).
func (s *Summarizer) mergeLocked(panes []*pane, level, prefix string, includeSketches bool) Summary {
	sum := Summary{
		Start:        panes[0].start,
		End:          panes[len(panes)-1].start + panes[len(panes)-1].span,
		Closed:       true,
		ByType:       make(map[string]uint64),
		ByCause:      make(map[string]uint64),
		ByConfidence: make(map[string]uint64),
		TopLevels:    make(map[string][]HeavyHitter, len(Levels)),
	}
	var tops [len(Levels)]*TopK
	for i := range tops {
		tops[i] = NewTopK(s.cfg.TopK)
	}
	stall := NewQuantile(s.cfg.Gamma, s.cfg.MaxBuckets)
	score := NewQuantile(s.cfg.Gamma, s.cfg.MaxBuckets)
	for _, p := range panes {
		if !p.closed {
			sum.Closed = false
		}
		sum.Records += p.records
		sum.Bytes += p.bytes()
		addCounts(sum.ByType, p.byType)
		addCounts(sum.ByCause, p.byCause)
		addCounts(sum.ByConfidence, p.byConf)
		for i := range tops {
			tops[i].Merge(p.levels[i])
		}
		stall.Merge(p.stall)
		score.Merge(p.score)
	}
	for i, name := range Levels {
		if level != "" && name != level {
			continue
		}
		sum.TopLevels[name] = filterHitters(tops[i].Top(0), prefix)
	}
	sum.StallNS = renderQuantiles(stall)
	sum.Score = renderQuantiles(score)
	for _, t := range tops {
		sum.Evictions += t.Evictions()
	}
	sum.Evictions += stall.Collapses() + score.Collapses()
	if includeSketches {
		sk := &SummarySketches{Levels: make(map[string]TopKState, len(Levels))}
		for i, name := range Levels {
			sk.Levels[name] = tops[i].State()
		}
		sk.Stall = stall.State()
		sk.Score = score.State()
		sum.Sketches = sk
	}
	sum.Headline = headline(&sum)
	return sum
}

func copyCounts(m map[string]uint64) map[string]uint64 {
	out := make(map[string]uint64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func addCounts(dst, src map[string]uint64) {
	for k, v := range src {
		dst[k] += v
	}
}

func renderQuantiles(q *Quantile) Quantiles {
	return Quantiles{
		Count: q.Count(),
		P50:   q.Query(0.50),
		P90:   q.Query(0.90),
		P99:   q.Query(0.99),
		Max:   q.Max(),
	}
}

func filterHitters(hs []HeavyHitter, prefix string) []HeavyHitter {
	if prefix == "" {
		return hs
	}
	out := hs[:0:0]
	for _, h := range hs {
		if len(h.Key) >= len(prefix) && h.Key[:len(prefix)] == prefix {
			out = append(out, h)
		}
	}
	return out
}

// headline renders the one-line operator view of a summary.
func headline(sum *Summary) string {
	topType, topTypeN := topCount(sum.ByType)
	culprit := ""
	for _, lvl := range []string{"switch", "port", "pod", "fabric"} {
		if hs := sum.TopLevels[lvl]; len(hs) > 0 {
			culprit = fmt.Sprintf(", top %s %s (%d)", lvl, hs[0].Key, hs[0].Count)
			break
		}
	}
	state := "open"
	if sum.Closed {
		state = "closed"
	}
	if topType == "" {
		return fmt.Sprintf("[%s - %s] %s: no incidents", sum.Start, sum.End, state)
	}
	return fmt.Sprintf("[%s - %s] %s: %d incidents, mostly %s (%d)%s",
		sum.Start, sum.End, state, sum.Records, topType, topTypeN, culprit)
}

// topCount returns the highest-count key in m (smallest key on ties).
func topCount(m map[string]uint64) (string, uint64) {
	var bestK string
	var bestV uint64
	for k, v := range m {
		if v > bestV || (v == bestV && bestV > 0 && k < bestK) {
			bestK, bestV = k, v
		}
	}
	return bestK, bestV
}

package rollup

import (
	"fmt"
	"reflect"
	"testing"

	"hawkeye/internal/diagnosis"
	"hawkeye/internal/fleetstore"
	"hawkeye/internal/sim"
	"hawkeye/internal/topo"
)

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Pane = sim.Millisecond
	cfg.UpdateEvery = 10
	return cfg
}

func rec(at sim.Time, fabric, pod string, node, port int) fleetstore.Record {
	return fleetstore.Record{
		At:         at,
		Fabric:     fabric,
		Pod:        pod,
		Node:       topo.NodeID(node),
		Port:       port,
		Type:       diagnosis.TypePFCStorm,
		Cause:      diagnosis.CauseHostInjection,
		Confidence: diagnosis.ConfHigh,
		Score:      0.9,
		StallNS:    int64(at / 10),
	}
}

// genStream produces a deterministic pseudo-random record sequence: n
// records spread over several panes, fabrics, pods, nodes and ports.
func genStream(n int, seed uint64) []fleetstore.Record {
	r := lcg(seed)
	recs := make([]fleetstore.Record, 0, n)
	for i := 0; i < n; i++ {
		at := sim.Time(r.next() % uint64(6*sim.Millisecond))
		rc := rec(at,
			fmt.Sprintf("fab%d", r.next()%3),
			fmt.Sprintf("pod%d", r.next()%4),
			int(r.next()%40), int(r.next()%8))
		if i%5 == 0 {
			rc.Type = diagnosis.TypePFCContention
			rc.Cause = diagnosis.CauseFlowContention
			rc.Confidence = diagnosis.ConfLow
			rc.Score = 0.3
		}
		recs = append(recs, rc)
	}
	return recs
}

// TestWindowLifecycle walks one pane from open to closed: records fold
// in, the watermark closes it, late arrivals are counted and dropped.
func TestWindowLifecycle(t *testing.T) {
	s := New(testConfig())
	sub := s.Subscribe(false, 16)

	s.ObserveRecord(&fleetstore.Record{At: 500_000, Fabric: "fabA", Node: 3, Port: 1,
		Type: diagnosis.TypePFCStorm, Cause: diagnosis.CauseHostInjection, Confidence: diagnosis.ConfHigh})
	ev := <-sub.Events()
	if ev.Kind != PaneOpened {
		t.Fatalf("first event %v, want PaneOpened", ev.Kind)
	}
	st := s.Stats()
	if st.WindowsOpen != 1 || st.Records != 1 {
		t.Fatalf("stats after first record: %+v", st)
	}

	// Watermark inside the pane: nothing closes. Past its end: final
	// summary published, pane retired to the ring.
	s.AdvanceWatermark(900_000)
	if st := s.Stats(); st.WindowsClosed != 0 {
		t.Fatalf("pane closed early: %+v", st)
	}
	s.AdvanceWatermark(sim.Time(sim.Millisecond) + 1)
	ev = <-sub.Events()
	if ev.Kind != PaneClosed || !ev.Summary.Closed {
		t.Fatalf("close event: %+v", ev)
	}
	if ev.Summary.Records != 1 || ev.Summary.ByType["pfc-storm"] != 1 {
		t.Fatalf("closed summary: %+v", ev.Summary)
	}
	if got := ev.Summary.TopLevels["switch"]; len(got) != 1 || got[0].Key != "fabA/-/N3" {
		t.Fatalf("switch hitters: %+v", got)
	}
	st = s.Stats()
	if st.WindowsOpen != 0 || st.WindowsClosed != 1 {
		t.Fatalf("stats after close: %+v", st)
	}

	// A record older than the closed boundary is late: counted, not folded.
	s.ObserveRecord(&fleetstore.Record{At: 100, Fabric: "fabA"})
	st = s.Stats()
	if st.Late != 1 || st.Records != 1 {
		t.Fatalf("late record accounting: %+v", st)
	}
	s.Unsubscribe(sub)
}

// TestMaxOpenPanesEarlyCloses: skewed arrival cannot hold more than
// MaxOpenPanes windows open — the oldest closes early instead.
func TestMaxOpenPanesEarlyCloses(t *testing.T) {
	cfg := testConfig()
	cfg.MaxOpenPanes = 3
	s := New(cfg)
	for i := 0; i < 10; i++ {
		r := rec(sim.Time(i)*sim.Millisecond+1, "fab", "pod1", i, 0)
		s.ObserveRecord(&r)
	}
	st := s.Stats()
	if st.WindowsOpen > 3 {
		t.Fatalf("open windows = %d, want <= 3", st.WindowsOpen)
	}
	if st.WindowsClosed != 7 {
		t.Fatalf("closed windows = %d, want 7", st.WindowsClosed)
	}
}

// TestDeterministicAcrossSubscriberTiming pins the issue's determinism
// requirement: identical record sequences produce byte-identical query
// output whether or not a subscriber is attached, and however lazily it
// drains its buffer.
func TestDeterministicAcrossSubscriberTiming(t *testing.T) {
	recs := genStream(5000, 1234)

	run := func(withSub bool) Result {
		s := New(testConfig())
		var sub *Sub
		if withSub {
			sub = s.Subscribe(false, 1) // tiny buffer: most events drop
		}
		for i := range recs {
			r := recs[i]
			s.ObserveRecord(&r)
			if withSub && i%97 == 0 {
				// Drain sporadically, racing nothing: timing must not matter.
				for len(sub.Events()) > 0 {
					<-sub.Events()
				}
			}
		}
		s.AdvanceWatermark(4 * sim.Millisecond)
		return s.Query(QueryOpts{Sliding: 8})
	}

	a, b := run(true), run(false)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("subscriber timing changed rollup output:\nwith sub: %+v\nwithout:  %+v", a, b)
	}
	if len(a.Panes) == 0 || a.Sliding == nil || a.Sliding.Records != 5000 {
		t.Fatalf("query shape: %d panes, sliding %+v", len(a.Panes), a.Sliding)
	}
}

// TestMemoryBoundedUnder100kRecords is the acceptance-criterion test: a
// hostile stream of 100k records with high key cardinality, folded into
// a summarizer with a small byte cap, never grows a pane past the cap
// and visibly pays for it in eviction counters.
func TestMemoryBoundedUnder100kRecords(t *testing.T) {
	cfg := testConfig()
	cfg.MaxPaneBytes = 6 << 10
	s := New(cfg)
	eff := s.Config()
	if worst := worstPaneBytes(eff.TopK, eff.MaxBuckets); worst > eff.MaxPaneBytes {
		t.Fatalf("effective config worst-case %d exceeds cap %d", worst, eff.MaxPaneBytes)
	}

	r := lcg(77)
	const n = 100_000
	for i := 0; i < n; i++ {
		at := sim.Time(i) * sim.Time(40*int64(sim.Millisecond)/n) // sweep 40ms: ~40 panes
		rc := rec(at,
			fmt.Sprintf("fabric-%d", r.next()%50),
			fmt.Sprintf("pod%d", r.next()%30),
			int(r.next()%5000), int(r.next()%64))
		rc.StallNS = int64(r.next() % 1_000_000)
		rc.Score = float64(r.next()%1000) / 1000
		s.ObserveRecord(&rc)

		if i%10_000 == 0 {
			for _, sum := range s.Query(QueryOpts{}).Panes {
				if sum.Bytes > eff.MaxPaneBytes {
					t.Fatalf("record %d: pane %d bytes exceeds cap %d", i, sum.Bytes, eff.MaxPaneBytes)
				}
			}
		}
	}

	st := s.Stats()
	if st.Records != n {
		t.Fatalf("records = %d, want %d", st.Records, n)
	}
	if st.Evictions == 0 {
		t.Fatal("high-cardinality stream caused no sketch evictions: cap not exercised")
	}
	// Total footprint is bounded by the retained-pane budget.
	if max := (eff.MaxPanes + eff.MaxOpenPanes) * eff.MaxPaneBytes; st.BytesInUse > max {
		t.Fatalf("bytes in use %d exceeds retained-pane budget %d", st.BytesInUse, max)
	}
	for _, sum := range s.Query(QueryOpts{}).Panes {
		if sum.Bytes > eff.MaxPaneBytes {
			t.Fatalf("final pane bytes %d exceeds cap %d", sum.Bytes, eff.MaxPaneBytes)
		}
	}
}

// TestConfigShrinksToFitByteCap: a cap smaller than the default sketch
// sizes shrinks bucket and top-K capacities until the worst case fits.
func TestConfigShrinksToFitByteCap(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxPaneBytes = 6 << 10
	eff := New(cfg).Config()
	if eff.MaxBuckets >= DefaultConfig().MaxBuckets && eff.TopK >= DefaultConfig().TopK {
		t.Fatalf("capacities not shrunk: %+v", eff)
	}
	if worst := worstPaneBytes(eff.TopK, eff.MaxBuckets); worst > cfg.MaxPaneBytes {
		t.Fatalf("worst case %d still exceeds cap %d", worst, cfg.MaxPaneBytes)
	}

	// A cap below the floor-capacity pane is raised to the floor, so the
	// effective config never promises a bound the sketches cannot keep.
	cfg.MaxPaneBytes = 1
	eff = New(cfg).Config()
	if worst := worstPaneBytes(eff.TopK, eff.MaxBuckets); eff.MaxPaneBytes != worst {
		t.Fatalf("sub-floor cap: MaxPaneBytes = %d, want floor %d", eff.MaxPaneBytes, worst)
	}
}

// TestQueryDrillDown: level and prefix filters narrow the rendered
// hitters without touching other levels, on panes and sliding merges.
func TestQueryDrillDown(t *testing.T) {
	s := New(testConfig())
	for i := 0; i < 20; i++ {
		r := rec(100, "fabA", "pod1", 5, i%2)
		s.ObserveRecord(&r)
	}
	for i := 0; i < 10; i++ {
		r := rec(200, "fabB", "pod2", 9, 0)
		s.ObserveRecord(&r)
	}

	res := s.Query(QueryOpts{Level: "switch", Prefix: "fabA", Sliding: 4})
	if len(res.Panes) != 1 {
		t.Fatalf("panes = %d, want 1", len(res.Panes))
	}
	sum := res.Panes[0]
	if len(sum.TopLevels) != 1 {
		t.Fatalf("levels rendered = %v, want switch only", sum.TopLevels)
	}
	hs := sum.TopLevels["switch"]
	if len(hs) != 1 || hs[0].Key != "fabA/pod1/N5" || hs[0].Count != 20 {
		t.Fatalf("drill-down hitters: %+v", hs)
	}
	if res.Sliding == nil || len(res.Sliding.TopLevels["switch"]) != 1 {
		t.Fatalf("sliding drill-down: %+v", res.Sliding)
	}

	// Unfiltered query still sees both fabrics at every level.
	full := s.Query(QueryOpts{})
	if got := full.Panes[0].TopLevels["fabric"]; len(got) != 2 {
		t.Fatalf("unfiltered fabric hitters: %+v", got)
	}
	if got := full.Panes[0].TopLevels["port"]; len(got) != 3 {
		t.Fatalf("unfiltered port hitters: %+v", got)
	}
}

// TestClosedOnlySubscriber: a closed-only subscription never sees
// opened/updated chatter, only final summaries.
func TestClosedOnlySubscriber(t *testing.T) {
	cfg := testConfig()
	cfg.UpdateEvery = 1
	s := New(cfg)
	sub := s.Subscribe(true, 64)
	for i := 0; i < 30; i++ {
		r := rec(sim.Time(i)*100_000, "fab", "pod1", i, 0)
		s.ObserveRecord(&r)
	}
	s.Close()
	for ev := range sub.Events() {
		if ev.Kind != PaneClosed {
			t.Fatalf("closed-only subscriber got %v", ev.Kind)
		}
	}
}

// TestCloseFinalizesOpenPanes: Close retires every open pane so final
// counters and subscribers cover the tail of the stream.
func TestCloseFinalizesOpenPanes(t *testing.T) {
	s := New(testConfig())
	for i := 0; i < 3; i++ {
		r := rec(sim.Time(i)*sim.Millisecond+5, "fab", "pod1", i, 0)
		s.ObserveRecord(&r)
	}
	s.Close()
	st := s.Stats()
	if st.WindowsOpen != 0 || st.WindowsClosed != 3 {
		t.Fatalf("stats after Close: %+v", st)
	}
	// Idempotent, and late observers are no-ops after shutdown.
	s.Close()
	r := rec(10*sim.Millisecond, "fab", "pod1", 0, 0)
	s.ObserveRecord(&r)
	if st := s.Stats(); st.Records != 3 {
		t.Fatalf("records folded after Close: %+v", st)
	}
}

// TestRingRetention: only MaxPanes closed panes are kept; evictions of
// retired panes stay visible in Stats.
func TestRingRetention(t *testing.T) {
	cfg := testConfig()
	cfg.MaxPanes = 4
	cfg.MaxOpenPanes = 2
	s := New(cfg)
	for i := 0; i < 20; i++ {
		r := rec(sim.Time(i)*sim.Millisecond+5, "fab", "pod1", i, 0)
		s.ObserveRecord(&r)
	}
	s.AdvanceWatermark(21 * sim.Millisecond)
	res := s.Query(QueryOpts{})
	if len(res.Panes) != 4 {
		t.Fatalf("retained panes = %d, want 4", len(res.Panes))
	}
	// Newest-last ordering.
	for i := 1; i < len(res.Panes); i++ {
		if res.Panes[i-1].Start >= res.Panes[i].Start {
			t.Fatalf("panes out of order: %v then %v", res.Panes[i-1].Start, res.Panes[i].Start)
		}
	}
	if st := s.Stats(); st.WindowsClosed != 20 {
		t.Fatalf("windows closed = %d, want 20", st.WindowsClosed)
	}
}

package rollup

import (
	"math"
	"sort"
)

// Bounded-memory sketches for the rollup layer, sized for switch-style
// budgets (the "Lean Algorithms" discipline): a SpaceSaving heavy-hitter
// summary for the top-K culprit keys per hierarchy level, and a
// DDSketch-style log-bucketed quantile sketch for stall-duration and
// confidence-score distributions. Both have hard capacity caps fixed at
// construction; overflow evicts (counted) instead of growing.

// HeavyHitter is one reported top-K entry. Count is the SpaceSaving
// estimate: an overestimate by at most Err (Count-Err <= true <= Count),
// and every key whose true count exceeds N/capacity is guaranteed to be
// present in the summary.
type HeavyHitter struct {
	Key   string
	Count uint64
	Err   uint64
}

// ssEntry is one monitored counter.
type ssEntry struct {
	count uint64
	err   uint64
}

// TopK is a SpaceSaving heavy-hitter sketch over string keys: at most
// cap monitored counters, each key bounded to maxKeyBytes. Not safe for
// concurrent use; the Summarizer serializes access.
type TopK struct {
	capacity int
	items    map[string]*ssEntry
	keyBytes int // sum of stored key lengths (byte accounting)
	// evictions counts monitored-key replacements — the sketch's
	// error-introducing events.
	evictions uint64
	observed  uint64
}

// maxKeyBytes truncates hierarchy keys so a hostile fabric name cannot
// inflate a sketch past its byte budget.
const maxKeyBytes = 96

// NewTopK builds a SpaceSaving sketch with the given capacity (min 1).
func NewTopK(capacity int) *TopK {
	if capacity < 1 {
		capacity = 1
	}
	return &TopK{capacity: capacity, items: make(map[string]*ssEntry, capacity)}
}

// Observe folds one occurrence of key. Keys longer than maxKeyBytes are
// truncated. Allocation-free on the hot path for already-monitored keys.
func (t *TopK) Observe(key []byte) {
	if len(key) > maxKeyBytes {
		key = key[:maxKeyBytes]
	}
	t.observed++
	// map[string] lookup keyed by []byte: the compiler elides the copy.
	if e, ok := t.items[string(key)]; ok {
		e.count++
		return
	}
	if len(t.items) < t.capacity {
		t.items[string(key)] = &ssEntry{count: 1}
		t.keyBytes += len(key)
		return
	}
	// Replace the minimum counter (SpaceSaving eviction). Ties break on
	// the lexicographically smallest key so the sketch is deterministic.
	minKey, minE := "", (*ssEntry)(nil)
	for k, e := range t.items {
		if minE == nil || e.count < minE.count || (e.count == minE.count && k < minKey) {
			minKey, minE = k, e
		}
	}
	delete(t.items, minKey)
	t.keyBytes += len(key) - len(minKey)
	t.items[string(key)] = &ssEntry{count: minE.count + 1, err: minE.count}
	t.evictions++
}

// ObserveString is Observe for callers holding a string.
func (t *TopK) ObserveString(key string) {
	b := []byte(key)
	t.Observe(b)
}

// Estimate returns the sketch's count bound for key (0 if unmonitored).
func (t *TopK) Estimate(key string) (count, err uint64, ok bool) {
	if e, found := t.items[key]; found {
		return e.count, e.err, true
	}
	return 0, 0, false
}

// Top returns the monitored entries, count-descending (key ascending on
// ties), truncated to n when n > 0.
func (t *TopK) Top(n int) []HeavyHitter {
	out := make([]HeavyHitter, 0, len(t.items))
	for k, e := range t.items {
		out = append(out, HeavyHitter{Key: k, Count: e.count, Err: e.err})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// Merge folds other into t (pane merges for sliding windows): counts of
// shared keys add, new keys are admitted, and the union is trimmed back
// to capacity by dropping the smallest counters (counted as evictions).
func (t *TopK) Merge(other *TopK) {
	for k, oe := range other.items {
		if e, ok := t.items[k]; ok {
			e.count += oe.count
			e.err += oe.err
			continue
		}
		t.items[k] = &ssEntry{count: oe.count, err: oe.err}
		t.keyBytes += len(k)
	}
	t.observed += other.observed
	t.evictions += other.evictions
	if len(t.items) <= t.capacity {
		return
	}
	all := t.Top(0)
	for _, hh := range all[t.capacity:] {
		delete(t.items, hh.Key)
		t.keyBytes -= len(hh.Key)
		t.evictions++
	}
}

// Len is the monitored-key count (<= capacity).
func (t *TopK) Len() int { return len(t.items) }

// Observed is the total number of Observe calls folded in.
func (t *TopK) Observed() uint64 { return t.observed }

// Evictions counts monitored-key replacements.
func (t *TopK) Evictions() uint64 { return t.evictions }

// ssEntryBytes approximates the per-entry overhead of the counter map
// (bucket slot, pointer, entry struct); key bytes are accounted exactly.
const ssEntryBytes = 48

// Bytes is the sketch's accounted size.
func (t *TopK) Bytes() int { return len(t.items)*ssEntryBytes + t.keyBytes }

// Quantile is a DDSketch-style log-bucketed quantile sketch: values land
// in bucket ceil(log_gamma(v)), so any reported quantile is within
// relative error (gamma-1)/(gamma+1) of a true value at that rank, using
// at most maxBuckets buckets. Overflowing the bucket budget collapses
// the two lowest buckets (counted), degrading accuracy only at the
// distribution's low end. Not safe for concurrent use.
type Quantile struct {
	gamma      float64
	lnGamma    float64
	maxBuckets int
	buckets    map[int]uint64
	zero       uint64 // values below minIndexable
	count      uint64
	max        float64
	collapses  uint64
}

// minIndexable floors indexable values; anything smaller lands in the
// zero bucket. 1e-9 keeps sub-nanosecond noise and exact zeros together.
const minIndexable = 1e-9

// NewQuantile builds a sketch with the given relative accuracy
// (gamma > 1, e.g. 1.02 for ~2%) and bucket cap (min 8).
func NewQuantile(gamma float64, maxBuckets int) *Quantile {
	if gamma <= 1 {
		gamma = 1.02
	}
	if maxBuckets < 8 {
		maxBuckets = 8
	}
	return &Quantile{
		gamma:      gamma,
		lnGamma:    math.Log(gamma),
		maxBuckets: maxBuckets,
		buckets:    make(map[int]uint64, maxBuckets),
	}
}

// Observe folds one value (negatives count as zero).
func (q *Quantile) Observe(v float64) {
	q.count++
	if v > q.max {
		q.max = v
	}
	if v < minIndexable {
		q.zero++
		return
	}
	idx := int(math.Ceil(math.Log(v) / q.lnGamma))
	q.buckets[idx]++
	if len(q.buckets) > q.maxBuckets {
		q.collapseLowest()
	}
}

// collapseLowest merges the lowest bucket into the next-lowest,
// preserving total count while shedding one bucket.
func (q *Quantile) collapseLowest() {
	lo, lo2 := math.MaxInt, math.MaxInt
	for idx := range q.buckets {
		if idx < lo {
			lo2 = lo
			lo = idx
		} else if idx < lo2 {
			lo2 = idx
		}
	}
	if lo2 == math.MaxInt {
		return
	}
	q.buckets[lo2] += q.buckets[lo]
	delete(q.buckets, lo)
	q.collapses++
}

// value maps a bucket index back to its representative value (the
// gamma-midpoint of the bucket's range).
func (q *Quantile) value(idx int) float64 {
	return 2 * math.Pow(q.gamma, float64(idx)) / (q.gamma + 1)
}

// Query returns the approximate p-quantile (p in [0,1]). Zero count
// returns 0.
func (q *Quantile) Query(p float64) float64 {
	if q.count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := uint64(p * float64(q.count-1))
	if rank < q.zero {
		return 0
	}
	cum := q.zero
	idxs := make([]int, 0, len(q.buckets))
	for idx := range q.buckets {
		idxs = append(idxs, idx)
	}
	sort.Ints(idxs)
	for _, idx := range idxs {
		cum += q.buckets[idx]
		if cum > rank {
			return q.value(idx)
		}
	}
	return q.max
}

// Merge folds other into q, then re-collapses to the bucket cap.
func (q *Quantile) Merge(other *Quantile) {
	for idx, c := range other.buckets {
		q.buckets[idx] += c
	}
	q.zero += other.zero
	q.count += other.count
	q.collapses += other.collapses
	if other.max > q.max {
		q.max = other.max
	}
	for len(q.buckets) > q.maxBuckets {
		q.collapseLowest()
	}
}

// Count is the number of observed values.
func (q *Quantile) Count() uint64 { return q.count }

// Max is the exact maximum observed value.
func (q *Quantile) Max() float64 { return q.max }

// Collapses counts bucket merges forced by the budget.
func (q *Quantile) Collapses() uint64 { return q.collapses }

// bucketBytes approximates one map[int]uint64 entry.
const bucketBytes = 16

// Bytes is the sketch's accounted size.
func (q *Quantile) Bytes() int { return len(q.buckets) * bucketBytes }

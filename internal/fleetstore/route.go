package fleetstore

import (
	"fmt"

	"hawkeye/internal/fleetstore/wal"
	"hawkeye/internal/sim"
)

// This file is the store's side of fleet routing: the fencing epoch a
// shard carries across promotions and reshard cutovers, the per-fabric
// writer-idempotency watermark that makes routed resends safe, and the
// purge/adopt control records that move a fabric between shards
// durably. Everything here rides the existing WAL and snapshot paths —
// an epoch is a small CRC'd side file, a purge is a tombstone record
// that replays through insert like any admission, so followers and
// crash recovery inherit reshard state for free.

// Control record kinds (Record.Ctrl).
const (
	ctrlPurge = "purge"
	ctrlAdopt = "adopt"
)

// ResettableObserver is a RecordObserver that can drop its derived
// state and be rebuilt by re-observation — the rollup summarizer
// implements it. Reshard cutovers need it: migrated records carry old
// trigger times that a live summarizer would drop as late, so the
// store rebuilds the observer from its retained record set instead.
type ResettableObserver interface {
	RecordObserver
	// ResetObserver discards all derived state; the store follows with
	// a full re-observation in trigger-time order.
	ResetObserver()
}

// loadEpochState initializes the epoch and fence marker from the store
// directory during Open. A directory that has never held an epoch
// claims 1; Config.BumpEpoch (the promotion path) increments past both
// the mirrored epoch and any fence marker, so a promoted follower
// always supersedes the primary it mirrored.
func (st *Store) loadEpochState() error {
	e, err := wal.LoadEpoch(st.dir)
	if err != nil {
		return err
	}
	f, err := wal.LoadFence(st.dir)
	if err != nil {
		return err
	}
	switch {
	case st.cfg.BumpEpoch:
		if f > e {
			e = f
		}
		e++
		if !st.cfg.ReadOnly {
			if err := wal.WriteEpoch(st.dir, e); err != nil {
				return err
			}
			if err := wal.ClearFence(st.dir); err != nil {
				return err
			}
		}
		f = 0
	case e == 0:
		e = 1
		if !st.cfg.ReadOnly {
			if err := wal.WriteEpoch(st.dir, e); err != nil {
				return err
			}
		}
	}
	st.epoch.Store(e)
	st.fencedBy.Store(f)
	return nil
}

// Epoch returns the shard's current fencing epoch.
func (st *Store) Epoch() uint64 { return st.epoch.Load() }

// FencedBy returns the higher epoch this shard has observed for
// itself, 0 when it has never been superseded.
func (st *Store) FencedBy() uint64 { return st.fencedBy.Load() }

// NoteFence durably records that a higher epoch exists for this shard,
// so the demotion survives a restart. Epochs at or below the current
// one (or an already-noted fence) are no-ops.
func (st *Store) NoteFence(epoch uint64) error {
	st.epochMu.Lock()
	defer st.epochMu.Unlock()
	if epoch <= st.epoch.Load() || epoch <= st.fencedBy.Load() {
		return nil
	}
	if st.dir != "" && !st.cfg.ReadOnly {
		if err := wal.WriteFence(st.dir, epoch); err != nil {
			return err
		}
	}
	st.fencedBy.Store(epoch)
	return nil
}

// BumpEpoch increments the epoch past any fence marker and persists
// it, clearing the fence — the cutover path (promotion bumps happen in
// Open via Config.BumpEpoch). Returns the new epoch.
func (st *Store) BumpEpoch() (uint64, error) {
	st.epochMu.Lock()
	defer st.epochMu.Unlock()
	e := st.epoch.Load()
	if f := st.fencedBy.Load(); f > e {
		e = f
	}
	e++
	if st.dir != "" && !st.cfg.ReadOnly {
		if err := wal.WriteEpoch(st.dir, e); err != nil {
			return 0, err
		}
		if err := wal.ClearFence(st.dir); err != nil {
			return 0, err
		}
	}
	st.epoch.Store(e)
	st.fencedBy.Store(0)
	return e, nil
}

// AnnounceEpoch pushes an epoch announce through the replication taps
// so attached followers mirror a cutover bump durably.
func (st *Store) AnnounceEpoch(epoch uint64) {
	if st.log == nil || st.repl.count.Load() == 0 {
		return
	}
	st.gate.RLock()
	st.repl.publish(ReplEntry{Epoch: epoch})
	st.gate.RUnlock()
}

// noteOrigin raises the fabric's writer-idempotency watermark. Called
// on every insert (live, replay and restore paths), so the watermark
// is derivable after any recovery.
func (st *Store) noteOrigin(rec *Record) {
	if rec.OriginSeq == 0 {
		return
	}
	st.originMu.Lock()
	if rec.OriginSeq > st.originHigh[rec.Fabric] {
		st.originHigh[rec.Fabric] = rec.OriginSeq
	}
	st.originMu.Unlock()
}

// OriginWatermark returns the highest writer-idempotency sequence
// admitted for the fabric.
func (st *Store) OriginWatermark(fabric string) uint64 {
	st.originMu.Lock()
	defer st.originMu.Unlock()
	return st.originHigh[fabric]
}

// AdmitOutcome classifies one routed admission attempt.
type AdmitOutcome int

const (
	// Admitted: the record is in the store (and WAL, when durable).
	Admitted AdmitOutcome = iota
	// AdmitDuplicate: the record's OriginSeq is at or below the
	// fabric's watermark — a resend whose original landed.
	AdmitDuplicate
	// AdmitFrozen: the fabric is sealed mid-cutover; the writer must
	// hold and re-resolve ownership.
	AdmitFrozen
)

// AddUnique admits a writer-routed record exactly once: a record whose
// OriginSeq is at or below the fabric's admitted watermark is refused
// as a duplicate without touching the store. The freeze check, the
// watermark reservation and the admission all happen under one
// admission-gate hold, so a record racing FreezeFabric either lands
// before the seal (and is visible to the cutover dump) or is refused —
// never both, never neither. Records without an OriginSeq have no
// dedup key and admit unconditionally (at-least-once).
func (st *Store) AddUnique(rec Record) (Record, AdmitOutcome) {
	st.gate.RLock()
	st.originMu.Lock()
	if _, sealed := st.frozen[rec.Fabric]; sealed {
		st.originMu.Unlock()
		st.gate.RUnlock()
		return Record{}, AdmitFrozen
	}
	if rec.OriginSeq != 0 {
		if rec.OriginSeq <= st.originHigh[rec.Fabric] {
			st.originMu.Unlock()
			st.gate.RUnlock()
			return Record{}, AdmitDuplicate
		}
		st.originHigh[rec.Fabric] = rec.OriginSeq
	}
	st.originMu.Unlock()
	rec, n := st.addLocked(rec)
	st.gate.RUnlock()
	st.maybeCheckpoint(n)
	return rec, Admitted
}

// FreezeFabric seals a fabric against routed admission — the freeze
// cutover op. Taking the gate's write lock makes the seal a barrier:
// every admission in flight completes before it, every one after sees
// the seal. The seal is process-local (not logged); a purge or an
// explicit ThawFabric clears it.
func (st *Store) FreezeFabric(fabric string) {
	st.gate.Lock()
	st.originMu.Lock()
	st.frozen[fabric] = struct{}{}
	st.originMu.Unlock()
	st.gate.Unlock()
}

// ThawFabric lifts a seal without a cutover — the abort path.
func (st *Store) ThawFabric(fabric string) {
	st.originMu.Lock()
	delete(st.frozen, fabric)
	st.originMu.Unlock()
}

// FabricFrozen reports whether the fabric is sealed mid-cutover.
func (st *Store) FabricFrozen(fabric string) bool {
	st.originMu.Lock()
	defer st.originMu.Unlock()
	_, ok := st.frozen[fabric]
	return ok
}

// MovedOut reports whether the fabric has been resharded away from
// this store: its records were purged and writes must be refused.
func (st *Store) MovedOut(fabric string) bool {
	st.originMu.Lock()
	defer st.originMu.Unlock()
	_, ok := st.movedOut[fabric]
	return ok
}

// Purged counts records dropped by reshard releases.
func (st *Store) Purged() uint64 { return st.purged.Load() }

// PurgeFabric executes the release side of a reshard cutover: a
// durable tombstone is appended (and replicated), every retained
// record of the fabric is dropped with its incident memberships
// withdrawn, future writes for the fabric are marked moved-out, and
// the observer is rebuilt from the survivors. Returns the number of
// records dropped.
func (st *Store) PurgeFabric(fabric string) (int, error) {
	before := st.purged.Load()
	if err := st.appendCtrl(fabric, ctrlPurge); err != nil {
		return 0, err
	}
	return int(st.purged.Load() - before), nil
}

// AdoptFabric executes the adopt side of a reshard cutover on the new
// owner: a durable tombstone clears any stale moved-out marker and the
// observer is rebuilt so copied records (whose trigger times predate
// the live watermark) land in their proper rollup panes.
func (st *Store) AdoptFabric(fabric string) error {
	return st.appendCtrl(fabric, ctrlAdopt)
}

// appendCtrl stamps, logs, replicates and applies one control record
// under the admission gate's write lock — the same consistent-cut
// discipline Checkpoint uses, so the tombstone lands at an exact point
// in the admission order on every replica.
func (st *Store) appendCtrl(fabric, kind string) error {
	st.gate.Lock()
	defer st.gate.Unlock()
	rec := Record{Fabric: fabric, Ctrl: kind, Seq: st.seq.Add(1)}
	if st.log != nil {
		payload, err := encodeRecord(&rec)
		if err != nil {
			return err
		}
		if err := st.log.Append(rec.Seq, payload); err != nil {
			return fmt.Errorf("fleetstore: %s tombstone: %w", kind, err)
		}
		if st.repl.count.Load() != 0 {
			st.repl.publish(ReplEntry{Seq: rec.Seq, Payload: payload})
		}
	}
	st.applyCtrl(&rec)
	st.ingested.Add(1)
	return nil
}

// applyCtrl applies one control record's state transition. Shared by
// the live path (appendCtrl) and WAL replay (insert), which is what
// makes a purge crash-safe: a follower promoting after the cutover
// replays the tombstone and drops the fabric exactly as the primary
// did.
func (st *Store) applyCtrl(rec *Record) {
	switch rec.Ctrl {
	case ctrlPurge:
		n := st.applyPurge(rec.Fabric)
		st.purged.Add(uint64(n))
		st.originMu.Lock()
		st.movedOut[rec.Fabric] = struct{}{}
		// The release supersedes any freeze: moved-out refusals take
		// over from here.
		delete(st.frozen, rec.Fabric)
		st.originMu.Unlock()
		st.rebuildObserver()
	case ctrlAdopt:
		st.originMu.Lock()
		delete(st.movedOut, rec.Fabric)
		st.originMu.Unlock()
		st.rebuildObserver()
	}
}

// applyPurge drops the fabric's retained records from every ring,
// withdrawing their incident memberships, and returns how many were
// dropped. Ring admission order is preserved for the survivors so
// later eviction still runs oldest-first.
func (st *Store) applyPurge(fabric string) int {
	var dropped []entry
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.Lock()
		if len(sh.ring) == 0 {
			sh.mu.Unlock()
			continue
		}
		ordered := sh.ring
		if len(sh.ring) == st.cfg.ShardCapacity && sh.next != 0 {
			// A full ring stores oldest at next; rotate back to
			// admission order before filtering.
			ordered = make([]entry, 0, len(sh.ring))
			ordered = append(ordered, sh.ring[sh.next:]...)
			ordered = append(ordered, sh.ring[:sh.next]...)
		}
		kept := make([]entry, 0, len(ordered))
		for _, e := range ordered {
			if e.rec.Fabric == fabric {
				dropped = append(dropped, e)
			} else {
				kept = append(kept, e)
			}
		}
		sh.ring = kept
		sh.next = 0
		sh.mu.Unlock()
	}
	for i := range dropped {
		st.cl.evict(dropped[i].inc, &dropped[i].rec)
	}
	return len(dropped)
}

// rebuildObserver resets a resettable observer and re-feeds it the
// full retained record set in trigger-time order (ties by seq — the
// same order a fresh recovery observes), then re-advances the
// watermark. Trigger-time order matters: copied or surviving records
// must never arrive behind a pane the rebuild has already closed.
func (st *Store) rebuildObserver() {
	obs := st.cfg.Observer
	if obs == nil {
		return
	}
	r, ok := obs.(ResettableObserver)
	if !ok {
		return
	}
	r.ResetObserver()
	recs := st.Records(Query{Node: AnyNode})
	for i := range recs {
		obs.ObserveRecord(&recs[i])
	}
	if wm := st.lastAt.Load(); wm > 0 {
		obs.AdvanceWatermark(sim.Time(wm))
	}
}

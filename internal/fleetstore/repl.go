package fleetstore

import (
	"errors"
	"sync"
	"sync/atomic"
)

// Replication: a durable store can stream its admission log to
// followers. The contract mirrors the WAL's own: every entry a
// follower receives is byte-identical to what the primary appended, so
// the follower's log replays through the same decoder, and promotion
// is nothing more than fleetstore.Open on the follower's directory.
//
// A tap is registered under the admission gate's write lock together
// with the catch-up cut (snapshot or WAL backlog), so no record can
// fall between catch-up and live stream and none is delivered twice.
// Taps are bounded and lossless-or-dead: a follower that cannot keep
// up is dropped (its Done channel closes) and must re-attach with its
// new durable watermark rather than silently miss entries.

// ReplEntry is one replication stream element: a WAL record payload,
// or — when Snapshot is set — a full store snapshot covering Seq, or —
// when Epoch is non-zero — a fencing-epoch announce the follower must
// mirror durably before acking anything past it.
type ReplEntry struct {
	Seq      uint64
	Payload  []byte
	Snapshot bool
	Epoch    uint64
}

type replTap struct {
	ch   chan ReplEntry
	quit chan struct{}
}

// replState is the Store's replication side, zero-valued until the
// first SyncReplica.
type replState struct {
	mu    sync.Mutex
	taps  map[*replTap]struct{}
	count atomic.Int32
	drops atomic.Uint64
}

// publish fans one entry to every tap. Callers hold the admission gate
// (shared for records, exclusive for snapshots), which is what orders
// the stream. Sends never block: a full tap means a stalled follower,
// and stalling every admission for it would invert the design — the
// tap is dropped instead.
func (rs *replState) publish(e ReplEntry) {
	rs.mu.Lock()
	for tp := range rs.taps {
		select {
		case tp.ch <- e:
		default:
			delete(rs.taps, tp)
			rs.count.Add(-1)
			rs.drops.Add(1)
			close(tp.quit)
		}
	}
	rs.mu.Unlock()
}

func (rs *replState) detach(tp *replTap) {
	rs.mu.Lock()
	if _, ok := rs.taps[tp]; ok {
		delete(rs.taps, tp)
		rs.count.Add(-1)
		close(tp.quit)
	}
	rs.mu.Unlock()
}

func (rs *replState) attach(tp *replTap) {
	rs.mu.Lock()
	if rs.taps == nil {
		rs.taps = make(map[*replTap]struct{})
	}
	rs.taps[tp] = struct{}{}
	rs.count.Add(1)
	rs.mu.Unlock()
}

// ErrNotDurable reports replication attempted on an in-memory store.
var ErrNotDurable = errors.New("fleetstore: replication requires a durable store")

// ReplicaSync is an attached replication stream plus the catch-up a
// follower needs to reach the cut it was attached at: either Snapshot
// (covering SnapshotSeq) or Backlog (WAL entries after the follower's
// own watermark), never both non-trivially — the snapshot path is the
// fallback when compaction has moved the requested range out of the
// log.
type ReplicaSync struct {
	// Seq is the primary's admission sequence at the cut; every entry
	// at or below it is in Snapshot/Backlog, every one above arrives on
	// Live.
	Seq uint64
	// Snapshot, when non-nil, is a full store snapshot covering
	// SnapshotSeq (the same payload wal.WriteSnapshot persists).
	SnapshotSeq uint64
	Snapshot    []byte
	// Backlog is the WAL delta after the follower's watermark, in seq
	// order, when the log could serve it contiguously.
	Backlog []ReplEntry
	// Live streams admissions after Seq, plus periodic snapshots from
	// checkpoints. Closed never; watch Done for the tap's death.
	Live <-chan ReplEntry
	// Done closes when the tap is dropped (slow follower) or detached.
	Done <-chan struct{}

	st  *Store
	tap *replTap
}

// Close detaches the stream.
func (r *ReplicaSync) Close() {
	if r.st != nil {
		r.st.repl.detach(r.tap)
	}
}

// SyncReplica attaches a replication stream for a follower whose own
// log reaches fromSeq (0 for an empty follower). The tap registration
// and the catch-up cut happen under the admission gate's write lock —
// the same consistent-cut discipline Checkpoint uses — so the returned
// catch-up plus the live stream is exactly the admission sequence with
// nothing lost and nothing duplicated. buffer bounds the live channel
// (<=0 means 1024).
func (st *Store) SyncReplica(fromSeq uint64, buffer int) (*ReplicaSync, error) {
	if st.log == nil {
		return nil, ErrNotDurable
	}
	if buffer <= 0 {
		buffer = 1024
	}
	st.gate.Lock()
	defer st.gate.Unlock()
	seq := st.seq.Load()
	r := &ReplicaSync{Seq: seq, st: st}
	if fromSeq < seq {
		if first := st.log.FirstSeq(); first != 0 && first <= fromSeq+1 {
			_, err := st.log.IterateFrom(fromSeq, func(s uint64, p []byte) error {
				cp := make([]byte, len(p))
				copy(cp, p)
				r.Backlog = append(r.Backlog, ReplEntry{Seq: s, Payload: cp})
				return nil
			})
			if err != nil {
				return nil, err
			}
		} else {
			// The range starts before the log's first retained entry:
			// compaction owns that history now, so ship state instead.
			payload, err := st.exportState()
			if err != nil {
				return nil, err
			}
			r.Snapshot = payload
			r.SnapshotSeq = seq
		}
	}
	tp := &replTap{ch: make(chan ReplEntry, buffer), quit: make(chan struct{})}
	st.repl.attach(tp)
	r.Live = tp.ch
	r.Done = tp.quit
	r.tap = tp
	return r, nil
}

// Replicas counts attached replication streams.
func (st *Store) Replicas() int { return int(st.repl.count.Load()) }

// ReplDrops counts taps dropped for falling behind.
func (st *Store) ReplDrops() uint64 { return st.repl.drops.Load() }

// Seq returns the store's current admission sequence.
func (st *Store) Seq() uint64 { return st.seq.Load() }

// LastSnapshotSeq returns the sequence covered by the newest snapshot
// this store has written or loaded (0 when none).
func (st *Store) LastSnapshotSeq() uint64 { return st.lastSnapSeq.Load() }

package fleetstore

import (
	"sync"
	"sync/atomic"

	"hawkeye/internal/sim"
)

// Pipeline is the store's concurrent ingest front: a bounded queue in
// front of a worker pool, so a complaint storm from many fabric
// sessions degrades by shedding load (with accounting) instead of
// blocking the sessions mid-protocol. Offer never blocks; the workers
// do the store insertion, clustering, event publication and watermark
// sweeping off the session goroutines.
type Pipeline struct {
	st      *Store
	ch      chan Record
	wg      sync.WaitGroup
	workers int

	dropped atomic.Uint64
	// closeMu serializes Offer's enqueue against Close closing the
	// channel (a bare atomic flag would race send-on-closed).
	closeMu sync.RWMutex
	closed  bool

	// pending tracks queued-but-unprocessed records for Drain.
	pendMu   sync.Mutex
	pendCond *sync.Cond
	pending  int

	// watermark is the highest trigger time processed (for sweeping).
	wmMu      sync.Mutex
	watermark sim.Time
}

// NewPipeline starts workers draining into st. depth <= 0 defaults to
// 1024; workers <= 0 defaults to 4. workers == 0 is allowed via
// NewPipelineManual for tests that want deterministic backpressure.
func NewPipeline(st *Store, depth, workers int) *Pipeline {
	if workers <= 0 {
		workers = 4
	}
	return newPipeline(st, depth, workers)
}

// NewPipelineManual builds a pipeline with no workers: records queue
// until Close drains them synchronously. Tests use it to fill the queue
// deterministically and observe the drop policy.
func NewPipelineManual(st *Store, depth int) *Pipeline {
	return newPipeline(st, depth, 0)
}

func newPipeline(st *Store, depth, workers int) *Pipeline {
	if depth <= 0 {
		depth = 1024
	}
	p := &Pipeline{st: st, ch: make(chan Record, depth), workers: workers}
	p.pendCond = sync.NewCond(&p.pendMu)
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

// Offer enqueues one record. It returns false — counting the drop —
// when the queue is full or the pipeline is closed; the caller sheds
// the record rather than stalling its session.
func (p *Pipeline) Offer(rec Record) bool {
	p.closeMu.RLock()
	defer p.closeMu.RUnlock()
	if p.closed {
		p.dropped.Add(1)
		return false
	}
	p.pendMu.Lock()
	p.pending++
	p.pendMu.Unlock()
	select {
	case p.ch <- rec:
		return true
	default:
		p.unpend()
		p.dropped.Add(1)
		return false
	}
}

func (p *Pipeline) unpend() {
	p.pendMu.Lock()
	p.pending--
	if p.pending == 0 {
		p.pendCond.Broadcast()
	}
	p.pendMu.Unlock()
}

func (p *Pipeline) worker() {
	defer p.wg.Done()
	for rec := range p.ch {
		p.process(rec)
	}
}

func (p *Pipeline) process(rec Record) {
	p.st.Add(rec)
	p.advance(rec.At)
	p.unpend()
}

// advance moves the watermark and sweeps resolved incidents when it
// moves forward. Out-of-order records never move it backwards.
func (p *Pipeline) advance(at sim.Time) {
	p.wmMu.Lock()
	moved := at > p.watermark
	if moved {
		p.watermark = at
	}
	wm := p.watermark
	p.wmMu.Unlock()
	if moved {
		p.st.Sweep(wm)
	}
}

// Drain blocks until every record accepted so far has been processed.
// The analyzer calls it before serving a query so operators read their
// own writes. On a manual (worker-less) pipeline, Drain processes the
// queue itself — callers must not Offer concurrently in that mode.
func (p *Pipeline) Drain() {
	if p.workers == 0 {
		for {
			select {
			case rec := <-p.ch:
				p.process(rec)
			default:
				return
			}
		}
	}
	p.pendMu.Lock()
	for p.pending > 0 {
		p.pendCond.Wait()
	}
	p.pendMu.Unlock()
}

// Dropped counts records shed at the queue.
func (p *Pipeline) Dropped() uint64 { return p.dropped.Load() }

// Pending counts records accepted but not yet processed.
func (p *Pipeline) Pending() int {
	p.pendMu.Lock()
	defer p.pendMu.Unlock()
	return p.pending
}

// Cap is the queue depth.
func (p *Pipeline) Cap() int { return cap(p.ch) }

// Load is the queue fill fraction in [0,1] — the admission-control
// signal analyzd's load-shedding tiers key off.
func (p *Pipeline) Load() float64 {
	return float64(p.Pending()) / float64(cap(p.ch))
}

// Close stops intake, drains anything still queued (synchronously when
// the pipeline has no workers) and waits for the workers to exit.
// Offer after Close drops.
func (p *Pipeline) Close() {
	p.closeMu.Lock()
	if p.closed {
		p.closeMu.Unlock()
		return
	}
	p.closed = true
	close(p.ch)
	p.closeMu.Unlock()
	// With no workers, drain here so queued records are not lost.
	for rec := range p.ch {
		p.process(rec)
	}
	p.wg.Wait()
}

// Package fleetstore is the analyzer's fleet-wide diagnosis memory: a
// sharded, lock-striped store of completed diagnoses from every fabric
// session, a bounded ingest pipeline that absorbs complaint storms
// without blocking the sessions producing them, semantic clustering of
// correlated complaints into operator-facing incidents, and a
// subscription hub that streams incident lifecycle events (opened /
// grew / resolved) to live operator connections. analyzd feeds it;
// operators query and tail it.
package fleetstore

import (
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hawkeye/internal/core"
	"hawkeye/internal/diagnosis"
	"hawkeye/internal/fleetstore/wal"
	"hawkeye/internal/sim"
	"hawkeye/internal/topo"
)

// Record is one diagnosis as the fleet store keeps it: the attributes
// incident clustering and operator queries need, detached from the
// session that produced it.
type Record struct {
	// Fabric names the reporting fabric (one analyzer serves many).
	Fabric string
	// Seq is the store-assigned admission number (global arrival order).
	Seq uint64
	// At is the complaint's trigger time on the fabric clock.
	At sim.Time
	// Victim is the complaining flow, rendered.
	Victim string
	// Type is the diagnosed anomaly class.
	Type diagnosis.AnomalyType
	// Cause is the primary root-cause kind.
	Cause diagnosis.CauseKind
	// Node/Port locate the initial congestion point.
	Node topo.NodeID
	Port int
	// Culprits are the root-cause flows, rendered.
	Culprits []string
	// Loop is the deadlock cycle, when one was found.
	Loop []topo.PortRef
	// Pod names the congestion point's pod tier ("pod2"), empty when
	// the topology has none. Rollups key their hierarchy on it.
	Pod string
	// Confidence/Score grade the evidence behind the verdict.
	Confidence diagnosis.Confidence
	Score      float64
	// StallNS is the victim's offending RTT sample in ns (zero for
	// timeout-triggered complaints).
	StallNS int64
	// OriginSeq is the writer-assigned per-fabric idempotency sequence
	// (0 = not writer-routed). The store tracks the per-fabric high
	// watermark across admissions, WAL replay and snapshot restore, so
	// a resend after a lost ack is refused as a duplicate even across a
	// crash or a failover.
	OriginSeq uint64
	// Ctrl marks a control record in the WAL stream ("purge" or
	// "adopt"): applied to store state on admission and replay, never
	// retained as data and never observed by rollups. Empty for real
	// records.
	Ctrl string
}

// NewRecord projects a completed diagnosis into a store record.
func NewRecord(fabric string, r *core.Result) Record {
	d := r.Diagnosis
	cause := d.PrimaryCause()
	rec := Record{
		Fabric:     fabric,
		At:         r.Trigger.At,
		Victim:     r.Trigger.Victim.String(),
		Type:       d.Type,
		Cause:      cause.Kind,
		Node:       cause.Port.Node,
		Port:       cause.Port.Port,
		Loop:       d.Loop,
		Confidence: d.Confidence,
		Score:      d.ConfidenceScore,
		StallNS:    int64(r.Trigger.RTT),
	}
	for _, f := range cause.Flows {
		rec.Culprits = append(rec.Culprits, f.String())
	}
	return rec
}

// Config sizes the store.
type Config struct {
	// Shards is the lock-stripe count, rounded up to a power of two.
	Shards int
	// ShardCapacity bounds each shard's retention ring; the oldest
	// record is overwritten (and counted evicted) on overflow.
	ShardCapacity int
	// Window is the incident join window: a complaint extends an open
	// incident when its trigger falls within Window of the incident's
	// span (same semantics as core.GroupIncidents).
	Window sim.Time
	// ResolvedKeep bounds how many resolved incidents are retained for
	// queries after they close.
	ResolvedKeep int

	// The fields below only matter to durable stores (Open); New
	// ignores them.

	// SnapshotEvery checkpoints the store every this many admitted
	// records (default 4096); segments the checkpoint covers are
	// compacted away.
	SnapshotEvery int
	// SegmentBytes rolls WAL segments at this size (default 1 MiB).
	SegmentBytes int64
	// GroupWindow is the WAL group-commit gather window: 0 means the
	// 200µs default, negative means synchronous per-append fsyncs.
	GroupWindow time.Duration
	// NoSync skips WAL fsyncs (benchmarks only).
	NoSync bool
	// ReadOnly opens for inspection: replay without repairing the log,
	// and no WAL appends or snapshots afterwards.
	ReadOnly bool
	// BumpEpoch increments the shard's persisted fencing epoch during
	// Open, past any fence marker — the promotion path: a follower
	// promoting into a primary must claim an epoch strictly above the
	// one it mirrored from the old primary.
	BumpEpoch bool

	// Observer, when set, sees every admitted record (live Adds and WAL
	// replay alike, in admission order) and every watermark advance —
	// the hook the rollup summarizer rides. Calls run on the admitting
	// goroutine and must not block.
	Observer RecordObserver
}

// RecordObserver taps the store's admission stream. Implementations
// must be safe for concurrent calls (admissions are) and fast — the
// store invokes them synchronously.
type RecordObserver interface {
	// ObserveRecord sees one admitted record after sequence stamping.
	// The pointer is only valid for the duration of the call.
	ObserveRecord(*Record)
	// AdvanceWatermark mirrors Store.Sweep: all records at or before
	// the watermark have been observed.
	AdvanceWatermark(sim.Time)
}

// DefaultConfig returns sizes suitable for tests and examples; a
// production deployment scales Shards/ShardCapacity with fleet size.
func DefaultConfig() Config {
	return Config{
		Shards:        16,
		ShardCapacity: 4096,
		Window:        2 * sim.Millisecond,
		ResolvedKeep:  1024,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Shards <= 0 {
		c.Shards = d.Shards
	}
	if c.ShardCapacity <= 0 {
		c.ShardCapacity = d.ShardCapacity
	}
	if c.Window <= 0 {
		c.Window = d.Window
	}
	if c.ResolvedKeep <= 0 {
		c.ResolvedKeep = d.ResolvedKeep
	}
	if c.SnapshotEvery <= 0 {
		c.SnapshotEvery = 4096
	}
	return c
}

// entry is one retained record plus the incident it folded into, so
// eviction can withdraw the membership.
type entry struct {
	rec Record
	inc uint64
}

// shard is one lock stripe: a fixed-capacity ring of records in
// admission order, oldest overwritten first.
type shard struct {
	mu   sync.Mutex
	ring []entry
	next int // ring slot the next record lands in once full
}

func (sh *shard) add(e entry, capacity int) (old entry, evicted bool) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if len(sh.ring) < capacity {
		sh.ring = append(sh.ring, e)
		return entry{}, false
	}
	old = sh.ring[sh.next]
	sh.ring[sh.next] = e
	sh.next = (sh.next + 1) % capacity
	return old, true
}

// snapshot appends the shard's records matching q to out.
func (sh *shard) snapshot(q Query, out []Record) []Record {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for i := range sh.ring {
		if q.matches(&sh.ring[i].rec) {
			out = append(out, sh.ring[i].rec)
		}
	}
	return out
}

// export appends every retained entry to out (checkpointing).
func (sh *shard) export(out []entry) []entry {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return append(out, sh.ring...)
}

// Store holds the fleet's diagnosis history. Stores built with New are
// purely in-memory; Open adds crash durability: every admitted record
// is group-committed to a write-ahead log before insertion, the full
// state is checkpointed periodically, and reopening the same directory
// replays snapshot + log back to the pre-crash state.
type Store struct {
	cfg    Config
	shards []shard
	mask   uint64

	seq      atomic.Uint64
	ingested atomic.Uint64
	evicted  atomic.Uint64
	// lastAt is the highest trigger time admitted — the watermark a
	// reopened store sweeps to, reproducing pre-crash resolutions.
	lastAt atomic.Int64

	cl  *clusterer
	hub *Hub

	// Durability state; log == nil for in-memory and read-only stores.
	dir string
	log *wal.Log
	// gate serializes checkpoints (writers) against admissions
	// (readers) so a snapshot is a consistent cut at one seq.
	gate      sync.RWMutex
	snapMu    sync.Mutex
	closeOnce sync.Once
	closeErr  error
	aborted   atomic.Bool

	recovery    wal.RecoveryStats
	replayed    int
	walErrors   atomic.Uint64
	snapshots   atomic.Uint64
	lastSnapSeq atomic.Uint64

	// repl fans admitted WAL payloads out to attached followers.
	repl replState

	// Fencing epoch + writer-dedup + reshard ownership state (route.go).
	epoch    atomic.Uint64
	fencedBy atomic.Uint64
	epochMu  sync.Mutex
	// originMu guards originHigh (per-fabric writer idempotency
	// watermarks), movedOut (fabrics resharded away) and frozen
	// (fabrics sealed mid-cutover).
	originMu   sync.Mutex
	originHigh map[string]uint64
	movedOut   map[string]struct{}
	frozen     map[string]struct{}
	purged     atomic.Uint64
}

// New builds a store. cfg zero-values fall back to DefaultConfig.
func New(cfg Config) *Store {
	cfg = cfg.withDefaults()
	n := 1
	for n < cfg.Shards {
		n <<= 1
	}
	st := &Store{
		cfg:        cfg,
		shards:     make([]shard, n),
		mask:       uint64(n - 1),
		hub:        newHub(),
		originHigh: make(map[string]uint64),
		movedOut:   make(map[string]struct{}),
		frozen:     make(map[string]struct{}),
	}
	st.cl = newClusterer(cfg.Window, cfg.ResolvedKeep, st.hub.publish)
	// In-memory stores live and die in one process: epoch 1, never
	// persisted. Durable stores override this from disk in Open.
	st.epoch.Store(1)
	return st
}

// Open builds a durable store backed by dir: it loads the newest intact
// snapshot, replays WAL entries past it (truncating a torn tail instead
// of failing), sweeps to the recovered watermark so incidents resolved
// before the crash come back resolved, and leaves the log open for
// appends. A directory that has never held a store starts empty. The
// recovery contract: every record whose Add returned before the crash
// is present after Open, exactly once, and incident IDs never repeat
// across the restart.
func Open(dir string, cfg Config) (*Store, error) {
	st := New(cfg)
	cfg = st.cfg // defaults applied
	st.dir = dir

	if err := st.loadEpochState(); err != nil {
		return nil, err
	}

	snapSeq, payload, ok, err := wal.LoadSnapshot(dir)
	if err != nil {
		return nil, err
	}
	if ok {
		if err := st.restore(payload); err != nil {
			return nil, err
		}
		st.lastSnapSeq.Store(snapSeq)
	}
	walOpts := wal.Options{
		SegmentBytes: cfg.SegmentBytes,
		GroupWindow:  cfg.GroupWindow,
		NoSync:       cfg.NoSync,
		ReadOnly:     cfg.ReadOnly,
	}
	log, stats, err := wal.Open(walDir(dir), walOpts, func(seq uint64, payload []byte) error {
		if seq <= snapSeq {
			return nil // the snapshot already owns this entry
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			return err
		}
		rec.Seq = seq
		if seq > st.seq.Load() {
			st.seq.Store(seq)
		}
		st.insert(rec)
		st.ingested.Add(1)
		st.replayed++
		return nil
	})
	if err != nil {
		return nil, err
	}
	st.recovery = stats
	if last := log.LastSeq(); last > st.seq.Load() {
		st.seq.Store(last)
	}
	if !cfg.ReadOnly {
		st.log = log
	}
	// Re-run the sweeps the pre-crash store had already performed: the
	// watermark is the highest admitted trigger time.
	if wm := st.lastAt.Load(); wm > 0 {
		st.Sweep(sim.Time(wm))
	}
	return st, nil
}

// Hub exposes the store's subscription hub.
func (st *Store) Hub() *Hub { return st.hub }

// shardBucket spaces single-fabric storms across stripes: the shard is
// picked from the fabric hash XOR a coarse (~1 ms) time bucket, so one
// fabric's burst does not serialize on one lock while queries can still
// scan all stripes cheaply.
const shardBucketShift = 20

func (st *Store) shardFor(fabric string, at sim.Time) *shard {
	h := fnv.New64a()
	h.Write([]byte(fabric))
	idx := (h.Sum64() ^ (uint64(at) >> shardBucketShift)) & st.mask
	return &st.shards[idx]
}

// Add admits one record synchronously: stamps its sequence number,
// logs it to the WAL when the store is durable (group-committed — when
// Add returns, the record survives a crash), folds it into the incident
// clusters, publishes any resulting lifecycle events, and inserts it
// into its shard ring. Safe for concurrent use. Returns the stamped
// record. A WAL write failure degrades the store to in-memory for that
// record (counted in Counters.WALErrors) rather than shedding a
// diagnosis.
func (st *Store) Add(rec Record) Record {
	st.gate.RLock()
	rec, n := st.addLocked(rec)
	st.gate.RUnlock()
	st.maybeCheckpoint(n)
	return rec
}

// addLocked is Add's core, run under gate.RLock — shared with AddUnique
// so the dedup/freeze decision and the admission happen under one gate
// hold.
func (st *Store) addLocked(rec Record) (Record, uint64) {
	rec.Seq = st.seq.Add(1)
	if st.log != nil {
		if payload, err := encodeRecord(&rec); err != nil {
			st.walErrors.Add(1)
		} else if err := st.log.Append(rec.Seq, payload); err != nil {
			st.walErrors.Add(1)
		} else if st.repl.count.Load() != 0 {
			// Followers mirror the primary's log: only what reached disk
			// here is streamed, byte-identical, under the same gate that
			// orders SyncReplica's cut.
			st.repl.publish(ReplEntry{Seq: rec.Seq, Payload: payload})
		}
	}
	st.insert(rec)
	return rec, st.ingested.Add(1)
}

func (st *Store) maybeCheckpoint(n uint64) {
	if st.log != nil && n%uint64(st.cfg.SnapshotEvery) == 0 {
		st.Checkpoint()
	}
}

// insert folds a stamped record into cluster and ring state. Shared by
// Add and WAL replay — replay is exactly re-running the admissions.
// Control records (reshard purge/adopt tombstones) apply their state
// transition instead of being retained, on both paths, which is what
// makes a purge durable and replicable with no extra machinery.
func (st *Store) insert(rec Record) {
	if rec.Ctrl != "" {
		st.applyCtrl(&rec)
		return
	}
	st.noteOrigin(&rec)
	if st.cfg.Observer != nil {
		st.cfg.Observer.ObserveRecord(&rec)
	}
	incID := st.cl.observe(rec)
	if old, evicted := st.shardFor(rec.Fabric, rec.At).add(entry{rec: rec, inc: incID}, st.cfg.ShardCapacity); evicted {
		st.evicted.Add(1)
		st.cl.evict(old.inc, &old.rec)
	}
	for {
		cur := st.lastAt.Load()
		if int64(rec.At) <= cur || st.lastAt.CompareAndSwap(cur, int64(rec.At)) {
			break
		}
	}
}

// Sweep resolves open incidents whose join window has fully passed at
// the given watermark time, publishing Resolved events. Callers feed it
// the highest trigger time seen (ingest workers do this automatically).
func (st *Store) Sweep(watermark sim.Time) {
	st.cl.sweep(watermark)
	if st.cfg.Observer != nil {
		st.cfg.Observer.AdvanceWatermark(watermark)
	}
}

// Query filters records and incidents. Zero values mean "any":
// Fabric == "", Types == nil, Node < 0 (use AnyNode), To == 0.
type Query struct {
	Fabric string
	Types  []diagnosis.AnomalyType
	Node   topo.NodeID
	From   sim.Time
	To     sim.Time
	Limit  int
}

// AnyNode is the Node wildcard.
const AnyNode topo.NodeID = -1

func (q *Query) matches(rec *Record) bool {
	if q.Fabric != "" && rec.Fabric != q.Fabric {
		return false
	}
	if q.Node >= 0 && rec.Node != q.Node {
		return false
	}
	if rec.At < q.From || (q.To > 0 && rec.At > q.To) {
		return false
	}
	if len(q.Types) == 0 {
		return true
	}
	for _, t := range q.Types {
		if rec.Type == t {
			return true
		}
	}
	return false
}

// Records returns matching records ordered by trigger time (sequence
// number breaks ties), truncated to q.Limit when positive.
func (st *Store) Records(q Query) []Record {
	var out []Record
	for i := range st.shards {
		out = st.shards[i].snapshot(q, out)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		return out[i].Seq < out[j].Seq
	})
	if q.Limit > 0 && len(out) > q.Limit {
		out = out[:q.Limit]
	}
	return out
}

// Incidents returns the clustered incidents (open and retained
// resolved) matching q, ordered by first trigger time.
func (st *Store) Incidents(q Query) []Incident { return st.cl.incidents(q) }

// Counters is a snapshot of store activity.
type Counters struct {
	// Ingested counts records admitted to the store.
	Ingested uint64
	// Evicted counts retention-ring overwrites.
	Evicted uint64
	// Incidents counts every incident ever opened.
	Incidents uint64
	// OpenIncidents counts incidents not yet resolved.
	OpenIncidents int
	// EventsDropped counts subscription events lost to slow subscribers.
	EventsDropped uint64
	// WALErrors counts records that could not be made durable and were
	// kept in memory only.
	WALErrors uint64
	// Snapshots counts checkpoints written this session.
	Snapshots uint64
}

// CountersSnapshot returns the store's activity counters.
func (st *Store) CountersSnapshot() Counters {
	return Counters{
		Ingested:      st.ingested.Load(),
		Evicted:       st.evicted.Load(),
		Incidents:     st.cl.opened.Load(),
		OpenIncidents: st.cl.openCount(),
		EventsDropped: st.hub.dropped.Load(),
		WALErrors:     st.walErrors.Load(),
		Snapshots:     st.snapshots.Load(),
	}
}

// Durable reports whether the store writes a WAL.
func (st *Store) Durable() bool { return st.log != nil }

// Recovery reports what the last Open replayed and repaired; zero for
// in-memory stores.
func (st *Store) Recovery() wal.RecoveryStats { return st.recovery }

// ReplayedRecords counts WAL entries re-admitted by Open (beyond the
// snapshot).
func (st *Store) ReplayedRecords() int { return st.replayed }

// Checkpoint writes a snapshot of the full store state (a consistent
// cut: admissions pause for the serialization) and compacts WAL
// segments the snapshot covers. No-op for in-memory stores. Durable
// stores checkpoint automatically every Config.SnapshotEvery records;
// this is the manual handle (shutdown, operator request).
func (st *Store) Checkpoint() error {
	if st.log == nil {
		return nil
	}
	st.snapMu.Lock()
	defer st.snapMu.Unlock()
	st.gate.Lock()
	seq := st.seq.Load()
	payload, err := st.exportState()
	if err == nil && st.repl.count.Load() != 0 {
		// Ship the checkpoint to followers too (under the gate, so it
		// slots into the stream exactly at its covered seq): a follower
		// that persists it can compact its own log, keeping promotion
		// replay bounded the same way the primary's is.
		st.repl.publish(ReplEntry{Seq: seq, Payload: payload, Snapshot: true})
	}
	st.gate.Unlock()
	if err != nil {
		return err
	}
	if err := wal.WriteSnapshot(st.dir, seq, payload); err != nil {
		return err
	}
	st.snapshots.Add(1)
	st.lastSnapSeq.Store(seq)
	_, err = st.log.Compact(seq)
	return err
}

// Close flushes a final checkpoint and closes the WAL. Idempotent; nil
// for in-memory stores. After an Abort, Close is a no-op — the crash
// already happened.
func (st *Store) Close() error {
	st.closeOnce.Do(func() {
		if st.log == nil || st.aborted.Load() {
			return
		}
		err := st.Checkpoint()
		if cerr := st.log.Close(); err == nil {
			err = cerr
		}
		st.closeErr = err
	})
	return st.closeErr
}

// Abort simulates a crash for harnesses: WAL file handles drop with no
// flush, no final checkpoint is written, and the store refuses further
// durability work. Acknowledged records are already on disk.
func (st *Store) Abort() {
	st.aborted.Store(true)
	if st.log != nil {
		st.log.Abort()
	}
}

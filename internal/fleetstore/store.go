// Package fleetstore is the analyzer's fleet-wide diagnosis memory: a
// sharded, lock-striped store of completed diagnoses from every fabric
// session, a bounded ingest pipeline that absorbs complaint storms
// without blocking the sessions producing them, semantic clustering of
// correlated complaints into operator-facing incidents, and a
// subscription hub that streams incident lifecycle events (opened /
// grew / resolved) to live operator connections. analyzd feeds it;
// operators query and tail it.
package fleetstore

import (
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"

	"hawkeye/internal/core"
	"hawkeye/internal/diagnosis"
	"hawkeye/internal/sim"
	"hawkeye/internal/topo"
)

// Record is one diagnosis as the fleet store keeps it: the attributes
// incident clustering and operator queries need, detached from the
// session that produced it.
type Record struct {
	// Fabric names the reporting fabric (one analyzer serves many).
	Fabric string
	// Seq is the store-assigned admission number (global arrival order).
	Seq uint64
	// At is the complaint's trigger time on the fabric clock.
	At sim.Time
	// Victim is the complaining flow, rendered.
	Victim string
	// Type is the diagnosed anomaly class.
	Type diagnosis.AnomalyType
	// Cause is the primary root-cause kind.
	Cause diagnosis.CauseKind
	// Node/Port locate the initial congestion point.
	Node topo.NodeID
	Port int
	// Culprits are the root-cause flows, rendered.
	Culprits []string
	// Loop is the deadlock cycle, when one was found.
	Loop []topo.PortRef
}

// NewRecord projects a completed diagnosis into a store record.
func NewRecord(fabric string, r *core.Result) Record {
	d := r.Diagnosis
	cause := d.PrimaryCause()
	rec := Record{
		Fabric: fabric,
		At:     r.Trigger.At,
		Victim: r.Trigger.Victim.String(),
		Type:   d.Type,
		Cause:  cause.Kind,
		Node:   cause.Port.Node,
		Port:   cause.Port.Port,
		Loop:   d.Loop,
	}
	for _, f := range cause.Flows {
		rec.Culprits = append(rec.Culprits, f.String())
	}
	return rec
}

// Config sizes the store.
type Config struct {
	// Shards is the lock-stripe count, rounded up to a power of two.
	Shards int
	// ShardCapacity bounds each shard's retention ring; the oldest
	// record is overwritten (and counted evicted) on overflow.
	ShardCapacity int
	// Window is the incident join window: a complaint extends an open
	// incident when its trigger falls within Window of the incident's
	// span (same semantics as core.GroupIncidents).
	Window sim.Time
	// ResolvedKeep bounds how many resolved incidents are retained for
	// queries after they close.
	ResolvedKeep int
}

// DefaultConfig returns sizes suitable for tests and examples; a
// production deployment scales Shards/ShardCapacity with fleet size.
func DefaultConfig() Config {
	return Config{
		Shards:        16,
		ShardCapacity: 4096,
		Window:        2 * sim.Millisecond,
		ResolvedKeep:  1024,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Shards <= 0 {
		c.Shards = d.Shards
	}
	if c.ShardCapacity <= 0 {
		c.ShardCapacity = d.ShardCapacity
	}
	if c.Window <= 0 {
		c.Window = d.Window
	}
	if c.ResolvedKeep <= 0 {
		c.ResolvedKeep = d.ResolvedKeep
	}
	return c
}

// shard is one lock stripe: a fixed-capacity ring of records in
// admission order, oldest overwritten first.
type shard struct {
	mu   sync.Mutex
	ring []Record
	next int // ring slot the next record lands in once full
}

func (sh *shard) add(rec Record, capacity int) (evicted bool) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if len(sh.ring) < capacity {
		sh.ring = append(sh.ring, rec)
		return false
	}
	sh.ring[sh.next] = rec
	sh.next = (sh.next + 1) % capacity
	return true
}

// snapshot appends the shard's records matching q to out.
func (sh *shard) snapshot(q Query, out []Record) []Record {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for i := range sh.ring {
		if q.matches(&sh.ring[i]) {
			out = append(out, sh.ring[i])
		}
	}
	return out
}

// Store holds the fleet's diagnosis history.
type Store struct {
	cfg    Config
	shards []shard
	mask   uint64

	seq      atomic.Uint64
	ingested atomic.Uint64
	evicted  atomic.Uint64

	cl  *clusterer
	hub *Hub
}

// New builds a store. cfg zero-values fall back to DefaultConfig.
func New(cfg Config) *Store {
	cfg = cfg.withDefaults()
	n := 1
	for n < cfg.Shards {
		n <<= 1
	}
	st := &Store{
		cfg:    cfg,
		shards: make([]shard, n),
		mask:   uint64(n - 1),
		hub:    newHub(),
	}
	st.cl = newClusterer(cfg.Window, cfg.ResolvedKeep, st.hub.publish)
	return st
}

// Hub exposes the store's subscription hub.
func (st *Store) Hub() *Hub { return st.hub }

// shardBucket spaces single-fabric storms across stripes: the shard is
// picked from the fabric hash XOR a coarse (~1 ms) time bucket, so one
// fabric's burst does not serialize on one lock while queries can still
// scan all stripes cheaply.
const shardBucketShift = 20

func (st *Store) shardFor(fabric string, at sim.Time) *shard {
	h := fnv.New64a()
	h.Write([]byte(fabric))
	idx := (h.Sum64() ^ (uint64(at) >> shardBucketShift)) & st.mask
	return &st.shards[idx]
}

// Add admits one record synchronously: stamps its sequence number,
// inserts it into its shard ring, folds it into the incident clusters
// and publishes any resulting lifecycle events. Safe for concurrent
// use. Returns the stamped record.
func (st *Store) Add(rec Record) Record {
	rec.Seq = st.seq.Add(1)
	if st.shardFor(rec.Fabric, rec.At).add(rec, st.cfg.ShardCapacity) {
		st.evicted.Add(1)
	}
	st.ingested.Add(1)
	st.cl.observe(rec)
	return rec
}

// Sweep resolves open incidents whose join window has fully passed at
// the given watermark time, publishing Resolved events. Callers feed it
// the highest trigger time seen (ingest workers do this automatically).
func (st *Store) Sweep(watermark sim.Time) { st.cl.sweep(watermark) }

// Query filters records and incidents. Zero values mean "any":
// Fabric == "", Types == nil, Node < 0 (use AnyNode), To == 0.
type Query struct {
	Fabric string
	Types  []diagnosis.AnomalyType
	Node   topo.NodeID
	From   sim.Time
	To     sim.Time
	Limit  int
}

// AnyNode is the Node wildcard.
const AnyNode topo.NodeID = -1

func (q *Query) matches(rec *Record) bool {
	if q.Fabric != "" && rec.Fabric != q.Fabric {
		return false
	}
	if q.Node >= 0 && rec.Node != q.Node {
		return false
	}
	if rec.At < q.From || (q.To > 0 && rec.At > q.To) {
		return false
	}
	if len(q.Types) == 0 {
		return true
	}
	for _, t := range q.Types {
		if rec.Type == t {
			return true
		}
	}
	return false
}

// Records returns matching records ordered by trigger time (sequence
// number breaks ties), truncated to q.Limit when positive.
func (st *Store) Records(q Query) []Record {
	var out []Record
	for i := range st.shards {
		out = st.shards[i].snapshot(q, out)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		return out[i].Seq < out[j].Seq
	})
	if q.Limit > 0 && len(out) > q.Limit {
		out = out[:q.Limit]
	}
	return out
}

// Incidents returns the clustered incidents (open and retained
// resolved) matching q, ordered by first trigger time.
func (st *Store) Incidents(q Query) []Incident { return st.cl.incidents(q) }

// Counters is a snapshot of store activity.
type Counters struct {
	// Ingested counts records admitted to the store.
	Ingested uint64
	// Evicted counts retention-ring overwrites.
	Evicted uint64
	// Incidents counts every incident ever opened.
	Incidents uint64
	// OpenIncidents counts incidents not yet resolved.
	OpenIncidents int
	// EventsDropped counts subscription events lost to slow subscribers.
	EventsDropped uint64
}

// CountersSnapshot returns the store's activity counters.
func (st *Store) CountersSnapshot() Counters {
	return Counters{
		Ingested:      st.ingested.Load(),
		Evicted:       st.evicted.Load(),
		Incidents:     st.cl.opened.Load(),
		OpenIncidents: st.cl.openCount(),
		EventsDropped: st.hub.dropped.Load(),
	}
}

package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Snapshot files sit beside the WAL segments: snap-<seq>.snap holds the
// store state as of sequence number seq, so recovery is "load newest
// intact snapshot, replay WAL entries with seq beyond it". Writes are
// atomic (temp file, fsync, rename) and CRC-checked, so a crash during
// snapshotting leaves the previous snapshot authoritative and a corrupt
// snapshot is skipped in favor of an older one rather than trusted.

const (
	snapPrefix = "snap-"
	snapSuffix = ".snap"
	snapMagic  = "HWKSNAP1"
	// snapKeep retains this many snapshots; older ones are pruned after
	// a successful write.
	snapKeep = 2
	// MaxSnapshot bounds the snapshot file size recovery will read into
	// memory. A fleet store snapshot is MBs; a multi-GB file under the
	// snapshot name is a disk fault or planted garbage, and trusting its
	// size would let it OOM the recovery path.
	MaxSnapshot = 1 << 30
)

func snapName(seq uint64) string {
	return fmt.Sprintf("%s%016x%s", snapPrefix, seq, snapSuffix)
}

func parseSnapName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, snapPrefix) || !strings.HasSuffix(name, snapSuffix) {
		return 0, false
	}
	hex := strings.TrimSuffix(strings.TrimPrefix(name, snapPrefix), snapSuffix)
	var seq uint64
	if _, err := fmt.Sscanf(hex, "%x", &seq); err != nil {
		return 0, false
	}
	return seq, true
}

// WriteSnapshot atomically persists one snapshot covering seq, then
// prunes all but the newest snapKeep snapshot files.
func WriteSnapshot(dir string, seq uint64, payload []byte) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("wal: snapshot dir: %w", err)
	}
	buf := make([]byte, len(snapMagic)+12+len(payload))
	copy(buf, snapMagic)
	binary.BigEndian.PutUint64(buf[len(snapMagic)+4:], seq)
	copy(buf[len(snapMagic)+12:], payload)
	binary.BigEndian.PutUint32(buf[len(snapMagic):], crc32.ChecksumIEEE(buf[len(snapMagic)+4:]))

	final := filepath.Join(dir, snapName(seq))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: snapshot create: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: snapshot write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: snapshot sync: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: snapshot close: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: snapshot rename: %w", err)
	}
	pruneSnapshots(dir)
	return nil
}

// LoadSnapshot returns the newest intact snapshot's covered seq and
// payload, or ok=false when none exists. Corrupt snapshots (bad magic,
// CRC mismatch, truncation) are skipped, falling back to older ones.
func LoadSnapshot(dir string) (seq uint64, payload []byte, ok bool, err error) {
	names, err := snapshotNames(dir)
	if err != nil || len(names) == 0 {
		return 0, nil, false, err
	}
	// Newest first.
	for i := len(names) - 1; i >= 0; i-- {
		path := filepath.Join(dir, names[i])
		if fi, err := os.Stat(path); err != nil || fi.Size() > MaxSnapshot {
			continue
		}
		data, err := os.ReadFile(path)
		if err != nil {
			continue
		}
		if len(data) < len(snapMagic)+12 || string(data[:len(snapMagic)]) != snapMagic {
			continue
		}
		crc := binary.BigEndian.Uint32(data[len(snapMagic):])
		body := data[len(snapMagic)+4:]
		if crc32.ChecksumIEEE(body) != crc {
			continue
		}
		seq = binary.BigEndian.Uint64(body)
		return seq, body[8:], true, nil
	}
	return 0, nil, false, nil
}

// snapshotNames lists snapshot files sorted oldest-first by covered seq.
func snapshotNames(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("wal: list snapshots: %w", err)
	}
	type named struct {
		name string
		seq  uint64
	}
	var snaps []named
	for _, e := range ents {
		if seq, ok := parseSnapName(e.Name()); ok && !e.IsDir() {
			snaps = append(snaps, named{e.Name(), seq})
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].seq < snaps[j].seq })
	out := make([]string, len(snaps))
	for i, s := range snaps {
		out[i] = s.name
	}
	return out, nil
}

func pruneSnapshots(dir string) {
	names, err := snapshotNames(dir)
	if err != nil {
		return
	}
	for len(names) > snapKeep {
		os.Remove(filepath.Join(dir, names[0]))
		names = names[1:]
	}
}

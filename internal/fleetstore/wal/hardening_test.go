package wal

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// TestWALOversizedRecordTreatedAsTear hand-builds a record whose length
// field claims MaxEntry+1 bytes — with a CRC that would verify, so only
// the length bound stands between the claim and a 16 MB+ allocation.
// Replay must stop at the record as if the tail were torn, keep every
// prior entry, and repair so the next open is clean.
func TestWALOversizedRecordTreatedAsTear(t *testing.T) {
	dir := t.TempDir()
	fillLog(t, dir, 5, syncOpts())
	seg := onlySegment(t, dir)

	// Frame layout: [len u32][crc u32][seq u64][payload]. Claim an
	// over-limit length over a small real body, CRC computed over what a
	// believing decoder would hash (seq + the bytes that exist).
	body := make([]byte, 8+16)
	binary.BigEndian.PutUint64(body, 6)
	hdr := make([]byte, 8)
	binary.BigEndian.PutUint32(hdr, MaxEntry+1)
	binary.BigEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(body))
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(append(hdr, body...)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l, stats, seqs := replayAll(t, dir, syncOpts())
	if len(seqs) != 5 || !stats.Torn || stats.TornBytes == 0 {
		t.Fatalf("replayed %d (stats %+v), want 5 with the oversized record torn off", len(seqs), stats)
	}
	// The repair holds: appending continues and a fresh open is clean.
	if err := l.Append(6, entryPayload(6)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, stats2, seqs2 := replayAll(t, dir, syncOpts())
	defer l2.Close()
	if len(seqs2) != 6 || stats2.Torn {
		t.Fatalf("after repair replayed %d (torn=%v), want 6 clean", len(seqs2), stats2.Torn)
	}
}

// TestSnapshotOversizedFileSkipped: a snapshot file beyond MaxSnapshot is
// never read into memory; recovery falls back to the older intact one.
func TestSnapshotOversizedFileSkipped(t *testing.T) {
	dir := t.TempDir()
	if err := WriteSnapshot(dir, 7, []byte("good state")); err != nil {
		t.Fatal(err)
	}
	// Plant a newer "snapshot" that is just a huge sparse file.
	huge := filepath.Join(dir, snapName(9))
	f, err := os.Create(huge)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(MaxSnapshot + 1); err != nil {
		f.Close()
		t.Skip("filesystem cannot create sparse test file")
	}
	f.Close()

	seq, payload, ok, err := LoadSnapshot(dir)
	if err != nil || !ok {
		t.Fatalf("load: ok=%v err=%v", ok, err)
	}
	if seq != 7 || string(payload) != "good state" {
		t.Fatalf("loaded seq %d payload %q, want the older intact snapshot", seq, payload)
	}
}

package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// syncOpts is the deterministic mode: every Append fsyncs inline.
func syncOpts() Options { return Options{GroupWindow: -1} }

func entryPayload(i int) []byte { return []byte(fmt.Sprintf("record-%04d", i)) }

func fillLog(t *testing.T, dir string, n int, opts Options) {
	t.Helper()
	l, _, err := Open(dir, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= n; i++ {
		if err := l.Append(uint64(i), entryPayload(i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// replayAll reopens dir and collects every replayed entry.
func replayAll(t *testing.T, dir string, opts Options) (*Log, RecoveryStats, []uint64) {
	t.Helper()
	var seqs []uint64
	l, stats, err := Open(dir, opts, func(seq uint64, payload []byte) error {
		if want := entryPayload(int(seq)); !bytes.Equal(payload, want) {
			t.Fatalf("seq %d payload %q, want %q", seq, payload, want)
		}
		seqs = append(seqs, seq)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return l, stats, seqs
}

func onlySegment(t *testing.T, dir string) string {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, segPrefix+"*"+segSuffix))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments in %s (err %v)", dir, err)
	}
	return segs[len(segs)-1]
}

func TestWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	fillLog(t, dir, 50, syncOpts())
	l, stats, seqs := replayAll(t, dir, syncOpts())
	defer l.Close()
	if len(seqs) != 50 || stats.Torn {
		t.Fatalf("replayed %d entries (torn=%v), want 50 clean", len(seqs), stats.Torn)
	}
	for i, s := range seqs {
		if s != uint64(i+1) {
			t.Fatalf("seq[%d] = %d, want %d", i, s, i+1)
		}
	}
	if l.LastSeq() != 50 {
		t.Fatalf("LastSeq = %d, want 50", l.LastSeq())
	}
}

// TestWALTornTailTruncated cuts the segment mid-record: replay keeps the
// intact prefix, truncates the tear, and the log accepts new appends.
func TestWALTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	fillLog(t, dir, 10, syncOpts())
	seg := onlySegment(t, dir)
	info, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Tear 5 bytes into the last record (header survives, payload torn).
	if err := os.Truncate(seg, info.Size()-5); err != nil {
		t.Fatal(err)
	}
	l, stats, seqs := replayAll(t, dir, syncOpts())
	if len(seqs) != 9 || !stats.Torn || stats.TornBytes == 0 {
		t.Fatalf("replayed %d (stats %+v), want 9 with a recorded tear", len(seqs), stats)
	}
	// The tail was repaired: appending continues from seq 10.
	if err := l.Append(10, entryPayload(10)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, stats2, seqs2 := replayAll(t, dir, syncOpts())
	defer l2.Close()
	if len(seqs2) != 10 || stats2.Torn {
		t.Fatalf("after repair+append replayed %d (torn=%v), want 10 clean", len(seqs2), stats2.Torn)
	}
}

// TestWALGarbageTailTruncated appends random junk (a torn group-commit
// batch) after valid records; replay must cut exactly the junk.
func TestWALGarbageTailTruncated(t *testing.T) {
	dir := t.TempDir()
	fillLog(t, dir, 7, syncOpts())
	seg := onlySegment(t, dir)
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe, 0xef, 0x00, 0x01, 0x02}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	l, stats, seqs := replayAll(t, dir, syncOpts())
	defer l.Close()
	if len(seqs) != 7 || !stats.Torn || stats.TornBytes != 7 {
		t.Fatalf("replayed %d, stats %+v; want 7 entries, 7 torn bytes", len(seqs), stats)
	}
}

// TestWALCRCMismatchStopsReplay flips a byte inside an early record:
// replay must stop at the corruption instead of delivering garbage, and
// truncate there so the log is consistent again.
func TestWALCRCMismatchStopsReplay(t *testing.T) {
	dir := t.TempDir()
	fillLog(t, dir, 10, syncOpts())
	seg := onlySegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the 4th record's payload: 3 intact entries precede it.
	entry := headerSize + len(entryPayload(1))
	data[3*entry+headerSize+2] ^= 0xFF
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	l, stats, seqs := replayAll(t, dir, syncOpts())
	defer l.Close()
	if len(seqs) != 3 {
		t.Fatalf("replayed %d entries past corruption, want 3", len(seqs))
	}
	if !stats.Torn {
		t.Fatal("corruption not reported as a tear")
	}
	info, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() != int64(3*entry) {
		t.Fatalf("segment %d bytes after repair, want %d", info.Size(), 3*entry)
	}
}

// TestWALFsyncReorderDropsLaterSegments simulates the reorder a crash
// can expose: a later segment hit disk while the earlier segment's tail
// was torn. Replay must stop at the tear and drop the later segment —
// its entries were never acknowledged as following a durable prefix.
func TestWALFsyncReorderDropsLaterSegments(t *testing.T) {
	dir := t.TempDir()
	// Small segments force a roll: ~3 entries per segment.
	opts := Options{GroupWindow: -1, SegmentBytes: 3 * int64(headerSize+len(entryPayload(1)))}
	fillLog(t, dir, 10, opts)
	segs, err := filepath.Glob(filepath.Join(dir, segPrefix+"*"+segSuffix))
	if err != nil || len(segs) < 2 {
		t.Fatalf("want >= 2 segments, got %v (err %v)", segs, err)
	}
	// Tear the tail of the first segment.
	info, err := os.Stat(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(segs[0], info.Size()-3); err != nil {
		t.Fatal(err)
	}
	l, stats, seqs := replayAll(t, dir, opts)
	defer l.Close()
	if stats.DroppedSegments == 0 {
		t.Fatalf("no segments dropped after mid-log tear (stats %+v)", stats)
	}
	// Entries stop before the torn segment's last record; none from the
	// dropped segments appear.
	for i, s := range seqs {
		if s != uint64(i+1) {
			t.Fatalf("replay out of order after tear: seq[%d] = %d", i, s)
		}
	}
	if len(seqs) >= 10 {
		t.Fatalf("replayed %d entries, want a strict prefix of 10", len(seqs))
	}
	if rest, _ := filepath.Glob(filepath.Join(dir, segPrefix+"*"+segSuffix)); len(rest) != 1 {
		t.Fatalf("%d segments remain after drop, want 1", len(rest))
	}
}

// TestWALGroupCommitBatches proves concurrent appends share fsyncs: all
// durable on return, with strictly fewer syncs than appends.
func TestWALGroupCommitBatches(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, Options{GroupWindow: 2 * time.Millisecond}, nil)
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = l.Append(uint64(i+1), entryPayload(i+1))
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("append %d: %v", i+1, err)
		}
	}
	if l.Appends() != n {
		t.Fatalf("appends = %d, want %d", l.Appends(), n)
	}
	if l.Syncs() >= n {
		t.Fatalf("syncs = %d for %d appends: group commit did not batch", l.Syncs(), n)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, _, seqs := replayAll(t, dir, syncOpts())
	defer l2.Close()
	if len(seqs) != n {
		t.Fatalf("replayed %d entries, want %d", len(seqs), n)
	}
}

func TestWALAppendAfterCloseAndAbort(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, syncOpts(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(1, entryPayload(1)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if err := l.Append(2, entryPayload(2)); err != ErrClosed {
		t.Fatalf("append after close: %v, want ErrClosed", err)
	}

	l2, _, err := Open(dir, syncOpts(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := l2.Append(2, entryPayload(2)); err != nil {
		t.Fatal(err)
	}
	l2.Abort()
	l2.Abort() // idempotent
	if err := l2.Append(3, entryPayload(3)); err != ErrClosed {
		t.Fatalf("append after abort: %v, want ErrClosed", err)
	}
	// Both acknowledged entries survive the abort: ack == synced.
	l3, _, seqs := replayAll(t, dir, syncOpts())
	defer l3.Close()
	if len(seqs) != 2 {
		t.Fatalf("replayed %d entries after abort, want 2", len(seqs))
	}
}

func TestWALCompact(t *testing.T) {
	dir := t.TempDir()
	opts := Options{GroupWindow: -1, SegmentBytes: 3 * int64(headerSize+len(entryPayload(1)))}
	l, _, err := Open(dir, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 12; i++ {
		if err := l.Append(uint64(i), entryPayload(i)); err != nil {
			t.Fatal(err)
		}
	}
	before := l.Segments()
	if before < 3 {
		t.Fatalf("want >= 3 segments before compaction, got %d", before)
	}
	removed, err := l.Compact(6) // snapshot covers seqs 1..6
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 || l.Segments() >= before {
		t.Fatalf("compaction removed %d (segments %d -> %d)", removed, before, l.Segments())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Replay only sees post-compaction entries; the snapshot owns the rest.
	var seqs []uint64
	l2, _, err := Open(dir, opts, func(seq uint64, _ []byte) error {
		seqs = append(seqs, seq)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	for _, s := range seqs {
		if s <= 3 {
			t.Fatalf("compacted entry seq %d replayed", s)
		}
	}
	if len(seqs) == 0 || seqs[len(seqs)-1] != 12 {
		t.Fatalf("tail entries missing after compaction: %v", seqs)
	}
}

func TestSnapshotRoundTripAndCorruption(t *testing.T) {
	dir := t.TempDir()
	if _, _, ok, err := LoadSnapshot(dir); ok || err != nil {
		t.Fatalf("empty dir: ok=%v err=%v", ok, err)
	}
	if err := WriteSnapshot(dir, 10, []byte("state-at-10")); err != nil {
		t.Fatal(err)
	}
	if err := WriteSnapshot(dir, 20, []byte("state-at-20")); err != nil {
		t.Fatal(err)
	}
	seq, payload, ok, err := LoadSnapshot(dir)
	if err != nil || !ok || seq != 20 || string(payload) != "state-at-20" {
		t.Fatalf("load: seq=%d payload=%q ok=%v err=%v", seq, payload, ok, err)
	}
	// Corrupt the newest: loader falls back to the older snapshot.
	data, err := os.ReadFile(filepath.Join(dir, snapName(20)))
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(filepath.Join(dir, snapName(20)), data, 0o644); err != nil {
		t.Fatal(err)
	}
	seq, payload, ok, err = LoadSnapshot(dir)
	if err != nil || !ok || seq != 10 || string(payload) != "state-at-10" {
		t.Fatalf("fallback load: seq=%d payload=%q ok=%v err=%v", seq, payload, ok, err)
	}
	// Pruning keeps the newest snapKeep files.
	for s := uint64(30); s <= 60; s += 10 {
		if err := WriteSnapshot(dir, s, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	names, err := snapshotNames(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != snapKeep {
		t.Fatalf("%d snapshots retained, want %d", len(names), snapKeep)
	}
}

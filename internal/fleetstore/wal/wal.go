// Package wal gives the fleet store crash durability. It is two
// mechanisms behind one directory:
//
//   - a segmented write-ahead log: fixed-framed entries ([len][crc][seq]
//     [payload], CRC-32 over seq+payload) appended to roll-over segment
//     files, with group-commit batching so a storm of concurrent appends
//     costs one fsync per batch, not per record;
//   - atomic state snapshots: the store's full state serialized to a
//     snap file (written to a temp name, fsynced, renamed), after which
//     the segments the snapshot covers are compactable.
//
// Recovery is deliberately forgiving about the one corruption a crash
// legitimately produces — a torn tail. Replay verifies every entry's
// CRC; at the first bad entry it truncates the segment there, drops any
// later segments (an fsync reorder can persist a later segment while
// the earlier tail is torn), and reports what it cut. Everything before
// the tear — every entry whose Append returned — survives.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

const (
	// headerSize frames one entry: 4-byte payload length, 4-byte CRC-32
	// (IEEE, over seq+payload), 8-byte sequence number.
	headerSize = 16
	// MaxEntry bounds one entry's payload; a fleet record is well under
	// a kilobyte, so anything near this is corruption, not data.
	MaxEntry = 16 << 20

	segPrefix = "seg-"
	segSuffix = ".wal"
)

// ErrClosed reports an append against a closed (or aborted) log.
var ErrClosed = errors.New("wal: log closed")

// Options tunes the log.
type Options struct {
	// SegmentBytes rolls the active segment once it grows past this
	// (default 1 MiB).
	SegmentBytes int64
	// GroupWindow is the group-commit gather window: the first append of
	// a batch waits this long for companions before the batch is written
	// and fsynced once. Zero defaults to 200µs; negative means fully
	// synchronous appends (each Append writes and syncs inline — the
	// deterministic mode tests and the crash harness use).
	GroupWindow time.Duration
	// MaxBatch caps entries per group commit (default 64).
	MaxBatch int
	// NoSync skips fsync (benchmarks only; forfeits the durability
	// contract).
	NoSync bool
	// ReadOnly opens for replay only: no repair truncation, no appends.
	ReadOnly bool
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 1 << 20
	}
	if o.GroupWindow == 0 {
		o.GroupWindow = 200 * time.Microsecond
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 64
	}
	return o
}

// RecoveryStats reports what replay found and repaired.
type RecoveryStats struct {
	// Entries replayed successfully.
	Entries int
	// TornBytes truncated off the tail of the torn segment.
	TornBytes int64
	// DroppedSegments deleted because they followed a torn segment.
	DroppedSegments int
	// Torn is set when a tear was found (and, unless ReadOnly, repaired).
	Torn bool
}

// segment is one on-disk log file; FirstSeq is baked into the name so a
// directory listing orders the log.
type segment struct {
	path     string
	firstSeq uint64
	lastSeq  uint64
	size     int64
}

type appendReq struct {
	seq     uint64
	payload []byte
	done    chan error
}

// Log is an open write-ahead log.
type Log struct {
	dir  string
	opts Options

	// stateMu guards closed against concurrent Append/Close/Abort.
	stateMu sync.RWMutex
	closed  bool

	// mu guards the file and segment index.
	mu       sync.Mutex
	active   *os.File
	actSize  int64
	actSeg   int // index into segments of the active one
	segments []segment

	lastSeq atomic.Uint64
	syncs   atomic.Uint64
	appends atomic.Uint64

	reqs        chan *appendReq
	quit        chan struct{}
	flusherDone chan struct{}
}

func segName(firstSeq uint64) string {
	return fmt.Sprintf("%s%016x%s", segPrefix, firstSeq, segSuffix)
}

func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	hex := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
	var seq uint64
	if _, err := fmt.Sscanf(hex, "%x", &seq); err != nil {
		return 0, false
	}
	return seq, true
}

// Open replays the log under dir (creating it if absent), invoking
// replay for every intact entry in order, then leaves the log open for
// appends. A torn tail is truncated (and segments past it dropped)
// rather than failing the open; the stats say what was cut. With
// Options.ReadOnly the directory is left untouched and the returned Log
// only answers metadata queries.
func Open(dir string, opts Options, replay func(seq uint64, payload []byte) error) (*Log, RecoveryStats, error) {
	opts = opts.withDefaults()
	var stats RecoveryStats
	if !opts.ReadOnly {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, stats, fmt.Errorf("wal: create dir: %w", err)
		}
	}
	l := &Log{dir: dir, opts: opts}

	segs, err := listSegments(dir)
	if err != nil {
		return nil, stats, err
	}
	torn := -1 // index of the segment where replay hit a tear
	for i := range segs {
		seg := &segs[i]
		good, last, n, err := l.replaySegment(seg, replay)
		if err != nil {
			return nil, stats, err
		}
		stats.Entries += n
		if last > 0 {
			seg.lastSeq = last
			l.lastSeq.Store(last)
		}
		if good < seg.size { // tear inside this segment
			stats.Torn = true
			stats.TornBytes += seg.size - good
			torn = i
			if !opts.ReadOnly {
				if err := os.Truncate(seg.path, good); err != nil {
					return nil, stats, fmt.Errorf("wal: truncate torn tail: %w", err)
				}
			}
			seg.size = good
			break
		}
	}
	if torn >= 0 && torn+1 < len(segs) {
		// Segments past a tear are unreachable history: an fsync reorder
		// persisted them ahead of the torn tail. Drop them.
		for _, seg := range segs[torn+1:] {
			stats.DroppedSegments++
			if !opts.ReadOnly {
				if err := os.Remove(seg.path); err != nil {
					return nil, stats, fmt.Errorf("wal: drop post-tear segment: %w", err)
				}
			}
		}
		segs = segs[:torn+1]
	}
	l.segments = segs

	if opts.ReadOnly {
		l.closed = true
		return l, stats, nil
	}
	if err := l.openActive(); err != nil {
		return nil, stats, err
	}
	if opts.GroupWindow > 0 {
		l.reqs = make(chan *appendReq, opts.MaxBatch*2)
		l.quit = make(chan struct{})
		l.flusherDone = make(chan struct{})
		go l.flusher()
	}
	return l, stats, nil
}

func listSegments(dir string) ([]segment, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("wal: list segments: %w", err)
	}
	var segs []segment
	for _, e := range ents {
		first, ok := parseSegName(e.Name())
		if !ok || e.IsDir() {
			continue
		}
		info, err := e.Info()
		if err != nil {
			return nil, fmt.Errorf("wal: stat segment: %w", err)
		}
		segs = append(segs, segment{
			path:     filepath.Join(dir, e.Name()),
			firstSeq: first,
			size:     info.Size(),
		})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].firstSeq < segs[j].firstSeq })
	return segs, nil
}

// replaySegment scans one segment, invoking replay per intact entry.
// It returns the byte offset of the last intact entry boundary, the
// last seq replayed (0 when none) and the entry count.
func (l *Log) replaySegment(seg *segment, replay func(uint64, []byte) error) (good int64, last uint64, n int, err error) {
	data, err := os.ReadFile(seg.path)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("wal: read segment: %w", err)
	}
	off := 0
	for {
		if len(data)-off < headerSize {
			break // clean end, or torn header
		}
		length := binary.BigEndian.Uint32(data[off:])
		crc := binary.BigEndian.Uint32(data[off+4:])
		if length > MaxEntry || len(data)-off-headerSize < int(length) {
			break // torn or garbage length
		}
		body := data[off+8 : off+headerSize+int(length)] // seq bytes + payload
		if crc32.ChecksumIEEE(body) != crc {
			break // torn write or bit rot: stop here
		}
		seq := binary.BigEndian.Uint64(data[off+8:])
		payload := data[off+headerSize : off+headerSize+int(length)]
		if replay != nil {
			if err := replay(seq, payload); err != nil {
				return 0, 0, 0, fmt.Errorf("wal: replay entry seq %d: %w", seq, err)
			}
		}
		last = seq
		n++
		off += headerSize + int(length)
	}
	return int64(off), last, n, nil
}

// openActive opens the last segment for append, or creates the first.
func (l *Log) openActive() error {
	if len(l.segments) == 0 || l.segments[len(l.segments)-1].size >= l.opts.SegmentBytes {
		return l.rollLocked()
	}
	seg := &l.segments[len(l.segments)-1]
	f, err := os.OpenFile(seg.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: open active segment: %w", err)
	}
	l.active = f
	l.actSize = seg.size
	l.actSeg = len(l.segments) - 1
	return nil
}

// rollLocked closes the active segment and starts a new one named after
// the next sequence number. Callers hold mu (or are single-threaded in
// Open).
func (l *Log) rollLocked() error {
	if l.active != nil {
		if !l.opts.NoSync {
			if err := l.active.Sync(); err != nil {
				return fmt.Errorf("wal: sync on roll: %w", err)
			}
			l.syncs.Add(1)
		}
		if err := l.active.Close(); err != nil {
			return fmt.Errorf("wal: close on roll: %w", err)
		}
	}
	first := l.lastSeq.Load() + 1
	path := filepath.Join(l.dir, segName(first))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	l.segments = append(l.segments, segment{path: path, firstSeq: first})
	l.active = f
	l.actSize = 0
	l.actSeg = len(l.segments) - 1
	return nil
}

func encodeEntry(seq uint64, payload []byte) []byte {
	buf := make([]byte, headerSize+len(payload))
	binary.BigEndian.PutUint32(buf[0:], uint32(len(payload)))
	binary.BigEndian.PutUint64(buf[8:], seq)
	copy(buf[headerSize:], payload)
	binary.BigEndian.PutUint32(buf[4:], crc32.ChecksumIEEE(buf[8:]))
	return buf
}

// Append durably logs one entry: when it returns nil, the entry has
// been written and fsynced (alone in synchronous mode; as part of a
// group-commit batch otherwise) and will survive a crash. seq must be
// strictly increasing across appends; the store's admission sequence
// provides that.
func (l *Log) Append(seq uint64, payload []byte) error {
	if len(payload) > MaxEntry {
		return fmt.Errorf("wal: entry %d bytes exceeds MaxEntry", len(payload))
	}
	l.stateMu.RLock()
	if l.closed {
		l.stateMu.RUnlock()
		return ErrClosed
	}
	if l.reqs == nil { // synchronous mode
		defer l.stateMu.RUnlock()
		l.mu.Lock()
		defer l.mu.Unlock()
		return l.commitLocked([]*appendReq{{seq: seq, payload: payload}})
	}
	req := &appendReq{seq: seq, payload: payload, done: make(chan error, 1)}
	l.reqs <- req
	l.stateMu.RUnlock()
	return <-req.done
}

// flusher is the group-commit loop: gather a batch over the window,
// write it, fsync once, release every waiter.
func (l *Log) flusher() {
	defer close(l.flusherDone)
	for {
		var batch []*appendReq
		select {
		case req := <-l.reqs:
			batch = append(batch, req)
		case <-l.quit:
			l.drainPending()
			return
		}
		timer := time.NewTimer(l.opts.GroupWindow)
	gather:
		for len(batch) < l.opts.MaxBatch {
			select {
			case req := <-l.reqs:
				batch = append(batch, req)
			case <-timer.C:
				break gather
			case <-l.quit:
				break gather
			}
		}
		timer.Stop()
		l.commitBatch(batch)
	}
}

// drainPending commits whatever Close let through before flipping
// closed; no new requests can arrive once quit is closed.
func (l *Log) drainPending() {
	for {
		select {
		case req := <-l.reqs:
			l.commitBatch([]*appendReq{req})
		default:
			return
		}
	}
}

func (l *Log) commitBatch(batch []*appendReq) {
	l.mu.Lock()
	err := l.commitLocked(batch)
	l.mu.Unlock()
	for _, req := range batch {
		req.done <- err
	}
}

// commitLocked writes and fsyncs a batch under mu.
func (l *Log) commitLocked(batch []*appendReq) error {
	if l.active == nil {
		return ErrClosed
	}
	for _, req := range batch {
		buf := encodeEntry(req.seq, req.payload)
		if _, err := l.active.Write(buf); err != nil {
			return fmt.Errorf("wal: append: %w", err)
		}
		l.actSize += int64(len(buf))
		l.segments[l.actSeg].size = l.actSize
		l.segments[l.actSeg].lastSeq = req.seq
		l.lastSeq.Store(req.seq)
		l.appends.Add(1)
	}
	if !l.opts.NoSync {
		if err := l.active.Sync(); err != nil {
			return fmt.Errorf("wal: fsync: %w", err)
		}
		l.syncs.Add(1)
	}
	if l.actSize >= l.opts.SegmentBytes {
		return l.rollLocked()
	}
	return nil
}

// Compact removes segments fully covered by a snapshot at coveredSeq:
// every entry in them has seq <= coveredSeq and is re-creatable from the
// snapshot. The active segment is never removed.
func (l *Log) Compact(coveredSeq uint64) (removed int, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	kept := l.segments[:0]
	for i := range l.segments {
		seg := l.segments[i]
		if i != l.actSeg && seg.lastSeq > 0 && seg.lastSeq <= coveredSeq {
			if err := os.Remove(seg.path); err != nil {
				return removed, fmt.Errorf("wal: compact: %w", err)
			}
			removed++
			continue
		}
		kept = append(kept, seg)
	}
	l.segments = kept
	l.actSeg = len(l.segments) - 1
	return removed, nil
}

// Close flushes pending appends, fsyncs and closes the active segment.
// Idempotent.
func (l *Log) Close() error {
	l.stateMu.Lock()
	if l.closed {
		l.stateMu.Unlock()
		return nil
	}
	l.closed = true
	l.stateMu.Unlock()
	if l.quit != nil {
		close(l.quit)
		<-l.flusherDone
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.active == nil {
		return nil
	}
	var err error
	if !l.opts.NoSync {
		err = l.active.Sync()
		l.syncs.Add(1)
	}
	if cerr := l.active.Close(); err == nil {
		err = cerr
	}
	l.active = nil
	return err
}

// Abort simulates a crash for harnesses: the file descriptor is closed
// with no flush and no sync, so any batch not yet acknowledged is torn
// exactly the way a kill -9 would tear it. Acknowledged entries are
// already on disk and unaffected.
func (l *Log) Abort() {
	l.stateMu.Lock()
	if l.closed {
		l.stateMu.Unlock()
		return
	}
	l.closed = true
	l.stateMu.Unlock()
	l.mu.Lock()
	if l.active != nil {
		l.active.Close()
		l.active = nil
	}
	l.mu.Unlock()
	if l.quit != nil {
		close(l.quit)
		<-l.flusherDone
	}
}

// LastSeq is the highest sequence number durably appended or replayed.
func (l *Log) LastSeq() uint64 { return l.lastSeq.Load() }

// FirstSeq is the first sequence number the log still retains (the
// oldest segment's name), or 0 when the log holds no segments. A
// caller wanting to stream from seq s needs FirstSeq() <= s+1 — beyond
// that, compaction has moved the history into a snapshot.
func (l *Log) FirstSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.segments) == 0 {
		return 0
	}
	return l.segments[0].firstSeq
}

// IterateFrom streams every intact retained entry with seq > fromSeq,
// in order, to fn — the read side of WAL shipping: a primary feeds a
// freshly attached follower its backlog from here before switching to
// live records. The segment list and committed sizes are captured
// under the log's lock, then the files are read without it, so
// iteration does not stall concurrent appends; entries appended after
// the capture are simply not part of this pass. Callers that need a
// consistent cut (no admissions between backlog and live stream)
// serialize against Append themselves — the store's admission gate
// does exactly that. Returns the entry count delivered.
func (l *Log) IterateFrom(fromSeq uint64, fn func(seq uint64, payload []byte) error) (int, error) {
	l.mu.Lock()
	segs := make([]segment, len(l.segments))
	copy(segs, l.segments)
	l.mu.Unlock()

	n := 0
	for i := range segs {
		seg := &segs[i]
		if seg.lastSeq > 0 && seg.lastSeq <= fromSeq {
			continue // fully below the requested range
		}
		data, err := os.ReadFile(seg.path)
		if err != nil {
			return n, fmt.Errorf("wal: iterate segment: %w", err)
		}
		// Bound the scan to the size committed at capture time: bytes past
		// it may belong to an entry still being written.
		if int64(len(data)) > seg.size {
			data = data[:seg.size]
		}
		off := 0
		for {
			if len(data)-off < headerSize {
				break
			}
			length := binary.BigEndian.Uint32(data[off:])
			crc := binary.BigEndian.Uint32(data[off+4:])
			if length > MaxEntry || len(data)-off-headerSize < int(length) {
				break
			}
			body := data[off+8 : off+headerSize+int(length)]
			if crc32.ChecksumIEEE(body) != crc {
				break
			}
			seq := binary.BigEndian.Uint64(data[off+8:])
			if seq > fromSeq {
				if err := fn(seq, data[off+headerSize:off+headerSize+int(length)]); err != nil {
					return n, err
				}
				n++
			}
			off += headerSize + int(length)
		}
	}
	return n, nil
}

// Segments counts on-disk segment files.
func (l *Log) Segments() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.segments)
}

// Syncs counts fsync calls — the group-commit batching dividend is
// Appends()/Syncs().
func (l *Log) Syncs() uint64 { return l.syncs.Load() }

// Appends counts entries durably written this session.
func (l *Log) Appends() uint64 { return l.appends.Load() }

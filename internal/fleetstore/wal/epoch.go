package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// Epoch files sit beside the snapshots: a shard's fencing epoch is a
// monotonically-increasing counter bumped on every promotion and
// reshard cutover, and a fence marker records the higher epoch a
// demoted shard observed so a restart cannot un-fence it. Both are
// tiny fixed-format files written atomically (temp file, fsync,
// rename) and CRC-checked: a corrupted epoch file is an error, never
// a silent reset to zero — resetting would let a stale primary
// re-claim an epoch the cluster has already moved past.

const (
	epochFile  = "epoch"
	fenceFile  = "fence"
	epochMagic = "HWKEPOC1"
)

func writeEpochValue(path string, value uint64) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("wal: epoch dir: %w", err)
	}
	buf := make([]byte, len(epochMagic)+12)
	copy(buf, epochMagic)
	binary.BigEndian.PutUint64(buf[len(epochMagic)+4:], value)
	binary.BigEndian.PutUint32(buf[len(epochMagic):], crc32.ChecksumIEEE(buf[len(epochMagic)+4:]))

	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: epoch create: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: epoch write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: epoch sync: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: epoch close: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: epoch rename: %w", err)
	}
	return nil
}

func loadEpochValue(path string) (uint64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, fmt.Errorf("wal: epoch read: %w", err)
	}
	if len(data) != len(epochMagic)+12 || string(data[:len(epochMagic)]) != epochMagic {
		return 0, fmt.Errorf("wal: epoch file %s is corrupt (bad magic or size)", path)
	}
	crc := binary.BigEndian.Uint32(data[len(epochMagic):])
	body := data[len(epochMagic)+4:]
	if crc32.ChecksumIEEE(body) != crc {
		return 0, fmt.Errorf("wal: epoch file %s failed its checksum", path)
	}
	return binary.BigEndian.Uint64(body), nil
}

// WriteEpoch atomically persists the shard's fencing epoch.
func WriteEpoch(dir string, epoch uint64) error {
	return writeEpochValue(filepath.Join(dir, epochFile), epoch)
}

// LoadEpoch returns the persisted fencing epoch, 0 when none has been
// written yet. A corrupted file is an error, never a silent 0.
func LoadEpoch(dir string) (uint64, error) {
	return loadEpochValue(filepath.Join(dir, epochFile))
}

// WriteFence atomically persists the superseding epoch a demoted shard
// observed, so the demotion survives a restart.
func WriteFence(dir string, epoch uint64) error {
	return writeEpochValue(filepath.Join(dir, fenceFile), epoch)
}

// LoadFence returns the persisted fence marker, 0 when the shard has
// never been fenced.
func LoadFence(dir string) (uint64, error) {
	return loadEpochValue(filepath.Join(dir, fenceFile))
}

// ClearFence removes the fence marker; called when a legitimate
// promotion bumps the epoch past it.
func ClearFence(dir string) error {
	err := os.Remove(filepath.Join(dir, fenceFile))
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("wal: clear fence: %w", err)
	}
	return nil
}

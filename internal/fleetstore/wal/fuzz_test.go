package wal

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// FuzzWALRecord plants arbitrary bytes as a segment file and recovers
// from it. Whatever the bytes claim — torn frames, wild length fields,
// CRCs over nothing — recovery must not panic, and the log it hands
// back must actually work: an append succeeds and a reopen comes up
// clean, with the appended entry intact.
func FuzzWALRecord(f *testing.F) {
	rec := func(seq uint64, payload []byte) []byte {
		body := make([]byte, 8+len(payload))
		binary.BigEndian.PutUint64(body, seq)
		copy(body[8:], payload)
		hdr := make([]byte, 8)
		binary.BigEndian.PutUint32(hdr, uint32(len(payload)))
		binary.BigEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(body))
		return append(hdr, body...)
	}
	one := rec(1, []byte("record-0001"))
	f.Add(one)
	f.Add(append(append([]byte{}, one...), rec(2, []byte("record-0002"))...))
	f.Add(one[:len(one)-3]) // torn tail
	// Oversized length claim with a CRC that would verify.
	over := rec(3, []byte("tiny"))
	binary.BigEndian.PutUint32(over, MaxEntry+1)
	f.Add(over)
	// CRC mismatch.
	bad := append([]byte(nil), one...)
	bad[len(bad)-1] ^= 0xFF
	f.Add(bad)
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		var replayed int
		l, _, err := Open(dir, Options{GroupWindow: -1}, func(seq uint64, payload []byte) error {
			replayed++
			return nil
		})
		if err != nil {
			return // refusing garbage wholesale is a legal outcome
		}
		next := l.LastSeq() + 1
		if err := l.Append(next, []byte("post-recovery")); err != nil {
			t.Fatalf("append after recovery from %d salvaged entries: %v", replayed, err)
		}
		if err := l.Close(); err != nil {
			t.Fatalf("close after recovery: %v", err)
		}
		var got int
		l2, stats2, err := Open(dir, Options{GroupWindow: -1}, func(seq uint64, payload []byte) error {
			got++
			return nil
		})
		if err != nil {
			t.Fatalf("reopen after repair: %v", err)
		}
		defer l2.Close()
		if stats2.Torn {
			t.Fatalf("repair did not converge: still torn on reopen (salvaged %d, reread %d)", replayed, got)
		}
		if got != replayed+1 {
			t.Fatalf("reopen replayed %d entries, want %d salvaged + 1 appended", got, replayed)
		}
	})
}

package fleetstore

import (
	"fmt"
	"sync/atomic"
	"testing"

	"hawkeye/internal/diagnosis"
	"hawkeye/internal/sim"
)

// BenchmarkStoreAdd measures raw sharded-store insertion from parallel
// producers (the lock-striping hot path, no pipeline in front).
func BenchmarkStoreAdd(b *testing.B) {
	st := New(Config{Shards: 16, ShardCapacity: 1 << 12})
	var fabricSeq atomic.Uint64
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		fabric := fmt.Sprintf("pod-%d", fabricSeq.Add(1))
		at := sim.Time(0)
		for pb.Next() {
			at += 100
			st.Add(Record{
				Fabric: fabric,
				At:     at,
				Victim: "v",
				Type:   diagnosis.TypePFCContention,
				Node:   5,
			})
		}
	})
}

// BenchmarkPipelineIngest measures end-to-end ingest throughput: N
// parallel producers offering through the bounded queue into the worker
// pool, clustering included. Drops count as work shed, not time saved —
// the benchmark reports them.
func BenchmarkPipelineIngest(b *testing.B) {
	st := New(Config{Shards: 16, ShardCapacity: 1 << 14})
	p := NewPipeline(st, 4096, 4)
	defer p.Close()
	var fabricSeq atomic.Uint64
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		fabric := fmt.Sprintf("pod-%d", fabricSeq.Add(1))
		at := sim.Time(0)
		for pb.Next() {
			at += 100
			p.Offer(Record{
				Fabric: fabric,
				At:     at,
				Victim: "v",
				Type:   diagnosis.TypePFCContention,
				Node:   5,
			})
		}
	})
	p.Drain()
	b.ReportMetric(float64(p.Dropped())/float64(b.N), "drops/op")
}

package fleetstore

import (
	"fmt"
	"sync"
	"testing"

	"hawkeye/internal/diagnosis"
	"hawkeye/internal/sim"
)

func TestPipelineBackpressureDropsAndAccounts(t *testing.T) {
	st := New(Config{})
	p := NewPipelineManual(st, 2) // no workers: the queue fills deterministically
	accepted := 0
	for i := 0; i < 5; i++ {
		if p.Offer(rec("pod-a", sim.Time(i*100), fmt.Sprintf("v%d", i), diagnosis.TypePFCStorm, 5)) {
			accepted++
		}
	}
	if accepted != 2 || p.Dropped() != 3 {
		t.Fatalf("accepted=%d dropped=%d, want 2/3", accepted, p.Dropped())
	}
	// Close drains the queued records synchronously.
	p.Close()
	if c := st.CountersSnapshot(); c.Ingested != 2 {
		t.Fatalf("ingested = %d after close, want 2", c.Ingested)
	}
	if p.Offer(rec("pod-a", 999, "late", diagnosis.TypePFCStorm, 5)) {
		t.Fatal("offer accepted after close")
	}
	if p.Dropped() != 4 {
		t.Fatalf("dropped = %d after post-close offer, want 4", p.Dropped())
	}
}

func TestPipelineConcurrentIngest(t *testing.T) {
	st := New(Config{Shards: 8, ShardCapacity: 1 << 14})
	p := NewPipeline(st, 256, 4)
	defer p.Close()
	const producers, each = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < producers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				p.Offer(rec(fmt.Sprintf("pod-%d", w), sim.Time(i*10), "v", diagnosis.TypePFCContention, 5))
			}
		}()
	}
	wg.Wait()
	p.Drain()
	c := st.CountersSnapshot()
	if c.Ingested+p.Dropped() != producers*each {
		t.Fatalf("ingested %d + dropped %d != offered %d", c.Ingested, p.Dropped(), producers*each)
	}
	if c.Ingested == 0 {
		t.Fatal("everything was dropped")
	}
}

func TestPipelineDrainReadsOwnWrites(t *testing.T) {
	st := New(Config{Window: sim.Millisecond})
	p := NewPipeline(st, 64, 2)
	defer p.Close()
	for i := 0; i < 10; i++ {
		if !p.Offer(rec("pod-a", sim.Time(100+i), "v", diagnosis.TypePFCStorm, 5)) {
			t.Fatalf("offer %d rejected", i)
		}
	}
	p.Drain()
	if c := st.CountersSnapshot(); c.Ingested != 10 {
		t.Fatalf("ingested = %d after drain, want 10", c.Ingested)
	}
	if incs := st.Incidents(Query{Node: AnyNode}); len(incs) != 1 || incs[0].Complaints != 10 {
		t.Fatalf("incidents after drain: %+v", incs)
	}
}

func TestPipelineWatermarkSweeps(t *testing.T) {
	st := New(Config{Window: sim.Millisecond})
	p := NewPipeline(st, 64, 1) // one worker: in-order processing
	defer p.Close()
	p.Offer(rec("pod-a", 100, "v1", diagnosis.TypePFCStorm, 5))
	// A much later complaint moves the watermark past the first
	// incident's window and resolves it.
	p.Offer(rec("pod-a", 100+5*sim.Millisecond, "v2", diagnosis.TypePFCStorm, 5))
	p.Drain()
	incs := st.Incidents(Query{Node: AnyNode})
	if len(incs) != 2 {
		t.Fatalf("incidents = %d, want 2", len(incs))
	}
	if !incs[0].Resolved || incs[1].Resolved {
		t.Fatalf("resolved flags: %v %v, want true false", incs[0].Resolved, incs[1].Resolved)
	}
}

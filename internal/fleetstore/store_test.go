package fleetstore

import (
	"fmt"
	"sync"
	"testing"

	"hawkeye/internal/core"
	"hawkeye/internal/diagnosis"
	"hawkeye/internal/host"
	"hawkeye/internal/packet"
	"hawkeye/internal/sim"
	"hawkeye/internal/topo"
)

func rec(fabric string, at sim.Time, victim string, typ diagnosis.AnomalyType, node topo.NodeID) Record {
	return Record{
		Fabric: fabric,
		At:     at,
		Victim: victim,
		Type:   typ,
		Cause:  diagnosis.CauseFlowContention,
		Node:   node,
		Port:   1,
	}
}

func TestRecordsQueryFilters(t *testing.T) {
	st := New(Config{})
	st.Add(rec("pod-a", 100, "v1", diagnosis.TypePFCContention, 5))
	st.Add(rec("pod-a", 200, "v2", diagnosis.TypePFCStorm, 5))
	st.Add(rec("pod-b", 300, "v3", diagnosis.TypePFCContention, 9))
	st.Add(rec("pod-b", 400, "v4", diagnosis.TypePFCContention, 5))

	cases := []struct {
		name string
		q    Query
		want []string // victims, in time order
	}{
		{"all", Query{Node: AnyNode}, []string{"v1", "v2", "v3", "v4"}},
		{"fabric", Query{Fabric: "pod-a", Node: AnyNode}, []string{"v1", "v2"}},
		{"type", Query{Types: []diagnosis.AnomalyType{diagnosis.TypePFCStorm}, Node: AnyNode}, []string{"v2"}},
		{"node", Query{Node: 9}, []string{"v3"}},
		{"timerange", Query{From: 150, To: 350, Node: AnyNode}, []string{"v2", "v3"}},
		{"from-only", Query{From: 250, Node: AnyNode}, []string{"v3", "v4"}},
		{"limit", Query{Node: AnyNode, Limit: 2}, []string{"v1", "v2"}},
		{"no-match", Query{Fabric: "pod-c", Node: AnyNode}, nil},
	}
	for _, tc := range cases {
		got := st.Records(tc.q)
		if len(got) != len(tc.want) {
			t.Fatalf("%s: %d records, want %d", tc.name, len(got), len(tc.want))
		}
		for i, r := range got {
			if r.Victim != tc.want[i] {
				t.Fatalf("%s: record %d is %q, want %q", tc.name, i, r.Victim, tc.want[i])
			}
		}
	}
}

func TestRetentionRingEvicts(t *testing.T) {
	st := New(Config{Shards: 1, ShardCapacity: 4})
	for i := 0; i < 10; i++ {
		st.Add(rec("pod-a", sim.Time(i*100), fmt.Sprintf("v%d", i), diagnosis.TypePFCContention, 5))
	}
	c := st.CountersSnapshot()
	if c.Ingested != 10 {
		t.Fatalf("ingested = %d, want 10", c.Ingested)
	}
	if c.Evicted != 6 {
		t.Fatalf("evicted = %d, want 6", c.Evicted)
	}
	got := st.Records(Query{Node: AnyNode})
	if len(got) != 4 {
		t.Fatalf("retained %d records, want 4", len(got))
	}
	// The survivors are the newest four.
	if got[0].Victim != "v6" || got[3].Victim != "v9" {
		t.Fatalf("retained %q .. %q, want v6 .. v9", got[0].Victim, got[3].Victim)
	}
}

func TestSeqStampsAdmissionOrder(t *testing.T) {
	st := New(Config{})
	a := st.Add(rec("pod-a", 500, "v1", diagnosis.TypePFCContention, 5))
	b := st.Add(rec("pod-b", 100, "v2", diagnosis.TypePFCContention, 5))
	if a.Seq == 0 || b.Seq != a.Seq+1 {
		t.Fatalf("seq %d then %d, want consecutive from 1", a.Seq, b.Seq)
	}
}

func TestConcurrentAddRaceClean(t *testing.T) {
	st := New(Config{Shards: 4, ShardCapacity: 64})
	const workers, each = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				st.Add(rec(fmt.Sprintf("pod-%d", w), sim.Time(i), "v", diagnosis.TypePFCContention, topo.NodeID(w)))
			}
		}()
	}
	wg.Wait()
	c := st.CountersSnapshot()
	if c.Ingested != workers*each {
		t.Fatalf("ingested = %d, want %d", c.Ingested, workers*each)
	}
	retained := len(st.Records(Query{Node: AnyNode}))
	if uint64(retained)+c.Evicted != c.Ingested {
		t.Fatalf("retained %d + evicted %d != ingested %d", retained, c.Evicted, c.Ingested)
	}
}

func TestNewRecordProjectsResult(t *testing.T) {
	culprit := packet.FiveTuple{SrcIP: 9, DstIP: 10, SrcPort: 7, DstPort: 8, Proto: 17}
	res := &core.Result{
		Trigger: host.Trigger{
			Victim: packet.FiveTuple{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: 17},
			At:     1234,
		},
		Diagnosis: &diagnosis.Report{
			Type: diagnosis.TypePFCContention,
			Causes: []diagnosis.RootCause{{
				Kind:  diagnosis.CauseFlowContention,
				Port:  topo.PortRef{Node: 5, Port: 2},
				Flows: []packet.FiveTuple{culprit},
			}},
		},
	}
	got := NewRecord("pod-a", res)
	if got.Fabric != "pod-a" || got.At != 1234 || got.Type != diagnosis.TypePFCContention {
		t.Fatalf("record header mangled: %+v", got)
	}
	if got.Node != 5 || got.Port != 2 {
		t.Fatalf("anchor = N%d.P%d, want N5.P2", got.Node, got.Port)
	}
	if len(got.Culprits) != 1 || got.Culprits[0] != culprit.String() {
		t.Fatalf("culprits = %v", got.Culprits)
	}
	if got.Victim != res.Trigger.Victim.String() {
		t.Fatalf("victim = %q", got.Victim)
	}
}

package fleetstore

import (
	"strings"
	"testing"

	"hawkeye/internal/diagnosis"
	"hawkeye/internal/sim"
	"hawkeye/internal/topo"
)

func TestClusterMergesAcrossFabrics(t *testing.T) {
	st := New(Config{Window: sim.Millisecond})
	st.Add(rec("pod-a", 100, "v1", diagnosis.TypePFCStorm, 5))
	st.Add(rec("pod-b", 200, "v2", diagnosis.TypePFCStorm, 5))
	st.Add(rec("pod-a", 300, "v1", diagnosis.TypePFCStorm, 5))

	incs := st.Incidents(Query{Node: AnyNode})
	if len(incs) != 1 {
		t.Fatalf("incidents = %d, want 1 (same anchor across fabrics)", len(incs))
	}
	inc := incs[0]
	if inc.Complaints != 3 || len(inc.Victims) != 2 || len(inc.Fabrics) != 2 {
		t.Fatalf("complaints=%d victims=%d fabrics=%d, want 3/2/2",
			inc.Complaints, len(inc.Victims), len(inc.Fabrics))
	}
	if inc.First != 100 || inc.Last != 300 {
		t.Fatalf("span %v..%v, want 100..300", inc.First, inc.Last)
	}
	if inc.Resolved {
		t.Fatal("incident resolved without a sweep")
	}
}

func TestClusterSplitsByTypeNodeAndWindow(t *testing.T) {
	st := New(Config{Window: sim.Millisecond})
	st.Add(rec("pod-a", 100, "v1", diagnosis.TypePFCStorm, 5))
	st.Add(rec("pod-a", 150, "v2", diagnosis.TypePFCContention, 5))              // type split
	st.Add(rec("pod-a", 200, "v3", diagnosis.TypePFCStorm, 9))                   // node split
	st.Add(rec("pod-a", 100+3*sim.Millisecond, "v4", diagnosis.TypePFCStorm, 5)) // window split
	if incs := st.Incidents(Query{Node: AnyNode}); len(incs) != 4 {
		t.Fatalf("incidents = %d, want 4", len(incs))
	}
}

func TestClusterDeadlockLoopOverlap(t *testing.T) {
	st := New(Config{Window: sim.Millisecond})
	loopA := []topo.PortRef{{Node: 4, Port: 2}, {Node: 0, Port: 1}}
	loopB := []topo.PortRef{{Node: 0, Port: 1}, {Node: 6, Port: 2}}
	ra := rec("pod-a", 100, "v1", diagnosis.TypeInLoopDeadlock, 4)
	ra.Loop = loopA
	rb := rec("pod-b", 200, "v2", diagnosis.TypeInLoopDeadlock, 6)
	rb.Loop = loopB
	st.Add(ra)
	st.Add(rb)
	if incs := st.Incidents(Query{Node: AnyNode}); len(incs) != 1 {
		t.Fatalf("incidents = %d, want 1 (loops share N0.P1)", len(incs))
	}
}

func TestClusterOutOfOrderExtendsFirst(t *testing.T) {
	st := New(Config{Window: sim.Millisecond})
	st.Add(rec("pod-a", 1000, "v1", diagnosis.TypePFCStorm, 5))
	st.Add(rec("pod-a", 400, "v2", diagnosis.TypePFCStorm, 5)) // late-delivered earlier trigger
	incs := st.Incidents(Query{Node: AnyNode})
	if len(incs) != 1 {
		t.Fatalf("incidents = %d, want 1", len(incs))
	}
	if incs[0].First != 400 || incs[0].Last != 1000 {
		t.Fatalf("span %v..%v, want 400..1000", incs[0].First, incs[0].Last)
	}
}

func TestSweepResolvesAndRetains(t *testing.T) {
	st := New(Config{Window: sim.Millisecond})
	st.Add(rec("pod-a", 100, "v1", diagnosis.TypePFCStorm, 5))
	st.Sweep(200) // window not yet passed
	if c := st.CountersSnapshot(); c.OpenIncidents != 1 {
		t.Fatalf("open = %d after early sweep, want 1", c.OpenIncidents)
	}
	st.Sweep(100 + 2*sim.Millisecond)
	c := st.CountersSnapshot()
	if c.OpenIncidents != 0 || c.Incidents != 1 {
		t.Fatalf("open=%d total=%d after sweep, want 0/1", c.OpenIncidents, c.Incidents)
	}
	incs := st.Incidents(Query{Node: AnyNode})
	if len(incs) != 1 || !incs[0].Resolved {
		t.Fatalf("resolved incident not queryable: %+v", incs)
	}
	// A fresh complaint after resolution opens a new incident.
	st.Add(rec("pod-a", 100+3*sim.Millisecond, "v1", diagnosis.TypePFCStorm, 5))
	if incs := st.Incidents(Query{Node: AnyNode}); len(incs) != 2 {
		t.Fatalf("incidents = %d after reopen, want 2", len(incs))
	}
}

func TestIncidentQueryFilters(t *testing.T) {
	st := New(Config{Window: sim.Millisecond})
	st.Add(rec("pod-a", 100, "v1", diagnosis.TypePFCStorm, 5))
	st.Add(rec("pod-b", 10*sim.Millisecond, "v2", diagnosis.TypePFCContention, 9))

	if incs := st.Incidents(Query{Fabric: "pod-b", Node: AnyNode}); len(incs) != 1 || incs[0].Node != 9 {
		t.Fatalf("fabric filter: %+v", incs)
	}
	if incs := st.Incidents(Query{Types: []diagnosis.AnomalyType{diagnosis.TypePFCStorm}, Node: AnyNode}); len(incs) != 1 || incs[0].Node != 5 {
		t.Fatalf("type filter: %+v", incs)
	}
	if incs := st.Incidents(Query{From: sim.Millisecond, Node: AnyNode}); len(incs) != 1 || incs[0].Node != 9 {
		t.Fatalf("time filter: %+v", incs)
	}
	if incs := st.Incidents(Query{Node: AnyNode, Limit: 1}); len(incs) != 1 || incs[0].Node != 5 {
		t.Fatalf("limit: %+v", incs)
	}
}

func TestPartitionAttrs(t *testing.T) {
	// Single member: everything constant (degenerate case).
	konst, vary := PartitionAttrs([]map[string]string{{"fabric": "pod-a", "victim": "v1"}})
	if len(vary) != 0 || konst["fabric"] != "pod-a" || konst["victim"] != "v1" {
		t.Fatalf("single member: constant=%v varying=%v", konst, vary)
	}
	// Mixed: constant cause, varying victim across two dimensions.
	konst, vary = PartitionAttrs([]map[string]string{
		{"cause": "flow-contention", "victim": "v1", "fabric": "pod-a"},
		{"cause": "flow-contention", "victim": "v2", "fabric": "pod-a"},
		{"cause": "flow-contention", "victim": "v3", "fabric": "pod-b"},
	})
	if konst["cause"] != "flow-contention" {
		t.Fatalf("constant = %v", konst)
	}
	if _, ok := konst["victim"]; ok {
		t.Fatal("victim leaked into constant")
	}
	if got := vary["victim"]; len(got) != 3 || got[0] != "v1" || got[2] != "v3" {
		t.Fatalf("varying victims = %v", got)
	}
	if got := vary["fabric"]; len(got) != 2 {
		t.Fatalf("varying fabrics = %v", got)
	}
	// No members: both empty.
	konst, vary = PartitionAttrs(nil)
	if len(konst) != 0 || len(vary) != 0 {
		t.Fatalf("empty input: constant=%v varying=%v", konst, vary)
	}
}

func TestIncidentSummaryAndPartition(t *testing.T) {
	st := New(Config{Window: sim.Millisecond})
	r1 := rec("pod-a", 100, "v1", diagnosis.TypePFCStorm, 3)
	r1.Culprits = []string{"f1"}
	r2 := rec("pod-b", 200, "v2", diagnosis.TypePFCStorm, 3)
	r2.Culprits = []string{"f1"}
	st.Add(r1)
	st.Add(r2)
	incs := st.Incidents(Query{Node: AnyNode})
	if len(incs) != 1 {
		t.Fatalf("incidents = %d", len(incs))
	}
	s := incs[0].Summary()
	for _, want := range []string{"pfc-storm", "N3", "2 complaints", "2 victims", "2 fabrics", "1 culprit"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary %q missing %q", s, want)
		}
	}
	if incs[0].Constant["cause"] != "flow-contention" {
		t.Fatalf("constant = %v", incs[0].Constant)
	}
	if got := incs[0].Varying["fabric"]; len(got) != 2 {
		t.Fatalf("varying = %v", incs[0].Varying)
	}
}

func TestHubSubscribeFilterAndDrops(t *testing.T) {
	st := New(Config{Window: sim.Millisecond})
	hub := st.Hub()
	storms := hub.Subscribe(Filter{Types: []diagnosis.AnomalyType{diagnosis.TypePFCStorm}, Node: AnyNode}, 16)
	defer hub.Unsubscribe(storms)
	tiny := hub.Subscribe(AnyFilter(), 1)
	defer hub.Unsubscribe(tiny)

	st.Add(rec("pod-a", 100, "v1", diagnosis.TypePFCStorm, 5))
	st.Add(rec("pod-a", 150, "v2", diagnosis.TypePFCContention, 9))
	st.Add(rec("pod-a", 200, "v3", diagnosis.TypePFCStorm, 5))

	// The filtered subscriber sees only the storm lifecycle.
	ev1 := <-storms.Events()
	if ev1.Kind != Opened || ev1.Incident.Type != diagnosis.TypePFCStorm {
		t.Fatalf("first event %v %v", ev1.Kind, ev1.Incident.Type)
	}
	ev2 := <-storms.Events()
	if ev2.Kind != Grew || ev2.Incident.Complaints != 2 {
		t.Fatalf("second event %v complaints=%d", ev2.Kind, ev2.Incident.Complaints)
	}
	select {
	case ev := <-storms.Events():
		t.Fatalf("unexpected third event: %+v", ev)
	default:
	}

	// The depth-1 subscriber lost events but never blocked ingest.
	if tiny.Dropped() != 2 {
		t.Fatalf("tiny subscriber dropped %d, want 2", tiny.Dropped())
	}
	if c := st.CountersSnapshot(); c.EventsDropped != 2 {
		t.Fatalf("store-wide events dropped = %d, want 2", c.EventsDropped)
	}
}

func TestUnsubscribeClosesStream(t *testing.T) {
	st := New(Config{})
	sub := st.Hub().Subscribe(AnyFilter(), 4)
	st.Hub().Unsubscribe(sub)
	if _, ok := <-sub.Events(); ok {
		t.Fatal("stream still open after unsubscribe")
	}
	st.Hub().Unsubscribe(sub)                                  // idempotent
	st.Add(rec("pod-a", 100, "v1", diagnosis.TypePFCStorm, 5)) // must not panic
}

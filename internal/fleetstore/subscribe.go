package fleetstore

import (
	"sync"
	"sync/atomic"

	"hawkeye/internal/diagnosis"
	"hawkeye/internal/topo"
)

// Filter selects which incident events a subscriber receives. Zero
// values mean "any" (Fabric == "", Types == nil, Node < 0).
type Filter struct {
	Fabric string
	Types  []diagnosis.AnomalyType
	Node   topo.NodeID
}

// AnyFilter matches every event.
func AnyFilter() Filter { return Filter{Node: AnyNode} }

func (f *Filter) matches(ev *Event) bool {
	inc := &ev.Incident
	if f.Node >= 0 && inc.Node != f.Node {
		return false
	}
	if f.Fabric != "" {
		found := false
		for _, fb := range inc.Fabrics {
			if fb == f.Fabric {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	if len(f.Types) == 0 {
		return true
	}
	for _, t := range f.Types {
		if inc.Type == t {
			return true
		}
	}
	return false
}

// Sub is one live subscription. Events arrive on Events(); a subscriber
// that falls behind its buffer loses events (counted, never blocking
// ingest) rather than stalling the store.
type Sub struct {
	filter  Filter
	ch      chan Event
	dropped atomic.Uint64
	closed  bool // guarded by the hub mutex
}

// Events is the subscription stream. It is closed by Unsubscribe (or
// hub Close), after which no more events arrive.
func (s *Sub) Events() <-chan Event { return s.ch }

// Dropped counts events this subscriber lost to a full buffer.
func (s *Sub) Dropped() uint64 { return s.dropped.Load() }

// Hub fans incident events out to subscribers.
type Hub struct {
	mu      sync.Mutex
	subs    map[*Sub]struct{}
	closed  bool
	dropped atomic.Uint64 // fleet-wide slow-subscriber losses
}

func newHub() *Hub {
	return &Hub{subs: make(map[*Sub]struct{})}
}

// Subscribe registers a subscriber with the given buffer depth
// (defaulted when <= 0).
func (h *Hub) Subscribe(f Filter, buf int) *Sub {
	if buf <= 0 {
		buf = 64
	}
	s := &Sub{filter: f, ch: make(chan Event, buf)}
	h.mu.Lock()
	if h.closed {
		close(s.ch)
		s.closed = true
	} else {
		h.subs[s] = struct{}{}
	}
	h.mu.Unlock()
	return s
}

// Unsubscribe removes the subscriber and closes its stream. Safe to
// call more than once.
func (h *Hub) Unsubscribe(s *Sub) {
	h.mu.Lock()
	if _, ok := h.subs[s]; ok {
		delete(h.subs, s)
	}
	if !s.closed {
		s.closed = true
		close(s.ch)
	}
	h.mu.Unlock()
}

// Close closes every subscription stream.
func (h *Hub) Close() {
	h.mu.Lock()
	h.closed = true
	for s := range h.subs {
		delete(h.subs, s)
		if !s.closed {
			s.closed = true
			close(s.ch)
		}
	}
	h.mu.Unlock()
}

// publish delivers an event to every matching subscriber without ever
// blocking: a full buffer drops the event for that subscriber and
// counts it — ingest backpressure must not propagate to the fabric
// sessions.
func (h *Hub) publish(ev Event) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for s := range h.subs {
		if !s.filter.matches(&ev) {
			continue
		}
		select {
		case s.ch <- ev:
		default:
			s.dropped.Add(1)
			h.dropped.Add(1)
		}
	}
}

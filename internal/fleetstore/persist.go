package fleetstore

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"sort"

	"hawkeye/internal/topo"
)

// Persistence formats. WAL entries carry one Record each (JSON — a few
// hundred bytes; the group-commit batching, not the codec, is what the
// ingest hot path feels). Snapshots carry the full store state: the
// retained ring entries, the clusterer's open and resolved incidents
// with their refcounted distinct-value sets, and the counters, so a
// restore is a structural copy rather than a re-clustering.

func walDir(dir string) string { return filepath.Join(dir, "wal") }

func encodeRecord(rec *Record) ([]byte, error) {
	data, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("fleetstore: encode record: %w", err)
	}
	return data, nil
}

func decodeRecord(payload []byte) (Record, error) {
	var rec Record
	if err := json.Unmarshal(payload, &rec); err != nil {
		return rec, fmt.Errorf("fleetstore: decode record: %w", err)
	}
	return rec, nil
}

// persistedState is the snapshot payload.
type persistedState struct {
	Seq       uint64           `json:"seq"`
	NextID    uint64           `json:"nextId"`
	Opened    uint64           `json:"opened"`
	Ingested  uint64           `json:"ingested"`
	Evicted   uint64           `json:"evicted"`
	Watermark int64            `json:"watermark"`
	Entries   []persistedEntry `json:"entries"`
	Open      []persistedOpen  `json:"open"`
	Resolved  []Incident       `json:"resolved"`
	// OriginHigh is the per-fabric writer-idempotency watermark. It must
	// be persisted, not rederived from Entries: eviction can drop the
	// record holding a fabric's maximum OriginSeq, and a rebuilt
	// watermark that regressed would re-admit a duplicate after restart.
	OriginHigh map[string]uint64 `json:"originHigh,omitempty"`
	// MovedOut lists fabrics resharded away from this store.
	MovedOut []string `json:"movedOut,omitempty"`
}

type persistedEntry struct {
	Inc uint64 `json:"inc"`
	Rec Record `json:"rec"`
}

// persistedOpen is one open incident with its live refcounts.
type persistedOpen struct {
	Incident Incident                  `json:"incident"`
	Victims  map[string]int            `json:"victims"`
	Fabrics  map[string]int            `json:"fabrics"`
	Culprits map[string]int            `json:"culprits,omitempty"`
	Attrs    map[string]map[string]int `json:"attrs,omitempty"`
	Loop     []topo.PortRef            `json:"loop,omitempty"`
}

// exportState serializes the full store state. The caller (Checkpoint)
// holds the admission gate, so this is a consistent cut.
func (st *Store) exportState() ([]byte, error) {
	ps := persistedState{
		Seq:       st.seq.Load(),
		Ingested:  st.ingested.Load(),
		Evicted:   st.evicted.Load(),
		Watermark: st.lastAt.Load(),
	}
	var entries []entry
	for i := range st.shards {
		entries = st.shards[i].export(entries)
	}
	// Seq order: restore re-inserts in admission order, so a restore
	// into a differently-sharded config still evicts oldest-first.
	sort.Slice(entries, func(i, j int) bool { return entries[i].rec.Seq < entries[j].rec.Seq })
	ps.Entries = make([]persistedEntry, len(entries))
	for i, e := range entries {
		ps.Entries[i] = persistedEntry{Inc: e.inc, Rec: e.rec}
	}

	st.cl.mu.Lock()
	ps.NextID = st.cl.nextID
	for _, oi := range st.cl.open {
		ps.Open = append(ps.Open, persistedOpen{
			Incident: oi.inc,
			Victims:  oi.victims,
			Fabrics:  oi.fabrics,
			Culprits: oi.culprit,
			Attrs:    oi.attrSeen,
			Loop:     oi.loop,
		})
	}
	ps.Resolved = append(ps.Resolved, st.cl.resolved...)
	st.cl.mu.Unlock()
	ps.Opened = st.cl.opened.Load()

	st.originMu.Lock()
	if len(st.originHigh) > 0 {
		ps.OriginHigh = make(map[string]uint64, len(st.originHigh))
		for f, hi := range st.originHigh {
			ps.OriginHigh[f] = hi
		}
	}
	for f := range st.movedOut {
		ps.MovedOut = append(ps.MovedOut, f)
	}
	st.originMu.Unlock()
	sort.Strings(ps.MovedOut)

	data, err := json.Marshal(&ps)
	if err != nil {
		return nil, fmt.Errorf("fleetstore: encode snapshot: %w", err)
	}
	return data, nil
}

// restore loads a snapshot payload into a freshly built store (Open
// calls it before WAL replay, before any concurrency exists).
func (st *Store) restore(payload []byte) error {
	var ps persistedState
	if err := json.Unmarshal(payload, &ps); err != nil {
		return fmt.Errorf("fleetstore: decode snapshot: %w", err)
	}
	st.seq.Store(ps.Seq)
	st.ingested.Store(ps.Ingested)
	st.evicted.Store(ps.Evicted)
	st.lastAt.Store(ps.Watermark)

	open := make([]*openIncident, 0, len(ps.Open))
	for i := range ps.Open {
		po := &ps.Open[i]
		oi := &openIncident{
			inc:      po.Incident,
			victims:  po.Victims,
			fabrics:  po.Fabrics,
			culprit:  po.Culprits,
			attrSeen: po.Attrs,
			loop:     po.Loop,
		}
		if oi.victims == nil {
			oi.victims = make(map[string]int)
		}
		if oi.fabrics == nil {
			oi.fabrics = make(map[string]int)
		}
		if oi.culprit == nil {
			oi.culprit = make(map[string]int)
		}
		if oi.attrSeen == nil {
			oi.attrSeen = make(map[string]map[string]int)
		}
		open = append(open, oi)
	}
	st.cl.restoreState(open, ps.Resolved, ps.NextID, ps.Opened)

	st.originMu.Lock()
	for f, hi := range ps.OriginHigh {
		if hi > st.originHigh[f] {
			st.originHigh[f] = hi
		}
	}
	for _, f := range ps.MovedOut {
		st.movedOut[f] = struct{}{}
	}
	st.originMu.Unlock()

	// Re-insert retained records in admission order. Cluster state came
	// from the snapshot, so this only rebuilds the rings — including
	// evicting (with membership withdrawal) if the new config retains
	// less than the snapshot held. The observer sees each record again
	// so observer-side state (rollup windows) recovers with the store;
	// WAL entries past the snapshot flow through insert as usual.
	//
	// Admission order is not trigger-time order once a reshard copy has
	// landed (copies carry old trigger times behind newer records), and
	// a snapshot taken after the adopt holds no control record to force
	// a rebuild on replay. A resettable observer is therefore rebuilt
	// once, in trigger-time order, after the rings are back; only a
	// non-resettable observer gets the legacy per-entry feed.
	_, resettable := st.cfg.Observer.(ResettableObserver)
	for i := range ps.Entries {
		pe := &ps.Entries[i]
		st.noteOrigin(&pe.Rec)
		if st.cfg.Observer != nil && !resettable {
			st.cfg.Observer.ObserveRecord(&pe.Rec)
		}
		if old, evicted := st.shardFor(pe.Rec.Fabric, pe.Rec.At).add(entry{rec: pe.Rec, inc: pe.Inc}, st.cfg.ShardCapacity); evicted {
			st.evicted.Add(1)
			st.cl.evict(old.inc, &old.rec)
		}
	}
	if resettable {
		st.rebuildObserver()
	}
	return nil
}

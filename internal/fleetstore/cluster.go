package fleetstore

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"hawkeye/internal/diagnosis"
	"hawkeye/internal/sim"
	"hawkeye/internal/topo"
)

// Incident is one clustered anomaly event, fleet-wide: the analyzer-side
// counterpart of §3.4's in-fabric polling dedup, generalized across
// sessions and fabrics. Dozens of correlated complaints become one
// ticket whose summary names what stayed constant (the anchor) and how
// far the varying dimensions spread (victims, fabrics).
type Incident struct {
	// ID is unique per store, in open order.
	ID uint64
	// Type is the members' anomaly class.
	Type diagnosis.AnomalyType
	// Node anchors the incident at the initial congestion node.
	Node topo.NodeID
	// First/Last bound the member triggers.
	First, Last sim.Time
	// Complaints counts member records.
	Complaints int
	// Victims / Fabrics / Culprits are the distinct values seen, sorted.
	Victims  []string
	Fabrics  []string
	Culprits []string
	// Resolved is set once the join window has passed the incident.
	Resolved bool
	// Constant/Varying partition the member attributes (Datadog-style
	// tag partitioning): an attribute with one distinct value across all
	// members is constant — part of the "what/where"; one with several
	// is varying — part of the "how far it spread".
	Constant map[string]string
	Varying  map[string][]string
}

// Summary renders the operator one-liner, e.g.
// "pfc-storm at N5: 14 complaints from 9 victims across 2 fabrics".
func (inc *Incident) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%v at N%d: %d complaint", inc.Type, inc.Node, inc.Complaints)
	if inc.Complaints != 1 {
		b.WriteByte('s')
	}
	fmt.Fprintf(&b, " from %d victim", len(inc.Victims))
	if len(inc.Victims) != 1 {
		b.WriteByte('s')
	}
	fmt.Fprintf(&b, " across %d fabric", len(inc.Fabrics))
	if len(inc.Fabrics) != 1 {
		b.WriteByte('s')
	}
	if len(inc.Culprits) > 0 {
		fmt.Fprintf(&b, ", %d culprit flow", len(inc.Culprits))
		if len(inc.Culprits) != 1 {
			b.WriteByte('s')
		}
	}
	// Constant attributes beyond the anchor sharpen the ticket; varying
	// ones are already counted above.
	if k, ok := inc.Constant["cause"]; ok {
		fmt.Fprintf(&b, " (cause: %s)", k)
	}
	return b.String()
}

// attrs projects a record into the dimensions the partition runs over.
// The anchor dimensions (type, node) are constant by construction; the
// interesting question is which of the others vary.
func attrs(rec *Record) map[string]string {
	m := map[string]string{
		"fabric": rec.Fabric,
		"victim": rec.Victim,
		"cause":  rec.Cause.String(),
		"port":   fmt.Sprintf("N%d.P%d", rec.Node, rec.Port),
	}
	if len(rec.Culprits) > 0 {
		m["culprits"] = strings.Join(rec.Culprits, "+")
	}
	return m
}

// PartitionAttrs splits per-member attribute maps into constant
// dimensions (one distinct value across every member that has the key)
// and varying dimensions (several distinct values, sorted). A key
// missing from some members counts as varying only if its present
// values differ; a single member makes everything constant.
func PartitionAttrs(members []map[string]string) (constant map[string]string, varying map[string][]string) {
	constant = make(map[string]string)
	varying = make(map[string][]string)
	seen := make(map[string]map[string]bool)
	for _, m := range members {
		for k, v := range m {
			if seen[k] == nil {
				seen[k] = make(map[string]bool)
			}
			seen[k][v] = true
		}
	}
	for k, vals := range seen {
		if len(vals) == 1 {
			for v := range vals {
				constant[k] = v
			}
			continue
		}
		list := make([]string, 0, len(vals))
		for v := range vals {
			list = append(list, v)
		}
		sort.Strings(list)
		varying[k] = list
	}
	return constant, varying
}

// EventKind classifies an incident lifecycle transition.
type EventKind int

const (
	// Opened: first complaint of a new incident.
	Opened EventKind = iota
	// Grew: a complaint joined an open incident.
	Grew
	// Resolved: the join window passed with no new complaints.
	Resolved
)

func (k EventKind) String() string {
	switch k {
	case Opened:
		return "opened"
	case Grew:
		return "grew"
	case Resolved:
		return "resolved"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one incident lifecycle transition, carrying the incident
// snapshot after the transition.
type Event struct {
	Kind     EventKind
	Incident Incident
}

// openIncident is the clusterer's mutable state for one open incident.
// Distinct-value sets are maintained incrementally so publishing an
// event after the n-th complaint costs O(distinct values), not O(n) —
// a storm's incident can have tens of thousands of members. The sets
// are reference-counted rather than boolean so retention-ring eviction
// can withdraw a member record without a full recount: a value whose
// count hits zero leaves the set.
type openIncident struct {
	inc     Incident
	victims map[string]int
	fabrics map[string]int
	culprit map[string]int
	// attrSeen holds, per attribute dimension, the distinct values
	// observed across live members (the incremental, refcounted form of
	// PartitionAttrs).
	attrSeen map[string]map[string]int
	loop     []topo.PortRef
}

func (oi *openIncident) fold(rec *Record) {
	for k, v := range attrs(rec) {
		if oi.attrSeen[k] == nil {
			oi.attrSeen[k] = make(map[string]int)
		}
		oi.attrSeen[k][v]++
	}
}

// unfold reverses fold for an evicted member.
func (oi *openIncident) unfold(rec *Record) {
	for k, v := range attrs(rec) {
		if m := oi.attrSeen[k]; m != nil {
			decr(m, v)
			if len(m) == 0 {
				delete(oi.attrSeen, k)
			}
		}
	}
}

// decr decrements a refcounted set entry, removing it at zero.
func decr(m map[string]int, k string) {
	if n, ok := m[k]; ok {
		if n <= 1 {
			delete(m, k)
		} else {
			m[k] = n - 1
		}
	}
}

// clusterer folds admitted records into incidents. One mutex guards it:
// clustering is a per-record O(open incidents) scan and the open set is
// small (an incident per concurrent anomaly, not per complaint), so a
// stripe here would buy nothing — the shards absorb the storage load.
type clusterer struct {
	window sim.Time
	keep   int
	emit   func(Event)

	mu       sync.Mutex
	open     []*openIncident
	resolved []Incident
	nextID   uint64

	opened atomic.Uint64
}

func newClusterer(window sim.Time, keep int, emit func(Event)) *clusterer {
	return &clusterer{window: window, keep: keep, emit: emit}
}

// joins reports whether rec belongs to oi: same anomaly class and an
// overlapping anchor — the initial congestion node, or, for deadlocks,
// a shared loop port — with the trigger inside the widened span
// [First-window, Last+window]. Fabric is deliberately not part of the
// key: a spine-level storm is one event however many fabrics report it.
func (c *clusterer) joins(oi *openIncident, rec *Record) bool {
	if rec.Type != oi.inc.Type {
		return false
	}
	if rec.At < oi.inc.First-c.window || rec.At > oi.inc.Last+c.window {
		return false
	}
	if rec.Node == oi.inc.Node {
		return true
	}
	return loopsOverlap(oi.loop, rec.Loop)
}

func loopsOverlap(a, b []topo.PortRef) bool {
	if len(a) == 0 || len(b) == 0 {
		return false
	}
	set := make(map[topo.PortRef]bool, len(a))
	for _, p := range a {
		set[p] = true
	}
	for _, p := range b {
		if set[p] {
			return true
		}
	}
	return false
}

// observe folds one record in, emits the resulting event, and returns
// the ID of the incident the record joined (so the retention ring can
// withdraw the membership if it later evicts the record).
func (c *clusterer) observe(rec Record) uint64 {
	c.mu.Lock()
	var ev Event
	var id uint64
	if oi := c.match(&rec); oi != nil {
		c.grow(oi, &rec)
		ev = Event{Kind: Grew, Incident: snapshot(oi)}
		id = oi.inc.ID
	} else {
		oi := c.openNew(&rec)
		ev = Event{Kind: Opened, Incident: snapshot(oi)}
		id = oi.inc.ID
	}
	c.mu.Unlock()
	c.emit(ev)
	return id
}

// evict withdraws an evicted ring record's membership from its open
// incident, so a store replayed after a crash cannot resurrect
// complaints the retention ring had already aged out. Resolved
// incidents are frozen history and are left untouched; an open incident
// whose last member is withdrawn vanishes without a Resolved event — it
// no longer has any evidence behind it.
func (c *clusterer) evict(incID uint64, rec *Record) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, oi := range c.open {
		if oi.inc.ID != incID {
			continue
		}
		oi.inc.Complaints--
		decr(oi.victims, rec.Victim)
		decr(oi.fabrics, rec.Fabric)
		for _, cu := range rec.Culprits {
			decr(oi.culprit, cu)
		}
		oi.unfold(rec)
		// First/Last keep their historical bounds: the span is when the
		// incident happened, not which members the ring still holds.
		if oi.inc.Complaints <= 0 {
			c.open = append(c.open[:i], c.open[i+1:]...)
		}
		return
	}
}

func (c *clusterer) match(rec *Record) *openIncident {
	for _, oi := range c.open {
		if c.joins(oi, rec) {
			return oi
		}
	}
	return nil
}

func (c *clusterer) grow(oi *openIncident, rec *Record) {
	oi.inc.Complaints++
	if rec.At < oi.inc.First {
		oi.inc.First = rec.At
	}
	if rec.At > oi.inc.Last {
		oi.inc.Last = rec.At
	}
	oi.victims[rec.Victim]++
	oi.fabrics[rec.Fabric]++
	for _, cu := range rec.Culprits {
		oi.culprit[cu]++
	}
	if len(oi.loop) == 0 {
		oi.loop = rec.Loop
	}
	oi.fold(rec)
}

func (c *clusterer) openNew(rec *Record) *openIncident {
	c.nextID++
	c.opened.Add(1)
	oi := &openIncident{
		inc: Incident{
			ID:    c.nextID,
			Type:  rec.Type,
			Node:  rec.Node,
			First: rec.At,
			Last:  rec.At,
		},
		victims:  map[string]int{rec.Victim: 1},
		fabrics:  map[string]int{rec.Fabric: 1},
		culprit:  make(map[string]int),
		attrSeen: make(map[string]map[string]int),
		loop:     rec.Loop,
	}
	oi.inc.Complaints = 1
	for _, cu := range rec.Culprits {
		oi.culprit[cu]++
	}
	oi.fold(rec)
	c.open = append(c.open, oi)
	return oi
}

// snapshot freezes an open incident for publication: distinct sets
// sorted, attribute partition derived from the incremental value sets.
func snapshot(oi *openIncident) Incident {
	inc := oi.inc
	inc.Victims = sortedKeys(oi.victims)
	inc.Fabrics = sortedKeys(oi.fabrics)
	inc.Culprits = sortedKeys(oi.culprit)
	inc.Constant = make(map[string]string)
	inc.Varying = make(map[string][]string)
	for k, vals := range oi.attrSeen {
		if len(vals) == 1 {
			for v := range vals {
				inc.Constant[k] = v
			}
			continue
		}
		inc.Varying[k] = sortedKeys(vals)
	}
	return inc
}

// restoreState swaps in clusterer state decoded from a snapshot.
// Called before any records flow, during Open.
func (c *clusterer) restoreState(open []*openIncident, resolved []Incident, nextID, opened uint64) {
	c.mu.Lock()
	c.open = open
	c.resolved = resolved
	c.nextID = nextID
	c.mu.Unlock()
	c.opened.Store(opened)
}

func sortedKeys(m map[string]int) []string {
	if len(m) == 0 {
		return nil
	}
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// sweep resolves open incidents whose widened span lies entirely before
// the watermark, emitting Resolved events outside the lock.
func (c *clusterer) sweep(watermark sim.Time) {
	c.mu.Lock()
	var done []Incident
	kept := c.open[:0]
	for _, oi := range c.open {
		if oi.inc.Last+c.window < watermark {
			inc := snapshot(oi)
			inc.Resolved = true
			done = append(done, inc)
		} else {
			kept = append(kept, oi)
		}
	}
	c.open = kept
	c.resolved = append(c.resolved, done...)
	if over := len(c.resolved) - c.keep; over > 0 {
		c.resolved = append(c.resolved[:0], c.resolved[over:]...)
	}
	c.mu.Unlock()
	for i := range done {
		c.emit(Event{Kind: Resolved, Incident: done[i]})
	}
}

func (c *clusterer) openCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.open)
}

// matchesIncident applies a Query to an incident: the anchor node, the
// type list, the time span (overlap) and, via Fabrics, the fabric.
func matchesIncident(q *Query, inc *Incident) bool {
	if q.Node >= 0 && inc.Node != q.Node {
		return false
	}
	if inc.Last < q.From || (q.To > 0 && inc.First > q.To) {
		return false
	}
	if q.Fabric != "" {
		found := false
		for _, f := range inc.Fabrics {
			if f == q.Fabric {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	if len(q.Types) == 0 {
		return true
	}
	for _, t := range q.Types {
		if inc.Type == t {
			return true
		}
	}
	return false
}

// incidents lists matching incidents, resolved then open, ordered by
// first trigger time.
func (c *clusterer) incidents(q Query) []Incident {
	c.mu.Lock()
	out := make([]Incident, 0, len(c.resolved)+len(c.open))
	for i := range c.resolved {
		if matchesIncident(&q, &c.resolved[i]) {
			out = append(out, c.resolved[i])
		}
	}
	for _, oi := range c.open {
		inc := snapshot(oi)
		if matchesIncident(&q, &inc) {
			out = append(out, inc)
		}
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].First != out[j].First {
			return out[i].First < out[j].First
		}
		return out[i].ID < out[j].ID
	})
	if q.Limit > 0 && len(out) > q.Limit {
		out = out[:q.Limit]
	}
	return out
}

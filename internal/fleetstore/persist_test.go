package fleetstore

import (
	"fmt"
	"testing"

	"hawkeye/internal/diagnosis"
	"hawkeye/internal/sim"
)

// durableCfg is the deterministic durability config tests use:
// synchronous WAL appends, no background flusher.
func durableCfg() Config {
	return Config{GroupWindow: -1}
}

func TestOpenEmptyDirStartsEmpty(t *testing.T) {
	st, err := Open(t.TempDir(), durableCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if !st.Durable() {
		t.Fatal("Open returned a non-durable store")
	}
	if got := st.Records(Query{Node: AnyNode}); len(got) != 0 {
		t.Fatalf("fresh store has %d records", len(got))
	}
}

// TestOpenReplaysWALWithoutSnapshot crashes before the first checkpoint:
// everything comes back from the log alone, with seq and incident IDs
// intact and continuing.
func TestOpenReplaysWALWithoutSnapshot(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, durableCfg())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		st.Add(rec("pod-a", sim.Time(100+i*10), fmt.Sprintf("v%d", i), diagnosis.TypePFCStorm, 5))
	}
	st.Abort() // crash: no checkpoint, no clean close

	st2, err := Open(dir, durableCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.ReplayedRecords() != 10 {
		t.Fatalf("replayed %d records, want 10", st2.ReplayedRecords())
	}
	recs := st2.Records(Query{Node: AnyNode})
	if len(recs) != 10 {
		t.Fatalf("%d records after reopen, want 10", len(recs))
	}
	seen := map[uint64]bool{}
	for _, r := range recs {
		if seen[r.Seq] {
			t.Fatalf("duplicate seq %d after replay", r.Seq)
		}
		seen[r.Seq] = true
	}
	// The single storm incident survives as one incident, and the seq
	// counter continues past the replayed records.
	incs := st2.Incidents(Query{Node: AnyNode})
	if len(incs) != 1 || incs[0].Complaints != 10 {
		t.Fatalf("incidents after reopen: %+v", incs)
	}
	added := st2.Add(rec("pod-a", 500, "v-new", diagnosis.TypePFCStorm, 5))
	if added.Seq != 11 {
		t.Fatalf("post-replay seq = %d, want 11", added.Seq)
	}
}

// TestOpenSnapshotPlusWALDelta checkpoints mid-stream, adds more, then
// crashes: recovery is snapshot + log tail, and WAL segments the
// snapshot covers are compacted.
func TestOpenSnapshotPlusWALDelta(t *testing.T) {
	dir := t.TempDir()
	cfg := durableCfg()
	cfg.SegmentBytes = 512 // force several segments
	st, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		st.Add(rec("pod-a", sim.Time(100+i*10), fmt.Sprintf("v%d", i), diagnosis.TypePFCStorm, 5))
	}
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 8; i < 12; i++ {
		st.Add(rec("pod-b", sim.Time(100+i*10), fmt.Sprintf("v%d", i), diagnosis.TypePFCStorm, 5))
	}
	st.Abort()

	st2, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.ReplayedRecords() != 4 {
		t.Fatalf("replayed %d WAL records past the snapshot, want 4", st2.ReplayedRecords())
	}
	recs := st2.Records(Query{Node: AnyNode})
	if len(recs) != 12 {
		t.Fatalf("%d records after reopen, want 12", len(recs))
	}
	incs := st2.Incidents(Query{Node: AnyNode})
	if len(incs) != 1 || incs[0].Complaints != 12 {
		t.Fatalf("incidents after snapshot+delta reopen: %+v", incs)
	}
	if len(incs[0].Fabrics) != 2 {
		t.Fatalf("fabrics = %v, want both pods", incs[0].Fabrics)
	}
}

// TestReopenResolvedIncidentsStayResolved: an incident swept resolved
// before the crash must come back resolved (the reopened store sweeps
// to the recovered watermark), and its ID must not be reused.
func TestReopenResolvedIncidentsStayResolved(t *testing.T) {
	dir := t.TempDir()
	cfg := durableCfg()
	cfg.Window = 50
	st, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	st.Add(rec("pod-a", 100, "v1", diagnosis.TypePFCStorm, 5))
	st.Add(rec("pod-a", 120, "v2", diagnosis.TypePFCStorm, 5))
	// A much later record moves the watermark past 120+50 and the sweep
	// resolves the first incident.
	st.Add(rec("pod-a", 1000, "v3", diagnosis.TypePFCStorm, 5))
	st.Sweep(1000)
	st.Abort()

	st2, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	incs := st2.Incidents(Query{Node: AnyNode})
	if len(incs) != 2 {
		t.Fatalf("%d incidents after reopen, want 2: %+v", len(incs), incs)
	}
	if !incs[0].Resolved || incs[0].Complaints != 2 {
		t.Fatalf("first incident not restored resolved: %+v", incs[0])
	}
	if incs[1].Resolved {
		t.Fatalf("second incident wrongly resolved: %+v", incs[1])
	}
	if incs[0].ID == incs[1].ID {
		t.Fatalf("duplicate incident ID %d after reopen", incs[0].ID)
	}
	// New incidents continue the ID sequence, never reusing.
	st2.Add(rec("pod-a", 5000, "v4", diagnosis.TypePFCContention, 9))
	for _, inc := range st2.Incidents(Query{Node: AnyNode}) {
		if inc.Type == diagnosis.TypePFCContention && (inc.ID == incs[0].ID || inc.ID == incs[1].ID) {
			t.Fatalf("incident ID %d reused after reopen", inc.ID)
		}
	}
}

// TestEvictionWithdrawsClusterMembership is the retention-ring fix: an
// evicted record leaves its open incident (complaints and distinct sets
// shrink), so neither live queries nor a replayed store resurrect it.
func TestEvictionWithdrawsClusterMembership(t *testing.T) {
	st := New(Config{Shards: 1, ShardCapacity: 4, Window: sim.Time(1 << 40)})
	for i := 0; i < 6; i++ {
		st.Add(rec("pod-a", sim.Time(100+i), fmt.Sprintf("v%d", i), diagnosis.TypePFCStorm, 5))
	}
	c := st.CountersSnapshot()
	if c.Evicted != 2 {
		t.Fatalf("evicted = %d, want 2", c.Evicted)
	}
	incs := st.Incidents(Query{Node: AnyNode})
	if len(incs) != 1 {
		t.Fatalf("%d incidents, want 1", len(incs))
	}
	if incs[0].Complaints != 4 {
		t.Fatalf("complaints = %d after eviction, want 4 (membership not withdrawn)", incs[0].Complaints)
	}
	if len(incs[0].Victims) != 4 {
		t.Fatalf("victims = %v after eviction, want the 4 retained", incs[0].Victims)
	}
	for _, v := range incs[0].Victims {
		if v == "v0" || v == "v1" {
			t.Fatalf("evicted victim %s still in incident", v)
		}
	}
}

// TestReplayMatchesEvictedState: pre-crash evictions must not
// resurrect on replay — the replayed store re-runs the same admissions
// and lands on the same retained set and the same cluster membership.
func TestReplayMatchesEvictedState(t *testing.T) {
	dir := t.TempDir()
	cfg := durableCfg()
	cfg.Shards = 1
	cfg.ShardCapacity = 4
	cfg.Window = sim.Time(1 << 40)
	st, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9; i++ {
		st.Add(rec("pod-a", sim.Time(100+i), fmt.Sprintf("v%d", i), diagnosis.TypePFCStorm, 5))
	}
	before := st.Incidents(Query{Node: AnyNode})
	beforeRecs := st.Records(Query{Node: AnyNode})
	st.Abort()

	st2, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	after := st2.Incidents(Query{Node: AnyNode})
	afterRecs := st2.Records(Query{Node: AnyNode})
	if len(afterRecs) != len(beforeRecs) {
		t.Fatalf("retained %d records after replay, want %d", len(afterRecs), len(beforeRecs))
	}
	for i := range afterRecs {
		if afterRecs[i].Seq != beforeRecs[i].Seq || afterRecs[i].Victim != beforeRecs[i].Victim {
			t.Fatalf("record %d diverged: %+v vs %+v", i, afterRecs[i], beforeRecs[i])
		}
	}
	if len(after) != len(before) || after[0].Complaints != before[0].Complaints {
		t.Fatalf("cluster state diverged: %+v vs %+v", after, before)
	}
	if len(after[0].Victims) != len(before[0].Victims) {
		t.Fatalf("victims resurrected: %v vs %v", after[0].Victims, before[0].Victims)
	}
}

// TestCheckpointCompactsSegments: after a checkpoint, covered segments
// disappear and a reopen replays only the tail.
func TestCheckpointCompactsSegments(t *testing.T) {
	dir := t.TempDir()
	cfg := durableCfg()
	cfg.SegmentBytes = 256
	st, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		st.Add(rec("pod-a", sim.Time(100+i*10), fmt.Sprintf("v%d", i), diagnosis.TypePFCStorm, 5))
	}
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	c := st.CountersSnapshot()
	if c.Snapshots == 0 {
		t.Fatal("no snapshot recorded")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.ReplayedRecords() != 0 {
		t.Fatalf("replayed %d records after clean close, want 0 (snapshot covers all)", st2.ReplayedRecords())
	}
	if got := st2.Records(Query{Node: AnyNode}); len(got) != 20 {
		t.Fatalf("%d records after clean reopen, want 20", len(got))
	}
}

// TestSnapshotEveryTriggersAutomatically: admissions past the threshold
// checkpoint without an explicit call.
func TestSnapshotEveryTriggersAutomatically(t *testing.T) {
	dir := t.TempDir()
	cfg := durableCfg()
	cfg.SnapshotEvery = 5
	st, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for i := 0; i < 11; i++ {
		st.Add(rec("pod-a", sim.Time(100+i*10), fmt.Sprintf("v%d", i), diagnosis.TypePFCStorm, 5))
	}
	if c := st.CountersSnapshot(); c.Snapshots < 2 {
		t.Fatalf("snapshots = %d after 11 adds with SnapshotEvery=5, want >= 2", c.Snapshots)
	}
}

// TestOpenReadOnlyLeavesDirUntouched: inspection must not repair,
// append or snapshot.
func TestOpenReadOnly(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, durableCfg())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		st.Add(rec("pod-a", sim.Time(100+i*10), fmt.Sprintf("v%d", i), diagnosis.TypePFCStorm, 5))
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	ro := durableCfg()
	ro.ReadOnly = true
	st2, err := Open(dir, ro)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Durable() {
		t.Fatal("read-only store claims durability")
	}
	if got := st2.Records(Query{Node: AnyNode}); len(got) != 5 {
		t.Fatalf("read-only open sees %d records, want 5", len(got))
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestInMemoryStoreLifecycleNoops: New stores close cleanly and report
// no durability.
func TestInMemoryStoreLifecycleNoops(t *testing.T) {
	st := New(Config{})
	st.Add(rec("pod-a", 100, "v1", diagnosis.TypePFCStorm, 5))
	if st.Durable() {
		t.Fatal("in-memory store claims durability")
	}
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

package fleetstore

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"hawkeye/internal/diagnosis"
	"hawkeye/internal/sim"
)

func routedRec(fabric string, at sim.Time, victim string, originSeq uint64) Record {
	r := rec(fabric, at, victim, diagnosis.TypePFCContention, 1)
	r.OriginSeq = originSeq
	return r
}

// TestAddUniqueDedupsByOriginSeq is the store-level proof behind the
// writer's exactly-once claim: a resend carrying an already-admitted
// idempotency sequence is refused without touching the store.
func TestAddUniqueDedupsByOriginSeq(t *testing.T) {
	st := New(Config{})
	got, outcome := st.AddUnique(routedRec("pod-a", 100, "v1", 1))
	if outcome != Admitted || got.Seq == 0 {
		t.Fatalf("first admission: outcome=%v seq=%d", outcome, got.Seq)
	}
	if _, outcome := st.AddUnique(routedRec("pod-a", 150, "v1-resend", 1)); outcome != AdmitDuplicate {
		t.Fatalf("resend admitted: outcome=%v", outcome)
	}
	// A lower sequence is also a duplicate: the watermark is a high-water
	// mark, not a set.
	if _, outcome := st.AddUnique(routedRec("pod-a", 160, "v0-late", 0)); outcome != Admitted {
		t.Fatal("OriginSeq 0 must bypass dedup (at-least-once path)")
	}
	if _, outcome := st.AddUnique(routedRec("pod-a", 170, "v2", 2)); outcome != Admitted {
		t.Fatal("next sequence refused")
	}
	if _, outcome := st.AddUnique(routedRec("pod-b", 180, "w1", 1)); outcome != Admitted {
		t.Fatal("watermarks must be per-fabric")
	}
	recs := st.Records(Query{Node: AnyNode})
	if len(recs) != 4 {
		t.Fatalf("%d records retained, want 4", len(recs))
	}
	for _, r := range recs {
		if r.Victim == "v1-resend" {
			t.Fatal("refused duplicate was retained")
		}
	}
	if wm := st.OriginWatermark("pod-a"); wm != 2 {
		t.Fatalf("pod-a watermark %d, want 2", wm)
	}
}

// TestAddUniqueWatermarkSurvivesReopen proves dedup holds across a
// restart on both recovery paths: pure WAL replay and snapshot +
// delta. Without a persisted (or rederived) watermark, a resend after
// recovery would be admitted twice.
func TestAddUniqueWatermarkSurvivesReopen(t *testing.T) {
	for _, checkpoint := range []bool{false, true} {
		name := "replay"
		if checkpoint {
			name = "snapshot"
		}
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			st, err := Open(dir, durableCfg())
			if err != nil {
				t.Fatal(err)
			}
			if _, outcome := st.AddUnique(routedRec("pod-a", 100, "v1", 7)); outcome != Admitted {
				t.Fatal("admission refused")
			}
			if checkpoint {
				if err := st.Checkpoint(); err != nil {
					t.Fatal(err)
				}
			}
			st.Close()

			st2, err := Open(dir, durableCfg())
			if err != nil {
				t.Fatal(err)
			}
			defer st2.Close()
			if wm := st2.OriginWatermark("pod-a"); wm != 7 {
				t.Fatalf("recovered watermark %d, want 7", wm)
			}
			if _, outcome := st2.AddUnique(routedRec("pod-a", 200, "v1-resend", 7)); outcome != AdmitDuplicate {
				t.Fatalf("post-recovery resend: outcome=%v", outcome)
			}
			if got := st2.Records(Query{Node: AnyNode}); len(got) != 1 {
				t.Fatalf("%d records after recovery, want 1", len(got))
			}
		})
	}
}

// TestAddUniqueConcurrentResends hammers one sequence from many
// goroutines: exactly one admission may win.
func TestAddUniqueConcurrentResends(t *testing.T) {
	st := New(Config{})
	const workers = 16
	var wg sync.WaitGroup
	admitted := make([]int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for seq := uint64(1); seq <= 64; seq++ {
				if _, outcome := st.AddUnique(routedRec("pod-a", sim.Time(seq*100), fmt.Sprintf("v%d", seq), seq)); outcome == Admitted {
					admitted[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	total := 0
	for _, n := range admitted {
		total += n
	}
	if total != 64 {
		t.Fatalf("%d admissions for 64 sequences", total)
	}
	if got := len(st.Records(Query{Node: AnyNode})); got != 64 {
		t.Fatalf("%d records retained, want 64", got)
	}
}

// TestFreezeFabricSealsAdmission: a frozen fabric refuses routed
// admission (the mid-cutover hold), other fabrics keep flowing, and a
// thaw or purge lifts the seal.
func TestFreezeFabricSealsAdmission(t *testing.T) {
	st := New(Config{})
	st.FreezeFabric("pod-a")
	if !st.FabricFrozen("pod-a") {
		t.Fatal("freeze not visible")
	}
	if _, outcome := st.AddUnique(routedRec("pod-a", 100, "v1", 1)); outcome != AdmitFrozen {
		t.Fatalf("frozen fabric admitted: outcome=%v", outcome)
	}
	if _, outcome := st.AddUnique(routedRec("pod-b", 110, "w1", 1)); outcome != Admitted {
		t.Fatal("freeze leaked to another fabric")
	}
	st.ThawFabric("pod-a")
	if _, outcome := st.AddUnique(routedRec("pod-a", 120, "v1", 1)); outcome != Admitted {
		t.Fatal("thawed fabric still refused")
	}
	// A refused admission must not burn the idempotency sequence.
	st.FreezeFabric("pod-c")
	if _, outcome := st.AddUnique(routedRec("pod-c", 130, "c1", 1)); outcome != AdmitFrozen {
		t.Fatal("frozen fabric admitted")
	}
	st.ThawFabric("pod-c")
	if _, outcome := st.AddUnique(routedRec("pod-c", 140, "c1", 1)); outcome != Admitted {
		t.Fatal("frozen refusal burned the sequence")
	}
	// The purge path clears the seal too (release supersedes freeze).
	st.FreezeFabric("pod-b")
	if _, err := st.PurgeFabric("pod-b"); err != nil {
		t.Fatal(err)
	}
	if st.FabricFrozen("pod-b") {
		t.Fatal("purge left the fabric frozen")
	}
	if !st.MovedOut("pod-b") {
		t.Fatal("purge did not mark the fabric moved out")
	}
}

// TestPurgeAdoptReplay: the reshard tombstones are WAL records — a
// store that crashes after a cutover replays them and recovers the
// exact post-cutover state (purged fabric gone, moved-out marker set,
// adopt clearing both).
func TestPurgeAdoptReplay(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, durableCfg())
	if err != nil {
		t.Fatal(err)
	}
	st.Add(rec("pod-a", 100, "a1", diagnosis.TypePFCContention, 1))
	st.Add(rec("pod-a", 200, "a2", diagnosis.TypePFCStorm, 1))
	st.Add(rec("pod-b", 300, "b1", diagnosis.TypePFCContention, 2))
	purged, err := st.PurgeFabric("pod-a")
	if err != nil {
		t.Fatal(err)
	}
	if purged != 2 {
		t.Fatalf("purged %d, want 2", purged)
	}
	if got := st.Records(Query{Fabric: "pod-a", Node: AnyNode}); len(got) != 0 {
		t.Fatalf("purged fabric still holds %d records", len(got))
	}
	st.Close()

	st2, err := Open(dir, durableCfg())
	if err != nil {
		t.Fatal(err)
	}
	if got := st2.Records(Query{Node: AnyNode}); len(got) != 1 || got[0].Victim != "b1" {
		t.Fatalf("replayed purge: records %v", got)
	}
	if !st2.MovedOut("pod-a") {
		t.Fatal("replayed store lost the moved-out marker")
	}
	// Adopt clears the marker — and that survives replay too.
	if err := st2.AdoptFabric("pod-a"); err != nil {
		t.Fatal(err)
	}
	if st2.MovedOut("pod-a") {
		t.Fatal("adopt left the moved-out marker")
	}
	st2.Add(rec("pod-a", 400, "a3", diagnosis.TypePFCContention, 1))
	st2.Close()

	st3, err := Open(dir, durableCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	if st3.MovedOut("pod-a") {
		t.Fatal("replayed adopt lost")
	}
	if got := st3.Records(Query{Fabric: "pod-a", Node: AnyNode}); len(got) != 1 || got[0].Victim != "a3" {
		t.Fatalf("post-adopt fabric records %v", got)
	}
}

// TestEpochLifecycle: epoch 1 claimed on first open, persisted across
// reopen, bumped by Config.BumpEpoch (promotion) and BumpEpoch
// (cutover), and a fence marker outlives a restart so a demoted shard
// can never ack after a crash.
func TestEpochLifecycle(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, durableCfg())
	if err != nil {
		t.Fatal(err)
	}
	if e := st.Epoch(); e != 1 {
		t.Fatalf("fresh store epoch %d, want 1", e)
	}
	if e, err := st.BumpEpoch(); err != nil || e != 2 {
		t.Fatalf("cutover bump: epoch=%d err=%v", e, err)
	}
	st.Close()

	// Plain reopen: epoch sticks.
	st, err = Open(dir, durableCfg())
	if err != nil {
		t.Fatal(err)
	}
	if e := st.Epoch(); e != 2 {
		t.Fatalf("reopened epoch %d, want 2", e)
	}
	// Fencing: a higher observed epoch demotes durably.
	if err := st.NoteFence(7); err != nil {
		t.Fatal(err)
	}
	if f := st.FencedBy(); f != 7 {
		t.Fatalf("FencedBy %d, want 7", f)
	}
	// Lower or equal announces never regress the fence.
	if err := st.NoteFence(5); err != nil {
		t.Fatal(err)
	}
	if f := st.FencedBy(); f != 7 {
		t.Fatalf("fence regressed to %d", f)
	}
	st.Close()

	// The fence survives a crash-restart…
	st, err = Open(dir, durableCfg())
	if err != nil {
		t.Fatal(err)
	}
	if f := st.FencedBy(); f != 7 {
		t.Fatalf("restarted FencedBy %d, want 7", f)
	}
	st.Close()

	// …and a promotion bump jumps past it and clears it.
	cfg := durableCfg()
	cfg.BumpEpoch = true
	st, err = Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if e := st.Epoch(); e != 8 {
		t.Fatalf("promoted epoch %d, want 8 (past the fence)", e)
	}
	if f := st.FencedBy(); f != 0 {
		t.Fatalf("promotion left fence %d", f)
	}
}

// TestEpochFileCorruptionIsError: a corrupted epoch file must fail the
// open loudly — silently claiming epoch 0/1 would let a stale primary
// shed its fence.
func TestEpochFileCorruptionIsError(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, durableCfg())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.BumpEpoch(); err != nil {
		t.Fatal(err)
	}
	st.Close()

	if err := corruptEpochFile(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, durableCfg()); err == nil {
		t.Fatal("open succeeded over a corrupted epoch file")
	} else if !strings.Contains(err.Error(), "epoch") {
		t.Fatalf("error does not name the epoch file: %v", err)
	}
}

// corruptEpochFile flips a payload byte in the store's epoch file so
// the CRC no longer matches.
func corruptEpochFile(dir string) error {
	path := filepath.Join(dir, "epoch")
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	data[len(data)-1] ^= 0xFF
	return os.WriteFile(path, data, 0o644)
}

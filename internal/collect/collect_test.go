package collect

import (
	"testing"

	"hawkeye/internal/device"
	"hawkeye/internal/packet"
	"hawkeye/internal/sim"
	"hawkeye/internal/telemetry"
)

func newTel(t *testing.T, eng *sim.Engine) *telemetry.State {
	t.Helper()
	cfg := telemetry.Config{EpochBits: 14, NumEpochs: 4, FlowSlots: 64, Lookback: 2, FlowTelemetry: true}
	tel, err := telemetry.New(cfg, 1, "sw1", 8, 100e9, eng.Now, func(int) int { return 4321 })
	if err != nil {
		t.Fatal(err)
	}
	return tel
}

func feed(tel *telemetry.State, n int, now sim.Time) {
	for i := 0; i < n; i++ {
		ft := packet.FiveTuple{SrcIP: uint32(i + 1), DstIP: 0xFF, SrcPort: 1, DstPort: 2, Proto: 17}
		tel.OnEnqueue(device.EnqueueEvent{
			Pkt:        &packet.Packet{Type: packet.TypeData, Flow: ft, Class: packet.ClassLossless, Size: 1000},
			InPort:     0,
			OutPort:    1,
			QueueBytes: 1000,
			Now:        now,
		})
	}
}

func hdr(diag uint32) packet.PollingHeader {
	return packet.PollingHeader{Flag: packet.FlagVictimPath, DiagID: diag}
}

func TestCollectionLatencyModel(t *testing.T) {
	eng := sim.NewEngine()
	tel := newTel(t, eng)
	feed(tel, 5, 0)
	cfg := DefaultConfig()
	c := NewCollector(eng, cfg)
	var got []Delivery
	c.OnDelivery = func(d Delivery) { got = append(got, d) }
	c.MirrorPolling(1, tel, hdr(7), 0)
	eng.RunAll()
	if len(got) != 1 {
		t.Fatalf("deliveries = %d", len(got))
	}
	d := got[0]
	// Only 1 valid epoch exists at t=0, so latency = base + 1*perEpoch.
	wantLatency := cfg.BaseLatency + cfg.PerEpochLatency
	if lat := d.Arrived - d.Started; lat != wantLatency {
		t.Fatalf("latency = %v, want %v", lat, wantLatency)
	}
	if d.Report.Switch != 1 || len(d.DiagIDs) != 1 || d.DiagIDs[0] != 7 {
		t.Fatalf("delivery meta: %+v", d)
	}
	// Paper §4.5: 2 epochs ≈ 80 ms, 4 epochs ≈ 120 ms with defaults.
	if cfg.BaseLatency+2*cfg.PerEpochLatency != 80*sim.Millisecond {
		t.Fatalf("2-epoch latency model mismatch")
	}
	if cfg.BaseLatency+4*cfg.PerEpochLatency != 120*sim.Millisecond {
		t.Fatalf("4-epoch latency model mismatch")
	}
}

func TestSnapshotTakenAtSyncStart(t *testing.T) {
	eng := sim.NewEngine()
	tel := newTel(t, eng)
	feed(tel, 3, 0)
	c := NewCollector(eng, DefaultConfig())
	var rep *telemetry.Report
	c.OnDelivery = func(d Delivery) { rep = d.Report }
	c.MirrorPolling(1, tel, hdr(1), 0)
	// Data arriving after the sync started must not appear in the report.
	eng.After(sim.Millisecond, func() { feed(tel, 40, eng.Now()) })
	eng.RunAll()
	if rep == nil {
		t.Fatal("no delivery")
	}
	if got := rep.FlowCount(); got != 3 {
		t.Fatalf("report has %d flows, want the 3 present at sync start", got)
	}
}

func TestDedupInterval(t *testing.T) {
	eng := sim.NewEngine()
	tel := newTel(t, eng)
	feed(tel, 2, 0)
	c := NewCollector(eng, DefaultConfig())
	var got []Delivery
	c.OnDelivery = func(d Delivery) { got = append(got, d) }
	c.MirrorPolling(1, tel, hdr(1), 0)
	// Second mirror within the interval: no new collection, but the
	// pending delivery picks up the diag ID.
	eng.After(100*sim.Microsecond, func() { c.MirrorPolling(1, tel, hdr(2), 0) })
	eng.RunAll()
	if len(got) != 1 {
		t.Fatalf("collections = %d, want 1 (dedup)", len(got))
	}
	if len(got[0].DiagIDs) != 2 {
		t.Fatalf("diag IDs = %v, want both sessions attached", got[0].DiagIDs)
	}
	st := c.Stats()
	if st.Collections != 1 || st.DedupHits != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// After the interval, a new collection happens.
	eng.After(2*sim.Millisecond, func() { c.MirrorPolling(1, tel, hdr(3), 0) })
	eng.RunAll()
	if c.Stats().Collections != 2 {
		t.Fatalf("collections = %d after interval, want 2", c.Stats().Collections)
	}
}

func TestOverheadAccounting(t *testing.T) {
	eng := sim.NewEngine()
	tel := newTel(t, eng)
	feed(tel, 10, 0)
	cfg := DefaultConfig()
	c := NewCollector(eng, cfg)
	c.OnDelivery = func(Delivery) {}
	c.MirrorPolling(1, tel, hdr(1), 0)
	eng.RunAll()
	st := c.Stats()
	if st.ReportBytes == 0 || st.FullDumpBytes <= st.ReportBytes {
		t.Fatalf("zero-filtering not reflected: report=%d full=%d", st.ReportBytes, st.FullDumpBytes)
	}
	// Fig 14a: with 10 of 64 slots used the reduction exceeds 80%.
	if ratio := float64(st.ReportBytes) / float64(st.FullDumpBytes); ratio > 0.2 {
		t.Fatalf("reduction ratio %.2f, want < 0.2", ratio)
	}
	// Fig 14b: MTU batching versus PHV-limited packet generation.
	if st.ReportPackets >= st.FullDumpPackets {
		t.Fatalf("packet reduction not reflected: %d vs %d", st.ReportPackets, st.FullDumpPackets)
	}
	if !st.SwitchesTouched[1] {
		t.Fatal("switch not recorded")
	}
	if st.FlowRecords != 10 {
		t.Fatalf("flow records = %d", st.FlowRecords)
	}
}

func TestReportCarriesLiveRegisters(t *testing.T) {
	eng := sim.NewEngine()
	tel := newTel(t, eng)
	feed(tel, 1, 0)
	c := NewCollector(eng, DefaultConfig())
	var rep *telemetry.Report
	c.OnDelivery = func(d Delivery) { rep = d.Report }
	c.MirrorPolling(1, tel, hdr(1), 0)
	eng.RunAll()
	if rep.Status[0].QdepthBytes != 4321 {
		t.Fatalf("live queue register not sampled: %+v", rep.Status[0])
	}
}

package collect

import (
	"testing"

	"hawkeye/internal/sim"
	"hawkeye/internal/topo"
)

// scriptedFaults drops deliveries per a fixed script and adds constant
// lag, so the assertions are exact rather than probabilistic.
type scriptedFaults struct {
	drop []bool
	next int
	lag  sim.Time

	dropped int
}

func (f *scriptedFaults) DropDelivery(topo.NodeID) bool {
	if f.next >= len(f.drop) {
		return false
	}
	d := f.drop[f.next]
	f.next++
	if d {
		f.dropped++
	}
	return d
}

func (f *scriptedFaults) CollectLatency(topo.NodeID) sim.Time { return f.lag }

// TestBatchLossAccounting: injected delivery drops must reconcile
// exactly — collections split into delivered plus dropped, with nothing
// double-counted and the delivered batches untouched.
func TestBatchLossAccounting(t *testing.T) {
	eng := sim.NewEngine()
	tel := newTel(t, eng)
	feed(tel, 10, 0)
	cfg := DefaultConfig()
	c := NewCollector(eng, cfg)
	faults := &scriptedFaults{drop: []bool{false, true, false, true, true}}
	c.Faults = faults

	var got []Delivery
	c.OnDelivery = func(d Delivery) { got = append(got, d) }
	// Five collections from five switches (distinct IDs dodge the dedup
	// interval; the telemetry content does not matter for accounting).
	for i := 0; i < 5; i++ {
		c.MirrorPolling(topo.NodeID(i+1), tel, hdr(uint32(i+1)), 0)
	}
	eng.RunAll()

	st := c.Stats()
	if st.Collections != 5 {
		t.Fatalf("collections = %d", st.Collections)
	}
	if st.DroppedDeliveries != faults.dropped || faults.dropped != 3 {
		t.Fatalf("dropped = %d, injected %d", st.DroppedDeliveries, faults.dropped)
	}
	if st.Delivered() != len(got) || len(got) != 2 {
		t.Fatalf("delivered = %d, OnDelivery saw %d", st.Delivered(), len(got))
	}
	if st.Delivered()+st.DroppedDeliveries != st.Collections {
		t.Fatalf("accounting does not reconcile: %+v", st)
	}
	// The overhead counters account for every register sync — including
	// batches later lost in transit (the sync itself happened).
	if st.ReportBytes == 0 || st.ReportPackets < 5 {
		t.Fatalf("overhead counters missed collections: %+v", st)
	}
}

// TestZeroFilteringUnderBatchLoss: the batches that do get through must
// still be zero-filtered and MTU-batched correctly — fault injection on
// the delivery path must not corrupt report assembly.
func TestZeroFilteringUnderBatchLoss(t *testing.T) {
	eng := sim.NewEngine()
	tel := newTel(t, eng)
	feed(tel, 25, 0)
	cfg := DefaultConfig()
	cfg.ReportMTU = 256 // small MTU so batching has real work to do
	c := NewCollector(eng, cfg)
	c.Faults = &scriptedFaults{drop: []bool{true, false}}

	var got []Delivery
	c.OnDelivery = func(d Delivery) { got = append(got, d) }
	c.MirrorPolling(1, tel, hdr(1), 0)
	c.MirrorPolling(2, tel, hdr(2), 0)
	eng.RunAll()

	if len(got) != 1 {
		t.Fatalf("deliveries = %d, want 1 (1 of 2 dropped)", len(got))
	}
	d := got[0]
	// Zero-filtering: every record in the report carries real counts.
	for _, ep := range d.Report.Epochs {
		for _, f := range ep.Flows {
			if f.PktCount == 0 {
				t.Fatalf("zero flow record survived filtering: %+v", f)
			}
		}
		for _, p := range ep.Ports {
			if p.PktCount == 0 {
				t.Fatalf("zero port record survived filtering: %+v", p)
			}
		}
	}
	// MTU batching: the accounted bytes are the wire encoding, split into
	// ceil(bytes/MTU) packets.
	if d.Bytes != d.Report.WireSize() {
		t.Fatalf("delivery bytes %d != wire size %d", d.Bytes, d.Report.WireSize())
	}
	wantPkts := (d.Bytes + cfg.ReportMTU - 1) / cfg.ReportMTU
	if d.Packets != wantPkts {
		t.Fatalf("packets = %d, want %d for %d bytes at MTU %d", d.Packets, wantPkts, d.Bytes, cfg.ReportMTU)
	}
	if d.Packets < 2 {
		t.Fatalf("test did not exercise batching: %d bytes fit one %d-byte MTU", d.Bytes, cfg.ReportMTU)
	}
}

// TestControllerLagStretchesDelivery: injected lag must delay arrival by
// exactly the injected amount and land in LagSum.
func TestControllerLagStretchesDelivery(t *testing.T) {
	eng := sim.NewEngine()
	tel := newTel(t, eng)
	feed(tel, 5, 0)
	cfg := DefaultConfig()
	c := NewCollector(eng, cfg)
	lag := 7 * sim.Millisecond
	c.Faults = &scriptedFaults{lag: lag}

	var got []Delivery
	c.OnDelivery = func(d Delivery) { got = append(got, d) }
	c.MirrorPolling(1, tel, hdr(1), 0)
	eng.RunAll()
	if len(got) != 1 {
		t.Fatalf("deliveries = %d", len(got))
	}
	d := got[0]
	base := cfg.BaseLatency + sim.Time(len(d.Report.Epochs))*cfg.PerEpochLatency
	if lat := d.Arrived - d.Started; lat != base+lag {
		t.Fatalf("latency = %v, want %v + %v lag", lat, base, lag)
	}
	if c.Stats().LagSum != lag {
		t.Fatalf("LagSum = %v", c.Stats().LagSum)
	}
}

// TestDroppedDeliveryStillDedups documents the nastiest degraded mode:
// the switch CPU synced and believes it reported, so re-polls inside the
// dedup interval are absorbed even though the analyzer got nothing.
func TestDroppedDeliveryStillDedups(t *testing.T) {
	eng := sim.NewEngine()
	tel := newTel(t, eng)
	feed(tel, 5, 0)
	cfg := DefaultConfig()
	c := NewCollector(eng, cfg)
	c.Faults = &scriptedFaults{drop: []bool{true}}

	delivered := 0
	c.OnDelivery = func(Delivery) { delivered++ }
	c.MirrorPolling(1, tel, hdr(1), 0)
	eng.After(cfg.Interval/2, func() { c.MirrorPolling(1, tel, hdr(2), 0) })
	eng.RunAll()

	st := c.Stats()
	if delivered != 0 {
		t.Fatalf("dropped delivery arrived anyway")
	}
	if st.Collections != 1 || st.DedupHits != 1 {
		t.Fatalf("re-poll was not deduped: %+v", st)
	}
	// Outside the interval the switch re-collects and the analyzer
	// finally hears about it.
	eng.After(cfg.Interval+sim.Microsecond, func() { c.MirrorPolling(1, tel, hdr(3), 0) })
	eng.RunAll()
	if delivered != 1 || c.Stats().Collections != 2 {
		t.Fatalf("recovery collection missing: delivered=%d %+v", delivered, c.Stats())
	}
}

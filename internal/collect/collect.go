// Package collect implements Hawkeye's controller-assisted telemetry
// collection (§3.4): when the data plane mirrors a polling packet to the
// switch CPU, the CPU synchronizes the telemetry registers (modelled on
// BF_Runtime REGISTER_SYNC DMA), filters zero slots, batches records into
// MTU-sized report packets and ships them to the analyzer.
//
// The latency model is calibrated to the paper's testbed measurements
// (§4.5): polling full telemetry takes ~80 ms for 2 epochs and ~120 ms
// for 4 epochs, i.e. ~40 ms fixed + ~20 ms per epoch. Register values are
// captured when the sync starts; the latency delays only delivery.
package collect

import (
	"hawkeye/internal/packet"
	"hawkeye/internal/sim"
	"hawkeye/internal/telemetry"
	"hawkeye/internal/topo"
)

// Config controls the collector.
type Config struct {
	// EpochsToCollect bounds how many recent epochs each report carries.
	EpochsToCollect int
	// Interval dedups collection per switch: a switch that reported
	// within the interval is not re-polled (multiple victims, §3.4).
	Interval sim.Time
	// BaseLatency + PerEpochLatency model the CPU register sync + report
	// assembly time.
	BaseLatency     sim.Time
	PerEpochLatency sim.Time
	// ReportMTU is the batching unit for report packets.
	ReportMTU int
	// PHVExportBytes models the alternative data-plane export: limited
	// PHV space forces ~200-byte payloads per generated packet (§3.4).
	PHVExportBytes int
}

// DefaultConfig matches the paper's measured poller behaviour.
func DefaultConfig() Config {
	return Config{
		EpochsToCollect: 4,
		// The interval must stay well inside the telemetry ring span
		// (NumEpochs * epoch); a deduped collection is reused by nearby
		// diagnoses and must still cover their anomaly epochs.
		Interval:        250 * sim.Microsecond,
		BaseLatency:     40 * sim.Millisecond,
		PerEpochLatency: 20 * sim.Millisecond,
		ReportMTU:       1500,
		PHVExportBytes:  200,
	}
}

// Delivery is one report arriving at the analyzer, with the diagnosis
// sessions it serves and its transfer accounting.
type Delivery struct {
	Report  *telemetry.Report
	DiagIDs []uint32 // sessions this collection serves
	Started sim.Time // when the CPU began the register sync
	Arrived sim.Time // when the analyzer received it
	Bytes   int      // zero-filtered wire bytes
	Packets int      // MTU-batched packet count
}

// Faults degrades the collection path. The chaos engine implements it:
// report batches lost between the switch CPU and the analyzer, and
// controller lag stretching delivery. Decisions must be deterministic
// given the engine's seed.
type Faults interface {
	// DropDelivery reports whether this switch's report batch is lost in
	// transit. The register sync itself happened: the switch CPU still
	// dedups re-polls for the interval, which is exactly the failure mode
	// worth testing.
	DropDelivery(sw topo.NodeID) bool
	// CollectLatency returns extra controller lag added to this delivery.
	CollectLatency(sw topo.NodeID) sim.Time
}

// Stats aggregates collection overhead for the efficiency experiments.
type Stats struct {
	Collections     int
	DedupHits       int
	ReportBytes     uint64
	ReportPackets   uint64
	FullDumpBytes   uint64 // what full (unfiltered) dumps would have cost
	FullDumpPackets uint64 // what PHV-limited data-plane export would cost
	FlowRecords     uint64
	SwitchesTouched map[topo.NodeID]bool
	// DroppedDeliveries counts report batches lost to fault injection;
	// Collections - DroppedDeliveries batches reached OnDelivery.
	DroppedDeliveries int
	// LagSum is the total fault-injected controller lag across deliveries.
	LagSum sim.Time
}

// Delivered returns the number of report batches that actually reached
// the analyzer.
func (s Stats) Delivered() int { return s.Collections - s.DroppedDeliveries }

// Collector is the analyzer-side collection service. One instance serves
// the whole fabric (per-switch CPUs are modelled by the latency).
type Collector struct {
	Eng *sim.Engine
	Cfg Config

	// OnDelivery receives each report at its (latency-delayed) arrival.
	OnDelivery func(Delivery)

	// Faults, when set, injects delivery drops and controller lag.
	Faults Faults

	lastCollect map[topo.NodeID]sim.Time
	pending     map[topo.NodeID]*Delivery

	stats Stats
}

// NewCollector builds a collector.
func NewCollector(eng *sim.Engine, cfg Config) *Collector {
	return &Collector{
		Eng:         eng,
		Cfg:         cfg,
		lastCollect: make(map[topo.NodeID]sim.Time),
		pending:     make(map[topo.NodeID]*Delivery),
		stats: Stats{
			SwitchesTouched: make(map[topo.NodeID]bool),
		},
	}
}

// Stats returns the accumulated overhead counters.
func (c *Collector) Stats() Stats { return c.stats }

// MirrorPolling implements polling.Mirror: the collection trigger.
func (c *Collector) MirrorPolling(sw topo.NodeID, tel *telemetry.State, hdr packet.PollingHeader, inPort int) {
	now := c.Eng.Now()
	if last, ok := c.lastCollect[sw]; ok && now-last < c.Cfg.Interval {
		// Within the dedup interval: attach this diagnosis to the
		// in-flight (or just-delivered) collection instead of re-reading.
		c.stats.DedupHits++
		if d, ok := c.pending[sw]; ok {
			d.DiagIDs = appendUniqueDiag(d.DiagIDs, hdr.DiagID)
		}
		return
	}
	c.lastCollect[sw] = now

	// Registers are captured at sync start.
	rep := tel.Snapshot(c.Cfg.EpochsToCollect)
	bytes := rep.WireSize()
	pkts := (bytes + c.Cfg.ReportMTU - 1) / c.Cfg.ReportMTU

	c.stats.Collections++
	c.stats.ReportBytes += uint64(bytes)
	c.stats.ReportPackets += uint64(pkts)
	full := rep.FullDumpSize()
	c.stats.FullDumpBytes += uint64(full)
	c.stats.FullDumpPackets += uint64((full + c.Cfg.PHVExportBytes - 1) / c.Cfg.PHVExportBytes)
	c.stats.FlowRecords += uint64(rep.FlowCount())
	c.stats.SwitchesTouched[sw] = true

	d := &Delivery{
		Report:  rep,
		DiagIDs: []uint32{hdr.DiagID},
		Started: now,
		Bytes:   bytes,
		Packets: pkts,
	}
	c.pending[sw] = d
	latency := c.Cfg.BaseLatency + sim.Time(len(rep.Epochs))*c.Cfg.PerEpochLatency
	dropped := false
	if c.Faults != nil {
		if lag := c.Faults.CollectLatency(sw); lag > 0 {
			latency += lag
			c.stats.LagSum += lag
		}
		if c.Faults.DropDelivery(sw) {
			// The batch is lost between CPU and analyzer. lastCollect
			// stays set: the switch believes it reported, so re-polls
			// inside the interval are still deduped away.
			dropped = true
			c.stats.DroppedDeliveries++
		}
	}
	c.Eng.After(latency, func() {
		d.Arrived = c.Eng.Now()
		if c.pending[sw] == d {
			delete(c.pending, sw)
		}
		if !dropped && c.OnDelivery != nil {
			c.OnDelivery(*d)
		}
	})
}

func appendUniqueDiag(ids []uint32, id uint32) []uint32 {
	for _, v := range ids {
		if v == id {
			return ids
		}
	}
	return append(ids, id)
}

package experiments

import (
	"flag"
	"testing"

	"hawkeye/internal/diagnosis"
	"hawkeye/internal/workload"
)

// hostSeeds sizes TestHostAttributionProperty: each seed is one trial
// whose scenario and telemetry arm derive from the seed. The default
// keeps plain `go test` fast; the host-smoke CI job runs the full
// 200-seed sweep under -race.
var hostSeeds = flag.Int("host.seeds", 12, "seed count for the host attribution property test")

// TestHostEvalAccuracy runs the mixed host/network evaluation with host
// agents enabled and checks the headline claim: host-caused anomalies
// are attributed to the right host with the right pathology in >=90% of
// trials.
func TestHostEvalAccuracy(t *testing.T) {
	eval, err := RunHostEval(5)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", eval.Table())
	if acc := eval.AttributionAccuracy(); acc < 0.9 {
		t.Errorf("host attribution accuracy %.2f < 0.90", acc)
	}
	for _, scen := range eval.Scenarios {
		if scen == workload.NameNormal {
			continue
		}
		if pr := eval.PR[scen]; pr.Recall() < 0.8 {
			t.Errorf("%s: recall %.2f < 0.80", scen, pr.Recall())
		}
	}
}

// TestMixedRobustnessConfidence sweeps host-agent snapshot loss 0 -> 50%
// over the mixed workload set and checks the degraded-mode invariants:
// average confidence never rises with the loss rate, degrades across the
// sweep, and no wrong diagnosis is graded high-confidence at any point.
func TestMixedRobustnessConfidence(t *testing.T) {
	curve, err := RunMixedRobustnessCurve(1, []float64{0, 0.25, 0.5}, 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", curve.Table())
	for _, p := range curve.Points {
		if p.HighConfWrong != 0 {
			t.Errorf("rate %.2f: %d wrong diagnoses graded high-confidence", p.FaultRate, p.HighConfWrong)
		}
	}
	for i := 1; i < len(curve.Points); i++ {
		prev, cur := curve.Points[i-1], curve.Points[i]
		// Small tolerance: the assessment is multiplicative over several
		// evidence channels and one channel can dominate a single trial.
		if cur.AvgConfidence > prev.AvgConfidence+0.05 {
			t.Errorf("confidence rose with host-telemetry loss: %.2f@%.2f -> %.2f@%.2f",
				prev.AvgConfidence, prev.FaultRate, cur.AvgConfidence, cur.FaultRate)
		}
	}
	first, last := curve.Points[0], curve.Points[len(curve.Points)-1]
	if last.AvgConfidence >= first.AvgConfidence {
		t.Errorf("confidence did not degrade across the sweep: %.2f -> %.2f",
			first.AvgConfidence, last.AvgConfidence)
	}
}

// TestHostAttributionProperty is the seeded degraded-mode property over
// the three host pathologies. Per seed, one trial: the scenario rotates
// through the pathologies and the seed's parity picks the telemetry arm.
//
//   - Host agents ON: the primary cause must be host-side, anchored at
//     the sick host.
//   - Host agents OFF: whatever the verdict, it must never be a
//     high-confidence network cause — the missing host evidence has to
//     show up as degraded confidence, not as a confident misattribution.
func TestHostAttributionProperty(t *testing.T) {
	scens := workload.HostScenarios()
	for seed := uint64(1); seed <= uint64(*hostSeeds); seed++ {
		scen := scens[int(seed)%len(scens)]
		cfg := DefaultTrialConfig(scen, seed)
		degraded := seed%2 == 1
		cfg.DisableHostAgents = degraded
		tr, err := RunTrial(cfg)
		if err != nil {
			t.Fatalf("%s seed=%d: %v", scen, seed, err)
		}
		if tr.Score.Result == nil {
			if !degraded {
				t.Errorf("%s seed=%d: no diagnosis with host agents on", scen, seed)
			}
			continue
		}
		d := tr.Score.Result.Diagnosis
		cause := d.PrimaryCause()
		if degraded {
			if d.Confidence == diagnosis.ConfHigh && !cause.Kind.IsHostSide() {
				t.Errorf("%s seed=%d: high-confidence network verdict (%v at %v) without host telemetry",
					scen, seed, cause.Kind, cause.Port)
			}
			continue
		}
		if !cause.Kind.IsHostSide() {
			t.Errorf("%s seed=%d: primary cause %v is not host-side despite host telemetry",
				scen, seed, cause.Kind)
			continue
		}
		if cause.Host != tr.GT.Injector {
			t.Errorf("%s seed=%d: attributed to host %v, want %v",
				scen, seed, cause.Host, tr.GT.Injector)
		}
	}
}

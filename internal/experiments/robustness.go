package experiments

import (
	"hawkeye/internal/chaos"
	"hawkeye/internal/diagnosis"
	"hawkeye/internal/metrics"
)

// RobustnessSchedule builds the fault schedule for one point of a
// robustness sweep: telemetry-epoch loss at the given rate, with the
// collection path degraded at half of it (reports and epochs fail
// together in practice — a flaky controller loses both).
func RobustnessSchedule(rate float64) *chaos.Schedule {
	return &chaos.Schedule{
		TelemetryEpochLoss: rate,
		CollectDrop:        rate / 2,
	}
}

// RunRobustnessCurve sweeps fault rates over a scenario and measures how
// the diagnosis degrades: precision/recall per rate, the average
// confidence the diagnoses claimed, and — the invariant that matters —
// how often a wrong diagnosis was graded high-confidence.
func RunRobustnessCurve(scenario string, seed uint64, rates []float64, trials int) (*metrics.RobustnessCurve, error) {
	return NewRunner(0).RunRobustnessCurve(scenario, seed, rates, trials)
}

// robustnessSample is one trial's contribution to a curve point.
type robustnessSample struct {
	score         metrics.TrialScore
	confidence    float64
	hasResult     bool
	highConfWrong bool
}

// RunRobustnessCurve runs the sweep on this runner's pool. Every
// (rate, trial) point is an independent trial — the chaos seed derives
// from the trial seed, not from sweep position — so the folded curve is
// identical at any worker count.
func (r *Runner) RunRobustnessCurve(scenario string, seed uint64, rates []float64, trials int) (*metrics.RobustnessCurve, error) {
	n := len(rates) * trials
	samples, err := mapOrdered(r, n, func(i int) (robustnessSample, error) {
		rate := rates[i/trials]
		cfg := DefaultTrialConfig(scenario, seed+uint64(i%trials))
		cfg.Chaos = RobustnessSchedule(rate)
		tr, err := RunTrial(cfg)
		if err != nil {
			return robustnessSample{}, err
		}
		s := robustnessSample{score: tr.Score}
		if tr.Score.Result != nil {
			d := tr.Score.Result.Diagnosis
			s.hasResult = true
			s.confidence = d.ConfidenceScore
			s.highConfWrong = !tr.Score.Correct && d.Confidence == diagnosis.ConfHigh
		}
		return s, nil
	})
	if err != nil {
		return nil, err
	}
	curve := &metrics.RobustnessCurve{Name: scenario}
	for ri, rate := range rates {
		pt := metrics.RobustnessPoint{FaultRate: rate}
		confSum, confN := 0.0, 0
		for t := 0; t < trials; t++ {
			s := samples[ri*trials+t]
			pt.PR.Add(s.score)
			pt.Trials++
			if s.hasResult {
				confSum += s.confidence
				confN++
				if s.highConfWrong {
					pt.HighConfWrong++
				}
			}
		}
		if confN > 0 {
			pt.AvgConfidence = confSum / float64(confN)
		}
		curve.Points = append(curve.Points, pt)
	}
	return curve, nil
}

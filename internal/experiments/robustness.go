package experiments

import (
	"hawkeye/internal/chaos"
	"hawkeye/internal/diagnosis"
	"hawkeye/internal/metrics"
)

// RobustnessSchedule builds the fault schedule for one point of a
// robustness sweep: telemetry-epoch loss at the given rate, with the
// collection path degraded at half of it (reports and epochs fail
// together in practice — a flaky controller loses both).
func RobustnessSchedule(rate float64) *chaos.Schedule {
	return &chaos.Schedule{
		TelemetryEpochLoss: rate,
		CollectDrop:        rate / 2,
	}
}

// RunRobustnessCurve sweeps fault rates over a scenario and measures how
// the diagnosis degrades: precision/recall per rate, the average
// confidence the diagnoses claimed, and — the invariant that matters —
// how often a wrong diagnosis was graded high-confidence.
func RunRobustnessCurve(scenario string, seed uint64, rates []float64, trials int) (*metrics.RobustnessCurve, error) {
	curve := &metrics.RobustnessCurve{Name: scenario}
	for _, rate := range rates {
		pt := metrics.RobustnessPoint{FaultRate: rate}
		confSum, confN := 0.0, 0
		for i := 0; i < trials; i++ {
			cfg := DefaultTrialConfig(scenario, seed+uint64(i))
			cfg.Chaos = RobustnessSchedule(rate)
			tr, err := RunTrial(cfg)
			if err != nil {
				return nil, err
			}
			pt.PR.Add(tr.Score)
			pt.Trials++
			if tr.Score.Result != nil {
				d := tr.Score.Result.Diagnosis
				confSum += d.ConfidenceScore
				confN++
				if !tr.Score.Correct && d.Confidence == diagnosis.ConfHigh {
					pt.HighConfWrong++
				}
			}
		}
		if confN > 0 {
			pt.AvgConfidence = confSum / float64(confN)
		}
		curve.Points = append(curve.Points, pt)
	}
	return curve, nil
}

package experiments

import (
	"fmt"
	"testing"

	"hawkeye/internal/baselines"
	"hawkeye/internal/diagnosis"
	"hawkeye/internal/packet"
	"hawkeye/internal/workload"
)

// TestPartialDeploymentTradeoff checks §5's deployment discussion: with
// flow telemetry restricted to edge (ToR) switches, root causes at edge
// ports stay fully diagnosable, while the in-loop deadlock — whose
// initiating burst is only visible in aggregation/core flow tables —
// loses its root-cause evidence.
func TestPartialDeploymentTradeoff(t *testing.T) {
	run := func(scen string, partial bool) float64 {
		tc := DefaultTrialConfig(scen, 1)
		tc.EdgeFlowTelemetryOnly = partial
		tr, err := RunTrial(tc)
		if err != nil {
			t.Fatalf("%s partial=%v: %v", scen, partial, err)
		}
		if !tr.Score.Detected {
			t.Fatalf("%s partial=%v: not detected", scen, partial)
		}
		if tr.Score.Correct {
			return 1
		}
		return 0
	}

	// Edge-rooted case: unaffected by the partial deployment.
	if got := run(workload.NameIncast, true); got != 1 {
		t.Errorf("incast with edges-only flow telemetry: precision %.0f, want 1", got)
	}
	// Fabric-rooted case: correct with full deployment, degraded without
	// aggregation/core flow tables.
	if got := run(workload.NameInLoop, false); got != 1 {
		t.Errorf("in-loop deadlock with full deployment: precision %.0f, want 1", got)
	}
	if got := run(workload.NameInLoop, true); got != 0 {
		t.Errorf("in-loop deadlock with edges-only flow telemetry: precision %.0f, want 0 (root-cause evidence lives in the fabric)", got)
	}
}

// TestTestbedLeafSpine validates Hawkeye end-to-end on the leaf-spine
// testbed topology (§4.1): the system must not be specialized to the
// fat-tree's structure.
func TestTestbedLeafSpine(t *testing.T) {
	for _, scen := range []string{"incast", "storm"} {
		score, err := RunTestbed(scen, 1)
		if err != nil {
			t.Fatalf("%s: %v", scen, err)
		}
		if !score.Correct {
			t.Errorf("testbed %s on leaf-spine: %s", scen, score.Reason)
		}
	}
}

// TestOverheadModelMatchesMechanism cross-checks Fig 9's cost models
// against the mechanistic baseline implementations: the in-band bytes
// SpiderMon's instruments actually added, and the postcard bytes
// NetSight's store actually ingested, must agree with the
// packets-x-hops models within the slack of the AvgHops estimate.
func TestOverheadModelMatchesMechanism(t *testing.T) {
	tc := DefaultTrialConfig(workload.NameIncast, 1)
	tc.MeasureBaselines = true
	tr, err := RunTrial(tc)
	if err != nil {
		t.Fatal(err)
	}
	within := func(measured, modelled uint64) bool {
		if measured == 0 || modelled == 0 {
			return false
		}
		r := float64(measured) / float64(modelled)
		return r > 0.3 && r < 3
	}
	sm := tr.BaselineOverhead(baselines.KindSpiderMon).MonitorWireBytes
	if !within(tr.MeasuredSpiderMonBytes, sm) {
		t.Errorf("SpiderMon wire bytes: measured %d vs model %d", tr.MeasuredSpiderMonBytes, sm)
	}
	ns := tr.BaselineOverhead(baselines.KindNetSight).MonitorWireBytes
	if !within(tr.MeasuredNetSightBytes, ns) {
		t.Errorf("NetSight wire bytes: measured %d vs model %d", tr.MeasuredNetSightBytes, ns)
	}
}

// TestPollingLossDegradation is the failure-injection sweep: with a lossy
// control plane the diagnosis must degrade gracefully — never crash, and
// detection itself (which rides the host agent, not polling) must keep
// firing even when every polling packet is lost.
func TestPollingLossDegradation(t *testing.T) {
	for _, loss := range []float64{0.3, 1.0} {
		tc := DefaultTrialConfig(workload.NameIncast, 1)
		tc.PollLoss = loss
		tr, err := RunTrial(tc)
		if err != nil {
			t.Fatalf("loss=%.1f: %v", loss, err)
		}
		if !tr.Score.Detected && loss < 1 {
			t.Errorf("loss=%.1f: no diagnosis at partial loss", loss)
		}
		if len(tr.Sys.Triggers()) == 0 {
			t.Errorf("loss=%.1f: host agents stopped detecting", loss)
		}
		var lost uint64
		for _, h := range tr.Sys.Handlers {
			lost += h.Lost
		}
		if lost == 0 {
			t.Errorf("loss=%.1f: no injected losses recorded", loss)
		}
		if loss == 1.0 {
			// Total polling loss: no causality tracing, no collections via
			// polling; the scored session must simply be empty/incorrect,
			// not a panic.
			if tr.Score.Correct {
				t.Error("loss=1.0: diagnosis claimed success with zero telemetry")
			}
		}
	}
}

// TestECMPImbalanceDiagnosed covers §2's load-imbalance NPA: hash
// polarization overloads one uplink with healthy routing; Hawkeye must
// classify the spreading stall as PFC contention rooted at the
// imbalanced uplink's switch with the polarized elephants as culprits.
func TestECMPImbalanceDiagnosed(t *testing.T) {
	score, err := RunECMPImbalance(1)
	if err != nil {
		t.Fatal(err)
	}
	if !score.Detected {
		t.Fatal("imbalance never detected")
	}
	if !score.Correct {
		t.Fatalf("imbalance misdiagnosed: %s", score.Reason)
	}
	// §3.5.2 cause refinement: the elephants had an equal-cost sibling
	// uplink and polarized anyway.
	if score.Result.Detail != diagnosis.DetailECMPImbalance {
		t.Fatalf("cause detail = %v, want ecmp-imbalance", score.Result.Detail)
	}
}

// TestCauseDetailRefinement pins §3.5.2's refinement on the stock
// scenarios. Physics note: the PFC incast's bursts get throttled by the
// very backpressure they cause, smearing them across the whole telemetry
// window — by diagnosis time the congested host port sees sustained
// overload, which is what the refinement reports. The short-lived burst
// shape survives only where PFC never engages: the normal-contention
// case refines to micro-burst.
func TestCauseDetailRefinement(t *testing.T) {
	incast, err := RunTrial(DefaultTrialConfig(workload.NameIncast, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !incast.Score.Correct {
		t.Fatalf("incast misdiagnosed: %s", incast.Score.Reason)
	}
	if incast.Score.Result.Detail != diagnosis.DetailOverload {
		t.Fatalf("incast cause detail = %v, want overload (PFC-stretched bursts)", incast.Score.Result.Detail)
	}

	normal, err := RunTrial(DefaultTrialConfig(workload.NameNormal, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !normal.Score.Correct {
		t.Fatalf("normal contention misdiagnosed: %s", normal.Score.Reason)
	}
	if normal.Score.Result.Detail != diagnosis.DetailMicroBurst {
		t.Fatalf("normal-contention cause detail = %v, want micro-burst", normal.Score.Result.Detail)
	}
}

// TestTrialDeterminism pins the simulator's core reproducibility claim:
// identical configs produce byte-identical outcomes — trigger sequences,
// diagnosis types and collected-report sets. (Map-iteration leaks into
// packet interleaving were real bugs during development; this guards
// against their return.)
func TestTrialDeterminism(t *testing.T) {
	run := func() ([]string, error) {
		tr, err := RunTrial(DefaultTrialConfig(workload.NameStorm, 2))
		if err != nil {
			return nil, err
		}
		var sig []string
		for _, r := range tr.Results {
			sig = append(sig, fmt.Sprintf("%v|%v|%s|%v|%d",
				r.Trigger.At, r.Trigger.Victim, r.Trigger.Reason, r.Diagnosis.Type, len(r.Switches)))
		}
		return sig, nil
	}
	a, err := run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := run()
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("result counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("result %d differs:\n  %s\n  %s", i, a[i], b[i])
		}
	}
	if len(a) == 0 {
		t.Fatal("no results to compare")
	}
}

// TestDiagnosisSurvivesWatchdogMitigation runs mitigation and diagnosis
// together (§2.2: operators deploy both). The watchdog's 1 ms detection
// window is slower than the complaint path, so the in-loop deadlock is
// diagnosed from pre-mitigation telemetry even though the watchdog later
// flushes the loop — and the watchdog does fire, proving both systems
// acted on the same event.
func TestDiagnosisSurvivesWatchdogMitigation(t *testing.T) {
	tc := DefaultTrialConfig(workload.NameInLoop, 1)
	tc.EnableWatchdog = true
	tr, err := RunTrial(tc)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Score.Correct {
		t.Fatalf("deadlock misdiagnosed with mitigation active: %s", tr.Score.Reason)
	}
	storms := 0
	for _, w := range tr.Watchdogs {
		storms += w.Stats().Storms
	}
	if storms == 0 {
		t.Fatal("watchdog never fired on the deadlock")
	}
	// Mitigation actually restored the fabric: the cycle's pauses cleared
	// by the horizon.
	stuck := 0
	for _, sw := range tr.Cl.Switches {
		for p := 0; p < sw.NumPorts(); p++ {
			if !tr.Cl.Topo.IsHostFacing(sw.ID, p) && sw.PauseAsserted(p, packet.ClassLossless) {
				stuck++
			}
		}
	}
	if stuck > 0 {
		t.Fatalf("%d fabric pauses still asserted at the horizon despite mitigation", stuck)
	}
}

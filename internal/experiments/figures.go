package experiments

import (
	"fmt"

	"hawkeye/internal/baselines"
	"hawkeye/internal/metrics"
	"hawkeye/internal/sim"
	"hawkeye/internal/topo"
	"hawkeye/internal/workload"
)

// AnomalyScenarios are the four PFC anomaly cases of Fig. 7.
func AnomalyScenarios() []string {
	return []string{
		workload.NameIncast,
		workload.NameStorm,
		workload.NameInLoop,
		workload.NameOutLoopInject,
	}
}

// EvalScenarios adds normal contention (Figs. 8-11).
func EvalScenarios() []string {
	return append(AnomalyScenarios(), workload.NameNormal)
}

// Fig7Config controls the epoch-size / threshold sweep.
type Fig7Config struct {
	EpochBits []uint
	Factors   []float64
	Trials    int
}

// DefaultFig7 covers the paper's ranges: epochs ~131 µs – ~2.1 ms
// (100 µs – 2 ms in the paper), thresholds 200%–500% RTT.
func DefaultFig7() Fig7Config {
	return Fig7Config{
		EpochBits: []uint{17, 18, 19, 20, 21},
		Factors:   []float64{2, 3, 4, 5},
		Trials:    5,
	}
}

// QuickFig7 is a reduced sweep for smoke runs.
func QuickFig7() Fig7Config {
	return Fig7Config{EpochBits: []uint{17, 19, 21}, Factors: []float64{2, 4}, Trials: 2}
}

// Fig7Cell is one sweep point.
type Fig7Cell struct {
	Scenario  string
	EpochBits uint
	Factor    float64
	PR        metrics.PR
}

// Fig7 runs the precision/recall sweep over epoch size and detection
// threshold for each anomaly case, fanning trials out across the
// default worker pool.
func Fig7(cfg Fig7Config) ([]Fig7Cell, *metrics.Table, error) {
	return NewRunner(0).Fig7(cfg)
}

// Fig7 runs the sweep on this runner's pool. Each (scenario, epoch,
// threshold, seed) point is one independent trial; scores are folded
// back per cell in seed order, so any worker count renders the same
// table.
func (r *Runner) Fig7(cfg Fig7Config) ([]Fig7Cell, *metrics.Table, error) {
	var cfgs []TrialConfig
	for _, scen := range AnomalyScenarios() {
		for _, bits := range cfg.EpochBits {
			for _, factor := range cfg.Factors {
				for seed := uint64(1); seed <= uint64(cfg.Trials); seed++ {
					tc := DefaultTrialConfig(scen, seed)
					tc.EpochBits = bits
					tc.RTTFactor = factor
					cfgs = append(cfgs, tc)
				}
			}
		}
	}
	// The sweep only needs the scores; returning them (not the trials)
	// lets each finished cluster be reclaimed while the sweep runs.
	scores, err := mapOrdered(r, len(cfgs), func(i int) (metrics.TrialScore, error) {
		tr, err := RunTrial(cfgs[i])
		if err != nil {
			return metrics.TrialScore{}, err
		}
		return tr.Score, nil
	})
	if err != nil {
		return nil, nil, err
	}
	var cells []Fig7Cell
	table := &metrics.Table{
		Title:   "Fig 7: precision & recall vs epoch size and detection threshold",
		Headers: []string{"scenario", "epoch", "threshold", "precision", "recall"},
	}
	next := 0
	for _, scen := range AnomalyScenarios() {
		for _, bits := range cfg.EpochBits {
			for _, factor := range cfg.Factors {
				var pr metrics.PR
				for t := 0; t < cfg.Trials; t++ {
					pr.Add(scores[next])
					next++
				}
				cells = append(cells, Fig7Cell{scen, bits, factor, pr})
				table.AddRow(scen,
					(sim.Time(1) << bits).String(),
					fmt.Sprintf("%.0f%%", factor*100),
					fmt.Sprintf("%.2f", pr.Precision()),
					fmt.Sprintf("%.2f", pr.Recall()))
			}
		}
	}
	return cells, table, nil
}

// EvalRun is one full pass over the evaluation scenarios; Figs. 8, 9,
// 10, 11 and 14 all read from it.
type EvalRun struct {
	Trials map[string][]*Trial
}

// RunEval executes `trials` traces per scenario at the default operating
// point, fanned out across the default worker pool.
func RunEval(trials int) (*EvalRun, error) {
	return NewRunner(0).RunEval(trials)
}

// RunEval executes the evaluation pass on this runner's pool. Results
// land in the map in scenario/seed order whatever the worker count, so
// every downstream figure is identical to the serial pass.
func (r *Runner) RunEval(trials int) (*EvalRun, error) {
	var cfgs []TrialConfig
	for _, scen := range EvalScenarios() {
		for seed := uint64(1); seed <= uint64(trials); seed++ {
			cfgs = append(cfgs, DefaultTrialConfig(scen, seed))
		}
	}
	trs, err := r.runConfigs(cfgs)
	if err != nil {
		return nil, err
	}
	run := &EvalRun{Trials: make(map[string][]*Trial, len(EvalScenarios()))}
	for i, tr := range trs {
		run.Trials[cfgs[i].Scenario] = append(run.Trials[cfgs[i].Scenario], tr)
	}
	return run, nil
}

// Fig8 compares diagnosis accuracy across systems (upper bound with
// optimal parameters, as §4.2 frames it).
func (run *EvalRun) Fig8() *metrics.Table {
	table := &metrics.Table{
		Title:   "Fig 8: precision & recall vs baselines",
		Headers: []string{"scenario", "method", "precision", "recall"},
	}
	for _, scen := range EvalScenarios() {
		for _, kind := range baselines.All() {
			var pr metrics.PR
			for _, tr := range run.Trials[scen] {
				pr.Add(tr.BaselineScore(kind))
			}
			table.AddRow(scen, kind.String(),
				fmt.Sprintf("%.2f", pr.Precision()),
				fmt.Sprintf("%.2f", pr.Recall()))
		}
	}
	return table
}

// Fig9 reports processing overhead (telemetry collected per diagnosis)
// and monitoring bandwidth overhead.
func (run *EvalRun) Fig9() *metrics.Table {
	table := &metrics.Table{
		Title:   "Fig 9: overhead vs baselines (mean per diagnosis)",
		Headers: []string{"method", "collected-KB", "monitor-wire-KB", "switches"},
	}
	for _, kind := range baselines.All() {
		var coll, wire, touched []float64
		for _, scen := range EvalScenarios() {
			for _, tr := range run.Trials[scen] {
				if tr.Score.Result == nil {
					continue
				}
				o := tr.BaselineOverhead(kind)
				coll = append(coll, float64(o.CollectedBytes)/1024)
				wire = append(wire, float64(o.MonitorWireBytes)/1024)
				touched = append(touched, float64(o.SwitchesTouched))
			}
		}
		table.AddRow(kind.String(),
			fmt.Sprintf("%.1f", metrics.Mean(coll)),
			fmt.Sprintf("%.1f", metrics.Mean(wire)),
			fmt.Sprintf("%.1f", metrics.Mean(touched)))
	}
	return table
}

// Fig10 compares the telemetry-granularity ablations.
func (run *EvalRun) Fig10() *metrics.Table {
	table := &metrics.Table{
		Title:   "Fig 10: diagnosis effectiveness of telemetry granularities",
		Headers: []string{"scenario", "telemetry", "precision", "recall"},
	}
	for _, scen := range EvalScenarios() {
		for _, kind := range baselines.Granularities() {
			var pr metrics.PR
			for _, tr := range run.Trials[scen] {
				pr.Add(tr.BaselineScore(kind))
			}
			table.AddRow(scen, kind.String(),
				fmt.Sprintf("%.2f", pr.Precision()),
				fmt.Sprintf("%.2f", pr.Recall()))
		}
	}
	return table
}

// Fig11 reports collected-switch counts and causal-coverage ratios.
func (run *EvalRun) Fig11() *metrics.Table {
	table := &metrics.Table{
		Title:   "Fig 11: collected switches and causal coverage",
		Headers: []string{"scenario", "method", "switches", "coverage"},
	}
	kinds := []baselines.Kind{baselines.KindHawkeye, baselines.KindFullPolling, baselines.KindVictimOnly}
	for _, scen := range EvalScenarios() {
		for _, kind := range kinds {
			var count, cover []float64
			for _, tr := range run.Trials[scen] {
				if tr.Score.Result == nil {
					continue
				}
				var collected map[int]bool
				switch kind {
				case baselines.KindHawkeye:
					collected = toSet(tr.Score.Result.Switches)
					// The collection-scale metric counts only switches
					// polled for THIS diagnosis.
					count = append(count, float64(tr.Score.Result.PolledSwitches))
				case baselines.KindFullPolling:
					collected = make(map[int]bool)
					for id := range tr.View.AllSwitches {
						collected[int(id)] = true
					}
				case baselines.KindVictimOnly:
					collected = make(map[int]bool)
					for _, id := range tr.View.VictimPath {
						collected[int(id)] = true
					}
				}
				if kind != baselines.KindHawkeye {
					count = append(count, float64(len(collected)))
				}
				causal, hit := 0, 0
				for id := range tr.GT.CausalSwitches {
					causal++
					if collected[int(id)] {
						hit++
					}
				}
				if causal > 0 {
					cover = append(cover, float64(hit)/float64(causal))
				}
			}
			table.AddRow(scen, kind.String(),
				fmt.Sprintf("%.1f", metrics.Mean(count)),
				fmt.Sprintf("%.2f", metrics.Mean(cover)))
		}
	}
	return table
}

// Fig14 reports the CPU poller's zero-filtering and MTU-batching gains.
func (run *EvalRun) Fig14() *metrics.Table {
	table := &metrics.Table{
		Title:   "Fig 14: controller-assisted collection efficiency",
		Headers: []string{"scenario", "size-reduction", "packet-reduction"},
	}
	for _, scen := range EvalScenarios() {
		var sizeRed, pktRed []float64
		for _, tr := range run.Trials[scen] {
			st := tr.Sys.Collector.Stats()
			if st.FullDumpBytes == 0 {
				continue
			}
			sizeRed = append(sizeRed, 1-metrics.Ratio(float64(st.ReportBytes), float64(st.FullDumpBytes)))
			pktRed = append(pktRed, 1-metrics.Ratio(float64(st.ReportPackets), float64(st.FullDumpPackets)))
		}
		table.AddRow(scen,
			fmt.Sprintf("%.1f%%", metrics.Mean(sizeRed)*100),
			fmt.Sprintf("%.1f%%", metrics.Mean(pktRed)*100))
	}
	return table
}

func toSet(ids []topo.NodeID) map[int]bool {
	out := make(map[int]bool, len(ids))
	for _, id := range ids {
		out[int(id)] = true
	}
	return out
}

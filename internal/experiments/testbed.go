package experiments

import (
	"fmt"

	"hawkeye/internal/cluster"
	"hawkeye/internal/core"
	"hawkeye/internal/diagnosis"
	"hawkeye/internal/metrics"
	"hawkeye/internal/packet"
	"hawkeye/internal/sim"
	"hawkeye/internal/topo"
	"hawkeye/internal/workload"
)

// The paper validates Hawkeye on a hardware testbed (§4.1) shaped like a
// small leaf-spine, separate from the NS-3 fat-tree. This file mirrors
// that: the incast and storm cases on a 2-spine x 2-leaf Clos, proving
// the system is not specialized to the fat-tree's symmetry.

// testbedCluster builds the leaf-spine and installs Hawkeye on it.
func testbedCluster(seed uint64) (*cluster.Cluster, *core.System, *topo.LeafSpine, error) {
	ls, err := topo.NewLeafSpine(2, 2, 4, topo.DefaultBandwidth, topo.DefaultDelay)
	if err != nil {
		return nil, nil, nil, err
	}
	routing := topo.ComputeRouting(ls.Topology)
	ccfg := cluster.DefaultConfig(ls.Topology)
	ccfg.Seed = seed
	ccfg.Host.Agent.RTTFactor = 2
	cl := cluster.New(ls.Topology, routing, ccfg)
	score := core.DefaultConfig()
	score.Collect.BaseLatency = 200 * sim.Microsecond
	score.Collect.PerEpochLatency = 50 * sim.Microsecond
	sys, err := core.Install(cl, score)
	if err != nil {
		return nil, nil, nil, err
	}
	return cl, sys, ls, err
}

// buildTestbedIncast reproduces the incast-backpressure case on the
// leaf-spine: local bursts congest one host port on leaf 0; victims from
// leaf 1 share the paused uplinks without touching the congested port.
func buildTestbedIncast(cl *cluster.Cluster, ls *topo.LeafSpine, epoch sim.Time) *workload.GroundTruth {
	p := workload.DefaultParams(epoch)
	target := ls.LeafHosts[0][0]
	sibling := ls.LeafHosts[0][1]
	gt := &workload.GroundTruth{
		Scenario: "testbed-incast",
		Type:     diagnosis.TypePFCContention,
		Culprits: make(map[packet.FiveTuple]bool),
		// The incast converges at leaf 0's target port; the funnel can move
		// the recorded initial point one hop up to a spine.
		InitialSwitches: map[topo.NodeID]bool{ls.Leaves[0]: true, ls.Spines[0]: true, ls.Spines[1]: true},
		Victims:         make(map[packet.FiveTuple]bool),
		AnomalyAt:       p.AnomalyStart(),
	}
	warm := gt.AnomalyAt - 300*sim.Microsecond
	victim := cl.StartFlowRate(ls.LeafHosts[1][0], sibling, 20_000_000, warm, 20e9)
	gt.Victims[victim.Tuple] = true
	spreader := cl.StartFlowRate(ls.LeafHosts[1][1], target, 20_000_000, warm, 20e9)
	gt.Victims[spreader.Tuple] = true
	// Bursts from the REMOTE leaf (plus the local sibling): cross-spine
	// traffic is what pushes the backpressure into the fabric — leaf 0's
	// spine ingresses cross Xoff, pause the spines, and the spines pause
	// leaf 1, stalling the victims. Sized to hold the incast alive past
	// the detection-dedup window (~500 µs) so a post-maturity complaint
	// exists to score.
	for _, src := range []topo.NodeID{sibling, ls.LeafHosts[1][2], ls.LeafHosts[1][3]} {
		b := cl.StartFlow(src, target, 8*p.BurstBytes, gt.AnomalyAt)
		gt.Culprits[b.Tuple] = true
	}
	return gt
}

// buildTestbedStorm reproduces the PFC-storm case on the leaf-spine: a
// rogue host on leaf 0 injects continuous PFC while senders on leaf 1
// run well below capacity.
func buildTestbedStorm(cl *cluster.Cluster, ls *topo.LeafSpine, epoch sim.Time) *workload.GroundTruth {
	p := workload.DefaultParams(epoch)
	rogue := ls.LeafHosts[0][0]
	gt := &workload.GroundTruth{
		Scenario:        "testbed-storm",
		Type:            diagnosis.TypePFCStorm,
		Injector:        rogue,
		InitialSwitches: map[topo.NodeID]bool{ls.Leaves[0]: true},
		Victims:         make(map[packet.FiveTuple]bool),
		AnomalyAt:       p.AnomalyStart(),
	}
	cl.Hosts[rogue].InjectPFC(gt.AnomalyAt, gt.AnomalyAt+p.InjectFor, packet.MaxPauseQuanta)
	for _, src := range []topo.NodeID{ls.LeafHosts[1][0], ls.LeafHosts[1][1]} {
		f := cl.StartFlowRate(src, rogue, 40_000_000, gt.AnomalyAt-300*sim.Microsecond, 25e9)
		gt.Victims[f.Tuple] = true
	}
	return gt
}

// RunTestbed runs one testbed case ("incast" or "storm") and scores it.
func RunTestbed(scenario string, seed uint64) (metrics.TrialScore, error) {
	cl, sys, ls, err := testbedCluster(seed)
	if err != nil {
		return metrics.TrialScore{}, err
	}
	epoch := sys.Cfg.Telemetry.EpochSize()
	var gt *workload.GroundTruth
	switch scenario {
	case "incast":
		gt = buildTestbedIncast(cl, ls, epoch)
	case "storm":
		gt = buildTestbedStorm(cl, ls, epoch)
	default:
		return metrics.TrialScore{}, fmt.Errorf("experiments: unknown testbed scenario %q", scenario)
	}
	cl.Run(gt.AnomalyAt + 15*sim.Millisecond)
	results := sys.DiagnoseAll()
	return metrics.ScoreResults(metrics.DefaultScoreConfig(), results, gt, cl.Topo), nil
}

// TestbedTable runs both testbed cases across seeds and renders the
// validation rows.
func TestbedTable(trials int) (*metrics.Table, error) {
	return NewRunner(0).TestbedTable(trials)
}

// TestbedTable runs the leaf-spine validation on this runner's pool.
func (r *Runner) TestbedTable(trials int) (*metrics.Table, error) {
	scens := []string{"incast", "storm"}
	n := len(scens) * trials
	scores, err := mapOrdered(r, n, func(i int) (metrics.TrialScore, error) {
		return RunTestbed(scens[i/trials], uint64(i%trials)+1)
	})
	if err != nil {
		return nil, err
	}
	table := &metrics.Table{
		Title:   "Testbed validation: leaf-spine (2 spines x 2 leaves x 4 hosts)",
		Headers: []string{"scenario", "precision", "recall"},
	}
	for si, scen := range scens {
		var pr metrics.PR
		for t := 0; t < trials; t++ {
			pr.Add(scores[si*trials+t])
		}
		table.AddRow(scen, fmt.Sprintf("%.2f", pr.Precision()), fmt.Sprintf("%.2f", pr.Recall()))
	}
	return table, nil
}

package experiments

import (
	"fmt"
	"strings"

	"hawkeye/internal/collect"
	"hawkeye/internal/metrics"
	"hawkeye/internal/sim"
	"hawkeye/internal/workload"
)

// Fig12 runs each scenario once and renders the diagnosis plus the
// provenance graph — the paper's case studies.
func Fig12() (string, error) {
	var b strings.Builder
	b.WriteString("== Fig 12: case-study provenance graphs ==\n")
	for _, scen := range EvalScenarios() {
		tr, err := RunTrial(DefaultTrialConfig(scen, 1))
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "\n--- %s ---\n", scen)
		if tr.Score.Result == nil {
			b.WriteString("no diagnosis triggered\n")
			continue
		}
		fmt.Fprintf(&b, "trigger: %v at %v (%s)\n",
			tr.Score.Result.Trigger.Victim, tr.Score.Result.Trigger.At, tr.Score.Result.Trigger.Reason)
		b.WriteString(tr.Score.Result.Diagnosis.String())
		b.WriteString(tr.Score.Result.Graph.String())
	}
	return b.String(), nil
}

// PollerLatency renders the §4.5 CPU-poller timing model.
func PollerLatency() *metrics.Table {
	cfg := collect.DefaultConfig()
	t := &metrics.Table{
		Title:   "CPU poller latency model (paper 4.5: ~80ms/2 epochs, ~120ms/4)",
		Headers: []string{"epochs", "latency"},
	}
	for _, n := range []int{1, 2, 4} {
		lat := cfg.BaseLatency + sim.Time(n)*cfg.PerEpochLatency
		t.AddRow(fmt.Sprintf("%d", n), lat.String())
	}
	return t
}

// AblationMeterBits compares Hawkeye's byte-count causality meter against
// an ITSY-style 1-bit presence meter (§3.3 argues the byte counts are
// what rank causal relevance).
func AblationMeterBits(trials int) (*metrics.Table, error) {
	table := &metrics.Table{
		Title:   "Ablation: byte-count vs 1-bit causality meter",
		Headers: []string{"scenario", "meter", "precision", "recall"},
	}
	for _, scen := range AnomalyScenarios() {
		var full, onebit metrics.PR
		for seed := uint64(1); seed <= uint64(trials); seed++ {
			tr, err := RunTrial(DefaultTrialConfig(scen, seed))
			if err != nil {
				return nil, err
			}
			full.Add(tr.Score)
			onebit.Add(tr.ScoreWithBinaryMeter())
		}
		table.AddRow(scen, "bytes", fmt.Sprintf("%.2f", full.Precision()), fmt.Sprintf("%.2f", full.Recall()))
		table.AddRow(scen, "1-bit", fmt.Sprintf("%.2f", onebit.Precision()), fmt.Sprintf("%.2f", onebit.Recall()))
	}
	return table, nil
}

// AblationEpochCount sweeps the telemetry ring depth: shallow rings lose
// anomaly evidence before the complaint arrives.
func AblationEpochCount(trials int) (*metrics.Table, error) {
	table := &metrics.Table{
		Title:   "Ablation: telemetry ring depth",
		Headers: []string{"scenario", "epochs", "precision", "recall"},
	}
	for _, scen := range AnomalyScenarios() {
		for _, n := range []int{2, 4, 8} {
			var pr metrics.PR
			for seed := uint64(1); seed <= uint64(trials); seed++ {
				tc := DefaultTrialConfig(scen, seed)
				tc.NumEpochs = n
				tr, err := RunTrial(tc)
				if err != nil {
					return nil, err
				}
				pr.Add(tr.Score)
			}
			table.AddRow(scen, fmt.Sprintf("%d", n),
				fmt.Sprintf("%.2f", pr.Precision()), fmt.Sprintf("%.2f", pr.Recall()))
		}
	}
	return table, nil
}

// AblationDedup compares polling dedup on/off by polls handled and
// collections performed (the dedup exists purely to bound overhead).
func AblationDedup(trials int) (*metrics.Table, error) {
	table := &metrics.Table{
		Title:   "Ablation: polling dedup window",
		Headers: []string{"dedup", "polls-handled", "collections"},
	}
	for _, dedup := range []sim.Time{0, sim.Millisecond} {
		var polls, colls []float64
		for seed := uint64(1); seed <= uint64(trials); seed++ {
			tc := DefaultTrialConfig(workload.NameIncast, seed)
			tr, err := runTrialWithDedup(tc, dedup)
			if err != nil {
				return nil, err
			}
			var handled uint64
			for _, h := range tr.Sys.Handlers {
				handled += h.Handled
			}
			polls = append(polls, float64(handled))
			colls = append(colls, float64(tr.Sys.Collector.Stats().Collections))
		}
		table.AddRow(dedup.String(),
			fmt.Sprintf("%.0f", metrics.Mean(polls)),
			fmt.Sprintf("%.0f", metrics.Mean(colls)))
	}
	return table, nil
}

// PartialDeployment evaluates §5's deployment option: PFC causality
// analysis fabric-wide, flow telemetry only on edge (ToR) switches.
// Root causes at edge ports stay diagnosable; those on aggregation/core
// ports lose their contributing-flow evidence.
func PartialDeployment(trials int) (*metrics.Table, error) {
	table := &metrics.Table{
		Title:   "Discussion 5: partial deployment (flow telemetry on edges only)",
		Headers: []string{"scenario", "deployment", "precision", "recall"},
	}
	for _, scen := range EvalScenarios() {
		for _, partial := range []bool{false, true} {
			var pr metrics.PR
			for seed := uint64(1); seed <= uint64(trials); seed++ {
				tc := DefaultTrialConfig(scen, seed)
				tc.EdgeFlowTelemetryOnly = partial
				tr, err := RunTrial(tc)
				if err != nil {
					return nil, err
				}
				pr.Add(tr.Score)
			}
			name := "full"
			if partial {
				name = "edges-only"
			}
			table.AddRow(scen, name,
				fmt.Sprintf("%.2f", pr.Precision()), fmt.Sprintf("%.2f", pr.Recall()))
		}
	}
	return table, nil
}

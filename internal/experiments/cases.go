package experiments

import (
	"fmt"
	"strings"

	"hawkeye/internal/collect"
	"hawkeye/internal/metrics"
	"hawkeye/internal/sim"
	"hawkeye/internal/workload"
)

// Fig12 runs each scenario once and renders the diagnosis plus the
// provenance graph — the paper's case studies.
func Fig12() (string, error) { return NewRunner(0).Fig12() }

// Fig12 renders the case studies, one trial per scenario, fanned out
// across the pool and stitched back in scenario order.
func (r *Runner) Fig12() (string, error) {
	scens := EvalScenarios()
	sections, err := mapOrdered(r, len(scens), func(i int) (string, error) {
		tr, err := RunTrial(DefaultTrialConfig(scens[i], 1))
		if err != nil {
			return "", err
		}
		var b strings.Builder
		fmt.Fprintf(&b, "\n--- %s ---\n", scens[i])
		if tr.Score.Result == nil {
			b.WriteString("no diagnosis triggered\n")
			return b.String(), nil
		}
		fmt.Fprintf(&b, "trigger: %v at %v (%s)\n",
			tr.Score.Result.Trigger.Victim, tr.Score.Result.Trigger.At, tr.Score.Result.Trigger.Reason)
		b.WriteString(tr.Score.Result.Diagnosis.String())
		b.WriteString(tr.Score.Result.Graph.String())
		return b.String(), nil
	})
	if err != nil {
		return "", err
	}
	return "== Fig 12: case-study provenance graphs ==\n" + strings.Join(sections, ""), nil
}

// PollerLatency renders the §4.5 CPU-poller timing model.
func PollerLatency() *metrics.Table {
	cfg := collect.DefaultConfig()
	t := &metrics.Table{
		Title:   "CPU poller latency model (paper 4.5: ~80ms/2 epochs, ~120ms/4)",
		Headers: []string{"epochs", "latency"},
	}
	for _, n := range []int{1, 2, 4} {
		lat := cfg.BaseLatency + sim.Time(n)*cfg.PerEpochLatency
		t.AddRow(fmt.Sprintf("%d", n), lat.String())
	}
	return t
}

// AblationMeterBits compares Hawkeye's byte-count causality meter against
// an ITSY-style 1-bit presence meter (§3.3 argues the byte counts are
// what rank causal relevance).
func AblationMeterBits(trials int) (*metrics.Table, error) {
	return NewRunner(0).AblationMeterBits(trials)
}

// AblationMeterBits runs the meter ablation on this runner's pool; both
// scores of a trial are computed inside its job so the heavyweight
// trial state dies with the worker.
func (r *Runner) AblationMeterBits(trials int) (*metrics.Table, error) {
	scens := AnomalyScenarios()
	type pair struct{ full, onebit metrics.TrialScore }
	n := len(scens) * trials
	pairs, err := mapOrdered(r, n, func(i int) (pair, error) {
		scen := scens[i/trials]
		seed := uint64(i%trials) + 1
		tr, err := RunTrial(DefaultTrialConfig(scen, seed))
		if err != nil {
			return pair{}, err
		}
		return pair{full: tr.Score, onebit: tr.ScoreWithBinaryMeter()}, nil
	})
	if err != nil {
		return nil, err
	}
	table := &metrics.Table{
		Title:   "Ablation: byte-count vs 1-bit causality meter",
		Headers: []string{"scenario", "meter", "precision", "recall"},
	}
	for si, scen := range scens {
		var full, onebit metrics.PR
		for t := 0; t < trials; t++ {
			full.Add(pairs[si*trials+t].full)
			onebit.Add(pairs[si*trials+t].onebit)
		}
		table.AddRow(scen, "bytes", fmt.Sprintf("%.2f", full.Precision()), fmt.Sprintf("%.2f", full.Recall()))
		table.AddRow(scen, "1-bit", fmt.Sprintf("%.2f", onebit.Precision()), fmt.Sprintf("%.2f", onebit.Recall()))
	}
	return table, nil
}

// AblationEpochCount sweeps the telemetry ring depth: shallow rings lose
// anomaly evidence before the complaint arrives.
func AblationEpochCount(trials int) (*metrics.Table, error) {
	return NewRunner(0).AblationEpochCount(trials)
}

// AblationEpochCount runs the ring-depth sweep on this runner's pool.
func (r *Runner) AblationEpochCount(trials int) (*metrics.Table, error) {
	depths := []int{2, 4, 8}
	var cfgs []TrialConfig
	for _, scen := range AnomalyScenarios() {
		for _, n := range depths {
			for seed := uint64(1); seed <= uint64(trials); seed++ {
				tc := DefaultTrialConfig(scen, seed)
				tc.NumEpochs = n
				cfgs = append(cfgs, tc)
			}
		}
	}
	scores, err := mapOrdered(r, len(cfgs), func(i int) (metrics.TrialScore, error) {
		tr, err := RunTrial(cfgs[i])
		if err != nil {
			return metrics.TrialScore{}, err
		}
		return tr.Score, nil
	})
	if err != nil {
		return nil, err
	}
	table := &metrics.Table{
		Title:   "Ablation: telemetry ring depth",
		Headers: []string{"scenario", "epochs", "precision", "recall"},
	}
	next := 0
	for _, scen := range AnomalyScenarios() {
		for _, n := range depths {
			var pr metrics.PR
			for t := 0; t < trials; t++ {
				pr.Add(scores[next])
				next++
			}
			table.AddRow(scen, fmt.Sprintf("%d", n),
				fmt.Sprintf("%.2f", pr.Precision()), fmt.Sprintf("%.2f", pr.Recall()))
		}
	}
	return table, nil
}

// AblationDedup compares polling dedup on/off by polls handled and
// collections performed (the dedup exists purely to bound overhead).
func AblationDedup(trials int) (*metrics.Table, error) {
	return NewRunner(0).AblationDedup(trials)
}

// AblationDedup runs the dedup-window comparison on this runner's pool.
func (r *Runner) AblationDedup(trials int) (*metrics.Table, error) {
	windows := []sim.Time{0, sim.Millisecond}
	type counts struct{ polls, colls float64 }
	n := len(windows) * trials
	rows, err := mapOrdered(r, n, func(i int) (counts, error) {
		dedup := windows[i/trials]
		seed := uint64(i%trials) + 1
		tc := DefaultTrialConfig(workload.NameIncast, seed)
		tr, err := runTrialWithDedup(tc, dedup)
		if err != nil {
			return counts{}, err
		}
		var handled uint64
		for _, h := range tr.Sys.Handlers {
			handled += h.Handled
		}
		return counts{
			polls: float64(handled),
			colls: float64(tr.Sys.Collector.Stats().Collections),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	table := &metrics.Table{
		Title:   "Ablation: polling dedup window",
		Headers: []string{"dedup", "polls-handled", "collections"},
	}
	for wi, dedup := range windows {
		var polls, colls []float64
		for t := 0; t < trials; t++ {
			polls = append(polls, rows[wi*trials+t].polls)
			colls = append(colls, rows[wi*trials+t].colls)
		}
		table.AddRow(dedup.String(),
			fmt.Sprintf("%.0f", metrics.Mean(polls)),
			fmt.Sprintf("%.0f", metrics.Mean(colls)))
	}
	return table, nil
}

// PartialDeployment evaluates §5's deployment option: PFC causality
// analysis fabric-wide, flow telemetry only on edge (ToR) switches.
// Root causes at edge ports stay diagnosable; those on aggregation/core
// ports lose their contributing-flow evidence.
func PartialDeployment(trials int) (*metrics.Table, error) {
	return NewRunner(0).PartialDeployment(trials)
}

// PartialDeployment runs the deployment comparison on this runner's pool.
func (r *Runner) PartialDeployment(trials int) (*metrics.Table, error) {
	var cfgs []TrialConfig
	for _, scen := range EvalScenarios() {
		for _, partial := range []bool{false, true} {
			for seed := uint64(1); seed <= uint64(trials); seed++ {
				tc := DefaultTrialConfig(scen, seed)
				tc.EdgeFlowTelemetryOnly = partial
				cfgs = append(cfgs, tc)
			}
		}
	}
	scores, err := mapOrdered(r, len(cfgs), func(i int) (metrics.TrialScore, error) {
		tr, err := RunTrial(cfgs[i])
		if err != nil {
			return metrics.TrialScore{}, err
		}
		return tr.Score, nil
	})
	if err != nil {
		return nil, err
	}
	table := &metrics.Table{
		Title:   "Discussion 5: partial deployment (flow telemetry on edges only)",
		Headers: []string{"scenario", "deployment", "precision", "recall"},
	}
	next := 0
	for _, scen := range EvalScenarios() {
		for _, partial := range []bool{false, true} {
			var pr metrics.PR
			for t := 0; t < trials; t++ {
				pr.Add(scores[next])
				next++
			}
			name := "full"
			if partial {
				name = "edges-only"
			}
			table.AddRow(scen, name,
				fmt.Sprintf("%.2f", pr.Precision()), fmt.Sprintf("%.2f", pr.Recall()))
		}
	}
	return table, nil
}

package experiments

import (
	"errors"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"hawkeye/internal/baselines"
	"hawkeye/internal/core"
	"hawkeye/internal/metrics"
	"hawkeye/internal/workload"
)

// evalSignature is the deep-comparable projection of an EvalRun: every
// diagnosis result, score, baseline view and trace statistic of every
// trial, in scenario/seed order. Function-typed fields (cluster hooks)
// are excluded; everything the figures read is included.
type evalSignature struct {
	Scenario string
	Seed     uint64
	Results  []*core.Result
	Score    metrics.TrialScore
	Stats    baselines.TraceStats
	View     baselines.View
}

func signatureOf(run *EvalRun) []evalSignature {
	var sig []evalSignature
	for _, scen := range EvalScenarios() {
		for _, tr := range run.Trials[scen] {
			sig = append(sig, evalSignature{
				Scenario: tr.Cfg.Scenario,
				Seed:     tr.Cfg.Seed,
				Results:  tr.Results,
				Score:    tr.Score,
				Stats:    tr.Stats,
				View:     tr.View,
			})
		}
	}
	return sig
}

// TestParallelEvalRunDeterministic pins the Runner's core guarantee:
// EvalRun with 8 workers is deep-equal to the serial run, and repeated
// parallel runs are identical. `make race` runs this under the race
// detector, which also proves trial isolation.
func TestParallelEvalRunDeterministic(t *testing.T) {
	serial, err := NewRunner(1).RunEval(1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := NewRunner(8).RunEval(1)
	if err != nil {
		t.Fatal(err)
	}
	again, err := NewRunner(8).RunEval(1)
	if err != nil {
		t.Fatal(err)
	}
	want := signatureOf(serial)
	if got := signatureOf(parallel); !reflect.DeepEqual(got, want) {
		for i := range want {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Fatalf("workers=8 diverged from workers=1 at %s seed=%d", want[i].Scenario, want[i].Seed)
			}
		}
		t.Fatal("workers=8 diverged from workers=1")
	}
	if got := signatureOf(again); !reflect.DeepEqual(got, want) {
		t.Fatal("repeated workers=8 runs are not identical")
	}
}

// TestParallelRobustnessCurveDeterministic pins the same guarantee for
// the fault-injection sweep, where every trial additionally consumes a
// seeded chaos stream.
func TestParallelRobustnessCurveDeterministic(t *testing.T) {
	rates := []float64{0, 0.3}
	run := func(workers int) *metrics.RobustnessCurve {
		c, err := NewRunner(workers).RunRobustnessCurve(workload.NameIncast, 1, rates, 1)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	serial := run(1)
	parallel := run(8)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("robustness curve diverged:\nworkers=1: %+v\nworkers=8: %+v", serial, parallel)
	}
	if again := run(8); !reflect.DeepEqual(parallel, again) {
		t.Fatal("repeated parallel robustness sweeps are not identical")
	}
}

// TestRunnerReportsLowestIndexedError pins error semantics: a parallel
// sweep surfaces the same error the serial loop would hit first, not
// whichever worker happened to fail soonest.
func TestRunnerReportsLowestIndexedError(t *testing.T) {
	boom := errors.New("boom")
	r := NewRunner(4)
	err := r.forEach(16, func(i int) error {
		if i == 3 || i == 11 {
			return boom
		}
		if i > 3 {
			// Give the low-indexed failure time to land so the test is
			// not satisfied by scheduling luck alone.
			time.Sleep(2 * time.Millisecond)
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}

	// An invalid scenario fails identically on serial and parallel paths.
	bad := []TrialConfig{DefaultTrialConfig("no-such-scenario", 1)}
	if _, err := NewRunner(1).runConfigs(bad); err == nil {
		t.Fatal("serial runConfigs accepted an unknown scenario")
	}
	if _, err := NewRunner(8).runConfigs(bad); err == nil {
		t.Fatal("parallel runConfigs accepted an unknown scenario")
	}
}

// TestRunnerBoundsInFlight checks that at most Workers jobs run at once
// (each in-flight trial owns a whole cluster, so the bound is a memory
// contract, not just a scheduling detail).
func TestRunnerBoundsInFlight(t *testing.T) {
	const workers = 3
	var inflight, peak atomic.Int64
	err := NewRunner(workers).forEach(24, func(i int) error {
		cur := inflight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		inflight.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("peak in-flight = %d, want <= %d", p, workers)
	}
}

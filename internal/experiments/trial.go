// Package experiments drives the paper's evaluation (§4): one driver per
// table/figure, all built on a shared trial runner that constructs the
// fat-tree K=4 cluster, installs Hawkeye, crafts a scenario with ground
// truth, runs the trace, and scores every compared system.
package experiments

import (
	"fmt"
	"sort"

	"hawkeye/internal/baselines"
	"hawkeye/internal/chaos"
	"hawkeye/internal/cluster"
	"hawkeye/internal/core"
	"hawkeye/internal/diagnosis"
	"hawkeye/internal/host"
	"hawkeye/internal/metrics"
	"hawkeye/internal/netsight"
	"hawkeye/internal/packet"
	"hawkeye/internal/pfcwd"
	"hawkeye/internal/provenance"
	"hawkeye/internal/sim"
	"hawkeye/internal/spidermon"
	"hawkeye/internal/telemetry"
	"hawkeye/internal/topo"
	"hawkeye/internal/workload"
)

// TrialConfig parametrizes one trace.
type TrialConfig struct {
	Scenario string
	Seed     uint64
	// EpochBits is log2 of the telemetry epoch (Fig. 7 sweeps 17..21,
	// i.e. ~131 µs .. ~2.1 ms, the paper's 100 µs – 2 ms range).
	EpochBits uint
	NumEpochs int
	// RTTFactor is the detection threshold (200%–500% RTT -> 2..5).
	RTTFactor float64
	// Load adds Poisson background traffic (0 disables).
	Load float64
	// XoffBytes overrides the switch PFC threshold (0 = default). The
	// normal-contention scenario uses deep-buffer thresholds so transient
	// contention stays below PFC, per its ground truth.
	XoffBytes int
	// DisableECN turns DCQCN marking off: the normal-contention case
	// needs standing queues to be visible in RTT rather than absorbed
	// into silent rate cuts.
	DisableECN bool
	// EdgeFlowTelemetryOnly deploys the flow tables only on edge (ToR)
	// switches — the §5 partial-deployment option. PFC causality analysis
	// remains fabric-wide.
	EdgeFlowTelemetryOnly bool
	// MeasureBaselines additionally installs the mechanistic SpiderMon
	// (in-band delay headers) and NetSight (postcards) instruments, so
	// their measured overheads can be checked against the Fig. 9 cost
	// models.
	MeasureBaselines bool
	// PollLoss injects polling-packet loss at every switch (failure
	// testing).
	//
	// Deprecated: the knob folds into the chaos schedule's PollLoss; it
	// is kept so existing sweeps keep their call sites. Prefer Chaos.
	PollLoss float64
	// Chaos composes fault injection across the whole pipeline
	// (internal/chaos); nil runs the trial clean. PollLoss merges into
	// the schedule when the schedule itself leaves polling untouched.
	Chaos *chaos.Schedule
	// ChaosSeed drives every chaos decision (0 derives from Seed, so a
	// trial's identity stays one number unless the sweep needs
	// independent fault draws).
	ChaosSeed uint64
	// DisableHostAgents turns the host-agent counter channel off: no NIC
	// snapshots are taken at triggers, so host-vs-network attribution
	// runs blind (the degraded-mode ablation).
	DisableHostAgents bool
	// EnableWatchdog attaches a PFC storm watchdog to every switch:
	// mitigation running alongside diagnosis (§2.2 — operators deploy
	// both; the diagnosis must survive the mitigation's evidence
	// destruction).
	EnableWatchdog bool
	// pollDedup overrides the polling dedup window (ablations).
	pollDedup *sim.Time
	// Horizon extends the run beyond the anomaly (0 = scenario default).
	Horizon sim.Time
}

// DefaultTrialConfig returns the paper's default operating point for a
// scenario.
func DefaultTrialConfig(scenario string, seed uint64) TrialConfig {
	cfg := TrialConfig{
		Scenario:  scenario,
		Seed:      seed,
		EpochBits: 17,
		NumEpochs: 4,
		RTTFactor: 2,
		Load:      0.03,
	}
	if scenario == workload.NameOutLoopBurst {
		// The out-of-loop contention initiator must hold its port
		// overloaded long enough for the pause cycle to wrap; with DCQCN
		// active the incast is tamed within ~200 µs and the cycle never
		// locks. A deadlock-from-contention presupposes congestion
		// control failing to defuse the initiator (§2.1).
		cfg.DisableECN = true
	}
	if scenario == workload.NameNormal {
		// Sub-PFC queueing inflates RTT far less than pausing does; the
		// paper tunes thresholds per deployment (§5). Deep-buffer Xoff
		// keeps the crafted contention below the PFC trigger.
		cfg.RTTFactor = 1.5
		cfg.Load = 0 // background would blur the no-PFC ground truth
		cfg.XoffBytes = 256 * 1024
		cfg.DisableECN = true
	}
	return cfg
}

// Trial is a completed trace with everything the figures need.
type Trial struct {
	Cfg     TrialConfig
	GT      *workload.GroundTruth
	Cl      *cluster.Cluster
	FT      *topo.FatTree
	Sys     *core.System
	Results []*core.Result
	Score   metrics.TrialScore

	// Chaos is the installed fault-injection engine (nil on clean runs);
	// its counters account for every injected fault of the trace.
	Chaos *chaos.Engine

	View  baselines.View
	Stats baselines.TraceStats

	// Measured baseline overheads (set when Cfg.MeasureBaselines).
	MeasuredSpiderMonBytes uint64
	MeasuredNetSightBytes  uint64

	// Watchdogs are the per-switch mitigation instances (set when
	// Cfg.EnableWatchdog).
	Watchdogs []*pfcwd.Watchdog

	// allSnaps holds a full-fabric snapshot per ground-truth trigger, so
	// baseline comparisons can use the state AT the scored complaint.
	allSnaps []fabricSnap
}

// fabricSnap is one all-switch snapshot.
type fabricSnap struct {
	at      sim.Time
	reports map[topo.NodeID]*telemetry.Report
}

// RunTrial builds, runs and scores one trace.
func RunTrial(cfg TrialConfig) (*Trial, error) {
	build, err := workload.ByName(cfg.Scenario)
	if err != nil {
		return nil, err
	}
	ft, err := topo.NewFatTree(4)
	if err != nil {
		return nil, err
	}
	routing := topo.ComputeRouting(ft.Topology)

	ccfg := cluster.DefaultConfig(ft.Topology)
	ccfg.Seed = cfg.Seed
	ccfg.Host.Agent.RTTFactor = cfg.RTTFactor
	if cfg.XoffBytes > 0 {
		ccfg.Switch.XoffBytes = cfg.XoffBytes
		ccfg.Switch.XonBytes = cfg.XoffBytes / 2
		// Deep-buffer switches also run proportionally deeper ECN ramps;
		// otherwise DCQCN clamps queues far below the new threshold and
		// the crafted contention never materializes.
		ccfg.Switch.KminBytes = cfg.XoffBytes / 4
		ccfg.Switch.KmaxBytes = cfg.XoffBytes
	}
	if cfg.DisableECN {
		ccfg.Switch.EnableECN = false
	}
	cl := cluster.New(ft.Topology, routing, ccfg)

	score := core.DefaultConfig()
	score.Telemetry.EpochBits = cfg.EpochBits
	score.Telemetry.NumEpochs = cfg.NumEpochs
	score.HostTelemetry = !cfg.DisableHostAgents
	if cfg.pollDedup != nil {
		score.Polling.Dedup = *cfg.pollDedup
	}
	if cfg.EdgeFlowTelemetryOnly {
		edges := make(map[topo.NodeID]bool)
		for _, pod := range ft.Edge {
			for _, id := range pod {
				edges[id] = true
			}
		}
		score.FlowTelemetryAt = func(id topo.NodeID) bool { return edges[id] }
	}
	// Register values are captured at sync start, so the CPU poller
	// latency does not change diagnosis content (§3.4); shrink it so the
	// horizon is dominated by the trace, not by idle DMA waits. The real
	// latency model is evaluated by BenchmarkPollerLatencyModel.
	score.Collect.BaseLatency = 200 * sim.Microsecond
	score.Collect.PerEpochLatency = 50 * sim.Microsecond
	sys, err := core.Install(cl, score)
	if err != nil {
		return nil, err
	}

	tr := &Trial{Cfg: cfg, Cl: cl, FT: ft, Sys: sys}

	// Fault injection: the legacy PollLoss knob folds into the chaos
	// schedule, so every fault — polling loss included — runs off one
	// seeded engine and one accounting surface.
	sched := chaos.Schedule{}
	if cfg.Chaos != nil {
		sched = *cfg.Chaos
	}
	if cfg.PollLoss > 0 && sched.PollLoss == 0 {
		sched.PollLoss = cfg.PollLoss
	}
	if !sched.IsZero() {
		chaosSeed := cfg.ChaosSeed
		if chaosSeed == 0 {
			chaosSeed = cfg.Seed ^ 0x1055
		}
		tr.Chaos, err = chaos.Install(cl, sys, sched, chaosSeed)
		if err != nil {
			return nil, err
		}
	}

	var smons map[topo.NodeID]*spidermon.Instrument
	var nstore *netsight.Store
	if cfg.MeasureBaselines {
		smons = spidermon.InstallAll(cl.Switches, spidermon.DefaultConfig(), cl.Eng.Now, nil)
		nstore = netsight.NewStore()
		netsight.InstallAll(cl.Switches, nstore)
	}
	if cfg.EnableWatchdog {
		// Sorted attach order: watchdog polls of different switches land on
		// the same timestamps, and event order at equal times follows
		// scheduling order — map iteration here would break determinism.
		ids := make([]topo.NodeID, 0, len(cl.Switches))
		for id := range cl.Switches {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			w, err := pfcwd.Attach(cl.Eng, cl.Switches[id], pfcwd.DefaultConfig())
			if err != nil {
				return nil, err
			}
			tr.Watchdogs = append(tr.Watchdogs, w)
		}
	}

	params := workload.DefaultParams(score.Telemetry.EpochSize())
	gt := build(cl, ft, params)
	tr.GT = gt

	if cfg.Load > 0 {
		bg := &workload.Background{
			Load:  cfg.Load,
			CDF:   workload.PaperCDF(workload.DefaultScaleDivisor),
			Start: 0,
			Stop:  gt.AnomalyAt + 8*sim.Millisecond,
		}
		bg.Install(cl, sim.NewRand(cfg.Seed^0xBEEF))
	}

	// Take a full-fabric snapshot at every ground-truth trigger: the
	// baselines are evaluated on the state at the SAME instant as the
	// scored complaint.
	sys.OnTrigger = func(t host.Trigger) {
		if !gt.Victims[t.Victim] || len(tr.allSnaps) > 64 {
			return
		}
		// Sorted snapshot order: Snapshot draws from the chaos telemetry
		// fault stream, so map iteration here would consume it in a
		// different order every run and break fault replay.
		ids := make([]topo.NodeID, 0, len(sys.Tels))
		for id := range sys.Tels {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		all := make(map[topo.NodeID]*telemetry.Report, len(ids))
		for _, id := range ids {
			all[id] = sys.Tels[id].Snapshot(cfg.NumEpochs)
		}
		tr.allSnaps = append(tr.allSnaps, fabricSnap{at: cl.Eng.Now(), reports: all})
	}

	horizon := cfg.Horizon
	if horizon == 0 {
		horizon = gt.AnomalyAt + 15*sim.Millisecond
	}
	cl.Run(horizon)

	tr.Results = sys.DiagnoseAll()
	tr.Score = metrics.ScoreResults(metrics.DefaultScoreConfig(), tr.Results, gt, cl.Topo)

	if cfg.MeasureBaselines {
		for _, in := range smons {
			tr.MeasuredSpiderMonBytes += in.InBandBytes
		}
		tr.MeasuredNetSightBytes = nstore.Bytes
	}

	// Fill the view from the scored session: traced reports, and the
	// all-switch snapshot taken at the scored trigger instant.
	tr.View.Traced = make(map[topo.NodeID]*telemetry.Report)
	if tr.Score.Result != nil {
		if s, ok := sys.Sessions()[tr.Score.Result.Trigger.DiagID]; ok {
			for id, rep := range s.Reports {
				tr.View.Traced[id] = rep
			}
		}
		at := tr.Score.Result.Trigger.At
		for i := range tr.allSnaps {
			if tr.allSnaps[i].at == at {
				tr.View.AllSwitches = tr.allSnaps[i].reports
				break
			}
		}
		tr.View.VictimPath = pathSwitchesOf(cl, tr.Score.Result.Trigger.Victim)
	}
	if tr.View.AllSwitches == nil && len(tr.allSnaps) > 0 {
		tr.View.AllSwitches = tr.allSnaps[0].reports
	}
	tr.Stats = tr.traceStats()
	return tr, nil
}

// pathSwitchesOf lists the switches on a flow's path (ECMP-resolved the
// same way the data plane does).
func pathSwitchesOf(cl *cluster.Cluster, ft packet.FiveTuple) []topo.NodeID {
	src, ok1 := cl.Topo.HostByIP(ft.SrcIP)
	dst, ok2 := cl.Topo.HostByIP(ft.DstIP)
	if !ok1 || !ok2 {
		return nil
	}
	refs, err := cl.Routing.PortPath(src, dst, ft.Hash())
	if err != nil {
		return nil
	}
	var out []topo.NodeID
	for _, r := range refs {
		if cl.Topo.Node(r.Node).Kind == topo.KindSwitch {
			out = append(out, r.Node)
		}
	}
	return out
}

// traceStats summarizes the trace for the overhead models.
func (tr *Trial) traceStats() baselines.TraceStats {
	var ts baselines.TraceStats
	flows := 0
	for _, h := range tr.Cl.Hosts {
		ts.DataPackets += h.TxDataPackets
		flows += len(h.Flows())
	}
	ts.Flows = flows
	ts.PollingBytes = tr.Cl.Net.PollingBytes
	ts.Diagnoses = len(tr.Sys.Triggers())
	ts.AvgHops = tr.avgHops()
	ts.VictimPathLen = len(tr.View.VictimPath)
	if ts.VictimPathLen == 0 && tr.Score.Result != nil {
		ts.VictimPathLen = len(pathSwitchesOf(tr.Cl, tr.Score.Result.Trigger.Victim))
	}
	return ts
}

// avgHops averages switch-hop counts over the scenario's labelled flows.
func (tr *Trial) avgHops() float64 {
	total, n := 0, 0
	count := func(set map[packet.FiveTuple]bool) {
		for ft := range set {
			if hops := len(pathSwitchesOf(tr.Cl, ft)); hops > 0 {
				total += hops
				n++
			}
		}
	}
	count(tr.GT.Victims)
	count(tr.GT.Culprits)
	if n == 0 {
		return 4 // fat-tree K=4 average
	}
	return float64(total) / float64(n)
}

// BaselineScore diagnoses the trial from one baseline's view and scores
// it against the ground truth.
func (tr *Trial) BaselineScore(kind baselines.Kind) metrics.TrialScore {
	if kind == baselines.KindHawkeye {
		return tr.Score
	}
	if tr.Score.Result == nil {
		return metrics.TrialScore{Reason: "no trigger"}
	}
	reports := kind.Reports(tr.View)
	trigger := tr.Score.Result.Trigger
	g := provenance.Build(tr.provCfg(), reports, tr.Cl.Topo)
	d := diagnosis.Diagnose(diagnosis.DefaultConfig(), g, tr.Cl.Topo, trigger.Victim)
	res := &core.Result{Trigger: trigger, Graph: g, Diagnosis: d}
	return metrics.ScoreResults(metrics.DefaultScoreConfig(), []*core.Result{res}, tr.GT, tr.Cl.Topo)
}

// BaselineOverhead applies the cost models to the trial.
func (tr *Trial) BaselineOverhead(kind baselines.Kind) baselines.Overhead {
	return kind.Assess(tr.View, tr.Stats)
}

func (tr *Trial) provCfg() provenance.Config {
	cfg := provenance.DefaultConfig(tr.Cl.Topo.LinkBandwidth, int64(tr.Sys.Cfg.Telemetry.EpochSize()))
	cfg.BurstRateFrac = tr.Sys.Cfg.BurstRateFrac
	cfg.BurstMaxEpochs = tr.Sys.Cfg.BurstMaxEpochs
	return cfg
}

// Summary renders a one-line trial outcome.
func (tr *Trial) Summary() string {
	return fmt.Sprintf("%s seed=%d: detected=%v correct=%v (%s)",
		tr.Cfg.Scenario, tr.Cfg.Seed, tr.Score.Detected, tr.Score.Correct, tr.Score.Reason)
}

// ScoreWithBinaryMeter re-runs the diagnosis over the scored session's
// reports with the causality meter collapsed to 1-bit presence (the
// ITSY-style ablation): byte counts become "some traffic existed".
func (tr *Trial) ScoreWithBinaryMeter() metrics.TrialScore {
	if tr.Score.Result == nil {
		return metrics.TrialScore{Reason: "no trigger"}
	}
	var reports []*telemetry.Report
	for _, rep := range tr.View.Traced {
		cp := *rep
		cp.Meter = make([]telemetry.MeterRecord, len(rep.Meter))
		for i, m := range rep.Meter {
			m.Bytes = 1
			cp.Meter[i] = m
		}
		reports = append(reports, &cp)
	}
	trigger := tr.Score.Result.Trigger
	g := provenance.Build(tr.provCfg(), reports, tr.Cl.Topo)
	d := diagnosis.Diagnose(diagnosis.DefaultConfig(), g, tr.Cl.Topo, trigger.Victim)
	res := &core.Result{Trigger: trigger, Graph: g, Diagnosis: d}
	return metrics.ScoreResults(metrics.DefaultScoreConfig(), []*core.Result{res}, tr.GT, tr.Cl.Topo)
}

// runTrialWithDedup is RunTrial with an explicit polling dedup window
// (ablation support).
func runTrialWithDedup(cfg TrialConfig, dedup sim.Time) (*Trial, error) {
	d := dedup
	cfg.pollDedup = &d
	return RunTrial(cfg)
}

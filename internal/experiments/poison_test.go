package experiments

import (
	"errors"
	"sort"
	"testing"

	"hawkeye/internal/diagnosis"
	"hawkeye/internal/packet"
	"hawkeye/internal/provenance"
	"hawkeye/internal/sim"
	"hawkeye/internal/telemetry"
	"hawkeye/internal/topo"
	"hawkeye/internal/wire"
	"hawkeye/internal/workload"
)

// admitAndDiagnose replays the analyzer's full admission path — strict
// decode, semantic validation, magnitude sanitization, provenance build,
// coverage folding — over raw report blobs, exactly as analyzd does for
// frames off the wire. Undecodable blobs are dropped (their switch goes
// silent); validator rejections are noted per switch; clamps count
// against confidence.
func admitAndDiagnose(blobs [][]byte, tp *topo.Topology, epochNS int64, victim packet.FiveTuple) *diagnosis.Report {
	v := wire.NewValidator(tp)
	lim := telemetry.LimitsFor(tp.LinkBandwidth, epochNS)
	var (
		reports         []*telemetry.Report
		rejected        = map[topo.NodeID]int{}
		rejectedUnknown int
		clamped         int
	)
	for _, b := range blobs {
		r := &telemetry.Report{}
		if err := r.UnmarshalBinary(b); err != nil {
			continue
		}
		if err := v.CheckReport(r); err != nil {
			var re *wire.ReportError
			if errors.As(err, &re) && re.SwitchKnown {
				rejected[re.Switch]++
			} else {
				rejectedUnknown++
			}
			continue
		}
		clamped += telemetry.SanitizeReport(r, lim)
		reports = append(reports, r)
	}
	cfg := provenance.DefaultConfig(tp.LinkBandwidth, epochNS)
	g := provenance.Build(cfg, reports, tp)
	for sw, n := range rejected {
		for i := 0; i < n; i++ {
			g.Coverage.NoteRejected(sw)
		}
	}
	for i := 0; i < rejectedUnknown; i++ {
		g.Coverage.NoteRejected(-1)
	}
	g.Coverage.Clamped += clamped
	return diagnosis.Diagnose(diagnosis.DefaultConfig(), g, tp, victim)
}

// TestPoisonedTelemetryNeverConfidentlyWrong is the containment property
// behind the whole hardening layer: 200 independently seeded single-byte
// corruptions of real telemetry, each pushed through the admission path.
// None may panic, and none may yield a high-confidence verdict that
// disagrees with the uncorrupted baseline — a poisoned report may cost
// coverage or confidence, but never buy a confident lie.
func TestPoisonedTelemetryNeverConfidentlyWrong(t *testing.T) {
	tr, err := RunTrial(DefaultTrialConfig(workload.NameIncast, 1))
	if err != nil {
		t.Fatal(err)
	}
	tp := tr.Cl.Topo
	epochNS := int64(tr.Sys.Cfg.Telemetry.EpochSize())
	victim := tr.Score.Result.Trigger.Victim

	// Traced is keyed by switch; fix an order so corruption trials are
	// reproducible from the seed alone.
	sws := make([]topo.NodeID, 0, len(tr.View.Traced))
	for sw := range tr.View.Traced {
		sws = append(sws, sw)
	}
	sort.Slice(sws, func(i, j int) bool { return sws[i] < sws[j] })
	blobs := make([][]byte, 0, len(sws))
	for _, sw := range sws {
		b, err := tr.View.Traced[sw].MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		blobs = append(blobs, b)
	}

	base := admitAndDiagnose(blobs, tp, epochNS, victim)
	if base.Confidence != diagnosis.ConfHigh {
		t.Fatalf("baseline confidence %v (%.2f) — property would be vacuous", base.Confidence, base.ConfidenceScore)
	}
	if base.Type != tr.Score.Result.Diagnosis.Type {
		t.Fatalf("in-process admission path diverges from trial verdict: %v vs %v",
			base.Type, tr.Score.Result.Diagnosis.Type)
	}

	master := sim.NewRand(0xB10F11)
	for trial := 0; trial < 200; trial++ {
		rng := master.Fork()
		ri := rng.Intn(len(blobs))
		bi := rng.Intn(len(blobs[ri]))
		delta := byte(rng.Intn(255) + 1) // never the identity

		poisoned := make([][]byte, len(blobs))
		copy(poisoned, blobs)
		mut := append([]byte(nil), blobs[ri]...)
		mut[bi] ^= delta
		poisoned[ri] = mut

		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d (report %d byte %d ^= %#x): admission path panicked: %v",
						trial, ri, bi, delta, r)
				}
			}()
			d := admitAndDiagnose(poisoned, tp, epochNS, victim)
			if d.Confidence == diagnosis.ConfHigh && d.Type != base.Type {
				t.Fatalf("trial %d (report %d byte %d ^= %#x): confidently wrong — %v at %.2f, baseline %v",
					trial, ri, bi, delta, d.Type, d.ConfidenceScore, base.Type)
			}
		}()
	}
}

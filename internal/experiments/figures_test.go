package experiments

import (
	"strings"
	"testing"

	"hawkeye/internal/baselines"
	"hawkeye/internal/workload"
)

// TestEvalRunFiguresRender drives a tiny evaluation pass and checks the
// figure tables for structural sanity and the paper's qualitative
// orderings.
func TestEvalRunFiguresRender(t *testing.T) {
	run, err := RunEval(2)
	if err != nil {
		t.Fatal(err)
	}
	for _, tab := range []string{
		run.Fig8().String(),
		run.Fig9().String(),
		run.Fig10().String(),
		run.Fig11().String(),
		run.Fig14().String(),
	} {
		if len(tab) == 0 || !strings.Contains(tab, "Fig") {
			t.Fatalf("empty figure table:\n%s", tab)
		}
	}

	// Fig 9 ordering: hawkeye collects less than full polling, and
	// netsight dwarfs everyone (paper: orders of magnitude).
	var hk, full, ns, victim float64
	for _, scen := range EvalScenarios() {
		for _, tr := range run.Trials[scen] {
			if tr.Score.Result == nil {
				continue
			}
			hk += float64(tr.BaselineOverhead(baselines.KindHawkeye).CollectedBytes)
			full += float64(tr.BaselineOverhead(baselines.KindFullPolling).CollectedBytes)
			ns += float64(tr.BaselineOverhead(baselines.KindNetSight).CollectedBytes)
			victim += float64(tr.BaselineOverhead(baselines.KindVictimOnly).CollectedBytes)
		}
	}
	if !(victim <= hk && hk <= full && full < ns) {
		t.Fatalf("overhead ordering violated: victim=%.0f hawkeye=%.0f full=%.0f netsight=%.0f",
			victim, hk, full, ns)
	}

	// Fig 14: zero-filtering must reduce telemetry size by >80% on
	// average (the paper's headline number).
	var reductions []float64
	for _, scen := range EvalScenarios() {
		for _, tr := range run.Trials[scen] {
			st := tr.Sys.Collector.Stats()
			if st.FullDumpBytes > 0 {
				reductions = append(reductions, 1-float64(st.ReportBytes)/float64(st.FullDumpBytes))
			}
		}
	}
	sum := 0.0
	for _, r := range reductions {
		sum += r
	}
	if avg := sum / float64(len(reductions)); avg < 0.8 {
		t.Fatalf("mean telemetry size reduction %.2f, want > 0.80 (Fig 14a)", avg)
	}
}

func TestFig7QuickSweepRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	cfg := Fig7Config{EpochBits: []uint{17}, Factors: []float64{2}, Trials: 1}
	cells, table, err := Fig7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != len(AnomalyScenarios()) {
		t.Fatalf("cells = %d", len(cells))
	}
	if !strings.Contains(table.String(), "incast") {
		t.Fatalf("table:\n%s", table)
	}
}

func TestFig12CaseStudies(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	out, err := Fig12()
	if err != nil {
		t.Fatal(err)
	}
	for _, scen := range EvalScenarios() {
		if !strings.Contains(out, scen) {
			t.Fatalf("case studies missing %s", scen)
		}
	}
	if !strings.Contains(out, "provenance graph") {
		t.Fatal("case studies missing graphs")
	}
}

func TestPollerLatencyModel(t *testing.T) {
	s := PollerLatency().String()
	if !strings.Contains(s, "80.000ms") || !strings.Contains(s, "120.000ms") {
		t.Fatalf("latency model does not match the paper's 80/120 ms:\n%s", s)
	}
}

func TestBinaryMeterAblationDegrades(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	// The 1-bit meter must not crash and should not beat the full meter.
	tr, err := RunTrial(DefaultTrialConfig(workload.NameIncast, 1))
	if err != nil {
		t.Fatal(err)
	}
	full := tr.Score
	bin := tr.ScoreWithBinaryMeter()
	if !full.Correct {
		t.Skip("base trial incorrect; ablation comparison meaningless")
	}
	_ = bin // correctness may or may not survive; the API must work
	if bin.Result == nil && bin.Detected {
		t.Fatal("inconsistent ablation score")
	}
}

package experiments

import (
	"testing"

	"hawkeye/internal/cluster"
	"hawkeye/internal/core"
	"hawkeye/internal/diagnosis"
	"hawkeye/internal/host"
	"hawkeye/internal/metrics"
	"hawkeye/internal/packet"
	"hawkeye/internal/sim"
	"hawkeye/internal/topo"
	"hawkeye/internal/workload"
)

// TestConcurrentAnomalies exercises §3.4's claim that Hawkeye handles
// simultaneous NPAs: per-victim dedup keeps the polling bounded, nearby
// diagnoses share register syncs, and each complaint still resolves to
// its own root cause. Two independent anomalies run at the same instant
// on one fabric — the stock incast (bursts inside pod 2, victims from
// pod 0) and a PFC storm with rogue in pod 3 and senders in pod 1, so
// their PFC spreading trees touch disjoint core ports.
func TestConcurrentAnomalies(t *testing.T) {
	ft, err := topo.NewFatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	routing := topo.ComputeRouting(ft.Topology)
	ccfg := cluster.DefaultConfig(ft.Topology)
	ccfg.Seed = 1
	ccfg.Host.Agent.RTTFactor = 2
	cl := cluster.New(ft.Topology, routing, ccfg)

	score := core.DefaultConfig()
	score.Collect.BaseLatency = 200 * sim.Microsecond
	score.Collect.PerEpochLatency = 50 * sim.Microsecond
	sys, err := core.Install(cl, score)
	if err != nil {
		t.Fatal(err)
	}

	params := workload.DefaultParams(score.Telemetry.EpochSize())
	incast := workload.BuildIncast(cl, ft, params)

	// Hand-rolled storm decoupled from the incast: rogue in pod 3,
	// senders in pod 1 (the stock BuildStorm sources from pod 0, which
	// the incast victims also use).
	rogue := ft.PodHosts[3][0]
	storm := &workload.GroundTruth{
		Scenario:        "concurrent-storm",
		Type:            diagnosis.TypePFCStorm,
		Injector:        rogue,
		InitialSwitches: map[topo.NodeID]bool{ft.Edge[3][0]: true},
		Victims:         make(map[packet.FiveTuple]bool),
		AnomalyAt:       incast.AnomalyAt,
	}
	cl.Hosts[rogue].InjectPFC(storm.AnomalyAt, storm.AnomalyAt+params.InjectFor, packet.MaxPauseQuanta)
	for _, src := range []topo.NodeID{ft.PodHosts[1][0], ft.PodHosts[1][1]} {
		f := cl.StartFlowRate(src, rogue, 40_000_000, storm.AnomalyAt-300*sim.Microsecond, 25e9)
		storm.Victims[f.Tuple] = true
	}

	var triggers []host.Trigger
	sys.OnTrigger = func(tr host.Trigger) { triggers = append(triggers, tr) }

	cl.Run(incast.AnomalyAt + 15*sim.Millisecond)
	results := sys.DiagnoseAll()

	sc := metrics.DefaultScoreConfig()
	incastScore := metrics.ScoreResults(sc, results, incast, cl.Topo)
	stormScore := metrics.ScoreResults(sc, results, storm, cl.Topo)
	if !incastScore.Correct {
		t.Errorf("incast not diagnosed alongside the storm: %s", incastScore.Reason)
	}
	if !stormScore.Correct {
		t.Errorf("storm not diagnosed alongside the incast: %s", stormScore.Reason)
	}

	// Both anomalies triggered — the detection path separated them.
	var incastTrig, stormTrig bool
	for _, tr := range triggers {
		incastTrig = incastTrig || incast.Victims[tr.Victim]
		stormTrig = stormTrig || storm.Victims[tr.Victim]
	}
	if !incastTrig || !stormTrig {
		t.Fatalf("victim triggers: incast=%v storm=%v, want both", incastTrig, stormTrig)
	}

	// §3.4 collection dedup: concurrent diagnoses polling overlapping
	// switches share register syncs instead of multiplying them.
	st := sys.Collector.Stats()
	if st.DedupHits == 0 {
		t.Error("no collection dedup across concurrent anomalies; expected overlapping polls to share syncs")
	}
	// Hard bound: at most one collection per switch per dedup interval.
	horizon := incast.AnomalyAt + 15*sim.Millisecond
	perSwitch := int(horizon/sys.Cfg.Collect.Interval) + 1
	if max := perSwitch * len(cl.Switches); st.Collections > max {
		t.Errorf("collections = %d, exceeds the dedup-interval bound %d", st.Collections, max)
	}
}

// TestIncidentAggregation checks the analyzer-side complaint grouping:
// a long-lived incast re-triggers complaints for its whole lifetime, yet
// they collapse to ONE incident anchored at the congested edge.
func TestIncidentAggregation(t *testing.T) {
	tr, err := RunTrial(DefaultTrialConfig(workload.NameIncast, 1))
	if err != nil {
		t.Fatal(err)
	}
	incs := core.GroupIncidents(tr.Results, 2*sim.Millisecond)
	if len(incs) == 0 {
		t.Fatal("no incidents")
	}
	// Every complaint during the anomaly's live window — victims AND the
	// bursts complaining about their own slowdown — must land in the same
	// incident. (Complaints milliseconds later are different events:
	// background noise after the burst drained.)
	live := tr.GT.AnomalyAt + 2*sim.Millisecond
	var home *core.Incident
	for _, inc := range incs {
		for _, r := range inc.Results {
			if tr.GT.Victims[r.Trigger.Victim] && r.Trigger.At >= tr.GT.AnomalyAt && r.Trigger.At < live {
				if home == nil {
					home = inc
				} else if home != inc {
					t.Fatalf("live-window victim complaints split across incidents (%d total)", len(incs))
				}
			}
		}
	}
	if home == nil {
		t.Fatal("no incident contains a ground-truth victim complaint")
	}
	if len(home.Results) < 2 {
		t.Fatalf("incident has %d complaints; the incast should trigger several flows", len(home.Results))
	}
	if home.Type != tr.Score.Result.Diagnosis.Type {
		t.Fatalf("incident type %v != scored %v", home.Type, tr.Score.Result.Diagnosis.Type)
	}
}

package experiments

import (
	"runtime"
	"testing"
	"time"
)

// BenchmarkEvalRunSerial is the paper's full evaluation sweep (one seed
// per scenario) on the serial reference path — the denominator for the
// parallel speedup.
func BenchmarkEvalRunSerial(b *testing.B) {
	r := NewRunner(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := r.RunEval(1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvalRunSpeedup times the same sweep serial then on a
// full-width pool (one op covers both) and asserts the scaling contract
// loosely: with 8+ cores the trial-level fan-out must be at least 3x
// faster than serial (trials are coordination-free, so anything less
// means the Runner is serializing). On smaller machines the ratio is
// reported as a metric but not asserted.
func BenchmarkEvalRunSpeedup(b *testing.B) {
	procs := runtime.GOMAXPROCS(0)
	r := NewRunner(procs)
	serial := NewRunner(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		if _, err := serial.RunEval(1); err != nil {
			b.Fatal(err)
		}
		serialDur := time.Since(t0)
		t0 = time.Now()
		if _, err := r.RunEval(1); err != nil {
			b.Fatal(err)
		}
		parallelDur := time.Since(t0)
		speedup := float64(serialDur) / float64(parallelDur)
		b.ReportMetric(speedup, "speedup")
		if procs >= 8 && speedup < 3 {
			b.Errorf("speedup = %.2fx with GOMAXPROCS=%d, want >= 3x", speedup, procs)
		}
	}
}

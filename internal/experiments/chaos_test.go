package experiments

import (
	"strings"
	"testing"

	"hawkeye/internal/chaos"
	"hawkeye/internal/workload"
)

// renderTrial flattens everything diagnosis-visible into one string:
// every diagnosis report (confidence and missing-evidence lines
// included) plus the provenance graphs they were drawn from.
func renderTrial(tr *Trial) string {
	var b strings.Builder
	for _, res := range tr.Results {
		b.WriteString(res.Diagnosis.String())
		if res.Graph != nil {
			b.WriteString(res.Graph.String())
		}
	}
	return b.String()
}

// TestChaosDeterminism: same seed + same fault schedule => byte-identical
// diagnosis output, down to the confidence scores. This is the replay
// contract that makes chaos runs debuggable.
func TestChaosDeterminism(t *testing.T) {
	run := func() (*Trial, string) {
		cfg := DefaultTrialConfig(workload.NameIncast, 1)
		sched, err := chaos.ParseSchedule("poll-loss=0.1,tel-loss=0.3,meter-corrupt=0.1,collect-drop=0.2,collect-lag=300us")
		if err != nil {
			t.Fatal(err)
		}
		cfg.Chaos = sched
		tr, err := RunTrial(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return tr, renderTrial(tr)
	}
	tr1, out1 := run()
	tr2, out2 := run()
	if out1 != out2 {
		t.Fatalf("same seed + schedule produced different output:\n--- run1 ---\n%s\n--- run2 ---\n%s", out1, out2)
	}
	if out1 == "" {
		t.Fatal("chaos trial produced no diagnosis output to compare")
	}
	if tr1.Chaos == nil || tr2.Chaos == nil {
		t.Fatal("chaos engine not installed")
	}
	if tr1.Chaos.Counters != tr2.Chaos.Counters {
		t.Fatalf("fault replay diverged:\n  %v\n  %v", tr1.Chaos.Counters, tr2.Chaos.Counters)
	}
	if c := tr1.Chaos.Counters; c.EpochsDropped == 0 || c.DeliveriesDropped == 0 {
		t.Fatalf("schedule injected nothing: %v", c)
	}
}

// TestRobustnessConfidenceSweep sweeps telemetry loss 0 -> 50% and checks
// the degraded-mode invariants: confidence falls (never rises) with the
// fault rate, and a wrong diagnosis is never graded high-confidence.
func TestRobustnessConfidenceSweep(t *testing.T) {
	// Two trials per point: seed 2's rate-0.10 trial is the historical
	// regression where lost epochs erased the contention evidence and the
	// walk concluded host injection — it must not be graded high.
	curve, err := RunRobustnessCurve(workload.NameIncast, 1, []float64{0, 0.1, 0.25, 0.5}, 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", curve.Table())
	if len(curve.Points) != 4 {
		t.Fatalf("points = %d", len(curve.Points))
	}
	for _, p := range curve.Points {
		if p.HighConfWrong != 0 {
			t.Errorf("rate %.2f: %d wrong diagnoses graded high-confidence", p.FaultRate, p.HighConfWrong)
		}
	}
	for i := 1; i < len(curve.Points); i++ {
		prev, cur := curve.Points[i-1], curve.Points[i]
		// Small tolerance: the assessment is multiplicative over several
		// evidence channels and one channel can dominate a single trial.
		if cur.AvgConfidence > prev.AvgConfidence+0.05 {
			t.Errorf("confidence rose with fault rate: %.2f@%.2f -> %.2f@%.2f",
				prev.AvgConfidence, prev.FaultRate, cur.AvgConfidence, cur.FaultRate)
		}
	}
	first, last := curve.Points[0], curve.Points[len(curve.Points)-1]
	if last.AvgConfidence >= first.AvgConfidence {
		t.Errorf("confidence did not degrade across the sweep: %.2f -> %.2f",
			first.AvgConfidence, last.AvgConfidence)
	}
}

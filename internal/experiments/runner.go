package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Runner fans independent deterministic trials out across a worker pool.
//
// Every sweep in this package is dozens of `RunTrial` calls that share
// nothing: each trial builds its own engine, cluster and seed-forked
// sim.Rand from its TrialConfig. That makes trial-level parallelism free
// of coordination — the only obligations are (1) bounded in-flight
// trials, because a live trial holds a whole fat-tree cluster, and
// (2) results collected in submission (seed) order, so a parallel sweep
// is byte-identical to the serial one at any worker count.
//
// The zero value is ready to use and sizes the pool to
// runtime.GOMAXPROCS(0).
type Runner struct {
	// Workers bounds the number of in-flight trials. <= 0 means
	// GOMAXPROCS; 1 degenerates to the plain serial loop.
	Workers int
}

// NewRunner returns a runner with the given pool size (<= 0 means
// GOMAXPROCS).
func NewRunner(workers int) *Runner { return &Runner{Workers: workers} }

// workers resolves the effective pool size.
func (r *Runner) workers() int {
	if r == nil || r.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return r.Workers
}

// forEach runs fn(0..n-1) across the pool and returns the
// lowest-indexed error. Jobs are handed out by an atomic cursor, so at
// most `workers` trials are in flight; on error the remaining jobs are
// abandoned (in-flight ones finish). With one worker it runs the plain
// serial loop — the reference path the parallel one must match.
func (r *Runner) forEach(n int, fn func(i int) error) error {
	workers := r.workers()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		cursor atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
		mu     sync.Mutex
		errIdx int
		err    error
	)
	cursor.Store(-1)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1))
				if i >= n || failed.Load() {
					return
				}
				if e := fn(i); e != nil {
					mu.Lock()
					if err == nil || i < errIdx {
						err, errIdx = e, i
					}
					mu.Unlock()
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	return err
}

// mapOrdered runs fn(0..n-1) across the pool and returns the results in
// index order, regardless of completion order.
func mapOrdered[T any](r *Runner, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := r.forEach(n, func(i int) error {
		v, e := fn(i)
		if e != nil {
			return e
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// runConfigs executes one trial per config across the pool, results in
// config order.
func (r *Runner) runConfigs(cfgs []TrialConfig) ([]*Trial, error) {
	return mapOrdered(r, len(cfgs), func(i int) (*Trial, error) {
		return RunTrial(cfgs[i])
	})
}

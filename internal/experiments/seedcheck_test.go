package experiments

import (
	"testing"

	"hawkeye/internal/workload"
)

func TestSeedRobustness(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	// Regression floors over seeds 1-5. The deadlock cases are evidence-
	// lifetime-bound (see EXPERIMENTS.md "honest gaps"): a deadlock
	// freezes only the cycle's ports while the switch's other ports keep
	// writing newer epochs, so initiator evidence survives ~one ring span
	// past the anomaly and late-scored seeds lose it. The floors protect
	// the current operating point without pretending it is perfect.
	minPass := map[string]int{
		workload.NameIncast:        5,
		workload.NameStorm:         4,
		workload.NameInLoop:        2,
		workload.NameOutLoopInject: 4,
		workload.NameOutLoopBurst:  4,
		workload.NameNormal:        5,
		// Host pathologies: counter-corroborated attribution is exact on
		// every probed seed; hold the floor there.
		workload.NameSlowReceiver:   5,
		workload.NameCacheThrash:    5,
		workload.NameHostPauseStorm: 5,
	}
	for _, name := range workload.AllScenarios() {
		pass := 0
		for seed := uint64(1); seed <= 5; seed++ {
			tr, err := RunTrial(DefaultTrialConfig(name, seed))
			if err != nil {
				t.Fatal(err)
			}
			if tr.Score.Correct {
				pass++
			} else {
				t.Logf("%s seed=%d: %s", name, seed, tr.Score.Reason)
			}
		}
		t.Logf("%s: %d/5 correct", name, pass)
		if pass < minPass[name] {
			t.Errorf("%s: %d/5 correct, below the %d/5 regression floor", name, pass, minPass[name])
		}
	}
}

package experiments

import (
	"fmt"

	"hawkeye/internal/chaos"
	"hawkeye/internal/diagnosis"
	"hawkeye/internal/metrics"
	"hawkeye/internal/workload"
)

// HostEval is one pass over the mixed host/network scenario set: the
// per-scenario precision/recall plus the host-attribution ledger — how
// often a host-caused anomaly was pinned on the right host with the
// right pathology.
type HostEval struct {
	Scenarios []string
	PR        map[string]metrics.PR

	// HostTrials / HostCorrect count only the host-pathology scenarios;
	// their ratio is the attribution accuracy the host-agent channel is
	// accountable for.
	HostTrials  int
	HostCorrect int
}

// AttributionAccuracy is the fraction of host-caused anomalies diagnosed
// with the correct pathology kind at the correct host.
func (e *HostEval) AttributionAccuracy() float64 {
	if e.HostTrials == 0 {
		return 0
	}
	return float64(e.HostCorrect) / float64(e.HostTrials)
}

// Table renders the mixed evaluation.
func (e *HostEval) Table() *metrics.Table {
	table := &metrics.Table{
		Title:   "Mixed host/network evaluation",
		Headers: []string{"scenario", "precision", "recall"},
	}
	for _, scen := range e.Scenarios {
		pr := e.PR[scen]
		table.AddRow(scen,
			fmt.Sprintf("%.2f", pr.Precision()),
			fmt.Sprintf("%.2f", pr.Recall()))
	}
	table.AddRow("host attribution", fmt.Sprintf("%.2f", e.AttributionAccuracy()), "-")
	return table
}

// RunHostEval executes `trials` traces per mixed scenario at the default
// operating point (host agents enabled) on the default worker pool.
func RunHostEval(trials int) (*HostEval, error) {
	return NewRunner(0).RunHostEval(trials)
}

// RunHostEval executes the mixed evaluation pass on this runner's pool.
func (r *Runner) RunHostEval(trials int) (*HostEval, error) {
	scens := workload.MixedScenarios()
	var cfgs []TrialConfig
	for _, scen := range scens {
		for seed := uint64(1); seed <= uint64(trials); seed++ {
			cfgs = append(cfgs, DefaultTrialConfig(scen, seed))
		}
	}
	scores, err := mapOrdered(r, len(cfgs), func(i int) (metrics.TrialScore, error) {
		tr, err := RunTrial(cfgs[i])
		if err != nil {
			return metrics.TrialScore{}, err
		}
		return tr.Score, nil
	})
	if err != nil {
		return nil, err
	}
	hostScen := make(map[string]bool)
	for _, s := range workload.HostScenarios() {
		hostScen[s] = true
	}
	eval := &HostEval{Scenarios: scens, PR: make(map[string]metrics.PR, len(scens))}
	for i, s := range scores {
		scen := cfgs[i].Scenario
		pr := eval.PR[scen]
		pr.Add(s)
		eval.PR[scen] = pr
		if hostScen[scen] {
			eval.HostTrials++
			if s.Correct {
				eval.HostCorrect++
			}
		}
	}
	return eval, nil
}

// MixedRobustnessSchedule builds the fault schedule for one point of the
// host-telemetry robustness sweep: host-agent snapshot loss at the given
// rate, with a quarter of the surviving snapshots corrupted (a flaky
// agent both misses deadlines and ships damaged counters).
func MixedRobustnessSchedule(rate float64) *chaos.Schedule {
	return &chaos.Schedule{
		HostReportLoss:    rate,
		HostReportCorrupt: rate / 4,
	}
}

// RunMixedRobustnessCurve sweeps host-telemetry loss over the mixed
// host/network workload set and folds one curve per rate: every scenario
// contributes `trials` seeds to each point, so a point reflects the
// fleet-wide confidence under that loss rate, not one pathology's.
func RunMixedRobustnessCurve(seed uint64, rates []float64, trials int) (*metrics.RobustnessCurve, error) {
	return NewRunner(0).RunMixedRobustnessCurve(seed, rates, trials)
}

// RunMixedRobustnessCurve runs the sweep on this runner's pool. Chaos
// seeds derive from trial seeds, so the folded curve is identical at any
// worker count.
func (r *Runner) RunMixedRobustnessCurve(seed uint64, rates []float64, trials int) (*metrics.RobustnessCurve, error) {
	scens := workload.MixedScenarios()
	perRate := len(scens) * trials
	n := len(rates) * perRate
	samples, err := mapOrdered(r, n, func(i int) (robustnessSample, error) {
		rate := rates[i/perRate]
		scen := scens[(i%perRate)/trials]
		cfg := DefaultTrialConfig(scen, seed+uint64(i%trials))
		cfg.Chaos = MixedRobustnessSchedule(rate)
		tr, err := RunTrial(cfg)
		if err != nil {
			return robustnessSample{}, err
		}
		s := robustnessSample{score: tr.Score}
		if tr.Score.Result != nil {
			d := tr.Score.Result.Diagnosis
			s.hasResult = true
			s.confidence = d.ConfidenceScore
			s.highConfWrong = !tr.Score.Correct && d.Confidence == diagnosis.ConfHigh
		}
		return s, nil
	})
	if err != nil {
		return nil, err
	}
	curve := &metrics.RobustnessCurve{Name: "mixed-host"}
	for ri, rate := range rates {
		pt := metrics.RobustnessPoint{FaultRate: rate}
		confSum, confN := 0.0, 0
		for t := 0; t < perRate; t++ {
			s := samples[ri*perRate+t]
			pt.PR.Add(s.score)
			pt.Trials++
			if s.hasResult {
				confSum += s.confidence
				confN++
				if s.highConfWrong {
					pt.HighConfWrong++
				}
			}
		}
		if confN > 0 {
			pt.AvgConfidence = confSum / float64(confN)
		}
		curve.Points = append(curve.Points, pt)
	}
	return curve, nil
}

package experiments

import (
	"fmt"

	"hawkeye/internal/cluster"
	"hawkeye/internal/core"
	"hawkeye/internal/diagnosis"
	"hawkeye/internal/metrics"
	"hawkeye/internal/packet"
	"hawkeye/internal/sim"
	"hawkeye/internal/topo"
	"hawkeye/internal/workload"
)

// ECMP hash imbalance (§2 motivates load imbalance as an NPA source):
// several elephants whose 5-tuples happen to polarize onto the SAME
// uplink overload it while the sibling uplinks idle. Nothing is
// misconfigured — the routing is healthy, the hashes are just unlucky.
// (This fabric's switches all hash identically, the textbook cause of
// polarization: a flow choosing index 0 at its edge also chooses index 0
// at the aggregation, so parity-0 cross-pod flows pile onto one core
// uplink.) PFC spreads the hot uplink's congestion to flows that chose
// other paths; Hawkeye should classify it as PFC backpressure contention
// with the polarized elephants as culprits at the imbalanced uplink.

// predictTuple returns the 5-tuple the next flow from src to dst will use.
func predictTuple(cl *cluster.Cluster, src, dst topo.NodeID) packet.FiveTuple {
	return packet.FiveTuple{
		SrcIP:   cl.Topo.Node(src).IP,
		DstIP:   cl.Topo.Node(dst).IP,
		SrcPort: cl.Hosts[src].PeekSrcPort(),
		DstPort: 4791,
		Proto:   packet.ProtoUDP,
	}
}

// selectsPorts reports whether the flow's ECMP choices match every
// (switch, egress port) pin.
func selectsPorts(cl *cluster.Cluster, ft packet.FiveTuple, pins map[topo.NodeID]int) bool {
	dst, ok := cl.Topo.HostByIP(ft.DstIP)
	if !ok {
		return false
	}
	for sw, want := range pins {
		got, ok := cl.Routing.SelectPort(sw, dst, ft.Hash())
		if !ok || got != want {
			return false
		}
	}
	return true
}

// findDst searches remote pods for a destination whose predicted tuple
// from src satisfies the pins and is not already used.
func findDst(cl *cluster.Cluster, ftree *topo.FatTree, src topo.NodeID, pins map[topo.NodeID]int, used map[topo.NodeID]bool) (topo.NodeID, error) {
	for pod := 1; pod < ftree.K; pod++ {
		for _, dst := range ftree.PodHosts[pod] {
			if used[dst] {
				continue
			}
			if selectsPorts(cl, predictTuple(cl, src, dst), pins) {
				used[dst] = true
				return dst, nil
			}
		}
	}
	return 0, fmt.Errorf("experiments: no destination polarizes %v onto the pinned ports", src)
}

// portToward finds node a's egress port whose peer is b.
func portToward(t *topo.Topology, a, b topo.NodeID) int {
	for pi, p := range t.Node(a).Ports {
		if p.Peer == b {
			return pi
		}
	}
	panic(fmt.Sprintf("experiments: no link %d->%d", a, b))
}

// RunECMPImbalance crafts and scores the hash-polarization anomaly.
func RunECMPImbalance(seed uint64) (metrics.TrialScore, error) {
	ftree, err := topo.NewFatTree(4)
	if err != nil {
		return metrics.TrialScore{}, err
	}
	routing := topo.ComputeRouting(ftree.Topology)
	ccfg := cluster.DefaultConfig(ftree.Topology)
	ccfg.Seed = seed
	ccfg.Host.Agent.RTTFactor = 2
	// The imbalance must persist for the complaint to be diagnosable:
	// polarized elephants in production stay fast because DCQCN reacts to
	// the marks of the SHARED port only after the damage spreads; here we
	// disable marking outright (the out-of-loop-contention scenario sets
	// the same precedent).
	ccfg.Switch.EnableECN = false
	cl := cluster.New(ftree.Topology, routing, ccfg)

	score := core.DefaultConfig()
	score.Collect.BaseLatency = 200 * sim.Microsecond
	score.Collect.PerEpochLatency = 50 * sim.Microsecond
	sys, err := core.Install(cl, score)
	if err != nil {
		return metrics.TrialScore{}, err
	}

	t := ftree.Topology
	agg := ftree.Agg[0][0]
	hotUp := portToward(t, agg, ftree.Core[0]) // the uplink everything polarizes onto

	params := workload.DefaultParams(score.Telemetry.EpochSize())
	gt := &workload.GroundTruth{
		Scenario:        "ecmp-imbalance",
		Type:            diagnosis.TypePFCContention,
		Culprits:        make(map[packet.FiveTuple]bool),
		InitialSwitches: map[topo.NodeID]bool{agg: true},
		Victims:         make(map[packet.FiveTuple]bool),
		AnomalyAt:       params.AnomalyStart(),
	}

	used := map[topo.NodeID]bool{}
	// Three elephants from three pod-0 hosts, each hash-selected to take
	// agg0-0 at its edge AND core0 at agg0-0 — all three on one uplink.
	elephantSrcs := []topo.NodeID{ftree.PodHosts[0][0], ftree.PodHosts[0][2], ftree.PodHosts[0][3]}
	for _, src := range elephantSrcs {
		srcEdge := ftree.Edge[0][0]
		if src == ftree.PodHosts[0][2] || src == ftree.PodHosts[0][3] {
			srcEdge = ftree.Edge[0][1]
		}
		pins := map[topo.NodeID]int{
			srcEdge: portToward(t, srcEdge, agg),
			agg:     hotUp,
		}
		dst, err := findDst(cl, ftree, src, pins, used)
		if err != nil {
			return metrics.TrialScore{}, err
		}
		e := cl.StartFlowRate(src, dst, 50_000_000, gt.AnomalyAt, 45e9)
		gt.Culprits[e.Tuple] = true
		// The polarized elephants are their own first victims: each runs
		// at 45G but drains at a ~33G share of the hot uplink, so their
		// RTTs inflate and their complaints are legitimate triggers.
		gt.Victims[e.Tuple] = true
	}

	// The victim is an INTRA-POD flow: edge0-0 -> agg0-0 -> edge0-1. It
	// shares only the edge->agg link the backpressure pauses and exits
	// downward at the aggregation, never touching the hot uplink — a pure
	// head-of-line victim of the imbalance.
	victimSrc := ftree.PodHosts[0][1] // under edge0-0
	vPins := map[topo.NodeID]int{
		ftree.Edge[0][0]: portToward(t, ftree.Edge[0][0], agg),
	}
	var vDst topo.NodeID
	found := false
	for burns := 0; burns < 16 && !found; burns++ {
		for _, cand := range []topo.NodeID{ftree.PodHosts[0][2], ftree.PodHosts[0][3]} {
			if selectsPorts(cl, predictTuple(cl, victimSrc, cand), vPins) {
				vDst, found = cand, true
				break
			}
		}
		if !found {
			// Burn one source port (changes the hash) with a negligible
			// warm-up flow.
			cl.StartFlow(victimSrc, ftree.PodHosts[0][0], 1000, 0)
		}
	}
	if !found {
		return metrics.TrialScore{}, fmt.Errorf("experiments: no victim tuple takes the paused uplink")
	}
	v := cl.StartFlowRate(victimSrc, vDst, 20_000_000, gt.AnomalyAt-300*sim.Microsecond, 20e9)
	gt.Victims[v.Tuple] = true

	cl.Run(gt.AnomalyAt + 15*sim.Millisecond)
	results := sys.DiagnoseAll()
	return metrics.ScoreResults(metrics.DefaultScoreConfig(), results, gt, cl.Topo), nil
}

package experiments

import (
	"testing"

	"hawkeye/internal/baselines"
	"hawkeye/internal/workload"
)

// TestScenariosDiagnoseCorrectly is the central correctness check: every
// crafted anomaly on the fat-tree must be detected and diagnosed with
// the right type and root cause at the default operating point.
func TestScenariosDiagnoseCorrectly(t *testing.T) {
	for _, name := range workload.AllScenarios() {
		name := name
		t.Run(name, func(t *testing.T) {
			tr, err := RunTrial(DefaultTrialConfig(name, 1))
			if err != nil {
				t.Fatal(err)
			}
			if !tr.Score.Detected {
				t.Fatalf("anomaly not detected: %s (triggers=%d)", tr.Score.Reason, len(tr.Sys.Triggers()))
			}
			if !tr.Score.Correct {
				t.Fatalf("misdiagnosed: %s\n%v\n%v", tr.Score.Reason,
					tr.Score.Result.Diagnosis, tr.Score.Result.Graph)
			}
		})
	}
}

func TestBaselineAccuracyOrdering(t *testing.T) {
	// On the incast scenario: Hawkeye and full-polling correct; the
	// PFC-blind baselines must NOT identify the PFC anomaly type.
	tr, err := RunTrial(DefaultTrialConfig(workload.NameIncast, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Score.Correct {
		t.Skipf("hawkeye itself failed on seed 2: %s", tr.Score.Reason)
	}
	if s := tr.BaselineScore(baselines.KindFullPolling); !s.Correct {
		t.Errorf("full-polling should match hawkeye: %s", s.Reason)
	}
	for _, k := range []baselines.Kind{baselines.KindSpiderMon, baselines.KindNetSight} {
		if s := tr.BaselineScore(k); s.Correct {
			t.Errorf("%v diagnosed a PFC anomaly without PFC visibility", k)
		}
	}
}

func TestBaselineOverheadOrdering(t *testing.T) {
	tr, err := RunTrial(DefaultTrialConfig(workload.NameIncast, 3))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Score.Result == nil {
		t.Skip("no trigger on seed 3")
	}
	hk := tr.BaselineOverhead(baselines.KindHawkeye)
	full := tr.BaselineOverhead(baselines.KindFullPolling)
	ns := tr.BaselineOverhead(baselines.KindNetSight)
	if hk.CollectedBytes == 0 {
		t.Fatal("hawkeye collected nothing")
	}
	if full.CollectedBytes < hk.CollectedBytes {
		t.Errorf("full polling (%d B) cheaper than hawkeye (%d B)", full.CollectedBytes, hk.CollectedBytes)
	}
	if ns.CollectedBytes < full.CollectedBytes {
		t.Errorf("netsight postcards (%d B) cheaper than full polling (%d B)", ns.CollectedBytes, full.CollectedBytes)
	}
	if full.SwitchesTouched != 20 {
		t.Errorf("full polling touched %d switches, want 20", full.SwitchesTouched)
	}
	if hk.SwitchesTouched >= full.SwitchesTouched {
		t.Errorf("hawkeye touched %d switches, full %d", hk.SwitchesTouched, full.SwitchesTouched)
	}
}

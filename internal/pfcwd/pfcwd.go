// Package pfcwd implements a PFC storm watchdog in the style of the ones
// shipping in commodity switch OSes (SONiC's pfcwd, Arista's PFC watchdog):
// an egress queue continuously paused beyond a detection time is declared
// stormed, its packets are discarded — queued and arriving — until the
// pause clears for a restoration time.
//
// The watchdog is the mitigation the paper positions Hawkeye against
// (§2.2): dropping lossless traffic breaks a pause storm or deadlock and
// restores the fabric, but it destroys the RDMA lossless guarantee for
// the affected queues and reveals nothing about WHY the pause persisted.
// Hawkeye's provenance answers the why; this package exists so the
// repository can demonstrate both halves of that comparison.
package pfcwd

import (
	"fmt"

	"hawkeye/internal/device"
	"hawkeye/internal/packet"
	"hawkeye/internal/sim"
)

// Config tunes the watchdog timers. Production defaults are hundreds of
// milliseconds; the simulator's pause storms develop in microseconds, so
// the defaults here are scaled to the fabric's timescales while keeping
// the production ordering Interval < DetectionTime <= RestorationTime.
type Config struct {
	// Interval is the polling period of the watchdog loop.
	Interval sim.Time
	// DetectionTime is how long an egress queue must stay continuously
	// paused before the watchdog declares a storm.
	DetectionTime sim.Time
	// RestorationTime is how long the queue must stay unpaused before the
	// watchdog stops discarding and restores lossless service.
	RestorationTime sim.Time
	// Class is the lossless class the watchdog protects.
	Class uint8
}

// DefaultConfig returns timers scaled for the simulated fabric (100 Gbps,
// ~335 µs pause quanta): detection after ~3 full pause refreshes.
func DefaultConfig() Config {
	return Config{
		Interval:        100 * sim.Microsecond,
		DetectionTime:   1 * sim.Millisecond,
		RestorationTime: 400 * sim.Microsecond,
		Class:           packet.ClassLossless,
	}
}

// Validate checks the timer ordering.
func (c Config) Validate() error {
	if c.Interval <= 0 {
		return fmt.Errorf("pfcwd: non-positive interval %v", c.Interval)
	}
	if c.DetectionTime < c.Interval {
		return fmt.Errorf("pfcwd: detection time %v below poll interval %v", c.DetectionTime, c.Interval)
	}
	if c.RestorationTime < c.Interval {
		return fmt.Errorf("pfcwd: restoration time %v below poll interval %v", c.RestorationTime, c.Interval)
	}
	return nil
}

// Stats counts watchdog activity.
type Stats struct {
	// Storms is the number of storm declarations (per port event, not per
	// packet).
	Storms int
	// Restores is the number of queues returned to lossless service.
	Restores int
	// DroppedQueued is the number of packets flushed from stormed queues
	// at declaration time (arriving packets dropped during a storm are
	// counted by the switch's WatchdogDrops).
	DroppedQueued int
}

// Watchdog polls one switch's egress queues for persistent pause.
type Watchdog struct {
	sw  *device.Switch
	eng *sim.Engine
	cfg Config

	pausedFor []sim.Time // consecutive observed pause time per port
	clearFor  []sim.Time // consecutive observed unpaused time, while stormed
	stormed   []bool

	stats Stats

	// OnStorm, if set, observes each storm declaration.
	OnStorm func(port int, now sim.Time)
	// OnRestore, if set, observes each restoration.
	OnRestore func(port int, now sim.Time)

	stopped bool
}

// Attach installs a watchdog on the switch and starts its polling loop on
// the engine. One watchdog covers all ports of the switch.
func Attach(eng *sim.Engine, sw *device.Switch, cfg Config) (*Watchdog, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := sw.NumPorts()
	w := &Watchdog{
		sw:        sw,
		eng:       eng,
		cfg:       cfg,
		pausedFor: make([]sim.Time, n),
		clearFor:  make([]sim.Time, n),
		stormed:   make([]bool, n),
	}
	eng.After(cfg.Interval, w.poll)
	return w, nil
}

// Stop halts the polling loop after the current tick and lifts any active
// discards so the fabric returns to normal forwarding.
func (w *Watchdog) Stop() {
	w.stopped = true
	for p := range w.stormed {
		if w.stormed[p] {
			w.restore(p)
		}
	}
}

// Stats returns the activity counters.
func (w *Watchdog) Stats() Stats { return w.stats }

// Stormed reports whether a port is currently under storm mitigation.
func (w *Watchdog) Stormed(port int) bool { return w.stormed[port] }

func (w *Watchdog) poll() {
	if w.stopped {
		return
	}
	now := w.eng.Now()
	for p := 0; p < w.sw.NumPorts(); p++ {
		eg := w.sw.EgressAt(p)
		paused := eg.Paused(w.cfg.Class)
		if w.stormed[p] {
			if paused {
				w.clearFor[p] = 0
				continue
			}
			w.clearFor[p] += w.cfg.Interval
			if w.clearFor[p] >= w.cfg.RestorationTime {
				w.restore(p)
				if w.OnRestore != nil {
					w.OnRestore(p, now)
				}
			}
			continue
		}
		if !paused {
			w.pausedFor[p] = 0
			continue
		}
		w.pausedFor[p] += w.cfg.Interval
		if w.pausedFor[p] >= w.cfg.DetectionTime {
			w.storm(p)
			if w.OnStorm != nil {
				w.OnStorm(p, now)
			}
		}
	}
	w.eng.After(w.cfg.Interval, w.poll)
}

// storm declares (port, class) stormed: flush the queue, discard arrivals.
func (w *Watchdog) storm(port int) {
	w.stormed[port] = true
	w.clearFor[port] = 0
	w.stats.Storms++
	w.stats.DroppedQueued += w.sw.DropQueued(port, w.cfg.Class)
	w.sw.SetWatchdogDrop(port, w.cfg.Class, true)
}

// restore returns (port, class) to lossless service.
func (w *Watchdog) restore(port int) {
	w.stormed[port] = false
	w.pausedFor[port] = 0
	w.stats.Restores++
	w.sw.SetWatchdogDrop(port, w.cfg.Class, false)
}

package pfcwd

import (
	"testing"

	"hawkeye/internal/cluster"
	"hawkeye/internal/packet"
	"hawkeye/internal/sim"
	"hawkeye/internal/topo"
)

func chainCluster(t *testing.T) (*cluster.Cluster, *topo.Dumbbell) {
	t.Helper()
	d, err := topo.NewChain(2, 2, topo.DefaultBandwidth, topo.DefaultDelay)
	if err != nil {
		t.Fatal(err)
	}
	r := topo.ComputeRouting(d.Topology)
	return cluster.New(d.Topology, r, cluster.DefaultConfig(d.Topology)), d
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig()
	bad.DetectionTime = bad.Interval / 2
	if bad.Validate() == nil {
		t.Error("detection below interval accepted")
	}
	bad = DefaultConfig()
	bad.Interval = 0
	if bad.Validate() == nil {
		t.Error("zero interval accepted")
	}
	bad = DefaultConfig()
	bad.RestorationTime = 0
	if bad.Validate() == nil {
		t.Error("zero restoration accepted")
	}
}

func TestStormDetectionAndRestore(t *testing.T) {
	cl, d := chainCluster(t)
	sw := cl.Switches[d.Switches[0]]
	hostPort := -1
	for p := 0; p < sw.NumPorts(); p++ {
		if d.Topology.IsHostFacing(sw.ID, p) {
			hostPort = p
			break
		}
	}
	if hostPort < 0 {
		t.Fatal("no host-facing port on chain switch")
	}

	cfg := DefaultConfig()
	w, err := Attach(cl.Eng, sw, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// A malfunctioning receiver keeps the egress paused: refresh the pause
	// every 200 µs for 3 ms, far past the 1 ms detection time.
	eg := sw.EgressAt(hostPort)
	for at := sim.Time(0); at < 3*sim.Millisecond; at += 200 * sim.Microsecond {
		cl.Eng.At(at, func() { eg.Pause(packet.ClassLossless, packet.MaxPauseQuanta) })
	}
	// Queue a few packets behind the pause so the flush has work to do
	// (at t=10µs, after the first pause event is active).
	cl.Eng.At(10*sim.Microsecond, func() {
		for i := 0; i < 5; i++ {
			pkt := &packet.Packet{Type: packet.TypeData, Class: packet.ClassLossless, Size: 1000,
				Flow: packet.FiveTuple{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: 17}}
			sw.EnqueueAt(pkt, -1, hostPort)
		}
	})

	var stormAt, restoreAt sim.Time
	w.OnStorm = func(port int, now sim.Time) {
		if port == hostPort && stormAt == 0 {
			stormAt = now
		}
	}
	w.OnRestore = func(port int, now sim.Time) {
		if port == hostPort && restoreAt == 0 {
			restoreAt = now
		}
	}

	cl.Run(8 * sim.Millisecond)

	st := w.Stats()
	if st.Storms == 0 {
		t.Fatal("persistent pause not declared a storm")
	}
	if stormAt < cfg.DetectionTime {
		t.Fatalf("storm declared at %v, before the %v detection time", stormAt, cfg.DetectionTime)
	}
	if st.DroppedQueued != 5 {
		t.Fatalf("flushed %d packets, want the 5 queued", st.DroppedQueued)
	}
	if eg.QueuePackets(packet.ClassLossless) != 0 {
		t.Fatal("stormed queue not flushed")
	}
	// The pause stops at 3 ms (+ up to a quantum); restoration follows.
	if st.Restores == 0 {
		t.Fatal("queue never restored after the pause cleared")
	}
	if restoreAt < 3*sim.Millisecond {
		t.Fatalf("restored at %v while the pause was still active", restoreAt)
	}
	if w.Stormed(hostPort) {
		t.Fatal("port still marked stormed at the horizon")
	}
}

func TestArrivalsDroppedDuringStorm(t *testing.T) {
	cl, d := chainCluster(t)
	sw := cl.Switches[d.Switches[0]]
	w, err := Attach(cl.Eng, sw, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	eg := sw.EgressAt(0)
	// Hold the pause the whole run.
	for at := sim.Time(0); at < 6*sim.Millisecond; at += 200 * sim.Microsecond {
		cl.Eng.At(at, func() { eg.Pause(packet.ClassLossless, packet.MaxPauseQuanta) })
	}
	// Packets arriving after detection (1 ms) must be discarded on arrival.
	for at := 2 * sim.Millisecond; at < 4*sim.Millisecond; at += 100 * sim.Microsecond {
		cl.Eng.At(at, func() {
			pkt := &packet.Packet{Type: packet.TypeData, Class: packet.ClassLossless, Size: 1000,
				Flow: packet.FiveTuple{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: 17}}
			sw.EnqueueAt(pkt, -1, 0)
		})
	}
	cl.Run(6 * sim.Millisecond)
	if w.Stats().Storms == 0 {
		t.Fatal("no storm declared")
	}
	if sw.WatchdogDrops == 0 {
		t.Fatal("arrivals during the storm were not discarded")
	}
	if got := eg.QueuePackets(packet.ClassLossless); got != 0 {
		t.Fatalf("%d packets queued behind a stormed port", got)
	}
}

// TestWatchdogBreaksRingDeadlock is the mitigation half of the paper's
// §2.2 comparison: the same forced-clockwise ring deadlock that
// cluster.TestRingDeadlockForms proves is permanent gets broken by the
// watchdog, at the price of dropped lossless packets — and because the
// mitigation cannot touch the root cause (the routing loop), the storm
// recurs after every recovery round. Identifying the root cause is
// Hawkeye's half of the comparison.
func TestWatchdogBreaksRingDeadlock(t *testing.T) {
	type probe struct {
		ackedMid, ackedEnd uint32
		stormsMid, storms  int
		restores           int
		wdDrops            uint64
		stuck              int
	}
	run := func(withWatchdog bool) probe {
		ring, err := topo.NewRing(4, 2, topo.DefaultBandwidth, topo.DefaultDelay)
		if err != nil {
			t.Fatal(err)
		}
		r := topo.ComputeRouting(ring.Topology)
		ring.ForceClockwise(r, nil)
		cl := cluster.New(ring.Topology, r, cluster.DefaultConfig(ring.Topology))
		var dogs []*Watchdog
		if withWatchdog {
			for _, id := range ring.Switches {
				w, err := Attach(cl.Eng, cl.Switches[id], DefaultConfig())
				if err != nil {
					t.Fatal(err)
				}
				dogs = append(dogs, w)
			}
		}
		for i := 0; i < 4; i++ {
			for h := 0; h < 2; h++ {
				cl.StartFlow(ring.HostsAt[i][h], ring.HostsAt[(i+2)%4][h], 2_000_000, 0)
			}
		}
		var p probe
		ackedSum := func() (sum uint32) {
			for _, hs := range ring.HostsAt {
				for _, h := range hs {
					for _, f := range cl.Hosts[h].Flows() {
						sum += f.AckedPackets()
					}
				}
			}
			return sum
		}
		// By 10 ms the deadlock has formed (and, with the watchdog, been
		// broken at least once); measure ACK progress over 10..40 ms.
		cl.Run(10 * sim.Millisecond)
		p.ackedMid = ackedSum()
		for _, w := range dogs {
			p.stormsMid += w.Stats().Storms
		}
		cl.Run(40 * sim.Millisecond)
		p.ackedEnd = ackedSum()
		for _, id := range ring.Switches {
			sw := cl.Switches[id]
			p.wdDrops += sw.WatchdogDrops
			for port := 0; port < sw.NumPorts(); port++ {
				if !ring.Topology.IsHostFacing(id, port) && sw.PauseAsserted(port, packet.ClassLossless) {
					p.stuck++
				}
			}
		}
		for _, w := range dogs {
			p.storms += w.Stats().Storms
			p.restores += w.Stats().Restores
		}
		return p
	}

	base := run(false)
	if base.stuck < 4 {
		t.Fatalf("control run: deadlock did not form (stuck=%d)", base.stuck)
	}
	if base.ackedEnd != base.ackedMid {
		t.Fatalf("control run: acked advanced %d -> %d through a permanent deadlock",
			base.ackedMid, base.ackedEnd)
	}

	wd := run(true)
	if wd.storms == 0 {
		t.Fatal("watchdog never fired on a deadlocked ring")
	}
	if wd.restores == 0 {
		t.Fatal("watchdog never restored a queue after breaking the loop")
	}
	if wd.wdDrops == 0 {
		t.Fatal("mitigation reported no dropped packets — the lossless guarantee should have been sacrificed")
	}
	// Mitigation restores delivery: ACKs keep advancing where the control
	// run froze.
	if wd.ackedEnd <= wd.ackedMid {
		t.Fatalf("no ACK progress after mitigation: %d -> %d", wd.ackedMid, wd.ackedEnd)
	}
	// ...but the root cause (the routing loop) is untouched, so the storm
	// recurs: later windows keep declaring new storms.
	if wd.storms <= wd.stormsMid {
		t.Fatalf("storms did not recur (%d by 10ms, %d by 40ms); the CBD should re-form after every recovery",
			wd.stormsMid, wd.storms)
	}
}

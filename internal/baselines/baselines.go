// Package baselines implements the comparison systems of §4: SpiderMon
// and NetSight from traditional networks, the full-polling and
// victim-only variants derived from Hawkeye (§4.2), and the port-only /
// flow-only telemetry ablations (§4.3, Fig. 10).
//
// Methodology: accuracy differences between these systems stem from what
// information each one collects — which switches, and which telemetry
// fields. A trial therefore runs once with full instrumentation, and each
// baseline diagnoses from a view of the collected reports restricted to
// exactly what that system would have: its collection scope (all
// switches / victim path / PFC-traced set) and its visibility (with or
// without PFC counters, port-level causality, or flow tables). Overheads
// come from each system's published cost model applied to the same trace.
package baselines

import (
	"fmt"

	"hawkeye/internal/telemetry"
	"hawkeye/internal/topo"
)

// Kind enumerates the compared systems.
type Kind int

const (
	// KindHawkeye is the full system (reference point).
	KindHawkeye Kind = iota
	// KindFullPolling collects complete telemetry from every switch.
	KindFullPolling
	// KindVictimOnly collects only the victim flow path's switches.
	KindVictimOnly
	// KindSpiderMon: victim-path flow telemetry, in-band cumulative
	// delay, no PFC visibility.
	KindSpiderMon
	// KindNetSight: per-packet postcards from every switch, no PFC
	// visibility.
	KindNetSight
	// KindPortOnly is the port-level-only telemetry ablation.
	KindPortOnly
	// KindFlowOnly is the flow-level-only telemetry ablation.
	KindFlowOnly
)

// All returns the Fig. 8 comparison set.
func All() []Kind {
	return []Kind{KindHawkeye, KindFullPolling, KindVictimOnly, KindSpiderMon, KindNetSight}
}

// Granularities returns the Fig. 10 ablation set.
func Granularities() []Kind {
	return []Kind{KindHawkeye, KindPortOnly, KindFlowOnly}
}

func (k Kind) String() string {
	switch k {
	case KindHawkeye:
		return "hawkeye"
	case KindFullPolling:
		return "full-polling"
	case KindVictimOnly:
		return "victim-only"
	case KindSpiderMon:
		return "spidermon"
	case KindNetSight:
		return "netsight"
	case KindPortOnly:
		return "port-only"
	case KindFlowOnly:
		return "flow-only"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// View is the per-trial material a baseline can draw from.
type View struct {
	// Traced are the reports Hawkeye's polling actually collected.
	Traced map[topo.NodeID]*telemetry.Report
	// AllSwitches are trigger-time snapshots of every switch.
	AllSwitches map[topo.NodeID]*telemetry.Report
	// VictimPath lists the switches on the triggering victim's path.
	VictimPath []topo.NodeID
}

// Reports returns the report set kind k diagnoses from, with its
// visibility filter applied. The returned reports are deep-filtered
// copies; the originals are never mutated.
func (k Kind) Reports(v View) []*telemetry.Report {
	var scope []*telemetry.Report
	switch k {
	case KindHawkeye, KindPortOnly:
		// Port-only still supports in-network PFC causality analysis
		// (§4.3), so it shares Hawkeye's traced scope.
		for _, r := range v.Traced {
			scope = append(scope, r)
		}
	case KindFullPolling, KindNetSight:
		for _, r := range v.AllSwitches {
			scope = append(scope, r)
		}
	case KindVictimOnly, KindSpiderMon, KindFlowOnly:
		// No PFC tracing: collection cannot leave the victim path.
		for _, id := range v.VictimPath {
			if r, ok := v.AllSwitches[id]; ok {
				scope = append(scope, r)
			}
		}
	}
	out := make([]*telemetry.Report, 0, len(scope))
	for _, r := range scope {
		out = append(out, k.filter(r))
	}
	return out
}

// filter strips the report down to the baseline's visibility.
func (k Kind) filter(r *telemetry.Report) *telemetry.Report {
	switch k {
	case KindHawkeye, KindFullPolling, KindVictimOnly:
		return r // full Hawkeye telemetry
	case KindSpiderMon, KindNetSight:
		return stripPFC(r)
	case KindPortOnly:
		return stripFlows(r)
	case KindFlowOnly:
		return stripPortLevel(r)
	default:
		return r
	}
}

// stripPFC removes everything PFC-related: paused counts, pause status,
// and the causality meter. What remains is what a traditional flow
// monitor records.
func stripPFC(r *telemetry.Report) *telemetry.Report {
	out := *r
	out.Meter = nil
	out.Status = nil
	out.Epochs = make([]telemetry.EpochData, len(r.Epochs))
	for i, ep := range r.Epochs {
		ne := ep
		ne.Flows = make([]telemetry.FlowRecord, len(ep.Flows))
		for j, f := range ep.Flows {
			f.PausedCount = 0
			ne.Flows[j] = f
		}
		ne.Ports = make([]telemetry.PortRecord, len(ep.Ports))
		for j, p := range ep.Ports {
			p.PausedCount = 0
			ne.Ports[j] = p
		}
		out.Epochs[i] = ne
	}
	return &out
}

// stripFlows removes the flow tables (port-only ablation).
func stripFlows(r *telemetry.Report) *telemetry.Report {
	out := *r
	out.Epochs = make([]telemetry.EpochData, len(r.Epochs))
	for i, ep := range r.Epochs {
		ne := ep
		ne.Flows = nil
		out.Epochs[i] = ne
	}
	return &out
}

// stripPortLevel removes port records, the causality meter and the PFC
// status registers (flow-only ablation): flow-level paused counts remain,
// but nothing that would let the analyzer trace spreading between ports.
func stripPortLevel(r *telemetry.Report) *telemetry.Report {
	out := *r
	out.Meter = nil
	out.Status = nil
	out.Epochs = make([]telemetry.EpochData, len(r.Epochs))
	for i, ep := range r.Epochs {
		ne := ep
		ne.Ports = nil
		out.Epochs[i] = ne
	}
	return &out
}

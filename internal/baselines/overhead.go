package baselines

// Cost-model constants from the papers being compared (§4.3).
const (
	// SpiderMonFlowRecordBytes: "SpiderMon collects the flow telemetry
	// along the victim flow path with 36 bytes per flow".
	SpiderMonFlowRecordBytes = 36
	// SpiderMonHeaderBytes: "an extra 16-bit header field in every
	// packet to record the cumulative delay".
	SpiderMonHeaderBytes = 2
	// NetSightPostcardBytes: "about 15 bytes per packet and per average
	// hop count due to the postcard".
	NetSightPostcardBytes = 15
)

// TraceStats summarizes one trial's traffic, the input to the overhead
// models.
type TraceStats struct {
	DataPackets   uint64 // end-to-end data packets sent by hosts
	AvgHops       float64
	Flows         int    // distinct flows observed
	PollingBytes  uint64 // Hawkeye polling traffic over the whole trace
	Diagnoses     int    // detection events in the trace
	VictimPathLen int    // switches on the triggering victim's path
}

// Overhead is the per-diagnosis cost of a system.
type Overhead struct {
	// CollectedBytes is the telemetry volume the analyzer must ingest
	// (processing overhead, Fig. 9a).
	CollectedBytes uint64
	// MonitorWireBytes is the extra traffic the monitoring itself adds
	// to the network (bandwidth overhead, Fig. 9b).
	MonitorWireBytes uint64
	// SwitchesTouched counts switches whose state is collected (Fig. 11).
	SwitchesTouched int
}

// Assess computes the overhead of kind k for one trial.
func (k Kind) Assess(v View, ts TraceStats) Overhead {
	var o Overhead
	switch k {
	case KindHawkeye, KindPortOnly:
		for _, r := range v.Traced {
			o.CollectedBytes += uint64(k.filter(r).WireSize())
		}
		// Polling is on-demand: the per-diagnosis wire cost is the trace's
		// polling traffic amortized over its detection events, unlike the
		// always-on per-packet overhead of SpiderMon/NetSight.
		o.MonitorWireBytes = ts.PollingBytes / uint64(maxInt(ts.Diagnoses, 1))
		o.SwitchesTouched = len(v.Traced)
	case KindFullPolling:
		for _, r := range v.AllSwitches {
			o.CollectedBytes += uint64(r.WireSize())
		}
		// Full polling needs no polling packets: collection is global.
		o.MonitorWireBytes = 0
		o.SwitchesTouched = len(v.AllSwitches)
	case KindVictimOnly, KindFlowOnly:
		for _, id := range v.VictimPath {
			if r, ok := v.AllSwitches[id]; ok {
				o.CollectedBytes += uint64(k.filter(r).WireSize())
			}
		}
		// Polling packets only traverse the victim path; scale the
		// measured Hawkeye polling traffic by the path-length share.
		if n := len(v.Traced); n > 0 {
			o.MonitorWireBytes = ts.PollingBytes * uint64(ts.VictimPathLen) /
				uint64(maxInt(n, ts.VictimPathLen)) / uint64(maxInt(ts.Diagnoses, 1))
		}
		o.SwitchesTouched = len(v.VictimPath)
	case KindSpiderMon:
		// 36 B per flow per victim-path switch.
		o.CollectedBytes = uint64(ts.Flows) * SpiderMonFlowRecordBytes * uint64(ts.VictimPathLen)
		// 2 B in-band header on every data packet at every hop.
		o.MonitorWireBytes = ts.DataPackets * SpiderMonHeaderBytes * uint64(ts.AvgHops)
		o.SwitchesTouched = ts.VictimPathLen
	case KindNetSight:
		// A postcard per packet per hop, both collected and on the wire.
		postcards := uint64(float64(ts.DataPackets) * ts.AvgHops)
		o.CollectedBytes = postcards * NetSightPostcardBytes
		o.MonitorWireBytes = postcards * NetSightPostcardBytes
		o.SwitchesTouched = len(v.AllSwitches)
	}
	return o
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

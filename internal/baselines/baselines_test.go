package baselines

import (
	"testing"

	"hawkeye/internal/packet"
	"hawkeye/internal/telemetry"
	"hawkeye/internal/topo"
)

func sampleReport(sw topo.NodeID) *telemetry.Report {
	ft := packet.FiveTuple{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: 17}
	return &telemetry.Report{
		Switch: sw, NumPorts: 4, NumEpochs: 4, FlowSlots: 64,
		Epochs: []telemetry.EpochData{{
			Flows: []telemetry.FlowRecord{{Tuple: ft, OutPort: 1, PktCount: 10, PausedCount: 4, DeepCount: 6, QdepthSum: 60000, Bytes: 10000}},
			Ports: []telemetry.PortRecord{{Port: 1, PktCount: 10, PausedCount: 4, QdepthSum: 60000, Bytes: 10000}},
		}},
		Meter:  []telemetry.MeterRecord{{InPort: 0, OutPort: 1, Bytes: 10000}},
		Status: []telemetry.PortStatus{{Port: 1, PausedUntil: 500, RxPause: 3}},
	}
}

func sampleView() View {
	return View{
		Traced:      map[topo.NodeID]*telemetry.Report{1: sampleReport(1), 2: sampleReport(2)},
		AllSwitches: map[topo.NodeID]*telemetry.Report{1: sampleReport(1), 2: sampleReport(2), 3: sampleReport(3)},
		VictimPath:  []topo.NodeID{1},
	}
}

func TestScopes(t *testing.T) {
	v := sampleView()
	if got := len(KindHawkeye.Reports(v)); got != 2 {
		t.Fatalf("hawkeye scope = %d", got)
	}
	if got := len(KindFullPolling.Reports(v)); got != 3 {
		t.Fatalf("full scope = %d", got)
	}
	if got := len(KindVictimOnly.Reports(v)); got != 1 {
		t.Fatalf("victim scope = %d", got)
	}
	if got := len(KindSpiderMon.Reports(v)); got != 1 {
		t.Fatalf("spidermon scope = %d", got)
	}
}

func TestStripPFCRemovesAllPFCSignals(t *testing.T) {
	v := sampleView()
	for _, rep := range KindSpiderMon.Reports(v) {
		if len(rep.Meter) != 0 || len(rep.Status) != 0 {
			t.Fatal("meter/status survived PFC strip")
		}
		for _, ep := range rep.Epochs {
			for _, f := range ep.Flows {
				if f.PausedCount != 0 {
					t.Fatal("flow paused counts survived")
				}
			}
			for _, p := range ep.Ports {
				if p.PausedCount != 0 {
					t.Fatal("port paused counts survived")
				}
			}
		}
	}
	// Original untouched.
	if v.Traced[1].Epochs[0].Flows[0].PausedCount != 4 {
		t.Fatal("strip mutated the original report")
	}
}

func TestGranularityStrips(t *testing.T) {
	v := sampleView()
	for _, rep := range KindPortOnly.Reports(v) {
		for _, ep := range rep.Epochs {
			if len(ep.Flows) != 0 {
				t.Fatal("flows survived port-only strip")
			}
			if len(ep.Ports) == 0 {
				t.Fatal("ports stripped from port-only")
			}
		}
		if len(rep.Meter) == 0 {
			t.Fatal("meter stripped from port-only")
		}
	}
	for _, rep := range KindFlowOnly.Reports(v) {
		if len(rep.Meter) != 0 || len(rep.Status) != 0 {
			t.Fatal("port-level causality survived flow-only strip")
		}
		for _, ep := range rep.Epochs {
			if len(ep.Ports) != 0 {
				t.Fatal("ports survived flow-only strip")
			}
			if len(ep.Flows) == 0 {
				t.Fatal("flows stripped from flow-only")
			}
		}
	}
}

func TestOverheadModels(t *testing.T) {
	v := sampleView()
	ts := TraceStats{
		DataPackets:   100_000,
		AvgHops:       4,
		Flows:         50,
		PollingBytes:  5_000,
		VictimPathLen: 3,
	}
	hk := KindHawkeye.Assess(v, ts)
	full := KindFullPolling.Assess(v, ts)
	sm := KindSpiderMon.Assess(v, ts)
	ns := KindNetSight.Assess(v, ts)

	if hk.CollectedBytes == 0 || hk.CollectedBytes >= full.CollectedBytes {
		t.Fatalf("hawkeye %d vs full %d", hk.CollectedBytes, full.CollectedBytes)
	}
	if full.MonitorWireBytes != 0 {
		t.Fatal("full polling should add no monitoring traffic")
	}
	if sm.CollectedBytes != 50*SpiderMonFlowRecordBytes*3 {
		t.Fatalf("spidermon bytes = %d", sm.CollectedBytes)
	}
	if sm.MonitorWireBytes != 100_000*SpiderMonHeaderBytes*4 {
		t.Fatalf("spidermon wire = %d", sm.MonitorWireBytes)
	}
	if ns.CollectedBytes != 400_000*NetSightPostcardBytes {
		t.Fatalf("netsight bytes = %d", ns.CollectedBytes)
	}
	if ns.CollectedBytes < 100*hk.CollectedBytes {
		t.Fatalf("netsight not orders of magnitude above hawkeye: %d vs %d",
			ns.CollectedBytes, hk.CollectedBytes)
	}
}

func TestKindStrings(t *testing.T) {
	for _, k := range append(All(), Granularities()...) {
		if s := k.String(); s == "" || s[0] == 'K' {
			t.Fatalf("Kind string: %q", s)
		}
	}
	_ = Kind(99).String()
}

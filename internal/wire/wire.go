// Package wire implements the framing the Hawkeye analyzer speaks over
// TCP: length-prefixed typed messages carrying the handshake (topology +
// telemetry parameters), binary telemetry reports, and diagnosis
// requests/replies. The framing is deliberately simple — 4-byte length,
// 1-byte type — so partial reads, oversize frames and unknown types are
// all easy to reason about and test.
package wire

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"hawkeye/internal/packet"
)

// MsgType identifies a frame.
type MsgType uint8

const (
	// MsgHello opens a session: JSON Hello payload.
	MsgHello MsgType = 1
	// MsgHelloOK acknowledges the handshake (empty payload).
	MsgHelloOK MsgType = 2
	// MsgReport carries one switch telemetry report (binary encoding).
	MsgReport MsgType = 3
	// MsgDiagnose asks for a diagnosis: the victim 5-tuple.
	MsgDiagnose MsgType = 4
	// MsgDiagnosis is the reply: JSON Diagnosis payload.
	MsgDiagnosis MsgType = 5
	// MsgError reports a server-side failure: UTF-8 text payload.
	MsgError MsgType = 6
	// MsgIncidents asks for the session's diagnoses grouped into
	// incidents (empty payload = default window).
	MsgIncidents MsgType = 7
	// MsgIncidentList is the reply: JSON array of IncidentSummary.
	MsgIncidentList MsgType = 8
	// MsgQueryIncidents asks the fleet store for clustered incidents:
	// JSON IncidentQuery payload.
	MsgQueryIncidents MsgType = 9
	// MsgIncidentMatches is the reply: JSON array of FleetIncident.
	MsgIncidentMatches MsgType = 10
	// MsgSubscribe turns the session into a live incident tail: JSON
	// SubscribeRequest payload.
	MsgSubscribe MsgType = 11
	// MsgSubscribeOK acknowledges a subscription (empty payload).
	MsgSubscribeOK MsgType = 12
	// MsgIncidentEvent is one pushed incident lifecycle transition:
	// JSON IncidentEvent payload.
	MsgIncidentEvent MsgType = 13
	// MsgThrottle is the backpressure reply an overloaded analyzer
	// returns instead of serving a sheddable request: JSON Throttle
	// payload. Clients honor it with their existing backoff.
	MsgThrottle MsgType = 14
	// MsgHealth asks for the server's lifecycle state and load counters
	// (empty payload); any session kind may send it.
	MsgHealth MsgType = 15
	// MsgHealthReply is the answer: JSON Health payload.
	MsgHealthReply MsgType = 16
	// MsgShutdown is the terminal event a draining server pushes to
	// subscribed sessions before closing them (empty payload).
	MsgShutdown MsgType = 17
	// MsgQueryRollups asks for windowed rollup summaries: JSON
	// RollupQuery payload.
	MsgQueryRollups MsgType = 18
	// MsgRollupList is the reply: JSON RollupResult payload.
	MsgRollupList MsgType = 19
	// MsgSubscribeRollups turns the session into a live rollup tail:
	// JSON RollupSubscribeRequest payload (acked with MsgSubscribeOK).
	MsgSubscribeRollups MsgType = 20
	// MsgRollupEvent is one pushed rollup window transition: JSON
	// RollupEvent payload.
	MsgRollupEvent MsgType = 21
	// MsgReplicate turns the session into a shard-to-shard replication
	// stream: JSON ReplicateRequest payload. The server answers with a
	// MsgReplSnapshot or a run of MsgReplRecord frames (catch-up), then
	// keeps streaming records as they are admitted.
	MsgReplicate MsgType = 22
	// MsgReplSnapshot carries a full store snapshot to a follower:
	// binary 8-byte covered seq + snapshot payload.
	MsgReplSnapshot MsgType = 23
	// MsgReplRecord is one replicated admission: binary 8-byte seq +
	// the record's WAL payload (JSON).
	MsgReplRecord MsgType = 24
	// MsgReplAck is the follower's durability watermark: JSON ReplAck
	// payload. The primary uses it to report replication lag.
	MsgReplAck MsgType = 25
	// MsgShardInfo asks a cluster shard for its routing identity and
	// replication health (empty payload).
	MsgShardInfo MsgType = 26
	// MsgShardInfoReply is the answer: JSON ShardInfo payload.
	MsgShardInfoReply MsgType = 27
	// MsgWriteRecord routes one fabric ingest record to a shard primary:
	// JSON WriteRequest payload. Carries the writer's idempotency
	// sequence and its view of the shard epoch; answered with
	// MsgWriteAck, MsgFence, or MsgError.
	MsgWriteRecord MsgType = 28
	// MsgWriteAck acknowledges a routed write after it is durable (and,
	// under semi-sync, replicated): JSON WriteAck payload.
	MsgWriteAck MsgType = 29
	// MsgFence is the typed fencing refusal: JSON FenceInfo payload. A
	// demoted (fenced) shard, or one that no longer owns the fabric,
	// answers writes and replication requests with it instead of acking.
	MsgFence MsgType = 30
	// MsgEpoch announces a shard epoch: JSON EpochAnnounce payload. Sent
	// primary→follower at stream start and on bumps (the follower
	// mirrors it durably so promotion can exceed it), and client→server
	// by writers/front doors so a stale primary learns it has been
	// superseded. The server acks with MsgFence (its own epoch + fenced
	// state).
	MsgEpoch MsgType = 31
	// MsgQueryRecords asks a shard for a fabric's raw record stream (the
	// reshard copy source): JSON RecordQuery payload.
	MsgQueryRecords MsgType = 32
	// MsgRecordList is the reply: JSON RecordDump payload.
	MsgRecordList MsgType = 33
	// MsgCutover executes one side of a reshard cutover: JSON
	// CutoverRequest payload ("release" purges the fabric at the old
	// owner, "adopt" finalizes it at the new one); both bump the shard
	// epoch.
	MsgCutover MsgType = 34
	// MsgCutoverOK is the reply: JSON CutoverReply payload.
	MsgCutoverOK MsgType = 35
	// MsgHostReport carries one host-agent counter snapshot (binary
	// telemetry.HostReport encoding): the endpoint-side evidence for
	// host-vs-network PFC attribution.
	MsgHostReport MsgType = 36
)

// Known reports whether t is a frame type this protocol version
// defines. Readers skip unknown types instead of failing the session,
// so a newer peer can add frames without breaking older tails.
func Known(t MsgType) bool { return t >= MsgHello && t <= MsgHostReport }

// MaxFrame bounds a frame body; a full fat-tree telemetry report is tens
// of KB, the topology spec of a large pod a few hundred KB.
const MaxFrame = 8 << 20

// ProtocolVersion is bumped on incompatible changes.
const ProtocolVersion = 1

// ErrFrameTooLarge reports an oversized frame.
var ErrFrameTooLarge = errors.New("wire: frame exceeds MaxFrame")

// Hello is the session handshake: everything the analyzer needs to build
// provenance graphs for this fabric.
type Hello struct {
	Version int             `json:"version"`
	Topo    json.RawMessage `json:"topo,omitempty"` // topo.Spec; absent on operator sessions
	// EpochNS is the telemetry epoch length in nanoseconds.
	EpochNS int64 `json:"epochNs"`
	// Fabric names the reporting fabric in the analyzer's fleet store.
	// Empty means the default fabric. An empty Topo marks an operator
	// session: no reports or diagnoses, only fleet queries and
	// subscriptions (EpochNS is then ignored).
	Fabric string `json:"fabric,omitempty"`
}

// Diagnosis is the analyzer's reply.
type Diagnosis struct {
	Type string `json:"type"`
	// CauseKind is the primary cause class (flow contention / injection /
	// spreading).
	CauseKind string `json:"causeKind"`
	// InitialNode/InitialPort name the initial congestion point.
	InitialNode int `json:"initialNode"`
	InitialPort int `json:"initialPort"`
	// Culprits are the root-cause flows, if any.
	Culprits []string `json:"culprits,omitempty"`
	// Rendered is the human-readable diagnosis report.
	Rendered string `json:"rendered"`
	// Switches counts the telemetry reports used.
	Switches int `json:"switches"`
	// Confidence grades the evidence behind the conclusion (low / medium
	// / high); Score is the underlying [0,1] value.
	Confidence string  `json:"confidence,omitempty"`
	Score      float64 `json:"score,omitempty"`
	// Missing lists the evidence gaps that degraded the confidence.
	Missing []string `json:"missing,omitempty"`
}

// IncidentSummary is one grouped anomaly event in a MsgIncidentList.
type IncidentSummary struct {
	Type       string `json:"type"`
	Complaints int    `json:"complaints"`
	Victims    int    `json:"victims"`
	FirstNS    int64  `json:"firstNs"`
	LastNS     int64  `json:"lastNs"`
	// Rendered is the primary member's diagnosis report.
	Rendered string `json:"rendered"`
}

// IncidentQuery filters the fleet store. Zero values mean "any", except
// Node where -1 is the wildcard (0 is a real node ID).
type IncidentQuery struct {
	Fabric string `json:"fabric,omitempty"`
	// Type is the anomaly type string (AnomalyType.String()); empty
	// matches all.
	Type string `json:"type,omitempty"`
	Node int    `json:"node"`
	// FromNS/ToNS bound the incident span; ToNS == 0 is unbounded.
	FromNS int64 `json:"fromNs,omitempty"`
	ToNS   int64 `json:"toNs,omitempty"`
	Limit  int   `json:"limit,omitempty"`
}

// FleetIncident is one clustered fleet incident in a query reply or a
// pushed event.
type FleetIncident struct {
	ID         uint64   `json:"id"`
	Type       string   `json:"type"`
	Node       int      `json:"node"`
	FirstNS    int64    `json:"firstNs"`
	LastNS     int64    `json:"lastNs"`
	Complaints int      `json:"complaints"`
	Victims    []string `json:"victims,omitempty"`
	Fabrics    []string `json:"fabrics,omitempty"`
	Culprits   []string `json:"culprits,omitempty"`
	Resolved   bool     `json:"resolved,omitempty"`
	// Summary is the operator one-liner.
	Summary string `json:"summary"`
	// Constant/Varying are the attribute partition: dimensions shared
	// by every complaint vs. dimensions that spread.
	Constant map[string]string   `json:"constant,omitempty"`
	Varying  map[string][]string `json:"varying,omitempty"`
}

// Throttle is the payload of a MsgThrottle backpressure reply: the
// request was shed by the named tier; retry after the given delay.
type Throttle struct {
	// Tier names what was shed: "subscriptions" or "queries".
	Tier string `json:"tier"`
	// RetryAfterMs suggests when to retry.
	RetryAfterMs int64 `json:"retryAfterMs"`
}

// Health is the payload of a MsgHealthReply: the server's lifecycle
// state plus the load and shed counters an operator needs to judge it.
type Health struct {
	// State is the lifecycle phase: starting, replaying, serving,
	// draining or stopped.
	State string `json:"state"`
	// Durable reports whether the fleet store writes a WAL.
	Durable bool `json:"durable"`
	// Load is the ingest queue fill fraction in [0,1].
	Load      float64 `json:"load"`
	Sessions  int     `json:"sessions"`
	Diagnoses int     `json:"diagnoses"`
	// Ingested/Dropped/OpenIncidents mirror the fleet store counters.
	Ingested      uint64 `json:"ingested"`
	Dropped       uint64 `json:"dropped"`
	OpenIncidents int    `json:"openIncidents"`
	// ShedSubscriptions/ShedQueries count requests refused per tier.
	ShedSubscriptions uint64 `json:"shedSubscriptions"`
	ShedQueries       uint64 `json:"shedQueries"`
	// WALErrors counts records that failed to reach the log.
	WALErrors uint64 `json:"walErrors,omitempty"`
	// Rollup summarizer gauges: windows open / closed, accuracy-losing
	// sketch evictions, accounted bytes in use, and rollup
	// subscriptions refused under load.
	RollupWindowsOpen   int    `json:"rollupWindowsOpen,omitempty"`
	RollupWindowsClosed uint64 `json:"rollupWindowsClosed,omitempty"`
	RollupEvictions     uint64 `json:"rollupEvictions,omitempty"`
	RollupBytes         int    `json:"rollupBytes,omitempty"`
	ShedRollups         uint64 `json:"shedRollups,omitempty"`
}

// SubscribeRequest filters a live incident subscription; semantics
// match IncidentQuery (Node -1 = any).
type SubscribeRequest struct {
	Fabric string `json:"fabric,omitempty"`
	Type   string `json:"type,omitempty"`
	Node   int    `json:"node"`
}

// IncidentEvent is one pushed lifecycle transition.
type IncidentEvent struct {
	// Kind is "opened", "grew" or "resolved".
	Kind     string        `json:"kind"`
	Incident FleetIncident `json:"incident"`
}

// RollupQuery selects rollup windows from the analyzer's summarizer.
// Zero values mean "all": Windows <= 0 returns every retained window,
// Sliding <= 0 skips the merged view, Level/Prefix empty return the
// full hierarchy.
type RollupQuery struct {
	// Windows bounds how many of the most recent windows are returned.
	Windows int `json:"windows,omitempty"`
	// Sliding additionally merges the last Sliding windows into one.
	Sliding int `json:"sliding,omitempty"`
	// Level restricts heavy hitters to one hierarchy level ("fabric",
	// "pod", "switch", "port").
	Level string `json:"level,omitempty"`
	// Prefix restricts heavy-hitter keys to a path prefix, the
	// drill-down handle (e.g. "fabA/pod2").
	Prefix string `json:"prefix,omitempty"`
	// ClosedOnly excludes still-open windows.
	ClosedOnly bool `json:"closedOnly,omitempty"`
	// IncludeSketches attaches mergeable sketch state to each window, so
	// a front door can combine same-window summaries from several shards.
	IncludeSketches bool `json:"includeSketches,omitempty"`
}

// RollupHitter is one heavy-hitter entry: Count overestimates the true
// count by at most Err.
type RollupHitter struct {
	Key   string `json:"key"`
	Count uint64 `json:"count"`
	Err   uint64 `json:"err,omitempty"`
}

// RollupQuantiles is a rendered quantile-sketch snapshot.
type RollupQuantiles struct {
	Count uint64  `json:"count"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

// RollupSummary is one rendered rollup window.
type RollupSummary struct {
	StartNS int64  `json:"startNs"`
	EndNS   int64  `json:"endNs"`
	Closed  bool   `json:"closed"`
	Records uint64 `json:"records"`
	// ByType/ByCause/ByConfidence count records per diagnosis attribute.
	ByType       map[string]uint64 `json:"byType,omitempty"`
	ByCause      map[string]uint64 `json:"byCause,omitempty"`
	ByConfidence map[string]uint64 `json:"byConfidence,omitempty"`
	// Top holds the heavy hitters per hierarchy level.
	Top map[string][]RollupHitter `json:"top,omitempty"`
	// StallNS/Score summarize stall-duration and confidence-score
	// distributions.
	StallNS RollupQuantiles `json:"stallNs"`
	Score   RollupQuantiles `json:"score"`
	// Bytes/Evictions report the window's accounted footprint and its
	// accuracy-losing sketch events.
	Bytes     int    `json:"bytes"`
	Evictions uint64 `json:"evictions,omitempty"`
	// Headline is the one-line operator rendering.
	Headline string `json:"headline,omitempty"`
	// Sketches carries the window's mergeable sketch state
	// (rollup.SummarySketches) when the query asked for it. Kept opaque
	// here: wire stays dependency-free and the importer validates.
	Sketches json.RawMessage `json:"sketches,omitempty"`
}

// RollupResult is the MsgRollupList reply.
type RollupResult struct {
	Windows []RollupSummary `json:"windows,omitempty"`
	// Sliding is the merged view of the most recent windows, when the
	// query asked for one.
	Sliding *RollupSummary `json:"sliding,omitempty"`
}

// RollupSubscribeRequest configures a live rollup subscription.
type RollupSubscribeRequest struct {
	// ClosedOnly suppresses opened/updated events, delivering only
	// final window summaries.
	ClosedOnly bool `json:"closedOnly,omitempty"`
}

// RollupEvent is one pushed rollup window transition.
type RollupEvent struct {
	// Kind is "opened", "updated" or "closed".
	Kind    string        `json:"kind"`
	Summary RollupSummary `json:"summary"`
}

// ReplicateRequest turns a session into a replication stream: the
// follower asks for every admission after FromSeq. FromSeq 0 means
// "from the beginning" — the primary answers with its latest snapshot
// plus the WAL delta. A non-zero FromSeq the primary can no longer
// serve contiguously (compacted away) also falls back to a snapshot.
type ReplicateRequest struct {
	// FromSeq is the highest sequence the follower holds durably.
	FromSeq uint64 `json:"fromSeq"`
	// Epoch is the highest shard epoch the follower has durably
	// mirrored (0 = none yet). A primary that sees an epoch above its
	// own has been superseded and demotes itself instead of serving
	// the stream.
	Epoch uint64 `json:"epoch,omitempty"`
}

// ReplAck is the follower's durability watermark: every record with
// Seq <= Seq has been written to the follower's own log.
type ReplAck struct {
	Seq uint64 `json:"seq"`
	// Epoch is the follower's durably mirrored shard epoch, so the
	// primary can report primary/follower epoch agreement.
	Epoch uint64 `json:"epoch,omitempty"`
}

// WriteRequest routes one ingest record to a shard primary.
type WriteRequest struct {
	// Fabric names the record's fabric; must match the embedded record.
	Fabric string `json:"fabric"`
	// OriginSeq is the writer's per-fabric idempotency sequence. The
	// store refuses re-admission at or below its per-fabric watermark,
	// so a resend after a lost ack is a no-op (acked Duplicate).
	OriginSeq uint64 `json:"originSeq"`
	// Epoch is the highest epoch the writer has observed for the target
	// shard (0 = unknown). A primary seeing a higher epoch than its own
	// fences itself.
	Epoch uint64 `json:"epoch,omitempty"`
	// Record is the fleetstore record JSON (store field names).
	Record json.RawMessage `json:"record"`
}

// WriteAck acknowledges a routed write.
type WriteAck struct {
	// Seq is the store sequence the record was admitted at (0 when
	// Duplicate).
	Seq uint64 `json:"seq,omitempty"`
	// OriginSeq echoes the request's idempotency sequence.
	OriginSeq uint64 `json:"originSeq"`
	// Epoch is the shard's current epoch; writers cache the highest
	// they have seen and carry it on future requests.
	Epoch uint64 `json:"epoch"`
	// Duplicate marks an idempotent resend: the record was already
	// admitted (and acked durably) under this OriginSeq.
	Duplicate bool `json:"duplicate,omitempty"`
}

// FenceInfo is the typed fencing refusal and the MsgEpoch ack.
type FenceInfo struct {
	// Shard names the answering shard.
	Shard string `json:"shard,omitempty"`
	// Epoch is the shard's own current epoch.
	Epoch uint64 `json:"epoch"`
	// Observed is the highest epoch the shard has seen for itself; when
	// it exceeds Epoch the shard is fenced.
	Observed uint64 `json:"observed,omitempty"`
	// Fenced reports that the shard has demoted itself: it no longer
	// acks writes or serves replication.
	Fenced bool `json:"fenced,omitempty"`
	// Moved reports the refusal is about fabric ownership, not epochs:
	// Fabric has been resharded away from this shard.
	Moved  bool   `json:"moved,omitempty"`
	Fabric string `json:"fabric,omitempty"`
}

// EpochAnnounce carries one shard's epoch to a peer.
type EpochAnnounce struct {
	Shard string `json:"shard"`
	Epoch uint64 `json:"epoch"`
}

// RecordQuery asks for a fabric's raw records (the reshard copy
// source). Fabric is required; Limit 0 returns all retained records.
type RecordQuery struct {
	Fabric string `json:"fabric"`
	Limit  int    `json:"limit,omitempty"`
}

// RecordDump is the MsgRecordList reply: the fabric's retained records
// in (At, Seq) order, each in store JSON form.
type RecordDump struct {
	Fabric  string            `json:"fabric"`
	Records []json.RawMessage `json:"records,omitempty"`
}

// Cutover operations.
const (
	// CutoverFreeze seals the fabric at the old owner before the copy:
	// admission is refused (Moved fence) from this point on, so the
	// record set the executor dumps is final — a write racing the
	// freeze either lands before it (and is dumped) or is refused and
	// re-routed by its writer. The seal is in-memory: if the executor
	// dies the fabric thaws with the shard, and the aborted reshard is
	// re-run from the freeze.
	CutoverFreeze = "freeze"
	// CutoverRelease purges the fabric at the old owner: its records
	// are dropped (a durable tombstone replays the purge on recovery),
	// future writes for the fabric are refused with a Moved fence, and
	// the shard epoch is bumped.
	CutoverRelease = "release"
	// CutoverAdopt finalizes the fabric at the new owner: copied
	// records are folded into the rollup state and the shard epoch is
	// bumped.
	CutoverAdopt = "adopt"
)

// CutoverRequest executes one side of a reshard cutover.
type CutoverRequest struct {
	Fabric string `json:"fabric"`
	// Op is CutoverFreeze, CutoverRelease or CutoverAdopt.
	Op string `json:"op"`
}

// CutoverReply reports the cutover's outcome.
type CutoverReply struct {
	// Epoch is the shard's epoch after the bump.
	Epoch uint64 `json:"epoch"`
	// Purged counts records dropped by a release.
	Purged int `json:"purged,omitempty"`
}

// ShardInfo is a shard's routing identity and replication health.
type ShardInfo struct {
	// Shard is the instance's stable identity on the consistent-hash
	// ring (e.g. "shard-0"). Empty for an unclustered analyzer.
	Shard string `json:"shard,omitempty"`
	// Role is "primary" or "follower".
	Role string `json:"role"`
	// Seq is the highest sequence the shard has admitted.
	Seq uint64 `json:"seq"`
	// FollowerSeq is the highest sequence a connected follower has
	// acked; 0 when no follower is attached.
	FollowerSeq uint64 `json:"followerSeq,omitempty"`
	// Lag is Seq - FollowerSeq when a follower is attached.
	Lag uint64 `json:"lag,omitempty"`
	// LastSnapshotSeq is the sequence covered by the newest on-disk
	// snapshot.
	LastSnapshotSeq uint64 `json:"lastSnapshotSeq,omitempty"`
	// Replicas counts attached replication streams.
	Replicas int `json:"replicas,omitempty"`
	// Epoch is the shard's current fencing epoch (monotone across
	// promotions and cutovers).
	Epoch uint64 `json:"epoch,omitempty"`
	// FollowerEpoch is the epoch the attached follower last reported
	// durably mirrored; 0 when no follower has acked yet. Disagreement
	// with Epoch means the standby would promote into a stale epoch.
	FollowerEpoch uint64 `json:"followerEpoch,omitempty"`
	// Fenced reports the shard has observed a higher epoch for itself
	// and demoted: it still serves reads but refuses writes.
	Fenced bool `json:"fenced,omitempty"`
}

// WriteFrame emits one frame. Per-type payload caps are enforced on the
// write side too, so a peer that would be rejected fails loudly at the
// source instead of poisoning the session.
func WriteFrame(w io.Writer, t MsgType, payload []byte) error {
	if len(payload) > MaxFrame {
		return ErrFrameTooLarge
	}
	if err := checkCap(t, len(payload)); err != nil {
		return err
	}
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[0:], uint32(len(payload)))
	hdr[4] = byte(t)
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("wire: frame header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("wire: frame body: %w", err)
	}
	return nil
}

// ReadFrame consumes one frame. io.EOF at a clean frame boundary is
// returned as-is; EOF mid-frame becomes ErrUnexpectedEOF.
func ReadFrame(r io.Reader) (MsgType, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, nil, fmt.Errorf("wire: truncated frame header: %w", err)
		}
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[0:])
	if n > MaxFrame {
		return 0, nil, ErrFrameTooLarge
	}
	// Per-type caps are checked before the body is allocated: a hostile
	// header claiming 8 MiB behind a 21-byte message type never costs
	// more than the 5 bytes already read.
	if err := checkCap(MsgType(hdr[4]), int(n)); err != nil {
		return 0, nil, err
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("wire: truncated frame body: %w", err)
	}
	return MsgType(hdr[4]), payload, nil
}

// WriteJSON marshals v and emits it as a frame of type t.
func WriteJSON(w io.Writer, t MsgType, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("wire: encode %T: %w", v, err)
	}
	return WriteFrame(w, t, data)
}

// EncodeDiagnoseRequest serializes the victim 5-tuple plus the trigger
// time in nanoseconds (used by the incident grouping; 0 if unknown).
func EncodeDiagnoseRequest(victim packet.FiveTuple, atNS int64) []byte {
	tup, _ := victim.MarshalBinary() // cannot fail: fixed-size layout
	b := make([]byte, packet.FiveTupleLen+8)
	copy(b, tup)
	binary.BigEndian.PutUint64(b[packet.FiveTupleLen:], uint64(atNS))
	return b
}

// EncodeReplRecord serializes one replicated admission: 8-byte
// big-endian sequence followed by the record's WAL payload, byte-for-
// byte what the primary appended to its own log, so the follower's log
// replays through the same decoder.
func EncodeReplRecord(seq uint64, payload []byte) []byte {
	b := make([]byte, 8+len(payload))
	binary.BigEndian.PutUint64(b, seq)
	copy(b[8:], payload)
	return b
}

// DecodeReplRecord splits a MsgReplRecord payload. The returned slice
// aliases b.
func DecodeReplRecord(b []byte) (seq uint64, payload []byte, err error) {
	if len(b) < 8 {
		return 0, nil, fmt.Errorf("%w: repl record payload is %d bytes, want >= 8", ErrBadRequest, len(b))
	}
	seq = binary.BigEndian.Uint64(b)
	if seq == 0 {
		return 0, nil, fmt.Errorf("%w: repl record sequence 0", ErrBadRequest)
	}
	if len(b) == 8 {
		return 0, nil, fmt.Errorf("%w: repl record with empty body", ErrBadRequest)
	}
	return seq, b[8:], nil
}

// EncodeReplSnapshot serializes a shipped snapshot: 8-byte big-endian
// covered sequence followed by the snapshot payload (the same bytes
// wal.WriteSnapshot persists).
func EncodeReplSnapshot(seq uint64, payload []byte) []byte {
	return EncodeReplRecord(seq, payload)
}

// DecodeReplSnapshot splits a MsgReplSnapshot payload. Unlike a record,
// a snapshot may legitimately cover seq 0 (an empty store) and carry an
// empty body is still invalid — the store always exports at least its
// JSON envelope.
func DecodeReplSnapshot(b []byte) (seq uint64, payload []byte, err error) {
	if len(b) < 8 {
		return 0, nil, fmt.Errorf("%w: repl snapshot payload is %d bytes, want >= 8", ErrBadRequest, len(b))
	}
	seq = binary.BigEndian.Uint64(b)
	if len(b) == 8 {
		return 0, nil, fmt.Errorf("%w: repl snapshot with empty body", ErrBadRequest)
	}
	return seq, b[8:], nil
}

// ErrBadRequest reports a malformed request payload.
var ErrBadRequest = errors.New("wire: malformed request")

// DecodeDiagnoseRequest parses a MsgDiagnose payload. The timestamp is
// optional for backward compatibility: a bare 13-byte tuple decodes with
// atNS = 0. Any other length is rejected — the payload has exactly two
// valid shapes, and trailing garbage means a corrupted or hostile frame,
// not a newer client.
func DecodeDiagnoseRequest(b []byte) (packet.FiveTuple, int64, error) {
	var ft packet.FiveTuple
	if len(b) != packet.FiveTupleLen && len(b) != packet.FiveTupleLen+8 {
		return ft, 0, fmt.Errorf("%w: diagnose payload is %d bytes, want %d or %d",
			ErrBadRequest, len(b), packet.FiveTupleLen, packet.FiveTupleLen+8)
	}
	if err := ft.UnmarshalBinary(b); err != nil {
		return ft, 0, err
	}
	var at int64
	if len(b) == packet.FiveTupleLen+8 {
		at = int64(binary.BigEndian.Uint64(b[packet.FiveTupleLen:]))
	}
	return ft, at, nil
}

package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"testing"

	"hawkeye/internal/topo"
)

// FuzzReadFrame throws arbitrary bytes at the frame reader. The
// invariants: never panic, never hand back a payload beyond the
// per-type cap, and anything accepted must survive a write/read round
// trip unchanged.
func FuzzReadFrame(f *testing.F) {
	frame := func(t MsgType, payload []byte) []byte {
		var b bytes.Buffer
		if err := WriteFrame(&b, t, payload); err != nil {
			f.Fatal(err)
		}
		return b.Bytes()
	}
	f.Add(frame(MsgHealth, nil))
	f.Add(frame(MsgDiagnose, []byte(`{"srcIp":167772161,"dstIp":167772162}`)))
	f.Add(frame(MsgError, []byte("session quarantined")))
	f.Add(frame(MsgType(200), []byte("unknown but well-framed")))
	// A header claiming a body far beyond MaxFrame.
	huge := []byte{0x80, 0, 0, 0, byte(MsgReport)}
	f.Add(huge)
	// A header claiming MaxFrame behind a 64-byte-capped type.
	over := make([]byte, 5)
	binary.BigEndian.PutUint32(over, MaxFrame)
	over[4] = byte(MsgDiagnose)
	f.Add(over)
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		mt, payload, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(payload) > PayloadCap(mt) {
			t.Fatalf("type %d: %d-byte payload beyond its %d cap", mt, len(payload), PayloadCap(mt))
		}
		var b bytes.Buffer
		if err := WriteFrame(&b, mt, payload); err != nil {
			t.Fatalf("accepted frame refused on re-write: %v", err)
		}
		mt2, payload2, err := ReadFrame(&b)
		if err != nil || mt2 != mt || !bytes.Equal(payload2, payload) {
			t.Fatalf("round trip changed the frame: type %d->%d err=%v", mt, mt2, err)
		}
	})
}

// FuzzReplicationRecord drives the shard-to-shard admission path a
// follower runs on every streamed record: frame split, structural
// bounds, replay floor. Invariants: never panic, never admit a replay
// at or below the floor, and anything admitted must survive an
// encode/re-check round trip — the follower writes the exact payload
// to its own log, so a record that passes once must pass again.
func FuzzReplicationRecord(f *testing.F) {
	rec := []byte(`{"Fabric":"prod","Seq":7,"At":1000,"Victim":"10.0.0.1:4791>10.0.0.2:4791","Type":3,` +
		`"Cause":1,"Node":4,"Port":2,"Culprits":["10.0.0.3:4791>10.0.0.2:4791"],"Pod":"pod1",` +
		`"Confidence":2,"Score":0.9,"StallNS":250000}`)
	f.Add(EncodeReplRecord(7, rec))
	f.Add(EncodeReplRecord(1, []byte(`{}`)))
	// Replay at the floor.
	f.Add(EncodeReplRecord(3, []byte(`{"Fabric":"a"}`)))
	// Embedded seq disagreeing with the frame seq (spliced payload).
	f.Add(EncodeReplRecord(9, []byte(`{"Seq":8}`)))
	// Structural bound violations.
	f.Add(EncodeReplRecord(10, []byte(`{"Score":7.5}`)))
	f.Add(EncodeReplRecord(11, []byte(`{"At":-1}`)))
	f.Add([]byte{0, 0, 0, 1})   // short header
	f.Add(EncodeReplRecord(12, []byte(`not json`)))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		const floor = 3
		v := NewReplValidator(floor)
		seq, payload, err := v.CheckRecord(data)
		if err != nil {
			return
		}
		if seq <= floor {
			t.Fatalf("admitted seq %d at or below floor %d", seq, floor)
		}
		if v.High() != seq {
			t.Fatalf("high-water mark %d after admitting %d", v.High(), seq)
		}
		// Re-encoding what was admitted must be admissible again on a
		// fresh stream — this is exactly the follower's own log replay.
		again := NewReplValidator(floor)
		seq2, payload2, err := again.CheckRecord(EncodeReplRecord(seq, payload))
		if err != nil {
			t.Fatalf("admitted record refused on re-check: %v", err)
		}
		if seq2 != seq || !bytes.Equal(payload2, payload) {
			t.Fatalf("round trip changed the record: seq %d->%d", seq, seq2)
		}
		// And once committed, the same record is a replay.
		v.Commit(seq)
		if _, _, err := v.CheckRecord(data); err == nil {
			t.Fatalf("seq %d admitted twice across Commit", seq)
		}
	})
}

// FuzzFenceFrame drives the routing/fencing verb parsers the fleet
// tier added for epoch-fenced failover: write requests, epoch
// announces, fence refusals, record-dump queries and cutovers. The
// first input byte selects the parser; the rest is its payload.
// Invariants: never panic, never accept a payload that violates the
// verb's documented bounds (a fence without a superseding epoch, an
// unknown cutover op, an unbounded name, an implausible epoch), and
// anything accepted must survive a marshal/re-parse round trip — the
// client re-encodes these structs verbatim on retry.
func FuzzFenceFrame(f *testing.F) {
	seed := func(verb byte, payload string) []byte {
		return append([]byte{verb}, payload...)
	}
	// Valid shapes for each verb.
	f.Add(seed(0, `{"fabric":"prod","originSeq":7,"epoch":3,"record":{"Fabric":"prod","At":1000,"OriginSeq":7,"Victim":"10.0.0.1:4791>10.0.0.2:4791"}}`))
	f.Add(seed(0, `{"fabric":"prod","originSeq":0,"record":{"Fabric":"prod","At":5}}`))
	f.Add(seed(1, `{"shard":"shard-0","epoch":4}`))
	f.Add(seed(2, `{"shard":"shard-0","epoch":2,"observed":5,"fenced":true}`))
	f.Add(seed(2, `{"shard":"shard-1","epoch":3,"moved":true,"fabric":"prod"}`))
	f.Add(seed(3, `{"fabric":"prod","limit":100}`))
	f.Add(seed(4, `{"fabric":"prod","op":"freeze"}`))
	f.Add(seed(4, `{"fabric":"prod","op":"release"}`))
	f.Add(seed(4, `{"fabric":"prod","op":"adopt"}`))
	// Violations the parsers must refuse.
	f.Add(seed(0, `{"fabric":"prod","originSeq":7,"record":{"Fabric":"other","OriginSeq":7}}`))
	f.Add(seed(0, `{"fabric":"prod","originSeq":7,"record":{"Fabric":"prod","OriginSeq":9}}`))
	f.Add(seed(0, `{"fabric":"prod","originSeq":1,"record":{"Fabric":"prod","Ctrl":"purge"}}`))
	f.Add(seed(0, `{"fabric":"prod","epoch":18446744073709551615,"record":{"Fabric":"prod"}}`))
	f.Add(seed(1, `{"shard":"shard-0","epoch":0}`))
	f.Add(seed(2, `{"shard":"shard-0","epoch":5,"observed":5,"fenced":true}`))
	f.Add(seed(3, `{"fabric":"prod","limit":-1}`))
	f.Add(seed(4, `{"fabric":"prod","op":"detach"}`))
	f.Add(seed(4, `{"op":"release"}`))
	f.Add(seed(0, `not json`))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		verb, payload := data[0]%5, data[1:]
		reparse := func(v any, parse func([]byte) error) {
			out, err := json.Marshal(v)
			if err != nil {
				t.Fatalf("verb %d: accepted value won't marshal: %v", verb, err)
			}
			if err := parse(out); err != nil {
				t.Fatalf("verb %d: accepted value refused on re-parse: %v", verb, err)
			}
		}
		switch verb {
		case 0:
			wr, err := ParseWriteRequest(payload)
			if err != nil {
				return
			}
			if wr.Fabric == "" || len(wr.Fabric) > maxFabricName {
				t.Fatalf("write request with fabric %q accepted", wr.Fabric)
			}
			if wr.Epoch > maxEpoch {
				t.Fatalf("write request with epoch %d accepted", wr.Epoch)
			}
			if len(wr.Record) == 0 {
				t.Fatal("write request without a record accepted")
			}
			reparse(&wr, func(b []byte) error { _, err := ParseWriteRequest(b); return err })
		case 1:
			ea, err := ParseEpochAnnounce(payload)
			if err != nil {
				return
			}
			if ea.Shard == "" || len(ea.Shard) > maxFabricName {
				t.Fatalf("epoch announce with shard %q accepted", ea.Shard)
			}
			if ea.Epoch == 0 || ea.Epoch > maxEpoch {
				t.Fatalf("epoch announce with epoch %d accepted", ea.Epoch)
			}
			reparse(&ea, func(b []byte) error { _, err := ParseEpochAnnounce(b); return err })
		case 2:
			fi, err := ParseFence(payload)
			if err != nil {
				return
			}
			if fi.Fenced && fi.Observed <= fi.Epoch {
				t.Fatalf("fence accepted without a superseding epoch: own %d, observed %d", fi.Epoch, fi.Observed)
			}
			if fi.Epoch > maxEpoch || fi.Observed > maxEpoch {
				t.Fatalf("fence with implausible epochs accepted: %d/%d", fi.Epoch, fi.Observed)
			}
			if len(fi.Shard) > maxFabricName || len(fi.Fabric) > maxFabricName {
				t.Fatalf("fence with unbounded names accepted: %d/%d bytes", len(fi.Shard), len(fi.Fabric))
			}
			reparse(&fi, func(b []byte) error { _, err := ParseFence(b); return err })
		case 3:
			rq, err := ParseRecordQuery(payload)
			if err != nil {
				return
			}
			if rq.Fabric == "" || len(rq.Fabric) > maxFabricName {
				t.Fatalf("record query with fabric %q accepted", rq.Fabric)
			}
			if rq.Limit < 0 {
				t.Fatalf("record query with negative limit %d accepted", rq.Limit)
			}
			reparse(&rq, func(b []byte) error { _, err := ParseRecordQuery(b); return err })
		case 4:
			cr, err := ParseCutover(payload)
			if err != nil {
				return
			}
			if cr.Op != CutoverFreeze && cr.Op != CutoverRelease && cr.Op != CutoverAdopt {
				t.Fatalf("cutover with op %q accepted", cr.Op)
			}
			if cr.Fabric == "" || len(cr.Fabric) > maxFabricName {
				t.Fatalf("cutover with fabric %q accepted", cr.Fabric)
			}
			reparse(&cr, func(b []byte) error { _, err := ParseCutover(b); return err })
		}
	})
}

// FuzzHello drives the whole handshake parse: ParseHello's structural
// checks, then — exactly as the server does — the embedded topology
// through ParseSpecJSON and into a Validator. No input may panic or
// allocate absurdly (the giant-port-index seed reproduces a pre-bounds
// OOM in topology reconstruction).
func FuzzHello(f *testing.F) {
	f.Add([]byte(`{"version":1,"epochNs":131072,"fabric":"prod"}`))
	f.Add([]byte(`{"version":1,"epochNs":131072,"topo":{"bandwidthBps":100e9,"delayNs":2000,` +
		`"nodes":[{"name":"h0","kind":"host"},{"name":"s0","kind":"switch"}],` +
		`"links":[{"a":0,"aPort":0,"b":1,"bPort":0}]}}`))
	// The hello that used to OOM: one link naming port 2^30.
	f.Add([]byte(`{"version":1,"epochNs":131072,"topo":{"bandwidthBps":100e9,"delayNs":2000,` +
		`"nodes":[{"name":"h0","kind":"host"},{"name":"s0","kind":"switch"}],` +
		`"links":[{"a":0,"aPort":0,"b":1,"bPort":1073741824}]}}`))
	f.Add([]byte(`{"version":2}`))
	f.Add([]byte(`{"version":1,"epochNs":-5}`))
	f.Add([]byte(`not json`))

	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := ParseHello(data)
		if err != nil {
			return
		}
		if len(h.Topo) == 0 {
			return // operator session: no topology to reconstruct
		}
		tp, err := topo.ParseSpecJSON(h.Topo)
		if err != nil {
			return
		}
		// A handshake that gets this far must yield a working validator.
		if v := NewValidator(tp); v == nil {
			t.Fatal("nil validator from accepted handshake")
		}
	})
}

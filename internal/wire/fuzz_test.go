package wire

import (
	"bytes"
	"encoding/binary"
	"testing"

	"hawkeye/internal/topo"
)

// FuzzReadFrame throws arbitrary bytes at the frame reader. The
// invariants: never panic, never hand back a payload beyond the
// per-type cap, and anything accepted must survive a write/read round
// trip unchanged.
func FuzzReadFrame(f *testing.F) {
	frame := func(t MsgType, payload []byte) []byte {
		var b bytes.Buffer
		if err := WriteFrame(&b, t, payload); err != nil {
			f.Fatal(err)
		}
		return b.Bytes()
	}
	f.Add(frame(MsgHealth, nil))
	f.Add(frame(MsgDiagnose, []byte(`{"srcIp":167772161,"dstIp":167772162}`)))
	f.Add(frame(MsgError, []byte("session quarantined")))
	f.Add(frame(MsgType(200), []byte("unknown but well-framed")))
	// A header claiming a body far beyond MaxFrame.
	huge := []byte{0x80, 0, 0, 0, byte(MsgReport)}
	f.Add(huge)
	// A header claiming MaxFrame behind a 64-byte-capped type.
	over := make([]byte, 5)
	binary.BigEndian.PutUint32(over, MaxFrame)
	over[4] = byte(MsgDiagnose)
	f.Add(over)
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		mt, payload, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(payload) > PayloadCap(mt) {
			t.Fatalf("type %d: %d-byte payload beyond its %d cap", mt, len(payload), PayloadCap(mt))
		}
		var b bytes.Buffer
		if err := WriteFrame(&b, mt, payload); err != nil {
			t.Fatalf("accepted frame refused on re-write: %v", err)
		}
		mt2, payload2, err := ReadFrame(&b)
		if err != nil || mt2 != mt || !bytes.Equal(payload2, payload) {
			t.Fatalf("round trip changed the frame: type %d->%d err=%v", mt, mt2, err)
		}
	})
}

// FuzzReplicationRecord drives the shard-to-shard admission path a
// follower runs on every streamed record: frame split, structural
// bounds, replay floor. Invariants: never panic, never admit a replay
// at or below the floor, and anything admitted must survive an
// encode/re-check round trip — the follower writes the exact payload
// to its own log, so a record that passes once must pass again.
func FuzzReplicationRecord(f *testing.F) {
	rec := []byte(`{"Fabric":"prod","Seq":7,"At":1000,"Victim":"10.0.0.1:4791>10.0.0.2:4791","Type":3,` +
		`"Cause":1,"Node":4,"Port":2,"Culprits":["10.0.0.3:4791>10.0.0.2:4791"],"Pod":"pod1",` +
		`"Confidence":2,"Score":0.9,"StallNS":250000}`)
	f.Add(EncodeReplRecord(7, rec))
	f.Add(EncodeReplRecord(1, []byte(`{}`)))
	// Replay at the floor.
	f.Add(EncodeReplRecord(3, []byte(`{"Fabric":"a"}`)))
	// Embedded seq disagreeing with the frame seq (spliced payload).
	f.Add(EncodeReplRecord(9, []byte(`{"Seq":8}`)))
	// Structural bound violations.
	f.Add(EncodeReplRecord(10, []byte(`{"Score":7.5}`)))
	f.Add(EncodeReplRecord(11, []byte(`{"At":-1}`)))
	f.Add([]byte{0, 0, 0, 1})   // short header
	f.Add(EncodeReplRecord(12, []byte(`not json`)))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		const floor = 3
		v := NewReplValidator(floor)
		seq, payload, err := v.CheckRecord(data)
		if err != nil {
			return
		}
		if seq <= floor {
			t.Fatalf("admitted seq %d at or below floor %d", seq, floor)
		}
		if v.High() != seq {
			t.Fatalf("high-water mark %d after admitting %d", v.High(), seq)
		}
		// Re-encoding what was admitted must be admissible again on a
		// fresh stream — this is exactly the follower's own log replay.
		again := NewReplValidator(floor)
		seq2, payload2, err := again.CheckRecord(EncodeReplRecord(seq, payload))
		if err != nil {
			t.Fatalf("admitted record refused on re-check: %v", err)
		}
		if seq2 != seq || !bytes.Equal(payload2, payload) {
			t.Fatalf("round trip changed the record: seq %d->%d", seq, seq2)
		}
		// And once committed, the same record is a replay.
		v.Commit(seq)
		if _, _, err := v.CheckRecord(data); err == nil {
			t.Fatalf("seq %d admitted twice across Commit", seq)
		}
	})
}

// FuzzHello drives the whole handshake parse: ParseHello's structural
// checks, then — exactly as the server does — the embedded topology
// through ParseSpecJSON and into a Validator. No input may panic or
// allocate absurdly (the giant-port-index seed reproduces a pre-bounds
// OOM in topology reconstruction).
func FuzzHello(f *testing.F) {
	f.Add([]byte(`{"version":1,"epochNs":131072,"fabric":"prod"}`))
	f.Add([]byte(`{"version":1,"epochNs":131072,"topo":{"bandwidthBps":100e9,"delayNs":2000,` +
		`"nodes":[{"name":"h0","kind":"host"},{"name":"s0","kind":"switch"}],` +
		`"links":[{"a":0,"aPort":0,"b":1,"bPort":0}]}}`))
	// The hello that used to OOM: one link naming port 2^30.
	f.Add([]byte(`{"version":1,"epochNs":131072,"topo":{"bandwidthBps":100e9,"delayNs":2000,` +
		`"nodes":[{"name":"h0","kind":"host"},{"name":"s0","kind":"switch"}],` +
		`"links":[{"a":0,"aPort":0,"b":1,"bPort":1073741824}]}}`))
	f.Add([]byte(`{"version":2}`))
	f.Add([]byte(`{"version":1,"epochNs":-5}`))
	f.Add([]byte(`not json`))

	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := ParseHello(data)
		if err != nil {
			return
		}
		if len(h.Topo) == 0 {
			return // operator session: no topology to reconstruct
		}
		tp, err := topo.ParseSpecJSON(h.Topo)
		if err != nil {
			return
		}
		// A handshake that gets this far must yield a working validator.
		if v := NewValidator(tp); v == nil {
			t.Fatal("nil validator from accepted handshake")
		}
	})
}

package wire

import (
	"encoding/json"
	"errors"
	"fmt"

	"hawkeye/internal/telemetry"
	"hawkeye/internal/topo"
)

// This file is the admission side of the protocol: everything a frame
// must satisfy beyond "the length prefix was readable". The controller
// ingests frames from every switch CPU and host agent in the fabric, so
// one corrupted or adversarial peer must be containable per session —
// payload caps bound what a frame may claim to carry before the body is
// even allocated, and the Validator bounds what a decoded telemetry
// report may claim about the fabric before provenance construction
// trusts it.

// Payload caps per message type. Client->server verbs (the hostile
// direction) are tight: a MsgDiagnose is a 13-byte 5-tuple plus an
// optional 8-byte timestamp and has no business approaching MaxFrame.
// Server->client replies stay generous — incident lists and rendered
// diagnoses legitimately grow with the fabric.
const (
	capEmpty   = 64       // nominally empty verbs; slack for future fields
	capRequest = 64 << 10 // JSON request verbs (queries, subscriptions)
	capHello   = 2 << 20  // topology spec of a large pod is a few hundred KB
	capError   = 16 << 10 // error text
	// capRollupEvent bounds one pushed window summary: sketch sizes are
	// capped server-side, so a rendered summary is a few KB and a frame
	// approaching MaxFrame is corrupt, not big.
	capRollupEvent = 256 << 10
	// capReplRecord bounds one replicated admission: an 8-byte seq plus
	// one JSON store record — a few hundred bytes normally, a few KB
	// with a long culprit list. 64 KiB is corruption, not a record.
	capReplRecord = 64 << 10
	// capHostReport bounds one host-agent counter snapshot: the record is
	// a fixed 64-byte register dump, so even with format growth a frame
	// beyond a few hundred bytes is hostile, not telemetry.
	capHostReport = 256
)

// payloadCaps maps each known message type to its maximum payload size.
var payloadCaps = [...]int{
	MsgHello:            capHello,
	MsgHelloOK:          capEmpty,
	MsgReport:           MaxFrame,
	MsgDiagnose:         64,
	MsgDiagnosis:        MaxFrame,
	MsgError:            capError,
	MsgIncidents:        capEmpty,
	MsgIncidentList:     MaxFrame,
	MsgQueryIncidents:   capRequest,
	MsgIncidentMatches:  MaxFrame,
	MsgSubscribe:        capRequest,
	MsgSubscribeOK:      capEmpty,
	MsgIncidentEvent:    MaxFrame,
	MsgThrottle:         capRequest,
	MsgHealth:           capEmpty,
	MsgHealthReply:      capRequest,
	MsgShutdown:         capEmpty,
	MsgQueryRollups:     capRequest,
	MsgRollupList:       MaxFrame,
	MsgSubscribeRollups: capRequest,
	MsgRollupEvent:      capRollupEvent,
	MsgReplicate:        capRequest,
	MsgReplSnapshot:     MaxFrame, // a snapshot is the full store state
	MsgReplRecord:       capReplRecord,
	MsgReplAck:          capRequest,
	MsgShardInfo:        capEmpty,
	MsgShardInfoReply:   capRequest,
	MsgWriteRecord:      capReplRecord, // one routed record + its envelope
	MsgWriteAck:         capRequest,
	MsgFence:            capRequest,
	MsgEpoch:            capRequest,
	MsgQueryRecords:     capRequest,
	MsgRecordList:       MaxFrame, // a fabric's full retained record set
	MsgCutover:          capRequest,
	MsgCutoverOK:        capRequest,
	MsgHostReport:       capHostReport,
}

// PayloadCap returns the maximum payload size for t. Unknown types get
// the global MaxFrame bound so newer peers can add frames without older
// readers rejecting them harder than the framing itself would.
func PayloadCap(t MsgType) int {
	if Known(t) {
		return payloadCaps[t]
	}
	return MaxFrame
}

// CapError reports a frame whose payload exceeds its type's cap. It
// matches ErrFrameTooLarge under errors.Is so existing oversize handling
// catches both.
type CapError struct {
	Type MsgType
	Size int
	Cap  int
}

func (e *CapError) Error() string {
	return fmt.Sprintf("wire: %d-byte payload exceeds %d-byte cap for message type %d", e.Size, e.Cap, e.Type)
}

// Is makes errors.Is(err, ErrFrameTooLarge) hold for cap violations.
func (e *CapError) Is(target error) bool { return target == ErrFrameTooLarge }

// checkCap enforces the per-type payload cap.
func checkCap(t MsgType, n int) error {
	if c := PayloadCap(t); n > c {
		return &CapError{Type: t, Size: n, Cap: c}
	}
	return nil
}

// ErrBadHello reports a structurally invalid handshake.
var ErrBadHello = errors.New("wire: bad hello")

// maxEpochNS bounds the declared telemetry epoch: an hour-long epoch is
// a corrupted handshake, not a configuration.
const maxEpochNS = int64(3600) * 1e9

// maxFabricName bounds the fabric label.
const maxFabricName = 128

// ParseHello decodes and structurally validates a MsgHello payload:
// version match, epoch within plausible bounds, fabric name and embedded
// topology spec bounded. The topology itself still needs
// topo.ParseSpecJSON — this only refuses payloads no parser should see.
func ParseHello(payload []byte) (Hello, error) {
	var h Hello
	if err := json.Unmarshal(payload, &h); err != nil {
		return h, fmt.Errorf("%w: %v", ErrBadHello, err)
	}
	if h.Version != ProtocolVersion {
		return h, fmt.Errorf("%w: protocol version %d, want %d", ErrBadHello, h.Version, ProtocolVersion)
	}
	if h.EpochNS < 0 || h.EpochNS > maxEpochNS {
		return h, fmt.Errorf("%w: implausible epoch %dns", ErrBadHello, h.EpochNS)
	}
	if len(h.Fabric) > maxFabricName {
		return h, fmt.Errorf("%w: fabric name %d bytes", ErrBadHello, len(h.Fabric))
	}
	if len(h.Topo) > capHello {
		return h, fmt.Errorf("%w: topology spec %d bytes", ErrBadHello, len(h.Topo))
	}
	return h, nil
}

// ReportError is the typed rejection a Validator returns: the report
// (attributed to Switch when the ID itself was credible) failed a
// semantic admission check.
type ReportError struct {
	Switch topo.NodeID
	// SwitchKnown is false when the switch ID itself was the problem, so
	// rejection accounting must not attribute the report to a real node.
	SwitchKnown bool
	Reason      string
}

func (e *ReportError) Error() string {
	if e.SwitchKnown {
		return fmt.Sprintf("wire: report from switch %d rejected: %s", e.Switch, e.Reason)
	}
	return fmt.Sprintf("wire: report rejected: %s", e.Reason)
}

// Validator bounds limits for fields the handshake does not declare.
const (
	maxReportEpochs = 4096
	maxFlowSlots    = 1 << 20
	// maxPauseAheadNS bounds how far a live pause register may extend past
	// the snapshot time; PFC pauses are microseconds, a pause a full
	// second in the future is fabricated.
	maxPauseAheadNS = int64(1e9)
)

// Validator performs semantic admission checks on decoded telemetry
// reports against a session's handshake-declared topology: switch and
// port IDs must exist in the fabric the peer itself declared, counters
// must be non-negative, snapshot times must advance monotonically per
// switch, and durations must be physically plausible. It is stateful
// (per-session) and not safe for concurrent use — sessions are
// single-reader.
type Validator struct {
	ports     []int // per-node port count from the handshake topology
	isSwitch  []bool
	lastTaken map[topo.NodeID]int64
}

// NewValidator builds a validator for the handshake-declared topology.
func NewValidator(t *topo.Topology) *Validator {
	v := &Validator{
		ports:     make([]int, len(t.Nodes)),
		isSwitch:  make([]bool, len(t.Nodes)),
		lastTaken: make(map[topo.NodeID]int64),
	}
	for i, n := range t.Nodes {
		v.ports[i] = len(n.Ports)
		v.isSwitch[i] = n.Kind == topo.KindSwitch
	}
	return v
}

func reject(sw topo.NodeID, known bool, format string, args ...any) error {
	return &ReportError{Switch: sw, SwitchKnown: known, Reason: fmt.Sprintf(format, args...)}
}

// CheckReport admits or rejects one decoded report. On admission the
// per-switch monotonicity watermark advances; a rejected report leaves
// no state behind.
func (v *Validator) CheckReport(r *telemetry.Report) error {
	sw := r.Switch
	if int(sw) < 0 || int(sw) >= len(v.ports) {
		return reject(sw, false, "switch %d outside the handshake topology (%d nodes)", sw, len(v.ports))
	}
	if !v.isSwitch[sw] {
		return reject(sw, false, "node %d is a host, not a switch", sw)
	}
	if r.Taken < 0 {
		return reject(sw, true, "negative snapshot time %d", r.Taken)
	}
	declared := v.ports[sw]
	if r.NumPorts <= 0 || r.NumPorts > declared {
		return reject(sw, true, "port count %d disagrees with handshake topology (%d ports)", r.NumPorts, declared)
	}
	if r.NumEpochs <= 0 || r.NumEpochs > maxReportEpochs {
		return reject(sw, true, "implausible epoch ring size %d", r.NumEpochs)
	}
	if r.FlowSlots < 0 || r.FlowSlots > maxFlowSlots {
		return reject(sw, true, "implausible flow table size %d", r.FlowSlots)
	}
	if len(r.Epochs) > r.NumEpochs {
		return reject(sw, true, "%d epoch payloads from a %d-slot ring", len(r.Epochs), r.NumEpochs)
	}
	if len(r.Status) > r.NumPorts {
		return reject(sw, true, "%d status records for %d ports", len(r.Status), r.NumPorts)
	}
	prevStart := int64(1<<63 - 1)
	for i := range r.Epochs {
		ep := &r.Epochs[i]
		if ep.Ring < 0 || ep.Ring >= r.NumEpochs {
			return reject(sw, true, "epoch ring index %d outside [0,%d)", ep.Ring, r.NumEpochs)
		}
		if ep.Start < 0 || ep.Start > r.Taken {
			return reject(sw, true, "epoch start %d outside [0, taken=%d]", ep.Start, r.Taken)
		}
		// Snapshot extracts epochs newest-first; an out-of-order payload
		// did not come from the snapshot path.
		if int64(ep.Start) > prevStart {
			return reject(sw, true, "epoch starts not newest-first (%d after %d)", ep.Start, prevStart)
		}
		prevStart = int64(ep.Start)
		for j := range ep.Flows {
			f := &ep.Flows[j]
			if f.OutPort < 0 || f.OutPort >= r.NumPorts {
				return reject(sw, true, "flow record egress port %d outside [0,%d)", f.OutPort, r.NumPorts)
			}
			if f.PausedCount > f.PktCount || f.DeepCount > f.PktCount {
				return reject(sw, true, "flow record counts paused=%d deep=%d exceed packets=%d",
					f.PausedCount, f.DeepCount, f.PktCount)
			}
		}
		for j := range ep.Ports {
			p := &ep.Ports[j]
			if p.Port < 0 || p.Port >= r.NumPorts {
				return reject(sw, true, "port record port %d outside [0,%d)", p.Port, r.NumPorts)
			}
			if p.PausedCount > p.PktCount {
				return reject(sw, true, "port record paused=%d exceeds packets=%d", p.PausedCount, p.PktCount)
			}
		}
	}
	for i := range r.Meter {
		m := &r.Meter[i]
		if m.InPort < 0 || m.InPort >= r.NumPorts || m.OutPort < 0 || m.OutPort >= r.NumPorts {
			return reject(sw, true, "meter cell (%d,%d) outside [0,%d)^2", m.InPort, m.OutPort, r.NumPorts)
		}
	}
	for i := range r.Status {
		st := &r.Status[i]
		if st.Port < 0 || st.Port >= r.NumPorts {
			return reject(sw, true, "status record port %d outside [0,%d)", st.Port, r.NumPorts)
		}
		if st.PausedUntil < 0 {
			return reject(sw, true, "negative pause deadline %d", st.PausedUntil)
		}
		if int64(st.PausedUntil)-int64(r.Taken) > maxPauseAheadNS {
			return reject(sw, true, "pause deadline %dns past snapshot time", int64(st.PausedUntil)-int64(r.Taken))
		}
		if st.QdepthBytes < 0 {
			return reject(sw, true, "negative queue depth %d", st.QdepthBytes)
		}
	}
	// Cross-report monotonicity: a snapshot older than one already
	// admitted for this switch is a replay or a corrupted timestamp —
	// admitting it would let stale evidence overwrite fresh.
	if last, ok := v.lastTaken[sw]; ok && int64(r.Taken) < last {
		return reject(sw, true, "snapshot time %d regressed below admitted %d", r.Taken, last)
	}
	v.lastTaken[sw] = int64(r.Taken)
	return nil
}

// CheckHostReport admits or rejects one decoded host-agent counter
// snapshot: the mirror image of CheckReport — the reporting node must be
// a *host* in the handshake topology, the counters must be internally
// consistent, and snapshot times advance monotonically per host (node
// IDs are disjoint between kinds, so hosts share the same watermark
// map). The returned ReportError carries the host ID in Switch when the
// ID itself was credible.
func (v *Validator) CheckHostReport(r *telemetry.HostReport) error {
	id := r.Host
	if int(id) < 0 || int(id) >= len(v.ports) {
		return reject(id, false, "host %d outside the handshake topology (%d nodes)", id, len(v.ports))
	}
	if v.isSwitch[id] {
		return reject(id, false, "node %d is a switch, not a host", id)
	}
	if err := r.Validate(); err != nil {
		return reject(id, true, "%v", err)
	}
	if last, ok := v.lastTaken[id]; ok && int64(r.Taken) < last {
		return reject(id, true, "snapshot time %d regressed below admitted %d", r.Taken, last)
	}
	v.lastTaken[id] = int64(r.Taken)
	return nil
}

// ErrBadReplRecord reports a replication record that failed semantic
// admission. A follower that sees one tears the stream down and
// re-syncs rather than writing a poisoned entry into its own log.
var ErrBadReplRecord = errors.New("wire: bad replication record")

// Replication record structural bounds: a hostile or corrupted primary
// must not be able to fill a follower's log with garbage that only
// explodes at promotion time.
const (
	maxReplVictim   = 512
	maxReplCulprits = 256
	maxReplLoop     = 1024
	maxReplPod      = 64
)

// replRecordShape mirrors the fields of a fleetstore record the
// validator bounds. The store marshals records with Go field names (no
// tags), so the shape uses the same names; unknown fields pass through
// — a newer primary may add attributes an older follower just stores.
type replRecordShape struct {
	Fabric    string
	Seq       uint64
	OriginSeq uint64
	Ctrl      string
	At        int64
	Victim    string
	Culprits  []string
	Loop      []json.RawMessage
	Pod       string
	Score     float64
	StallNS   int64
}

// checkRecordShape applies the structural bounds shared by replication
// records and routed writes.
func checkRecordShape(rec *replRecordShape) error {
	if len(rec.Fabric) > maxFabricName {
		return badRepl("fabric name %d bytes", len(rec.Fabric))
	}
	switch rec.Ctrl {
	case "", "purge", "adopt":
	default:
		return badRepl("unknown control record kind %q", rec.Ctrl)
	}
	if len(rec.Victim) > maxReplVictim {
		return badRepl("victim %d bytes", len(rec.Victim))
	}
	if len(rec.Culprits) > maxReplCulprits {
		return badRepl("%d culprit flows", len(rec.Culprits))
	}
	for _, c := range rec.Culprits {
		if len(c) > maxReplVictim {
			return badRepl("culprit flow %d bytes", len(c))
		}
	}
	if len(rec.Loop) > maxReplLoop {
		return badRepl("%d-hop deadlock loop", len(rec.Loop))
	}
	if len(rec.Pod) > maxReplPod {
		return badRepl("pod label %d bytes", len(rec.Pod))
	}
	if rec.At < 0 {
		return badRepl("negative trigger time %d", rec.At)
	}
	if rec.StallNS < 0 {
		return badRepl("negative stall %dns", rec.StallNS)
	}
	if rec.Score < 0 || rec.Score > 1 {
		return badRepl("confidence score %g outside [0,1]", rec.Score)
	}
	return nil
}

func badRepl(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadReplRecord, fmt.Sprintf(format, args...))
}

// ReplValidator performs semantic admission on a replication stream:
// frame-level shape (via DecodeReplRecord), structural bounds on the
// carried record, and a durable floor — sequences at or below the
// follower's own watermark are replays. It is stateful (per-stream)
// and not safe for concurrent use; replication streams, like report
// sessions, are single-reader.
type ReplValidator struct {
	// floor is the highest sequence already durable on the follower;
	// records at or below it are replays.
	floor uint64
	// high is the highest sequence admitted on this stream.
	high uint64
}

// NewReplValidator builds a validator whose replay floor is the
// follower's durable watermark (0 for an empty follower).
func NewReplValidator(floor uint64) *ReplValidator {
	return &ReplValidator{floor: floor}
}

// CheckRecord admits or rejects one MsgReplRecord payload, returning
// the decoded seq and record payload on admission. The record payload
// aliases b. Admission advances the stream high-water mark; rejected
// frames leave no state behind.
func (v *ReplValidator) CheckRecord(b []byte) (seq uint64, payload []byte, err error) {
	seq, payload, err = DecodeReplRecord(b)
	if err != nil {
		return 0, nil, err
	}
	if seq <= v.floor {
		return 0, nil, badRepl("seq %d at or below durable floor %d (replay)", seq, v.floor)
	}
	var rec replRecordShape
	if err := json.Unmarshal(payload, &rec); err != nil {
		return 0, nil, badRepl("record body: %v", err)
	}
	// The embedded Seq, when present, must agree with the frame header —
	// a disagreement means the payload was spliced from another entry.
	if rec.Seq != 0 && rec.Seq != seq {
		return 0, nil, badRepl("embedded seq %d disagrees with frame seq %d", rec.Seq, seq)
	}
	if err := checkRecordShape(&rec); err != nil {
		return 0, nil, err
	}
	if seq > v.high {
		v.high = seq
	}
	return seq, payload, nil
}

// Commit advances the durable floor: the follower has written every
// record at or below seq to its own log, so anything at or below it
// arriving again is a replay.
func (v *ReplValidator) Commit(seq uint64) {
	if seq > v.floor {
		v.floor = seq
	}
}

// High returns the highest sequence admitted on this stream.
func (v *ReplValidator) High() uint64 { return v.high }

// ErrBadRoute reports a malformed routing/fencing payload (write,
// epoch announce, fence, record query, cutover).
var ErrBadRoute = errors.New("wire: bad routing payload")

// maxEpoch bounds a declared shard epoch: epochs count promotions and
// cutovers, so a value anywhere near 2^32 is a corrupted or hostile
// frame, not a long-lived cluster.
const maxEpoch = uint64(1) << 32

func badRoute(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadRoute, fmt.Sprintf(format, args...))
}

func checkEpochValue(label string, e uint64) error {
	if e > maxEpoch {
		return badRoute("implausible %s epoch %d", label, e)
	}
	return nil
}

// ParseWriteRequest decodes and validates a MsgWriteRecord payload:
// fabric named and bounded, a plausible epoch, and an embedded record
// that passes the same structural bounds as a replicated one and
// agrees on the fabric.
func ParseWriteRequest(payload []byte) (WriteRequest, error) {
	var req WriteRequest
	if err := json.Unmarshal(payload, &req); err != nil {
		return req, badRoute("write request: %v", err)
	}
	if req.Fabric == "" {
		return req, badRoute("write request without a fabric")
	}
	if len(req.Fabric) > maxFabricName {
		return req, badRoute("fabric name %d bytes", len(req.Fabric))
	}
	// OriginSeq 0 is legal but weaker: no dedup key, so the admission is
	// at-least-once (the reshard copy path uses it for records that were
	// never writer-routed).
	if err := checkEpochValue("writer", req.Epoch); err != nil {
		return req, err
	}
	if len(req.Record) == 0 {
		return req, badRoute("write request without a record")
	}
	var rec replRecordShape
	if err := json.Unmarshal(req.Record, &rec); err != nil {
		return req, badRoute("record body: %v", err)
	}
	if rec.Ctrl != "" {
		return req, badRoute("control record %q on the write path", rec.Ctrl)
	}
	if rec.Fabric != req.Fabric {
		return req, badRoute("record fabric %q disagrees with envelope %q", rec.Fabric, req.Fabric)
	}
	if rec.OriginSeq != 0 && rec.OriginSeq != req.OriginSeq {
		return req, badRoute("record origin seq %d disagrees with envelope %d", rec.OriginSeq, req.OriginSeq)
	}
	if err := checkRecordShape(&rec); err != nil {
		return req, fmt.Errorf("%w: %v", ErrBadRoute, err)
	}
	return req, nil
}

// ParseEpochAnnounce decodes and validates a MsgEpoch payload.
func ParseEpochAnnounce(payload []byte) (EpochAnnounce, error) {
	var ann EpochAnnounce
	if err := json.Unmarshal(payload, &ann); err != nil {
		return ann, badRoute("epoch announce: %v", err)
	}
	if ann.Shard == "" {
		return ann, badRoute("epoch announce without a shard")
	}
	if len(ann.Shard) > maxFabricName {
		return ann, badRoute("shard name %d bytes", len(ann.Shard))
	}
	if ann.Epoch == 0 {
		return ann, badRoute("epoch announce of epoch 0")
	}
	if err := checkEpochValue("announced", ann.Epoch); err != nil {
		return ann, err
	}
	return ann, nil
}

// ParseFence decodes and validates a MsgFence payload.
func ParseFence(payload []byte) (FenceInfo, error) {
	var f FenceInfo
	if err := json.Unmarshal(payload, &f); err != nil {
		return f, badRoute("fence: %v", err)
	}
	if len(f.Shard) > maxFabricName {
		return f, badRoute("shard name %d bytes", len(f.Shard))
	}
	if len(f.Fabric) > maxFabricName {
		return f, badRoute("fabric name %d bytes", len(f.Fabric))
	}
	if err := checkEpochValue("own", f.Epoch); err != nil {
		return f, err
	}
	if err := checkEpochValue("observed", f.Observed); err != nil {
		return f, err
	}
	if f.Fenced && f.Observed <= f.Epoch {
		return f, badRoute("fenced without a superseding epoch (own %d, observed %d)", f.Epoch, f.Observed)
	}
	return f, nil
}

// ParseRecordQuery decodes and validates a MsgQueryRecords payload.
func ParseRecordQuery(payload []byte) (RecordQuery, error) {
	var q RecordQuery
	if err := json.Unmarshal(payload, &q); err != nil {
		return q, badRoute("record query: %v", err)
	}
	if q.Fabric == "" {
		return q, badRoute("record query without a fabric")
	}
	if len(q.Fabric) > maxFabricName {
		return q, badRoute("fabric name %d bytes", len(q.Fabric))
	}
	if q.Limit < 0 {
		return q, badRoute("negative record limit %d", q.Limit)
	}
	return q, nil
}

// ParseCutover decodes and validates a MsgCutover payload.
func ParseCutover(payload []byte) (CutoverRequest, error) {
	var req CutoverRequest
	if err := json.Unmarshal(payload, &req); err != nil {
		return req, badRoute("cutover: %v", err)
	}
	if req.Fabric == "" {
		return req, badRoute("cutover without a fabric")
	}
	if len(req.Fabric) > maxFabricName {
		return req, badRoute("fabric name %d bytes", len(req.Fabric))
	}
	if req.Op != CutoverFreeze && req.Op != CutoverRelease && req.Op != CutoverAdopt {
		return req, badRoute("unknown cutover op %q", req.Op)
	}
	return req, nil
}

package wire

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"hawkeye/internal/packet"
	"hawkeye/internal/telemetry"
	"hawkeye/internal/topo"
)

// TestPayloadCapTable pins the cap ordering the protocol relies on:
// every known type has a cap no larger than MaxFrame, the tight
// client->server verbs are far below it, and the reply verbs that grow
// with the fabric keep the full budget.
func TestPayloadCapTable(t *testing.T) {
	for mt := MsgHello; mt <= MsgShutdown; mt++ {
		c := PayloadCap(mt)
		if c <= 0 || c > MaxFrame {
			t.Fatalf("type %d cap %d outside (0, MaxFrame]", mt, c)
		}
	}
	tight := []MsgType{MsgDiagnose, MsgHelloOK, MsgIncidents, MsgHealth, MsgShutdown,
		MsgQueryIncidents, MsgSubscribe, MsgError}
	for _, mt := range tight {
		if PayloadCap(mt) >= MaxFrame {
			t.Fatalf("type %d cap %d not tightened below MaxFrame", mt, PayloadCap(mt))
		}
	}
	for _, mt := range []MsgType{MsgReport, MsgIncidentList, MsgIncidentMatches, MsgDiagnosis} {
		if PayloadCap(mt) != MaxFrame {
			t.Fatalf("type %d cap %d, want full MaxFrame", mt, PayloadCap(mt))
		}
	}
	if PayloadCap(MsgType(200)) != MaxFrame {
		t.Fatal("unknown types must keep the global bound only")
	}
}

// TestPayloadCapEnforced proves the cap bites on both sides: an 8 MiB
// body behind a MsgDiagnose header is refused by the reader before
// allocation and by the writer before emission, with an error that still
// matches ErrFrameTooLarge.
func TestPayloadCapEnforced(t *testing.T) {
	body := make([]byte, PayloadCap(MsgDiagnose)+1)
	if err := WriteFrame(&bytes.Buffer{}, MsgDiagnose, body); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("writer accepted over-cap diagnose: %v", err)
	}
	// Hostile header: claims a huge body for a tiny verb. Only the 5
	// header bytes exist, so a reader that tried to allocate would fail
	// with a truncation error instead of the cap error.
	var hdr [5]byte
	writeHeader(hdr[:], 1<<20, MsgDiagnose)
	_, _, err := ReadFrame(bytes.NewReader(hdr[:]))
	var ce *CapError
	if !errors.As(err, &ce) {
		t.Fatalf("reader did not return CapError: %v", err)
	}
	if ce.Type != MsgDiagnose || ce.Size != 1<<20 || ce.Cap != PayloadCap(MsgDiagnose) {
		t.Fatalf("cap error fields: %+v", ce)
	}
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatal("CapError must match ErrFrameTooLarge")
	}
	// At the cap exactly, the frame round-trips.
	var buf bytes.Buffer
	ok := make([]byte, PayloadCap(MsgDiagnose))
	if err := WriteFrame(&buf, MsgDiagnose, ok); err != nil {
		t.Fatalf("exact-cap write rejected: %v", err)
	}
	if _, got, err := ReadFrame(&buf); err != nil || len(got) != len(ok) {
		t.Fatalf("exact-cap read: len=%d err=%v", len(got), err)
	}
}

func TestParseHello(t *testing.T) {
	good := []byte(`{"version":1,"epochNs":131072}`)
	if _, err := ParseHello(good); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		payload string
	}{
		{"garbage", `{{{`},
		{"wrong version", `{"version":99,"epochNs":131072}`},
		{"negative epoch", `{"version":1,"epochNs":-5}`},
		{"hour-long epoch", `{"version":1,"epochNs":9000000000000}`},
		{"giant fabric name", `{"version":1,"epochNs":1,"fabric":"` + strings.Repeat("a", 4096) + `"}`},
	}
	for _, tc := range cases {
		if _, err := ParseHello([]byte(tc.payload)); !errors.Is(err, ErrBadHello) {
			t.Fatalf("%s: %v", tc.name, err)
		}
	}
}

// chainTopo builds host - sw0 - sw1 - host: two 2-port switches.
func chainTopo(t *testing.T) *topo.Topology {
	t.Helper()
	tp := topo.New(100e9, 2000)
	h0 := tp.AddHost("h0")
	s0 := tp.AddSwitch("s0")
	s1 := tp.AddSwitch("s1")
	h1 := tp.AddHost("h1")
	tp.Connect(h0, s0)
	tp.Connect(s0, s1)
	tp.Connect(s1, h1)
	if err := tp.Validate(); err != nil {
		t.Fatal(err)
	}
	return tp
}

// goodReport is a minimal report switch 1 (s0, 2 ports) could honestly
// produce.
func goodReport() *telemetry.Report {
	return &telemetry.Report{
		Switch: 1, Taken: 5000, NumPorts: 2, NumEpochs: 4, FlowSlots: 64,
		Epochs: []telemetry.EpochData{{
			Ring: 1, ID: 9, Start: 4000,
			Flows: []telemetry.FlowRecord{{
				Tuple:   packet.FiveTuple{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: 17},
				OutPort: 1, PktCount: 10, PausedCount: 4, DeepCount: 2, QdepthSum: 100, Bytes: 10240,
			}},
			Ports: []telemetry.PortRecord{{Port: 1, PktCount: 10, PausedCount: 4, QdepthSum: 100, Bytes: 10240}},
		}, {
			Ring: 0, ID: 8, Start: 3000,
		}},
		Meter:  []telemetry.MeterRecord{{InPort: 0, OutPort: 1, Bytes: 10240}},
		Status: []telemetry.PortStatus{{Port: 1, PausedUntil: 5500, RxPause: 2, RxResume: 1, QdepthBytes: 4096}},
	}
}

func TestValidatorAdmitsHonestReport(t *testing.T) {
	v := NewValidator(chainTopo(t))
	if err := v.CheckReport(goodReport()); err != nil {
		t.Fatal(err)
	}
	// A fresher snapshot from the same switch is fine; so is an equal one
	// (idempotent re-push after a reconnect).
	r := goodReport()
	r.Taken = 6000
	for i := range r.Epochs {
		// Keep epochs within the new snapshot.
		r.Epochs[i].Start += 1000
	}
	r.Status[0].PausedUntil = 6500
	if err := v.CheckReport(r); err != nil {
		t.Fatal(err)
	}
	if err := v.CheckReport(r); err != nil {
		t.Fatalf("equal-time re-push rejected: %v", err)
	}
}

func TestValidatorRejections(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(r *telemetry.Report)
		unknown bool // switch attribution impossible
	}{
		{"switch outside topology", func(r *telemetry.Report) { r.Switch = 200 }, true},
		{"negative switch", func(r *telemetry.Report) { r.Switch = -1 }, true},
		{"host posing as switch", func(r *telemetry.Report) { r.Switch = 0 }, true},
		{"negative snapshot time", func(r *telemetry.Report) { r.Taken = -1 }, false},
		{"port count beyond topology", func(r *telemetry.Report) { r.NumPorts = 64 }, false},
		{"zero ports", func(r *telemetry.Report) { r.NumPorts = 0 }, false},
		{"giant epoch ring", func(r *telemetry.Report) { r.NumEpochs = 1 << 20 }, false},
		{"giant flow table", func(r *telemetry.Report) { r.FlowSlots = 1 << 30 }, false},
		{"more epochs than ring slots", func(r *telemetry.Report) { r.NumEpochs = 1 }, false},
		{"ring index out of range", func(r *telemetry.Report) { r.Epochs[0].Ring = 7 }, false},
		{"epoch from the future", func(r *telemetry.Report) { r.Epochs[0].Start = r.Taken + 1 }, false},
		{"epochs not newest-first", func(r *telemetry.Report) { r.Epochs[1].Start = r.Epochs[0].Start + 500 }, false},
		{"flow egress port out of range", func(r *telemetry.Report) { r.Epochs[0].Flows[0].OutPort = 2 }, false},
		{"paused exceeds packets", func(r *telemetry.Report) { r.Epochs[0].Flows[0].PausedCount = 11 }, false},
		{"deep exceeds packets", func(r *telemetry.Report) { r.Epochs[0].Flows[0].DeepCount = 11 }, false},
		{"port record out of range", func(r *telemetry.Report) { r.Epochs[0].Ports[0].Port = 9 }, false},
		{"port paused exceeds packets", func(r *telemetry.Report) { r.Epochs[0].Ports[0].PausedCount = 99 }, false},
		{"meter in-port out of range", func(r *telemetry.Report) { r.Meter[0].InPort = 5 }, false},
		{"meter out-port out of range", func(r *telemetry.Report) { r.Meter[0].OutPort = 5 }, false},
		{"status port out of range", func(r *telemetry.Report) { r.Status[0].Port = 3 }, false},
		{"negative pause deadline", func(r *telemetry.Report) { r.Status[0].PausedUntil = -4 }, false},
		{"pause a minute in the future", func(r *telemetry.Report) { r.Status[0].PausedUntil = r.Taken + 60_000_000_000 }, false},
		{"negative queue depth", func(r *telemetry.Report) { r.Status[0].QdepthBytes = -1 }, false},
		{"duplicate status records", func(r *telemetry.Report) { r.Status = append(r.Status, r.Status[0], r.Status[0]) }, false},
	}
	for _, tc := range cases {
		v := NewValidator(chainTopo(t))
		r := goodReport()
		tc.mutate(r)
		err := v.CheckReport(r)
		var re *ReportError
		if !errors.As(err, &re) {
			t.Fatalf("%s: want ReportError, got %v", tc.name, err)
		}
		if re.SwitchKnown == tc.unknown {
			t.Fatalf("%s: SwitchKnown=%v, want %v", tc.name, re.SwitchKnown, !tc.unknown)
		}
		// A rejected report must not advance the monotonicity watermark.
		if err := v.CheckReport(goodReport()); err != nil {
			t.Fatalf("%s: honest report rejected after a bad one: %v", tc.name, err)
		}
	}
}

// TestValidatorMonotonicity: a snapshot older than one already admitted
// for the same switch is a replay and must be refused; other switches
// are unaffected.
func TestValidatorMonotonicity(t *testing.T) {
	v := NewValidator(chainTopo(t))
	if err := v.CheckReport(goodReport()); err != nil {
		t.Fatal(err)
	}
	stale := goodReport()
	stale.Taken = 4999
	stale.Status[0].PausedUntil = 5400
	if err := v.CheckReport(stale); err == nil {
		t.Fatal("regressed snapshot admitted")
	}
	other := goodReport()
	other.Switch = 2
	other.Taken = 10 // older than switch 1's watermark, but its own first
	other.Epochs = nil
	other.Status = nil
	other.Meter = nil
	if err := v.CheckReport(other); err != nil {
		t.Fatalf("per-switch watermark leaked across switches: %v", err)
	}
}

func TestDiagnoseRequestRejectsTrailingGarbage(t *testing.T) {
	ft := packet.FiveTuple{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: 17}
	body := EncodeDiagnoseRequest(ft, 99)
	for _, n := range []int{packet.FiveTupleLen + 1, packet.FiveTupleLen + 7, packet.FiveTupleLen + 9, 64} {
		b := make([]byte, n)
		copy(b, body)
		if _, _, err := DecodeDiagnoseRequest(b); !errors.Is(err, ErrBadRequest) {
			t.Fatalf("%d-byte diagnose payload: %v", n, err)
		}
	}
}

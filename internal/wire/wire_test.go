package wire

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"testing/quick"

	"hawkeye/internal/packet"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	frames := []struct {
		t MsgType
		p []byte
	}{
		{MsgHello, nil},
		{MsgHelloOK, []byte{}},
		{MsgReport, []byte("x")},
		{MsgReport, bytes.Repeat([]byte{7}, 10000)},
	}
	for i, fr := range frames {
		if err := WriteFrame(&buf, fr.t, fr.p); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
	}
	for i, fr := range frames {
		mt, got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if mt != fr.t || !bytes.Equal(got, fr.p) {
			t.Fatalf("frame %d mismatch: type=%d len=%d", i, mt, len(got))
		}
	}
	if _, _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("want clean EOF, got %v", err)
	}
}

func TestFrameRoundTripQuick(t *testing.T) {
	f := func(mt uint8, payload []byte) bool {
		var buf bytes.Buffer
		err := WriteFrame(&buf, MsgType(mt), payload)
		if len(payload) > PayloadCap(MsgType(mt)) {
			// Over the type's cap: the writer must refuse.
			return err != nil
		}
		if err != nil {
			return false
		}
		got, data, err := ReadFrame(&buf)
		return err == nil && got == MsgType(mt) && bytes.Equal(data, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOversizeFrameRejected(t *testing.T) {
	big := make([]byte, MaxFrame+1)
	if err := WriteFrame(io.Discard, MsgReport, big); err != ErrFrameTooLarge {
		t.Fatalf("writer accepted oversize frame: %v", err)
	}
	// A hostile header claiming an oversize body must be rejected before
	// allocation.
	hdr := []byte{0xFF, 0xFF, 0xFF, 0xFF, byte(MsgReport)}
	if _, _, err := ReadFrame(bytes.NewReader(hdr)); err != ErrFrameTooLarge {
		t.Fatalf("reader accepted oversize frame: %v", err)
	}
}

func TestTruncatedFrames(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, MsgReport, []byte("hello world")); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	// Truncate inside the header.
	if _, _, err := ReadFrame(bytes.NewReader(whole[:3])); err == nil ||
		!strings.Contains(err.Error(), "header") {
		t.Fatalf("header truncation: %v", err)
	}
	// Truncate inside the body.
	if _, _, err := ReadFrame(bytes.NewReader(whole[:8])); err == nil ||
		!strings.Contains(err.Error(), "body") {
		t.Fatalf("body truncation: %v", err)
	}
}

func TestDiagnoseRequestRoundTrip(t *testing.T) {
	want := packet.FiveTuple{SrcIP: 0x0A000001, DstIP: 0x0A000010, SrcPort: 1027, DstPort: 4791, Proto: 17}
	got, at, err := DecodeDiagnoseRequest(EncodeDiagnoseRequest(want, 123456789))
	if err != nil {
		t.Fatal(err)
	}
	if got != want || at != 123456789 {
		t.Fatalf("request mangled: %+v at=%d", got, at)
	}
	// Bare 13-byte tuple (no timestamp) still decodes.
	tup, _ := want.MarshalBinary()
	got2, at2, err := DecodeDiagnoseRequest(tup)
	if err != nil || got2 != want || at2 != 0 {
		t.Fatalf("bare tuple decode: %+v at=%d err=%v", got2, at2, err)
	}
	if _, _, err := DecodeDiagnoseRequest([]byte{1, 2, 3}); err == nil {
		t.Fatal("short request accepted")
	}
}

// TestMaxFrameBoundary pins the exact boundary for the fleet message
// types: a body of exactly MaxFrame round-trips, one byte more is
// rejected on both the write and the read path before allocation.
func TestMaxFrameBoundary(t *testing.T) {
	var buf bytes.Buffer
	exact := make([]byte, MaxFrame)
	exact[0], exact[MaxFrame-1] = 0xAB, 0xCD
	if err := WriteFrame(&buf, MsgIncidentEvent, exact); err != nil {
		t.Fatalf("exact-MaxFrame write rejected: %v", err)
	}
	mt, got, err := ReadFrame(&buf)
	if err != nil || mt != MsgIncidentEvent || len(got) != MaxFrame {
		t.Fatalf("exact-MaxFrame read: type=%d len=%d err=%v", mt, len(got), err)
	}
	if got[0] != 0xAB || got[MaxFrame-1] != 0xCD {
		t.Fatal("exact-MaxFrame body corrupted")
	}
	if err := WriteFrame(io.Discard, MsgQueryIncidents, make([]byte, MaxFrame+1)); err != ErrFrameTooLarge {
		t.Fatalf("MaxFrame+1 write accepted: %v", err)
	}
	var hdr [5]byte
	writeHeader(hdr[:], MaxFrame+1, MsgQueryIncidents)
	if _, _, err := ReadFrame(bytes.NewReader(hdr[:])); err != ErrFrameTooLarge {
		t.Fatalf("MaxFrame+1 read accepted: %v", err)
	}
}

func writeHeader(b []byte, n int, t MsgType) {
	b[0], b[1], b[2], b[3] = byte(n>>24), byte(n>>16), byte(n>>8), byte(n)
	b[4] = byte(t)
}

// TestTruncatedNewMessageFrames covers the fleet frames: a partial
// length prefix and a truncated body both return clean, descriptive
// errors, never io.EOF masquerading as a frame boundary.
func TestTruncatedNewMessageFrames(t *testing.T) {
	for _, mt := range []MsgType{MsgQueryIncidents, MsgSubscribe, MsgIncidentEvent} {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, mt, []byte(`{"kind":"opened"}`)); err != nil {
			t.Fatal(err)
		}
		whole := buf.Bytes()
		// Partial length prefix: 1..4 bytes of the 5-byte header.
		for cut := 1; cut < 5; cut++ {
			_, _, err := ReadFrame(bytes.NewReader(whole[:cut]))
			if err == nil || err == io.EOF || !strings.Contains(err.Error(), "header") {
				t.Fatalf("type %d cut %d: %v", mt, cut, err)
			}
		}
		// Truncated body.
		_, _, err := ReadFrame(bytes.NewReader(whole[:7]))
		if err == nil || !strings.Contains(err.Error(), "body") {
			t.Fatalf("type %d body truncation: %v", mt, err)
		}
	}
}

// TestUnknownTypeSkippable backs the package doc's claim that unknown
// types are easy to handle: the reader surfaces them intact (no error),
// Known reports them unknown, and the caller can skip to the next frame.
func TestUnknownTypeSkippable(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, MsgType(200), []byte("future frame")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(&buf, MsgIncidentEvent, []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	mt, _, err := ReadFrame(&buf)
	if err != nil {
		t.Fatalf("unknown type errored: %v", err)
	}
	if Known(mt) {
		t.Fatalf("Known(%d) = true", mt)
	}
	// Skipping it lands cleanly on the next frame.
	mt, payload, err := ReadFrame(&buf)
	if err != nil || mt != MsgIncidentEvent || string(payload) != "{}" {
		t.Fatalf("frame after skip: type=%d payload=%q err=%v", mt, payload, err)
	}
	// Every defined type is Known; the neighbors are not.
	for mt := MsgHello; mt <= MsgHostReport; mt++ {
		if !Known(mt) {
			t.Fatalf("Known(%d) = false for defined type", mt)
		}
	}
	if Known(0) || Known(MsgHostReport+1) {
		t.Fatal("Known accepts undefined neighbors")
	}
}

// TestReadFrameNeverPanicsOnGarbage feeds random bytes to the frame
// reader (hostile or corrupted peers must produce errors, not panics or
// huge allocations).
func TestReadFrameNeverPanicsOnGarbage(t *testing.T) {
	f := func(data []byte) bool {
		r := bytes.NewReader(data)
		for {
			_, _, err := ReadFrame(r)
			if err != nil {
				return true
			}
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

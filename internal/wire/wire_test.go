package wire

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"testing/quick"

	"hawkeye/internal/packet"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte{7}, 10000)}
	for i, p := range payloads {
		if err := WriteFrame(&buf, MsgType(i+1), p); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range payloads {
		mt, got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if mt != MsgType(i+1) || !bytes.Equal(got, want) {
			t.Fatalf("frame %d mismatch: type=%d len=%d", i, mt, len(got))
		}
	}
	if _, _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("want clean EOF, got %v", err)
	}
}

func TestFrameRoundTripQuick(t *testing.T) {
	f := func(mt uint8, payload []byte) bool {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, MsgType(mt), payload); err != nil {
			return false
		}
		got, data, err := ReadFrame(&buf)
		return err == nil && got == MsgType(mt) && bytes.Equal(data, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOversizeFrameRejected(t *testing.T) {
	big := make([]byte, MaxFrame+1)
	if err := WriteFrame(io.Discard, MsgReport, big); err != ErrFrameTooLarge {
		t.Fatalf("writer accepted oversize frame: %v", err)
	}
	// A hostile header claiming an oversize body must be rejected before
	// allocation.
	hdr := []byte{0xFF, 0xFF, 0xFF, 0xFF, byte(MsgReport)}
	if _, _, err := ReadFrame(bytes.NewReader(hdr)); err != ErrFrameTooLarge {
		t.Fatalf("reader accepted oversize frame: %v", err)
	}
}

func TestTruncatedFrames(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, MsgReport, []byte("hello world")); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	// Truncate inside the header.
	if _, _, err := ReadFrame(bytes.NewReader(whole[:3])); err == nil ||
		!strings.Contains(err.Error(), "header") {
		t.Fatalf("header truncation: %v", err)
	}
	// Truncate inside the body.
	if _, _, err := ReadFrame(bytes.NewReader(whole[:8])); err == nil ||
		!strings.Contains(err.Error(), "body") {
		t.Fatalf("body truncation: %v", err)
	}
}

func TestDiagnoseRequestRoundTrip(t *testing.T) {
	want := packet.FiveTuple{SrcIP: 0x0A000001, DstIP: 0x0A000010, SrcPort: 1027, DstPort: 4791, Proto: 17}
	got, at, err := DecodeDiagnoseRequest(EncodeDiagnoseRequest(want, 123456789))
	if err != nil {
		t.Fatal(err)
	}
	if got != want || at != 123456789 {
		t.Fatalf("request mangled: %+v at=%d", got, at)
	}
	// Bare 13-byte tuple (no timestamp) still decodes.
	tup, _ := want.MarshalBinary()
	got2, at2, err := DecodeDiagnoseRequest(tup)
	if err != nil || got2 != want || at2 != 0 {
		t.Fatalf("bare tuple decode: %+v at=%d err=%v", got2, at2, err)
	}
	if _, _, err := DecodeDiagnoseRequest([]byte{1, 2, 3}); err == nil {
		t.Fatal("short request accepted")
	}
}

// TestReadFrameNeverPanicsOnGarbage feeds random bytes to the frame
// reader (hostile or corrupted peers must produce errors, not panics or
// huge allocations).
func TestReadFrameNeverPanicsOnGarbage(t *testing.T) {
	f := func(data []byte) bool {
		r := bytes.NewReader(data)
		for {
			_, _, err := ReadFrame(r)
			if err != nil {
				return true
			}
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

package host

import (
	"hawkeye/internal/cc"
	"hawkeye/internal/fabric"
	"hawkeye/internal/packet"
	"hawkeye/internal/sim"
)

// Flow is one sender-side RDMA flow (the model's stand-in for a QP).
// Segmentation is packet-indexed: segment i carries MTU bytes except the
// last, so go-back-N rewinds are a simple seq reset.
type Flow struct {
	ID    uint64
	Tuple packet.FiveTuple

	host *Host
	cc   *cc.State

	totalBytes int64
	totalPkts  uint32
	remaining  int64
	nextSeq    uint32
	acked      uint32

	startAt   sim.Time
	finishAt  sim.Time
	lastAckAt sim.Time
	lastSend  sim.Time

	rttMin    sim.Time
	rttLast   sim.Time
	rttSample int
	// stallStart records when the flow first found the NIC blocked; the
	// next packet actually transmitted carries this as its SentAt, so its
	// RTT includes the stall — the way a posted WQE's completion latency
	// would on real RDMA hardware (PFC pushes back to the sender, so
	// without this no transmitted packet ever witnesses the pause).
	stallStart sim.Time

	sendRef    sim.EventRef
	alphaRef   sim.EventRef
	rateRef    sim.EventRef
	retxRef    sim.EventRef
	timersLive bool

	// Retransmits counts transport-timeout rewinds (tail loss recovery).
	Retransmits int
}

// StartFlow begins sending totalBytes to the host that owns dstIP at
// time start (absolute). It returns the created flow.
func (h *Host) StartFlow(id uint64, dstIP uint32, totalBytes int64, start sim.Time) *Flow {
	return h.StartFlowRate(id, dstIP, totalBytes, start, 0)
}

// StartFlowRate is StartFlow with a per-flow rate cap in bps (0 = NIC
// line rate). Scenarios use caps to keep links busy without saturating
// them — e.g. priming a cyclic buffer dependency that only deadlocks once
// an external initiator congests it.
func (h *Host) StartFlowRate(id uint64, dstIP uint32, totalBytes int64, start sim.Time, maxRate float64) *Flow {
	ccCfg := h.Cfg.CC
	if maxRate > 0 && maxRate < ccCfg.LineRate {
		ccCfg.LineRate = maxRate
	}
	srcPort := h.nextSrcPort
	h.nextSrcPort++
	if h.nextSrcPort < 1024 {
		h.nextSrcPort = 1024
	}
	f := &Flow{
		ID: id,
		Tuple: packet.FiveTuple{
			SrcIP:   h.IP,
			DstIP:   dstIP,
			SrcPort: srcPort,
			DstPort: 4791, // RoCEv2 UDP port
			Proto:   packet.ProtoUDP,
		},
		host:       h,
		cc:         cc.NewState(ccCfg),
		totalBytes: totalBytes,
		totalPkts:  uint32((totalBytes + int64(h.Cfg.MTU) - 1) / int64(h.Cfg.MTU)),
		remaining:  totalBytes,
		startAt:    start,
		lastAckAt:  start,
	}
	h.flows[id] = f
	h.eng.At(start, func() {
		f.startTimers()
		f.sendNext()
	})
	h.agent.watch(f)
	return f
}

// Completed reports whether every byte has been acknowledged.
func (f *Flow) Completed() bool { return f.finishAt > 0 }

// Done reports whether every byte has been handed to the NIC.
func (f *Flow) Done() bool { return f.remaining == 0 }

// Outstanding reports whether unacknowledged packets exist.
func (f *Flow) Outstanding() bool { return f.acked < f.totalPkts }

// AckedPackets returns the cumulative-ACK high-water mark.
func (f *Flow) AckedPackets() uint32 { return f.acked }

// TotalPackets returns the flow's segment count.
func (f *Flow) TotalPackets() uint32 { return f.totalPkts }

// FCT returns the flow completion time, valid once Completed.
func (f *Flow) FCT() sim.Time { return f.finishAt - f.startAt }

// Rate returns the current DCQCN rate (bps).
func (f *Flow) Rate() float64 { return f.cc.Rate() }

// TotalBytes returns the flow size.
func (f *Flow) TotalBytes() int64 { return f.totalBytes }

// StartAt returns the flow start time.
func (f *Flow) StartAt() sim.Time { return f.startAt }

// MinRTT returns the smallest RTT sample observed (0 if none).
func (f *Flow) MinRTT() sim.Time { return f.rttMin }

// LastRTT returns the most recent RTT sample (0 if none).
func (f *Flow) LastRTT() sim.Time { return f.rttLast }

func (f *Flow) recordRTT(rtt sim.Time) {
	f.rttLast = rtt
	f.rttSample++
	if f.rttMin == 0 || rtt < f.rttMin {
		f.rttMin = rtt
	}
}

// scheduleSend arranges the next transmission respecting pacing.
func (f *Flow) scheduleSend() {
	if f.sendRef.Pending() || f.remaining <= 0 {
		return
	}
	now := f.host.eng.Now()
	next := f.nextSendTime()
	if next < now {
		next = now
	}
	f.sendRef = f.host.eng.At(next, f.sendNext)
}

// nextSendTime enforces the DCQCN rate: one wire-sized packet per
// size*8/rate interval.
func (f *Flow) nextSendTime() sim.Time {
	if f.lastSend == 0 {
		return f.host.eng.Now()
	}
	wire := float64((f.host.Cfg.MTU + packet.DataHeaderLen) * 8)
	gap := sim.Time(wire / f.cc.Rate() * 1e9)
	return f.lastSend + gap
}

func (f *Flow) sendNext() {
	h := f.host
	if f.remaining <= 0 {
		return
	}
	if h.egress.QueueBytes(packet.ClassLossless) > h.Cfg.NICQueueCap {
		if f.stallStart == 0 {
			f.stallStart = h.eng.Now()
		}
		h.blocked[f.ID] = f
		return
	}
	payload := int64(h.Cfg.MTU)
	if payload > f.remaining {
		payload = f.remaining
	}
	sentAt := h.eng.Now()
	if f.stallStart > 0 {
		sentAt = f.stallStart
		f.stallStart = 0
	}
	pkt := &packet.Packet{
		Type:   packet.TypeData,
		Flow:   f.Tuple,
		FlowID: f.ID,
		Class:  packet.ClassLossless,
		Size:   int(payload) + packet.DataHeaderLen,
		Seq:    f.nextSeq,
		Last:   payload == f.remaining,
		SentAt: sentAt,
	}
	f.nextSeq++
	f.remaining -= payload
	f.lastSend = h.eng.Now()
	h.TxDataPackets++
	h.egress.Enqueue(fabric.Queued{Pkt: pkt, InPort: -1})
	if f.remaining > 0 {
		f.scheduleSend()
	}
}

// rewindTo implements go-back-N after a NACK for seq.
func (f *Flow) rewindTo(seq uint32) {
	if seq >= f.nextSeq {
		return
	}
	f.nextSeq = seq
	f.remaining = f.totalBytes - int64(seq)*int64(f.host.Cfg.MTU)
	f.scheduleSend()
}

func (f *Flow) startTimers() {
	f.timersLive = true
	f.armAlpha()
	f.armRate()
	f.armRetx()
}

func (f *Flow) stopTimers() {
	f.timersLive = false
	f.alphaRef.Cancel()
	f.rateRef.Cancel()
	f.retxRef.Cancel()
	f.sendRef.Cancel()
}

func (f *Flow) armAlpha() {
	f.alphaRef = f.host.eng.After(f.host.Cfg.CC.AlphaT, func() {
		if !f.timersLive {
			return
		}
		f.cc.OnAlphaTimer()
		f.armAlpha()
	})
}

// armRetx runs the transport retransmission timer: no ACK progress for a
// full RetxTimeout while packets are outstanding rewinds the flow to its
// cumulative ACK (go-back-N tail recovery). Only drops make this fire —
// an intact-but-slow fabric always delivers SOME ack within the (multi-ms)
// timeout, and a PFC-stalled flow is rewound to data the NIC cannot send
// anyway, so the timer is harmless outside genuine loss.
func (f *Flow) armRetx() {
	if f.host.Cfg.RetxTimeout <= 0 {
		return
	}
	f.retxRef = f.host.eng.After(f.host.Cfg.RetxTimeout, func() {
		if !f.timersLive || f.Completed() {
			return
		}
		now := f.host.eng.Now()
		if f.Outstanding() && now-f.lastAckAt >= f.host.Cfg.RetxTimeout {
			f.Retransmits++
			f.lastAckAt = now // one rewind per quiet period
			f.rewindTo(f.acked)
		}
		f.armRetx()
	})
}

func (f *Flow) armRate() {
	f.rateRef = f.host.eng.After(f.host.Cfg.CC.RateT, func() {
		if !f.timersLive {
			return
		}
		f.cc.OnRateTimer()
		f.armRate()
	})
}

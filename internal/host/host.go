// Package host models RDMA end hosts: a NIC with per-flow pacing and
// DCQCN reaction points, per-packet ACK/CNP generation on the receive
// side, PFC compliance on the NIC port, the Hawkeye host detection agent
// (§3.4), and host-side PFC injection used to create storms.
package host

import (
	"fmt"
	"sort"

	"hawkeye/internal/cc"
	"hawkeye/internal/fabric"
	"hawkeye/internal/packet"
	"hawkeye/internal/sim"
	"hawkeye/internal/topo"
)

// Config controls NIC and transport behaviour.
type Config struct {
	// MTU is the data payload per segment in bytes.
	MTU int
	// AckEvery coalesces ACKs: one ACK per AckEvery in-order packets
	// (the last packet of a flow is always acknowledged).
	AckEvery int
	// CNPInterval rate-limits CNP generation per flow (DCQCN NP state).
	CNPInterval sim.Time
	// NICQueueCap is the on-NIC backlog (bytes) above which flow pacing
	// stalls until the queue drains.
	NICQueueCap int
	// RetxTimeout is the transport retransmission timer: a flow with
	// unacknowledged packets and no ACK progress for this long rewinds to
	// its cumulative ACK (go-back-N), the way a RoCE QP's transport timer
	// recovers a lost tail. PFC makes loss rare, but watchdog mitigation
	// and buffer overflow both drop lossless packets. Zero disables.
	RetxTimeout sim.Time
	// CC holds the DCQCN parameters.
	CC cc.Config
	// Agent configures the Hawkeye detection agent.
	Agent AgentConfig
}

// DefaultConfig sizes the host for the given line rate.
func DefaultConfig(lineRate float64) Config {
	return Config{
		MTU:         packet.DefaultMTU,
		AckEvery:    4,
		CNPInterval: 50 * sim.Microsecond,
		NICQueueCap: 4 * (packet.DefaultMTU + packet.DataHeaderLen),
		RetxTimeout: 5 * sim.Millisecond,
		CC:          cc.DefaultConfig(lineRate),
		Agent:       DefaultAgentConfig(),
	}
}

// recvState tracks one inbound flow at the receiver.
type recvState struct {
	expected    uint32
	lastCNP     sim.Time
	hasCNP      bool
	sinceAck    int
	Received    uint64
	OutOfOrder  uint64
	ECNReceived uint64
}

// Host is one end host (NIC + transport + detection agent).
type Host struct {
	ID   topo.NodeID
	IP   uint32
	Name string
	Cfg  Config

	net    *fabric.Network
	eng    *sim.Engine
	egress *fabric.Egress

	flows   map[uint64]*Flow
	recv    map[packet.FiveTuple]*recvState
	blocked map[uint64]*Flow

	agent *Agent

	// pathology, when non-nil, is the installed host-side anomaly model
	// (slow receiver, cache-thrash NIC, pause storm).
	pathology *rxPathology

	nextSrcPort uint16
	hostIndex   uint32

	// OnFlowDone fires when a flow is fully acknowledged.
	OnFlowDone func(*Flow)

	// Counters.
	PolledReceived uint64
	RxPFCFrames    uint64
	TxPFCFrames    uint64
	TxDataPackets  uint64
}

// NewHost builds the model for topology node id and registers it.
func NewHost(net *fabric.Network, id topo.NodeID, cfg Config) *Host {
	node := net.Topo.Node(id)
	if node.Kind != topo.KindHost {
		panic(fmt.Sprintf("host: node %s is not a host", node.Name))
	}
	h := &Host{
		ID:          id,
		IP:          node.IP,
		Name:        node.Name,
		Cfg:         cfg,
		net:         net,
		eng:         net.Eng,
		egress:      fabric.NewEgress(net, id, 0),
		flows:       make(map[uint64]*Flow),
		recv:        make(map[packet.FiveTuple]*recvState),
		blocked:     make(map[uint64]*Flow),
		nextSrcPort: 1024,
		hostIndex:   node.IP & 0xFFFF,
	}
	h.egress.OnDrain = h.onNICDrain
	h.agent = newAgent(h, cfg.Agent)
	net.Register(id, h)
	return h
}

// Agent returns the host's detection agent.
func (h *Host) Agent() *Agent { return h.agent }

// PeekSrcPort returns the source port the NEXT flow started on this host
// will use. Scenario crafting uses it to predict a flow's 5-tuple — and
// therefore its ECMP hash — before starting it (e.g. to construct hash
// polarization).
func (h *Host) PeekSrcPort() uint16 { return h.nextSrcPort }

// Egress exposes the NIC port (tests and scenarios).
func (h *Host) Egress() *fabric.Egress { return h.egress }

// Flows returns the sender-side flow table (experiments read FCTs).
func (h *Host) Flows() map[uint64]*Flow { return h.flows }

// Receive implements fabric.Receiver.
func (h *Host) Receive(pkt *packet.Packet, port int) {
	switch pkt.Type {
	case packet.TypePFC:
		h.receivePFC(pkt)
	case packet.TypeData:
		h.rxIngress(pkt)
	case packet.TypeACK:
		h.receiveACK(pkt)
	case packet.TypeNACK:
		h.receiveNACK(pkt)
	case packet.TypeCNP:
		h.receiveCNP(pkt)
	case packet.TypePolling:
		// The victim path ends here; the packet has done its job.
		h.PolledReceived++
	case packet.TypeReport:
		// Analyzer traffic; hosts only count it.
	}
}

func (h *Host) receivePFC(pkt *packet.Packet) {
	h.RxPFCFrames++
	for c := uint8(0); c < packet.NumClasses; c++ {
		switch {
		case pkt.PFC.Paused(c):
			h.egress.Pause(c, pkt.PFC.Quanta[c])
		case pkt.PFC.Resumes(c):
			h.egress.Resume(c)
		}
	}
}

func (h *Host) receiveData(pkt *packet.Packet) {
	rs, ok := h.recv[pkt.Flow]
	if !ok {
		rs = &recvState{}
		h.recv[pkt.Flow] = rs
	}
	rs.Received++
	if pkt.ECN {
		rs.ECNReceived++
		if !rs.hasCNP || h.eng.Now()-rs.lastCNP >= h.Cfg.CNPInterval {
			rs.lastCNP = h.eng.Now()
			rs.hasCNP = true
			h.sendControl(packet.TypeCNP, pkt, 0)
		}
	}
	switch {
	case pkt.Seq == rs.expected:
		rs.expected++
		rs.sinceAck++
		if rs.sinceAck >= h.Cfg.AckEvery || pkt.Last {
			rs.sinceAck = 0
			h.sendControl(packet.TypeACK, pkt, rs.expected)
		}
	case pkt.Seq > rs.expected:
		// Gap: go-back-N. Rare in a lossless fabric; kept for correctness
		// under buffer-overflow drops.
		rs.OutOfOrder++
		h.sendControl(packet.TypeNACK, pkt, rs.expected)
	default:
		// Duplicate from a go-back-N rewind; re-ack to move the sender on.
		rs.sinceAck = 0
		h.sendControl(packet.TypeACK, pkt, rs.expected)
	}
}

// sendControl emits an ACK/CNP/NACK for the received data packet back to
// its source, echoing the data packet's send timestamp for RTT sampling.
func (h *Host) sendControl(t packet.Type, data *packet.Packet, ackSeq uint32) {
	ctrl := &packet.Packet{
		Type:     t,
		Flow:     data.Flow.Reverse(),
		FlowID:   data.FlowID,
		Class:    packet.ClassControl,
		Size:     packet.ControlPacketSize,
		AckedSeq: ackSeq,
		SentAt:   data.SentAt,
	}
	h.egress.Enqueue(fabric.Queued{Pkt: ctrl, InPort: -1})
}

func (h *Host) receiveACK(pkt *packet.Packet) {
	f, ok := h.flows[pkt.FlowID]
	if !ok || f.Completed() {
		return
	}
	now := h.eng.Now()
	if pkt.AckedSeq > f.acked {
		f.acked = pkt.AckedSeq
	}
	f.lastAckAt = now
	rtt := now - pkt.SentAt
	f.recordRTT(rtt)
	h.agent.onRTT(f, rtt)
	if f.remaining == 0 && f.acked >= f.totalPkts {
		f.finishAt = now
		f.stopTimers()
		if h.OnFlowDone != nil {
			h.OnFlowDone(f)
		}
	}
}

func (h *Host) receiveNACK(pkt *packet.Packet) {
	f, ok := h.flows[pkt.FlowID]
	if !ok || f.Completed() {
		return
	}
	f.lastAckAt = h.eng.Now()
	f.rewindTo(pkt.AckedSeq)
}

func (h *Host) receiveCNP(pkt *packet.Packet) {
	if f, ok := h.flows[pkt.FlowID]; ok && !f.Completed() {
		f.cc.OnCNP()
	}
}

// onNICDrain unblocks paced flows once the NIC queue has room again.
// Flows resume in ID order: map iteration order must not leak into the
// packet interleaving, or runs stop being reproducible.
func (h *Host) onNICDrain() {
	if len(h.blocked) == 0 || h.egress.QueueBytes(packet.ClassLossless) > h.Cfg.NICQueueCap {
		return
	}
	ids := make([]uint64, 0, len(h.blocked))
	for id := range h.blocked {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		f := h.blocked[id]
		delete(h.blocked, id)
		f.scheduleSend()
	}
}

package host

import (
	"sort"

	"hawkeye/internal/fabric"
	"hawkeye/internal/packet"
	"hawkeye/internal/sim"
)

// AgentConfig controls the Hawkeye host detection agent (§3.4). The paper
// prototypes it on a BlueField-3 DPU sampling per-flow RTT via DOCA PCC;
// here it rides the NIC model's per-ACK RTT samples, plus a timeout path
// so fully blocked flows (deadlock) are still detected.
type AgentConfig struct {
	// Enable turns detection on. Off for baseline hosts.
	Enable bool
	// RTTFactor is the degradation threshold as a multiple of the
	// baseline RTT (the paper sweeps 200%–500%, i.e. 2.0–5.0).
	RTTFactor float64
	// BaseRTT anchors the threshold. Zero means "use the per-flow
	// minimum RTT observed", the DPU-agent behaviour.
	BaseRTT sim.Time
	// Timeout triggers detection when a flow has outstanding data and no
	// ACK for this long (catches deadlocks, where RTT samples stop).
	Timeout sim.Time
	// Dedup suppresses repeat polling for the same flow within the
	// interval (paper: "drops polling packets with the same 5-tuple
	// within a certain time interval").
	Dedup sim.Time
	// RTTSamplesOver debounces the RTT path: this many consecutive
	// over-threshold samples are required before triggering. A single
	// inflated sample from an ordinary transient queue is not a
	// complaint-worthy anomaly.
	RTTSamplesOver int
	// ThroughputFrac triggers when a flow's delivery rate falls below
	// this fraction of its own observed peak while data is outstanding.
	// Congestion control can absorb PFC damage into a silent long-term
	// rate reduction (§2.1); RTT alone misses it. The paper's agent
	// supports throughput/FCT metrics for exactly this reason (§3.6).
	// Zero disables.
	ThroughputFrac float64
	// MinPeak gates throughput detection to flows that ever reached a
	// meaningful rate (bps).
	MinPeak float64
}

// DefaultAgentConfig matches the paper's default operating point:
// a 300% RTT threshold on a 2-4 hop 100G fabric.
func DefaultAgentConfig() AgentConfig {
	return AgentConfig{
		Enable:         true,
		RTTFactor:      3.0,
		BaseRTT:        0,
		Timeout:        500 * sim.Microsecond,
		Dedup:          500 * sim.Microsecond,
		RTTSamplesOver: 2,
		ThroughputFrac: 0.2,
		MinPeak:        5e9,
	}
}

// Trigger describes one detection event: the agent decided a flow is a
// victim and emitted a polling packet.
type Trigger struct {
	DiagID uint32
	Victim packet.FiveTuple
	FlowID uint64
	At     sim.Time
	// Reason is "rtt" or "timeout".
	Reason string
	// RTT is the offending sample (zero for timeouts).
	RTT sim.Time
}

// Agent is the per-host detection agent.
type Agent struct {
	host *Host
	cfg  AgentConfig

	lastPoll map[packet.FiveTuple]sim.Time
	watching map[uint64]*Flow
	rates    map[uint64]*rateState
	overCnt  map[uint64]int
	nextDiag uint32

	// OnTrigger, if set, observes every detection (experiment scoring).
	OnTrigger func(Trigger)

	// Triggers counts polling packets emitted.
	Triggers uint64
}

// rateState tracks a flow's delivery rate between watchdog ticks.
type rateState struct {
	prevAcked uint32
	peakBps   float64
}

func newAgent(h *Host, cfg AgentConfig) *Agent {
	a := &Agent{
		host:     h,
		cfg:      cfg,
		lastPoll: make(map[packet.FiveTuple]sim.Time),
		watching: make(map[uint64]*Flow),
		rates:    make(map[uint64]*rateState),
		overCnt:  make(map[uint64]int),
	}
	if cfg.Enable && cfg.Timeout > 0 {
		a.armWatchdog()
	}
	return a
}

// Config returns the agent configuration.
func (a *Agent) Config() AgentConfig { return a.cfg }

func (a *Agent) watch(f *Flow) {
	if a.cfg.Enable {
		a.watching[f.ID] = f
	}
}

func (a *Agent) onRTT(f *Flow, rtt sim.Time) {
	if !a.cfg.Enable {
		return
	}
	base := a.cfg.BaseRTT
	if base == 0 {
		base = f.rttMin
	}
	if base == 0 {
		return
	}
	if float64(rtt) > a.cfg.RTTFactor*float64(base) {
		a.overCnt[f.ID]++
		need := a.cfg.RTTSamplesOver
		if need < 1 {
			need = 1
		}
		if a.overCnt[f.ID] >= need {
			a.trigger(f, "rtt", rtt)
		}
		return
	}
	a.overCnt[f.ID] = 0
}

func (a *Agent) armWatchdog() {
	period := a.cfg.Timeout / 2
	if period < 50*sim.Microsecond {
		period = 50 * sim.Microsecond
	}
	a.host.eng.After(period, func() {
		now := a.host.eng.Now()
		ids := make([]uint64, 0, len(a.watching))
		for id := range a.watching {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			f := a.watching[id]
			if f.Completed() {
				delete(a.watching, id)
				delete(a.rates, id)
				continue
			}
			if f.Outstanding() && now-f.lastAckAt > a.cfg.Timeout && now > f.startAt {
				a.trigger(f, "timeout", 0)
			}
			a.checkThroughput(f, period)
		}
		a.armWatchdog()
	})
}

// checkThroughput triggers when a flow's delivery rate collapses relative
// to its own peak — the silent PFC-through-congestion-control degradation.
func (a *Agent) checkThroughput(f *Flow, period sim.Time) {
	if a.cfg.ThroughputFrac <= 0 || a.host.eng.Now() < f.startAt {
		return
	}
	st := a.rates[f.ID]
	if st == nil {
		st = &rateState{prevAcked: f.acked}
		a.rates[f.ID] = st
		return
	}
	deliveredBits := float64(f.acked-st.prevAcked) * float64(a.host.Cfg.MTU) * 8
	st.prevAcked = f.acked
	rate := deliveredBits / (float64(period) / 1e9)
	if rate > st.peakBps {
		st.peakBps = rate
	}
	if st.peakBps >= a.cfg.MinPeak && f.Outstanding() &&
		rate < a.cfg.ThroughputFrac*st.peakBps {
		a.trigger(f, "throughput", 0)
	}
}

// trigger emits a polling packet for the victim flow unless a recent one
// already covered the same 5-tuple.
func (a *Agent) trigger(f *Flow, reason string, rtt sim.Time) {
	now := a.host.eng.Now()
	if last, ok := a.lastPoll[f.Tuple]; ok && now-last < a.cfg.Dedup {
		return
	}
	a.lastPoll[f.Tuple] = now
	a.nextDiag++
	diag := a.host.hostIndex<<16 | a.nextDiag
	a.Triggers++

	poll := &packet.Packet{
		Type:  packet.TypePolling,
		Flow:  f.Tuple, // routed like the victim
		Class: packet.ClassControl,
		Size:  packet.PollingPacketSize,
		Poll: &packet.PollingHeader{
			Flag:    packet.FlagVictimPath,
			Victim:  f.Tuple,
			DiagID:  diag,
			HopsLow: packet.DefaultPollTTL,
		},
		SentAt: now,
	}
	a.host.egress.Enqueue(fabric.Queued{Pkt: poll, InPort: -1})
	if a.OnTrigger != nil {
		a.OnTrigger(Trigger{
			DiagID: diag, Victim: f.Tuple, FlowID: f.ID,
			At: now, Reason: reason, RTT: rtt,
		})
	}
}

// InjectPFC makes this host emit PFC PAUSE frames for the lossless class
// toward its ToR from start to stop, refreshed so the pause never lapses.
// This reproduces the malfunctioning-NIC / slow-receiver behaviour behind
// PFC storms (§2.1, Fig. 1b).
func (h *Host) InjectPFC(start, stop sim.Time, quanta uint16) {
	dur := packet.PauseDuration(quanta, h.net.Topo.LinkBandwidth)
	refresh := dur / 2
	if refresh < sim.Microsecond {
		refresh = sim.Microsecond
	}
	var tick func()
	tick = func() {
		now := h.eng.Now()
		if now >= stop {
			h.sendPFC(packet.NewResume(packet.ClassLossless))
			return
		}
		h.sendPFC(packet.NewPause(packet.ClassLossless, quanta))
		h.eng.After(refresh, tick)
	}
	h.eng.At(start, tick)
}

package host

import (
	"fmt"

	"hawkeye/internal/packet"
	"hawkeye/internal/sim"
)

// Host-side anomaly pathologies (§2.1, Collie's taxonomy): the anomalies
// production fleets actually hit are frequently *endpoint* defects that
// present on the fabric as PFC backpressure with no in-network cause. A
// ToR cannot tell them apart — every one of them looks like "my
// host-facing port is paused". The host-agent counter channel exists so
// the diagnoser can. Each pathology is a deterministic, seed-forked
// behaviour installed on the existing NIC/flow model after cluster
// construction, so healthy hosts keep the exact event sequence they had
// before this layer existed.

// PathologyKind selects a host-side anomaly model.
type PathologyKind int

const (
	// PathologyNone leaves the NIC healthy.
	PathologyNone PathologyKind = iota
	// PathologySlowReceiver bounds the RX-buffer drain rate: the buffer
	// fills under normal offered load and the NIC emits sustained PFC
	// (PCIe/DMA bottleneck, pinned-memory misconfiguration).
	PathologySlowReceiver
	// PathologyCacheThrash makes per-packet processing latency grow with
	// the inbound QP fan-in the NIC has served: connection-cache misses
	// degrade a NIC that was fine at low fan-in (Collie's RNIC cache
	// thrashing).
	PathologyCacheThrash
	// PathologyPauseStorm emits spurious PFC bursts decoupled from
	// buffer state (malfunctioning NIC firmware, Fig. 1b).
	PathologyPauseStorm
)

// String renders the kind in the spelling ParsePathology accepts.
func (k PathologyKind) String() string {
	switch k {
	case PathologyNone:
		return "none"
	case PathologySlowReceiver:
		return "slow-receiver"
	case PathologyCacheThrash:
		return "cache-thrash"
	case PathologyPauseStorm:
		return "pause-storm"
	}
	return fmt.Sprintf("pathology(%d)", int(k))
}

// ParsePathology parses a -host-anomaly flag value.
func ParsePathology(s string) (PathologyKind, error) {
	switch s {
	case "", "none":
		return PathologyNone, nil
	case "slow-receiver":
		return PathologySlowReceiver, nil
	case "cache-thrash":
		return PathologyCacheThrash, nil
	case "pause-storm":
		return PathologyPauseStorm, nil
	}
	return PathologyNone, fmt.Errorf("host: unknown pathology %q (want slow-receiver|cache-thrash|pause-storm)", s)
}

// PathologyConfig parametrizes one installed pathology. The zero value
// is unusable; start from DefaultPathologyConfig.
type PathologyConfig struct {
	Kind PathologyKind
	// Seed forks the pathology's own randomness stream (burst jitter);
	// the drain models are fully deterministic and ignore it.
	Seed uint64
	// Start/Stop bound the defect window. Outside it the NIC drains at
	// line rate (the defect "heals", backlog permitting).
	Start, Stop sim.Time

	// RX-buffer model (slow receiver, cache thrash): capacity and the
	// Xoff/Xon occupancy thresholds at which the NIC asserts/releases
	// PFC toward its ToR.
	RxBufferBytes int
	XoffBytes     int
	XonBytes      int

	// DrainBps is the slow receiver's bounded drain rate.
	DrainBps float64

	// Cache-thrash latency model: per-packet service latency
	// BaseProcNS * (1 + ThrashFactor * max(0, fanIn - ThrashFlows)),
	// where fanIn is the count of distinct inbound flows the NIC has
	// served — cumulative, because every new QP pollutes the cache.
	BaseProcNS   sim.Time
	ThrashFlows  int
	ThrashFactor float64

	// Pause-storm burst model: bursts hold PFC for ~BurstHold, separated
	// by ~BurstEvery gaps, both jittered from the seed stream.
	BurstEvery  sim.Time
	BurstHold   sim.Time
	BurstQuanta uint16
}

// DefaultPathologyConfig returns a parametrization that reliably
// reproduces the pathology on the default 100G fat-tree: the slow
// receiver drains a fifth of the line rate, the thrashing NIC degrades
// to ~1 µs/packet beyond a 2-QP working set, and the storm pauses its
// ToR port roughly a third of the time.
func DefaultPathologyConfig(kind PathologyKind) PathologyConfig {
	return PathologyConfig{
		Kind:          kind,
		RxBufferBytes: 512 << 10,
		XoffBytes:     256 << 10,
		XonBytes:      128 << 10,
		DrainBps:      20e9,
		BaseProcNS:    150,
		ThrashFlows:   2,
		ThrashFactor:  1.5,
		BurstEvery:    150 * sim.Microsecond,
		BurstHold:     60 * sim.Microsecond,
		BurstQuanta:   packet.MaxPauseQuanta,
	}
}

// buffered reports whether the kind runs the bounded RX-buffer model.
func (c *PathologyConfig) buffered() bool {
	return c.Kind == PathologySlowReceiver || c.Kind == PathologyCacheThrash
}

// rxPathology is the installed pathology state on one host.
type rxPathology struct {
	cfg PathologyConfig
	rng *sim.Rand

	// RX staging buffer (FIFO): packets wait here for service.
	q        []*packet.Packet
	bytes    int
	draining bool
	paused   bool // the NIC currently asserts PFC toward its ToR
	pauseGen int  // invalidates stale refresh loops

	// Observed-counter accumulators for the host-agent channel.
	drainedBytes  uint64
	busyNS        sim.Time
	procSumNS     sim.Time
	procPkts      uint64
	overflowDrops uint64
}

// InstallPathology arms a pathology on this host. Call it after cluster
// construction (scenario builders derive Seed from the cluster seed);
// installing PathologyNone removes any previous model.
func (h *Host) InstallPathology(cfg PathologyConfig) {
	if cfg.Kind == PathologyNone {
		h.pathology = nil
		return
	}
	p := &rxPathology{cfg: cfg, rng: sim.NewRand(cfg.Seed ^ 0x4057A7B010C1E5)}
	h.pathology = p
	if cfg.Kind == PathologyPauseStorm {
		h.eng.At(cfg.Start, h.stormBurst)
	}
}

// Pathology returns the installed pathology kind (PathologyNone when
// healthy).
func (h *Host) Pathology() PathologyKind {
	if h.pathology == nil {
		return PathologyNone
	}
	return h.pathology.cfg.Kind
}

// sendPFC emits a PFC frame on the NIC port, counting emitted pauses for
// the host-agent channel.
func (h *Host) sendPFC(frame *packet.PFCFrame) {
	if frame.Paused(packet.ClassLossless) {
		h.TxPFCFrames++
	}
	h.net.SendPFC(h.ID, 0, frame)
}

// rxIngress is the data-packet entry point: healthy hosts (and inactive
// windows with an empty backlog) process instantly, exactly as before
// the pathology layer existed; buffered pathologies stage the packet and
// run the bounded drain.
func (h *Host) rxIngress(pkt *packet.Packet) {
	p := h.pathology
	if p == nil || !p.cfg.buffered() {
		h.receiveData(pkt)
		return
	}
	now := h.eng.Now()
	if now < p.cfg.Start || (now >= p.cfg.Stop && len(p.q) == 0) {
		h.receiveData(pkt)
		return
	}
	if p.bytes+pkt.Size > p.cfg.RxBufferBytes {
		// Xoff propagation slack exhausted: a real NIC drops here too —
		// the lossless contract is already broken by the defect.
		p.overflowDrops++
		return
	}
	p.q = append(p.q, pkt)
	p.bytes += pkt.Size
	if !p.paused && p.bytes >= p.cfg.XoffBytes {
		h.setRxPaused(true)
	}
	h.rxPump()
}

// serviceTime models per-packet RX service latency for the kind.
func (p *rxPathology) serviceTime(h *Host, pkt *packet.Packet) sim.Time {
	if h.eng.Now() >= p.cfg.Stop {
		// Healed: drain the backlog at line rate.
		return sim.Time(float64(pkt.Size*8) / h.net.Topo.LinkBandwidth * 1e9)
	}
	switch p.cfg.Kind {
	case PathologySlowReceiver:
		return sim.Time(float64(pkt.Size*8) / p.cfg.DrainBps * 1e9)
	case PathologyCacheThrash:
		extra := len(h.recv) - p.cfg.ThrashFlows
		if extra < 0 {
			extra = 0
		}
		return sim.Time(float64(p.cfg.BaseProcNS) * (1 + p.cfg.ThrashFactor*float64(extra)))
	}
	return 0
}

// rxPump services the staging buffer head; one service in flight at a
// time (the NIC's RX pipeline is the serialized resource being modeled).
func (h *Host) rxPump() {
	p := h.pathology
	if p == nil || p.draining || len(p.q) == 0 {
		return
	}
	p.draining = true
	pkt := p.q[0]
	st := p.serviceTime(h, pkt)
	h.eng.After(st, func() {
		p.q = p.q[1:]
		p.bytes -= pkt.Size
		p.drainedBytes += uint64(pkt.Size)
		p.busyNS += st
		p.procSumNS += st
		p.procPkts++
		h.receiveData(pkt)
		p.draining = false
		if p.paused && p.bytes <= p.cfg.XonBytes {
			h.setRxPaused(false)
		}
		h.rxPump()
	})
}

// setRxPaused asserts or releases buffer-driven PFC toward the ToR. An
// asserted pause is refreshed at half its quanta duration so it never
// lapses while the buffer stays above Xon — the sustained-PFC signature
// of a receiver that cannot drain.
func (h *Host) setRxPaused(on bool) {
	p := h.pathology
	p.paused = on
	p.pauseGen++
	if !on {
		h.sendPFC(packet.NewResume(packet.ClassLossless))
		return
	}
	gen := p.pauseGen
	quanta := uint16(packet.MaxPauseQuanta)
	refresh := packet.PauseDuration(quanta, h.net.Topo.LinkBandwidth) / 2
	if refresh < sim.Microsecond {
		refresh = sim.Microsecond
	}
	var tick func()
	tick = func() {
		if !p.paused || p.pauseGen != gen {
			return
		}
		h.sendPFC(packet.NewPause(packet.ClassLossless, quanta))
		h.eng.After(refresh, tick)
	}
	tick()
}

// stormBurst runs one spurious pause burst and schedules the next: hold
// PFC asserted for a jittered BurstHold, release, wait a jittered
// BurstEvery gap. Entirely decoupled from buffer state — the discriminant
// the host report carries is PauseTx > 0 with an empty RX buffer.
func (h *Host) stormBurst() {
	p := h.pathology
	if p == nil || p.cfg.Kind != PathologyPauseStorm {
		return
	}
	now := h.eng.Now()
	if now >= p.cfg.Stop {
		h.sendPFC(packet.NewResume(packet.ClassLossless))
		return
	}
	hold := jitter(p.rng, p.cfg.BurstHold)
	end := now + hold
	quanta := p.cfg.BurstQuanta
	refresh := packet.PauseDuration(quanta, h.net.Topo.LinkBandwidth) / 2
	if refresh < sim.Microsecond {
		refresh = sim.Microsecond
	}
	var tick func()
	tick = func() {
		t := h.eng.Now()
		if t >= end || t >= p.cfg.Stop {
			h.sendPFC(packet.NewResume(packet.ClassLossless))
			h.eng.After(jitter(p.rng, p.cfg.BurstEvery), h.stormBurst)
			return
		}
		h.sendPFC(packet.NewPause(packet.ClassLossless, quanta))
		h.eng.After(refresh, tick)
	}
	tick()
}

// jitter draws uniformly from [0.5, 1.5) * d.
func jitter(rng *sim.Rand, d sim.Time) sim.Time {
	j := sim.Time(float64(d) * (0.5 + rng.Float64()))
	if j < sim.Microsecond {
		j = sim.Microsecond
	}
	return j
}

// NICCounters is the host-agent register snapshot: the raw material of
// the telemetry HostReport, kept free of the telemetry dependency so the
// device model stays a device model.
type NICCounters struct {
	RxBufferBytes uint64
	RxBufferCap   uint64
	DrainBps      uint64
	PauseTx       uint64
	PauseRx       uint64
	ProcLatencyNS uint64
	ActiveQPs     uint32
}

// NICCounters reads the host-agent registers at the current instant.
func (h *Host) NICCounters() NICCounters {
	c := NICCounters{
		PauseTx:   h.TxPFCFrames,
		PauseRx:   h.RxPFCFrames,
		ActiveQPs: uint32(len(h.recv)),
	}
	if p := h.pathology; p != nil && p.cfg.buffered() {
		c.RxBufferCap = uint64(p.cfg.RxBufferBytes)
		c.RxBufferBytes = uint64(p.bytes)
		if p.busyNS > 0 {
			c.DrainBps = uint64(float64(p.drainedBytes*8) / (float64(p.busyNS) / 1e9))
		}
		if p.procPkts > 0 {
			c.ProcLatencyNS = uint64(p.procSumNS) / p.procPkts
		}
	}
	return c
}

package host

import (
	"testing"

	"hawkeye/internal/device"
	"hawkeye/internal/fabric"
	"hawkeye/internal/packet"
	"hawkeye/internal/sim"
	"hawkeye/internal/topo"
)

// pair wires two hosts through one switch.
type pair struct {
	eng    *sim.Engine
	net    *fabric.Network
	tp     *topo.Topology
	a, b   *Host
	sw     *device.Switch
	cfgRef Config
}

func newPair(t *testing.T, cfg Config) *pair {
	t.Helper()
	tp := topo.New(100e9, sim.Microsecond)
	ha := tp.AddHost("a")
	hb := tp.AddHost("b")
	sw := tp.AddSwitch("sw")
	tp.Connect(ha, sw)
	tp.Connect(hb, sw)
	eng := sim.NewEngine()
	net := fabric.NewNetwork(eng, tp)
	p := &pair{eng: eng, net: net, tp: tp, cfgRef: cfg}
	p.sw = device.NewSwitch(net, topo.ComputeRouting(tp), sw, device.DefaultConfig(), sim.NewRand(1))
	p.a = NewHost(net, ha, cfg)
	p.b = NewHost(net, hb, cfg)
	return p
}

func quietCfg() Config {
	cfg := DefaultConfig(100e9)
	cfg.Agent.Enable = false // tests drive flows; no watchdog noise
	return cfg
}

func TestFlowDeliversAndCompletes(t *testing.T) {
	p := newPair(t, quietCfg())
	f := p.a.StartFlow(1, p.b.IP, 123_456, 0)
	p.eng.Run(5 * sim.Millisecond)
	if !f.Completed() {
		t.Fatalf("flow incomplete: outstanding=%v", f.Outstanding())
	}
	if f.FCT() <= 0 || f.FCT() > 100*sim.Microsecond {
		t.Fatalf("FCT = %v", f.FCT())
	}
	if f.MinRTT() == 0 {
		t.Fatal("no RTT samples")
	}
}

func TestExactMultipleOfAckEveryCompletes(t *testing.T) {
	// Regression: a flow whose packet count is a multiple of AckEvery and
	// whose last payload is exactly MTU must still flush the final ACK.
	p := newPair(t, quietCfg())
	f := p.a.StartFlow(1, p.b.IP, 150_000, 0) // 150 pkts, 150 % 4 != 0
	g := p.a.StartFlow(2, p.b.IP, 152_000, 0) // 152 pkts, 152 % 4 == 0
	p.eng.Run(5 * sim.Millisecond)
	if !f.Completed() || !g.Completed() {
		t.Fatalf("completion: f=%v g=%v", f.Completed(), g.Completed())
	}
}

func TestFlowDoneCallback(t *testing.T) {
	p := newPair(t, quietCfg())
	done := 0
	p.a.OnFlowDone = func(*Flow) { done++ }
	p.a.StartFlow(1, p.b.IP, 10_000, 0)
	p.eng.Run(sim.Millisecond)
	if done != 1 {
		t.Fatalf("OnFlowDone fired %d times", done)
	}
}

func TestRateCapPacing(t *testing.T) {
	p := newPair(t, quietCfg())
	f := p.a.StartFlowRate(1, p.b.IP, 1_000_000, 0, 10e9)
	p.eng.Run(2 * sim.Millisecond)
	if !f.Completed() {
		t.Fatal("capped flow incomplete")
	}
	// 1 MB at 10 Gbps is ~830 µs incl. headers; line rate would be ~86 µs.
	if f.FCT() < 700*sim.Microsecond {
		t.Fatalf("FCT %v too fast for a 10G cap", f.FCT())
	}
}

func TestCNPSlowsSender(t *testing.T) {
	p := newPair(t, quietCfg())
	f := p.a.StartFlow(1, p.b.IP, 1_000_000, 0)
	p.eng.Run(20 * sim.Microsecond)
	before := f.Rate()
	// Deliver a CNP directly.
	cnp := &packet.Packet{Type: packet.TypeCNP, FlowID: 1, Class: packet.ClassControl, Size: 84}
	p.a.Receive(cnp, 0)
	if f.Rate() >= before {
		t.Fatalf("CNP did not slow the flow: %v -> %v", before, f.Rate())
	}
}

func TestNICPauseBlocksAndStallStampsRTT(t *testing.T) {
	cfg := quietCfg()
	p := newPair(t, cfg)
	f := p.a.StartFlow(1, p.b.IP, 500_000, 0)
	p.eng.Run(10 * sim.Microsecond)
	p.a.Egress().Pause(packet.ClassLossless, packet.MaxPauseQuanta) // ~335 µs
	p.eng.Run(400 * sim.Microsecond)
	p.eng.RunAll()
	if !f.Completed() {
		t.Fatal("flow incomplete after pause lapsed")
	}
	// The first packet after the stall carries the blocked time: some RTT
	// sample must be >= ~300 µs.
	if f.MinRTT() > 50*sim.Microsecond {
		t.Fatalf("baseline polluted: min %v", f.MinRTT())
	}
}

func TestAgentRTTDebounceAndDedup(t *testing.T) {
	cfg := DefaultConfig(100e9)
	cfg.Agent.RTTFactor = 1.5 // trip easily on synthetic samples
	cfg.Agent.Timeout = 0     // no watchdog
	cfg.Agent.Dedup = 100 * sim.Microsecond
	p := newPair(t, cfg)
	var trig []Trigger
	p.a.Agent().OnTrigger = func(tr Trigger) { trig = append(trig, tr) }
	f := p.a.StartFlow(1, p.b.IP, 10_000_000, 0) // long-lived
	// Feed synthetic ACKs with inflated RTT: the first over-threshold
	// sample must NOT trigger (debounce=2), the second must.
	p.eng.Run(30 * sim.Microsecond)
	base := f.MinRTT()
	trig = nil // discard anything real traffic produced during warm-up
	// Clear any debounce count accumulated from real jitter with one
	// clean (below-threshold) sample.
	p.a.Receive(&packet.Packet{Type: packet.TypeACK, FlowID: 1, Class: packet.ClassControl,
		Size: 84, AckedSeq: 1, SentAt: p.eng.Now() - base}, 0)
	mk := func() *packet.Packet {
		return &packet.Packet{Type: packet.TypeACK, FlowID: 1, Class: packet.ClassControl,
			Size: 84, AckedSeq: 1, SentAt: p.eng.Now() - 10*base}
	}
	p.a.Receive(mk(), 0)
	if len(trig) != 0 {
		t.Fatal("triggered on a single sample (debounce broken)")
	}
	p.a.Receive(mk(), 0)
	if len(trig) != 1 {
		t.Fatalf("debounced trigger missing: %d", len(trig))
	}
	// Within the dedup window further triggers are swallowed.
	p.a.Receive(mk(), 0)
	p.a.Receive(mk(), 0)
	if len(trig) != 1 {
		t.Fatalf("dedup failed: %d triggers", len(trig))
	}
	if trig[0].Reason != "rtt" || trig[0].Victim != f.Tuple {
		t.Fatalf("trigger meta: %+v", trig[0])
	}
}

func TestAgentTimeoutPath(t *testing.T) {
	cfg := DefaultConfig(100e9)
	cfg.Agent.RTTFactor = 100                 // RTT path off
	cfg.Agent.ThroughputFrac = 0              // throughput path off
	cfg.Agent.Timeout = 100 * sim.Microsecond // shorter than the pause
	p := newPair(t, cfg)
	var trig []Trigger
	p.a.Agent().OnTrigger = func(tr Trigger) { trig = append(trig, tr) }
	p.a.StartFlow(1, p.b.IP, 500_000, 0)
	p.eng.At(2*sim.Microsecond, func() {
		p.a.Egress().Pause(packet.ClassLossless, packet.MaxPauseQuanta)
	})
	p.eng.Run(900 * sim.Microsecond)
	found := false
	for _, tr := range trig {
		if tr.Reason == "timeout" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no timeout trigger; got %d triggers", len(trig))
	}
}

func TestAgentEmitsPollingPacket(t *testing.T) {
	cfg := DefaultConfig(100e9)
	cfg.Agent.RTTFactor = 1.5
	p := newPair(t, cfg)
	f := p.a.StartFlow(1, p.b.IP, 10_000_000, 0)
	p.eng.Run(30 * sim.Microsecond)
	for i := 0; i < 2; i++ {
		p.a.Receive(&packet.Packet{Type: packet.TypeACK, FlowID: 1, Class: packet.ClassControl,
			Size: 84, AckedSeq: 1, SentAt: 0}, 0)
	}
	p.eng.Run(p.eng.Now() + sim.Millisecond) // watchdog rearms forever; bound the run
	// The polling packet routes like the victim and lands at host b.
	if p.b.PolledReceived < 1 {
		t.Fatalf("polling packets at victim dst: %d", p.b.PolledReceived)
	}
	_ = f
}

func TestInjectPFCPausesToR(t *testing.T) {
	p := newPair(t, quietCfg())
	p.b.InjectPFC(10*sim.Microsecond, 100*sim.Microsecond, packet.MaxPauseQuanta)
	p.eng.Run(50 * sim.Microsecond)
	if !p.sw.EgressAt(1).Paused(packet.ClassLossless) {
		t.Fatal("injection did not pause the ToR port")
	}
	p.eng.Run(600 * sim.Microsecond)
	if p.sw.EgressAt(1).Paused(packet.ClassLossless) {
		t.Fatal("pause persisted after injection stop + quanta expiry")
	}
}

func TestGoBackNOnGap(t *testing.T) {
	p := newPair(t, quietCfg())
	f := p.a.StartFlow(1, p.b.IP, 50_000, 0)
	p.eng.Run(2 * sim.Microsecond)
	// Deliver an out-of-order data packet directly to b: it must NACK.
	ooo := &packet.Packet{Type: packet.TypeData, Flow: f.Tuple, FlowID: 1,
		Class: packet.ClassLossless, Size: 1078, Seq: 999}
	p.b.Receive(ooo, 0)
	p.eng.RunAll()
	if !f.Completed() {
		t.Fatal("flow did not recover from go-back-N")
	}
}

func TestRetxTimeoutRecoversLostTail(t *testing.T) {
	p := newPair(t, quietCfg())
	f := p.a.StartFlow(1, p.b.IP, 50_000, 0)
	// Discard the flow's tail at the switch: watchdog-style drop on b's
	// port from 20 µs (mid-flow) until well past the last transmission.
	var hostPort int
	for port := 0; port < p.sw.NumPorts(); port++ {
		if peer, _ := p.tp.PeerOf(p.sw.ID, port); peer == p.b.ID {
			hostPort = port
		}
	}
	p.eng.At(2*sim.Microsecond, func() {
		p.sw.SetWatchdogDrop(hostPort, packet.ClassLossless, true)
	})
	p.eng.At(200*sim.Microsecond, func() {
		p.sw.SetWatchdogDrop(hostPort, packet.ClassLossless, false)
	})
	p.eng.Run(20 * sim.Millisecond)
	if !f.Completed() {
		t.Fatalf("flow did not recover a dropped tail: acked %d/%d, retx=%d",
			f.AckedPackets(), f.TotalPackets(), f.Retransmits)
	}
	if f.Retransmits == 0 {
		t.Fatal("recovery happened without the retransmission timer")
	}
	// The rewind resends from the cumulative ACK, so the receiver must see
	// every byte despite the hole.
	if f.AckedPackets() != f.TotalPackets() {
		t.Fatalf("acked %d of %d after recovery", f.AckedPackets(), f.TotalPackets())
	}
}

func TestRetxTimerSilentOnHealthyFlow(t *testing.T) {
	p := newPair(t, quietCfg())
	long := p.a.StartFlow(1, p.b.IP, 2_000_000, 0)
	p.eng.Run(20 * sim.Millisecond)
	if !long.Completed() {
		t.Fatal("flow incomplete")
	}
	if long.Retransmits != 0 {
		t.Fatalf("spurious retransmissions on a lossless path: %d", long.Retransmits)
	}
}

func TestRetxDisabledByZeroTimeout(t *testing.T) {
	cfg := quietCfg()
	cfg.RetxTimeout = 0
	p := newPair(t, cfg)
	f := p.a.StartFlow(1, p.b.IP, 50_000, 0)
	var hostPort int
	for port := 0; port < p.sw.NumPorts(); port++ {
		if peer, _ := p.tp.PeerOf(p.sw.ID, port); peer == p.b.ID {
			hostPort = port
		}
	}
	p.eng.At(2*sim.Microsecond, func() {
		p.sw.SetWatchdogDrop(hostPort, packet.ClassLossless, true)
	})
	p.eng.Run(20 * sim.Millisecond)
	if f.Completed() || f.Retransmits != 0 {
		t.Fatalf("disabled timer still acted: completed=%v retx=%d", f.Completed(), f.Retransmits)
	}
}

// Package polling implements Hawkeye's in-data-plane causality analysis
// (§3.4, Fig. 6): polling packets follow the victim flow path at line
// rate, detect PFC pausing via the telemetry registers, and fan out along
// the PFC spreading path using the port-pair causality meter — while
// mirroring each polling packet to the switch CPU to trigger asynchronous
// telemetry collection.
package polling

import (
	"hawkeye/internal/device"
	"hawkeye/internal/packet"
	"hawkeye/internal/sim"
	"hawkeye/internal/telemetry"
	"hawkeye/internal/topo"
)

// Mirror receives the CPU-mirrored polling packet (the collection
// trigger).
type Mirror interface {
	MirrorPolling(sw topo.NodeID, tel *telemetry.State, hdr packet.PollingHeader, inPort int)
}

// FaultInjector intercepts polling packets at handler entry. The chaos
// engine (internal/chaos) implements it; all injection decisions flow
// through one seeded RNG and one accounting surface there.
type FaultInjector interface {
	// DropPolling reports whether this polling packet is lost before the
	// handler sees it (a congested or lossy control plane eating
	// diagnosis traffic).
	DropPolling(sw topo.NodeID, hdr packet.PollingHeader) bool
	// DuplicatePolling reports whether the packet arrives twice (link
	// retransmission, mirror misconfiguration). The duplicate runs the
	// full handler; the dedup window is what absorbs it.
	DuplicatePolling(sw topo.NodeID, hdr packet.PollingHeader) bool
}

// Config controls the per-switch handler.
type Config struct {
	// Dedup drops polling packets with the same victim 5-tuple seen
	// within the interval (Table 1 discussion).
	Dedup sim.Time
	// Faults, when set, injects polling-packet loss and duplication at
	// handler entry. Install via the chaos engine.
	Faults FaultInjector
	// LossProb injects polling-packet loss at handler entry.
	//
	// Deprecated: set Faults (chaos.Schedule.PollLoss) instead, which
	// shares the engine-wide seeded RNG and fault accounting. LossProb
	// keeps working when Faults is nil. Requires Rng. Zero disables.
	LossProb float64
	// Rng drives the deprecated LossProb injection (deterministic, seeded).
	//
	// Deprecated: see LossProb.
	Rng *sim.Rand
}

// DefaultConfig uses a 1 ms dedup window and no failure injection.
func DefaultConfig() Config { return Config{Dedup: sim.Millisecond} }

// Handler is the polling logic of one Hawkeye switch. It implements
// device.PollHandler.
type Handler struct {
	Tel *telemetry.State
	Cfg Config

	mirror Mirror
	now    func() sim.Time

	lastSeen map[packet.FiveTuple]sim.Time

	// Counters.
	Handled        uint64
	Dropped        uint64
	Lost           uint64 // fault-injected losses (Config.Faults / LossProb)
	Duplicated     uint64 // fault-injected duplicate arrivals
	ForwardVictim  uint64
	ForwardCausal  uint64
	TerminalHost   uint64 // PFC trace ended at a host-facing port
	TerminalLocal  uint64 // PFC trace ended at local flow contention
	MirrorsEmitted uint64
}

// NewHandler builds the polling logic bound to a switch's telemetry.
func NewHandler(tel *telemetry.State, cfg Config, mirror Mirror, now func() sim.Time) *Handler {
	return &Handler{
		Tel:      tel,
		Cfg:      cfg,
		mirror:   mirror,
		now:      now,
		lastSeen: make(map[packet.FiveTuple]sim.Time),
	}
}

// HandlePolling implements device.PollHandler.
func (h *Handler) HandlePolling(sw *device.Switch, pkt *packet.Packet, inPort int) {
	hdr := pkt.Poll
	if hdr == nil || hdr.Flag == packet.FlagUseless || hdr.HopsLow == 0 {
		h.Dropped++
		return
	}
	if f := h.Cfg.Faults; f != nil {
		if f.DropPolling(sw.ID, *hdr) {
			h.Lost++
			return
		}
		if f.DuplicatePolling(sw.ID, *hdr) {
			// The duplicate takes the full handler path; the per-victim
			// dedup window is the mechanism that absorbs it.
			h.Duplicated++
			h.handle(sw, hdr, inPort)
		}
	} else if h.Cfg.LossProb > 0 && h.Cfg.Rng != nil && h.Cfg.Rng.Float64() < h.Cfg.LossProb {
		// Deprecated LossProb shim (pre-chaos failure testing).
		h.Lost++
		return
	}
	h.handle(sw, hdr, inPort)
}

// handle is the fault-free polling pipeline of Fig. 6.
func (h *Handler) handle(sw *device.Switch, hdr *packet.PollingHeader, inPort int) {
	now := h.now()
	if last, ok := h.lastSeen[hdr.Victim]; ok && now-last < h.Cfg.Dedup {
		h.Dropped++
		return
	}
	h.lastSeen[hdr.Victim] = now
	h.Handled++

	// Mirror to the CPU port: triggers asynchronous telemetry collection
	// without touching the forwarding path.
	if h.mirror != nil {
		h.MirrorsEmitted++
		h.mirror.MirrorPolling(sw.ID, h.Tel, *hdr, inPort)
	}

	if hdr.Flag.TraceVictim() {
		h.traceVictim(sw, hdr, inPort)
	}
	if hdr.Flag.TracePFC() {
		h.traceCausality(sw, hdr, inPort)
	}
}

// traceVictim unicasts the polling packet along the victim flow's own
// route, upgrading the flag when the victim is PFC-paused here.
func (h *Handler) traceVictim(sw *device.Switch, hdr *packet.PollingHeader, inPort int) {
	out, ok := sw.RouteFor(hdr.Victim)
	if !ok {
		return
	}
	flag := packet.FlagVictimPath
	_, flowPaused, found := h.Tel.FlowPausedRecently(hdr.Victim)
	paused := flowPaused || (!found && h.Tel.PortPausedRecently(out))
	if paused {
		// Notify the next switch (the PAUSE sender for this egress) to
		// analyze its PFC causality.
		flag = packet.FlagBoth
	}
	h.ForwardVictim++
	h.emit(sw, hdr, inPort, out, flag)
}

// traceCausality multicasts toward every egress port causally relevant to
// the PFC backpressure felt at inPort: ports that carried traffic from
// inPort (meter > 0) and are themselves PFC-paused. Ports that carried
// traffic but are not paused are initial congestion points; host-facing
// paused ports mean host PFC injection. Both terminate the trace — the
// telemetry collected here is what diagnosis needs.
func (h *Handler) traceCausality(sw *device.Switch, hdr *packet.PollingHeader, inPort int) {
	for out := 0; out < sw.NumPorts(); out++ {
		if out == inPort {
			continue
		}
		if h.Tel.MeterRecent(inPort, out) == 0 {
			continue
		}
		switch {
		case !h.Tel.PortPausedRecently(out):
			h.TerminalLocal++
		case sw.IsHostFacing(out):
			h.TerminalHost++
		default:
			h.ForwardCausal++
			h.emit(sw, hdr, inPort, out, packet.FlagPFCOnly)
		}
	}
}

// emit clones the polling packet with the new flag and queues it on the
// control class of the chosen egress.
func (h *Handler) emit(sw *device.Switch, hdr *packet.PollingHeader, inPort, out int, flag packet.PollingFlag) {
	clone := &packet.Packet{
		Type:  packet.TypePolling,
		Flow:  hdr.Victim,
		Class: packet.ClassControl,
		Size:  packet.PollingPacketSize,
		Poll: &packet.PollingHeader{
			Flag:    flag,
			Victim:  hdr.Victim,
			DiagID:  hdr.DiagID,
			HopsLow: hdr.HopsLow - 1,
		},
	}
	sw.EnqueueAt(clone, inPort, out)
}

package polling

import (
	"testing"

	"hawkeye/internal/cluster"
	"hawkeye/internal/device"
	"hawkeye/internal/packet"
	"hawkeye/internal/sim"
	"hawkeye/internal/telemetry"
	"hawkeye/internal/topo"
)

// fixture: a 3-switch chain with telemetry and polling handlers installed
// manually, so tests can inject polling packets and inspect decisions.

type fakeMirror struct {
	calls []struct {
		sw     topo.NodeID
		hdr    packet.PollingHeader
		inPort int
	}
}

func (m *fakeMirror) MirrorPolling(sw topo.NodeID, tel *telemetry.State, hdr packet.PollingHeader, inPort int) {
	m.calls = append(m.calls, struct {
		sw     topo.NodeID
		hdr    packet.PollingHeader
		inPort int
	}{sw, hdr, inPort})
}

type fixture struct {
	horizon sim.Time
	cl      *cluster.Cluster
	d       *topo.Dumbbell
	tels    map[topo.NodeID]*telemetry.State
	hands   map[topo.NodeID]*Handler
	mirror  *fakeMirror
	victim  packet.FiveTuple
	victimH topo.NodeID
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	d, err := topo.NewChain(3, 2, topo.DefaultBandwidth, topo.DefaultDelay)
	if err != nil {
		t.Fatal(err)
	}
	r := topo.ComputeRouting(d.Topology)
	cl := cluster.New(d.Topology, r, cluster.DefaultConfig(d.Topology))
	fx := &fixture{
		cl:     cl,
		d:      d,
		tels:   make(map[topo.NodeID]*telemetry.State),
		hands:  make(map[topo.NodeID]*Handler),
		mirror: &fakeMirror{},
	}
	cfg := telemetry.DefaultConfig()
	for id, sw := range cl.Switches {
		tel, err := telemetry.New(cfg, id, sw.Name, sw.NumPorts(), cl.Topo.LinkBandwidth, cl.Eng.Now, nil)
		if err != nil {
			t.Fatal(err)
		}
		fx.tels[id] = tel
		sw.AddInstrument(tel)
		h := NewHandler(tel, DefaultConfig(), fx.mirror, cl.Eng.Now)
		fx.hands[id] = h
		sw.SetPollHandler(h)
	}
	// The victim flow goes end to end: h0-0 -> h2-0.
	fx.victimH = d.HostsAt[0][0]
	fx.victim = packet.FiveTuple{
		SrcIP:   cl.Topo.Node(fx.victimH).IP,
		DstIP:   cl.Topo.Node(d.HostsAt[2][0]).IP,
		SrcPort: 1024, DstPort: 4791, Proto: packet.ProtoUDP,
	}
	return fx
}

func pollPacket(victim packet.FiveTuple, flag packet.PollingFlag) *packet.Packet {
	return &packet.Packet{
		Type:  packet.TypePolling,
		Flow:  victim,
		Class: packet.ClassControl,
		Size:  packet.PollingPacketSize,
		Poll:  &packet.PollingHeader{Flag: flag, Victim: victim, DiagID: 1, HopsLow: 8},
	}
}

// inject delivers a polling packet to a switch and runs the engine for a
// bounded slice of virtual time (host watchdog timers re-arm forever, so
// the queue never drains on its own).
func (fx *fixture) inject(sw *device.Switch, pkt *packet.Packet, inPort int) {
	sw.Receive(pkt, inPort)
	fx.horizon += 200 * sim.Microsecond
	fx.cl.Eng.Run(fx.horizon)
}

func TestPollingFollowsVictimPath(t *testing.T) {
	fx := newFixture(t)
	sw0 := fx.cl.Switches[fx.d.Switches[0]]
	// No congestion anywhere: the polling packet should travel the victim
	// path, mirroring at each switch, and end at the victim's host.
	fx.inject(sw0, pollPacket(fx.victim, packet.FlagVictimPath), 1)
	if len(fx.mirror.calls) != 3 {
		t.Fatalf("mirrored at %d switches, want 3", len(fx.mirror.calls))
	}
	dst := fx.cl.Hosts[fx.d.HostsAt[2][0]]
	if dst.PolledReceived != 1 {
		t.Fatalf("victim destination host saw %d polling packets, want 1", dst.PolledReceived)
	}
	// Without PFC, the flag must never be upgraded.
	for _, c := range fx.mirror.calls {
		if c.hdr.Flag.TracePFC() {
			t.Fatalf("flag upgraded without PFC: %+v", c)
		}
	}
}

func TestPollingUpgradesFlagWhenVictimPaused(t *testing.T) {
	fx := newFixture(t)
	sw0 := fx.cl.Switches[fx.d.Switches[0]]
	// Mark the victim flow as paused at sw0's egress toward sw1 by
	// feeding telemetry a paused enqueue.
	out, ok := sw0.RouteFor(fx.victim)
	if !ok {
		t.Fatal("no route")
	}
	fx.tels[sw0.ID].OnEnqueue(device.EnqueueEvent{
		Pkt:    &packet.Packet{Type: packet.TypeData, Flow: fx.victim, Class: packet.ClassLossless, Size: 1000},
		InPort: 1, OutPort: out, QueueBytes: 5000, Paused: true, Now: fx.cl.Eng.Now(),
	})
	fx.inject(sw0, pollPacket(fx.victim, packet.FlagVictimPath), 1)
	// sw1 must have received the polling with the PFC bit set.
	sw1 := fx.d.Switches[1]
	found := false
	for _, c := range fx.mirror.calls {
		if c.sw == sw1 && c.hdr.Flag.TracePFC() {
			found = true
		}
	}
	if !found {
		t.Fatalf("PFC bit not propagated to sw1; calls=%+v", fx.mirror.calls)
	}
}

func TestCausalityMulticastUsesMeterAndPause(t *testing.T) {
	fx := newFixture(t)
	sw1dev := fx.cl.Switches[fx.d.Switches[1]]
	tel := fx.tels[sw1dev.ID]
	// Ingress 0; egress 1 carried traffic and is paused; egress 2 carried
	// traffic but is not paused (initial congestion); egress 3 idle.
	mk := func(out int, paused bool) {
		tel.OnEnqueue(device.EnqueueEvent{
			Pkt:    &packet.Packet{Type: packet.TypeData, Flow: fx.victim, Class: packet.ClassLossless, Size: 1000},
			InPort: 0, OutPort: out, QueueBytes: 1000, Paused: paused, Now: fx.cl.Eng.Now(),
		})
	}
	mk(1, true)
	mk(2, false)
	h := fx.hands[sw1dev.ID]
	h.HandlePolling(sw1dev, pollPacket(fx.victim, packet.FlagPFCOnly), 0)
	if h.ForwardCausal != 1 {
		t.Fatalf("causal forwards = %d, want 1 (only the paused metered port)", h.ForwardCausal)
	}
	if h.TerminalLocal != 1 {
		t.Fatalf("local terminals = %d, want 1 (metered unpaused port)", h.TerminalLocal)
	}
}

func TestCausalityTerminalAtHostFacingPort(t *testing.T) {
	fx := newFixture(t)
	sw2dev := fx.cl.Switches[fx.d.Switches[2]]
	tel := fx.tels[sw2dev.ID]
	// Find a host-facing egress on sw2.
	hostPort := -1
	for pi := 0; pi < sw2dev.NumPorts(); pi++ {
		if sw2dev.IsHostFacing(pi) {
			hostPort = pi
			break
		}
	}
	tel.OnEnqueue(device.EnqueueEvent{
		Pkt:    &packet.Packet{Type: packet.TypeData, Flow: fx.victim, Class: packet.ClassLossless, Size: 1000},
		InPort: 0, OutPort: hostPort, QueueBytes: 1000, Paused: true, Now: fx.cl.Eng.Now(),
	})
	h := fx.hands[sw2dev.ID]
	h.HandlePolling(sw2dev, pollPacket(fx.victim, packet.FlagPFCOnly), 0)
	if h.TerminalHost != 1 || h.ForwardCausal != 0 {
		t.Fatalf("host terminal=%d causal=%d, want 1/0", h.TerminalHost, h.ForwardCausal)
	}
}

func TestPollingDedupWindow(t *testing.T) {
	fx := newFixture(t)
	sw0 := fx.cl.Switches[fx.d.Switches[0]]
	h := fx.hands[sw0.ID]
	fx.inject(sw0, pollPacket(fx.victim, packet.FlagVictimPath), 1)
	fx.inject(sw0, pollPacket(fx.victim, packet.FlagVictimPath), 1)
	if h.Handled != 1 || h.Dropped != 1 {
		t.Fatalf("handled=%d dropped=%d, want 1/1 within dedup window", h.Handled, h.Dropped)
	}
	// A different victim is not deduped.
	other := fx.victim
	other.SrcPort++
	fx.inject(sw0, pollPacket(other, packet.FlagVictimPath), 1)
	if h.Handled != 2 {
		t.Fatalf("different victim deduped; handled=%d", h.Handled)
	}
}

func TestPollingDropsUselessAndExpired(t *testing.T) {
	fx := newFixture(t)
	sw0 := fx.cl.Switches[fx.d.Switches[0]]
	h := fx.hands[sw0.ID]
	fx.inject(sw0, pollPacket(fx.victim, packet.FlagUseless), 1)
	expired := pollPacket(fx.victim, packet.FlagVictimPath)
	expired.Poll.HopsLow = 0
	fx.inject(sw0, expired, 1)
	if h.Handled != 0 || h.Dropped != 2 {
		t.Fatalf("handled=%d dropped=%d, want 0/2", h.Handled, h.Dropped)
	}
	if len(fx.mirror.calls) != 0 {
		t.Fatal("dropped packets still mirrored")
	}
}

func TestPollingTTLDecrements(t *testing.T) {
	fx := newFixture(t)
	sw0 := fx.cl.Switches[fx.d.Switches[0]]
	pkt := pollPacket(fx.victim, packet.FlagVictimPath)
	pkt.Poll.HopsLow = 2
	fx.inject(sw0, pkt, 1)
	// sw0 (2) -> sw1 (1) -> sw2 (0 at arrival? decremented per emit):
	// each forward decrements; with TTL 2 the packet reaches sw1 with 1
	// and sw2 with 0, where it is dropped without forwarding.
	var ttls []uint8
	for _, c := range fx.mirror.calls {
		ttls = append(ttls, c.hdr.HopsLow)
	}
	if len(fx.mirror.calls) != 2 {
		t.Fatalf("mirrors = %d (ttls %v), want 2 with TTL 2", len(fx.mirror.calls), ttls)
	}
}

func TestLossInjection(t *testing.T) {
	fx := newFixture(t)
	sw0 := fx.cl.Switches[fx.d.Switches[0]]
	h := fx.hands[fx.d.Switches[0]]

	// Certain loss: every polling packet vanishes before any processing.
	h.Cfg.LossProb = 1
	h.Cfg.Rng = sim.NewRand(7)
	for i := 0; i < 5; i++ {
		v := fx.victim
		v.SrcPort += uint16(i) // distinct victims bypass dedup
		fx.inject(sw0, pollPacket(v, packet.FlagVictimPath), 0)
	}
	if h.Lost != 5 || h.Handled != 0 {
		t.Fatalf("lost=%d handled=%d, want 5/0", h.Lost, h.Handled)
	}
	if len(fx.mirror.calls) != 0 {
		t.Fatal("lost packets still triggered collection")
	}

	// Zero probability: back to normal.
	h.Cfg.LossProb = 0
	fx.inject(sw0, pollPacket(fx.victim, packet.FlagVictimPath), 0)
	if h.Handled != 1 {
		t.Fatalf("handled=%d after disabling loss", h.Handled)
	}
}

func TestPartialLossStillForwards(t *testing.T) {
	fx := newFixture(t)
	sw0 := fx.cl.Switches[fx.d.Switches[0]]
	h := fx.hands[fx.d.Switches[0]]
	h.Cfg.LossProb = 0.5
	h.Cfg.Rng = sim.NewRand(1)
	n := 40
	for i := 0; i < n; i++ {
		v := fx.victim
		v.SrcPort += uint16(i)
		fx.inject(sw0, pollPacket(v, packet.FlagVictimPath), 0)
	}
	if h.Lost == 0 || h.Handled == 0 {
		t.Fatalf("lost=%d handled=%d, want both non-zero at p=0.5", h.Lost, h.Handled)
	}
	if h.Lost+h.Handled != uint64(n) {
		t.Fatalf("lost+handled=%d, want %d", h.Lost+h.Handled, n)
	}
}

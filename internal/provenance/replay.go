package provenance

import (
	"hawkeye/internal/packet"
	"hawkeye/internal/telemetry"
	"hawkeye/internal/topo"
)

// epochFlows is the raw per-epoch flow population at one port, the input
// to contention analysis. Keeping epochs separate is essential: it is
// exactly what makes diagnosis sensitive to the epoch size (Fig. 7) —
// telemetry from two unrelated events only blurs together when they
// share an epoch.
type epochFlows struct {
	flows []telemetry.FlowRecord
}

// collectContention groups per-epoch flow records by egress port.
func collectContention(reports []*telemetry.Report) map[topo.PortRef][]epochFlows {
	byPort := make(map[topo.PortRef][]epochFlows)
	for _, rep := range reports {
		for ei := range rep.Epochs {
			perPort := make(map[topo.PortRef][]telemetry.FlowRecord)
			for _, fr := range rep.Epochs[ei].Flows {
				ref := topo.PortRef{Node: rep.Switch, Port: fr.OutPort}
				perPort[ref] = append(perPort[ref], fr)
			}
			for ref, flows := range perPort {
				byPort[ref] = append(byPort[ref], epochFlows{flows: flows})
			}
		}
	}
	return byPort
}

// buildPortFlowEdges computes the port-flow wait-for weights (Algorithm 1,
// ReplayQueue + Contribution) for every reported port.
//
// The telemetry holds, per flow and epoch, the deep-enqueue count n_i
// (packets that entered the congested queue unpaused) and the average
// backlog those packets saw, d_i (in packets). Under the uniform
// enqueue-spreading that ReplayQueue line 24 applies, the expected queue
// composition in front of any packet is the flows' deep-count shares, so
// flow i's waiting (d_i per enqueue) is distributed over the other flows
// by count share:
//
//	w(f_i, f_j) = d_i * n_j / Σ_k n_k
//
// — the share runs over ALL deep enqueues including f_i's own, because a
// packet also queues behind its own flow's earlier packets; Algorithm 1
// counts those in W[i][i] and then drops the self term in Contribution.
// That dropped self-waiting is what separates an aggressor from a victim
// at equal depths: a flow contributing most of the queue directs most of
// its waiting at itself (discarded), while a low-rate victim directs
// almost all of its waiting at others. The final weight is (§3.5.1)
//
//	Contrb[f] = Σ_{i≠f} w(f_i, f) − Σ_{k≠f} w(f, f_k),
//
// positive for contention contributors, negative for victims. Symmetric
// sharers cancel to zero; paused and shallow enqueues carry no contention
// evidence and are excluded at the telemetry level. Contributions are
// computed within each epoch and summed: flows that never share an epoch
// owe each other nothing.
func (g *Graph) buildPortFlowEdges() {
	for ref, epochs := range g.contention {
		totals := make(map[packet.FiveTuple]float64)
		present := make(map[packet.FiveTuple]bool)
		for _, ef := range epochs {
			epochContribution(totals, present, ef)
		}
		if len(present) == 0 {
			continue
		}
		edges := make(map[packet.FiveTuple]float64, len(present))
		for f := range present {
			edges[f] = totals[f]
		}
		g.PortFlow[ref] = edges
	}
}

// epochContribution folds one epoch's contention into totals.
func epochContribution(totals map[packet.FiveTuple]float64, present map[packet.FiveTuple]bool, ef epochFlows) {
	type pop struct {
		tuple packet.FiveTuple
		n     float64 // deep (contention) enqueues
		d     float64 // avg backlog those enqueues saw, in packets
	}
	var pops []pop
	var totalN float64
	for _, fr := range ef.flows {
		// Every observed flow is "present" (it gets a weight, possibly
		// zero); only deep enqueues join the contention population.
		present[fr.Tuple] = true
		n := float64(fr.DeepCount)
		if n <= 0 {
			continue
		}
		avgPkt := float64(fr.Bytes) / float64(fr.PktCount)
		d := 0.0
		if avgPkt > 0 {
			d = fr.AvgQdepth() / avgPkt
		}
		pops = append(pops, pop{tuple: fr.Tuple, n: n, d: d})
		totalN += n
	}
	if len(pops) < 2 {
		return // a lone flow contends with nobody
	}
	for i := range pops {
		if pops[i].d == 0 {
			continue
		}
		for j := range pops {
			if j == i {
				continue // W[i][i] is dropped (Algorithm 1 line 36)
			}
			w := pops[i].d * pops[j].n / totalN
			totals[pops[j].tuple] += w
			totals[pops[i].tuple] -= w
		}
	}
}

// Package provenance builds Hawkeye's heterogeneous wait-for provenance
// graph (§3.5.1, Algorithm 1) from collected telemetry reports: port-level
// edges encode PFC spreading causality, flow-port edges encode how badly
// each flow is paused, and port-flow edges encode each flow's contribution
// to local queue contention.
package provenance

import (
	"fmt"
	"sort"
	"strings"

	"hawkeye/internal/packet"
	"hawkeye/internal/telemetry"
	"hawkeye/internal/topo"
)

// Config tunes graph construction.
type Config struct {
	// LinkBandwidth (bps) scales burst-rate classification.
	LinkBandwidth float64
	// EpochSize is the telemetry epoch duration in nanoseconds.
	EpochSizeNS int64
	// BurstRateFrac: a flow whose peak per-epoch arrival rate exceeds
	// this fraction of the link rate is burst-classified.
	BurstRateFrac float64
	// BurstMaxEpochs: burst flows are short — present in at most this
	// many epochs at the congested port.
	BurstMaxEpochs int
	// MaxReplay caps the queue-replay length per port-epoch; larger
	// populations are proportionally subsampled.
	MaxReplay int
	// CongestedQdepthBytes: a port with no paused packets only counts as
	// a congested wait-for target when its average queue depth reaches
	// this bound. Filters trivially non-empty queues (e.g. host-facing
	// ports draining normally) out of the port-level causality.
	CongestedQdepthBytes float64
}

// DefaultConfig sizes burst classification for 100 Gbps links.
func DefaultConfig(linkBps float64, epochNS int64) Config {
	return Config{
		LinkBandwidth:        linkBps,
		EpochSizeNS:          epochNS,
		BurstRateFrac:        0.15,
		BurstMaxEpochs:       3,
		MaxReplay:            20000,
		CongestedQdepthBytes: 8192,
	}
}

// PortInfo aggregates one egress port's telemetry across reported epochs
// plus the live registers from the report's status block. The live
// registers matter under deadlock, where per-packet counters freeze with
// the traffic but pause state and stuck queues persist.
type PortInfo struct {
	Ref       topo.PortRef
	PktCount  uint64
	PausedNum uint64
	QdepthSum uint64
	Bytes     uint64
	PausedNow bool
	// StatusQdepth is the live egress backlog register at snapshot time.
	StatusQdepth float64
	// Epochs counts how many collected epochs carried a record for this
	// port; PausedEpochs how many of those saw it paused. Under telemetry
	// loss these are the per-node evidence mass behind every conclusion
	// drawn from the port.
	Epochs       int
	PausedEpochs int
}

// AvgQdepth is the mean backlog (bytes) packets saw at this port.
func (p *PortInfo) AvgQdepth() float64 {
	if p.PktCount == 0 {
		return 0
	}
	return float64(p.QdepthSum) / float64(p.PktCount)
}

// Qdepth is the congestion magnitude used for edge weights: the larger
// of the per-packet average and the live register.
func (p *PortInfo) Qdepth() float64 {
	if p.StatusQdepth > 0 && p.StatusQdepth > p.AvgQdepth() {
		return p.StatusQdepth
	}
	return p.AvgQdepth()
}

// PausedSeverity quantifies how paused the port is for edge weighting:
// the paused-packet count, or 1 when only the live status says paused.
func (p *PortInfo) PausedSeverity() float64 {
	if p.PausedNum > 0 {
		return float64(p.PausedNum)
	}
	if p.PausedNow {
		return 1
	}
	return 0
}

// FlowInfo aggregates one flow's telemetry at one switch port.
type FlowInfo struct {
	Tuple        packet.FiveTuple
	Port         topo.PortRef
	PktCount     uint64
	PausedNum    uint64
	QdepthSum    uint64
	Bytes        uint64
	ActiveEpochs int
	// PausedEpochs counts the epochs in which the flow saw pause at this
	// port (evidence mass for flow-port edges).
	PausedEpochs int
	PeakRateBps  float64
}

// flowAt identifies a flow at a specific port (flows appear at many
// switches; contention analysis is per port).
type flowAt struct {
	tuple packet.FiveTuple
	port  topo.PortRef
}

// Graph is the heterogeneous wait-for provenance graph.
type Graph struct {
	Cfg Config

	Ports map[topo.PortRef]*PortInfo
	// Flows indexes per-(flow, port) aggregates.
	Flows map[packet.FiveTuple]map[topo.PortRef]*FlowInfo

	// PortEdges: wait-for edges between congested egress ports
	// (Pi waits for downstream Pj to drain).
	PortEdges map[topo.PortRef]map[topo.PortRef]float64
	// FlowPort: flow f waits for paused port P; weight = paused packets.
	FlowPort map[packet.FiveTuple]map[topo.PortRef]float64
	// PortFlow: port P waits for its contending flows; weight = net
	// contention contribution (positive = contributor, negative = victim).
	PortFlow map[topo.PortRef]map[packet.FiveTuple]float64

	// PortEdgeEvidence counts the independent telemetry samples backing
	// each port-level wait-for edge: paused epochs at the source, record
	// epochs at the destination, plus the causality-meter read. An edge
	// with evidence 1 survives on a single register sample — under fault
	// injection that is the difference between a conclusion and a guess.
	PortEdgeEvidence map[topo.PortRef]map[topo.PortRef]int

	// Hosts holds the host leaf nodes: admitted host-agent counter
	// snapshots, keyed by host. The pause-propagation walk consults them
	// when it terminates at a host-facing port — the endpoint evidence
	// that separates a host-caused pause from an in-network one.
	Hosts map[topo.NodeID]*HostInfo

	// Coverage describes how much of the wanted telemetry this graph was
	// actually built from. Always non-nil after Build.
	Coverage *Coverage

	// contention holds the per-epoch flow populations per port, the raw
	// material for queue replay (kept epoch-separated on purpose).
	contention map[topo.PortRef][]epochFlows
}

// HostInfo is one host leaf node of the wait-for graph: the freshest
// admitted host-agent counter snapshot for the host.
type HostInfo struct {
	Host   topo.NodeID
	Report telemetry.HostReport
}

// BufferFrac is the RX-buffer occupancy as a fraction of capacity (0
// when the host runs no bounded buffer).
func (h *HostInfo) BufferFrac() float64 {
	if h.Report.RxBufferCap == 0 {
		return 0
	}
	return float64(h.Report.RxBufferBytes) / float64(h.Report.RxBufferCap)
}

// Coverage quantifies the telemetry the graph was built from versus what
// the analyzer wanted, so diagnosis can say how much evidence is missing
// instead of silently concluding from partial inputs.
type Coverage struct {
	// Collected counts the reports the graph ingested; Switches marks
	// which switches they came from.
	Collected int
	Switches  map[topo.NodeID]bool
	// EpochsCollected totals the epoch payloads across those reports
	// (epoch-ring loss shows up here, not in Collected).
	EpochsCollected int
	// EpochsBySwitch breaks EpochsCollected down per reporting switch, so
	// diagnosis can tell whether a specific conclusion rests on an
	// epoch-incomplete report (the switch lost epochs its peers kept).
	EpochsBySwitch map[topo.NodeID]int
	// Expected is how many switches the analyzer wanted reports from; 0
	// means unknown (e.g. analyzd ingests externally chosen report sets).
	Expected int
	// MissingSwitches lists expected switches that never reported, sorted.
	MissingSwitches []topo.NodeID
	// Rejected counts reports that failed admission validation and never
	// entered the graph; RejectedBySwitch attributes them where the switch
	// ID itself was credible. A switch that is present here but absent
	// from Switches was heard from and disbelieved — a different failure
	// from never reporting at all.
	Rejected         int
	RejectedBySwitch map[topo.NodeID]int
	// Clamped counts field values admission sanitization had to pull back
	// into physical plausibility; Suspect counts records Build itself
	// skipped because they referenced ports outside the topology. Either
	// being non-zero means some accepted evidence was corrupt.
	Clamped int
	Suspect int

	// Host-agent channel coverage, mirroring the switch fields: which
	// hosts the analyzer wanted counter snapshots from, which delivered,
	// and how many host reports failed admission. Missing or disbelieved
	// host telemetry is exactly the blind spot that turns a host-caused
	// anomaly into a confident-looking network verdict, so diagnosis
	// reads these when a conclusion implicates a host.
	HostsExpected  int
	Hosts          map[topo.NodeID]bool
	MissingHosts   []topo.NodeID
	HostsRejected  int
	RejectedByHost map[topo.NodeID]int
}

// NoteRejected records a report that failed admission validation. Pass
// sw < 0 when the report could not be credibly attributed to any switch.
func (c *Coverage) NoteRejected(sw topo.NodeID) {
	c.Rejected++
	if sw >= 0 {
		if c.RejectedBySwitch == nil {
			c.RejectedBySwitch = make(map[topo.NodeID]int)
		}
		c.RejectedBySwitch[sw]++
	}
}

// NoteHostRejected records a host-agent report that failed admission.
// Pass id < 0 when the report could not be credibly attributed.
func (c *Coverage) NoteHostRejected(id topo.NodeID) {
	c.HostsRejected++
	if id >= 0 {
		if c.RejectedByHost == nil {
			c.RejectedByHost = make(map[topo.NodeID]int)
		}
		c.RejectedByHost[id]++
	}
}

// SetExpectedHosts declares the host set the analyzer queried for
// counter snapshots (the victim's endpoints and the hosts hanging off
// its path edge switches) and computes the missing set.
func (c *Coverage) SetExpectedHosts(expected []topo.NodeID) {
	c.HostsExpected = len(expected)
	c.MissingHosts = nil
	for _, id := range expected {
		if !c.Hosts[id] {
			c.MissingHosts = append(c.MissingHosts, id)
		}
	}
	sort.Slice(c.MissingHosts, func(i, j int) bool {
		return c.MissingHosts[i] < c.MissingHosts[j]
	})
}

// HostFrac is the fraction of expected hosts that delivered an admitted
// snapshot (1 when the expectation is unknown).
func (c *Coverage) HostFrac() float64 {
	if c.HostsExpected == 0 {
		return 1
	}
	return float64(c.HostsExpected-len(c.MissingHosts)) / float64(c.HostsExpected)
}

// SetExpected declares the switch set the analyzer wanted telemetry from
// (typically the victim's path) and computes the missing set.
func (c *Coverage) SetExpected(expected []topo.NodeID) {
	c.Expected = len(expected)
	c.MissingSwitches = nil
	for _, id := range expected {
		if !c.Switches[id] {
			c.MissingSwitches = append(c.MissingSwitches, id)
		}
	}
	sort.Slice(c.MissingSwitches, func(i, j int) bool {
		return c.MissingSwitches[i] < c.MissingSwitches[j]
	})
}

// Frac is the fraction of expected switches that reported (1 when the
// expectation is unknown: no evidence of absence).
func (c *Coverage) Frac() float64 {
	if c.Expected == 0 {
		return 1
	}
	return float64(c.Expected-len(c.MissingSwitches)) / float64(c.Expected)
}

// AvgEpochs is the mean epoch payloads per collected report.
func (c *Coverage) AvgEpochs() float64 {
	if c.Collected == 0 {
		return 0
	}
	return float64(c.EpochsCollected) / float64(c.Collected)
}

// MaxSwitchEpochs returns the largest per-switch epoch count — the
// best-covered report, against which epoch-incomplete ones stand out.
func (c *Coverage) MaxSwitchEpochs() int {
	max := 0
	for _, n := range c.EpochsBySwitch {
		if n > max {
			max = n
		}
	}
	return max
}

// SwitchEpochs returns how many epoch payloads switch id contributed.
func (c *Coverage) SwitchEpochs(id topo.NodeID) int { return c.EpochsBySwitch[id] }

// NewGraph returns an empty graph.
func NewGraph(cfg Config) *Graph {
	return &Graph{
		Cfg:              cfg,
		Ports:            make(map[topo.PortRef]*PortInfo),
		Flows:            make(map[packet.FiveTuple]map[topo.PortRef]*FlowInfo),
		PortEdges:        make(map[topo.PortRef]map[topo.PortRef]float64),
		FlowPort:         make(map[packet.FiveTuple]map[topo.PortRef]float64),
		PortFlow:         make(map[topo.PortRef]map[packet.FiveTuple]float64),
		PortEdgeEvidence: make(map[topo.PortRef]map[topo.PortRef]int),
		Hosts:            make(map[topo.NodeID]*HostInfo),
		Coverage: &Coverage{
			Switches:       make(map[topo.NodeID]bool),
			EpochsBySwitch: make(map[topo.NodeID]int),
			Hosts:          make(map[topo.NodeID]bool),
		},
	}
}

// AddHostReport ingests one admitted host-agent snapshot as a host leaf
// node. Out-of-topology or non-host records are skipped and counted
// Suspect, mirroring Build's own-invariant discipline; when the same
// host reports twice the freshest snapshot wins.
func (g *Graph) AddHostReport(hr *telemetry.HostReport, t *topo.Topology) {
	if int(hr.Host) < 0 || int(hr.Host) >= len(t.Nodes) || t.Nodes[hr.Host].Kind != topo.KindHost {
		g.Coverage.Suspect++
		return
	}
	cur := g.Hosts[hr.Host]
	if cur == nil || hr.Taken >= cur.Report.Taken {
		g.Hosts[hr.Host] = &HostInfo{Host: hr.Host, Report: *hr}
	}
	g.Coverage.Hosts[hr.Host] = true
}

// EdgeEvidence returns the telemetry-sample count backing the a -> b
// port edge (0 when the edge does not exist).
func (g *Graph) EdgeEvidence(a, b topo.PortRef) int { return g.PortEdgeEvidence[a][b] }

// OutDegreeP returns the port-level out-degree of p (Table 2 signatures).
func (g *Graph) OutDegreeP(p topo.PortRef) int { return len(g.PortEdges[p]) }

// PortNeighbors returns the downstream congested ports p waits for,
// sorted for determinism.
func (g *Graph) PortNeighbors(p topo.PortRef) []topo.PortRef {
	out := make([]topo.PortRef, 0, len(g.PortEdges[p]))
	for q := range g.PortEdges[p] {
		out = append(out, q)
	}
	sortPortRefs(out)
	return out
}

// VictimPorts returns the ports where flow f is recorded as PFC-paused,
// sorted by descending weight.
func (g *Graph) VictimPorts(f packet.FiveTuple) []topo.PortRef {
	var out []topo.PortRef
	for p, w := range g.FlowPort[f] {
		if w > 0 {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		wi, wj := g.FlowPort[f][out[i]], g.FlowPort[f][out[j]]
		if wi != wj {
			return wi > wj
		}
		return lessPortRef(out[i], out[j])
	})
	return out
}

// PausedPorts returns every port that is paused (by packet counters or
// live status), sorted. Diagnosis falls back to these walk roots when a
// deadlock froze the victim's own telemetry.
func (g *Graph) PausedPorts() []topo.PortRef {
	var out []topo.PortRef
	for p, info := range g.Ports {
		if info.PausedSeverity() > 0 {
			out = append(out, p)
		}
	}
	sortPortRefs(out)
	return out
}

// FlowPathPorts returns every port where flow f left telemetry (its
// observed path), sorted for determinism.
func (g *Graph) FlowPathPorts(f packet.FiveTuple) []topo.PortRef {
	var out []topo.PortRef
	for p := range g.Flows[f] {
		out = append(out, p)
	}
	sortPortRefs(out)
	return out
}

// Contributors returns the flows with positive port-flow weight at p,
// descending.
func (g *Graph) Contributors(p topo.PortRef) []packet.FiveTuple {
	var out []packet.FiveTuple
	for f, w := range g.PortFlow[p] {
		if w > 0 {
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		wi, wj := g.PortFlow[p][out[i]], g.PortFlow[p][out[j]]
		if wi != wj {
			return wi > wj
		}
		return out[i].String() < out[j].String()
	})
	return out
}

// MaxPortFlowWeight returns the largest port-flow weight at p (0 when the
// port has no flow edges).
func (g *Graph) MaxPortFlowWeight(p topo.PortRef) float64 {
	max := 0.0
	for _, w := range g.PortFlow[p] {
		if w > max {
			max = w
		}
	}
	return max
}

// IsBurstFlow applies the burst-flow(f) predicate from Table 2 at port p:
// high peak arrival rate concentrated in few epochs.
func (g *Graph) IsBurstFlow(f packet.FiveTuple, p topo.PortRef) bool {
	fi := g.Flows[f][p]
	if fi == nil {
		return false
	}
	return fi.PeakRateBps >= g.Cfg.BurstRateFrac*g.Cfg.LinkBandwidth &&
		fi.ActiveEpochs <= g.Cfg.BurstMaxEpochs
}

// String renders the graph in a compact human-readable form (case
// studies, Fig. 12).
func (g *Graph) String() string {
	var b strings.Builder
	b.WriteString("provenance graph:\n")
	ports := make([]topo.PortRef, 0, len(g.Ports))
	for p := range g.Ports {
		ports = append(ports, p)
	}
	sortPortRefs(ports)
	for _, p := range ports {
		info := g.Ports[p]
		fmt.Fprintf(&b, "  port %v paused=%d qdepth=%.0fB\n", p, info.PausedNum, info.AvgQdepth())
		for _, q := range g.PortNeighbors(p) {
			fmt.Fprintf(&b, "    waits-for port %v (w=%.1f)\n", q, g.PortEdges[p][q])
		}
		flows := make([]packet.FiveTuple, 0, len(g.PortFlow[p]))
		for f := range g.PortFlow[p] {
			flows = append(flows, f)
		}
		sort.Slice(flows, func(i, j int) bool { return flows[i].String() < flows[j].String() })
		for _, f := range flows {
			fmt.Fprintf(&b, "    waits-for flow %v (w=%+.2f)\n", f, g.PortFlow[p][f])
		}
	}
	flows := make([]packet.FiveTuple, 0, len(g.FlowPort))
	for f := range g.FlowPort {
		flows = append(flows, f)
	}
	sort.Slice(flows, func(i, j int) bool { return flows[i].String() < flows[j].String() })
	for _, f := range flows {
		for _, p := range g.VictimPorts(f) {
			fmt.Fprintf(&b, "  flow %v paused-at %v (w=%.0f)\n", f, p, g.FlowPort[f][p])
		}
	}
	hosts := make([]topo.NodeID, 0, len(g.Hosts))
	for id := range g.Hosts {
		hosts = append(hosts, id)
	}
	sort.Slice(hosts, func(i, j int) bool { return hosts[i] < hosts[j] })
	for _, id := range hosts {
		r := &g.Hosts[id].Report
		fmt.Fprintf(&b, "  host %d rxbuf=%d/%dB drain=%dbps pauseTx=%d pauseRx=%d proc=%dns qps=%d\n",
			id, r.RxBufferBytes, r.RxBufferCap, r.DrainBps, r.PauseTx, r.PauseRx, r.ProcLatencyNS, r.ActiveQPs)
	}
	return b.String()
}

func sortPortRefs(ps []topo.PortRef) {
	sort.Slice(ps, func(i, j int) bool { return lessPortRef(ps[i], ps[j]) })
}

func lessPortRef(a, b topo.PortRef) bool {
	if a.Node != b.Node {
		return a.Node < b.Node
	}
	return a.Port < b.Port
}

// reportView pre-indexes a report for graph construction.
type reportView struct {
	rep *telemetry.Report
	// meter aggregated across epochs: [in][out] -> bytes.
	meter map[int]map[int]uint64
}

// Build runs Algorithm 1 over the collected reports.
func Build(cfg Config, reports []*telemetry.Report, t *topo.Topology) *Graph {
	g := NewGraph(cfg)
	views := make(map[topo.NodeID]*reportView, len(reports))
	for _, rep := range reports {
		// Reports normally arrive through wire.Validator, but Build must
		// hold its own invariants: an out-of-range node or port index here
		// would flow into PeerOf and panic the analyzer. Skip the record,
		// count it, and let diagnosis discount the result.
		if int(rep.Switch) < 0 || int(rep.Switch) >= len(t.Nodes) {
			g.Coverage.Suspect++
			continue
		}
		nports := len(t.Nodes[rep.Switch].Ports)
		portOK := func(p int) bool {
			if p < 0 || p >= nports {
				g.Coverage.Suspect++
				return false
			}
			return true
		}
		v := &reportView{rep: rep, meter: make(map[int]map[int]uint64)}
		views[rep.Switch] = v
		g.Coverage.Collected++
		g.Coverage.Switches[rep.Switch] = true
		g.Coverage.EpochsCollected += len(rep.Epochs)
		g.Coverage.EpochsBySwitch[rep.Switch] += len(rep.Epochs)
		for _, m := range rep.Meter {
			if !portOK(m.InPort) || !portOK(m.OutPort) {
				continue
			}
			row, ok := v.meter[m.InPort]
			if !ok {
				row = make(map[int]uint64)
				v.meter[m.InPort] = row
			}
			row[m.OutPort] += m.Bytes
		}
		for ei := range rep.Epochs {
			ep := &rep.Epochs[ei]
			for _, pr := range ep.Ports {
				if !portOK(pr.Port) {
					continue
				}
				ref := topo.PortRef{Node: rep.Switch, Port: pr.Port}
				info := g.Ports[ref]
				if info == nil {
					info = &PortInfo{Ref: ref}
					g.Ports[ref] = info
				}
				info.PktCount += uint64(pr.PktCount)
				info.PausedNum += uint64(pr.PausedCount)
				info.QdepthSum += pr.QdepthSum
				info.Bytes += pr.Bytes
				info.Epochs++
				if pr.PausedCount > 0 {
					info.PausedEpochs++
				}
			}
			for _, fr := range ep.Flows {
				if !portOK(fr.OutPort) {
					continue
				}
				ref := topo.PortRef{Node: rep.Switch, Port: fr.OutPort}
				byPort, ok := g.Flows[fr.Tuple]
				if !ok {
					byPort = make(map[topo.PortRef]*FlowInfo)
					g.Flows[fr.Tuple] = byPort
				}
				fi := byPort[ref]
				if fi == nil {
					fi = &FlowInfo{Tuple: fr.Tuple, Port: ref}
					byPort[ref] = fi
				}
				fi.PktCount += uint64(fr.PktCount)
				fi.PausedNum += uint64(fr.PausedCount)
				fi.QdepthSum += fr.QdepthSum
				fi.Bytes += fr.Bytes
				fi.ActiveEpochs++
				if fr.PausedCount > 0 {
					fi.PausedEpochs++
				}
				if cfg.EpochSizeNS > 0 {
					rate := float64(fr.Bytes) * 8 / (float64(cfg.EpochSizeNS) / 1e9)
					if rate > fi.PeakRateBps {
						fi.PeakRateBps = rate
					}
				}
			}
		}
		for _, st := range rep.Status {
			if st.PausedUntil <= rep.Taken && st.QdepthBytes == 0 {
				continue
			}
			if !portOK(st.Port) {
				continue
			}
			ref := topo.PortRef{Node: rep.Switch, Port: st.Port}
			info := g.Ports[ref]
			if info == nil {
				info = &PortInfo{Ref: ref}
				g.Ports[ref] = info
			}
			info.PausedNow = st.PausedUntil > rep.Taken
			info.StatusQdepth = float64(st.QdepthBytes)
		}
	}

	g.contention = collectContention(reports)
	g.buildPortEdges(views, t)
	g.buildFlowPortEdges()
	g.buildPortFlowEdges()
	return g
}

// buildPortEdges adds Pi -> Pj wait-for edges: Pi is a paused egress
// port; Pj is an egress port on Pi's peer switch that carried traffic
// arriving from Pi and is congested (Algorithm 1 lines 6-9).
func (g *Graph) buildPortEdges(views map[topo.NodeID]*reportView, t *topo.Topology) {
	for ref, info := range g.Ports {
		if info.PausedSeverity() == 0 {
			continue
		}
		peer, peerIn := t.PeerOf(ref.Node, ref.Port)
		pv, ok := views[peer]
		if !ok {
			continue // peer is a host or was not collected
		}
		row := pv.meter[peerIn]
		var sum uint64
		for _, b := range row {
			sum += b
		}
		if sum == 0 {
			continue
		}
		for out, bytes := range row {
			dst := topo.PortRef{Node: peer, Port: out}
			dstInfo := g.Ports[dst]
			if dstInfo == nil {
				continue
			}
			// Only congested ports are wait-for targets: paused, or
			// holding a substantial backlog.
			if dstInfo.PausedSeverity() == 0 && dstInfo.Qdepth() < g.Cfg.CongestedQdepthBytes {
				continue
			}
			// A paused destination can have an empty queue (host PFC
			// injection at a port whose upstream feeders are already
			// stuck): keep a floor so the wait-for edge survives.
			q := dstInfo.Qdepth()
			if q == 0 {
				q = 1
			}
			weight := info.PausedSeverity() * (float64(bytes) / float64(sum)) * q
			if weight <= 0 {
				continue
			}
			if g.PortEdges[ref] == nil {
				g.PortEdges[ref] = make(map[topo.PortRef]float64)
				g.PortEdgeEvidence[ref] = make(map[topo.PortRef]int)
			}
			g.PortEdges[ref][dst] = weight
			// Evidence mass: source paused epochs + destination record
			// epochs + the meter read itself. Live-status-only ports
			// contribute nothing beyond the meter, leaving the edge at 1 —
			// real, but hanging off a single register sample.
			g.PortEdgeEvidence[ref][dst] = info.PausedEpochs + dstInfo.Epochs + 1
		}
	}
}

// buildFlowPortEdges adds f -> P edges weighted by paused packet counts
// (Algorithm 1 lines 12-14).
func (g *Graph) buildFlowPortEdges() {
	for tuple, byPort := range g.Flows {
		for ref, fi := range byPort {
			if fi.PausedNum == 0 {
				continue
			}
			if g.FlowPort[tuple] == nil {
				g.FlowPort[tuple] = make(map[topo.PortRef]float64)
			}
			g.FlowPort[tuple][ref] = float64(fi.PausedNum)
		}
	}
}

package provenance

import (
	"testing"

	"hawkeye/internal/device"
	"hawkeye/internal/packet"
	"hawkeye/internal/sim"
	"hawkeye/internal/telemetry"
	"hawkeye/internal/topo"
)

// BenchmarkBuild measures graph construction from a realistic report set
// (the per-diagnosis analyzer cost).
func BenchmarkBuild(b *testing.B) {
	ft, err := topo.NewFatTree(4)
	if err != nil {
		b.Fatal(err)
	}
	// Synthesize busy telemetry on 8 switches.
	var reports []*telemetry.Report
	for s := 0; s < 8; s++ {
		var now sim.Time
		tel, err := telemetry.New(telemetry.DefaultConfig(), ft.Switches()[s], "sw", 4, 100e9,
			func() sim.Time { return now }, func(int) int { return 10000 })
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < 256; i++ {
			now = sim.Time(i) * 500
			tel.OnEnqueue(device.EnqueueEvent{
				Pkt: &packet.Packet{Type: packet.TypeData, Class: packet.ClassLossless, Size: 1078,
					Flow: packet.FiveTuple{SrcIP: uint32(i % 16), DstIP: uint32(s), SrcPort: 1, DstPort: 2, Proto: 17}},
				InPort: i % 4, OutPort: (i + 1) % 4, QueueBytes: 9000 + i, Now: now,
			})
		}
		reports = append(reports, tel.Snapshot(4))
	}
	cfg := DefaultConfig(100e9, 131072)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Build(cfg, reports, ft.Topology)
	}
}

package provenance

import (
	"fmt"
	"sort"
	"strings"

	"hawkeye/internal/packet"
	"hawkeye/internal/topo"
)

// DOT renders the wait-for graph in Graphviz format: port nodes as boxes
// (red when paused, shaded by queue depth), flow nodes as ellipses,
// port→port wait-for edges solid, flow→port edges dashed, port→flow
// contention edges colored by sign (contributor vs victim). Names, when
// a topology is supplied, use the human switch names; pass nil to fall
// back to N<id>.P<port>. This is how the repository regenerates the
// paper's Fig. 12 visuals.
func (g *Graph) DOT(t *topo.Topology) string {
	var b strings.Builder
	b.WriteString("digraph provenance {\n")
	b.WriteString("  rankdir=LR;\n")
	b.WriteString("  node [fontname=\"Helvetica\"];\n")

	portName := func(p topo.PortRef) string {
		if t != nil && int(p.Node) < len(t.Nodes) {
			return fmt.Sprintf("%s.P%d", t.Node(p.Node).Name, p.Port)
		}
		return p.String()
	}
	portID := func(p topo.PortRef) string { return fmt.Sprintf("\"port_%d_%d\"", p.Node, p.Port) }
	flowID := func(f packet.FiveTuple) string {
		return fmt.Sprintf("\"flow_%08x_%08x_%d_%d\"", f.SrcIP, f.DstIP, f.SrcPort, f.DstPort)
	}

	ports := make([]topo.PortRef, 0, len(g.Ports))
	for p := range g.Ports {
		ports = append(ports, p)
	}
	sortPortRefs(ports)
	for _, p := range ports {
		info := g.Ports[p]
		attrs := []string{"shape=box", fmt.Sprintf("label=\"%s\\npaused=%d q=%.0fB\"", portName(p), info.PausedNum, info.AvgQdepth())}
		if info.PausedSeverity() > 0 {
			attrs = append(attrs, "color=red", "penwidth=2")
		}
		fmt.Fprintf(&b, "  %s [%s];\n", portID(p), strings.Join(attrs, ", "))
	}

	// Flow nodes: only flows that participate in an edge.
	flowSet := make(map[packet.FiveTuple]bool)
	for f := range g.FlowPort {
		flowSet[f] = true
	}
	for _, fs := range g.PortFlow {
		for f := range fs {
			flowSet[f] = true
		}
	}
	flows := make([]packet.FiveTuple, 0, len(flowSet))
	for f := range flowSet {
		flows = append(flows, f)
	}
	sort.Slice(flows, func(i, j int) bool { return flows[i].String() < flows[j].String() })
	for _, f := range flows {
		fmt.Fprintf(&b, "  %s [shape=ellipse, label=\"%s\"];\n", flowID(f), f)
	}

	// Port -> port wait-for edges.
	for _, p := range ports {
		for _, q := range g.PortNeighbors(p) {
			fmt.Fprintf(&b, "  %s -> %s [label=\"%.1f\"];\n", portID(p), portID(q), g.PortEdges[p][q])
		}
	}
	// Flow -> port (flow paused at port).
	for _, f := range flows {
		targets := make([]topo.PortRef, 0, len(g.FlowPort[f]))
		for p := range g.FlowPort[f] {
			targets = append(targets, p)
		}
		sortPortRefs(targets)
		for _, p := range targets {
			fmt.Fprintf(&b, "  %s -> %s [style=dashed, label=\"%.0f\"];\n", flowID(f), portID(p), g.FlowPort[f][p])
		}
	}
	// Port -> flow contention edges, colored by sign.
	for _, p := range ports {
		pf := make([]packet.FiveTuple, 0, len(g.PortFlow[p]))
		for f := range g.PortFlow[p] {
			pf = append(pf, f)
		}
		sort.Slice(pf, func(i, j int) bool { return pf[i].String() < pf[j].String() })
		for _, f := range pf {
			w := g.PortFlow[p][f]
			color := "darkgreen" // contributor
			if w < 0 {
				color = "gray" // victim at this port
			}
			fmt.Fprintf(&b, "  %s -> %s [color=%s, label=\"%+.2f\"];\n", portID(p), flowID(f), color, w)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

package provenance

import (
	"testing"

	"hawkeye/internal/telemetry"
	"hawkeye/internal/topo"
)

// TestBuildSurvivesOutOfTopologyPorts reproduces the crash a hostile
// report used to cause: a paused port record whose index exceeds the
// switch's real port count flowed into PeerOf and panicked the analyzer.
// Build must skip such records, count them as suspect, and keep the
// honest evidence.
func TestBuildSurvivesOutOfTopologyPorts(t *testing.T) {
	tp, sws := chainTopo(t)
	hostile := report(sws[0], 1000)
	hostile.Epochs = []telemetry.EpochData{{
		Ports: []telemetry.PortRecord{
			// Paused, so buildPortEdges would chase its peer.
			{Port: 99, PktCount: 10, PausedCount: 10, QdepthSum: 1000, Bytes: 1000},
			{Port: 0, PktCount: 5, PausedCount: 0, QdepthSum: 5, Bytes: 500},
		},
		Flows: []telemetry.FlowRecord{
			{Tuple: flowT(1), OutPort: -3, PktCount: 4, Bytes: 400},
		},
	}}
	hostile.Meter = []telemetry.MeterRecord{{InPort: 50, OutPort: 0, Bytes: 100}}
	hostile.Status = []telemetry.PortStatus{{Port: 77, PausedUntil: 2000}}

	g := Build(testCfg(), []*telemetry.Report{hostile}, tp)
	if g.Coverage.Suspect != 4 {
		t.Fatalf("Suspect = %d, want 4 (port, flow, meter, status)", g.Coverage.Suspect)
	}
	if _, ok := g.Ports[topo.PortRef{Node: sws[0], Port: 99}]; ok {
		t.Fatal("out-of-topology port entered the graph")
	}
	// The honest record on port 0 must survive alongside the garbage.
	if info := g.Ports[topo.PortRef{Node: sws[0], Port: 0}]; info == nil || info.PktCount != 5 {
		t.Fatalf("honest record lost: %+v", info)
	}
}

// TestBuildSurvivesUnknownSwitch: a report claiming a node outside the
// topology (or a negative ID) is dropped wholesale, not indexed.
func TestBuildSurvivesUnknownSwitch(t *testing.T) {
	tp, _ := chainTopo(t)
	for _, sw := range []topo.NodeID{-1, topo.NodeID(len(tp.Nodes)), 1 << 30} {
		bad := report(sw, 1000)
		bad.Epochs = []telemetry.EpochData{{
			Ports: []telemetry.PortRecord{{Port: 0, PktCount: 1, PausedCount: 1}},
		}}
		g := Build(testCfg(), []*telemetry.Report{bad}, tp)
		if g.Coverage.Collected != 0 || g.Coverage.Suspect != 1 {
			t.Fatalf("switch %d: collected=%d suspect=%d", sw, g.Coverage.Collected, g.Coverage.Suspect)
		}
		if len(g.Ports) != 0 {
			t.Fatalf("switch %d: hostile report built ports %v", sw, g.Ports)
		}
	}
}

func TestCoverageNoteRejected(t *testing.T) {
	g := NewGraph(testCfg())
	g.Coverage.NoteRejected(3)
	g.Coverage.NoteRejected(3)
	g.Coverage.NoteRejected(-1) // unattributable
	c := g.Coverage
	if c.Rejected != 3 || c.RejectedBySwitch[3] != 2 || len(c.RejectedBySwitch) != 1 {
		t.Fatalf("rejected=%d by-switch=%v", c.Rejected, c.RejectedBySwitch)
	}
}

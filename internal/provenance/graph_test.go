package provenance

import (
	"strings"
	"testing"
	"testing/quick"

	"hawkeye/internal/packet"
	"hawkeye/internal/sim"
	"hawkeye/internal/telemetry"
	"hawkeye/internal/topo"
)

// Synthetic-report helpers. The tests build a 3-switch chain
// (sw0 -- sw1 -- sw2, one host each) and hand-craft telemetry reports so
// each Algorithm 1 rule is exercised in isolation.

func chainTopo(t *testing.T) (*topo.Topology, []topo.NodeID) {
	t.Helper()
	d, err := topo.NewChain(3, 1, topo.DefaultBandwidth, topo.DefaultDelay)
	if err != nil {
		t.Fatal(err)
	}
	return d.Topology, d.Switches
}

func flowT(n uint32) packet.FiveTuple {
	return packet.FiveTuple{SrcIP: n, DstIP: 0xFF, SrcPort: 7, DstPort: 4791, Proto: 17}
}

func testCfg() Config {
	return DefaultConfig(100e9, int64(sim.Millisecond))
}

func report(sw topo.NodeID, taken sim.Time) *telemetry.Report {
	return &telemetry.Report{Switch: sw, Taken: taken, NumPorts: 4, NumEpochs: 4, FlowSlots: 64}
}

func TestPortEdgesFollowMeterShares(t *testing.T) {
	tp, sws := chainTopo(t)
	// sw0 egress port toward sw1 is paused; sw1 metered traffic from the
	// sw0 link to two egress ports, one congested, one idle.
	sw0, sw1 := sws[0], sws[1]
	// Find port indices: sw0's port to sw1 and sw1's ports.
	p01 := -1
	for pi, p := range tp.Node(sw0).Ports {
		if p.Peer == sw1 {
			p01 = pi
		}
	}
	if p01 < 0 {
		t.Fatal("no sw0->sw1 link")
	}
	_, in1 := tp.PeerOf(sw0, p01)

	r0 := report(sw0, 1000)
	r0.Epochs = []telemetry.EpochData{{
		Ports: []telemetry.PortRecord{{Port: p01, PktCount: 10, PausedCount: 8, QdepthSum: 500000, Bytes: 10000}},
	}}
	r1 := report(sw1, 1000)
	r1.Epochs = []telemetry.EpochData{{
		Ports: []telemetry.PortRecord{
			{Port: 1, PktCount: 100, PausedCount: 0, QdepthSum: 100 * 50000, Bytes: 100000},
			{Port: 2, PktCount: 5, PausedCount: 0, QdepthSum: 5, Bytes: 5000},
		},
	}}
	r1.Meter = []telemetry.MeterRecord{
		{InPort: in1, OutPort: 1, Bytes: 3000},
		{InPort: in1, OutPort: 2, Bytes: 1000},
	}

	g := Build(testCfg(), []*telemetry.Report{r0, r1}, tp)
	src := topo.PortRef{Node: sw0, Port: p01}
	// Edge to the congested port 1 must exist; port 2 (empty queue, not
	// paused) must be filtered.
	if len(g.PortEdges[src]) != 1 {
		t.Fatalf("edges from %v: %v", src, g.PortEdges[src])
	}
	dst := topo.PortRef{Node: sw1, Port: 1}
	w, ok := g.PortEdges[src][dst]
	if !ok {
		t.Fatalf("missing edge %v->%v", src, dst)
	}
	// Weight = paused(8) * share(3000/4000) * qdepth(50000) = 300000.
	if w < 299999 || w > 300001 {
		t.Fatalf("weight = %v, want 300000", w)
	}
}

func TestPortEdgePausedDestinationWithEmptyQueue(t *testing.T) {
	tp, sws := chainTopo(t)
	sw0, sw1 := sws[0], sws[1]
	p01 := 0
	for pi, p := range tp.Node(sw0).Ports {
		if p.Peer == sw1 {
			p01 = pi
		}
	}
	_, in1 := tp.PeerOf(sw0, p01)
	r0 := report(sw0, 1000)
	r0.Epochs = []telemetry.EpochData{{
		Ports: []telemetry.PortRecord{{Port: p01, PktCount: 10, PausedCount: 5, QdepthSum: 100000, Bytes: 10000}},
	}}
	r1 := report(sw1, 1000)
	// Destination port is paused by live status but has zero queue and no
	// packet counters (the out-of-loop injection case).
	r1.Status = []telemetry.PortStatus{{Port: 2, PausedUntil: 5000}}
	r1.Meter = []telemetry.MeterRecord{{InPort: in1, OutPort: 2, Bytes: 1000}}

	g := Build(testCfg(), []*telemetry.Report{r0, r1}, tp)
	src := topo.PortRef{Node: sw0, Port: p01}
	dst := topo.PortRef{Node: sw1, Port: 2}
	if w := g.PortEdges[src][dst]; w <= 0 {
		t.Fatalf("paused empty-queue destination lost its edge: %v", g.PortEdges[src])
	}
}

func TestFlowPortEdgesFromPausedCounts(t *testing.T) {
	tp, sws := chainTopo(t)
	r := report(sws[0], 1000)
	f1, f2 := flowT(1), flowT(2)
	r.Epochs = []telemetry.EpochData{{
		Flows: []telemetry.FlowRecord{
			{Tuple: f1, OutPort: 1, PktCount: 10, PausedCount: 7, QdepthSum: 1000, Bytes: 10000},
			{Tuple: f2, OutPort: 1, PktCount: 10, PausedCount: 0, QdepthSum: 1000, Bytes: 10000},
		},
	}}
	g := Build(testCfg(), []*telemetry.Report{r}, tp)
	if w := g.FlowPort[f1][topo.PortRef{Node: sws[0], Port: 1}]; w != 7 {
		t.Fatalf("flow-port weight = %v, want 7", w)
	}
	if _, ok := g.FlowPort[f2]; ok {
		t.Fatal("unpaused flow has a flow-port edge")
	}
	if got := g.VictimPorts(f1); len(got) != 1 {
		t.Fatalf("VictimPorts = %v", got)
	}
}

// epoch builds an epoch with the given flow populations at port 1.
type popSpec struct {
	tuple  packet.FiveTuple
	pkts   uint32
	paused uint32
	qdepth uint64 // average bytes seen
}

func contentionEpoch(pops []popSpec) telemetry.EpochData {
	var ep telemetry.EpochData
	for _, p := range pops {
		deep := uint32(0)
		if p.pkts > p.paused {
			deep = p.pkts - p.paused
		}
		ep.Flows = append(ep.Flows, telemetry.FlowRecord{
			Tuple:       p.tuple,
			OutPort:     1,
			PktCount:    p.pkts,
			PausedCount: p.paused,
			DeepCount:   deep,
			QdepthSum:   p.qdepth * uint64(deep),
			Bytes:       uint64(p.pkts) * 1000,
		})
	}
	return ep
}

func TestContributionBurstVsVictim(t *testing.T) {
	tp, sws := chainTopo(t)
	r := report(sws[0], 1000)
	burst1, burst2, victim := flowT(1), flowT(2), flowT(3)
	// Bursts: many packets, shallow recorded depth (they built the
	// queue). Victim: few packets, deep recorded depth (arrived behind).
	r.Epochs = []telemetry.EpochData{contentionEpoch([]popSpec{
		{burst1, 200, 0, 50_000},
		{burst2, 200, 0, 52_000},
		{victim, 40, 0, 150_000},
	})}
	g := Build(testCfg(), []*telemetry.Report{r}, tp)
	port := topo.PortRef{Node: sws[0], Port: 1}
	pf := g.PortFlow[port]
	if pf[burst1] <= 0 || pf[burst2] <= 0 {
		t.Fatalf("bursts not positive: %v", pf)
	}
	if pf[victim] >= 0 {
		t.Fatalf("victim not negative: %v", pf)
	}
	contributors := g.Contributors(port)
	if len(contributors) != 2 {
		t.Fatalf("contributors = %v", contributors)
	}
}

func TestContributionSymmetricSharersCancel(t *testing.T) {
	tp, sws := chainTopo(t)
	r := report(sws[0], 1000)
	var pops []popSpec
	for i := uint32(1); i <= 4; i++ {
		pops = append(pops, popSpec{flowT(i), 100, 0, 80_000})
	}
	r.Epochs = []telemetry.EpochData{contentionEpoch(pops)}
	g := Build(testCfg(), []*telemetry.Report{r}, tp)
	port := topo.PortRef{Node: sws[0], Port: 1}
	for f, w := range g.PortFlow[port] {
		if w < -1e-6 || w > 1e-6 {
			t.Fatalf("symmetric sharer %v has weight %v, want ~0", f, w)
		}
	}
}

func TestContributionSumProperty(t *testing.T) {
	// Contributions are conserved: what victims lose, contributors gain.
	tp, sws := chainTopo(t)
	f := func(raw []uint16) bool {
		if len(raw) < 4 {
			return true
		}
		var pops []popSpec
		for i := 0; i+1 < len(raw) && i < 12; i += 2 {
			pops = append(pops, popSpec{
				tuple:  flowT(uint32(i + 1)),
				pkts:   uint32(raw[i]%500) + 1,
				qdepth: uint64(raw[i+1]) * 97,
			})
		}
		r := report(sws[0], 1000)
		r.Epochs = []telemetry.EpochData{contentionEpoch(pops)}
		g := Build(testCfg(), []*telemetry.Report{r}, tp)
		sum := 0.0
		for _, w := range g.PortFlow[topo.PortRef{Node: sws[0], Port: 1}] {
			sum += w
		}
		// The in/out terms cancel across flows: the total is zero even
		// though the self term is dropped.
		return sum < 1e-6 && sum > -1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPausedPacketsExcludedFromContention(t *testing.T) {
	tp, sws := chainTopo(t)
	r := report(sws[0], 1000)
	f1, f2 := flowT(1), flowT(2)
	// f1's packets are all paused: it cannot be a contention party.
	r.Epochs = []telemetry.EpochData{contentionEpoch([]popSpec{
		{f1, 100, 100, 90_000},
		{f2, 100, 0, 90_000},
	})}
	g := Build(testCfg(), []*telemetry.Report{r}, tp)
	port := topo.PortRef{Node: sws[0], Port: 1}
	for f, w := range g.PortFlow[port] {
		if w != 0 {
			t.Fatalf("contention attributed with only one live party: %v=%v", f, w)
		}
	}
}

func TestEpochSeparationPreventsCrossTalk(t *testing.T) {
	tp, sws := chainTopo(t)
	f1, f2 := flowT(1), flowT(2)
	r := report(sws[0], 1000)
	// Same flows in different epochs never contend.
	r.Epochs = []telemetry.EpochData{
		contentionEpoch([]popSpec{{f1, 100, 0, 90_000}}),
		contentionEpoch([]popSpec{{f2, 100, 0, 10_000}}),
	}
	g := Build(testCfg(), []*telemetry.Report{r}, tp)
	for _, w := range g.PortFlow[topo.PortRef{Node: sws[0], Port: 1}] {
		if w != 0 {
			t.Fatalf("cross-epoch contention attributed: %v", g.PortFlow)
		}
	}
}

func TestBurstFlowClassification(t *testing.T) {
	tp, sws := chainTopo(t)
	cfg := testCfg()
	cfg.BurstRateFrac = 0.1 // 10 Gbps in an epoch
	r := report(sws[0], 1000)
	hot, cold := flowT(1), flowT(2)
	ep := telemetry.EpochData{Flows: []telemetry.FlowRecord{
		// 2 MB in a 1 ms epoch = 16 Gbps peak: burst.
		{Tuple: hot, OutPort: 1, PktCount: 2000, QdepthSum: 1, Bytes: 2_000_000},
		// 100 KB in the epoch: 0.8 Gbps: not a burst.
		{Tuple: cold, OutPort: 1, PktCount: 100, QdepthSum: 1, Bytes: 100_000},
	}}
	r.Epochs = []telemetry.EpochData{ep}
	g := Build(cfg, []*telemetry.Report{r}, tp)
	port := topo.PortRef{Node: sws[0], Port: 1}
	if !g.IsBurstFlow(hot, port) {
		t.Fatal("hot flow not burst-classified")
	}
	if g.IsBurstFlow(cold, port) {
		t.Fatal("cold flow burst-classified")
	}
	if g.IsBurstFlow(flowT(99), port) {
		t.Fatal("unknown flow burst-classified")
	}
}

func TestPausedPortsAndString(t *testing.T) {
	tp, sws := chainTopo(t)
	r := report(sws[0], 1000)
	r.Status = []telemetry.PortStatus{{Port: 1, PausedUntil: 5000, QdepthBytes: 777}}
	r.Epochs = []telemetry.EpochData{contentionEpoch([]popSpec{
		{flowT(1), 10, 5, 1000},
		{flowT(2), 10, 0, 1000},
	})}
	g := Build(testCfg(), []*telemetry.Report{r}, tp)
	pp := g.PausedPorts()
	if len(pp) != 1 || pp[0] != (topo.PortRef{Node: sws[0], Port: 1}) {
		t.Fatalf("PausedPorts = %v", pp)
	}
	s := g.String()
	if !strings.Contains(s, "provenance graph") || !strings.Contains(s, "paused-at") {
		t.Fatalf("String output missing sections:\n%s", s)
	}
}

func TestDOTRendersGraph(t *testing.T) {
	g := NewGraph(DefaultConfig(100e9, 131072))
	p1 := topo.PortRef{Node: 1, Port: 2}
	p2 := topo.PortRef{Node: 3, Port: 0}
	f := packet.FiveTuple{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: 17}
	g.Ports[p1] = &PortInfo{PausedNum: 2}
	g.Ports[p2] = &PortInfo{}
	g.PortEdges[p1] = map[topo.PortRef]float64{p2: 5.5}
	g.FlowPort[f] = map[topo.PortRef]float64{p1: 3}
	g.PortFlow[p2] = map[packet.FiveTuple]float64{f: -1.25}

	dot := g.DOT(nil)
	for _, want := range []string{
		"digraph provenance",
		`"port_1_2"`, `"port_3_0"`,
		"color=red",                   // paused port highlighted
		`-> "port_3_0" [label="5.5"]`, // port wait-for edge
		"style=dashed",                // flow->port edge
		"color=gray",                  // victim-signed port->flow edge
		"}",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
	// Deterministic output: two renders must be byte-identical (sorted
	// iteration everywhere).
	if g.DOT(nil) != dot {
		t.Fatal("DOT output not deterministic")
	}
}

package cc

import (
	"testing"
	"testing/quick"
)

func testCfg() Config { return DefaultConfig(100e9) }

func TestStartsAtLineRate(t *testing.T) {
	s := NewState(testCfg())
	if s.Rate() != 100e9 {
		t.Fatalf("initial rate %v, want line rate", s.Rate())
	}
}

func TestCNPCutsRate(t *testing.T) {
	s := NewState(testCfg())
	before := s.Rate()
	s.OnCNP()
	if s.Rate() >= before {
		t.Fatalf("rate did not drop on CNP: %v -> %v", before, s.Rate())
	}
	// With alpha=1 initially the first cut halves the rate.
	if got := s.Rate(); got != before/2 {
		t.Fatalf("first cut = %v, want %v", got, before/2)
	}
	if s.TargetRate() != before {
		t.Fatalf("target %v, want previous rate %v", s.TargetRate(), before)
	}
}

func TestRepeatedCNPsRespectFloor(t *testing.T) {
	s := NewState(testCfg())
	for i := 0; i < 200; i++ {
		s.OnCNP()
	}
	if s.Rate() < testCfg().MinRate {
		t.Fatalf("rate %v below floor %v", s.Rate(), testCfg().MinRate)
	}
}

func TestFastRecoveryApproachesTarget(t *testing.T) {
	s := NewState(testCfg())
	s.OnCNP()
	target := s.TargetRate()
	prevGap := target - s.Rate()
	for i := 0; i < testCfg().F; i++ {
		s.OnRateTimer()
		gap := target - s.Rate()
		if gap < 0 || gap > prevGap {
			t.Fatalf("fast recovery not closing gap: %v -> %v", prevGap, gap)
		}
		prevGap = gap
	}
	// After F stages the rate should be within 5% of the target.
	if s.Rate() < 0.95*target {
		t.Fatalf("after fast recovery rate %v, target %v", s.Rate(), target)
	}
}

func TestAdditiveThenHyperIncrease(t *testing.T) {
	cfg := testCfg()
	s := NewState(cfg)
	s.OnCNP()
	s.OnCNP()
	// Burn through fast recovery.
	for i := 0; i < cfg.F; i++ {
		s.OnRateTimer()
	}
	t1 := s.TargetRate()
	s.OnRateTimer()
	if s.TargetRate() != t1+cfg.Rai {
		t.Fatalf("additive increase moved target by %v, want %v", s.TargetRate()-t1, cfg.Rai)
	}
	for i := 0; i < cfg.F; i++ {
		s.OnRateTimer()
	}
	t2 := s.TargetRate()
	s.OnRateTimer()
	if got := s.TargetRate() - t2; got != cfg.Rhai {
		t.Fatalf("hyper increase moved target by %v, want %v", got, cfg.Rhai)
	}
}

func TestRateNeverExceedsLine(t *testing.T) {
	cfg := testCfg()
	s := NewState(cfg)
	s.OnCNP()
	for i := 0; i < 10000; i++ {
		s.OnRateTimer()
		if s.Rate() > cfg.LineRate || s.TargetRate() > cfg.LineRate {
			t.Fatalf("rate/target exceeded line rate at step %d: %v/%v", i, s.Rate(), s.TargetRate())
		}
	}
}

func TestAlphaDecaysWithoutCNP(t *testing.T) {
	s := NewState(testCfg())
	s.OnCNP()
	a0 := s.Alpha()
	s.OnAlphaTimer() // CNP arrived this period: no decay
	if s.Alpha() != a0 {
		t.Fatalf("alpha decayed despite CNP: %v -> %v", a0, s.Alpha())
	}
	s.OnAlphaTimer()
	if s.Alpha() >= a0 {
		t.Fatalf("alpha did not decay: %v -> %v", a0, s.Alpha())
	}
}

func TestLaterCutsAreGentler(t *testing.T) {
	// After alpha decays, a CNP cuts less than half.
	s := NewState(testCfg())
	s.OnCNP()
	for i := 0; i < 50; i++ {
		s.OnAlphaTimer()
	}
	before := s.Rate()
	s.OnCNP()
	if s.Rate() <= before*0.5 {
		t.Fatalf("cut with small alpha too aggressive: %v -> %v", before, s.Rate())
	}
}

func TestRateAlwaysPositiveProperty(t *testing.T) {
	f := func(ops []bool) bool {
		s := NewState(testCfg())
		for _, cut := range ops {
			if cut {
				s.OnCNP()
			} else {
				s.OnRateTimer()
			}
			if s.Rate() <= 0 || s.Rate() > testCfg().LineRate {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Package cc implements DCQCN, the de-facto RDMA congestion control
// (Zhu et al., SIGCOMM'15), in its timer-driven reaction-point form.
// The paper's evaluation runs RoCEv2 with congestion control enabled and
// still observes PFC (§2); DCQCN here plays exactly that role: it shapes
// steady-state traffic but cannot react fast enough to line-rate bursts.
package cc

import "hawkeye/internal/sim"

// Config holds the DCQCN reaction-point parameters.
type Config struct {
	LineRate float64  // bps; flows start at line rate (§2.2)
	MinRate  float64  // bps floor
	Rai      float64  // additive increase step, bps
	Rhai     float64  // hyper increase step, bps
	G        float64  // alpha EWMA gain
	AlphaT   sim.Time // alpha update timer
	RateT    sim.Time // rate increase timer
	F        int      // fast-recovery stages before additive increase
}

// DefaultConfig mirrors common 100 Gbps DCQCN deployments.
func DefaultConfig(lineRate float64) Config {
	return Config{
		LineRate: lineRate,
		MinRate:  100e6,
		Rai:      400e6,
		Rhai:     4e9,
		G:        1.0 / 16.0,
		AlphaT:   55 * sim.Microsecond,
		RateT:    55 * sim.Microsecond,
		F:        5,
	}
}

// State is the per-flow reaction point. The owner (host NIC) drives the
// two timers by calling OnAlphaTimer/OnRateTimer at the configured
// periods while the flow is active, and OnCNP whenever a congestion
// notification arrives.
type State struct {
	cfg Config

	rc    float64 // current rate
	rt    float64 // target rate
	alpha float64

	// timer bookkeeping
	stage        int  // rate increase iterations since last cut
	cnpSinceLast bool // CNP seen since the last alpha timer tick
}

// NewState returns a flow starting at line rate, per RDMA NIC behaviour.
func NewState(cfg Config) *State {
	return &State{cfg: cfg, rc: cfg.LineRate, rt: cfg.LineRate, alpha: 1}
}

// Rate returns the current sending rate in bps.
func (s *State) Rate() float64 { return s.rc }

// TargetRate returns the current target rate in bps (tests/ablations).
func (s *State) TargetRate() float64 { return s.rt }

// Alpha returns the congestion estimate (tests/ablations).
func (s *State) Alpha() float64 { return s.alpha }

// OnCNP applies the multiplicative decrease rule.
func (s *State) OnCNP() {
	s.rt = s.rc
	s.rc *= 1 - s.alpha/2
	if s.rc < s.cfg.MinRate {
		s.rc = s.cfg.MinRate
	}
	s.alpha = (1-s.cfg.G)*s.alpha + s.cfg.G
	s.stage = 0
	s.cnpSinceLast = true
}

// OnAlphaTimer decays alpha when no CNP arrived during the last period.
func (s *State) OnAlphaTimer() {
	if s.cnpSinceLast {
		s.cnpSinceLast = false
		return
	}
	s.alpha *= 1 - s.cfg.G
}

// OnRateTimer runs one increase iteration: F stages of fast recovery
// toward the target, then additive increase, then hyper increase.
func (s *State) OnRateTimer() {
	s.stage++
	switch {
	case s.stage <= s.cfg.F:
		// fast recovery: close half the gap to the target
	case s.stage <= 2*s.cfg.F:
		s.rt += s.cfg.Rai
	default:
		s.rt += s.cfg.Rhai
	}
	if s.rt > s.cfg.LineRate {
		s.rt = s.cfg.LineRate
	}
	s.rc = (s.rt + s.rc) / 2
	if s.rc > s.cfg.LineRate {
		s.rc = s.cfg.LineRate
	}
}

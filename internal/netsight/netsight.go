// Package netsight implements NetSight's mechanism for real: every
// switch emits a postcard (truncated header + switch ID + output port +
// timestamp) for every packet it forwards, and a central store assembles
// them into per-packet "packet histories". Histories localize WHERE a
// packet spent its time — per-hop latency falls straight out of the
// postcard timestamps — which is exactly what the paper credits NetSight
// with, and nothing more: postcards carry no PFC state, and a packet that
// is stuck in a paused queue emits no further postcards, so a PFC anomaly
// appears only as histories that go silent mid-path.
package netsight

import (
	"sort"

	"hawkeye/internal/device"
	"hawkeye/internal/packet"
	"hawkeye/internal/sim"
	"hawkeye/internal/topo"
)

// PostcardBytes is the wire size of one compressed postcard as the
// NetSight paper reports after its Van Jacobson-style compression.
const PostcardBytes = 15

// Postcard is one per-hop record.
type Postcard struct {
	Switch  topo.NodeID
	OutPort int
	// EnqueuedAt/DequeuedAt bracket the packet's residence at this hop.
	EnqueuedAt sim.Time
	DequeuedAt sim.Time
}

// pktKey identifies one packet across hops.
type pktKey struct {
	flow packet.FiveTuple
	seq  uint32
}

// Store is the central packet-history server.
type Store struct {
	histories map[pktKey][]Postcard

	// Postcards counts records received; Bytes the modelled wire cost.
	Postcards uint64
	Bytes     uint64
}

// NewStore returns an empty history server.
func NewStore() *Store {
	return &Store{histories: make(map[pktKey][]Postcard)}
}

func (s *Store) add(flow packet.FiveTuple, seq uint32, pc Postcard) {
	k := pktKey{flow, seq}
	s.histories[k] = append(s.histories[k], pc)
	s.Postcards++
	s.Bytes += PostcardBytes
}

// History returns the hop records of one packet in time order.
func (s *Store) History(flow packet.FiveTuple, seq uint32) []Postcard {
	h := append([]Postcard(nil), s.histories[pktKey{flow, seq}]...)
	sort.Slice(h, func(i, j int) bool { return h[i].DequeuedAt < h[j].DequeuedAt })
	return h
}

// HopDelays returns each hop's residence time for one packet, in path
// order.
func (s *Store) HopDelays(flow packet.FiveTuple, seq uint32) []sim.Time {
	h := s.History(flow, seq)
	out := make([]sim.Time, len(h))
	for i, pc := range h {
		out[i] = pc.DequeuedAt - pc.EnqueuedAt
	}
	return out
}

// SlowestHop returns the hop where one packet waited longest (zero value
// if no history).
func (s *Store) SlowestHop(flow packet.FiveTuple, seq uint32) (Postcard, sim.Time) {
	var worst Postcard
	var max sim.Time
	for _, pc := range s.History(flow, seq) {
		if d := pc.DequeuedAt - pc.EnqueuedAt; d >= max {
			max = d
			worst = pc
		}
	}
	return worst, max
}

// Seqs returns the packet sequence numbers the store has seen for a flow,
// ascending.
func (s *Store) Seqs(flow packet.FiveTuple) []uint32 {
	var out []uint32
	for k := range s.histories {
		if k.flow == flow {
			out = append(out, k.seq)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// IncompleteHistories counts packets of a flow whose history is shorter
// than expectHops — the silence signature a PFC stall leaves in NetSight
// data.
func (s *Store) IncompleteHistories(flow packet.FiveTuple, expectHops int) int {
	n := 0
	for k, h := range s.histories {
		if k.flow == flow && len(h) < expectHops {
			n++
		}
	}
	return n
}

// Instrument emits postcards from one switch. Implements
// device.Instrument.
type Instrument struct {
	sw    *device.Switch
	store *Store
}

// Attach installs postcard generation on a switch.
func Attach(sw *device.Switch, store *Store) *Instrument {
	in := &Instrument{sw: sw, store: store}
	sw.AddInstrument(in)
	return in
}

// OnEnqueue implements device.Instrument (postcards are emitted at
// dequeue, carrying both timestamps).
func (in *Instrument) OnEnqueue(device.EnqueueEvent) {}

// OnPFC implements device.Instrument: NetSight predates PFC telemetry;
// pause frames leave no postcard.
func (in *Instrument) OnPFC(int, *packet.PFCFrame, sim.Time) {}

// OnDequeue emits this hop's postcard.
func (in *Instrument) OnDequeue(ev device.DequeueEvent) {
	if ev.Pkt.Type != packet.TypeData {
		return
	}
	in.store.add(ev.Pkt.Flow, ev.Pkt.Seq, Postcard{
		Switch:     in.sw.ID,
		OutPort:    ev.OutPort,
		EnqueuedAt: ev.EnqueuedAt,
		DequeuedAt: ev.Now,
	})
}

// InstallAll attaches postcard generation to every switch, all feeding
// one store.
func InstallAll(switches map[topo.NodeID]*device.Switch, store *Store) {
	for _, sw := range switches {
		Attach(sw, store)
	}
}

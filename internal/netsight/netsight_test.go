package netsight

import (
	"testing"

	"hawkeye/internal/cluster"
	"hawkeye/internal/packet"
	"hawkeye/internal/sim"
	"hawkeye/internal/topo"
)

func chainWithNetSight(t *testing.T) (*cluster.Cluster, *topo.Dumbbell, *Store) {
	t.Helper()
	d, err := topo.NewChain(3, 3, topo.DefaultBandwidth, topo.DefaultDelay)
	if err != nil {
		t.Fatal(err)
	}
	r := topo.ComputeRouting(d.Topology)
	cl := cluster.New(d.Topology, r, cluster.DefaultConfig(d.Topology))
	store := NewStore()
	InstallAll(cl.Switches, store)
	return cl, d, store
}

func TestHistoryMatchesPath(t *testing.T) {
	cl, d, store := chainWithNetSight(t)
	f := cl.StartFlow(d.HostsAt[0][0], d.HostsAt[2][0], 10_000, 0)
	cl.Run(5 * sim.Millisecond)

	h := store.History(f.Tuple, 0)
	if len(h) != 3 {
		t.Fatalf("history has %d hops, want 3 (chain end to end)", len(h))
	}
	// Postcards, time-ordered, must walk sw0 -> sw1 -> sw2.
	for i, pc := range h {
		if pc.Switch != d.Switches[i] {
			t.Fatalf("hop %d at switch %v, want %v", i, pc.Switch, d.Switches[i])
		}
		if pc.DequeuedAt < pc.EnqueuedAt {
			t.Fatalf("hop %d dequeued before enqueued", i)
		}
	}
	// Every packet of the flow was seen.
	if seqs := store.Seqs(f.Tuple); len(seqs) != 10 {
		t.Fatalf("store saw %d packets, want 10", len(seqs))
	}
}

func TestSlowestHopLocalizesSubPFCCongestion(t *testing.T) {
	// In NetSight's home turf — congestion that stays BELOW the PFC
	// threshold — packet histories localize the delay to the congested
	// hop. Bursts sized so the shared queue peaks under Xoff (48 KB).
	cl, d, store := chainWithNetSight(t)
	dst := d.HostsAt[2][0]
	// A paced victim spans the burst window; the local bursts (30 KB
	// total) keep the shared queue under Xoff.
	victim := cl.StartFlowRate(d.HostsAt[0][0], dst, 100_000, 0, 20e9)
	cl.Eng.At(10*sim.Microsecond, func() {
		cl.StartFlow(d.HostsAt[2][1], dst, 15_000, 10*sim.Microsecond)
		cl.StartFlow(d.HostsAt[2][2], dst, 15_000, 10*sim.Microsecond)
	})
	cl.Run(10 * sim.Millisecond)
	if cl.TotalPFCFrames() != 0 {
		t.Fatalf("setup: %d PFC frames fired; the test needs sub-Xoff congestion", cl.TotalPFCFrames())
	}

	// Find the victim packet that waited longest anywhere; it must have
	// waited at the congested ToR, and for a real queuing duration.
	var worstDelay sim.Time
	var worstAt Postcard
	for _, seq := range store.Seqs(victim.Tuple) {
		pc, delay := store.SlowestHop(victim.Tuple, seq)
		if delay > worstDelay {
			worstDelay = delay
			worstAt = pc
		}
	}
	if worstAt.Switch != d.Switches[2] {
		t.Fatalf("slowest hop at %v, want the congested ToR %v", worstAt.Switch, d.Switches[2])
	}
	if worstDelay < sim.Microsecond {
		t.Fatalf("slowest hop delay %v, expected real queuing", worstDelay)
	}
}

// TestPFCMovesTheWaitUpstream is the misattribution half: once the
// congestion crosses Xoff, PFC pushes the waiting into the UPSTREAM
// switch's paused egress. NetSight's histories then blame the waiting
// room (sw1), not the congested port (sw2) — hop delays are real, but
// the causality is invisible without PFC provenance.
func TestPFCMovesTheWaitUpstream(t *testing.T) {
	cl, d, store := chainWithNetSight(t)
	dst := d.HostsAt[2][0]
	victim := cl.StartFlow(d.HostsAt[0][0], dst, 200_000, 0)
	cl.StartFlow(d.HostsAt[2][1], dst, 1_000_000, 0)
	cl.StartFlow(d.HostsAt[2][2], dst, 1_000_000, 0)
	cl.Run(10 * sim.Millisecond)
	if cl.TotalPFCFrames() == 0 {
		t.Fatal("setup: expected PFC to engage")
	}

	seqs := store.Seqs(victim.Tuple)
	late := seqs[len(seqs)/2]
	pc, _ := store.SlowestHop(victim.Tuple, late)
	if pc.Switch != d.Switches[1] {
		t.Fatalf("slowest hop at %v; with PFC active the wait accrues at the paused upstream %v",
			pc.Switch, d.Switches[1])
	}
}

func TestOverheadScalesPerPacketPerHop(t *testing.T) {
	cl, d, store := chainWithNetSight(t)
	f := cl.StartFlow(d.HostsAt[0][0], d.HostsAt[2][0], 100_000, 0)
	cl.Run(5 * sim.Millisecond)
	_ = f
	// 100 data packets x 3 hops, plus the handful of ACK-path... ACKs are
	// control packets and emit no postcards, so exactly 300.
	if store.Postcards != 300 {
		t.Fatalf("postcards = %d, want 300 (100 pkts x 3 hops)", store.Postcards)
	}
	if store.Bytes != 300*PostcardBytes {
		t.Fatalf("bytes = %d, want %d", store.Bytes, 300*PostcardBytes)
	}
}

// TestStallLeavesIncompleteHistories shows the PFC gap mechanically: a
// pause in the middle of the path freezes packets mid-history. NetSight
// sees histories that stop at the paused switch — evidence something is
// wrong, but with no pause frame, no culprit and no spreading path in the
// data.
func TestStallLeavesIncompleteHistories(t *testing.T) {
	cl, d, store := chainWithNetSight(t)
	// Pause sw1's egress toward sw2 for the whole run.
	sw := cl.Switches[d.Switches[1]]
	var upPort int
	for p := 0; p < sw.NumPorts(); p++ {
		if peer, _ := d.Topology.PeerOf(sw.ID, p); peer == d.Switches[2] {
			upPort = p
		}
	}
	for at := sim.Time(0); at < 10*sim.Millisecond; at += 200 * sim.Microsecond {
		at := at
		cl.Eng.At(at, func() {
			sw.EgressAt(upPort).Pause(packet.ClassLossless, packet.MaxPauseQuanta)
		})
	}
	f := cl.StartFlow(d.HostsAt[0][0], d.HostsAt[2][0], 20_000, 0)
	cl.Run(10 * sim.Millisecond)

	if inc := store.IncompleteHistories(f.Tuple, 3); inc == 0 {
		t.Fatal("paused path left no incomplete histories")
	}
	// And crucially: nothing in the store mentions the pause itself.
	// (Compile-time fact — Postcard has no PFC field — asserted here as
	// documentation.)
	for _, seq := range store.Seqs(f.Tuple) {
		for _, pc := range store.History(f.Tuple, seq) {
			if pc.Switch == d.Switches[2] {
				t.Fatalf("packet %d claims to have crossed the paused link", seq)
			}
		}
	}
}

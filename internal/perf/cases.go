package perf

import (
	"fmt"
	"runtime"
	"testing"

	"hawkeye/internal/analyzd"
	"hawkeye/internal/device"
	"hawkeye/internal/diagnosis"
	"hawkeye/internal/experiments"
	"hawkeye/internal/fleet"
	"hawkeye/internal/fleetstore"
	"hawkeye/internal/packet"
	"hawkeye/internal/rollup"
	"hawkeye/internal/sim"
	"hawkeye/internal/telemetry"
	"hawkeye/internal/topo"
	"hawkeye/internal/wire"
)

// Case is one harness benchmark: a body runnable under testing.B (so the
// same code serves `go test -bench` and the hawkeye-perf binary via
// testing.Benchmark). TrialsPerOp > 0 marks sweep benchmarks whose
// throughput is reported as a trials_per_sec metric.
type Case struct {
	Name        string
	TrialsPerOp int
	Bench       func(b *testing.B)
}

// Options sizes the sweep benchmarks.
type Options struct {
	EvalTrials int // seeds per scenario for the EvalRun cases
	Workers    int // pool size for the parallel case; <=0 means GOMAXPROCS
}

// DefaultOptions keeps the harness fast enough for CI: one seed per
// scenario is ~5 trials per op, a few seconds of simulated fabric.
func DefaultOptions() Options { return Options{EvalTrials: 1} }

// Cases returns the harness suite. Names are stable identifiers — the
// baseline gate matches on them, so renaming one silently drops its gate.
func Cases(opts Options) []Case {
	if opts.EvalTrials <= 0 {
		opts.EvalTrials = 1
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	evalTrialsPerOp := len(experiments.EvalScenarios()) * opts.EvalTrials
	return []Case{
		{Name: "sim/engine_schedule_run", Bench: benchEngineScheduleRun},
		{Name: "sim/engine_churn", Bench: benchEngineChurn},
		{Name: "telemetry/on_enqueue", Bench: benchTelemetryOnEnqueue},
		{Name: "telemetry/snapshot_into", Bench: benchTelemetrySnapshotInto},
		{Name: "rollup/observe", Bench: benchRollupObserve},
		{Name: "fleet/frontdoor_query_1shard", Bench: benchFrontdoorQuery(1)},
		{Name: "fleet/frontdoor_query_3shard", Bench: benchFrontdoorQuery(3)},
		{
			Name:        "experiments/eval_run_serial",
			TrialsPerOp: evalTrialsPerOp,
			Bench:       benchEvalRun(1, opts.EvalTrials),
		},
		{
			Name:        "experiments/eval_run_parallel",
			TrialsPerOp: evalTrialsPerOp,
			Bench:       benchEvalRun(workers, opts.EvalTrials),
		},
	}
}

// benchEngineScheduleRun is the simulator's unit cost: schedule one
// event and dispatch it. With the event free list the steady state must
// not allocate.
func benchEngineScheduleRun(b *testing.B) {
	eng := sim.NewEngine()
	n := 0
	fn := func() { n++ }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.After(sim.Microsecond, fn)
		eng.RunAll()
	}
	if n != b.N {
		b.Fatalf("ran %d events, want %d", n, b.N)
	}
}

// benchEngineChurn is the mixed workload a trace produces: a standing
// timer population with interleaved schedule/fire/cancel.
func benchEngineChurn(b *testing.B) {
	eng := sim.NewEngine()
	n := 0
	fn := func() { n++ }
	var refs [64]sim.EventRef
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		slot := i % len(refs)
		refs[slot].Cancel()
		refs[slot] = eng.After(sim.Time(1+i%7)*sim.Microsecond, fn)
		if i%len(refs) == 0 {
			eng.Run(eng.Now() + 3*sim.Microsecond)
		}
	}
	eng.RunAll()
}

func benchTelemetryState(b *testing.B) *telemetry.State {
	b.Helper()
	var now sim.Time
	s, err := telemetry.New(telemetry.DefaultConfig(), 1, "sw", 8, 100e9,
		func() sim.Time { return now }, func(int) int { return 0 })
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// benchTelemetryOnEnqueue is the per-packet pipeline stage.
func benchTelemetryOnEnqueue(b *testing.B) {
	s := benchTelemetryState(b)
	pkt := &packet.Packet{Type: packet.TypeData, Class: packet.ClassLossless, Size: 1078,
		Flow: packet.FiveTuple{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: 17}}
	ev := device.EnqueueEvent{Pkt: pkt, InPort: 0, OutPort: 1, QueueBytes: 20000}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.Now = sim.Time(i) * 100
		ev.Pkt.Flow.SrcPort = uint16(i)
		s.OnEnqueue(ev)
	}
}

// benchTelemetrySnapshotInto is the poller's per-sync register read-out
// on the buffer-reusing path; after warm-up it must not allocate.
func benchTelemetrySnapshotInto(b *testing.B) {
	s := benchTelemetryState(b)
	for i := 0; i < 512; i++ {
		s.OnEnqueue(device.EnqueueEvent{
			Pkt: &packet.Packet{Type: packet.TypeData, Class: packet.ClassLossless, Size: 1078,
				Flow: packet.FiveTuple{SrcIP: uint32(i), DstIP: 2, SrcPort: 3, DstPort: 4, Proto: 17}},
			InPort: 0, OutPort: 1, QueueBytes: 20000, Now: sim.Time(i) * 100,
		})
	}
	var rep telemetry.Report
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SnapshotInto(&rep, 4)
	}
}

// benchRollupObserve is the rollup summarizer's per-record fold — the
// cost every admitted diagnosis pays on the analyzer's ingest path. The
// record stream cycles through more distinct culprits than the sketches
// retain, so the steady state exercises eviction, and time advances so
// panes open, close and retire continuously.
func benchRollupObserve(b *testing.B) {
	s := rollup.New(rollup.DefaultConfig())
	pane := s.Config().Pane
	rec := fleetstore.Record{
		Type:       diagnosis.TypePFCStorm,
		Cause:      diagnosis.CauseHostInjection,
		Confidence: diagnosis.ConfHigh,
		Score:      0.9,
	}
	fabrics := [4]string{"fab0", "fab1", "fab2", "fab3"}
	pods := [4]string{"pod0", "pod1", "pod2", "pod3"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.At = sim.Time(i) * (pane / 256)
		rec.Fabric = fabrics[i%len(fabrics)]
		rec.Pod = pods[(i/3)%len(pods)]
		rec.Node = topo.NodeID(i % 64)
		rec.Port = i % 16
		rec.StallNS = int64(i%1000) * 100
		s.ObserveRecord(&rec)
		s.AdvanceWatermark(rec.At)
	}
}

// benchFrontdoorQuery is the cluster read path: a fleet-wide rollup
// query fanned across live TCP shards, every per-shard window shipped
// with its sketch state, and same-window summaries merged at the front
// door. The 1-shard case isolates the wire round-trip; the 3-shard
// case adds concurrent fan-out plus the sketch decode + merge work —
// the overhead an operator pays for a horizontally scaled cluster.
func benchFrontdoorQuery(shards int) func(b *testing.B) {
	return func(b *testing.B) {
		specs := make([]fleet.ShardSpec, shards)
		for i := 0; i < shards; i++ {
			srv, err := analyzd.ListenOpts("127.0.0.1:0", analyzd.Options{
				Shard: fmt.Sprintf("shard-%d", i),
			})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { srv.Close() })
			// Every shard contributes to the same four windows, so the
			// 3-shard case merges every window instead of passing them
			// through.
			pane := rollup.DefaultConfig().Pane
			for j := 0; j < 256; j++ {
				srv.Fleet().Add(fleetstore.Record{
					Fabric:  fmt.Sprintf("fab%02d", i*8+j%8),
					At:      sim.Time(j) * (4 * pane / 256),
					Victim:  fmt.Sprintf("v%d-%d", i, j),
					Type:    diagnosis.TypePFCStorm,
					Node:    topo.NodeID(j % 16),
					Port:    j % 4,
					Score:   0.5,
					StallNS: int64(1000 + j),
				})
			}
			specs[i] = fleet.ShardSpec{Name: fmt.Sprintf("shard-%d", i), Addr: srv.Addr()}
		}
		fd, err := fleet.NewFrontdoor(specs, 0, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(fd.Close)
		q := wire.RollupQuery{}
		if res, errs, err := fd.QueryRollups(q); err != nil || len(errs) > 0 || len(res.Windows) == 0 {
			b.Fatalf("warm-up query: res=%v errs=%v err=%v", res, errs, err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, errs, err := fd.QueryRollups(q)
			if err != nil || len(errs) > 0 {
				b.Fatalf("errs=%v err=%v", errs, err)
			}
			if len(res.Windows) == 0 {
				b.Fatal("no windows merged")
			}
		}
	}
}

// benchEvalRun runs the paper's full evaluation sweep (every scenario x
// EvalTrials seeds) on a pool of the given size. One op is one sweep.
func benchEvalRun(workers, trials int) func(b *testing.B) {
	return func(b *testing.B) {
		r := experiments.NewRunner(workers)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := r.RunEval(trials); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// Run executes a case via testing.Benchmark and converts the result.
func (c Case) Run() Result {
	br := testing.Benchmark(c.Bench)
	res := Result{
		Name:        c.Name,
		NsPerOp:     float64(br.T.Nanoseconds()) / float64(br.N),
		AllocsPerOp: float64(br.MemAllocs) / float64(br.N),
		BytesPerOp:  float64(br.MemBytes) / float64(br.N),
		Iterations:  br.N,
	}
	if c.TrialsPerOp > 0 && res.NsPerOp > 0 {
		res.Metrics = map[string]float64{
			"trials_per_op":  float64(c.TrialsPerOp),
			"trials_per_sec": float64(c.TrialsPerOp) * 1e9 / res.NsPerOp,
		}
	}
	return res
}

// AddDerived computes cross-benchmark metrics: the parallel sweep's
// speedup over the serial one. The paper-scale target is >=3x on 8
// cores; the gate stays informational because it is machine-dependent.
func AddDerived(rep *Report) {
	serial := rep.Find("experiments/eval_run_serial")
	parallel := rep.Find("experiments/eval_run_parallel")
	if serial == nil || parallel == nil || parallel.NsPerOp <= 0 {
		return
	}
	if parallel.Metrics == nil {
		parallel.Metrics = map[string]float64{}
	}
	parallel.Metrics["speedup_vs_serial"] = serial.NsPerOp / parallel.NsPerOp
}

package perf

import (
	"path/filepath"
	"reflect"
	"testing"
)

func report(results ...Result) *Report {
	return &Report{GoMaxProcs: 1, GoVersion: "test", Results: results}
}

func mustCompare(t *testing.T, base, cur *Report, tol float64) []Regression {
	t.Helper()
	regs, err := Compare(base, cur, tol)
	if err != nil {
		t.Fatal(err)
	}
	return regs
}

// TestCompareRefusesCoreCountMismatch pins the honesty rule: timings
// recorded at different GOMAXPROCS never gate each other, and a
// baseline without the stamp is rejected rather than trusted.
func TestCompareRefusesCoreCountMismatch(t *testing.T) {
	base := report(Result{Name: "a", NsPerOp: 100})
	cur := report(Result{Name: "a", NsPerOp: 100})
	cur.GoMaxProcs = 8
	if _, err := Compare(base, cur, 0.25); err == nil {
		t.Fatal("cross-core-count comparison accepted")
	}
	unstamped := report(Result{Name: "a", NsPerOp: 100})
	unstamped.GoMaxProcs = 0
	if _, err := Compare(unstamped, base, 0.25); err == nil {
		t.Fatal("unstamped baseline accepted")
	}
	if _, err := Compare(base, report(Result{Name: "a", NsPerOp: 100}), 0.25); err != nil {
		t.Fatalf("matched core counts refused: %v", err)
	}
}

func TestCompareGatesNsPerOp(t *testing.T) {
	base := report(Result{Name: "a", NsPerOp: 100})
	if regs := mustCompare(t, base, report(Result{Name: "a", NsPerOp: 124}), 0.25); len(regs) != 0 {
		t.Fatalf("within-tolerance run flagged: %v", regs)
	}
	regs := mustCompare(t, base, report(Result{Name: "a", NsPerOp: 126}), 0.25)
	if len(regs) != 1 || regs[0].Metric != "ns/op" {
		t.Fatalf("regs = %v, want one ns/op regression", regs)
	}
	if regs[0].Increase < 0.25 || regs[0].Increase > 0.27 {
		t.Fatalf("increase = %v, want ~0.26", regs[0].Increase)
	}
}

func TestCompareHoldsZeroAllocPathsExactly(t *testing.T) {
	base := report(Result{Name: "a", NsPerOp: 100, AllocsPerOp: 0})
	// A pooled path that starts allocating fails regardless of tolerance.
	regs := mustCompare(t, base, report(Result{Name: "a", NsPerOp: 100, AllocsPerOp: 2}), 0.25)
	if len(regs) != 1 || regs[0].Metric != "allocs/op" {
		t.Fatalf("regs = %v, want one allocs/op regression", regs)
	}
	// Allocating paths get the fractional tolerance.
	base = report(Result{Name: "b", NsPerOp: 100, AllocsPerOp: 10})
	if regs := mustCompare(t, base, report(Result{Name: "b", NsPerOp: 100, AllocsPerOp: 12}), 0.25); len(regs) != 0 {
		t.Fatalf("within-tolerance allocs flagged: %v", regs)
	}
	if regs := mustCompare(t, base, report(Result{Name: "b", NsPerOp: 100, AllocsPerOp: 13}), 0.25); len(regs) != 1 {
		t.Fatalf("regs = %v, want one allocs/op regression", regs)
	}
}

func TestCompareIgnoresMissingBenchmarks(t *testing.T) {
	base := report(Result{Name: "gone", NsPerOp: 1}, Result{Name: "kept", NsPerOp: 100})
	cur := report(Result{Name: "kept", NsPerOp: 90}, Result{Name: "new", NsPerOp: 1e9})
	if regs := mustCompare(t, base, cur, 0.25); len(regs) != 0 {
		t.Fatalf("suite growth flagged: %v", regs)
	}
}

func TestReportRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	rep := NewReport()
	rep.Results = []Result{
		{Name: "a", NsPerOp: 12.5, AllocsPerOp: 0, BytesPerOp: 0, Iterations: 1000},
		{Name: "b", NsPerOp: 4e9, Iterations: 1, Metrics: map[string]float64{"trials_per_sec": 1.25}},
	}
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, rep) {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", got, rep)
	}
}

func TestAddDerivedSpeedup(t *testing.T) {
	rep := report(
		Result{Name: "experiments/eval_run_serial", NsPerOp: 4e9},
		Result{Name: "experiments/eval_run_parallel", NsPerOp: 1e9},
	)
	AddDerived(rep)
	got := rep.Find("experiments/eval_run_parallel").Metrics["speedup_vs_serial"]
	if got < 3.99 || got > 4.01 {
		t.Fatalf("speedup = %v, want 4", got)
	}
}

// BenchmarkHarness exposes the harness suite to `go test -bench` so the
// same bodies hawkeye-perf measures are runnable interactively.
func BenchmarkHarness(b *testing.B) {
	for _, c := range Cases(DefaultOptions()) {
		b.Run(c.Name, c.Bench)
	}
}

// Package perf is the regression-guarded performance harness.
//
// It owns the benchmark bodies for the simulator's hot paths (event
// scheduling, telemetry extraction) and for the trial-level parallel
// sweep (experiments.Runner), exposes them both to `go test -bench` and
// to the hawkeye-perf binary via testing.Benchmark, and defines the
// machine-readable result format (BENCH_experiments.json) plus the
// tolerance gate CI applies against the committed baseline.
package perf

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
)

// Result is one benchmark's measurement.
type Result struct {
	Name        string             `json:"name"`
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	Iterations  int                `json:"iterations"`
	Metrics     map[string]float64 `json:"metrics,omitempty"` // e.g. trials_per_sec, speedup
}

// Report is the full harness output.
type Report struct {
	GoMaxProcs int      `json:"gomaxprocs"`
	GoVersion  string   `json:"go_version"`
	Results    []Result `json:"results"`
}

// NewReport returns an empty report stamped with the environment.
func NewReport() *Report {
	return &Report{GoMaxProcs: runtime.GOMAXPROCS(0), GoVersion: runtime.Version()}
}

// Find returns the named result, or nil.
func (rep *Report) Find(name string) *Result {
	for i := range rep.Results {
		if rep.Results[i].Name == name {
			return &rep.Results[i]
		}
	}
	return nil
}

// WriteFile writes the report as indented JSON.
func (rep *Report) WriteFile(path string) error {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// LoadReport reads a report written by WriteFile.
func LoadReport(path string) (*Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rep := &Report{}
	if err := json.Unmarshal(b, rep); err != nil {
		return nil, fmt.Errorf("perf: %s: %w", path, err)
	}
	return rep, nil
}

// Regression is one gate violation against the baseline.
type Regression struct {
	Name     string
	Metric   string
	Base     float64
	Current  float64
	Increase float64 // fractional, e.g. 0.31 = +31%
}

func (r Regression) String() string {
	return fmt.Sprintf("%s: %s %.4g -> %.4g (+%.0f%%, tolerance exceeded)",
		r.Name, r.Metric, r.Base, r.Current, r.Increase*100)
}

// Compare gates the current report against a baseline: any benchmark
// whose ns/op grew by more than tol (fractional, e.g. 0.25) regresses,
// and so does any pooled path (baseline allocs/op < 0.5) that started
// allocating — alloc counts are machine-independent, so those are held
// exactly. Benchmarks present in only one report are ignored, which is
// what lets the suite grow without invalidating old baselines.
//
// Reports recorded at different GOMAXPROCS are not comparable — the
// parallel sweep's timings scale with core count, so gating a 1-core CI
// run against an 8-core baseline yields phantom regressions (or worse,
// phantom passes). Compare refuses the comparison outright; re-record
// the baseline on a machine matching CI instead. A baseline predating
// the stamp (GoMaxProcs == 0) is also refused: it was recorded before
// the field was honest.
func Compare(base, cur *Report, tol float64) ([]Regression, error) {
	if base.GoMaxProcs == 0 {
		return nil, fmt.Errorf("perf: baseline has no gomaxprocs stamp; re-record it")
	}
	if base.GoMaxProcs != cur.GoMaxProcs {
		return nil, fmt.Errorf("perf: baseline recorded at GOMAXPROCS=%d, current run at %d: timings are not comparable, re-record the baseline",
			base.GoMaxProcs, cur.GoMaxProcs)
	}
	var regs []Regression
	for _, b := range base.Results {
		c := cur.Find(b.Name)
		if c == nil {
			continue
		}
		if b.NsPerOp > 0 && c.NsPerOp > b.NsPerOp*(1+tol) {
			regs = append(regs, Regression{
				Name: b.Name, Metric: "ns/op",
				Base: b.NsPerOp, Current: c.NsPerOp,
				Increase: c.NsPerOp/b.NsPerOp - 1,
			})
		}
		switch {
		case b.AllocsPerOp < 0.5 && c.AllocsPerOp >= 0.5:
			regs = append(regs, Regression{
				Name: b.Name, Metric: "allocs/op",
				Base: b.AllocsPerOp, Current: c.AllocsPerOp,
				Increase: c.AllocsPerOp - b.AllocsPerOp,
			})
		case b.AllocsPerOp >= 0.5 && c.AllocsPerOp > b.AllocsPerOp*(1+tol):
			regs = append(regs, Regression{
				Name: b.Name, Metric: "allocs/op",
				Base: b.AllocsPerOp, Current: c.AllocsPerOp,
				Increase: c.AllocsPerOp/b.AllocsPerOp - 1,
			})
		}
	}
	sort.Slice(regs, func(i, j int) bool {
		if regs[i].Name != regs[j].Name {
			return regs[i].Name < regs[j].Name
		}
		return regs[i].Metric < regs[j].Metric
	})
	return regs, nil
}

// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine is the substrate every other package runs on: switches, hosts
// and telemetry all schedule callbacks at nanosecond-resolution virtual
// times. Determinism is guaranteed by a (time, sequence) ordering on events
// and by requiring all randomness to flow through a seeded *Rand.
//
// A packet-level trace is tens of millions of schedule/dispatch pairs, so
// the scheduler is built for throughput: fired events are recycled through
// a free list instead of garbage-collected (the steady state allocates
// nothing), and the priority queue is a 4-ary heap — shallower than a
// binary heap and with all four children of a node on one cache line.
package sim

import (
	"fmt"
	"math"
)

// Time is a virtual timestamp in nanoseconds since simulation start.
type Time int64

// Common durations, in nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// MaxTime is the largest representable virtual time.
const MaxTime Time = math.MaxInt64

// String renders the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Seconds returns the time as a float64 number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Handler is a callback executed when an event fires.
type Handler func()

// event is a scheduled callback. Events with equal times fire in
// scheduling order (seq), which keeps runs reproducible. Fired and
// cancelled events return to the engine's free list; gen increments on
// every recycle so stale EventRefs can never touch the slot's next life.
type event struct {
	at        Time
	seq       uint64
	fn        Handler
	index     int // heap index, -1 once popped
	gen       uint32
	cancelled bool
}

// EventRef refers to a scheduled event so it can be cancelled. The zero
// value refers to no event. A ref is pinned to one scheduling: once its
// event fires or is cancelled, the ref goes permanently inert even though
// the engine reuses the underlying slot.
type EventRef struct {
	ev  *event
	gen uint32
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op. Returns true if the event was pending.
func (r EventRef) Cancel() bool {
	if r.ev == nil || r.ev.gen != r.gen || r.ev.cancelled || r.ev.index < 0 {
		return false
	}
	r.ev.cancelled = true
	return true
}

// Pending reports whether the event is still scheduled to fire.
func (r EventRef) Pending() bool {
	return r.ev != nil && r.ev.gen == r.gen && !r.ev.cancelled && r.ev.index >= 0
}

// heapArity is the branching factor of the event queue. Quaternary wins
// over binary here because pops dominate: the tree is half as deep, and
// the four children scanned per level share a cache line of pointers.
const heapArity = 4

// Engine is a single-threaded discrete-event scheduler.
// The zero value is not usable; construct with NewEngine.
type Engine struct {
	now     Time
	queue   []*event // 4-ary min-heap ordered by (at, seq)
	free    []*event // recycled events; bounds steady-state allocation at 0
	seq     uint64
	running bool
	stopped bool

	// Processed counts events executed so far (diagnostics and tests).
	Processed uint64
}

// NewEngine returns an engine positioned at time zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Len returns the number of pending (non-cancelled) events.
// Cancelled events still occupy the heap until popped, so this is an
// upper bound used mainly by tests.
func (e *Engine) Len() int { return len(e.queue) }

// alloc takes an event from the free list, or makes one.
func (e *Engine) alloc() *event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return ev
	}
	return &event{}
}

// recycle returns a fired or cancelled event to the free list. The gen
// bump inerts every EventRef still pointing at it.
func (e *Engine) recycle(ev *event) {
	ev.fn = nil
	ev.cancelled = false
	ev.gen++
	e.free = append(e.free, ev)
}

// less orders events by (time, seq) — the engine's determinism contract.
func less(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// push inserts ev and sifts it up.
func (e *Engine) push(ev *event) {
	i := len(e.queue)
	e.queue = append(e.queue, ev)
	for i > 0 {
		parent := (i - 1) / heapArity
		p := e.queue[parent]
		if !less(ev, p) {
			break
		}
		e.queue[i] = p
		p.index = i
		i = parent
	}
	e.queue[i] = ev
	ev.index = i
}

// pop removes and returns the minimum event.
func (e *Engine) pop() *event {
	q := e.queue
	root := q[0]
	root.index = -1
	n := len(q) - 1
	last := q[n]
	q[n] = nil
	e.queue = q[:n]
	if n == 0 {
		return root
	}
	// Sift the displaced last element down from the root.
	q = e.queue
	i := 0
	for {
		first := heapArity*i + 1
		if first >= n {
			break
		}
		best := first
		end := first + heapArity
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if less(q[c], q[best]) {
				best = c
			}
		}
		if !less(q[best], last) {
			break
		}
		q[i] = q[best]
		q[i].index = i
		i = best
	}
	q[i] = last
	last.index = i
	return root
}

// At schedules fn to run at absolute time t. Scheduling in the past
// (t < Now) panics: it always indicates a model bug.
func (e *Engine) At(t Time, fn Handler) EventRef {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	ev := e.alloc()
	ev.at = t
	ev.seq = e.seq
	ev.fn = fn
	e.seq++
	e.push(ev)
	return EventRef{ev: ev, gen: ev.gen}
}

// After schedules fn to run d nanoseconds from now.
func (e *Engine) After(d Time, fn Handler) EventRef {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now+d, fn)
}

// Stop makes Run return after the currently executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until the queue drains, until the horizon is
// passed, or until Stop is called. It returns the final virtual time.
// Events scheduled exactly at the horizon still execute.
func (e *Engine) Run(horizon Time) Time {
	if e.running {
		panic("sim: Run called reentrantly")
	}
	e.running = true
	e.stopped = false
	defer func() { e.running = false }()
	for len(e.queue) > 0 && !e.stopped {
		next := e.queue[0]
		if next.at > horizon {
			e.now = horizon
			return e.now
		}
		e.pop()
		if next.cancelled {
			e.recycle(next)
			continue
		}
		e.now = next.at
		e.Processed++
		fn := next.fn
		// Recycle before dispatch: the handler may schedule immediately
		// and reuse this very slot; its own ref is already inert.
		e.recycle(next)
		fn()
	}
	if e.now < horizon && horizon < MaxTime && len(e.queue) == 0 {
		e.now = horizon
	}
	return e.now
}

// RunAll executes events until the queue drains or Stop is called.
func (e *Engine) RunAll() Time { return e.Run(MaxTime) }

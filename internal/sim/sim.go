// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine is the substrate every other package runs on: switches, hosts
// and telemetry all schedule callbacks at nanosecond-resolution virtual
// times. Determinism is guaranteed by a (time, sequence) ordering on events
// and by requiring all randomness to flow through a seeded *Rand.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is a virtual timestamp in nanoseconds since simulation start.
type Time int64

// Common durations, in nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// MaxTime is the largest representable virtual time.
const MaxTime Time = math.MaxInt64

// String renders the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Seconds returns the time as a float64 number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Handler is a callback executed when an event fires.
type Handler func()

// event is a scheduled callback. Events with equal times fire in
// scheduling order (seq), which keeps runs reproducible.
type event struct {
	at      Time
	seq     uint64
	fn      Handler
	index   int // heap index, -1 once popped or cancelled
	cancled bool
}

// EventRef refers to a scheduled event so it can be cancelled.
type EventRef struct{ ev *event }

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op. Returns true if the event was pending.
func (r EventRef) Cancel() bool {
	if r.ev == nil || r.ev.cancled || r.ev.index < 0 {
		return false
	}
	r.ev.cancled = true
	return true
}

// Pending reports whether the event is still scheduled to fire.
func (r EventRef) Pending() bool {
	return r.ev != nil && !r.ev.cancled && r.ev.index >= 0
}

// eventHeap orders events by (time, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is a single-threaded discrete-event scheduler.
// The zero value is not usable; construct with NewEngine.
type Engine struct {
	now     Time
	queue   eventHeap
	seq     uint64
	running bool
	stopped bool

	// Processed counts events executed so far (diagnostics and tests).
	Processed uint64
}

// NewEngine returns an engine positioned at time zero.
func NewEngine() *Engine {
	e := &Engine{}
	heap.Init(&e.queue)
	return e
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Len returns the number of pending (non-cancelled) events.
// Cancelled events still occupy the heap until popped, so this is an
// upper bound used mainly by tests.
func (e *Engine) Len() int { return len(e.queue) }

// At schedules fn to run at absolute time t. Scheduling in the past
// (t < Now) panics: it always indicates a model bug.
func (e *Engine) At(t Time, fn Handler) EventRef {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	ev := &event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return EventRef{ev}
}

// After schedules fn to run d nanoseconds from now.
func (e *Engine) After(d Time, fn Handler) EventRef {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now+d, fn)
}

// Stop makes Run return after the currently executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until the queue drains, until the horizon is
// passed, or until Stop is called. It returns the final virtual time.
// Events scheduled exactly at the horizon still execute.
func (e *Engine) Run(horizon Time) Time {
	if e.running {
		panic("sim: Run called reentrantly")
	}
	e.running = true
	e.stopped = false
	defer func() { e.running = false }()
	for len(e.queue) > 0 && !e.stopped {
		next := e.queue[0]
		if next.at > horizon {
			e.now = horizon
			return e.now
		}
		heap.Pop(&e.queue)
		if next.cancled {
			continue
		}
		e.now = next.at
		e.Processed++
		next.fn()
	}
	if e.now < horizon && horizon < MaxTime && len(e.queue) == 0 {
		e.now = horizon
	}
	return e.now
}

// RunAll executes events until the queue drains or Stop is called.
func (e *Engine) RunAll() Time { return e.Run(MaxTime) }

package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineOrdersByTime(t *testing.T) {
	e := NewEngine()
	var got []Time
	for _, d := range []Time{50, 10, 30, 20, 40} {
		d := d
		e.At(d, func() { got = append(got, e.Now()) })
	}
	e.RunAll()
	if len(got) != 5 {
		t.Fatalf("ran %d events, want 5", len(got))
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatalf("events fired out of order: %v", got)
	}
}

func TestEngineFIFOAtSameTime(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(100, func() { got = append(got, i) })
	}
	e.RunAll()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events reordered: %v", got)
		}
	}
}

func TestEngineHorizon(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.At(10, func() { fired++ })
	e.At(20, func() { fired++ })
	e.At(21, func() { fired++ })
	end := e.Run(20)
	if fired != 2 {
		t.Fatalf("fired %d events before horizon, want 2 (horizon-inclusive)", fired)
	}
	if end != 20 {
		t.Fatalf("Run returned %v, want 20", end)
	}
	if e.Len() != 1 {
		t.Fatalf("pending = %d, want 1", e.Len())
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ref := e.At(10, func() { fired = true })
	if !ref.Pending() {
		t.Fatal("event should be pending")
	}
	if !ref.Cancel() {
		t.Fatal("Cancel returned false for a pending event")
	}
	if ref.Cancel() {
		t.Fatal("second Cancel should return false")
	}
	e.RunAll()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var order []string
	e.At(5, func() {
		order = append(order, "a")
		e.After(5, func() { order = append(order, "c") })
		e.After(0, func() { order = append(order, "b") })
	})
	e.RunAll()
	want := []string{"a", "b", "c"}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 10 {
		t.Fatalf("final time %v, want 10", e.Now())
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	e := NewEngine()
	e.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(50, func() {})
	})
	e.RunAll()
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.At(1, func() { fired++; e.Stop() })
	e.At(2, func() { fired++ })
	e.RunAll()
	if fired != 1 {
		t.Fatalf("fired %d, want 1 after Stop", fired)
	}
}

func TestEngineHorizonAdvancesWhenIdle(t *testing.T) {
	e := NewEngine()
	if end := e.Run(500); end != 500 {
		t.Fatalf("idle Run returned %v, want 500", end)
	}
}

func TestTimeString(t *testing.T) {
	cases := map[Time]string{
		5:                          "5ns",
		3 * Microsecond:            "3.000us",
		1500 * Microsecond:         "1.500ms",
		2*Second + 500*Millisecond: "2.500s",
	}
	for in, want := range cases {
		if got := in.String(); got != want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(in), got, want)
		}
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed generators diverged")
		}
	}
	c := NewRand(43)
	same := 0
	for i := 0; i < 1000; i++ {
		if NewRand(42).Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 10 {
		t.Fatalf("different seeds produced %d/1000 identical draws", same)
	}
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRandExpMean(t *testing.T) {
	r := NewRand(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	mean := sum / n
	if math.Abs(mean-1) > 0.02 {
		t.Fatalf("ExpFloat64 mean = %v, want ~1", mean)
	}
}

func TestRandIntnUniform(t *testing.T) {
	r := NewRand(3)
	counts := make([]int, 8)
	const n = 80000
	for i := 0; i < n; i++ {
		counts[r.Intn(8)]++
	}
	for i, c := range counts {
		if c < n/8-n/80 || c > n/8+n/80 {
			t.Fatalf("bucket %d has %d draws, want ~%d", i, c, n/8)
		}
	}
}

func TestRandPermIsPermutation(t *testing.T) {
	check := func(seed uint64, n uint8) bool {
		if n == 0 {
			return true
		}
		p := NewRand(seed).Perm(int(n))
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= int(n) || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(p) == int(n)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCancelAfterRunIsNoop(t *testing.T) {
	e := NewEngine()
	ref := e.At(1, func() {})
	e.RunAll()
	if ref.Cancel() {
		t.Fatal("Cancel after fire returned true")
	}
	if ref.Pending() {
		t.Fatal("fired event still pending")
	}
}

package sim

import "math"

// Rand is a small, fast, deterministic PRNG (xorshift64*). All model
// randomness must flow through a Rand seeded from the experiment
// configuration so that runs are reproducible bit-for-bit.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed. A zero seed is remapped
// to a fixed non-zero constant (xorshift state must be non-zero).
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Rand{state: seed}
}

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// ExpFloat64 returns an exponentially distributed float64 with mean 1.
func (r *Rand) ExpFloat64() float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u)
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Fork derives an independent child generator. Children produced by
// distinct call orders see unrelated streams.
func (r *Rand) Fork() *Rand {
	return NewRand(r.Uint64() ^ 0xD1B54A32D192ED03)
}

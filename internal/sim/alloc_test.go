package sim

import "testing"

// TestEngineScheduleRunZeroAlloc pins the event free list's contract: once
// the pool is warm, a schedule+dispatch cycle allocates nothing. This is
// the regression guard behind BenchmarkEngineScheduleRun's allocs/op.
func TestEngineScheduleRunZeroAlloc(t *testing.T) {
	eng := NewEngine()
	n := 0
	fn := func() { n++ }
	// Warm the pool and the heap's backing array.
	for i := 0; i < 64; i++ {
		eng.After(Microsecond, fn)
	}
	eng.RunAll()
	avg := testing.AllocsPerRun(1000, func() {
		eng.After(Microsecond, fn)
		eng.RunAll()
	})
	if avg != 0 {
		t.Fatalf("schedule+run allocates %.2f objects/op, want 0 (event pool)", avg)
	}
}

// TestEngineCancelledEventsRecycle pins that cancelled events also return
// to the pool instead of leaking through the heap.
func TestEngineCancelledEventsRecycle(t *testing.T) {
	eng := NewEngine()
	fn := func() {}
	for i := 0; i < 64; i++ {
		eng.After(Microsecond, fn).Cancel()
	}
	eng.RunAll()
	avg := testing.AllocsPerRun(1000, func() {
		eng.After(Microsecond, fn).Cancel()
		eng.RunAll()
	})
	if avg != 0 {
		t.Fatalf("cancel+drain allocates %.2f objects/op, want 0", avg)
	}
}

// TestEventRefInertAfterRecycle guards the generation counter: a ref to a
// fired event must stay inert even after the engine reuses the slot for a
// newer event — cancelling through the stale ref must not kill the new one.
func TestEventRefInertAfterRecycle(t *testing.T) {
	eng := NewEngine()
	stale := eng.At(1, func() {})
	eng.RunAll()
	fired := false
	fresh := eng.At(2, func() { fired = true })
	if stale.Pending() {
		t.Fatal("stale ref reports pending after its event fired")
	}
	if stale.Cancel() {
		t.Fatal("stale ref cancelled a recycled slot")
	}
	if !fresh.Pending() {
		t.Fatal("fresh event lost")
	}
	eng.RunAll()
	if !fired {
		t.Fatal("fresh event did not fire — stale ref leaked into the new generation")
	}
}

// TestEngineHeapProperty stresses the 4-ary heap against a reference
// ordering: random interleaved schedules must still fire in (time, seq)
// order.
func TestEngineHeapProperty(t *testing.T) {
	eng := NewEngine()
	r := NewRand(99)
	type stamp struct {
		at  Time
		seq int
	}
	var fired []stamp
	seq := 0
	var schedule func(depth int)
	schedule = func(depth int) {
		at := eng.Now() + Time(r.Intn(1000))
		mySeq := seq
		seq++
		eng.At(at, func() {
			fired = append(fired, stamp{eng.Now(), mySeq})
			if depth < 3 && r.Intn(4) == 0 {
				schedule(depth + 1)
			}
		})
	}
	for i := 0; i < 5000; i++ {
		schedule(0)
	}
	eng.RunAll()
	if len(fired) < 5000 {
		t.Fatalf("fired %d events, want >= 5000", len(fired))
	}
	for i := 1; i < len(fired); i++ {
		if fired[i].at < fired[i-1].at {
			t.Fatalf("event %d fired at %v after %v", i, fired[i].at, fired[i-1].at)
		}
	}
	if int(eng.Processed) != len(fired) {
		t.Fatalf("Processed = %d, fired = %d", eng.Processed, len(fired))
	}
}

package sim

import "testing"

// BenchmarkEngineScheduleRun measures raw event throughput: schedule +
// dispatch of one event (the simulator's unit cost; a packet-level trace
// is tens of millions of these). The handler is hoisted so the measured
// loop exercises only the scheduler; with the event free list the steady
// state must not allocate at all.
func BenchmarkEngineScheduleRun(b *testing.B) {
	eng := NewEngine()
	n := 0
	fn := func() { n++ }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.After(Microsecond, fn)
		eng.RunAll()
	}
	if n != b.N {
		b.Fatalf("ran %d events, want %d", n, b.N)
	}
}

// BenchmarkEngineHeapDepth exercises the heap with many pending events.
func BenchmarkEngineHeapDepth(b *testing.B) {
	eng := NewEngine()
	n := 0
	fn := func() { n++ }
	for i := 0; i < 10_000; i++ {
		eng.At(Time(i)*Microsecond, fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.At(Time(i%10_000)*Microsecond+Second, fn)
	}
	eng.RunAll()
}

// BenchmarkEngineChurn is the mixed workload a trace actually produces:
// a standing population of timers with interleaved schedule/fire/cancel.
func BenchmarkEngineChurn(b *testing.B) {
	eng := NewEngine()
	n := 0
	fn := func() { n++ }
	var refs [64]EventRef
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		slot := i % len(refs)
		refs[slot].Cancel()
		refs[slot] = eng.After(Time(1+i%7)*Microsecond, fn)
		if i%len(refs) == 0 {
			eng.Run(eng.Now() + 3*Microsecond)
		}
	}
	eng.RunAll()
}

func BenchmarkRand(b *testing.B) {
	r := NewRand(1)
	b.ReportAllocs()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.Float64()
	}
	_ = sink
}

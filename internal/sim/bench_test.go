package sim

import "testing"

// BenchmarkEngineScheduleRun measures raw event throughput: schedule +
// dispatch of one event (the simulator's unit cost; a packet-level trace
// is tens of millions of these).
func BenchmarkEngineScheduleRun(b *testing.B) {
	eng := NewEngine()
	b.ReportAllocs()
	b.ResetTimer()
	n := 0
	for i := 0; i < b.N; i++ {
		eng.After(Microsecond, func() { n++ })
		eng.RunAll()
	}
	if n != b.N {
		b.Fatalf("ran %d events, want %d", n, b.N)
	}
}

// BenchmarkEngineHeapDepth exercises the heap with many pending events.
func BenchmarkEngineHeapDepth(b *testing.B) {
	eng := NewEngine()
	n := 0
	for i := 0; i < 10_000; i++ {
		eng.At(Time(i)*Microsecond, func() { n++ })
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.At(Time(i%10_000)*Microsecond+Second, func() { n++ })
	}
	eng.RunAll()
}

func BenchmarkRand(b *testing.B) {
	r := NewRand(1)
	b.ReportAllocs()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.Float64()
	}
	_ = sink
}

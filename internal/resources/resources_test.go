package resources

import (
	"strings"
	"testing"
)

func TestTestbedFitsTofino(t *testing.T) {
	u := Compute(TestbedConfig())
	for name, frac := range u.Fractions() {
		if frac <= 0 || frac > 1 {
			t.Errorf("%s utilization %.3f out of (0,1]", name, frac)
		}
	}
	// The paper: "fits well on Tofino" — headline structures stay well
	// under half the chip.
	if f := u.Fractions()["SRAM"]; f > 0.5 {
		t.Errorf("SRAM fraction %.2f, want < 0.5", f)
	}
}

func TestMemoryScalingShape(t *testing.T) {
	// Flow telemetry scales O(#flows); causality+port state is constant
	// in the flow count (Fig 13b).
	base := Compute(Config{Ports: 64, NumEpochs: 4, FlowSlots: 1024})
	big := Compute(Config{Ports: 64, NumEpochs: 4, FlowSlots: 16384})
	flowDelta := big.SRAMBytes - base.SRAMBytes
	wantDelta := 4 * (16384 - 1024) * FlowSlotBytes
	if flowDelta != wantDelta {
		t.Fatalf("flow-table delta %d, want %d", flowDelta, wantDelta)
	}
	// Port/meter state identical across the two.
	fixed1 := base.SRAMBytes - 4*1024*FlowSlotBytes
	fixed2 := big.SRAMBytes - 4*16384*FlowSlotBytes
	if fixed1 != fixed2 {
		t.Fatalf("fixed state changed with flow count: %d vs %d", fixed1, fixed2)
	}
}

func TestEpochCountScalesLinearly(t *testing.T) {
	u2 := Compute(Config{Ports: 64, NumEpochs: 2, FlowSlots: 4096})
	u4 := Compute(Config{Ports: 64, NumEpochs: 4, FlowSlots: 4096})
	perEpoch := 4096*FlowSlotBytes + 64*PortEntryBytes
	if u4.SRAMBytes-u2.SRAMBytes != 2*perEpoch {
		t.Fatalf("epoch scaling: %d vs want %d", u4.SRAMBytes-u2.SRAMBytes, 2*perEpoch)
	}
}

func TestFigureTablesRender(t *testing.T) {
	a := Fig13a().String()
	if !strings.Contains(a, "SRAM") || !strings.Contains(a, "%") {
		t.Fatalf("Fig13a:\n%s", a)
	}
	b := Fig13b().String()
	if !strings.Contains(b, "16384") {
		t.Fatalf("Fig13b:\n%s", b)
	}
}

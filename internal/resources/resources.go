// Package resources models Hawkeye's Tofino hardware footprint (Fig. 13):
// SRAM, stages, PHV and other pipeline resources as functions of the
// telemetry configuration. The model follows the structure sizes of
// internal/telemetry — each register array's width and depth — combined
// with typical Tofino-1 capacity figures, so it reproduces both the
// absolute-usage bars (Fig. 13a) and the memory-scaling curves (Fig. 13b).
package resources

import (
	"fmt"

	"hawkeye/internal/metrics"
	"hawkeye/internal/telemetry"
)

// Tofino-1 per-pipeline capacities (public figures).
const (
	TofinoStages        = 12
	TofinoSRAMKB        = 12 * 80 * 16 // 12 stages x 80 blocks x 16 KB
	TofinoTCAMEntries   = 12 * 24 * 512
	TofinoPHVBits       = 4096
	TofinoHashBitsTotal = 12 * 5 * 52
)

// Config describes the deployed telemetry dimensioning.
type Config struct {
	Ports     int
	NumEpochs int
	FlowSlots int
}

// TestbedConfig is the paper's hardware evaluation point: 64 ports,
// 4 epochs, 4096 flow slots.
func TestbedConfig() Config {
	return Config{Ports: 64, NumEpochs: 4, FlowSlots: 4096}
}

// Usage is the absolute resource footprint of one Hawkeye deployment.
type Usage struct {
	// SRAMBytes is the register memory across all structures.
	SRAMBytes int
	// Stages is the pipeline-stage estimate (one register access per
	// stage; hashing, status update and meter update pack into shared
	// stages where the access pattern allows).
	Stages int
	// PHVBits is the extra packet-header-vector space for the polling
	// header and telemetry metadata.
	PHVBits int
	// HashBits used by the flow-table index.
	HashBits int
	// TCAMEntries for the polling flag/port match tables.
	TCAMEntries int
}

// FlowSlotBytes mirrors the on-chip width of one flow-table slot:
// 13 B tuple + 2 B port + three 4 B counters + 8 B depth accumulator,
// padded to the 2x32-bit register lanes Tofino exposes.
const FlowSlotBytes = 40

// PortEntryBytes is the per-port per-epoch record width.
const PortEntryBytes = 24

// MeterEntryBytes is one causality-meter cell (byte counter).
const MeterEntryBytes = 4

// StatusEntryBytes is one port-status register block.
const StatusEntryBytes = 16

// Compute sizes the deployment.
func Compute(c Config) Usage {
	flowTable := c.NumEpochs * c.FlowSlots * FlowSlotBytes
	portTable := c.NumEpochs * c.Ports * PortEntryBytes
	// Two meter buckets (current + previous window).
	meter := 2 * c.Ports * c.Ports * MeterEntryBytes
	status := c.Ports * StatusEntryBytes
	return Usage{
		SRAMBytes: flowTable + portTable + meter + status,
		// epoch index/ID derivation, flow hash + XOR match + update,
		// port counters, meter update, status registers, polling logic.
		Stages:      7,
		PHVBits:     (telemetry.FlowRecordWire + 8) * 8,
		HashBits:    32,
		TCAMEntries: 2*c.Ports + 16,
	}
}

// Fractions returns utilization relative to Tofino-1 capacity.
func (u Usage) Fractions() map[string]float64 {
	return map[string]float64{
		"SRAM":   float64(u.SRAMBytes) / float64(TofinoSRAMKB*1024),
		"Stages": float64(u.Stages) / float64(TofinoStages),
		"PHV":    float64(u.PHVBits) / float64(TofinoPHVBits),
		"Hash":   float64(u.HashBits) / float64(TofinoHashBitsTotal),
		"TCAM":   float64(u.TCAMEntries) / float64(TofinoTCAMEntries),
	}
}

// Fig13a renders the absolute usage table for the testbed configuration.
func Fig13a() *metrics.Table {
	u := Compute(TestbedConfig())
	t := &metrics.Table{
		Title:   "Fig 13a: Tofino resource usage (64 ports, 4 epochs, 4096 flows)",
		Headers: []string{"resource", "used", "fraction"},
	}
	fr := u.Fractions()
	t.AddRow("SRAM", fmt.Sprintf("%d KB", u.SRAMBytes/1024), fmt.Sprintf("%.1f%%", fr["SRAM"]*100))
	t.AddRow("Stages", fmt.Sprintf("%d", u.Stages), fmt.Sprintf("%.1f%%", fr["Stages"]*100))
	t.AddRow("PHV", fmt.Sprintf("%d bits", u.PHVBits), fmt.Sprintf("%.1f%%", fr["PHV"]*100))
	t.AddRow("Hash", fmt.Sprintf("%d bits", u.HashBits), fmt.Sprintf("%.1f%%", fr["Hash"]*100))
	t.AddRow("TCAM", fmt.Sprintf("%d entries", u.TCAMEntries), fmt.Sprintf("%.1f%%", fr["TCAM"]*100))
	return t
}

// Fig13b renders the memory-scaling sweep: constant-size causality/port
// state vs O(#flows) flow telemetry.
func Fig13b() *metrics.Table {
	t := &metrics.Table{
		Title:   "Fig 13b: memory scaling (KB)",
		Headers: []string{"epochs", "flow-slots", "flow-KB", "port+meter-KB", "total-KB"},
	}
	for _, epochs := range []int{2, 4, 8} {
		for _, slots := range []int{1024, 4096, 16384} {
			c := Config{Ports: 64, NumEpochs: epochs, FlowSlots: slots}
			flow := epochs * slots * FlowSlotBytes
			fixed := epochs*c.Ports*PortEntryBytes + 2*c.Ports*c.Ports*MeterEntryBytes + c.Ports*StatusEntryBytes
			t.AddRow(
				fmt.Sprintf("%d", epochs),
				fmt.Sprintf("%d", slots),
				fmt.Sprintf("%d", flow/1024),
				fmt.Sprintf("%d", fixed/1024),
				fmt.Sprintf("%d", (flow+fixed)/1024))
		}
	}
	return t
}

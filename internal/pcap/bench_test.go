package pcap

import (
	"io"
	"testing"

	"hawkeye/internal/packet"
	"hawkeye/internal/sim"
	"hawkeye/internal/topo"
)

func BenchmarkEncodeFrame(b *testing.B) {
	tp := topo.New(100e9, sim.Microsecond)
	a := tp.AddHost("a")
	sw := tp.AddSwitch("sw")
	tp.Connect(a, sw)
	pkt := &packet.Packet{
		Type:  packet.TypeData,
		Flow:  packet.FiveTuple{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: 17},
		Class: packet.ClassLossless,
		Size:  1078,
		Seq:   9,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EncodeFrame(tp, a, 0, pkt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWritePacket(b *testing.B) {
	w, err := NewWriter(io.Discard)
	if err != nil {
		b.Fatal(err)
	}
	frame := make([]byte, 1054)
	b.SetBytes(int64(len(frame)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.WritePacket(sim.Time(i), frame, len(frame)); err != nil {
			b.Fatal(err)
		}
	}
}

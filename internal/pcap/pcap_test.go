package pcap

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
	"testing/quick"

	"hawkeye/internal/cluster"
	"hawkeye/internal/packet"
	"hawkeye/internal/sim"
	"hawkeye/internal/topo"
)

func TestWriterReaderRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	recs := []struct {
		ts   sim.Time
		data []byte
	}{
		{0, []byte{1}},
		{123456789, bytes.Repeat([]byte{0xAB}, 60)},
		{2*sim.Second + 5, bytes.Repeat([]byte{0xCD}, 1500)},
	}
	for _, r := range recs {
		if err := w.WritePacket(r.ts, r.data, len(r.data)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	pr, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if pr.LinkType != LinkTypeEthernet {
		t.Fatalf("link type %d", pr.LinkType)
	}
	for i, want := range recs {
		got, err := pr.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got.TS != want.ts || !bytes.Equal(got.Data, want.data) {
			t.Fatalf("record %d mismatch: ts=%v len=%d", i, got.TS, len(got.Data))
		}
	}
	if _, err := pr.Next(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestRecordRoundTripQuick(t *testing.T) {
	f := func(ts uint32, payload []byte) bool {
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			return false
		}
		if err := w.WritePacket(sim.Time(ts), payload, len(payload)); err != nil {
			return false
		}
		if err := w.Flush(); err != nil {
			return false
		}
		pr, err := NewReader(&buf)
		if err != nil {
			return false
		}
		got, err := pr.Next()
		if err != nil {
			return false
		}
		return got.TS == sim.Time(ts) && bytes.Equal(got.Data, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func twoHostTopo() (*topo.Topology, topo.NodeID, topo.NodeID, topo.NodeID) {
	tp := topo.New(100e9, sim.Microsecond)
	a := tp.AddHost("a")
	b := tp.AddHost("b")
	sw := tp.AddSwitch("sw")
	tp.Connect(a, sw)
	tp.Connect(b, sw)
	return tp, a, b, sw
}

func TestEncodeDecodeDataFrame(t *testing.T) {
	tp, a, _, _ := twoHostTopo()
	pkt := &packet.Packet{
		Type:   packet.TypeData,
		Flow:   packet.FiveTuple{SrcIP: 0x0A000001, DstIP: 0x0A000002, SrcPort: 1024, DstPort: 4791, Proto: 17},
		FlowID: 42,
		Class:  packet.ClassLossless,
		Size:   1078,
		Seq:    7,
		Last:   true,
		ECN:    true,
	}
	frame, err := EncodeFrame(tp, a, 0, pkt)
	if err != nil {
		t.Fatal(err)
	}
	// pcap frames omit preamble/IPG/FCS (24 of the 38 overhead bytes).
	if want := pkt.Size - (packet.EthOverhead - 14); len(frame) != want {
		t.Fatalf("frame len %d, want %d", len(frame), want)
	}
	d, err := DecodeFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	if d.IsPFC {
		t.Fatal("data frame decoded as PFC")
	}
	if d.Flow != pkt.Flow {
		t.Fatalf("5-tuple mangled: %+v", d.Flow)
	}
	if d.Class != packet.ClassLossless || !d.ECNCE || !d.Last || d.Seq != 7 || d.FlowID != 42 {
		t.Fatalf("fields mangled: %+v", d)
	}
	if d.Opcode != bthOpcode[packet.TypeData] {
		t.Fatalf("opcode %#x", d.Opcode)
	}
}

func TestEncodeDecodePFCFrame(t *testing.T) {
	tp, _, _, sw := twoHostTopo()
	f := &packet.PFCFrame{ClassEnable: 1 << packet.ClassLossless}
	f.Quanta[packet.ClassLossless] = 0xBEEF
	pkt := &packet.Packet{Type: packet.TypePFC, Class: packet.ClassControl, Size: packet.PFCFrameSize, PFC: f}
	frame, err := EncodeFrame(tp, sw, 0, pkt)
	if err != nil {
		t.Fatal(err)
	}
	if len(frame) != minFrameLen {
		t.Fatalf("PFC frame len %d, want %d", len(frame), minFrameLen)
	}
	if !bytes.Equal(frame[0:6], pfcDstMAC[:]) {
		t.Fatal("PFC frame not addressed to the MAC-control multicast")
	}
	d, err := DecodeFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	if !d.IsPFC || d.PFC == nil {
		t.Fatal("not decoded as PFC")
	}
	if !d.PFC.Paused(packet.ClassLossless) || d.PFC.Quanta[packet.ClassLossless] != 0xBEEF {
		t.Fatalf("PFC payload mangled: %v", d.PFC)
	}
}

func TestIPChecksumValid(t *testing.T) {
	tp, a, _, _ := twoHostTopo()
	pkt := &packet.Packet{
		Type: packet.TypeData,
		Flow: packet.FiveTuple{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: 17},
		Size: 500,
	}
	frame, err := EncodeFrame(tp, a, 0, pkt)
	if err != nil {
		t.Fatal(err)
	}
	// Verify per RFC 1071: summing the full header including the stored
	// checksum must yield 0xFFFF.
	ip := frame[ethHeaderLen+vlanTagLen:][:ipv4HeaderLen]
	var sum uint32
	for i := 0; i < ipv4HeaderLen; i += 2 {
		sum += uint32(binary.BigEndian.Uint16(ip[i:]))
	}
	for sum>>16 != 0 {
		sum = sum&0xFFFF + sum>>16
	}
	if sum != 0xFFFF {
		t.Fatalf("IP header checksum invalid: folded sum %#x", sum)
	}
}

func TestTapCapturesClusterTraffic(t *testing.T) {
	d, err := topo.NewChain(2, 2, topo.DefaultBandwidth, topo.DefaultDelay)
	if err != nil {
		t.Fatal(err)
	}
	r := topo.ComputeRouting(d.Topology)
	cl := cluster.New(d.Topology, r, cluster.DefaultConfig(d.Topology))
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	tap := AttachTap(cl.Net, w)
	cl.StartFlow(d.HostsAt[0][0], d.HostsAt[1][0], 100_000, 0)
	cl.Run(5 * sim.Millisecond)
	if tap.Err != nil {
		t.Fatal(tap.Err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Packets != cl.Net.Delivered {
		t.Fatalf("captured %d packets, fabric delivered %d", w.Packets, cl.Net.Delivered)
	}
	// Read back and account by frame type: at least 100 data frames
	// (100 KB / 1 KB MTU) and their ACKs must be present and parseable.
	pr, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	data, acks := 0, 0
	for {
		rec, err := pr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		dec, err := DecodeFrame(rec.Data)
		if err != nil {
			t.Fatal(err)
		}
		switch dec.Opcode {
		case bthOpcode[packet.TypeData]:
			data++
		case bthOpcode[packet.TypeACK]:
			acks++
		}
	}
	if data < 100 {
		t.Fatalf("captured %d data frames, want >= 100", data)
	}
	if acks == 0 {
		t.Fatal("no ACK frames captured")
	}
}

func TestTapFilter(t *testing.T) {
	d, err := topo.NewChain(2, 1, topo.DefaultBandwidth, topo.DefaultDelay)
	if err != nil {
		t.Fatal(err)
	}
	r := topo.ComputeRouting(d.Topology)
	cl := cluster.New(d.Topology, r, cluster.DefaultConfig(d.Topology))
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	tap := AttachTap(cl.Net, w)
	tap.Filter = func(_ topo.NodeID, _ int, pkt *packet.Packet) bool {
		return pkt.Type == packet.TypeData
	}
	cl.StartFlow(d.HostsAt[0][0], d.HostsAt[1][0], 50_000, 0)
	cl.Run(5 * sim.Millisecond)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	pr, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for {
		rec, err := pr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		dec, err := DecodeFrame(rec.Data)
		if err != nil {
			t.Fatal(err)
		}
		if dec.Opcode != bthOpcode[packet.TypeData] {
			t.Fatalf("filter leaked a non-data frame (opcode %#x)", dec.Opcode)
		}
	}
	if w.Packets == 0 {
		t.Fatal("filter captured nothing")
	}
}

// TestFrameRoundTripProperty fuzzes the data-frame codec: random tuples,
// classes, flags and sizes must survive encode/decode.
func TestFrameRoundTripProperty(t *testing.T) {
	tp, a, _, _ := twoHostTopo()
	prop := func(srcIP, dstIP uint32, sp, dp uint16, class uint8, seq uint32, size uint16, last, ecn bool) bool {
		pkt := &packet.Packet{
			Type:  packet.TypeData,
			Flow:  packet.FiveTuple{SrcIP: srcIP, DstIP: dstIP, SrcPort: sp, DstPort: dp, Proto: 17},
			Class: class % packet.NumClasses,
			Size:  int(size%2000) + 100,
			Seq:   seq,
			Last:  last,
			ECN:   ecn,
		}
		frame, err := EncodeFrame(tp, a, 0, pkt)
		if err != nil {
			return false
		}
		d, err := DecodeFrame(frame)
		if err != nil {
			return false
		}
		return d.Flow == pkt.Flow && d.Class == pkt.Class &&
			d.Seq == seq && d.Last == last && d.ECNCE == ecn && !d.IsPFC
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// TestPFCFrameRoundTripProperty fuzzes the 802.1Qbb codec through the
// capture path.
func TestPFCFrameRoundTripProperty(t *testing.T) {
	tp, _, _, sw := twoHostTopo()
	prop := func(enable uint8, quanta [packet.NumClasses]uint16) bool {
		f := &packet.PFCFrame{ClassEnable: enable, Quanta: quanta}
		pkt := &packet.Packet{Type: packet.TypePFC, Class: packet.ClassControl, Size: packet.PFCFrameSize, PFC: f}
		frame, err := EncodeFrame(tp, sw, 0, pkt)
		if err != nil {
			return false
		}
		d, err := DecodeFrame(frame)
		if err != nil || !d.IsPFC {
			return false
		}
		return d.PFC.ClassEnable == enable && d.PFC.Quanta == quanta
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReaderRejectsCorruptHeaders(t *testing.T) {
	// Wrong magic.
	if _, err := NewReader(bytes.NewReader(make([]byte, 24))); err == nil {
		t.Fatal("zero magic accepted")
	}
	// Short header.
	if _, err := NewReader(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Fatal("short header accepted")
	}
	// Valid header, record claiming capLen > snaplen.
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	_ = w.Flush()
	hostile := append(buf.Bytes(), []byte{0, 0, 0, 0, 0, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0}...)
	pr, err := NewReader(bytes.NewReader(hostile))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pr.Next(); err == nil {
		t.Fatal("oversize record accepted")
	}
}

func TestDecodeFrameNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		_, _ = DecodeFrame(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Package pcap writes and reads libpcap capture files (the format
// tcpdump/Wireshark consume) and synthesizes standard Ethernet framing
// for simulated packets: RoCEv2-style VLAN-tagged IPv4/UDP for data and
// control, 802.1Qbb MAC-control frames for PFC. A Tap attaches to the
// fabric and records every wire event, so a simulated anomaly can be
// inspected with ordinary capture tooling.
package pcap

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"hawkeye/internal/sim"
)

// File format constants (nanosecond-resolution libpcap).
const (
	magicNanos   = 0xa1b23c4d
	versionMajor = 2
	versionMinor = 4
	// LinkTypeEthernet is DLT_EN10MB.
	LinkTypeEthernet = 1
	// DefaultSnapLen captures whole frames for our MTUs.
	DefaultSnapLen = 65535
)

// Writer emits a libpcap stream. Not safe for concurrent use (the
// simulator is single-threaded).
type Writer struct {
	w       *bufio.Writer
	snaplen int
	// Packets counts records written.
	Packets uint64
}

// NewWriter writes the file header and returns a record writer.
func NewWriter(w io.Writer) (*Writer, error) {
	pw := &Writer{w: bufio.NewWriter(w), snaplen: DefaultSnapLen}
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:], magicNanos)
	binary.LittleEndian.PutUint16(hdr[4:], versionMajor)
	binary.LittleEndian.PutUint16(hdr[6:], versionMinor)
	// thiszone, sigfigs: 0.
	binary.LittleEndian.PutUint32(hdr[16:], DefaultSnapLen)
	binary.LittleEndian.PutUint32(hdr[20:], LinkTypeEthernet)
	if _, err := pw.w.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("pcap: header: %w", err)
	}
	return pw, nil
}

// WritePacket writes one record. ts is the simulator timestamp (ns since
// trace start); origLen is the untruncated wire length (data may be a
// truncated snapshot of it).
func (pw *Writer) WritePacket(ts sim.Time, data []byte, origLen int) error {
	if len(data) > pw.snaplen {
		data = data[:pw.snaplen]
	}
	if origLen < len(data) {
		origLen = len(data)
	}
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(ts/sim.Second))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(ts%sim.Second))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(data)))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(origLen))
	if _, err := pw.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("pcap: record header: %w", err)
	}
	if _, err := pw.w.Write(data); err != nil {
		return fmt.Errorf("pcap: record body: %w", err)
	}
	pw.Packets++
	return nil
}

// Flush drains the buffered output. Call before closing the underlying
// file.
func (pw *Writer) Flush() error { return pw.w.Flush() }

// Record is one captured packet.
type Record struct {
	TS      sim.Time
	Data    []byte
	OrigLen int
}

// Reader consumes a libpcap stream written by Writer (nanosecond magic,
// little-endian only — this is a round-trip reader, not a general one).
type Reader struct {
	r        *bufio.Reader
	LinkType uint32
	snaplen  uint32
}

// NewReader validates the file header.
func NewReader(r io.Reader) (*Reader, error) {
	pr := &Reader{r: bufio.NewReader(r)}
	var hdr [24]byte
	if _, err := io.ReadFull(pr.r, hdr[:]); err != nil {
		return nil, fmt.Errorf("pcap: short header: %w", err)
	}
	if m := binary.LittleEndian.Uint32(hdr[0:]); m != magicNanos {
		return nil, fmt.Errorf("pcap: bad magic %#x", m)
	}
	pr.snaplen = binary.LittleEndian.Uint32(hdr[16:])
	pr.LinkType = binary.LittleEndian.Uint32(hdr[20:])
	return pr, nil
}

// Next returns the next record, or io.EOF at end of stream.
func (pr *Reader) Next() (Record, error) {
	var hdr [16]byte
	if _, err := io.ReadFull(pr.r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			err = io.EOF
		}
		return Record{}, err
	}
	sec := binary.LittleEndian.Uint32(hdr[0:])
	nsec := binary.LittleEndian.Uint32(hdr[4:])
	capLen := binary.LittleEndian.Uint32(hdr[8:])
	origLen := binary.LittleEndian.Uint32(hdr[12:])
	if capLen > pr.snaplen {
		return Record{}, fmt.Errorf("pcap: record capLen %d exceeds snaplen %d", capLen, pr.snaplen)
	}
	data := make([]byte, capLen)
	if _, err := io.ReadFull(pr.r, data); err != nil {
		return Record{}, fmt.Errorf("pcap: short record: %w", err)
	}
	return Record{
		TS:      sim.Time(sec)*sim.Second + sim.Time(nsec),
		Data:    data,
		OrigLen: int(origLen),
	}, nil
}

package pcap

import (
	"hawkeye/internal/fabric"
	"hawkeye/internal/packet"
	"hawkeye/internal/sim"
	"hawkeye/internal/topo"
)

// Tap records fabric wire events into a pcap Writer.
type Tap struct {
	w    *Writer
	topo *topo.Topology

	// Filter, if set, limits capture to packets it approves.
	Filter func(from topo.NodeID, port int, pkt *packet.Packet) bool
	// Err holds the first write error (the tap goes quiet after one).
	Err error

	// Dropped counts packets skipped because of Err.
	Dropped uint64
}

// AttachTap installs a capture tap on the network. It replaces any
// existing OnWire hook; the returned Tap keeps capturing until the
// simulation ends. Flush the Writer afterwards.
func AttachTap(net *fabric.Network, w *Writer) *Tap {
	tap := &Tap{w: w, topo: net.Topo}
	net.OnWire = func(from topo.NodeID, port int, pkt *packet.Packet, now sim.Time) {
		tap.capture(from, port, pkt, now)
	}
	return tap
}

func (tap *Tap) capture(from topo.NodeID, port int, pkt *packet.Packet, now sim.Time) {
	if tap.Err != nil {
		tap.Dropped++
		return
	}
	if tap.Filter != nil && !tap.Filter(from, port, pkt) {
		return
	}
	frame, err := EncodeFrame(tap.topo, from, port, pkt)
	if err != nil {
		tap.Err = err
		return
	}
	origLen := pkt.Size - (packet.EthOverhead - ethHeaderLen)
	if origLen < len(frame) {
		origLen = len(frame)
	}
	if err := tap.w.WritePacket(now, frame, origLen); err != nil {
		tap.Err = err
	}
}

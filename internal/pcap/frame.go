package pcap

import (
	"encoding/binary"
	"fmt"

	"hawkeye/internal/packet"
	"hawkeye/internal/topo"
)

// Ethernet framing constants.
const (
	etherTypeVLAN    = 0x8100
	etherTypeIPv4    = 0x0800
	etherTypeMACCtrl = 0x8808

	ethHeaderLen  = 14
	vlanTagLen    = 4
	ipv4HeaderLen = 20
	udpHeaderLen  = 8
	minFrameLen   = 60 // without FCS

	// rocePort is the RoCEv2 UDP destination port.
	rocePort = 4791
)

// pfcDstMAC is the 802.1Qbb destination: the 802.3x MAC-control multicast.
var pfcDstMAC = [6]byte{0x01, 0x80, 0xC2, 0x00, 0x00, 0x01}

// nodeMAC derives a stable locally-administered MAC for (node, port).
func nodeMAC(node topo.NodeID, port int) [6]byte {
	return [6]byte{0x02, 0x00, byte(node >> 8), byte(node), byte(port >> 8), byte(port)}
}

// bthLen is the payload prefix carrying the simulator's transport fields
// in an InfiniBand BTH-like layout: opcode(1) flags(1) pkey(2) qp(4)
// psn(4).
const bthLen = 12

// opcode values stamped into the BTH byte so decoded captures
// distinguish our packet types.
var bthOpcode = map[packet.Type]byte{
	packet.TypeData:    0x2A, // UD SEND-only
	packet.TypeACK:     0x11, // RDMA ACK
	packet.TypeNACK:    0x12,
	packet.TypeCNP:     0x81, // RoCEv2 CNP
	packet.TypePolling: 0xF0, // vendor range: Hawkeye polling
	packet.TypeReport:  0xF1, // vendor range: Hawkeye report
}

// EncodeFrame synthesizes the Ethernet frame for a simulated packet sent
// from (from, port) to its link peer. The frame length equals the
// packet's accounted wire size minus preamble/IPG/FCS (which pcap does
// not carry), so byte counts in capture tools line up with the
// simulator's own accounting.
func EncodeFrame(t *topo.Topology, from topo.NodeID, port int, pkt *packet.Packet) ([]byte, error) {
	peer, peerPort := t.PeerOf(from, port)
	src := nodeMAC(from, port)
	dst := nodeMAC(peer, peerPort)

	if pkt.Type == packet.TypePFC {
		return encodePFCFrame(src, pkt)
	}

	frameLen := pkt.Size - (packet.EthOverhead - ethHeaderLen)
	if frameLen < minFrameLen {
		frameLen = minFrameLen
	}
	b := make([]byte, frameLen)
	copy(b[0:6], dst[:])
	copy(b[6:12], src[:])
	// 802.1Q tag carrying the packet's priority class (PCP bits) — the
	// field PFC acts on.
	binary.BigEndian.PutUint16(b[12:], etherTypeVLAN)
	binary.BigEndian.PutUint16(b[14:], uint16(pkt.Class)<<13|1)
	binary.BigEndian.PutUint16(b[16:], etherTypeIPv4)

	ip := b[ethHeaderLen+vlanTagLen:]
	ipLen := frameLen - ethHeaderLen - vlanTagLen
	ip[0] = 0x45 // v4, 20-byte header
	ecn := byte(0)
	if pkt.ECN {
		ecn = 0x03 // CE
	}
	ip[1] = ecn
	binary.BigEndian.PutUint16(ip[2:], uint16(ipLen))
	ip[8] = 64 // TTL
	ip[9] = pkt.Flow.Proto
	binary.BigEndian.PutUint32(ip[12:], pkt.Flow.SrcIP)
	binary.BigEndian.PutUint32(ip[16:], pkt.Flow.DstIP)
	binary.BigEndian.PutUint16(ip[10:], ipChecksum(ip[:ipv4HeaderLen]))

	udp := ip[ipv4HeaderLen:]
	binary.BigEndian.PutUint16(udp[0:], pkt.Flow.SrcPort)
	binary.BigEndian.PutUint16(udp[2:], pkt.Flow.DstPort)
	binary.BigEndian.PutUint16(udp[4:], uint16(ipLen-ipv4HeaderLen))

	bth := udp[udpHeaderLen:]
	if len(bth) >= bthLen {
		bth[0] = bthOpcode[pkt.Type]
		if pkt.Last {
			bth[1] |= 0x01
		}
		binary.BigEndian.PutUint32(bth[4:], uint32(pkt.FlowID))
		seq := pkt.Seq
		if pkt.Type == packet.TypeACK || pkt.Type == packet.TypeNACK {
			seq = pkt.AckedSeq
		}
		binary.BigEndian.PutUint32(bth[8:], seq)
	}
	if pkt.Type == packet.TypePolling && pkt.Poll != nil && len(bth) >= bthLen+packet.PollingHeaderLen {
		ph, err := pkt.Poll.MarshalBinary()
		if err != nil {
			return nil, fmt.Errorf("pcap: polling header: %w", err)
		}
		copy(bth[bthLen:], ph)
	}
	return b, nil
}

// encodePFCFrame builds the 802.1Qbb MAC-control frame.
func encodePFCFrame(src [6]byte, pkt *packet.Packet) ([]byte, error) {
	body, err := pkt.PFC.MarshalBinary()
	if err != nil {
		return nil, fmt.Errorf("pcap: pfc frame: %w", err)
	}
	b := make([]byte, minFrameLen)
	copy(b[0:6], pfcDstMAC[:])
	copy(b[6:12], src[:])
	binary.BigEndian.PutUint16(b[12:], etherTypeMACCtrl)
	copy(b[ethHeaderLen:], body)
	return b, nil
}

// ipChecksum is the RFC 1071 header checksum (checksum field zeroed).
func ipChecksum(hdr []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(hdr); i += 2 {
		if i == 10 {
			continue // checksum field itself
		}
		sum += uint32(binary.BigEndian.Uint16(hdr[i:]))
	}
	for sum>>16 != 0 {
		sum = sum&0xFFFF + sum>>16
	}
	return ^uint16(sum)
}

// Decoded is the summary of a parsed capture frame.
type Decoded struct {
	SrcMAC, DstMAC [6]byte
	Class          uint8
	IsPFC          bool
	PFC            *packet.PFCFrame
	Flow           packet.FiveTuple
	ECNCE          bool
	Opcode         byte
	Last           bool
	FlowID         uint32
	Seq            uint32
}

// DecodeFrame parses a frame produced by EncodeFrame.
func DecodeFrame(b []byte) (*Decoded, error) {
	if len(b) < ethHeaderLen {
		return nil, fmt.Errorf("pcap: frame too short (%d bytes)", len(b))
	}
	d := &Decoded{}
	copy(d.DstMAC[:], b[0:6])
	copy(d.SrcMAC[:], b[6:12])
	et := binary.BigEndian.Uint16(b[12:])
	if et == etherTypeMACCtrl {
		d.IsPFC = true
		f := &packet.PFCFrame{}
		if err := f.UnmarshalBinary(b[ethHeaderLen:]); err != nil {
			return nil, err
		}
		d.PFC = f
		return d, nil
	}
	if et != etherTypeVLAN {
		return nil, fmt.Errorf("pcap: unexpected ethertype %#x", et)
	}
	if len(b) < ethHeaderLen+vlanTagLen+ipv4HeaderLen+udpHeaderLen+bthLen {
		return nil, fmt.Errorf("pcap: tagged frame too short (%d bytes)", len(b))
	}
	tci := binary.BigEndian.Uint16(b[14:])
	d.Class = uint8(tci >> 13)
	ip := b[ethHeaderLen+vlanTagLen:]
	d.ECNCE = ip[1]&0x03 == 0x03
	d.Flow.Proto = ip[9]
	d.Flow.SrcIP = binary.BigEndian.Uint32(ip[12:])
	d.Flow.DstIP = binary.BigEndian.Uint32(ip[16:])
	udp := ip[ipv4HeaderLen:]
	d.Flow.SrcPort = binary.BigEndian.Uint16(udp[0:])
	d.Flow.DstPort = binary.BigEndian.Uint16(udp[2:])
	bth := udp[udpHeaderLen:]
	d.Opcode = bth[0]
	d.Last = bth[1]&0x01 != 0
	d.FlowID = binary.BigEndian.Uint32(bth[4:])
	d.Seq = binary.BigEndian.Uint32(bth[8:])
	return d, nil
}

// Package core is the Hawkeye system facade: it installs PFC-aware
// telemetry and polling logic on every switch of a simulated cluster,
// wires host detection agents to the collection service, correlates
// telemetry deliveries into per-diagnosis sessions, and runs the
// provenance-based diagnosis. This is the package a user of the library
// interacts with end-to-end.
package core

import (
	"fmt"
	"sort"

	"hawkeye/internal/cluster"
	"hawkeye/internal/collect"
	"hawkeye/internal/diagnosis"
	"hawkeye/internal/host"
	"hawkeye/internal/packet"
	"hawkeye/internal/polling"
	"hawkeye/internal/provenance"
	"hawkeye/internal/sim"
	"hawkeye/internal/telemetry"
	"hawkeye/internal/topo"
)

// Config aggregates all Hawkeye component configurations.
type Config struct {
	Telemetry telemetry.Config
	Polling   polling.Config
	Collect   collect.Config
	Diagnosis diagnosis.Config
	// BurstRateFrac / BurstMaxEpochs tune burst-flow classification in
	// the provenance graph.
	BurstRateFrac  float64
	BurstMaxEpochs int
	// CorrelationWindow bounds how long after a trigger a telemetry
	// collection still belongs to that diagnosis session.
	CorrelationWindow sim.Time
	// FlowTelemetryAt, when set, restricts the flow tables to the
	// switches it approves (§5 partial deployment). PFC causality
	// analysis stays fabric-wide. Nil means full deployment.
	FlowTelemetryAt func(topo.NodeID) bool
	// HostTelemetry enables the host-agent counter channel: every
	// detection trigger snapshots the NIC counters of all hosts, and the
	// diagnosis ingests them as provenance host leaves. Off, the
	// analyzer still declares its host-coverage expectation, so
	// host-facing verdicts are graded as running on the network's word
	// alone (the degraded mode).
	HostTelemetry bool
}

// HostFaults injects faults into the host-agent counter channel
// (internal/chaos implements it): drop a host's snapshot for one
// trigger, or corrupt it in flight.
type HostFaults interface {
	// DropHostReport reports whether the host's snapshot for the current
	// trigger is lost.
	DropHostReport(id topo.NodeID) bool
	// CorruptHostReport may mutate the snapshot in flight.
	CorruptHostReport(id topo.NodeID, r *telemetry.HostReport)
}

// DefaultConfig returns the evaluation defaults.
func DefaultConfig() Config {
	return Config{
		Telemetry:         telemetry.DefaultConfig(),
		Polling:           polling.DefaultConfig(),
		Collect:           collect.DefaultConfig(),
		Diagnosis:         diagnosis.DefaultConfig(),
		BurstRateFrac:     0.15,
		BurstMaxEpochs:    3,
		CorrelationWindow: 2 * sim.Millisecond,
		HostTelemetry:     true,
	}
}

// Session accumulates one diagnosis: the trigger plus the telemetry
// reports collected for it.
type Session struct {
	Trigger host.Trigger
	Reports map[topo.NodeID]*telemetry.Report
	// HostReports are the host-agent counter snapshots taken at trigger
	// time (less any the fault model dropped).
	HostReports map[topo.NodeID]*telemetry.HostReport
	// Tagged marks switches whose collection was explicitly triggered by
	// THIS diagnosis's polling (vs shared via the collection interval).
	Tagged map[topo.NodeID]bool
	// LastArrival is when the final report reached the analyzer.
	LastArrival sim.Time
}

// Result is a completed diagnosis.
type Result struct {
	Trigger     host.Trigger
	Graph       *provenance.Graph
	Diagnosis   *diagnosis.Report
	Switches    []topo.NodeID // switches whose telemetry was used
	ReportBytes int
	// PolledSwitches counts switches whose collection this diagnosis's
	// own polling triggered (Fig. 11's collection scale; Switches may be
	// larger because nearby diagnoses share reports).
	PolledSwitches int
	// ReadyAt is when the last contributing report arrived (detection ->
	// diagnosis latency = ReadyAt - Trigger.At).
	ReadyAt sim.Time
	// Detail refines a flow-contention primary cause (§3.5.2):
	// micro-burst, ECMP imbalance, or plain overload.
	Detail diagnosis.CauseDetail
}

// System is Hawkeye installed on a cluster.
type System struct {
	Cl        *cluster.Cluster
	Cfg       Config
	Tels      map[topo.NodeID]*telemetry.State
	Handlers  map[topo.NodeID]*polling.Handler
	Collector *collect.Collector

	sessions   map[uint32]*Session
	deliveries []collect.Delivery
	triggers   []host.Trigger

	// HostFaults, if set, filters the host-agent channel (chaos wires
	// itself in here).
	HostFaults HostFaults

	// OnTrigger, if set, observes every detection event (after the
	// session is created). Experiments use it to take comparison
	// snapshots for baseline systems.
	OnTrigger func(host.Trigger)
}

// Install attaches Hawkeye to every switch and host of the cluster.
func Install(cl *cluster.Cluster, cfg Config) (*System, error) {
	if err := cfg.Telemetry.Validate(); err != nil {
		return nil, err
	}
	sys := &System{
		Cl:        cl,
		Cfg:       cfg,
		Tels:      make(map[topo.NodeID]*telemetry.State),
		Handlers:  make(map[topo.NodeID]*polling.Handler),
		Collector: collect.NewCollector(cl.Eng, cfg.Collect),
		sessions:  make(map[uint32]*Session),
	}
	sys.Collector.OnDelivery = sys.onDelivery

	for id, sw := range cl.Switches {
		sw := sw
		queueOf := func(port int) int {
			return sw.EgressAt(port).QueueBytes(packet.ClassLossless)
		}
		telCfg := cfg.Telemetry
		if cfg.FlowTelemetryAt != nil {
			telCfg.FlowTelemetry = cfg.FlowTelemetryAt(id)
		}
		tel, err := telemetry.New(telCfg, id, sw.Name, sw.NumPorts(),
			cl.Topo.LinkBandwidth, cl.Eng.Now, queueOf)
		if err != nil {
			return nil, fmt.Errorf("core: telemetry for %s: %w", sw.Name, err)
		}
		sys.Tels[id] = tel
		sw.AddInstrument(tel)
		h := polling.NewHandler(tel, cfg.Polling, sys.Collector, cl.Eng.Now)
		sys.Handlers[id] = h
		sw.SetPollHandler(h)
	}
	for _, h := range cl.Hosts {
		h.Agent().OnTrigger = sys.onTrigger
	}
	return sys, nil
}

func (sys *System) onTrigger(tr host.Trigger) {
	sys.triggers = append(sys.triggers, tr)
	s := &Session{
		Trigger:     tr,
		Reports:     make(map[topo.NodeID]*telemetry.Report),
		HostReports: make(map[topo.NodeID]*telemetry.HostReport),
		Tagged:      make(map[topo.NodeID]bool),
	}
	sys.sessions[tr.DiagID] = s
	if sys.Cfg.HostTelemetry {
		sys.snapshotHosts(s)
	}
	if sys.OnTrigger != nil {
		sys.OnTrigger(tr)
	}
}

// snapshotHosts reads every host agent's NIC counters at the trigger
// instant. Snapshots are pure register reads — no events are scheduled,
// so enabling the channel cannot perturb the simulated packet sequence.
// Hosts are visited in ID order so the fault model's random stream is
// consumed deterministically.
func (sys *System) snapshotHosts(s *Session) {
	ids := make([]topo.NodeID, 0, len(sys.Cl.Hosts))
	for id := range sys.Cl.Hosts {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	now := sys.Cl.Eng.Now()
	for _, id := range ids {
		if sys.HostFaults != nil && sys.HostFaults.DropHostReport(id) {
			continue
		}
		c := sys.Cl.Hosts[id].NICCounters()
		hr := &telemetry.HostReport{
			Host:          id,
			Taken:         now,
			RxBufferBytes: c.RxBufferBytes,
			RxBufferCap:   c.RxBufferCap,
			DrainBps:      c.DrainBps,
			PauseTx:       c.PauseTx,
			PauseRx:       c.PauseRx,
			ProcLatencyNS: c.ProcLatencyNS,
			ActiveQPs:     c.ActiveQPs,
		}
		if sys.HostFaults != nil {
			sys.HostFaults.CorruptHostReport(id, hr)
		}
		s.HostReports[id] = hr
	}
}

func (sys *System) onDelivery(d collect.Delivery) {
	sys.deliveries = append(sys.deliveries, d)
	for _, id := range d.DiagIDs {
		if s, ok := sys.sessions[id]; ok {
			s.Tagged[d.Report.Switch] = true
			sys.attach(s, d)
		}
	}
}

func (sys *System) attach(s *Session, d collect.Delivery) {
	s.Reports[d.Report.Switch] = d.Report
	if d.Arrived > s.LastArrival {
		s.LastArrival = d.Arrived
	}
}

// Triggers returns all detection events observed so far.
func (sys *System) Triggers() []host.Trigger { return sys.triggers }

// Sessions returns the diagnosis sessions keyed by DiagID.
func (sys *System) Sessions() map[uint32]*Session { return sys.sessions }

// correlate picks, for each session and switch, the best available
// report: nearby diagnoses share one register sync per switch (§3.4
// collection dedup), so the tagged report is not always the most
// relevant one. The analyzer prefers the first collection started at or
// after the trigger (it covers the anomaly epochs), falling back to the
// freshest one from just before.
func (sys *System) correlate() {
	for _, s := range sys.sessions {
		lo := s.Trigger.At - sys.Cfg.Collect.Interval
		hi := s.Trigger.At + sys.Cfg.CorrelationWindow
		best := make(map[topo.NodeID]*collect.Delivery)
		for i := range sys.deliveries {
			d := &sys.deliveries[i]
			if d.Started < lo || d.Started > hi {
				continue
			}
			cur, ok := best[d.Report.Switch]
			if !ok || betterReport(d.Started, cur.Started, s.Trigger.At) {
				best[d.Report.Switch] = d
			}
		}
		for _, d := range best {
			sys.attach(s, *d)
		}
	}
}

// betterReport prefers the collection whose start is closest to the
// trigger, with pre-trigger collections penalized 2x: a report taken just
// after the complaint covers the anomaly epochs, while one taken just
// before may predate the anomaly entirely — but a slightly-stale report
// still beats one taken long after the evidence aged out.
func betterReport(cand, cur, trigger sim.Time) bool {
	cost := func(t sim.Time) sim.Time {
		if t >= trigger {
			return t - trigger
		}
		return 2 * (trigger - t)
	}
	return cost(cand) < cost(cur)
}

// provCfg builds the provenance configuration from the cluster/telemetry
// parameters.
func (sys *System) provCfg() provenance.Config {
	cfg := provenance.DefaultConfig(sys.Cl.Topo.LinkBandwidth, int64(sys.Cfg.Telemetry.EpochSize()))
	cfg.BurstRateFrac = sys.Cfg.BurstRateFrac
	cfg.BurstMaxEpochs = sys.Cfg.BurstMaxEpochs
	return cfg
}

// DiagnoseAll correlates deliveries and runs the provenance diagnosis for
// every session. Call after the simulation horizon.
func (sys *System) DiagnoseAll() []*Result {
	sys.correlate()
	ids := make([]uint32, 0, len(sys.sessions))
	for id := range sys.sessions {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		si, sj := sys.sessions[ids[i]], sys.sessions[ids[j]]
		if si.Trigger.At != sj.Trigger.At {
			return si.Trigger.At < sj.Trigger.At
		}
		return ids[i] < ids[j]
	})
	var out []*Result
	for _, id := range ids {
		out = append(out, sys.diagnose(sys.sessions[id]))
	}
	return out
}

// DiagnoseSession runs the diagnosis for one session (case studies).
func (sys *System) DiagnoseSession(id uint32) (*Result, bool) {
	s, ok := sys.sessions[id]
	if !ok {
		return nil, false
	}
	sys.correlate()
	return sys.diagnose(s), true
}

func (sys *System) diagnose(s *Session) *Result {
	reports := make([]*telemetry.Report, 0, len(s.Reports))
	switches := make([]topo.NodeID, 0, len(s.Reports))
	bytes := 0
	for id, rep := range s.Reports {
		reports = append(reports, rep)
		switches = append(switches, id)
		bytes += rep.WireSize()
	}
	sort.Slice(reports, func(i, j int) bool { return reports[i].Switch < reports[j].Switch })
	sort.Slice(switches, func(i, j int) bool { return switches[i] < switches[j] })
	g := provenance.Build(sys.provCfg(), reports, sys.Cl.Topo)
	// Declare what telemetry the analyzer wanted: the victim's path
	// switches. Under collection faults some never report; coverage feeds
	// the diagnosis confidence instead of failing silently.
	g.Coverage.SetExpected(sys.victimPathSwitches(s.Trigger.Victim))
	sys.admitHostReports(s, g)
	d := diagnosis.Diagnose(sys.Cfg.Diagnosis, g, sys.Cl.Topo, s.Trigger.Victim)
	polled := len(s.Tagged)
	if polled == 0 {
		polled = len(switches)
	}
	return &Result{
		Trigger:        s.Trigger,
		Graph:          g,
		Diagnosis:      d,
		Switches:       switches,
		ReportBytes:    bytes,
		PolledSwitches: polled,
		ReadyAt:        s.LastArrival,
		Detail:         diagnosis.Refine(d.PrimaryCause(), sys.Cl.Routing, sys.Cl.Topo),
	}
}

// admitHostReports runs the session's host snapshots through the same
// admission discipline as switch telemetry — semantic validation,
// magnitude clamping, coverage accounting — and installs the survivors
// as provenance host leaves. The coverage EXPECTATION is declared
// whether or not the channel is enabled: the analyzer always wants host
// corroboration for the hosts hanging off the victim's path, and a
// host-facing verdict reached without it must grade as degraded.
func (sys *System) admitHostReports(s *Session, g *provenance.Graph) {
	ids := make([]topo.NodeID, 0, len(s.HostReports))
	for id := range s.HostReports {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	lim := telemetry.HostLimitsFor(sys.Cl.Topo.LinkBandwidth)
	for _, id := range ids {
		hr := s.HostReports[id]
		if err := hr.Validate(); err != nil {
			g.Coverage.NoteHostRejected(hr.Host)
			continue
		}
		g.Coverage.Clamped += telemetry.SanitizeHostReport(hr, lim)
		g.AddHostReport(hr, sys.Cl.Topo)
	}
	// Declared after admission: the missing set is computed against the
	// snapshots that actually survived.
	g.Coverage.SetExpectedHosts(sys.victimPathHosts(s.Trigger.Victim))
}

// victimPathHosts lists the hosts whose agents the diagnosis expects to
// hear from: the victim's endpoints plus every host hanging off a
// victim-path switch's host-facing ports — the candidate culprits for a
// host-caused stall on this path.
func (sys *System) victimPathHosts(ft packet.FiveTuple) []topo.NodeID {
	seen := make(map[topo.NodeID]bool)
	var out []topo.NodeID
	add := func(id topo.NodeID) {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	if src, ok := sys.Cl.Topo.HostByIP(ft.SrcIP); ok {
		add(src)
	}
	if dst, ok := sys.Cl.Topo.HostByIP(ft.DstIP); ok {
		add(dst)
	}
	for _, sw := range sys.victimPathSwitches(ft) {
		for _, p := range sys.Cl.Topo.Node(sw).Ports {
			if sys.Cl.Topo.Node(p.Peer).Kind == topo.KindHost {
				add(p.Peer)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// victimPathSwitches lists the switches on the victim's ECMP-resolved
// path — the coverage expectation for its diagnosis.
func (sys *System) victimPathSwitches(ft packet.FiveTuple) []topo.NodeID {
	src, ok1 := sys.Cl.Topo.HostByIP(ft.SrcIP)
	dst, ok2 := sys.Cl.Topo.HostByIP(ft.DstIP)
	if !ok1 || !ok2 {
		return nil
	}
	refs, err := sys.Cl.Routing.PortPath(src, dst, ft.Hash())
	if err != nil {
		return nil
	}
	var out []topo.NodeID
	for _, r := range refs {
		if sys.Cl.Topo.Node(r.Node).Kind == topo.KindSwitch {
			out = append(out, r.Node)
		}
	}
	return out
}

// VictimTupleOf is a helper for scenarios: the 5-tuple a flow from src
// to dst would use is only known after StartFlow; this resolves it.
func VictimTupleOf(f *host.Flow) packet.FiveTuple { return f.Tuple }

package core

import (
	"fmt"
	"strings"

	"hawkeye/internal/diagnosis"
	"hawkeye/internal/sim"
	"hawkeye/internal/topo"
)

// Incident is the operator-facing unit: one anomaly event, however many
// victim complaints it produced. The polling dedup (§3.4) bounds the
// in-fabric cost of complaint storms; this grouping is its analyzer-side
// counterpart — a long-lived incast generates dozens of complaints that
// all point at the same root cause, and an operator wants one ticket.
type Incident struct {
	// Results are the member diagnoses in trigger order.
	Results []*Result
	// Type is the member diagnoses' anomaly type.
	Type diagnosis.AnomalyType
	// First/Last bound the member triggers in time.
	First, Last sim.Time
}

// Primary returns the earliest-triggered member — its diagnosis carries
// the incident's root cause with the freshest telemetry. Members arrive
// in delivery order, which under complaint storms is not trigger order,
// so this scans rather than trusting Results[0].
func (inc *Incident) Primary() *Result {
	p := inc.Results[0]
	for _, r := range inc.Results[1:] {
		if r.Trigger.At < p.Trigger.At {
			p = r
		}
	}
	return p
}

// Victims lists the distinct complaining flows.
func (inc *Incident) Victims() int {
	seen := make(map[string]bool)
	for _, r := range inc.Results {
		seen[r.Trigger.Victim.String()] = true
	}
	return len(seen)
}

func (inc *Incident) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "incident: %v, %d complaints from %d victims, %v .. %v\n",
		inc.Type, len(inc.Results), inc.Victims(), inc.First, inc.Last)
	b.WriteString(inc.Primary().Diagnosis.String())
	return b.String()
}

// sameEvent decides whether a new diagnosis belongs to an open incident:
// same anomaly type, and an overlapping anchor — the same initial
// congestion point (node granularity: the funnel can move the port), or,
// for deadlocks, a shared loop port.
func sameEvent(inc *Incident, r *Result) bool {
	d := r.Diagnosis
	if d.Type != inc.Type {
		return false
	}
	p := inc.Primary().Diagnosis
	if pc, nc := p.PrimaryCause(), d.PrimaryCause(); pc.Port.Node == nc.Port.Node {
		return true
	}
	return loopsOverlap(p.Loop, d.Loop)
}

func loopsOverlap(a, b []topo.PortRef) bool {
	if len(a) == 0 || len(b) == 0 {
		return false
	}
	set := make(map[topo.PortRef]bool, len(a))
	for _, p := range a {
		set[p] = true
	}
	for _, p := range b {
		if set[p] {
			return true
		}
	}
	return false
}

// Incidents diagnoses every session and groups the results (the
// operator-facing view of DiagnoseAll).
func (sys *System) Incidents(window sim.Time) []*Incident {
	return GroupIncidents(sys.DiagnoseAll(), window)
}

// GroupIncidents clusters diagnoses into incidents: a result joins an
// open incident when it describes the same event (sameEvent) and its
// trigger falls within window of the incident's span; otherwise it
// opens a new incident. Results are usually in trigger order (the order
// DiagnoseAll returns), but out-of-order arrivals — an analyzer serving
// live sessions sees a later-delivered earlier complaint — are handled:
// the span check is symmetric around [First-window, Last+window], and
// First/Last track the true extremes.
func GroupIncidents(results []*Result, window sim.Time) []*Incident {
	var out []*Incident
	for _, r := range results {
		if r.Diagnosis == nil {
			continue
		}
		var joined *Incident
		for _, inc := range out {
			at := r.Trigger.At
			if at >= inc.First-window && at <= inc.Last+window && sameEvent(inc, r) {
				joined = inc
				break
			}
		}
		if joined == nil {
			out = append(out, &Incident{
				Results: []*Result{r},
				Type:    r.Diagnosis.Type,
				First:   r.Trigger.At,
				Last:    r.Trigger.At,
			})
			continue
		}
		joined.Results = append(joined.Results, r)
		if r.Trigger.At > joined.Last {
			joined.Last = r.Trigger.At
		}
		if r.Trigger.At < joined.First {
			joined.First = r.Trigger.At
		}
	}
	return out
}

package core

import (
	"testing"

	"hawkeye/internal/collect"
	"hawkeye/internal/host"
	"hawkeye/internal/sim"
	"hawkeye/internal/telemetry"
	"hawkeye/internal/topo"
)

func TestBetterReport(t *testing.T) {
	const trig = 1000 * sim.Microsecond
	cases := []struct {
		name      string
		cand, cur sim.Time
		want      bool
	}{
		{"after beats farther-after", trig + 10, trig + 50, true},
		{"farther-after loses", trig + 50, trig + 10, false},
		{"exactly-at-trigger beats everything", trig, trig + 1, true},
		// Pre-trigger costs 2x: 40 µs before (cost 80) loses to 50 µs after.
		{"pre-trigger penalized", trig - 40*sim.Microsecond, trig + 50*sim.Microsecond, false},
		// ...but a slightly-stale report beats a long-stale post one.
		{"slightly-before beats long-after", trig - 10*sim.Microsecond, trig + 500*sim.Microsecond, true},
		{"equal cost keeps current", trig + 20, trig + 20, false},
	}
	for _, c := range cases {
		if got := betterReport(c.cand, c.cur, trig); got != c.want {
			t.Errorf("%s: betterReport(%v, %v, %v) = %v, want %v",
				c.name, c.cand, c.cur, trig, got, c.want)
		}
	}
}

// delivery fabricates a collected report from switch sw whose register
// sync started at t.
func delivery(sw topo.NodeID, started sim.Time, diags ...uint32) collect.Delivery {
	return collect.Delivery{
		Report:  &telemetry.Report{Switch: sw},
		DiagIDs: diags,
		Started: started,
		Arrived: started + 100*sim.Microsecond,
	}
}

func newCorrelateSystem() *System {
	sys := &System{
		Cfg:      DefaultConfig(),
		sessions: make(map[uint32]*Session),
	}
	return sys
}

func addSession(sys *System, id uint32, at sim.Time) *Session {
	s := &Session{
		Trigger: host.Trigger{DiagID: id, At: at},
		Reports: make(map[topo.NodeID]*telemetry.Report),
		Tagged:  make(map[topo.NodeID]bool),
	}
	sys.sessions[id] = s
	return s
}

func TestCorrelatePicksClosestReport(t *testing.T) {
	sys := newCorrelateSystem()
	const trig = 5 * sim.Millisecond
	s := addSession(sys, 1, trig)
	// Three collections from the same switch: stale, fresh, late.
	sys.deliveries = []collect.Delivery{
		delivery(7, trig-200*sim.Microsecond),
		delivery(7, trig+30*sim.Microsecond),
		delivery(7, trig+900*sim.Microsecond),
	}
	sys.correlate()
	if len(s.Reports) != 1 {
		t.Fatalf("reports = %d, want 1 (same switch)", len(s.Reports))
	}
	// LastArrival identifies which delivery won: the +30 µs one.
	want := trig + 30*sim.Microsecond + 100*sim.Microsecond
	if s.LastArrival != want {
		t.Fatalf("correlate picked delivery arriving at %v, want %v", s.LastArrival, want)
	}
}

func TestCorrelateWindowBounds(t *testing.T) {
	sys := newCorrelateSystem()
	const trig = 5 * sim.Millisecond
	s := addSession(sys, 1, trig)
	lo := trig - sys.Cfg.Collect.Interval
	hi := trig + sys.Cfg.CorrelationWindow
	sys.deliveries = []collect.Delivery{
		delivery(1, lo-sim.Microsecond), // too old: predates the dedup interval
		delivery(2, hi+sim.Microsecond), // too late: past the correlation window
		delivery(3, trig),               // in range
	}
	sys.correlate()
	if len(s.Reports) != 1 {
		t.Fatalf("reports = %d, want only the in-window switch", len(s.Reports))
	}
	if _, ok := s.Reports[3]; !ok {
		t.Fatalf("wrong switch correlated: %v", s.Reports)
	}
}

func TestCorrelateSharesReportsAcrossSessions(t *testing.T) {
	// §3.4: nearby diagnoses share one register sync per switch. A report
	// explicitly tagged for session 1 must still be usable by session 2
	// triggered within the dedup interval.
	sys := newCorrelateSystem()
	const trig = 5 * sim.Millisecond
	s1 := addSession(sys, 1, trig)
	s2 := addSession(sys, 2, trig+50*sim.Microsecond)
	sys.deliveries = []collect.Delivery{delivery(9, trig+10*sim.Microsecond, 1)}
	sys.correlate()
	if len(s1.Reports) != 1 || len(s2.Reports) != 1 {
		t.Fatalf("reports: s1=%d s2=%d, want shared", len(s1.Reports), len(s2.Reports))
	}
	if s1.Reports[9] != s2.Reports[9] {
		t.Fatal("sessions should share the same report object")
	}
}

func TestCorrelateMultipleSwitchesIndependent(t *testing.T) {
	sys := newCorrelateSystem()
	const trig = 5 * sim.Millisecond
	s := addSession(sys, 1, trig)
	sys.deliveries = []collect.Delivery{
		delivery(1, trig+20*sim.Microsecond),
		delivery(1, trig+400*sim.Microsecond), // worse for switch 1
		delivery(2, trig+300*sim.Microsecond), // only option for switch 2
	}
	sys.correlate()
	if len(s.Reports) != 2 {
		t.Fatalf("reports = %d, want one per switch", len(s.Reports))
	}
}

package core

import (
	"testing"

	"hawkeye/internal/cluster"
	"hawkeye/internal/diagnosis"
	"hawkeye/internal/host"
	"hawkeye/internal/packet"
	"hawkeye/internal/sim"
	"hawkeye/internal/topo"
)

// fastConfig shrinks the collector latency so tests don't need 120 ms of
// virtual time per diagnosis; the latency model itself is tested in
// internal/collect.
func fastConfig() Config {
	cfg := DefaultConfig()
	cfg.Collect.BaseLatency = 200 * sim.Microsecond
	cfg.Collect.PerEpochLatency = 50 * sim.Microsecond
	return cfg
}

func chainSystem(t *testing.T, switches, hostsPer int) (*cluster.Cluster, *System, *topo.Dumbbell) {
	t.Helper()
	d, err := topo.NewChain(switches, hostsPer, topo.DefaultBandwidth, topo.DefaultDelay)
	if err != nil {
		t.Fatal(err)
	}
	r := topo.ComputeRouting(d.Topology)
	cl := cluster.New(d.Topology, r, cluster.DefaultConfig(d.Topology))
	sys, err := Install(cl, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	return cl, sys, d
}

// flowSet turns flows into a tuple set for containment checks.
func flowSet(flows []*host.Flow) map[packet.FiveTuple]bool {
	s := make(map[packet.FiveTuple]bool, len(flows))
	for _, f := range flows {
		s[f.Tuple] = true
	}
	return s
}

func resultFor(results []*Result, victim packet.FiveTuple) *Result {
	for _, r := range results {
		if r.Trigger.Victim == victim {
			return r
		}
	}
	return nil
}

func TestEndToEndIncastBackpressure(t *testing.T) {
	// Fig 1(a) on a chain: the victim h0-0 -> h1-0 never touches the
	// initial congestion point. Local bursts at sw2 incast into h2-0; a
	// spreader flow h0-1 -> h2-0 carries the backpressure across
	// sw0->sw1->sw2; the victim is HOL-blocked at sw0 purely by PFC.
	cl, sys, d := chainSystem(t, 3, 5)
	victim := cl.StartFlow(d.HostsAt[0][0], d.HostsAt[1][0], 1_200_000, 0)
	spreader := cl.StartFlow(d.HostsAt[0][1], d.HostsAt[2][0], 1_500_000, 0)
	cl.StartFlow(d.HostsAt[0][2], d.HostsAt[2][1], 1_500_000, 0)
	// Micro-bursts: short line-rate clumps that slam the queue before PFC
	// can throttle them (the paper's incast pattern). Two synchronized
	// rounds keep the backpressure alive long enough for detection.
	var bursts []*host.Flow
	for _, start := range []sim.Time{132 * sim.Microsecond, 394 * sim.Microsecond} {
		for i := 1; i < 5; i++ {
			bursts = append(bursts, cl.StartFlow(d.HostsAt[2][i], d.HostsAt[2][0], 128_000, start))
		}
	}
	cl.Run(20 * sim.Millisecond)

	results := sys.DiagnoseAll()
	res := resultFor(results, victim.Tuple)
	if res == nil {
		t.Fatalf("no diagnosis for the victim; triggers=%d", len(sys.Triggers()))
	}
	if res.Diagnosis.Type != diagnosis.TypePFCContention {
		t.Fatalf("type = %v, want pfc-backpressure-contention\n%v\n%v",
			res.Diagnosis.Type, res.Diagnosis, res.Graph)
	}
	cause := res.Diagnosis.PrimaryCause()
	if cause.Kind != diagnosis.CauseFlowContention {
		t.Fatalf("cause kind = %v", cause.Kind)
	}
	// The initial congestion point is sw2's egress toward h2-0.
	if cause.Port.Node != d.Switches[2] {
		t.Fatalf("initial congestion at %v, want on sw2\n%v", cause.Port, res.Graph)
	}
	if !cl.Topo.IsHostFacing(cause.Port.Node, cause.Port.Port) {
		t.Fatalf("initial congestion port %v is not the host port", cause.Port)
	}
	// Root-cause flows must include the injected bursts.
	burstSet := flowSet(bursts)
	matched := 0
	for _, f := range cause.Flows {
		if burstSet[f] {
			matched++
		}
	}
	if matched < 3 {
		t.Fatalf("only %d/4 burst flows identified as root cause: %v\n%v",
			matched, cause.Flows, res.Graph)
	}
	// The spreader must be recognized as carrying the PFC spreading
	// (paused at more than one port).
	foundSpreader := false
	for _, f := range res.Diagnosis.Spreaders {
		if f == spreader.Tuple {
			foundSpreader = true
		}
	}
	if !foundSpreader {
		t.Logf("note: spreader not flagged (paused at <2 ports): %v", res.Diagnosis.Spreaders)
	}
	// All three causal switches must have been collected.
	if len(res.Switches) < 3 {
		t.Fatalf("collected %v, want all 3 switches", res.Switches)
	}
}

func TestEndToEndPFCStorm(t *testing.T) {
	// Fig 1(b): a rogue receiver injects PFC; flows toward it stall with
	// zero flow contention at the initial point.
	cl, sys, d := chainSystem(t, 2, 3)
	rogue := d.HostsAt[1][0]
	cl.Hosts[rogue].InjectPFC(50*sim.Microsecond, 30*sim.Millisecond, packet.MaxPauseQuanta)
	victim := cl.StartFlow(d.HostsAt[0][0], rogue, 400_000, 0)
	cl.StartFlow(d.HostsAt[0][1], rogue, 400_000, 0)
	cl.Run(20 * sim.Millisecond)

	res := resultFor(sys.DiagnoseAll(), victim.Tuple)
	if res == nil {
		t.Fatalf("no diagnosis for the victim; triggers=%d", len(sys.Triggers()))
	}
	if res.Diagnosis.Type != diagnosis.TypePFCStorm {
		t.Fatalf("type = %v, want pfc-storm\n%v\n%v", res.Diagnosis.Type, res.Diagnosis, res.Graph)
	}
	cause := res.Diagnosis.PrimaryCause()
	// With host telemetry on, the generic injection verdict refines to the
	// pause-storm pathology: the rogue's counters show pauses emitted with
	// an empty RX buffer.
	if cause.Kind != diagnosis.CauseHostPauseStorm {
		t.Fatalf("cause kind = %v, want host pause storm", cause.Kind)
	}
	if cause.Host != rogue {
		t.Fatalf("cause host = %v, want rogue %v", cause.Host, rogue)
	}
	// The terminal must be the ToR's host-facing port toward the rogue.
	if cause.Port.Node != d.Switches[1] || !cause.InjectorHostFacing {
		t.Fatalf("injection located at %v (hostFacing=%v)\n%v",
			cause.Port, cause.InjectorHostFacing, res.Graph)
	}
	peer, _ := cl.Topo.PeerOf(cause.Port.Node, cause.Port.Port)
	if peer != rogue {
		t.Fatalf("injector resolved to node %v, want rogue %v", peer, rogue)
	}
}

func ringSystem(t *testing.T) (*cluster.Cluster, *System, *topo.Ring) {
	t.Helper()
	ring, err := topo.NewRing(4, 2, topo.DefaultBandwidth, topo.DefaultDelay)
	if err != nil {
		t.Fatal(err)
	}
	r := topo.ComputeRouting(ring.Topology)
	ring.ForceClockwise(r, nil)
	cl := cluster.New(ring.Topology, r, cluster.DefaultConfig(ring.Topology))
	sys, err := Install(cl, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	return cl, sys, ring
}

func TestEndToEndInLoopDeadlock(t *testing.T) {
	// Fig 1(c): clockwise-forced ring saturated by transit flows
	// deadlocks; initiator is contention inside the loop.
	cl, sys, ring := ringSystem(t)
	var victim *host.Flow
	for i := 0; i < 4; i++ {
		for h := 0; h < 2; h++ {
			f := cl.StartFlow(ring.HostsAt[i][h], ring.HostsAt[(i+2)%4][h], 2_000_000, 0)
			if victim == nil {
				victim = f
			}
		}
	}
	cl.Run(20 * sim.Millisecond)

	results := sys.DiagnoseAll()
	if len(results) == 0 {
		t.Fatal("no diagnoses despite deadlock")
	}
	// Every diagnosed victim should see the loop; check the first.
	res := results[0]
	if len(res.Diagnosis.Loop) < 3 {
		t.Fatalf("no loop found\n%v\n%v", res.Diagnosis, res.Graph)
	}
	if res.Diagnosis.Type != diagnosis.TypeInLoopDeadlock {
		t.Fatalf("type = %v, want in-loop-deadlock\n%v\n%v",
			res.Diagnosis.Type, res.Diagnosis, res.Graph)
	}
	// The loop must consist of the four ring egress ports.
	ringPorts := make(map[topo.PortRef]bool, 4)
	for i, sw := range ring.Switches {
		ringPorts[topo.PortRef{Node: sw, Port: ring.RingPort[i]}] = true
	}
	for _, p := range res.Diagnosis.Loop {
		if !ringPorts[p] {
			t.Fatalf("loop node %v is not a ring port; loop=%v", p, res.Diagnosis.Loop)
		}
	}
	_ = victim
}

func TestEndToEndOutOfLoopDeadlockInjection(t *testing.T) {
	// Fig 1(d): host PFC injection outside the loop drives the ring into
	// deadlock. The ring stays busy with transit flows; the rogue host
	// stops its ToR's delivery port, which backs up into the ring.
	cl, sys, ring := ringSystem(t)
	rogue := ring.HostsAt[1][0]
	cl.Hosts[rogue].InjectPFC(100*sim.Microsecond, 40*sim.Millisecond, packet.MaxPauseQuanta)
	// Transit flows: every switch sends to the host two hops clockwise;
	// flows into the rogue's switch keep the loop pressurized.
	for i := 0; i < 4; i++ {
		cl.StartFlow(ring.HostsAt[i][1], ring.HostsAt[(i+2)%4][1], 2_000_000, 0)
	}
	// Plus direct pressure into the rogue host from across the ring.
	cl.StartFlow(ring.HostsAt[3][0], rogue, 2_000_000, 0)
	cl.Run(25 * sim.Millisecond)

	results := sys.DiagnoseAll()
	if len(results) == 0 {
		t.Fatal("no diagnoses")
	}
	// Find a result that saw the loop.
	var res *Result
	for _, r := range results {
		if len(r.Diagnosis.Loop) >= 3 {
			res = r
			break
		}
	}
	if res == nil {
		for _, r := range results {
			t.Logf("diagnosis: %v", r.Diagnosis)
		}
		t.Fatal("no diagnosis found the loop")
	}
	if res.Diagnosis.Type != diagnosis.TypeOutLoopDeadlockInjection {
		t.Fatalf("type = %v, want out-of-loop-deadlock-injection\n%v\n%v",
			res.Diagnosis.Type, res.Diagnosis, res.Graph)
	}
	cause := res.Diagnosis.PrimaryCause()
	if !cause.Kind.IsHostSide() || !cause.InjectorHostFacing {
		t.Fatalf("cause = %+v, want host-side cause at host-facing port", cause)
	}
	peer, _ := cl.Topo.PeerOf(cause.Port.Node, cause.Port.Port)
	if peer != rogue {
		t.Fatalf("injector resolved to %v, want rogue %v", peer, rogue)
	}
}

func TestEndToEndNormalContention(t *testing.T) {
	// Transient shallow bursts that stay under per-ingress Xoff: queueing
	// delay without any PFC. Diagnosis degenerates to traditional flow
	// contention (Table 2 last row).
	d, err := topo.NewChain(2, 6, topo.DefaultBandwidth, topo.DefaultDelay)
	if err != nil {
		t.Fatal(err)
	}
	r := topo.ComputeRouting(d.Topology)
	ccfg := cluster.DefaultConfig(d.Topology)
	// Mild contention inflates RTT by ~10 µs on a ~13 µs base: lower the
	// detection threshold so the agent still notices.
	ccfg.Host.Agent.RTTFactor = 1.5
	cl := cluster.New(d.Topology, r, ccfg)
	sys, err := Install(cl, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	dst := d.HostsAt[1][0]
	victim := cl.StartFlow(d.HostsAt[0][0], dst, 600_000, 0)
	var bursts []*host.Flow
	for i := 1; i < 5; i++ {
		bursts = append(bursts, cl.StartFlow(d.HostsAt[0][i], dst, 40_000, 150*sim.Microsecond))
	}
	cl.Run(20 * sim.Millisecond)

	if cl.TotalPFCFrames() != 0 {
		t.Fatalf("scenario leaked %d PFC frames; wanted pure contention", cl.TotalPFCFrames())
	}
	res := resultFor(sys.DiagnoseAll(), victim.Tuple)
	if res == nil {
		t.Skipf("victim did not trigger (RTT inflation below threshold); triggers=%d", len(sys.Triggers()))
	}
	if res.Diagnosis.Type != diagnosis.TypeNormalContention {
		t.Fatalf("type = %v, want normal-flow-contention\n%v\n%v",
			res.Diagnosis.Type, res.Diagnosis, res.Graph)
	}
	burstSet := flowSet(bursts)
	matched := 0
	for _, f := range res.Diagnosis.PrimaryCause().Flows {
		if burstSet[f] {
			matched++
		}
	}
	if matched == 0 {
		t.Fatalf("no burst flow identified: %v", res.Diagnosis.PrimaryCause().Flows)
	}
}

func TestPollingCoversCausalSwitchesOnly(t *testing.T) {
	// In the incast scenario on a 4-chain, sw3 is causally irrelevant
	// (nothing beyond sw2 matters); Hawkeye must not collect it.
	cl, sys, d := chainSystem(t, 4, 5)
	victim := cl.StartFlow(d.HostsAt[0][0], d.HostsAt[2][0], 1_500_000, 0)
	for i := 1; i < 5; i++ {
		cl.StartFlow(d.HostsAt[1][i], d.HostsAt[2][0], 300_000, 100*sim.Microsecond)
	}
	cl.Run(20 * sim.Millisecond)
	res := resultFor(sys.DiagnoseAll(), victim.Tuple)
	if res == nil {
		t.Fatal("no diagnosis")
	}
	for _, id := range res.Switches {
		if id == d.Switches[3] {
			t.Fatalf("collected causally irrelevant switch sw3; collected=%v", res.Switches)
		}
	}
}

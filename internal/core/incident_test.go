package core

import (
	"testing"

	"hawkeye/internal/diagnosis"
	"hawkeye/internal/host"
	"hawkeye/internal/packet"
	"hawkeye/internal/sim"
	"hawkeye/internal/topo"
)

func mkResult(at sim.Time, victim uint16, typ diagnosis.AnomalyType, node topo.NodeID, loop []topo.PortRef) *Result {
	return &Result{
		Trigger: host.Trigger{
			Victim: packet.FiveTuple{SrcIP: 1, DstIP: 2, SrcPort: victim, DstPort: 4791, Proto: 17},
			At:     at,
		},
		Diagnosis: &diagnosis.Report{
			Type:   typ,
			Causes: []diagnosis.RootCause{{Port: topo.PortRef{Node: node, Port: 1}}},
			Loop:   loop,
		},
	}
}

func TestGroupIncidentsMergesSameEvent(t *testing.T) {
	rs := []*Result{
		mkResult(100, 1, diagnosis.TypePFCContention, 5, nil),
		mkResult(200, 2, diagnosis.TypePFCContention, 5, nil), // same node, in window
		mkResult(300, 1, diagnosis.TypePFCContention, 5, nil), // repeat victim
	}
	incs := GroupIncidents(rs, sim.Millisecond)
	if len(incs) != 1 {
		t.Fatalf("incidents = %d, want 1", len(incs))
	}
	inc := incs[0]
	if len(inc.Results) != 3 || inc.Victims() != 2 {
		t.Fatalf("members=%d victims=%d, want 3/2", len(inc.Results), inc.Victims())
	}
	if inc.First != 100 || inc.Last != 300 {
		t.Fatalf("span %v..%v", inc.First, inc.Last)
	}
	if inc.Primary().Trigger.At != 100 {
		t.Fatal("primary is not the earliest complaint")
	}
}

func TestGroupIncidentsSplitsByTypeAndAnchor(t *testing.T) {
	rs := []*Result{
		mkResult(100, 1, diagnosis.TypePFCContention, 5, nil),
		mkResult(150, 2, diagnosis.TypePFCStorm, 5, nil),      // same node, different type
		mkResult(200, 3, diagnosis.TypePFCContention, 9, nil), // same type, different node
	}
	incs := GroupIncidents(rs, sim.Millisecond)
	if len(incs) != 3 {
		t.Fatalf("incidents = %d, want 3 (type and anchor split)", len(incs))
	}
}

func TestGroupIncidentsWindowExpires(t *testing.T) {
	rs := []*Result{
		mkResult(100, 1, diagnosis.TypePFCContention, 5, nil),
		mkResult(100+2*sim.Millisecond, 2, diagnosis.TypePFCContention, 5, nil),
	}
	incs := GroupIncidents(rs, sim.Millisecond)
	if len(incs) != 2 {
		t.Fatalf("incidents = %d, want 2 (window expired)", len(incs))
	}
}

func TestGroupIncidentsLoopOverlapMerges(t *testing.T) {
	// Deadlock complaints anchored at different loop ports still belong
	// to one incident when their loops share a port.
	loopA := []topo.PortRef{{Node: 4, Port: 2}, {Node: 0, Port: 1}}
	loopB := []topo.PortRef{{Node: 0, Port: 1}, {Node: 6, Port: 2}}
	rs := []*Result{
		mkResult(100, 1, diagnosis.TypeInLoopDeadlock, 4, loopA),
		mkResult(200, 2, diagnosis.TypeInLoopDeadlock, 6, loopB),
	}
	incs := GroupIncidents(rs, sim.Millisecond)
	if len(incs) != 1 {
		t.Fatalf("incidents = %d, want 1 (loops overlap)", len(incs))
	}
	// Disjoint loops split.
	loopC := []topo.PortRef{{Node: 8, Port: 0}, {Node: 9, Port: 0}}
	rs[1] = mkResult(200, 2, diagnosis.TypeInLoopDeadlock, 6, loopC)
	if incs := GroupIncidents(rs, sim.Millisecond); len(incs) != 2 {
		t.Fatalf("incidents = %d, want 2 (disjoint loops)", len(incs))
	}
}

// TestGroupIncidentsOutOfOrderTriggers: a live analyzer can complete an
// earlier-triggered diagnosis after a later one (sessions race). The
// late-delivered earlier member must extend First, leave Last alone,
// and take over Primary() — without widening the join window so far
// that unrelated events merge.
func TestGroupIncidentsOutOfOrderTriggers(t *testing.T) {
	rs := []*Result{
		mkResult(1000, 1, diagnosis.TypePFCContention, 5, nil),
		mkResult(1400, 2, diagnosis.TypePFCContention, 5, nil),
		mkResult(600, 3, diagnosis.TypePFCContention, 5, nil), // earlier trigger, delivered last
	}
	incs := GroupIncidents(rs, sim.Millisecond)
	if len(incs) != 1 {
		t.Fatalf("incidents = %d, want 1", len(incs))
	}
	inc := incs[0]
	if inc.First != 600 || inc.Last != 1400 {
		t.Fatalf("span %v..%v, want 600..1400", inc.First, inc.Last)
	}
	if got := inc.Primary().Trigger.At; got != 600 {
		t.Fatalf("primary at %v, want the earliest member (600)", got)
	}
	// An earlier trigger beyond the widened span opens its own incident
	// instead of corrupting the existing one.
	rs = append(rs, mkResult(600-2*sim.Millisecond, 4, diagnosis.TypePFCContention, 5, nil))
	incs = GroupIncidents(rs, sim.Millisecond)
	if len(incs) != 2 {
		t.Fatalf("incidents = %d, want 2 (stale complaint split off)", len(incs))
	}
	if incs[0].First != 600 || incs[0].Last != 1400 {
		t.Fatalf("original incident corrupted: %v..%v", incs[0].First, incs[0].Last)
	}
}

func TestGroupIncidentsSkipsNilDiagnosis(t *testing.T) {
	rs := []*Result{{Trigger: host.Trigger{At: 1}}}
	if incs := GroupIncidents(rs, sim.Millisecond); len(incs) != 0 {
		t.Fatalf("incidents = %d for nil diagnosis", len(incs))
	}
}
